package recycle

import (
	"fmt"
	"io"
	"sync"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// Network is a PR-enabled network: a topology, its offline cellular
// embedding, the conventional routing tables, and the PR forwarding engine.
// Networks are immutable after construction and safe for concurrent use;
// Update derives an edited network rather than mutating this one.
type Network struct {
	g        *Graph
	sys      *RotationSystem
	tbl      *route.Table
	quant    *core.Quantiser
	protocol *core.Protocol
	basic    *core.Protocol
	name     string

	// compiled caches the full-variant FIB: shared by Compile and the
	// delta path of Update, built at most once (a FIB is immutable).
	compileOnce sync.Once
	compiled    *FIB
	compileErr  error
}

// Option customises NewNetwork.
type Option func(*options)

type options struct {
	embedder Embedder
	disc     Discriminator
	variant  Variant
	system   *RotationSystem
}

// WithEmbedder selects the embedding algorithm (default AutoEmbedder,
// which is exact for planar topologies). Ignored when the topology ships
// its own embedding or WithEmbedding is used.
func WithEmbedder(e Embedder) Option { return func(o *options) { o.embedder = e } }

// WithEmbedding forces a specific rotation system (e.g. one loaded from a
// file or the paper example's published embedding).
func WithEmbedding(s *RotationSystem) Option { return func(o *options) { o.system = s } }

// WithDiscriminator selects the DD function (default HopCount).
func WithDiscriminator(d Discriminator) Option { return func(o *options) { o.disc = d } }

// WithVariant selects the default protocol variant for Route (default
// Full). RouteBasic always uses the Basic variant regardless.
func WithVariant(v Variant) Option { return func(o *options) { o.variant = v } }

// NewNetwork builds a PR network over a frozen graph.
func NewNetwork(g *Graph, opts ...Option) (*Network, error) {
	return buildNetwork(Topology{Name: "custom", Graph: g}, opts...)
}

// FromTopology builds a PR network over a built-in topology — "paper",
// "abilene", "geant" or "teleglobe" — or a generator spec such as
// "ring:24", "wring:16@7", "grid:4x8" or "chain:12" (large-diameter
// regression families; these ship canonical genus-0 embeddings).
func FromTopology(name string, opts ...Option) (*Network, error) {
	tp, err := topo.ByName(name)
	if err != nil {
		return nil, err
	}
	return buildNetwork(tp, opts...)
}

// LoadNetwork parses an edge-list topology (see the graph format in
// README.md) and builds a PR network over it.
func LoadNetwork(r io.Reader, opts ...Option) (*Network, error) {
	g, err := graph.Parse(r)
	if err != nil {
		return nil, err
	}
	return buildNetwork(Topology{Name: "loaded", Graph: g}, opts...)
}

func buildNetwork(tp Topology, opts ...Option) (*Network, error) {
	o := options{embedder: embedding.Auto{Seed: 1}, disc: HopCount, variant: Full}
	for _, opt := range opts {
		opt(&o)
	}
	g := tp.Graph
	if g == nil {
		return nil, fmt.Errorf("recycle: nil graph")
	}
	if !g.Frozen() {
		g.Freeze()
	}
	sys := o.system
	if sys != nil && sys.Graph() != g {
		return nil, fmt.Errorf("recycle: WithEmbedding system was built over a different graph instance")
	}
	if sys == nil {
		sys = tp.Embedding
	}
	if sys == nil {
		var err error
		sys, err = o.embedder.Embed(g)
		if err != nil {
			return nil, fmt.Errorf("recycle: embedding failed: %w", err)
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("recycle: invalid embedding: %w", err)
	}
	tbl := route.Build(g, o.disc)
	full, err := core.New(g, sys, tbl, core.Config{Variant: o.variant})
	if err != nil {
		return nil, err
	}
	basic, err := core.New(g, sys, tbl, core.Config{Variant: Basic})
	if err != nil {
		return nil, err
	}
	return &Network{g: g, sys: sys, tbl: tbl, quant: core.BuildQuantiser(tbl),
		protocol: full, basic: basic, name: tp.Name}, nil
}

// Name returns the topology name.
func (n *Network) Name() string { return n.name }

// Graph returns the underlying graph.
func (n *Network) Graph() *Graph { return n.g }

// Embedding returns the rotation system in use.
func (n *Network) Embedding() *RotationSystem { return n.sys }

// Genus returns the genus of the embedding's surface (0 = sphere). The §5
// delivery guarantee holds on genus-0 embeddings; see EXPERIMENTS.md for
// what arbitrary embeddings cost.
func (n *Network) Genus() int { return n.sys.Genus() }

// Protocol exposes the underlying PR forwarding engine for advanced use
// (per-hop decisions, event-driven simulation).
func (n *Network) Protocol() *core.Protocol { return n.protocol }

// Compile flattens the network's forwarding state (routing tables,
// rotation system, variant) into a dataplane FIB: dense arrays on which a
// per-hop decision is a handful of indexings with zero allocations,
// bit-identical to Protocol().Decide. This is the offline step the paper
// assigns to the designated server — run once, never at failure time.
// The FIB is immutable, built once and shared by every caller (and by
// Update's delta path).
func (n *Network) Compile() (*FIB, error) {
	n.compileOnce.Do(func() {
		n.compiled, n.compileErr = dataplane.CompileWith(n.protocol, n.quant)
	})
	return n.compiled, n.compileErr
}

// Update derives the network that results from a planned topology edit
// set — link weight changes, link additions, link removals — by delta
// recompilation: only the destination trees, quantiser columns and FIB
// columns the edits touch are recomputed; everything else is shared with
// this network. The returned delta carries the patched FIB, the link-ID
// mapping and the dirty-destination list; hand it to Engine.ApplyDelta
// to hot-swap a running dataplane without dropping a packet. The result
// is bit-identical to rebuilding the network from scratch over the
// edited graph (differential-tested in internal/dataplane).
//
// n itself is unchanged and remains fully usable.
//
// An edit set with no net effect — empty, or one that cancels out, like
// a link added and removed in the same batch — returns (n, nil, nil):
// the network is its own result and there is nothing to swap.
func (n *Network) Update(edits ...Edit) (*Network, *TopologyDelta, error) {
	fib, err := n.Compile()
	if err != nil {
		return nil, nil, err
	}
	rec, err := dataplane.NewRecompiler(n.protocol, n.quant, fib)
	if err != nil {
		return nil, nil, err
	}
	d, err := rec.Apply(edits...)
	if err != nil {
		return nil, nil, err
	}
	if d == nil {
		return n, nil, nil
	}
	basic, err := core.New(d.Graph, d.System, d.Table, core.Config{Variant: Basic})
	if err != nil {
		return nil, nil, err
	}
	nn := &Network{g: d.Graph, sys: d.System, tbl: d.Table, quant: d.Quantiser,
		protocol: d.Protocol, basic: basic, name: n.name}
	nn.compileOnce.Do(func() { nn.compiled = d.FIB })
	return nn, d, nil
}

// Recompiler returns a fresh incremental recompiler over this network's
// compiled state, for control planes that chain many edit sets and want
// the recompiler to carry its scratch (and stats) across them.
func (n *Network) Recompiler() (*dataplane.Recompiler, error) {
	fib, err := n.Compile()
	if err != nil {
		return nil, err
	}
	return dataplane.NewRecompiler(n.protocol, n.quant, fib)
}

// CompileBasic compiles the Basic (§4.2) variant's FIB.
func (n *Network) CompileBasic() (*FIB, error) { return dataplane.CompileWith(n.basic, n.quant) }

// Node resolves a node name, returning an error for unknown names.
func (n *Network) Node(name string) (NodeID, error) {
	id := n.g.NodeByName(name)
	if id == graph.NoNode {
		return id, fmt.Errorf("recycle: unknown node %q", name)
	}
	return id, nil
}

// MustLinkBetween returns the link joining two named nodes, panicking when
// absent — intended for examples and tests over known topologies.
func (n *Network) MustLinkBetween(a, b string) LinkID {
	na, err := n.Node(a)
	if err != nil {
		panic(err)
	}
	nb, err := n.Node(b)
	if err != nil {
		panic(err)
	}
	l := n.g.FindLink(na, nb)
	if l == graph.NoLink {
		panic(fmt.Sprintf("recycle: no link %s-%s", a, b))
	}
	return l
}

// Route walks one packet from src to dst under the failure set (nil = no
// failures) using the network's default variant and returns the full
// transcript. Node arguments are names.
func (n *Network) Route(src, dst string, failures *FailureSet) (Result, error) {
	s, err := n.Node(src)
	if err != nil {
		return Result{}, err
	}
	d, err := n.Node(dst)
	if err != nil {
		return Result{}, err
	}
	return n.protocol.Walk(s, d, failures), nil
}

// RouteIDs is Route for resolved node IDs.
func (n *Network) RouteIDs(src, dst NodeID, failures *FailureSet) Result {
	return n.protocol.Walk(src, dst, failures)
}

// RouteBasic walks a packet under the Basic (§4.2) variant, regardless of
// the network's configured default.
func (n *Network) RouteBasic(src, dst NodeID, failures *FailureSet) Result {
	return n.basic.Walk(src, dst, failures)
}

// CycleTable renders a node's cycle-following table in the paper's
// Table 1 format.
func (n *Network) CycleTable(nodeName string) (string, error) {
	id, err := n.Node(nodeName)
	if err != nil {
		return "", err
	}
	return n.protocol.FormatCycleTable(id), nil
}

// HeaderBits returns the PR header cost for this network: 1 PR bit plus
// the DD bits needed for its rank-quantised discriminator codes. With
// hop-count discriminators this equals the paper's ⌈log2 d⌉ for diameter
// d; with weight sums it is what quantisation saves over raw values.
func (n *Network) HeaderBits() int { return 1 + n.quant.Bits() }

// Quantiser returns the network's rank quantiser: the order-preserving
// bucketisation Compile stamps on the wire.
func (n *Network) Quantiser() *Quantiser { return n.quant }

// WireCodec returns the wire encoding Compile will select for this
// network: CodecDSCP when the quantised code fits 3 bits, CodecFlowLabel
// otherwise.
func (n *Network) WireCodec() WireCodec { return dataplane.CodecFor(n.quant.Bits()) }

// Describe summarises the network for logs.
func (n *Network) Describe() string {
	return fmt.Sprintf("%s: %d nodes, %d links, genus %d, %d header bits, %s codec",
		n.name, n.g.NumNodes(), n.g.NumLinks(), n.Genus(), n.HeaderBits(), n.WireCodec())
}

// SaveEmbedding serialises the network's rotation system in the textual
// rotation format, the artefact the paper's offline embedding server ships
// to routers (§4.3).
func (n *Network) SaveEmbedding(w io.Writer) error {
	return rotation.Write(w, n.sys)
}

// LoadEmbedding parses a rotation system in the textual rotation format
// for the given graph, for use with WithEmbedding.
func LoadEmbedding(r io.Reader, g *Graph) (*RotationSystem, error) {
	return rotation.Read(r, g)
}
