package recycle

import (
	"io"
	"net/http"

	"recycle/internal/eval"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
)

// MetricsRegistry is the unified telemetry registry: named zero-alloc
// counters, gauges and fixed-bucket histograms plus snapshot-time
// collectors, read consistently via Snapshot(). Hand one to
// EngineConfig.Metrics / TxConfig.Metrics to meter the dataplane.
type MetricsRegistry = telemetry.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// MetricsSnapshot is a point-in-time copy of every registered metric,
// with Sub/Merge delta algebra for interval analysis.
type MetricsSnapshot = telemetry.Snapshot

// HistogramSnapshot is one histogram's frozen bucket counts, with
// Mean and Quantile estimators.
type HistogramSnapshot = telemetry.HistogramSnapshot

// FlightRecorder captures per-packet cycle walks in a bounded ring;
// arm it via sim.Config.Recorder.
type FlightRecorder = telemetry.Recorder

// FlightRecorderConfig parameterises NewFlightRecorder: ring capacity,
// sampling rate, (src,dst) match filters, per-flight hop cap.
type FlightRecorderConfig = telemetry.RecorderConfig

// Flight is one recorded packet walk — every hop with its event,
// egress dart and header state — with an Explain() narrative.
type Flight = telemetry.Flight

// FlightHop is one hop of a recorded Flight.
type FlightHop = telemetry.Hop

// NewFlightRecorder builds a flight recorder.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	return telemetry.NewRecorder(cfg)
}

// MetricsTimeline folds a registry's counters into per-epoch deltas
// keyed to link-state events; the simulator maintains one per run
// (Simulator.Timeline).
type MetricsTimeline = telemetry.Timeline

// MetricsEpoch is one epoch of a MetricsTimeline: its interval, label
// and delta snapshot.
type MetricsEpoch = telemetry.Epoch

// MetricsHandler returns an http.Handler serving registry snapshots
// with content negotiation: Prometheus text format for ?format=prom
// (or an Accept header naming text/plain), JSON otherwise.
func MetricsHandler(r *MetricsRegistry) http.Handler { return telemetry.Handler(r) }

// ServeMetrics serves registry snapshots on addr ("/" and "/metrics",
// Prometheus text or JSON by negotiation) in a background goroutine,
// with net/http/pprof mounted under /debug/pprof/. The listen is
// synchronous: a bad or occupied address is an error here, not a
// phantom endpoint. The returned server's Addr carries the bound
// address (useful with ":0").
func ServeMetrics(addr string, r *MetricsRegistry) (*http.Server, error) {
	return telemetry.Serve(addr, r)
}

// Tracer produces causally-linked control-plane spans into a bounded
// ring: compile phases, recompile stages, swap barrier/apply, soak and
// certify lifecycle. Register it on a MetricsRegistry (RegisterCollector)
// to carry spans in every snapshot, or hand it to SoakConfig.Tracer /
// CertifyConfig.Tracer. A nil *Tracer is fully inert, so instrumented
// code needs no enabled? branches.
type Tracer = telemetry.Tracer

// TracerSpan is one live span: a value — call End exactly once.
type TracerSpan = telemetry.Span

// SpanSnapshot is a point-in-time reading of a tracer's ended spans,
// participating in the MetricsSnapshot Sub/Merge delta algebra.
type SpanSnapshot = telemetry.SpanSnapshot

// NewTracer returns a tracer whose ring holds at least capacity ended
// spans (<= 0 selects the default of 4096).
func NewTracer(capacity int) *Tracer { return telemetry.NewTracer(capacity) }

// WriteChromeTrace renders a span snapshot (plus an optional epoch
// timeline) as Chrome trace-event JSON — open the file in
// chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, s *SpanSnapshot, epochs []MetricsEpoch) error {
	return telemetry.WriteChromeTrace(w, s, epochs)
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4).
func WritePrometheus(w io.Writer, s *MetricsSnapshot) error {
	return telemetry.WritePrometheus(w, s)
}

// TraceResult is one flight-recorded resilience draw: the retained
// per-packet cycle walks, the per-epoch counter timeline and the
// aggregate deltas, with the timeline's lossless-exposition invariant
// (summed epoch deltas == aggregate) already verified.
type TraceResult = eval.TraceResult

// TraceResilience replays Monte-Carlo resilience draws on one named
// topology with the full telemetry surface armed — every packet
// flight-recorded, counters folded per link-state epoch — and returns
// the first draw on which PR actually recycled a packet. It is
// RunResilience's explainability counterpart.
func TraceResilience(topology string, cfg ResilienceConfig) (*TraceResult, error) {
	tp, err := topo.ByName(topology)
	if err != nil {
		return nil, err
	}
	return eval.TraceResilience(tp, cfg)
}

// WriteMetricsTimeline renders a per-epoch counter fold as a readable
// table: one row per link-state epoch with the headline deltas.
func WriteMetricsTimeline(w io.Writer, epochs []MetricsEpoch) { eval.WriteTimeline(w, epochs) }
