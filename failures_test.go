package recycle

import (
	"strings"
	"testing"
	"time"
)

// TestFacadeFailureScenario drives the failure subsystem end to end
// through the public facade alone: parse a spec, draw a scenario, ask
// the connectivity oracle, and run the Monte-Carlo harness.
func TestFacadeFailureScenario(t *testing.T) {
	p, err := ParseFailureScenario("mtbf:up=4s,down=300ms+srlg:links=0;1,at=1s,down=500ms")
	if err != nil {
		t.Fatal(err)
	}
	net, err := FromTopology("ring:12")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := p.Generate(net.Graph(), 4*time.Second, FailureDrawSeed(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(net.Graph()); err != nil {
		t.Fatal(err)
	}
	oracle, err := NewConnectivityOracle(net.Graph(), sc)
	if err != nil {
		t.Fatal(err)
	}
	// During [1s, 1.5s) the SRLG holds links 0 and 1 down: node 1 (between
	// them on the ring) is cut off.
	if oracle.ConnectedAt(1, 6, 1200*time.Millisecond) {
		t.Fatal("node 1 connected while both its ring links are SRLG-cut")
	}
	if oracle.Epochs() < 2 {
		t.Fatalf("oracle indexed %d epochs; want ≥ 2", oracle.Epochs())
	}
}

func TestFacadeHandAssembledScenario(t *testing.T) {
	net, err := FromTopology("ring:8")
	if err != nil {
		t.Fatal(err)
	}
	sc := &FailureScenario{Name: "hand", Outages: []Outage{
		LinkOutage(0, time.Second, 2*time.Second),
		NodeOutage(4, time.Second, ForeverOutage),
	}}
	if err := sc.Validate(net.Graph()); err != nil {
		t.Fatal(err)
	}
	var _ FailureProcess = MultiProcess{Processes: []FailureProcess{
		MTBFProcess{MeanUp: time.Second, MeanDown: 100 * time.Millisecond},
		SRLGProcess{Links: []LinkID{0, 1}, At: time.Second},
		FlapProcess{Link: 2, Flaps: 3, Period: 50 * time.Millisecond},
		NodeOutageProcess{Node: 1, At: time.Second},
		RegionalProcess{Center: 0, Radius: 1, At: time.Second},
	}}
}

func TestFacadeRunResilience(t *testing.T) {
	rows, err := RunResilience("ring:12", ResilienceConfig{Draws: 3, Horizon: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows; want PR and reconvergence", len(rows))
	}
	if rows[0].Violations != 0 {
		t.Fatalf("PR violations = %d; want 0", rows[0].Violations)
	}
	var b strings.Builder
	if err := WriteResilience(&b, ResilienceConfig{Panel: Panel{Topologies: []string{"ring:12"}}, Draws: 2, Horizon: time.Second}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "reconvergence") {
		t.Fatalf("report lacks the baseline row:\n%s", b.String())
	}
	if _, err := RunResilience("no-such-topo", ResilienceConfig{Draws: 1}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := ParseFailureScript(strings.NewReader("mtbf:up=2s,down=100ms\n")); err != nil {
		t.Fatal(err)
	}
}
