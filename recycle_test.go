package recycle

import (
	"bytes"
	"strings"
	"testing"

	"recycle/internal/dataplane"
	"recycle/internal/rotation"
	"recycle/internal/telemetry"
)

func TestFromTopologyQuickstart(t *testing.T) {
	net, err := FromTopology("abilene")
	if err != nil {
		t.Fatal(err)
	}
	if net.Genus() != 0 {
		t.Fatalf("genus = %d; want 0 (Abilene is planar)", net.Genus())
	}
	if net.HeaderBits() != 4 {
		t.Fatalf("header bits = %d; want 4", net.HeaderBits())
	}
	fails := NewFailureSet(net.MustLinkBetween("Denver", "KansasCity"))
	res, err := net.Route("Seattle", "NewYork", fails)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered() {
		t.Fatalf("outcome = %v; want delivered", res.Outcome)
	}
	if res.Stretch < 1 {
		t.Fatalf("stretch = %v; want ≥ 1", res.Stretch)
	}
	if !strings.Contains(net.Describe(), "abilene") {
		t.Fatalf("Describe = %q", net.Describe())
	}
}

func TestFromTopologyUnknown(t *testing.T) {
	if _, err := FromTopology("arpanet"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestPaperTopologyShipsEmbedding(t *testing.T) {
	net, err := FromTopology("paper")
	if err != nil {
		t.Fatal(err)
	}
	table, err := net.CycleTable("D")
	if err != nil {
		t.Fatal(err)
	}
	// The published Table 1 content must be present.
	for _, frag := range []string{"IBD", "IED", "IFD"} {
		if !strings.Contains(table, frag) {
			t.Fatalf("cycle table missing %q:\n%s", frag, table)
		}
	}
}

func TestNewNetworkCustomGraph(t *testing.T) {
	g := NewGraph(4, 4)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.MustAddLink(a, b, 1)
	g.MustAddLink(b, c, 1)
	g.MustAddLink(c, d, 1)
	g.MustAddLink(d, a, 1)

	net, err := NewNetwork(g, WithDiscriminator(WeightSum), WithVariant(Full))
	if err != nil {
		t.Fatal(err)
	}
	res := net.RouteIDs(a, c, NewFailureSet(0))
	if !res.Delivered() {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	// Ring detour: a→d→c costs 2; direct SP a→b→c also 2 → stretch 1.
	if res.Stretch != 1 {
		t.Fatalf("stretch = %v; want 1 on the symmetric ring", res.Stretch)
	}
}

func TestLoadNetwork(t *testing.T) {
	src := `# tiny
link a b 1
link b c 1
link c a 1
`
	net, err := LoadNetwork(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Route("a", "c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered() || res.Cost != 1 {
		t.Fatalf("route a→c = %+v", res)
	}
	if _, err := net.Route("a", "zzz", nil); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := LoadNetwork(strings.NewReader("junk\n")); err == nil {
		t.Fatal("bad topology accepted")
	}
}

func TestRouteBasicVariant(t *testing.T) {
	net, err := FromTopology("paper")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := net.Node("A")
	f, _ := net.Node("F")
	fails := NewFailureSet(
		net.MustLinkBetween("D", "E"),
		net.MustLinkBetween("B", "C"),
	)
	// Figure 1(c): Full delivers, Basic loops.
	if res := net.RouteIDs(a, f, fails); !res.Delivered() {
		t.Fatalf("full variant outcome = %v", res.Outcome)
	}
	if res := net.RouteBasic(a, f, fails); res.Outcome != Looped {
		t.Fatalf("basic variant outcome = %v; want looped", res.Outcome)
	}
}

func TestWithEmbedding(t *testing.T) {
	g := NewGraph(3, 3)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.MustAddLink(a, b, 1)
	g.MustAddLink(b, c, 1)
	g.MustAddLink(c, a, 1)
	net, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild over the same graph, forcing the computed embedding.
	net2, err := NewNetwork(g, WithEmbedding(net.Embedding()))
	if err != nil {
		t.Fatal(err)
	}
	if net2.Genus() != 0 {
		t.Fatal("embedding not honoured")
	}
	// A system over a different graph instance must be rejected.
	other, err := FromTopology("abilene")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNetwork(g, WithEmbedding(other.Embedding())); err == nil {
		t.Fatal("foreign embedding accepted")
	}
}

func TestBuiltinTopologies(t *testing.T) {
	names := BuiltinTopologies()
	if len(names) != 4 {
		t.Fatalf("topologies = %v; want 4", names)
	}
	for _, n := range names {
		if _, err := FromTopology(n); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}

func TestRunFigureSmall(t *testing.T) {
	exp, err := RunFigure("2a")
	if err != nil {
		t.Fatal(err)
	}
	if exp.Scenarios != 14 {
		t.Fatalf("scenarios = %d; want 14", exp.Scenarios)
	}
	pr := exp.SeriesFor(PR)
	if pr == nil || pr.DeliveryRate() != 1 {
		t.Fatal("PR series missing or lossy")
	}
	if _, err := RunFigure("9z"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestWriteFigureAndOverheads(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFigure(&buf, "2a"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Packet Re-cycling") {
		t.Fatal("figure output incomplete")
	}
	buf.Reset()
	if err := WriteOverheads(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "teleglobe") {
		t.Fatal("overhead output incomplete")
	}
}

func TestFailureHelpers(t *testing.T) {
	net, err := FromTopology("abilene")
	if err != nil {
		t.Fatal(err)
	}
	singles := SingleFailures(net.Graph())
	if len(singles) != 14 {
		t.Fatalf("single failures = %d; want 14", len(singles))
	}
	multi, err := SampleFailures(net.Graph(), 3, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != 10 {
		t.Fatalf("sampled = %d; want 10", len(multi))
	}
}

func TestCompileFacade(t *testing.T) {
	net, err := FromTopology("abilene")
	if err != nil {
		t.Fatal(err)
	}
	fib, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if fib.NumNodes() != net.Graph().NumNodes() || fib.NumLinks() != net.Graph().NumLinks() {
		t.Fatalf("FIB dimensions %dx%d do not match the graph", fib.NumNodes(), fib.NumLinks())
	}
	if fib.Variant() != Full {
		t.Fatalf("default compiled variant = %v; want Full", fib.Variant())
	}
	basic, err := net.CompileBasic()
	if err != nil {
		t.Fatal(err)
	}
	if basic.Variant() != Basic {
		t.Fatalf("CompileBasic variant = %v; want Basic", basic.Variant())
	}
	// Per-decision equivalence with the interpreted protocol is proven
	// exhaustively in internal/dataplane's differential tests.
}

// TestUpdateFacade drives the topology-churn API end to end: a weight
// cost-out, an addition and a removal through Network.Update, with the
// delta hot-swapped into a running engine.
func TestUpdateFacade(t *testing.T) {
	net, err := FromTopology("abilene")
	if err != nil {
		t.Fatal(err)
	}
	drained := net.MustLinkBetween("Denver", "KansasCity")
	n2, d, err := net.Update(SetWeight(drained, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if d.Structural || len(d.Dirty) == 0 {
		t.Fatalf("weight delta: %+v", d)
	}
	if n2.Graph().Weight(drained) != 1e6 || net.Graph().Weight(drained) == 1e6 {
		t.Fatal("Update must edit the copy, not the original")
	}
	// The drained link is off every shortest path of the new network.
	den, _ := net.Node("Denver")
	kc, _ := net.Node("KansasCity")
	res := n2.RouteIDs(den, kc, nil)
	if !res.Delivered() || res.Hops() < 2 {
		t.Fatalf("drained link still on the shortest path: %+v", res.Path())
	}

	// Hot-swap a running engine onto the delta and probe it.
	fib, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *dataplane.Batch, 1)
	eng := NewEngine(fib, EngineConfig{Shards: 1, OnDone: func(b *dataplane.Batch) { done <- b }})
	if err := eng.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	b := &dataplane.Batch{Pkts: []dataplane.Packet{{Node: den, Dst: kc, Ingress: NoDart}}}
	if !eng.Submit(b) {
		t.Fatal("Submit failed")
	}
	out := <-done
	if eng.Close() != 1 {
		t.Fatal("engine should have decided exactly one packet")
	}
	want := d.FIB.Decide(den, kc, NoDart, Header{}, NewLinkState(d.Graph.NumLinks()))
	if !out.Pkts[0].OK || out.Pkts[0].Egress != want.Egress {
		t.Fatalf("post-swap decision %+v; want egress %d", out.Pkts[0], want.Egress)
	}

	// Structural edits: add a bypass, then decommission the drained link.
	n3, d3, err := n2.Update(AddLink(den, kc, 2500), RemoveLink(drained))
	if err != nil {
		t.Fatal(err)
	}
	if !d3.Structural || d3.LinkMap[drained] != NoLink {
		t.Fatalf("structural delta: structural=%v map=%v", d3.Structural, d3.LinkMap)
	}
	if n3.Graph().NumLinks() != n2.Graph().NumLinks() {
		t.Fatalf("add+remove should keep the link count, got %d", n3.Graph().NumLinks())
	}
	if res := n3.RouteIDs(den, kc, nil); !res.Delivered() || res.Hops() != 1 {
		t.Fatalf("bypass link unused: %+v", res.Path())
	}

	// The documented no-op contract: an empty edit set — or one that
	// cancels out — returns the network itself with a nil delta.
	n4, d4, err := n3.Update()
	if err != nil || n4 != n3 || d4 != nil {
		t.Fatalf("empty Update = (%p, %v, %v); want (%p, nil, nil)", n4, d4, err, n3)
	}
	bypass := n3.Graph().FindLink(den, kc)
	added := LinkID(n3.Graph().NumLinks()) // adds append at the end
	n5, d5, err := n3.Update(AddLink(den, NodeID(0), 10), RemoveLink(added), SetWeight(bypass, n3.Graph().Weight(bypass)))
	if err != nil || n5 != n3 || d5 != nil {
		t.Fatalf("cancelling Update = (%p, %v, %v); want the original network back", n5, d5, err)
	}
}

func TestEngineFacade(t *testing.T) {
	net, err := FromTopology("abilene")
	if err != nil {
		t.Fatal(err)
	}
	fib, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *dataplane.Batch, 1)
	eng := NewEngine(fib, EngineConfig{Shards: 1, OnDone: func(b *dataplane.Batch) { done <- b }})
	src, _ := net.Node("Seattle")
	dst, _ := net.Node("NewYork")
	b := &dataplane.Batch{Pkts: []dataplane.Packet{{Node: src, Dst: dst, Ingress: rotation.NoDart}}}
	if !eng.Submit(b) {
		t.Fatal("Submit failed on an empty engine")
	}
	out := <-done
	if eng.Close() != 1 {
		t.Fatal("engine should have decided exactly one packet")
	}
	if !out.Pkts[0].OK || out.Pkts[0].Egress == rotation.NoDart {
		t.Fatalf("engine decision: %+v", out.Pkts[0])
	}
}

// TestGeneratedTopologyFacade: FromTopology accepts generator specs, and
// large-diameter networks report the flow-label codec with quantised
// header bits.
func TestGeneratedTopologyFacade(t *testing.T) {
	net, err := FromTopology("ring:24")
	if err != nil {
		t.Fatal(err)
	}
	if net.Genus() != 0 {
		t.Fatalf("ring genus = %d; want 0", net.Genus())
	}
	if net.WireCodec() != CodecFlowLabel {
		t.Fatalf("ring:24 codec = %v; want flow-label", net.WireCodec())
	}
	if net.HeaderBits() != 5 { // 1 PR + 4 DD bits for ranks ≤ 12
		t.Fatalf("header bits = %d; want 5", net.HeaderBits())
	}
	if q := net.Quantiser(); q == nil || q.MaxRank() != 12 {
		t.Fatalf("quantiser max rank wrong: %+v", q)
	}
	if !strings.Contains(net.Describe(), "flow-label") {
		t.Fatalf("Describe() misses the codec: %s", net.Describe())
	}
	fails := NewFailureSet(0)
	res := net.RouteIDs(0, 12, fails)
	if !res.Delivered() {
		t.Fatalf("ring:24 recovery outcome = %v", res.Outcome)
	}
	if _, err := FromTopology("ring:2"); err == nil {
		t.Fatal("bad generator spec accepted")
	}
}

// TestWireFacadeIPv6: the exported IPv6 codec, address plan and compiled
// wire path interoperate — one recovered hop on real IPv6 bytes.
func TestWireFacadeIPv6(t *testing.T) {
	net, err := FromTopology("ring:16")
	if err != nil {
		t.Fatal(err)
	}
	fib, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if fib.Codec() != CodecFlowLabel {
		t.Fatalf("codec = %v; want flow-label", fib.Codec())
	}
	h := IPv6{HopLimit: 64, NextHeader: 17, Src: NodeAddr6(0), Dst: NodeAddr6(8)}
	buf, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	st := LinkStateFrom(net.Graph().NumLinks(), NewFailureSet(0))
	eg, v := fib.ForwardWire(0, NoDart, st, buf)
	if v != WireForward || eg == NoDart {
		t.Fatalf("verdict %v egress %d; want forward", v, eg)
	}
	var back IPv6
	if err := back.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	mark, err := back.PRMark()
	if err != nil {
		t.Fatalf("recovered packet carries no mark: %v", err)
	}
	if !mark.PR {
		t.Fatal("PR bit not set after recovery hop")
	}
	// A wire batch through the engine facade.
	done := make(chan *dataplane.Batch, 1)
	eng := NewEngine(fib, EngineConfig{Shards: 1, OnDone: func(b *dataplane.Batch) { done <- b }})
	h2 := IPv6{HopLimit: 64, NextHeader: 17, Src: NodeAddr6(1), Dst: NodeAddr6(5)}
	buf2, err := h2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wb := &dataplane.Batch{Wire: []WirePacket{{Node: 1, Ingress: NoDart, Buf: buf2}}}
	if !eng.Submit(wb) {
		t.Fatal("Submit failed")
	}
	out := <-done
	if eng.Close() != 1 {
		t.Fatal("engine should have decided exactly one frame")
	}
	if out.Wire[0].Verdict != WireForward {
		t.Fatalf("engine wire verdict: %v", out.Wire[0].Verdict)
	}
}

// TestTrafficFacade: the exported traffic types parse, validate and
// stream deterministically through the facade alone.
func TestTrafficFacade(t *testing.T) {
	src, err := ParseTrafficSpec("mmpp:on=12150,off=0,dwell=20ms/80ms,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "mmpp" {
		t.Fatalf("source name = %q; want mmpp", src.Name())
	}
	a, b := src.Stream(), src.Stream()
	for i := 0; i < 100; i++ {
		ga, ba, _ := a.Next()
		gb, bb, _ := b.Next()
		if ga != gb || ba != bb {
			t.Fatalf("emission %d differs between streams of one source", i)
		}
	}
	var pareto SizeDist = BoundedPareto{Alpha: 1.3, MinBits: 512, MaxBits: 96000}
	if err := pareto.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTrafficSpec("poisson:rate=-1"); err == nil ||
		!strings.Contains(err.Error(), "non-positive rate") {
		t.Fatalf("bad spec error = %v; want descriptive rate error", err)
	}
	trace, err := ReadTrafficTrace(strings.NewReader("0.0 1000\n0.5 1000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Records) != 2 {
		t.Fatalf("trace records = %d; want 2", len(trace.Records))
	}
	var _ TrafficSource = FixedTraffic{Interval: 1}
	var _ TrafficSource = PoissonTraffic{Rate: 1}
	var _ TrafficSource = ReplayTraffic{}
}

// TestEgressFacade: an engine built purely from exported types runs the
// full ingest → decide → transmit pipeline, with per-dart pacing stats.
func TestEgressFacade(t *testing.T) {
	net, err := FromTopology("abilene")
	if err != nil {
		t.Fatal(err)
	}
	fib, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tx := NewTxQueue(fib, TxConfig{BandwidthBps: 1e12, Metrics: reg})
	done := make(chan *dataplane.Batch, 1)
	eng := NewEngine(fib, EngineConfig{
		Shards: 1,
		Egress: tx,
		OnDone: func(b *Batch) { done <- b },
	})
	b := &Batch{Pkts: []Packet{
		{Node: 0, Dst: 5, Ingress: NoDart, Bits: 8192},
		{Node: 2, Dst: 7, Ingress: NoDart, Bits: 4096},
	}}
	if !eng.Submit(b) {
		t.Fatal("Submit failed")
	}
	<-done
	eng.Close()
	st := reg.Snapshot()
	if st.Counter(dataplane.MetricTxSent) != 2 || st.Counter(dataplane.MetricTxSentBits) != 8192+4096 {
		t.Fatalf("egress stats = %+v; want 2 sent, 12288 bits", st.Counters)
	}
	if dataplane.TxDropped(st) != 0 {
		t.Fatalf("unexpected drops: %+v", st.Counters)
	}
	if TxSent.String() != "sent" || TxDropQueueFull.String() != "drop-queue-full" {
		t.Fatal("verdict names changed")
	}
}

// TestWriteTrafficLossFacade: the traffic-mix loss report runs through
// the facade on a small custom panel.
func TestWriteTrafficLossFacade(t *testing.T) {
	var buf bytes.Buffer
	panel := []TrafficSource{PoissonTraffic{Rate: 100, Seed: 1}}
	if err := WriteTrafficLoss(&buf, "abilene", panel); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "poisson") {
		t.Fatalf("report missing poisson row:\n%s", buf.String())
	}
}
