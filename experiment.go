package recycle

import (
	"io"

	"recycle/internal/eval"
	"recycle/internal/graph"
)

// Experiment is a completed stretch experiment (one Figure 2 panel).
type Experiment = eval.Experiment

// Scheme identifies a recovery scheme in experiments.
type Scheme = eval.SchemeID

// Schemes compared by the paper's evaluation.
const (
	// Reconvergence is the optimal post-convergence baseline.
	Reconvergence = eval.Reconvergence
	// FCP is the Failure-Carrying Packets baseline.
	FCP = eval.FCP
	// PR is Packet Re-cycling (Full variant).
	PR = eval.PR
)

// Figures lists the paper's Figure 2 panels ("2a".."2f").
func Figures() []eval.Figure { return eval.Figures() }

// RunFigure regenerates one Figure 2 panel by ID.
func RunFigure(id string) (*Experiment, error) {
	f, err := eval.FigureByID(id)
	if err != nil {
		return nil, err
	}
	return eval.RunFigure(f)
}

// WriteFigure runs a panel and renders its CCDF data table to w.
func WriteFigure(w io.Writer, id string) error {
	f, err := eval.FigureByID(id)
	if err != nil {
		return err
	}
	exp, err := eval.RunFigure(f)
	if err != nil {
		return err
	}
	return eval.WriteCCDF(w, exp, f.Title)
}

// WriteOverheads renders the §6 overhead comparison for the named built-in
// topologies (nil = all three ISP topologies).
func WriteOverheads(w io.Writer, names []string) error {
	if names == nil {
		names = []string{"abilene", "geant", "teleglobe"}
	}
	return eval.WriteOverheadReport(w, names)
}

// WriteTrafficLoss renders the §1 loss-window experiment over a panel
// of traffic sources (nil = the default fixed/Poisson/MMPP/Pareto mix)
// for a built-in topology: every scheme replays the identical offered
// load, so the loss columns compare recovery, not luck.
func WriteTrafficLoss(w io.Writer, topology string, sources []TrafficSource) error {
	return eval.WriteTrafficLossReport(w, eval.TrafficLossConfig{
		Panel:   eval.Panel{Topologies: []string{topology}},
		Sources: sources,
	})
}

// SingleFailures enumerates every connectivity-preserving single-link
// failure of a graph.
func SingleFailures(g *Graph) []*FailureSet { return graph.SingleFailureScenarios(g) }

// SampleFailures draws count connectivity-preserving failure sets of k
// links each, deterministically from seed.
func SampleFailures(g *Graph, k, count int, seed int64) ([]*FailureSet, error) {
	return graph.SampleFailureScenarios(g, k, count, seed)
}
