package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: recycle/internal/dataplane
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFIBDecide-8         	87966954	        12.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkFIBDecide-8         	87966954	        14.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkFIBDecide-8         	87966954	        13.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngine/geant/shards-1-8	 4644526	       250.0 ns/op	        4000000 decisions/s	      10 B/op	       0 allocs/op
BenchmarkRecompileDelta-8    	   10000	     66000 ns/op	   95363 B/op	     155 allocs/op
PASS
ok  	recycle/internal/dataplane	30.1s
`

func TestParse(t *testing.T) {
	res, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	fib, ok := res["BenchmarkFIBDecide"]
	if !ok {
		t.Fatalf("FIBDecide missing: %v", res)
	}
	if fib.NsPerOp != 13 || fib.Runs != 3 {
		t.Fatalf("median aggregation wrong: %+v", fib)
	}
	eng, ok := res["BenchmarkEngine/geant/shards-1"]
	if !ok {
		t.Fatalf("sub-benchmark key wrong: %v", res)
	}
	if eng.NsPerOp != 250 || eng.BytesPerOp != 10 {
		t.Fatalf("engine parse wrong: %+v", eng)
	}
	if _, ok := res["BenchmarkRecompileDelta"]; !ok {
		t.Fatal("recompile benchmark missing")
	}
}

func TestCompareGates(t *testing.T) {
	base := map[string]Result{
		"BenchmarkFIBDecide":             {NsPerOp: 10, AllocsPerOp: 0},
		"BenchmarkEngine/geant/shards-1": {NsPerOp: 100, AllocsPerOp: 2},
		"BenchmarkOther":                 {NsPerOp: 50},
	}
	gates := []string{"BenchmarkFIBDecide", "BenchmarkEngine"}

	// Within budget: +10% ns/op, allocs flat, ungated wildly slower.
	cur := map[string]Result{
		"BenchmarkFIBDecide":             {NsPerOp: 11, AllocsPerOp: 0},
		"BenchmarkEngine/geant/shards-1": {NsPerOp: 105, AllocsPerOp: 2},
		"BenchmarkOther":                 {NsPerOp: 500},
	}
	var buf bytes.Buffer
	if regs := Compare(&buf, base, cur, gates, 0.20); len(regs) != 0 {
		t.Fatalf("within-budget run flagged: %v", regs)
	}

	// ns/op blowout on a gated benchmark.
	cur["BenchmarkFIBDecide"] = Result{NsPerOp: 13, AllocsPerOp: 0}
	regs := Compare(&buf, base, cur, gates, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkFIBDecide") {
		t.Fatalf("ns/op regression not flagged: %v", regs)
	}

	// Any allocs/op increase fails, even inside the ns/op budget.
	cur["BenchmarkFIBDecide"] = Result{NsPerOp: 10, AllocsPerOp: 1}
	regs = Compare(&buf, base, cur, gates, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("allocs regression not flagged: %v", regs)
	}

	// A gated benchmark vanishing from the results fails.
	delete(cur, "BenchmarkFIBDecide")
	regs = Compare(&buf, base, cur, gates, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("missing gate not flagged: %v", regs)
	}

	// New benchmarks never fail.
	cur["BenchmarkFIBDecide"] = Result{NsPerOp: 10}
	cur["BenchmarkEngine/new-case"] = Result{NsPerOp: 1}
	if regs := Compare(&buf, base, cur, gates, 0.20); len(regs) != 0 {
		t.Fatalf("new benchmark flagged: %v", regs)
	}
	if !strings.Contains(buf.String(), "(new)") {
		t.Fatal("new benchmark not reported")
	}

	// Gates match on sub-benchmark boundaries only: "BenchmarkEngine"
	// must not gate the sibling "BenchmarkEngineEgress".
	base["BenchmarkEngineEgress/geant"] = Result{NsPerOp: 100}
	cur["BenchmarkEngineEgress/geant"] = Result{NsPerOp: 900}
	if regs := Compare(&buf, base, cur, gates, 0.20); len(regs) != 0 {
		t.Fatalf("sibling benchmark wrongly gated: %v", regs)
	}
}

// TestParseSingleCore pins the GOMAXPROCS=1 convention: go test appends
// no CPU suffix there, and a naive stripper would eat real
// sub-benchmark suffixes like shards-2. Keys from a single-core box
// must match keys from a multi-core box.
func TestParseSingleCore(t *testing.T) {
	oneCore := `BenchmarkFIBDecide         	87966954	        12.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngine/geant/shards-1	 4644526	       250.0 ns/op	      10 B/op	       0 allocs/op
BenchmarkEngine/geant/shards-2	 4644526	       150.0 ns/op	      10 B/op	       0 allocs/op
`
	res, err := Parse(strings.NewReader(oneCore))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BenchmarkFIBDecide", "BenchmarkEngine/geant/shards-1", "BenchmarkEngine/geant/shards-2"} {
		if _, ok := res[want]; !ok {
			t.Fatalf("key %q missing: %v", want, res)
		}
	}

	eightCore := strings.ReplaceAll(oneCore, "BenchmarkFIBDecide  ", "BenchmarkFIBDecide-8")
	eightCore = strings.ReplaceAll(eightCore, "shards-1", "shards-1-8")
	eightCore = strings.ReplaceAll(eightCore, "shards-2", "shards-2-8")
	res8, err := Parse(strings.NewReader(eightCore))
	if err != nil {
		t.Fatal(err)
	}
	for name := range res {
		if _, ok := res8[name]; !ok {
			t.Fatalf("multi-core key set diverged: %v vs %v", res8, res)
		}
	}
}
