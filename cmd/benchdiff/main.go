// Command benchdiff gates CI on benchmark regressions: it parses `go
// test -bench` output, aggregates repeated runs (-count=N) by median,
// renders a benchstat-style comparison against a committed baseline, and
// exits non-zero when a gated benchmark regressed — >20% ns/op by
// default, or any allocs/op increase.
//
//	go test -bench . -benchmem -count=5 ./... | tee bench.txt
//	benchdiff -baseline BENCH_baseline.json bench.txt        # compare
//	benchdiff -baseline BENCH_baseline.json -write bench.txt # refresh
//
// Benchmark names are keyed without the -NCPU suffix so baselines travel
// between machines with different core counts; the gate list matches by
// name prefix (sub-benchmarks included).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one aggregated benchmark: median over repeated runs.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Runs        int     `json:"runs"`
}

// Baseline is the committed reference file.
type Baseline struct {
	// Note records how the file was produced, for humans.
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON to compare against (or write)")
		write        = flag.Bool("write", false, "write the parsed results as the new baseline instead of comparing")
		gate         = flag.String("gate", "BenchmarkFIBDecide,BenchmarkEngine", "comma-separated benchmark name prefixes that fail the build on regression")
		threshold    = flag.Float64("threshold", 0.20, "relative ns/op regression that fails a gated benchmark")
		note         = flag.String("note", "", "note stored in the baseline with -write")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, err := Parse(in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *write {
		if err := writeBaseline(*baselinePath, results, *note); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(results), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *baselinePath, err))
	}
	gates := splitGates(*gate)
	regressions := Compare(os.Stdout, base.Benchmarks, results, gates, *threshold)
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d gated regression(s):\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: gated benchmarks within budget")
}

func splitGates(s string) []string {
	var out []string
	for _, g := range strings.Split(s, ",") {
		if g = strings.TrimSpace(g); g != "" {
			out = append(out, g)
		}
	}
	return out
}

// Parse reads `go test -bench` output and aggregates repeated runs of
// each benchmark (keyed without the -NCPU suffix) by median.
func Parse(r io.Reader) (map[string]Result, error) {
	samples := map[string][][3]float64{} // ns, B, allocs per run
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, vals, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		samples[name] = append(samples[name], vals)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// go test appends "-GOMAXPROCS" to every name — except when
	// GOMAXPROCS is 1, when it appends nothing. A trailing "-N" is
	// therefore the CPU marker only when the same N trails every
	// benchmark; stripping anything less universal would eat real
	// sub-benchmark suffixes like "shards-2". This keys baselines
	// identically across machines with any core count.
	suffix, universal := "", true
	for name := range samples {
		i := strings.LastIndex(name, "-")
		if i < 0 {
			universal = false
			break
		}
		tail := name[i:]
		if _, err := strconv.Atoi(tail[1:]); err != nil {
			universal = false
			break
		}
		if suffix == "" {
			suffix = tail
		} else if suffix != tail {
			universal = false
			break
		}
	}
	out := make(map[string]Result, len(samples))
	for name, runs := range samples {
		key := name
		if universal && suffix != "" {
			key = strings.TrimSuffix(name, suffix)
		}
		out[key] = Result{
			NsPerOp:     medianOf(runs, 0),
			BytesPerOp:  medianOf(runs, 1),
			AllocsPerOp: medianOf(runs, 2),
			Runs:        len(runs),
		}
	}
	return out, nil
}

// parseLine extracts (name, [ns/op, B/op, allocs/op]) from one benchmark
// result line; ok is false for any other line.
func parseLine(line string) (string, [3]float64, bool) {
	var vals [3]float64
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", vals, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", vals, false // not an iteration count — e.g. a status line
	}
	name := fields[0]
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			vals[0], seen = v, true
		case "B/op":
			vals[1] = v
		case "allocs/op":
			vals[2] = v
		}
	}
	return name, vals, seen
}

func medianOf(runs [][3]float64, idx int) float64 {
	vals := make([]float64, len(runs))
	for i, r := range runs {
		vals[i] = r[idx]
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// Compare renders the old-vs-new table and returns the gated-regression
// messages: a gated benchmark fails on ns/op growth beyond threshold or
// on any allocs/op increase. Benchmarks absent from the baseline are
// reported as new and never fail; gated baseline entries missing from
// the results fail (a gate that silently stops running is a regression
// of the gate itself).
func Compare(w io.Writer, base, cur map[string]Result, gates []string, threshold float64) []string {
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	// A gate matches the exact benchmark or its sub-benchmarks ("g" or
	// "g/..."), never a longer sibling name — "BenchmarkEngine" must not
	// gate "BenchmarkEngineEgress".
	gated := func(name string) bool {
		for _, g := range gates {
			if name == g || strings.HasPrefix(name, g+"/") {
				return true
			}
		}
		return false
	}

	var regressions []string
	fmt.Fprintf(w, "%-52s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs")
	for _, name := range names {
		c := cur[name]
		b, ok := base[name]
		mark := " "
		if gated(name) {
			mark = "*"
		}
		if !ok {
			fmt.Fprintf(w, "%s%-51s %14s %14.1f %8s %10.0f\n", mark, name, "(new)", c.NsPerOp, "", c.AllocsPerOp)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		allocNote := fmt.Sprintf("%.0f→%.0f", b.AllocsPerOp, c.AllocsPerOp)
		fmt.Fprintf(w, "%s%-51s %14.1f %14.1f %+7.1f%% %10s\n", mark, name, b.NsPerOp, c.NsPerOp, delta*100, allocNote)
		if !gated(name) {
			continue
		}
		if delta > threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op %+.1f%% (%.1f → %.1f, budget %+.0f%%)", name, delta*100, b.NsPerOp, c.NsPerOp, threshold*100))
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op rose %.0f → %.0f", name, b.AllocsPerOp, c.AllocsPerOp))
		}
	}
	for name := range base {
		if _, ok := cur[name]; !ok && gated(name) {
			regressions = append(regressions, fmt.Sprintf("%s: gated benchmark missing from results", name))
		}
	}
	sort.Strings(regressions)
	return regressions
}

func writeBaseline(path string, results map[string]Result, note string) error {
	out, err := json.MarshalIndent(Baseline{Note: note, Benchmarks: results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
