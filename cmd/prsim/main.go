// Command prsim regenerates the paper's evaluation artefacts from the
// command line:
//
//	prsim -fig 2a              # one Figure 2 panel (CCDF data table)
//	prsim -all                 # all six panels
//	prsim -overheads           # the §6 overhead comparison table
//	prsim -losswindow          # the §1 loss-window experiment
//	prsim -fig 2e -scenarios 500 -seed 7
//
// and exercises the compiled dataplane:
//
//	prsim -losswindow -dataplane compiled       # PR on the compiled FIB
//	prsim -throughput -topo geant -shards 4     # engine decisions/sec
//	prsim -throughput -topo ring:24 -wire       # wire frames/sec (codec auto)
//
// -topo accepts the built-in names and generator specs (ring:24,
// wring:16@7, grid:4x8, chain:12) for large-diameter workloads, where
// Compile selects the IPv6 flow-label codec automatically.
//
// Output is plain text suitable for gnuplot or column(1).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/eval"
	"recycle/internal/graph"
	"recycle/internal/header"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/sim"
	"recycle/internal/topo"
)

func main() {
	var (
		figID      = flag.String("fig", "", "figure panel to regenerate (2a..2f)")
		all        = flag.Bool("all", false, "regenerate every Figure 2 panel")
		overheads  = flag.Bool("overheads", false, "print the §6 overhead comparison")
		lossWindow = flag.Bool("losswindow", false, "run the §1 loss-window experiment")
		ablation   = flag.String("embedding-ablation", "", "delivery-vs-embedding report for a topology")
		scenarios  = flag.Int("scenarios", 0, "override multi-failure scenario count")
		seed       = flag.Int64("seed", 0, "override scenario sampling seed")
		unit       = flag.Bool("unit-weights", false, "use hop-count link weights instead of distances")
		plane      = flag.String("dataplane", "interpreted", "PR forwarding engine: interpreted (core.Protocol) or compiled (dataplane FIB)")
		throughput = flag.Bool("throughput", false, "measure compiled-dataplane decisions/sec")
		topoName   = flag.String("topo", "geant", "topology for -throughput (built-in name or generator spec like ring:24)")
		shards     = flag.Int("shards", 0, "engine shard count for -throughput (0 = auto)")
		packets    = flag.Int("packets", 2_000_000, "decision count for -throughput")
		batchSize  = flag.Int("batch", 256, "packets per batch for -throughput")
		wire       = flag.Bool("wire", false, "-throughput on raw packet bytes through ForwardWire (codec per topology)")
	)
	flag.Parse()

	if *plane != "interpreted" && *plane != "compiled" {
		fatal(fmt.Errorf("unknown -dataplane %q (want interpreted or compiled)", *plane))
	}
	if *plane == "compiled" && !*lossWindow && !*throughput {
		fatal(fmt.Errorf("-dataplane applies to -losswindow only (-throughput always runs the compiled engine)"))
	}

	switch {
	case *all:
		for _, f := range eval.Figures() {
			if err := runFigure(f, *scenarios, *seed, *unit); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	case *figID != "":
		f, err := eval.FigureByID(*figID)
		if err != nil {
			fatal(err)
		}
		if err := runFigure(f, *scenarios, *seed, *unit); err != nil {
			fatal(err)
		}
	case *overheads:
		if err := eval.WriteOverheadReport(os.Stdout, []string{"abilene", "geant", "teleglobe"}); err != nil {
			fatal(err)
		}
	case *lossWindow:
		if err := runLossWindow(*plane); err != nil {
			fatal(err)
		}
	case *throughput:
		if err := runThroughput(*topoName, *shards, *packets, *batchSize, *wire); err != nil {
			fatal(err)
		}
	case *ablation != "":
		s := *seed
		if s == 0 {
			s = 7
		}
		if err := eval.WriteEmbeddingDeliveryReport(os.Stdout, *ablation, s); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runFigure(f eval.Figure, scenarios int, seed int64, unitWeights bool) error {
	if scenarios > 0 {
		f.Scenarios = scenarios
	}
	if seed != 0 {
		f.Seed = seed
	}
	f.UnitWeights = unitWeights
	exp, err := eval.RunFigure(f)
	if err != nil {
		return err
	}
	return eval.WriteCCDF(os.Stdout, exp, fmt.Sprintf("Figure %s: %s", f.ID, f.Title))
}

// runLossWindow reproduces the §1 motivation: packets lost on a loaded
// OC-192 during a one-second outage, per scheme. The plane argument picks
// PR's engine: the interpreted core.Protocol or the compiled FIB.
func runLossWindow(plane string) error {
	tp := topo.Abilene(topo.UnitWeights)
	g := tp.Graph
	src := g.NodeByName("Seattle")
	dst := g.NodeByName("LosAngeles")

	sys, err := (embedding.Auto{Seed: 1}).Embed(g)
	if err != nil {
		return err
	}
	prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		return err
	}
	var prScheme sim.Scheme = &sim.PRScheme{Protocol: prot}
	if plane == "compiled" {
		fib, err := dataplane.Compile(prot)
		if err != nil {
			return err
		}
		prScheme = &sim.CompiledPRScheme{FIB: fib}
	}
	// 20%-loaded OC-192 at 1 kB packets ≈ 243k pps; scaled 1:100 for the
	// simulation (2430 pps) — losses scale linearly with rate.
	const pps = 2430.0
	const scale = 100.0
	schemes := []sim.Scheme{
		prScheme,
		&sim.FCPScheme{},
		&sim.ReconvScheme{},
	}
	fmt.Printf("# §1 loss window: Seattle→LosAngeles flow, first-hop link fails at t=1s\n")
	fmt.Printf("# OC-192 at 20%% load ≈ 243k pps of 1 kB packets (simulated 1:%.0f)\n", scale)
	fmt.Printf("%-28s %-10s %-10s %-12s %-10s\n", "scheme", "generated", "delivered", "lost(scaled)", "lost(OC192)")
	for _, s := range schemes {
		res, err := sim.RunLossWindow(sim.Config{
			Graph:          g,
			Scheme:         s,
			Horizon:        3 * time.Second,
			DetectionDelay: 50 * time.Millisecond,
		}, src, dst, pps, time.Second)
		if err != nil {
			return err
		}
		lost := res.Generated - res.Delivered
		fmt.Printf("%-28s %-10d %-10d %-12d %-10.0f\n",
			res.Scheme, res.Generated, res.Delivered, lost, float64(lost)*scale)
	}
	return nil
}

// runThroughput measures the compiled dataplane: decisions/sec on the
// sharded engine over a realistic mix of shortest-path and cycle-following
// packets, with one link failed so recovery branches are exercised. With
// wire=true the workload is raw packet bytes instead — IPv4 or IPv6
// frames matching the codec Compile selected — pushed through
// ForwardWire's byte-rewriting fast path.
func runThroughput(topoName string, shards, packets, batchSize int, wire bool) error {
	tp, err := topo.ByName(topoName)
	if err != nil {
		return err
	}
	g := tp.Graph
	sys := tp.Embedding
	if sys == nil {
		if sys, err = (embedding.Auto{Seed: 1}).Embed(g); err != nil {
			return err
		}
	}
	prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		return err
	}
	fib, err := dataplane.Compile(prot)
	if err != nil {
		return err
	}
	if batchSize < 1 {
		batchSize = 256
	}
	batches := (packets + batchSize - 1) / batchSize

	free := make(chan *dataplane.Batch, 1024)
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
		Shards: shards,
		OnDone: func(b *dataplane.Batch) { free <- b },
	})
	eng.SetLink(0, true) // exercise detect/continue/resume branches too
	// Pre-generate the workload: a mostly-shortest-path mix with one in
	// four packets cycle following. Every packet carries a concrete
	// ingress dart, so recycled batches stay valid whatever header the
	// previous pass left behind.
	rng := rand.New(rand.NewSource(1))
	const pool = 64
	// Wire frames mutate in place (marks, TTL, checksum); each batch
	// keeps a pristine template per frame and restores the whole header
	// every pass, so recycled batches replay the identical workload —
	// recovery branches included — instead of accumulating PR marks.
	templates := make(map[*dataplane.Batch][][]byte, pool)
	for i := 0; i < pool; i++ {
		b := &dataplane.Batch{}
		if wire {
			b.Wire = make([]dataplane.WirePacket, batchSize)
			tmpl := make([][]byte, batchSize)
			for j := range b.Wire {
				node := graph.NodeID(rng.Intn(g.NumNodes()))
				dst := graph.NodeID(rng.Intn(g.NumNodes()))
				buf, err := fib.NewWireFrame(node, dst)
				if err != nil {
					return err
				}
				ingress := rotation.NoDart
				if rng.Intn(4) == 0 {
					// One in four frames is mid-recovery: PR-marked with
					// a concrete ingress dart, so the cycle-following
					// branch runs in wire mode too (matching the
					// abstract workload's mix).
					nb := g.Neighbors(node)[rng.Intn(g.Degree(node))]
					ingress = rotation.ReverseID(sys.OutgoingDart(node, nb.Link))
					if err := markWireFrame(fib, buf, uint32(rng.Intn(1<<fib.DDBits()))); err != nil {
						return err
					}
				}
				tmpl[j] = append([]byte(nil), buf...)
				b.Wire[j] = dataplane.WirePacket{Node: node, Ingress: ingress, Buf: buf}
			}
			templates[b] = tmpl
		} else {
			b.Pkts = make([]dataplane.Packet, batchSize)
			for j := range b.Pkts {
				node := graph.NodeID(rng.Intn(g.NumNodes()))
				nb := g.Neighbors(node)[rng.Intn(g.Degree(node))]
				b.Pkts[j] = dataplane.Packet{
					Node:    node,
					Dst:     graph.NodeID(rng.Intn(g.NumNodes())),
					Ingress: rotation.ReverseID(sys.OutgoingDart(node, nb.Link)),
					Hdr:     core.Header{PR: rng.Intn(4) == 0, DD: float64(rng.Intn(8))},
				}
			}
		}
		free <- b
	}
	start := time.Now()
	for i := 0; i < batches; i++ {
		b := <-free
		if wire {
			tmpl := templates[b]
			for j := range b.Wire {
				copy(b.Wire[j].Buf, tmpl[j])
			}
		}
		for !eng.Submit(b) {
			// Rings full: the workers are behind; yield and retry.
			time.Sleep(10 * time.Microsecond)
		}
	}
	decided := eng.Close()
	elapsed := time.Since(start)
	pps := float64(decided) / elapsed.Seconds()
	unit := "decisions"
	if wire {
		unit = "frames"
	}
	fmt.Printf("# compiled dataplane throughput\n")
	fmt.Printf("topology   %s (%d nodes, %d links)\n", tp.Name, g.NumNodes(), g.NumLinks())
	fmt.Printf("codec      %s (%d DD bits)\n", fib.Codec(), fib.DDBits())
	fmt.Printf("shards     %d\n", eng.Shards())
	fmt.Printf("batch      %d packets\n", batchSize)
	fmt.Printf("%-10s %d in %v\n", unit, decided, elapsed.Round(time.Millisecond))
	fmt.Printf("rate       %.1f M %s/sec\n", pps/1e6, unit)
	return nil
}

// markWireFrame stamps a PR mark with the given DD code into a frame in
// place, in the frame's address family, repairing the IPv4 checksum.
func markWireFrame(fib *dataplane.FIB, buf []byte, dd uint32) error {
	if fib.Codec() == dataplane.CodecFlowLabel {
		fl, err := header.EncodeFlowLabel(header.Mark{PR: true, DD: dd})
		if err != nil {
			return err
		}
		buf[1] = buf[1]&0xF0 | byte(fl>>16)
		buf[2] = byte(fl >> 8)
		buf[3] = byte(fl)
		return nil
	}
	dscp, err := header.EncodeDSCP(header.Mark{PR: true, DD: dd})
	if err != nil {
		return err
	}
	buf[1] = dscp << 2
	buf[10], buf[11] = 0, 0
	ck := header.Checksum(buf[:header.HeaderLen])
	buf[10], buf[11] = byte(ck>>8), byte(ck)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prsim:", err)
	os.Exit(1)
}
