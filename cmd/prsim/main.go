// Command prsim regenerates the paper's evaluation artefacts from the
// command line:
//
//	prsim -fig 2a              # one Figure 2 panel (CCDF data table)
//	prsim -all                 # all six panels
//	prsim -overheads           # the §6 overhead comparison table
//	prsim -losswindow          # the §1 loss-window experiment
//	prsim -fig 2e -scenarios 500 -seed 7
//
// Output is plain text suitable for gnuplot or column(1).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"recycle/internal/core"
	"recycle/internal/embedding"
	"recycle/internal/eval"
	"recycle/internal/route"
	"recycle/internal/sim"
	"recycle/internal/topo"
)

func main() {
	var (
		figID      = flag.String("fig", "", "figure panel to regenerate (2a..2f)")
		all        = flag.Bool("all", false, "regenerate every Figure 2 panel")
		overheads  = flag.Bool("overheads", false, "print the §6 overhead comparison")
		lossWindow = flag.Bool("losswindow", false, "run the §1 loss-window experiment")
		ablation   = flag.String("embedding-ablation", "", "delivery-vs-embedding report for a topology")
		scenarios  = flag.Int("scenarios", 0, "override multi-failure scenario count")
		seed       = flag.Int64("seed", 0, "override scenario sampling seed")
		unit       = flag.Bool("unit-weights", false, "use hop-count link weights instead of distances")
	)
	flag.Parse()

	switch {
	case *all:
		for _, f := range eval.Figures() {
			if err := runFigure(f, *scenarios, *seed, *unit); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	case *figID != "":
		f, err := eval.FigureByID(*figID)
		if err != nil {
			fatal(err)
		}
		if err := runFigure(f, *scenarios, *seed, *unit); err != nil {
			fatal(err)
		}
	case *overheads:
		if err := eval.WriteOverheadReport(os.Stdout, []string{"abilene", "geant", "teleglobe"}); err != nil {
			fatal(err)
		}
	case *lossWindow:
		if err := runLossWindow(); err != nil {
			fatal(err)
		}
	case *ablation != "":
		s := *seed
		if s == 0 {
			s = 7
		}
		if err := eval.WriteEmbeddingDeliveryReport(os.Stdout, *ablation, s); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runFigure(f eval.Figure, scenarios int, seed int64, unitWeights bool) error {
	if scenarios > 0 {
		f.Scenarios = scenarios
	}
	if seed != 0 {
		f.Seed = seed
	}
	f.UnitWeights = unitWeights
	exp, err := eval.RunFigure(f)
	if err != nil {
		return err
	}
	return eval.WriteCCDF(os.Stdout, exp, fmt.Sprintf("Figure %s: %s", f.ID, f.Title))
}

// runLossWindow reproduces the §1 motivation: packets lost on a loaded
// OC-192 during a one-second outage, per scheme.
func runLossWindow() error {
	tp := topo.Abilene(topo.UnitWeights)
	g := tp.Graph
	src := g.NodeByName("Seattle")
	dst := g.NodeByName("LosAngeles")

	sys, err := (embedding.Auto{Seed: 1}).Embed(g)
	if err != nil {
		return err
	}
	prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		return err
	}
	// 20%-loaded OC-192 at 1 kB packets ≈ 243k pps; scaled 1:100 for the
	// simulation (2430 pps) — losses scale linearly with rate.
	const pps = 2430.0
	const scale = 100.0
	schemes := []sim.Scheme{
		&sim.PRScheme{Protocol: prot},
		&sim.FCPScheme{},
		&sim.ReconvScheme{},
	}
	fmt.Printf("# §1 loss window: Seattle→LosAngeles flow, first-hop link fails at t=1s\n")
	fmt.Printf("# OC-192 at 20%% load ≈ 243k pps of 1 kB packets (simulated 1:%.0f)\n", scale)
	fmt.Printf("%-28s %-10s %-10s %-12s %-10s\n", "scheme", "generated", "delivered", "lost(scaled)", "lost(OC192)")
	for _, s := range schemes {
		res, err := sim.RunLossWindow(sim.Config{
			Graph:          g,
			Scheme:         s,
			Horizon:        3 * time.Second,
			DetectionDelay: 50 * time.Millisecond,
		}, src, dst, pps, time.Second)
		if err != nil {
			return err
		}
		lost := res.Generated - res.Delivered
		fmt.Printf("%-28s %-10d %-10d %-12d %-10.0f\n",
			res.Scheme, res.Generated, res.Delivered, lost, float64(lost)*scale)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prsim:", err)
	os.Exit(1)
}
