// Command prsim regenerates the paper's evaluation artefacts and drives
// the compiled dataplane from the command line. The primary interface is
// subcommands sharing the global flags -topo, -seed and -metrics:
//
//	prsim certify                       # k-failure certificates, default panel
//	prsim certify -topo ring:24 -k 3    # one topology, deeper adversary
//	prsim certify -baseline             # the reconvergence control arm
//	prsim resilience -draws 100         # Monte-Carlo sweep, losses refereed
//	prsim resilience -topo ring:24 -certify-pins 2
//	prsim resilience -trace -topo ring:24
//	prsim soak -flows 200000 -duration 2m
//	prsim compile -topo rand:2000       # compile-scaling report
//	prsim churn -edits 10               # full-vs-delta recompile + live hot-swap
//	prsim throughput -topo geant -shards 4
//	prsim throughput -topo ring:24 -wire
//
// `prsim certify` runs the adversarial failure search of internal/certify
// over the topology panel and prints one resilience certificate per
// topology: either "provably zero violations for every failure set of ≤k
// elements" or the minimal counterexamples with their refereed violating
// walks. A non-baseline run exits non-zero unless every topology
// certifies, so CI can gate directly on the command. `prsim resilience
// -certify-pins k` closes the loop: it first certifies the reconvergence
// baseline on -topo, then replays every counterexample as a pinned extra
// draw of the Monte-Carlo sweep — PR must survive the sets that break
// reconvergence.
//
// One global -seed makes every mode reproducible; -metrics serves live
// JSON registry snapshots over HTTP while any metered mode runs. -topo
// accepts built-in names and generator specs (ring:24, wring:16@7,
// grid:4x8, chain:12, rand:24@7).
//
// The paper's figure panels keep their flag form:
//
//	prsim -fig 2a              # one Figure 2 panel (CCDF data table)
//	prsim -all                 # all six panels
//	prsim -overheads           # the §6 overhead comparison table
//	prsim -losswindow          # the §1 loss-window experiment
//	prsim -losswindow -traffic poisson:rate=2430
//	prsim -trafficloss -topo abilene
//	prsim -embedding-ablation geant
//
// The previous release's flat mode flags (-resilience, -soak, -churn,
// -compile, -throughput, -trafficloss) still work for one more release;
// each prints the equivalent subcommand invocation on stderr before
// running.
//
// Output is plain text suitable for gnuplot or column(1).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/eval"
	"recycle/internal/failure"
	"recycle/internal/graph"
	"recycle/internal/header"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/sim"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
	"recycle/internal/traffic"
)

// defaultPanel is the three-family genus-0 panel certify and resilience
// sweep when -topo does not narrow them: ring, grid and random — three
// structurally different regimes.
var defaultPanel = []string{"ring:24", "grid:4x8", "rand:24@7"}

// subcommands maps each verb to its runner. The flat legacy flags map
// onto the same runners via legacyMain.
var subcommands = map[string]func(args []string) error{
	"certify":    cmdCertify,
	"resilience": cmdResilience,
	"soak":       cmdSoak,
	"compile":    cmdCompile,
	"churn":      cmdChurn,
	"throughput": cmdThroughput,
}

func main() {
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		run, ok := subcommands[os.Args[1]]
		if !ok {
			fmt.Fprintf(os.Stderr, "prsim: unknown command %q (have: certify, resilience, soak, compile, churn, throughput)\n", os.Args[1])
			os.Exit(2)
		}
		if err := run(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	legacyMain()
}

// globals binds the flags every subcommand shares — the topology, the
// master seed and the optional live metrics address — to one FlagSet.
type globals struct {
	fs       *flag.FlagSet
	topo     *string
	seed     *int64
	metrics  *string
	traceOut *string
	// reg is non-nil after parse when -metrics named an address.
	reg *telemetry.Registry
	// tracer is non-nil after parse when -trace-out named a file.
	tracer *telemetry.Tracer
}

func newGlobals(verb, defTopo string) *globals {
	fs := flag.NewFlagSet("prsim "+verb, flag.ExitOnError)
	g := &globals{fs: fs}
	g.topo = fs.String("topo", defTopo, "topology: built-in name or generator spec (ring:24, grid:4x8, rand:24@7)")
	g.seed = fs.Int64("seed", 0, "master seed (0 = the mode's documented default); every derived stream sub-seeds from it")
	g.metrics = fs.String("metrics", "", "serve telemetry snapshots on this address while the run executes (e.g. localhost:6060; /metrics negotiates Prometheus text vs JSON, /debug/pprof is mounted)")
	g.traceOut = fs.String("trace-out", "", "write the run's control-plane span tree as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto)")
	return g
}

func (g *globals) parse(args []string) error {
	if err := g.fs.Parse(args); err != nil {
		return err
	}
	if *g.metrics != "" {
		g.reg = telemetry.NewRegistry()
		srv, err := telemetry.Serve(*g.metrics, g.reg)
		if err != nil {
			return fmt.Errorf("-metrics %s: %w", *g.metrics, err)
		}
		fmt.Printf("# telemetry: serving snapshots on http://%s/metrics (Prometheus text or JSON), pprof on /debug/pprof/\n", srv.Addr)
	}
	if *g.traceOut != "" {
		// A large ring: a CLI trace capture should hold the whole run, not
		// just its tail.
		g.tracer = telemetry.NewTracer(1 << 16)
		if g.reg != nil {
			g.reg.RegisterCollector(g.tracer)
		}
	}
	return nil
}

// writeTrace dumps the tracer's span ring — plus any per-epoch timeline
// — as Chrome trace-event JSON to the -trace-out file. A nil tracer
// (no -trace-out) is a no-op.
func (g *globals) writeTrace(epochs []telemetry.Epoch) error {
	if g.tracer == nil {
		return nil
	}
	f, err := os.Create(*g.traceOut)
	if err != nil {
		return fmt.Errorf("-trace-out: %w", err)
	}
	defer f.Close()
	snap := g.tracer.SpanSnapshot()
	if err := telemetry.WriteChromeTrace(f, snap, epochs); err != nil {
		return fmt.Errorf("-trace-out %s: %w", *g.traceOut, err)
	}
	fmt.Printf("# trace: wrote %d spans (%d evicted) to %s — open in chrome://tracing or Perfetto\n",
		len(snap.Spans), snap.Dropped, *g.traceOut)
	return nil
}

// topoSet reports whether -topo was given explicitly (its default is a
// fallback, not a panel narrowing).
func (g *globals) topoSet() bool {
	set := false
	g.fs.Visit(func(f *flag.Flag) { set = set || f.Name == "topo" })
	return set
}

func (g *globals) seedOr(def int64) int64 {
	if *g.seed != 0 {
		return *g.seed
	}
	return def
}

func parseElementMode(s string) (failure.ElementMode, error) {
	switch s {
	case "links":
		return failure.LinkFailures, nil
	case "nodes":
		return failure.NodeFailures, nil
	case "both", "links+nodes":
		return failure.LinkAndNodeFailures, nil
	}
	return 0, fmt.Errorf("unknown -mode %q (want links, nodes or both)", s)
}

// cmdCertify is the adversarial search: one resilience certificate per
// panel topology. Without -baseline the command exits non-zero unless
// every topology certifies clean, so CI gates on the command itself as
// well as the greppable headline.
func cmdCertify(args []string) error {
	g := newGlobals("certify", "")
	k := g.fs.Int("k", 2, "maximum simultaneous element failures to certify against")
	mode := g.fs.String("mode", "links", "element universe: links, nodes or both")
	baseline := g.fs.Bool("baseline", false, "certify the reconvergence baseline instead of compiled PR — the control arm that is expected to yield counterexamples")
	workers := g.fs.Int("workers", 0, "per-destination search fan-out (0 = auto)")
	restarts := g.fs.Int("restarts", 0, "annealing restarts for the guided search (0 = default)")
	iters := g.fs.Int("iters", 0, "annealing iterations per restart (0 = default)")
	if err := g.parse(args); err != nil {
		return err
	}
	names := defaultPanel
	if g.topoSet() {
		names = []string{*g.topo}
	}
	m, err := parseElementMode(*mode)
	if err != nil {
		return err
	}
	cfg := eval.CertifyConfig{
		Panel:    eval.Panel{Topologies: names, Seed: g.seedOr(1), Metrics: g.reg, Tracer: g.tracer},
		K:        *k,
		Mode:     m,
		Baseline: *baseline,
		Workers:  *workers,
		Restarts: *restarts,
		Iters:    *iters,
	}
	certs, err := eval.WriteCertifyReport(os.Stdout, cfg)
	if err != nil {
		return err
	}
	if err := g.writeTrace(nil); err != nil {
		return err
	}
	if !*baseline {
		for _, c := range certs {
			if !c.Certified {
				return fmt.Errorf("certification failed: %s", c.Headline())
			}
		}
	}
	return nil
}

func cmdResilience(args []string) error {
	g := newGlobals("resilience", "ring:24")
	draws := g.fs.Int("draws", 0, "scenario draws per topology (default 50)")
	scenario := g.fs.String("scenario", "", "failure process spec (failure.ParseScenario grammar; @path loads a scripted scenario file)")
	trace := g.fs.Bool("trace", false, "replay one draw with the flight recorder armed and print a recycled packet's explained cycle walk plus the per-epoch counter timeline")
	pins := g.fs.Int("certify-pins", 0, "certify the reconvergence baseline at this k on -topo first and replay its counterexamples as pinned extra draws (requires -topo)")
	if err := g.parse(args); err != nil {
		return err
	}
	if *trace {
		return runTrace(*g.topo, g.topoSet(), *scenario, *draws, g.seedOr(1), g.reg)
	}
	return runResilience(*g.topo, g.topoSet(), *scenario, *draws, g.seedOr(1), *pins)
}

func cmdSoak(args []string) error {
	g := newGlobals("soak", "geant")
	flows := g.fs.Int("flows", 0, "concurrent flow count (default 100000)")
	duration := g.fs.Duration("duration", 0, "emission window (default 30s)")
	swapEvery := g.fs.Duration("swap-every", 0, "hot-swap interval (default duration/12)")
	trafficArg := g.fs.String("traffic", "", "traffic source spec for the flows (poisson:…, mmpp:…, replay:path, fixed:…)")
	scenario := g.fs.String("scenario", "", "failure process spec (@path loads a scripted scenario file)")
	shards := g.fs.Int("shards", 0, "engine shard count (0 = auto)")
	batch := g.fs.Int("batch", 0, "packets per batch (0 = default)")
	egressBw := g.fs.Float64("egress-bw", 0, "per-link egress bandwidth in bps (0 = default)")
	if err := g.parse(args); err != nil {
		return err
	}
	return runSoak(*g.topo, *scenario, eval.SoakConfig{
		Panel:        eval.Panel{Seed: g.seedOr(1), Metrics: g.reg, Tracer: g.tracer},
		Flows:        *flows,
		Duration:     *duration,
		Traffic:      *trafficArg,
		SwapEvery:    *swapEvery,
		Shards:       *shards,
		BatchSize:    *batch,
		BandwidthBps: *egressBw,
	}, g)
}

func cmdCompile(args []string) error {
	g := newGlobals("compile", "geant")
	if err := g.parse(args); err != nil {
		return err
	}
	if err := runCompile(*g.topo, g.seedOr(1), g.tracer); err != nil {
		return err
	}
	return g.writeTrace(nil)
}

func cmdChurn(args []string) error {
	g := newGlobals("churn", "geant")
	edits := g.fs.Int("edits", 10, "random weight edits per topology")
	if err := g.parse(args); err != nil {
		return err
	}
	if err := runChurn(*g.topo, *edits, g.seedOr(1), g.reg, g.tracer); err != nil {
		return err
	}
	return g.writeTrace(nil)
}

func cmdThroughput(args []string) error {
	g := newGlobals("throughput", "geant")
	shards := g.fs.Int("shards", 0, "engine shard count (0 = auto)")
	packets := g.fs.Int("packets", 2_000_000, "decision count")
	batch := g.fs.Int("batch", 256, "packets per batch")
	wire := g.fs.Bool("wire", false, "run raw packet bytes through ForwardWire (codec per topology)")
	egressBw := g.fs.Float64("egress-bw", 100e9, "per-link egress bandwidth in bps for the end-to-end phase")
	trafficArg := g.fs.String("traffic", "", "traffic source spec; its size distribution shapes abstract packets")
	if err := g.parse(args); err != nil {
		return err
	}
	var src traffic.Source
	if *trafficArg != "" {
		var err error
		if src, err = traffic.ParseSpecSeeded(*trafficArg, g.seedOr(1)); err != nil {
			return err
		}
	}
	return runThroughput(*g.topo, *shards, *packets, *batch, *wire, *egressBw, src, g.seedOr(1), g.reg)
}

// legacyShim prints the subcommand invocation equivalent to the flat
// mode flags just parsed — the one-release migration breadcrumb.
func legacyShim(verb string, drop ...string) {
	skip := map[string]bool{verb: true}
	for _, f := range drop {
		skip[f] = true
	}
	parts := []string{"prsim", verb}
	flag.Visit(func(f *flag.Flag) {
		if skip[f.Name] {
			return
		}
		if f.Value.String() == "true" {
			if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok && b.IsBoolFlag() {
				parts = append(parts, "-"+f.Name)
				return
			}
		}
		parts = append(parts, "-"+f.Name, f.Value.String())
	})
	fmt.Fprintf(os.Stderr, "prsim: flat mode flags are deprecated and will be removed next release; use: %s\n", strings.Join(parts, " "))
}

// legacyMain is the previous release's flat-flag interface, kept for one
// release. Modes with a subcommand equivalent print it via legacyShim
// before running; the figure/overhead/loss-window panels remain
// flag-only.
func legacyMain() {
	var (
		figID      = flag.String("fig", "", "figure panel to regenerate (2a..2f)")
		all        = flag.Bool("all", false, "regenerate every Figure 2 panel")
		overheads  = flag.Bool("overheads", false, "print the §6 overhead comparison")
		lossWindow = flag.Bool("losswindow", false, "run the §1 loss-window experiment")
		ablation   = flag.String("embedding-ablation", "", "delivery-vs-embedding report for a topology")
		scenarios  = flag.Int("scenarios", 0, "override multi-failure scenario count")
		seed       = flag.Int64("seed", 0, "global seed: figures, -traffic sources, -churn edits and -resilience draws all honour it (0 = each panel's default)")
		unit       = flag.Bool("unit-weights", false, "use hop-count link weights instead of distances")
		plane      = flag.String("dataplane", "interpreted", "PR forwarding engine: interpreted (core.Protocol) or compiled (dataplane FIB)")
		throughput = flag.Bool("throughput", false, "deprecated: use `prsim throughput`")
		topoName   = flag.String("topo", "geant", "topology (built-in name or generator spec like ring:24)")
		shards     = flag.Int("shards", 0, "engine shard count (0 = auto)")
		packets    = flag.Int("packets", 2_000_000, "decision count for -throughput")
		batchSize  = flag.Int("batch", 256, "packets per batch for -throughput")
		wire       = flag.Bool("wire", false, "-throughput on raw packet bytes through ForwardWire (codec per topology)")
		trafficArg = flag.String("traffic", "", "traffic source spec (poisson:rate=2430, mmpp:on=…,dwell=…, replay:path, fixed:rate=…) for -losswindow; sizes abstract -throughput packets")
		trafficMix = flag.Bool("trafficloss", false, "run the loss-window experiment over a panel of traffic mixes")
		egressBw   = flag.Float64("egress-bw", 100e9, "per-link egress bandwidth in bps for -throughput's end-to-end phase")
		churn      = flag.Bool("churn", false, "deprecated: use `prsim churn`")
		churnEdits = flag.Int("edits", 10, "random weight edits per topology for -churn")
		resilience = flag.Bool("resilience", false, "deprecated: use `prsim resilience`")
		scenario   = flag.String("scenario", "", "failure process spec for -resilience (failure.ParseScenario grammar; @path loads a scripted scenario file)")
		draws      = flag.Int("draws", 0, "scenario draws per topology for -resilience (default 50)")
		metrics    = flag.String("metrics", "", "serve the telemetry registry as JSON on this address while the run executes (e.g. localhost:6060)")
		trace      = flag.Bool("trace", false, "with -resilience: arm the flight recorder on one traced draw and print a recycled packet's explained cycle walk plus the per-epoch counter timeline")
		compileRpt = flag.Bool("compile", false, "deprecated: use `prsim compile`")
		soak       = flag.Bool("soak", false, "deprecated: use `prsim soak`")
		soakDur    = flag.Duration("duration", 0, "emission window for -soak (default 30s)")
		soakFlows  = flag.Int("flows", 0, "concurrent flow count for -soak (default 100000)")
		swapEvery  = flag.Duration("swap-every", 0, "hot-swap interval for -soak (default duration/12)")
	)
	flag.Parse()
	topoSet := false
	flag.Visit(func(f *flag.Flag) { topoSet = topoSet || f.Name == "topo" })

	// One global -seed: panels with their own historical defaults keep
	// them when the flag is absent.
	seedOr := func(def int64) int64 {
		if *seed != 0 {
			return *seed
		}
		return def
	}

	var trafficSrc traffic.Source
	if *trafficArg != "" {
		var err error
		if trafficSrc, err = traffic.ParseSpecSeeded(*trafficArg, seedOr(1)); err != nil {
			fatal(err)
		}
	}

	if *plane != "interpreted" && *plane != "compiled" {
		fatal(fmt.Errorf("unknown -dataplane %q (want interpreted or compiled)", *plane))
	}
	if *plane == "compiled" && !*lossWindow && !*throughput {
		fatal(fmt.Errorf("-dataplane applies to -losswindow only (-throughput always runs the compiled engine)"))
	}
	if *trace && !*resilience {
		fatal(fmt.Errorf("-trace requires -resilience"))
	}

	// One process-wide registry, served over HTTP for the run's duration
	// when -metrics names an address. Modes that run live metered
	// components (-throughput, -churn, -resilience -trace) feed it; a nil
	// registry keeps their hot paths uninstrumented.
	var mreg *telemetry.Registry
	if *metrics != "" {
		mreg = telemetry.NewRegistry()
		srv, err := telemetry.Serve(*metrics, mreg)
		if err != nil {
			fatal(fmt.Errorf("-metrics %s: %w", *metrics, err))
		}
		fmt.Printf("# telemetry: serving JSON snapshots on http://%s/metrics\n", srv.Addr)
	}

	switch {
	case *all:
		for _, f := range eval.Figures() {
			if err := runFigure(f, *scenarios, *seed, *unit); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	case *figID != "":
		f, err := eval.FigureByID(*figID)
		if err != nil {
			fatal(err)
		}
		if err := runFigure(f, *scenarios, *seed, *unit); err != nil {
			fatal(err)
		}
	case *overheads:
		if err := eval.WriteOverheadReport(os.Stdout, []string{"abilene", "geant", "teleglobe"}); err != nil {
			fatal(err)
		}
	case *lossWindow:
		if err := runLossWindow(*plane, trafficSrc); err != nil {
			fatal(err)
		}
	case *trafficMix:
		// A -traffic spec narrows the panel to that one source; the
		// default fixed/poisson/mmpp/pareto mix runs otherwise.
		var panel []traffic.Source
		if trafficSrc != nil {
			panel = []traffic.Source{trafficSrc}
		}
		cfg := eval.TrafficLossConfig{
			Panel:   eval.Panel{Topologies: []string{*topoName}},
			Sources: panel,
		}
		if err := eval.WriteTrafficLossReport(os.Stdout, cfg); err != nil {
			fatal(err)
		}
	case *throughput:
		legacyShim("throughput", "traffic")
		if err := runThroughput(*topoName, *shards, *packets, *batchSize, *wire, *egressBw, trafficSrc, seedOr(1), mreg); err != nil {
			fatal(err)
		}
	case *churn:
		legacyShim("churn")
		if err := runChurn(*topoName, *churnEdits, seedOr(1), mreg, nil); err != nil {
			fatal(err)
		}
	case *compileRpt:
		legacyShim("compile")
		if err := runCompile(*topoName, seedOr(1), nil); err != nil {
			fatal(err)
		}
	case *resilience:
		legacyShim("resilience")
		if *trace {
			if err := runTrace(*topoName, topoSet, *scenario, *draws, seedOr(1), mreg); err != nil {
				fatal(err)
			}
			break
		}
		if err := runResilience(*topoName, topoSet, *scenario, *draws, seedOr(1), 0); err != nil {
			fatal(err)
		}
	case *soak:
		legacyShim("soak")
		if err := runSoak(*topoName, *scenario, eval.SoakConfig{
			Panel:        eval.Panel{Seed: seedOr(1), Metrics: mreg},
			Flows:        *soakFlows,
			Duration:     *soakDur,
			Traffic:      *trafficArg,
			SwapEvery:    *swapEvery,
			Shards:       *shards,
			BatchSize:    *batchSize,
			BandwidthBps: *egressBw,
		}, nil); err != nil {
			fatal(err)
		}
	case *ablation != "":
		if err := eval.WriteEmbeddingDeliveryReport(os.Stdout, *ablation, seedOr(7)); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: prsim <certify|resilience|soak|compile|churn|throughput> [flags], or legacy figure flags (-fig, -all, -overheads, -losswindow, -trafficloss, -embedding-ablation)")
		flag.Usage()
		os.Exit(2)
	}
}

func runFigure(f eval.Figure, scenarios int, seed int64, unitWeights bool) error {
	if scenarios > 0 {
		f.Scenarios = scenarios
	}
	if seed != 0 {
		f.Seed = seed
	}
	f.UnitWeights = unitWeights
	exp, err := eval.RunFigure(f)
	if err != nil {
		return err
	}
	return eval.WriteCCDF(os.Stdout, exp, fmt.Sprintf("Figure %s: %s", f.ID, f.Title))
}

// runLossWindow reproduces the §1 motivation: packets lost on a loaded
// OC-192 during a one-second outage, per scheme. The plane argument picks
// PR's engine: the interpreted core.Protocol or the compiled FIB. A
// non-nil traffic source replaces the fixed-interval probe, giving every
// scheme the identical Poisson/MMPP/replayed offered load.
func runLossWindow(plane string, source traffic.Source) error {
	tp := topo.Abilene(topo.UnitWeights)
	g := tp.Graph
	src := g.NodeByName("Seattle")
	dst := g.NodeByName("LosAngeles")

	sys, err := (embedding.Auto{Seed: 1}).Embed(g)
	if err != nil {
		return err
	}
	prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		return err
	}
	var prScheme sim.Scheme = &sim.PRScheme{Protocol: prot}
	if plane == "compiled" {
		fib, err := dataplane.Compile(prot)
		if err != nil {
			return err
		}
		prScheme = &sim.CompiledPRScheme{FIB: fib}
	}
	// 20%-loaded OC-192 at 1 kB packets ≈ 243k pps; scaled 1:100 for the
	// simulation (2430 pps) — losses scale linearly with rate.
	const pps = 2430.0
	const scale = 100.0
	schemes := []sim.Scheme{
		prScheme,
		&sim.FCPScheme{},
		&sim.ReconvScheme{},
	}
	trafficName := "fixed 1:100 probe"
	if source != nil {
		trafficName = source.Name()
	}
	fmt.Printf("# §1 loss window: Seattle→LosAngeles flow (%s traffic), first-hop link fails at t=1s\n", trafficName)
	if source == nil {
		// The ×100 extrapolation describes the fixed 1:100 probe only; a
		// -traffic source runs at whatever rate it was configured with.
		fmt.Printf("# OC-192 at 20%% load ≈ 243k pps of 1 kB packets (simulated 1:%.0f)\n", scale)
		fmt.Printf("%-28s %-10s %-10s %-12s %-10s\n", "scheme", "generated", "delivered", "lost(scaled)", "lost(OC192)")
	} else {
		fmt.Printf("%-28s %-10s %-10s %-12s\n", "scheme", "generated", "delivered", "lost")
	}
	for _, s := range schemes {
		cfg := sim.Config{
			Graph:          g,
			Scheme:         s,
			Horizon:        3 * time.Second,
			DetectionDelay: 50 * time.Millisecond,
		}
		var res sim.LossWindowResult
		if source != nil {
			res, err = sim.RunLossWindowTraffic(cfg, src, dst, source, time.Second)
		} else {
			res, err = sim.RunLossWindow(cfg, src, dst, pps, time.Second)
		}
		if err != nil {
			return err
		}
		lost := res.Generated - res.Delivered
		if source == nil {
			fmt.Printf("%-28s %-10d %-10d %-12d %-10.0f\n",
				res.Scheme, res.Generated, res.Delivered, lost, float64(lost)*scale)
		} else {
			fmt.Printf("%-28s %-10d %-10d %-12d\n",
				res.Scheme, res.Generated, res.Delivered, lost)
		}
	}
	return nil
}

// runThroughput measures the compiled dataplane over a realistic mix of
// shortest-path and cycle-following packets, with one link failed so
// recovery branches are exercised. It runs the identical workload twice
// — decide-only (the engine's PR-1/PR-2 shape, for comparability) and
// end-to-end through the egress stage's per-dart paced transmit queues —
// and reports both rates plus the transmit-queue drop counts. With
// wire=true the workload is raw packet bytes instead — IPv4 or IPv6
// frames matching the codec Compile selected — pushed through
// ForwardWire's byte-rewriting fast path. A non-nil traffic source
// draws abstract packet sizes from its size distribution, so egress
// pacing sees the configured mix instead of uniform 1 kB packets.
func runThroughput(topoName string, shards, packets, batchSize int, wire bool, egressBw float64, source traffic.Source, seed int64, reg *telemetry.Registry) error {
	tp, err := topo.ByName(topoName)
	if err != nil {
		return err
	}
	g := tp.Graph
	sys := tp.Embedding
	if sys == nil {
		if sys, err = (embedding.Auto{Seed: 1}).Embed(g); err != nil {
			return err
		}
	}
	prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		return err
	}
	fib, err := dataplane.Compile(prot)
	if err != nil {
		return err
	}
	if batchSize < 1 {
		batchSize = 256
	}
	batches := (packets + batchSize - 1) / batchSize

	// runPhase replays the same pre-generated workload through a fresh
	// engine, with or without an egress stage. engShards records the
	// shard count the engine actually ran with (it applies its own
	// default when the flag is 0).
	var engShards int
	runPhase := func(egress dataplane.Egress) (uint64, time.Duration, error) {
		free := make(chan *dataplane.Batch, 1024)
		eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
			Shards:  shards,
			Egress:  egress,
			OnDone:  func(b *dataplane.Batch) { free <- b },
			Metrics: reg,
		})
		engShards = eng.Shards()
		eng.SetLink(0, true) // exercise detect/continue/resume branches too
		// Pre-generate the workload: a mostly-shortest-path mix with one
		// in four packets cycle following. Every packet carries a
		// concrete ingress dart, so recycled batches stay valid whatever
		// header the previous pass left behind. The same seed in both
		// phases makes them replay the identical mix.
		rng := rand.New(rand.NewSource(seed))
		var sizes traffic.Stream
		if source != nil {
			sizes = source.Stream()
		}
		const pool = 64
		// Wire frames mutate in place (marks, TTL, checksum); each batch
		// keeps a pristine template per frame and restores the whole
		// header every pass, so recycled batches replay the identical
		// workload — recovery branches included — instead of
		// accumulating PR marks.
		templates := make(map[*dataplane.Batch][][]byte, pool)
		for i := 0; i < pool; i++ {
			b := &dataplane.Batch{}
			if wire {
				b.Wire = make([]dataplane.WirePacket, batchSize)
				tmpl := make([][]byte, batchSize)
				for j := range b.Wire {
					node := graph.NodeID(rng.Intn(g.NumNodes()))
					dst := graph.NodeID(rng.Intn(g.NumNodes()))
					buf, err := fib.NewWireFrame(node, dst)
					if err != nil {
						return 0, 0, err
					}
					ingress := rotation.NoDart
					if rng.Intn(4) == 0 {
						// One in four frames is mid-recovery: PR-marked
						// with a concrete ingress dart, so the
						// cycle-following branch runs in wire mode too
						// (matching the abstract workload's mix).
						nb := g.Neighbors(node)[rng.Intn(g.Degree(node))]
						ingress = rotation.ReverseID(sys.OutgoingDart(node, nb.Link))
						if err := markWireFrame(fib, buf, uint32(rng.Intn(1<<fib.DDBits()))); err != nil {
							return 0, 0, err
						}
					}
					tmpl[j] = append([]byte(nil), buf...)
					b.Wire[j] = dataplane.WirePacket{Node: node, Ingress: ingress, Buf: buf}
				}
				templates[b] = tmpl
			} else {
				b.Pkts = make([]dataplane.Packet, batchSize)
				for j := range b.Pkts {
					node := graph.NodeID(rng.Intn(g.NumNodes()))
					nb := g.Neighbors(node)[rng.Intn(g.Degree(node))]
					var bits int32
					if sizes != nil {
						if _, sz, ok := sizes.Next(); ok {
							bits = int32(sz)
						}
					}
					b.Pkts[j] = dataplane.Packet{
						Node:    node,
						Dst:     graph.NodeID(rng.Intn(g.NumNodes())),
						Ingress: rotation.ReverseID(sys.OutgoingDart(node, nb.Link)),
						Bits:    bits,
						Hdr:     core.Header{PR: rng.Intn(4) == 0, DD: float64(rng.Intn(8))},
					}
				}
			}
			free <- b
		}
		start := time.Now()
		for i := 0; i < batches; i++ {
			b := <-free
			if wire {
				tmpl := templates[b]
				for j := range b.Wire {
					copy(b.Wire[j].Buf, tmpl[j])
				}
			}
			for !eng.Submit(b) {
				// Rings full: the workers are behind; yield and retry.
				time.Sleep(10 * time.Microsecond)
			}
		}
		decided := eng.Close()
		return decided, time.Since(start), nil
	}

	unit := "decisions"
	if wire {
		unit = "frames"
	}
	fmt.Printf("# compiled dataplane throughput (ingest → decide → transmit)\n")
	fmt.Printf("topology   %s (%d nodes, %d links)\n", tp.Name, g.NumNodes(), g.NumLinks())
	fmt.Printf("codec      %s (%d DD bits)\n", fib.Codec(), fib.DDBits())
	fmt.Printf("batch      %d packets\n", batchSize)
	if source != nil && !wire {
		fmt.Printf("sizes      %s\n", source.Name())
	}

	decided, elapsed, err := runPhase(nil)
	if err != nil {
		return err
	}
	fmt.Printf("shards     %d\n", engShards)
	fmt.Printf("decide-only   %d %s in %v — %.1f M %s/sec\n",
		decided, unit, elapsed.Round(time.Millisecond), float64(decided)/elapsed.Seconds()/1e6, unit)

	// The egress report reads tx.* counters, so the transmit phase always
	// gets a registry — the shared -metrics one when serving, a private
	// one otherwise (the decide phase stays uninstrumented either way).
	txReg := reg
	if txReg == nil {
		txReg = telemetry.NewRegistry()
	}
	tx := dataplane.NewTxQueue(fib, dataplane.TxConfig{BandwidthBps: egressBw, Metrics: txReg})
	decided, elapsed, err = runPhase(tx)
	if err != nil {
		return err
	}
	st := txReg.Snapshot()
	fmt.Printf("end-to-end    %d %s in %v — %.1f M %s/sec (egress %.0f Gb/s links)\n",
		decided, unit, elapsed.Round(time.Millisecond), float64(decided)/elapsed.Seconds()/1e6, unit, egressBw/1e9)
	fmt.Printf("egress        sent %d (%.1f Gb) | queue-full drops %d | link-down drops %d\n",
		st.Counter(dataplane.MetricTxSent), float64(st.Counter(dataplane.MetricTxSentBits))/1e9,
		st.Counter(dataplane.MetricTxDropQueueFull), st.Counter(dataplane.MetricTxDropLinkDown))
	return nil
}

// markWireFrame stamps a PR mark with the given DD code into a frame in
// place, in the frame's address family, repairing the IPv4 checksum.
func markWireFrame(fib *dataplane.FIB, buf []byte, dd uint32) error {
	if fib.Codec() == dataplane.CodecFlowLabel {
		fl, err := header.EncodeFlowLabel(header.Mark{PR: true, DD: dd})
		if err != nil {
			return err
		}
		buf[1] = buf[1]&0xF0 | byte(fl>>16)
		buf[2] = byte(fl >> 8)
		buf[3] = byte(fl)
		return nil
	}
	dscp, err := header.EncodeDSCP(header.Mark{PR: true, DD: dd})
	if err != nil {
		return err
	}
	buf[1] = dscp << 2
	buf[10], buf[11] = 0, 0
	ck := header.Checksum(buf[:header.HeaderLen])
	buf[10], buf[11] = byte(ck>>8), byte(ck)
	return nil
}

// runResilience quantifies the paper's headline claim: a Monte-Carlo
// sweep of seeded failure-scenario draws over a topology panel, PR on
// the compiled dataplane against the reconvergence baseline, every loss
// refereed by the scenario's connectivity oracle. An explicit -topo
// narrows the panel to that topology; the default panel covers the
// ring, grid and random generator families — three structurally
// different genus-0 regimes. A -scenario starting with '@' loads a
// scripted scenario file (one spec per line, '#' comments).
func runResilience(topoName string, topoSet bool, spec string, draws int, seed int64, pinK int) error {
	names := defaultPanel
	if topoSet {
		names = []string{topoName}
	}
	var proc failure.Process
	if strings.HasPrefix(spec, "@") {
		f, err := os.Open(spec[1:])
		if err != nil {
			return fmt.Errorf("-scenario script: %w", err)
		}
		defer f.Close()
		if proc, err = failure.ParseScript(f); err != nil {
			return err
		}
		spec = fmt.Sprintf("%s (script %s)", proc.Name(), spec[1:])
	}
	cfg := eval.ResilienceConfig{
		Panel: eval.Panel{Topologies: names, Spec: spec, Process: proc, Seed: seed},
		Draws: draws,
	}
	// -certify-pins: certify the reconvergence baseline first and replay
	// its counterexamples as pinned draws. Pins reference one graph's
	// element IDs, so the sweep must be narrowed to a single -topo.
	if pinK > 0 {
		if !topoSet {
			return fmt.Errorf("-certify-pins needs an explicit -topo (pins are per-topology failure sets)")
		}
		tp, err := topo.ByName(topoName)
		if err != nil {
			return err
		}
		cert, err := eval.RunCertify(tp, eval.CertifyConfig{
			Panel:    eval.Panel{Seed: seed},
			K:        pinK,
			Baseline: true,
		})
		if err != nil {
			return err
		}
		cfg.Pins = cert.PinScenarios()
		fmt.Printf("# certify-pins: baseline %s yields %d counterexample(s) at k=%d; replaying as pinned draws\n",
			cert.Walker, len(cfg.Pins), pinK)
	}
	return eval.WriteResilienceReport(os.Stdout, cfg)
}

// runTrace is -resilience -trace: instead of the aggregate sweep it
// replays draws with the flight recorder armed on every packet and the
// registry folded into per-epoch deltas, then prints the explained
// cycle walk of a recycled packet and the epoch timeline. The traced
// topology is -topo when set, otherwise the first panel topology.
// TraceResilience verifies the timeline's summed deltas equal the
// aggregate counters exactly before returning, so a printed timeline
// is guaranteed lossless.
func runTrace(topoName string, topoSet bool, spec string, draws int, seed int64, reg *telemetry.Registry) error {
	name := "ring:24"
	if topoSet {
		name = topoName
	}
	tp, err := topo.ByName(name)
	if err != nil {
		return err
	}
	var proc failure.Process
	if strings.HasPrefix(spec, "@") {
		f, err := os.Open(spec[1:])
		if err != nil {
			return fmt.Errorf("-scenario script: %w", err)
		}
		defer f.Close()
		if proc, err = failure.ParseScript(f); err != nil {
			return err
		}
		spec = ""
	}
	res, err := eval.TraceResilience(tp, eval.ResilienceConfig{
		Panel: eval.Panel{Spec: spec, Process: proc, Seed: seed, Metrics: reg},
		Draws: draws,
	})
	if err != nil {
		return err
	}

	fmt.Printf("# flight-recorded resilience trace: %s, scheme %s, scenario %s (draw %d)\n",
		tp.Name, res.Scheme, res.Scenario, res.Draw)
	fmt.Printf("flights kept %d | generated %d delivered %d violations %d\n\n",
		len(res.Flights), res.Aggregate.Counter(sim.MetricGenerated),
		res.Aggregate.Counter(sim.MetricDelivered), res.Aggregate.Counter(sim.MetricLossViolation))

	if f := res.Recycled(); f != nil {
		fmt.Println("## recycled packet (cycle walk)")
		fmt.Print(f.Explain())
	} else {
		fmt.Printf("no recycled packet in %d draw(s); try more -draws or a denser -scenario\n", max(draws, 1))
	}

	fmt.Println("\n## per-epoch counter timeline (summed deltas == aggregate, verified)")
	eval.WriteTimeline(os.Stdout, res.Epochs)
	return nil
}

// runSoak is the whole-stack endurance run: RunSoak sustains the
// configured concurrent flows through a live sharded engine with
// TxQueue egress while the failure scenario and a hot-swap stream
// (weight tweaks plus a structural chord add/remove) land on it, then
// prints the refereed account, the per-epoch timeline and the verdict
// line. A failing verdict is also a non-zero exit, so CI can gate on
// either. A -scenario starting with '@' loads a scripted scenario file.
func runSoak(topoName, spec string, cfg eval.SoakConfig, g *globals) error {
	tp, err := topo.ByName(topoName)
	if err != nil {
		return err
	}
	if strings.HasPrefix(spec, "@") {
		f, err := os.Open(spec[1:])
		if err != nil {
			return fmt.Errorf("-scenario script: %w", err)
		}
		defer f.Close()
		if cfg.Process, err = failure.ParseScript(f); err != nil {
			return err
		}
	} else {
		cfg.Spec = spec
	}
	res, err := eval.RunSoak(tp, cfg)
	if err != nil {
		return err
	}
	eval.WriteSoakReport(os.Stdout, res)
	// The trace is written even on a FAIL verdict — a failing soak is
	// exactly when the span timeline is worth staring at.
	if g != nil {
		if err := g.writeTrace(res.Epochs); err != nil {
			return err
		}
	}
	if !res.Pass {
		return fmt.Errorf("soak verdict FAIL: %s", strings.Join(res.FailReasons, "; "))
	}
	return nil
}

// runChurn reports the planned-maintenance numbers: the full-vs-delta
// recompile latency table over a topology panel, then a live hot-swap
// check on -topo — a sharded engine decides a continuous stream of
// batches while delta-recompiled FIBs are swapped in (Engine.ApplyDelta);
// every submitted packet must come out decided, i.e. zero loss across
// the swaps.
func runChurn(topoName string, edits int, seed int64, reg *telemetry.Registry, tracer *telemetry.Tracer) error {
	if edits <= 0 {
		return fmt.Errorf("-churn needs -edits ≥ 1 (got %d)", edits)
	}
	names := []string{topoName}
	for _, n := range []string{"abilene", "geant", "teleglobe", "ring:64", "grid:8x8"} {
		if n != topoName {
			names = append(names, n)
		}
	}
	fmt.Printf("# topology churn: full vs delta recompile, %d random single-link weight edits per topology (seed %d)\n", edits, seed)
	if err := eval.WriteChurnReport(os.Stdout, eval.ChurnConfig{
		Panel: eval.Panel{Topologies: names, Seed: seed, Metrics: reg, Tracer: tracer},
		Edits: edits,
	}); err != nil {
		return err
	}

	tp, err := topo.ByName(topoName)
	if err != nil {
		return err
	}
	g := tp.Graph
	sys := tp.Embedding
	if sys == nil {
		if sys, err = (embedding.Auto{Seed: 1}).Embed(g); err != nil {
			return err
		}
	}
	prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		return err
	}
	rec, err := dataplane.NewRecompiler(prot, nil, nil)
	if err != nil {
		return err
	}

	if reg != nil {
		rec.Register(reg)
	}
	rec.SetTracer(tracer)
	var submitted atomic.Uint64
	free := make(chan *dataplane.Batch, 64)
	eng := dataplane.NewEngine(rec.FIB(), dataplane.EngineConfig{
		OnDone:  func(b *dataplane.Batch) { free <- b },
		Metrics: reg,
		Tracer:  tracer,
	})
	n := g.NumNodes()
	for i := 0; i < 16; i++ {
		pkts := make([]dataplane.Packet, 256)
		for j := range pkts {
			pkts[j] = dataplane.Packet{
				Node:    graph.NodeID((i + j) % n),
				Dst:     graph.NodeID((i + j + 1 + j%(n-1)) % n),
				Ingress: rotation.NoDart,
			}
		}
		free <- &dataplane.Batch{Pkts: pkts}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case b := <-free:
				for !eng.Submit(b) {
				}
				submitted.Add(uint64(len(b.Pkts)))
			}
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	var recompile, swap time.Duration
	swaps := 0
	for i := 0; i < edits; i++ {
		l := graph.LinkID(rng.Intn(rec.Graph().NumLinks()))
		w := rec.Graph().Weight(l) * (0.4 + 1.2*rng.Float64())
		start := time.Now()
		d, err := rec.Apply(graph.SetWeight(l, w))
		if err != nil {
			close(stop)
			return err
		}
		recompile += time.Since(start)
		start = time.Now()
		if err := eng.ApplyDelta(d); err != nil {
			close(stop)
			return err
		}
		swap += time.Since(start)
		swaps++
		time.Sleep(time.Millisecond) // let traffic flow between swaps
	}
	close(stop)
	wg.Wait()
	decided := eng.Close()
	lost := submitted.Load() - decided
	fmt.Printf("\n# live hot-swap on %s: %d delta swaps under continuous engine traffic\n", tp.Name, swaps)
	fmt.Printf("packets submitted  %d\n", submitted.Load())
	fmt.Printf("packets decided    %d\n", decided)
	fmt.Printf("packets lost       %d (expected: 0)\n", lost)
	fmt.Printf("delta recompile    %v mean\n", (recompile / time.Duration(swaps)).Round(time.Microsecond))
	fmt.Printf("FIB swap           %v mean\n", (swap / time.Duration(swaps)).Round(time.Microsecond))
	if lost != 0 {
		return fmt.Errorf("engine dropped %d packets across hot-swaps", lost)
	}
	return nil
}

// runCompile is the scaling report behind the "scale past 1000 nodes"
// work: per-phase compile time (destination trees, quantiser ranking,
// FIB fill) sequential versus at GOMAXPROCS workers, resident FIB bytes
// dense versus shared-column, and delta-apply latency single-edit versus
// a coalesced duplicate-target batch.
func runCompile(topoName string, seed int64, tracer *telemetry.Tracer) error {
	tp, err := topo.ByName(topoName)
	if err != nil {
		return err
	}
	g := tp.Graph
	fmt.Printf("# compile scaling on %s: %d nodes, %d links\n", tp.Name, g.NumNodes(), g.NumLinks())
	sys := tp.Embedding
	if sys == nil {
		start := time.Now()
		if sys, err = (embedding.Auto{Seed: 1}).Embed(g); err != nil {
			return err
		}
		fmt.Printf("embed            %12v (genus %d)\n", time.Since(start).Round(time.Microsecond), sys.Genus())
	}

	procs := runtime.GOMAXPROCS(0)
	type phases struct {
		trees, quant, dense, shared time.Duration
		denseB, sharedB             int64
	}
	run := func(workers int) (phases, error) {
		var ph phases
		start := time.Now()
		tbl := route.BuildWorkers(g, route.HopCount, workers)
		ph.trees = time.Since(start)
		prot, err := core.New(g, sys, tbl, core.Config{Variant: core.Full, Quantise: true})
		if err != nil {
			return ph, err
		}
		start = time.Now()
		quant := core.BuildQuantiserWorkers(tbl, workers)
		ph.quant = time.Since(start)
		start = time.Now()
		dense, err := dataplane.CompileWithOptions(prot, quant,
			dataplane.CompileOptions{Workers: workers, Columns: dataplane.ColumnsDense, Tracer: tracer})
		if err != nil {
			return ph, err
		}
		ph.dense = time.Since(start)
		start = time.Now()
		shared, err := dataplane.CompileWithOptions(prot, quant,
			dataplane.CompileOptions{Workers: workers, Columns: dataplane.ColumnsShared, Tracer: tracer})
		if err != nil {
			return ph, err
		}
		ph.shared = time.Since(start)
		ph.denseB, ph.sharedB = dense.MemBytes(), shared.MemBytes()
		return ph, nil
	}
	seq, err := run(1)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %12s", "phase", "workers=1")
	if procs > 1 {
		fmt.Printf(" %11s=%d %9s", "workers", procs, "speedup")
	}
	fmt.Println()
	row := func(name string, s, p time.Duration) {
		fmt.Printf("%-16s %12v", name, s.Round(time.Microsecond))
		if procs > 1 {
			fmt.Printf(" %13v %8.1f×", p.Round(time.Microsecond), s.Seconds()/p.Seconds())
		}
		fmt.Println()
	}
	par := seq
	if procs > 1 {
		if par, err = run(procs); err != nil {
			return err
		}
	}
	row("trees", seq.trees, par.trees)
	row("quantiser", seq.quant, par.quant)
	row("fib dense", seq.dense, par.dense)
	row("fib shared", seq.shared, par.shared)
	row("total", seq.trees+seq.quant+seq.shared, par.trees+par.quant+par.shared)
	fmt.Printf("fib bytes        dense %d, shared %d (%.1f× smaller)\n",
		seq.denseB, seq.sharedB, float64(seq.denseB)/float64(seq.sharedB))

	// Delta curve: single weight edits versus a duplicate-target batch
	// the coalescer reduces before recompiling.
	tbl := route.BuildWorkers(g, route.HopCount, procs)
	prot, err := core.New(g, sys, tbl, core.Config{Variant: core.Full, Quantise: true})
	if err != nil {
		return err
	}
	rec, err := dataplane.NewRecompiler(prot, nil, nil)
	if err != nil {
		return err
	}
	recReg := telemetry.NewRegistry()
	rec.Register(recReg)
	rec.SetTracer(tracer)
	rng := rand.New(rand.NewSource(seed))
	const rounds = 8
	var single, batch time.Duration
	for i := 0; i < rounds; i++ {
		l := graph.LinkID(rng.Intn(rec.Graph().NumLinks()))
		w := rec.Graph().Weight(l) * (0.4 + 1.2*rng.Float64())
		start := time.Now()
		if _, err := rec.Apply(graph.SetWeight(l, w)); err != nil {
			return err
		}
		single += time.Since(start)
	}
	for i := 0; i < rounds; i++ {
		l := graph.LinkID(rng.Intn(rec.Graph().NumLinks()))
		edits := []graph.Edit{
			graph.SetWeight(l, 2), graph.SetWeight(l, 5),
			graph.SetWeight(l, rec.Graph().Weight(l)*(0.4+1.2*rng.Float64())),
		}
		start := time.Now()
		if _, err := rec.Apply(edits...); err != nil {
			return err
		}
		batch += time.Since(start)
	}
	st := recReg.Snapshot()
	fmt.Printf("delta apply      %12v mean (single weight edit)\n", (single / rounds).Round(time.Microsecond))
	fmt.Printf("coalesced apply  %12v mean (3-edit duplicate-target batch)\n", (batch / rounds).Round(time.Microsecond))
	fmt.Printf("recompiler       %d applies, %d edits (%d coalesced away), %d trees repaired, %d untouched\n",
		st.Counter(dataplane.MetricRecompileApplies), st.Counter(dataplane.MetricRecompileEdits),
		st.Counter(dataplane.MetricRecompileCoalesced), st.Counter(dataplane.MetricRepairRepaired),
		st.Counter(dataplane.MetricRepairUnchanged))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prsim:", err)
	os.Exit(1)
}
