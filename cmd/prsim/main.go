// Command prsim regenerates the paper's evaluation artefacts from the
// command line:
//
//	prsim -fig 2a              # one Figure 2 panel (CCDF data table)
//	prsim -all                 # all six panels
//	prsim -overheads           # the §6 overhead comparison table
//	prsim -losswindow          # the §1 loss-window experiment
//	prsim -fig 2e -scenarios 500 -seed 7
//
// and exercises the compiled dataplane:
//
//	prsim -losswindow -dataplane compiled       # PR on the compiled FIB
//	prsim -throughput -topo geant -shards 4     # engine decide + egress rates
//	prsim -throughput -topo ring:24 -wire       # wire frames/sec (codec auto)
//
// Traffic is pluggable (package traffic): -traffic drives the
// loss-window flow with a Poisson, MMPP-burst or replayed process, and
// -trafficloss compares the schemes over a whole panel of mixes:
//
//	prsim -losswindow -traffic poisson:rate=2430
//	prsim -losswindow -traffic mmpp:on=12150,off=0,dwell=20ms/80ms
//	prsim -losswindow -traffic replay:trace.txt
//	prsim -trafficloss -topo abilene            # fixed/poisson/mmpp/pareto panel
//
// -throughput always reports both the decide-only rate and the
// end-to-end rate through the egress stage (per-dart paced transmit
// queues, -egress-bw per-link bandwidth), with queue drops counted.
//
// The Monte-Carlo resilience harness quantifies the paper's headline
// claim — zero loss under any failure combination that leaves the pair
// connected — by sweeping seeded failure-scenario draws over a topology
// panel, PR against the reconvergence baseline, with every loss refereed
// by a connectivity oracle:
//
//	prsim -resilience                           # default panel, 50 draws each
//	prsim -resilience -topo ring:24 -draws 100
//	prsim -resilience -scenario mtbf:up=2s,down=300ms+srlg:links=0;1,at=1s
//	prsim -resilience -scenario @storms.txt     # scripted scenario file
//
// The telemetry surface (package telemetry) is reachable from the same
// binary: -trace replays one resilience draw with the per-packet flight
// recorder armed and prints a recycled packet's explained cycle walk
// plus the per-epoch counter timeline (whose summed deltas are verified
// to equal the aggregate exactly), and -metrics serves live JSON
// registry snapshots over HTTP while any metered mode runs:
//
//	prsim -resilience -trace -topo ring:24      # explain one cycle walk
//	prsim -throughput -metrics localhost:6060   # then: curl :6060/metrics
//
// The soak harness runs the whole stack at once for a sustained period:
// hundreds of thousands of concurrent -traffic flows through the live
// sharded engine and its egress queues, under a continuous -scenario
// failure process and a stream of control-plane hot-swaps, with every
// loss refereed and the per-epoch telemetry timeline verified exact.
// The report ends in a greppable "verdict: PASS|FAIL" line and a
// failing verdict exits non-zero:
//
//	prsim -soak                                 # 100k flows, 30s, geant
//	prsim -soak -topo grid:8x8 -flows 200000 -duration 2m
//	prsim -soak -duration 45s -swap-every 3s -metrics localhost:6060
//
// One global -seed flag makes every panel reproducible: it seeds the
// figure scenario sampling, -traffic sources (unless the spec pins its
// own seed=), the -churn edit draw and the -resilience Monte-Carlo
// draws. 0 keeps each panel's documented default.
//
// -topo accepts the built-in names and generator specs (ring:24,
// wring:16@7, grid:4x8, chain:12, rand:24@7) for large-diameter
// workloads, where Compile selects the IPv6 flow-label codec
// automatically.
//
// Output is plain text suitable for gnuplot or column(1).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/eval"
	"recycle/internal/failure"
	"recycle/internal/graph"
	"recycle/internal/header"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/sim"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
	"recycle/internal/traffic"
)

func main() {
	var (
		figID      = flag.String("fig", "", "figure panel to regenerate (2a..2f)")
		all        = flag.Bool("all", false, "regenerate every Figure 2 panel")
		overheads  = flag.Bool("overheads", false, "print the §6 overhead comparison")
		lossWindow = flag.Bool("losswindow", false, "run the §1 loss-window experiment")
		ablation   = flag.String("embedding-ablation", "", "delivery-vs-embedding report for a topology")
		scenarios  = flag.Int("scenarios", 0, "override multi-failure scenario count")
		seed       = flag.Int64("seed", 0, "global seed: figures, -traffic sources, -churn edits and -resilience draws all honour it (0 = each panel's default)")
		unit       = flag.Bool("unit-weights", false, "use hop-count link weights instead of distances")
		plane      = flag.String("dataplane", "interpreted", "PR forwarding engine: interpreted (core.Protocol) or compiled (dataplane FIB)")
		throughput = flag.Bool("throughput", false, "measure compiled-dataplane decisions/sec")
		topoName   = flag.String("topo", "geant", "topology for -throughput (built-in name or generator spec like ring:24)")
		shards     = flag.Int("shards", 0, "engine shard count for -throughput (0 = auto)")
		packets    = flag.Int("packets", 2_000_000, "decision count for -throughput")
		batchSize  = flag.Int("batch", 256, "packets per batch for -throughput")
		wire       = flag.Bool("wire", false, "-throughput on raw packet bytes through ForwardWire (codec per topology)")
		trafficArg = flag.String("traffic", "", "traffic source spec (poisson:rate=2430, mmpp:on=…,dwell=…, replay:path, fixed:rate=…) for -losswindow; sizes abstract -throughput packets")
		trafficMix = flag.Bool("trafficloss", false, "run the loss-window experiment over a panel of traffic mixes")
		egressBw   = flag.Float64("egress-bw", 100e9, "per-link egress bandwidth in bps for -throughput's end-to-end phase")
		churn      = flag.Bool("churn", false, "topology-churn report: full vs delta recompile latency, plus a live engine hot-swap loss check")
		churnEdits = flag.Int("edits", 10, "random weight edits per topology for -churn")
		resilience = flag.Bool("resilience", false, "Monte-Carlo resilience sweep: seeded failure-scenario draws, PR vs reconvergence, losses refereed by the connectivity oracle")
		scenario   = flag.String("scenario", "", "failure process spec for -resilience (failure.ParseScenario grammar; @path loads a scripted scenario file)")
		draws      = flag.Int("draws", 0, "scenario draws per topology for -resilience (default 50)")
		metrics    = flag.String("metrics", "", "serve the telemetry registry as JSON on this address while the run executes (e.g. localhost:6060)")
		trace      = flag.Bool("trace", false, "with -resilience: arm the flight recorder on one traced draw and print a recycled packet's explained cycle walk plus the per-epoch counter timeline")
		compileRpt = flag.Bool("compile", false, "compile-scaling report for -topo: sequential vs parallel pipeline time per phase, dense vs shared-column FIB memory, delta and coalesced-batch apply latency")
		soak       = flag.Bool("soak", false, "whole-stack soak: sustained concurrent flows through the live engine under continuous failure churn and hot-swaps, every loss refereed")
		soakDur    = flag.Duration("duration", 0, "emission window for -soak (default 30s)")
		soakFlows  = flag.Int("flows", 0, "concurrent flow count for -soak (default 100000)")
		swapEvery  = flag.Duration("swap-every", 0, "hot-swap interval for -soak (default duration/12)")
	)
	flag.Parse()
	topoSet := false
	flag.Visit(func(f *flag.Flag) { topoSet = topoSet || f.Name == "topo" })

	// One global -seed: panels with their own historical defaults keep
	// them when the flag is absent.
	seedOr := func(def int64) int64 {
		if *seed != 0 {
			return *seed
		}
		return def
	}

	var trafficSrc traffic.Source
	if *trafficArg != "" {
		var err error
		if trafficSrc, err = traffic.ParseSpecSeeded(*trafficArg, seedOr(1)); err != nil {
			fatal(err)
		}
	}

	if *plane != "interpreted" && *plane != "compiled" {
		fatal(fmt.Errorf("unknown -dataplane %q (want interpreted or compiled)", *plane))
	}
	if *plane == "compiled" && !*lossWindow && !*throughput {
		fatal(fmt.Errorf("-dataplane applies to -losswindow only (-throughput always runs the compiled engine)"))
	}
	if *trace && !*resilience {
		fatal(fmt.Errorf("-trace requires -resilience"))
	}

	// One process-wide registry, served over HTTP for the run's duration
	// when -metrics names an address. Modes that run live metered
	// components (-throughput, -churn, -resilience -trace) feed it; a nil
	// registry keeps their hot paths uninstrumented.
	var mreg *telemetry.Registry
	if *metrics != "" {
		mreg = telemetry.NewRegistry()
		srv, err := telemetry.Serve(*metrics, mreg)
		if err != nil {
			fatal(fmt.Errorf("-metrics %s: %w", *metrics, err))
		}
		fmt.Printf("# telemetry: serving JSON snapshots on http://%s/metrics\n", srv.Addr)
	}

	switch {
	case *all:
		for _, f := range eval.Figures() {
			if err := runFigure(f, *scenarios, *seed, *unit); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	case *figID != "":
		f, err := eval.FigureByID(*figID)
		if err != nil {
			fatal(err)
		}
		if err := runFigure(f, *scenarios, *seed, *unit); err != nil {
			fatal(err)
		}
	case *overheads:
		if err := eval.WriteOverheadReport(os.Stdout, []string{"abilene", "geant", "teleglobe"}); err != nil {
			fatal(err)
		}
	case *lossWindow:
		if err := runLossWindow(*plane, trafficSrc); err != nil {
			fatal(err)
		}
	case *trafficMix:
		// A -traffic spec narrows the panel to that one source; the
		// default fixed/poisson/mmpp/pareto mix runs otherwise.
		var panel []traffic.Source
		if trafficSrc != nil {
			panel = []traffic.Source{trafficSrc}
		}
		if err := eval.WriteTrafficLossReport(os.Stdout, *topoName, panel); err != nil {
			fatal(err)
		}
	case *throughput:
		if err := runThroughput(*topoName, *shards, *packets, *batchSize, *wire, *egressBw, trafficSrc, seedOr(1), mreg); err != nil {
			fatal(err)
		}
	case *churn:
		if err := runChurn(*topoName, *churnEdits, seedOr(1), mreg); err != nil {
			fatal(err)
		}
	case *compileRpt:
		if err := runCompile(*topoName, seedOr(1)); err != nil {
			fatal(err)
		}
	case *resilience:
		if *trace {
			if err := runTrace(*topoName, topoSet, *scenario, *draws, seedOr(1), mreg); err != nil {
				fatal(err)
			}
			break
		}
		if err := runResilience(*topoName, topoSet, *scenario, *draws, seedOr(1)); err != nil {
			fatal(err)
		}
	case *soak:
		if err := runSoak(*topoName, *scenario, eval.SoakConfig{
			Flows:        *soakFlows,
			Duration:     *soakDur,
			Traffic:      *trafficArg,
			SwapEvery:    *swapEvery,
			Seed:         seedOr(1),
			Shards:       *shards,
			BatchSize:    *batchSize,
			BandwidthBps: *egressBw,
			Metrics:      mreg,
		}); err != nil {
			fatal(err)
		}
	case *ablation != "":
		if err := eval.WriteEmbeddingDeliveryReport(os.Stdout, *ablation, seedOr(7)); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runFigure(f eval.Figure, scenarios int, seed int64, unitWeights bool) error {
	if scenarios > 0 {
		f.Scenarios = scenarios
	}
	if seed != 0 {
		f.Seed = seed
	}
	f.UnitWeights = unitWeights
	exp, err := eval.RunFigure(f)
	if err != nil {
		return err
	}
	return eval.WriteCCDF(os.Stdout, exp, fmt.Sprintf("Figure %s: %s", f.ID, f.Title))
}

// runLossWindow reproduces the §1 motivation: packets lost on a loaded
// OC-192 during a one-second outage, per scheme. The plane argument picks
// PR's engine: the interpreted core.Protocol or the compiled FIB. A
// non-nil traffic source replaces the fixed-interval probe, giving every
// scheme the identical Poisson/MMPP/replayed offered load.
func runLossWindow(plane string, source traffic.Source) error {
	tp := topo.Abilene(topo.UnitWeights)
	g := tp.Graph
	src := g.NodeByName("Seattle")
	dst := g.NodeByName("LosAngeles")

	sys, err := (embedding.Auto{Seed: 1}).Embed(g)
	if err != nil {
		return err
	}
	prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		return err
	}
	var prScheme sim.Scheme = &sim.PRScheme{Protocol: prot}
	if plane == "compiled" {
		fib, err := dataplane.Compile(prot)
		if err != nil {
			return err
		}
		prScheme = &sim.CompiledPRScheme{FIB: fib}
	}
	// 20%-loaded OC-192 at 1 kB packets ≈ 243k pps; scaled 1:100 for the
	// simulation (2430 pps) — losses scale linearly with rate.
	const pps = 2430.0
	const scale = 100.0
	schemes := []sim.Scheme{
		prScheme,
		&sim.FCPScheme{},
		&sim.ReconvScheme{},
	}
	trafficName := "fixed 1:100 probe"
	if source != nil {
		trafficName = source.Name()
	}
	fmt.Printf("# §1 loss window: Seattle→LosAngeles flow (%s traffic), first-hop link fails at t=1s\n", trafficName)
	if source == nil {
		// The ×100 extrapolation describes the fixed 1:100 probe only; a
		// -traffic source runs at whatever rate it was configured with.
		fmt.Printf("# OC-192 at 20%% load ≈ 243k pps of 1 kB packets (simulated 1:%.0f)\n", scale)
		fmt.Printf("%-28s %-10s %-10s %-12s %-10s\n", "scheme", "generated", "delivered", "lost(scaled)", "lost(OC192)")
	} else {
		fmt.Printf("%-28s %-10s %-10s %-12s\n", "scheme", "generated", "delivered", "lost")
	}
	for _, s := range schemes {
		cfg := sim.Config{
			Graph:          g,
			Scheme:         s,
			Horizon:        3 * time.Second,
			DetectionDelay: 50 * time.Millisecond,
		}
		var res sim.LossWindowResult
		if source != nil {
			res, err = sim.RunLossWindowTraffic(cfg, src, dst, source, time.Second)
		} else {
			res, err = sim.RunLossWindow(cfg, src, dst, pps, time.Second)
		}
		if err != nil {
			return err
		}
		lost := res.Generated - res.Delivered
		if source == nil {
			fmt.Printf("%-28s %-10d %-10d %-12d %-10.0f\n",
				res.Scheme, res.Generated, res.Delivered, lost, float64(lost)*scale)
		} else {
			fmt.Printf("%-28s %-10d %-10d %-12d\n",
				res.Scheme, res.Generated, res.Delivered, lost)
		}
	}
	return nil
}

// runThroughput measures the compiled dataplane over a realistic mix of
// shortest-path and cycle-following packets, with one link failed so
// recovery branches are exercised. It runs the identical workload twice
// — decide-only (the engine's PR-1/PR-2 shape, for comparability) and
// end-to-end through the egress stage's per-dart paced transmit queues —
// and reports both rates plus the transmit-queue drop counts. With
// wire=true the workload is raw packet bytes instead — IPv4 or IPv6
// frames matching the codec Compile selected — pushed through
// ForwardWire's byte-rewriting fast path. A non-nil traffic source
// draws abstract packet sizes from its size distribution, so egress
// pacing sees the configured mix instead of uniform 1 kB packets.
func runThroughput(topoName string, shards, packets, batchSize int, wire bool, egressBw float64, source traffic.Source, seed int64, reg *telemetry.Registry) error {
	tp, err := topo.ByName(topoName)
	if err != nil {
		return err
	}
	g := tp.Graph
	sys := tp.Embedding
	if sys == nil {
		if sys, err = (embedding.Auto{Seed: 1}).Embed(g); err != nil {
			return err
		}
	}
	prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		return err
	}
	fib, err := dataplane.Compile(prot)
	if err != nil {
		return err
	}
	if batchSize < 1 {
		batchSize = 256
	}
	batches := (packets + batchSize - 1) / batchSize

	// runPhase replays the same pre-generated workload through a fresh
	// engine, with or without an egress stage. engShards records the
	// shard count the engine actually ran with (it applies its own
	// default when the flag is 0).
	var engShards int
	runPhase := func(egress dataplane.Egress) (uint64, time.Duration, error) {
		free := make(chan *dataplane.Batch, 1024)
		eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
			Shards:  shards,
			Egress:  egress,
			OnDone:  func(b *dataplane.Batch) { free <- b },
			Metrics: reg,
		})
		engShards = eng.Shards()
		eng.SetLink(0, true) // exercise detect/continue/resume branches too
		// Pre-generate the workload: a mostly-shortest-path mix with one
		// in four packets cycle following. Every packet carries a
		// concrete ingress dart, so recycled batches stay valid whatever
		// header the previous pass left behind. The same seed in both
		// phases makes them replay the identical mix.
		rng := rand.New(rand.NewSource(seed))
		var sizes traffic.Stream
		if source != nil {
			sizes = source.Stream()
		}
		const pool = 64
		// Wire frames mutate in place (marks, TTL, checksum); each batch
		// keeps a pristine template per frame and restores the whole
		// header every pass, so recycled batches replay the identical
		// workload — recovery branches included — instead of
		// accumulating PR marks.
		templates := make(map[*dataplane.Batch][][]byte, pool)
		for i := 0; i < pool; i++ {
			b := &dataplane.Batch{}
			if wire {
				b.Wire = make([]dataplane.WirePacket, batchSize)
				tmpl := make([][]byte, batchSize)
				for j := range b.Wire {
					node := graph.NodeID(rng.Intn(g.NumNodes()))
					dst := graph.NodeID(rng.Intn(g.NumNodes()))
					buf, err := fib.NewWireFrame(node, dst)
					if err != nil {
						return 0, 0, err
					}
					ingress := rotation.NoDart
					if rng.Intn(4) == 0 {
						// One in four frames is mid-recovery: PR-marked
						// with a concrete ingress dart, so the
						// cycle-following branch runs in wire mode too
						// (matching the abstract workload's mix).
						nb := g.Neighbors(node)[rng.Intn(g.Degree(node))]
						ingress = rotation.ReverseID(sys.OutgoingDart(node, nb.Link))
						if err := markWireFrame(fib, buf, uint32(rng.Intn(1<<fib.DDBits()))); err != nil {
							return 0, 0, err
						}
					}
					tmpl[j] = append([]byte(nil), buf...)
					b.Wire[j] = dataplane.WirePacket{Node: node, Ingress: ingress, Buf: buf}
				}
				templates[b] = tmpl
			} else {
				b.Pkts = make([]dataplane.Packet, batchSize)
				for j := range b.Pkts {
					node := graph.NodeID(rng.Intn(g.NumNodes()))
					nb := g.Neighbors(node)[rng.Intn(g.Degree(node))]
					var bits int32
					if sizes != nil {
						if _, sz, ok := sizes.Next(); ok {
							bits = int32(sz)
						}
					}
					b.Pkts[j] = dataplane.Packet{
						Node:    node,
						Dst:     graph.NodeID(rng.Intn(g.NumNodes())),
						Ingress: rotation.ReverseID(sys.OutgoingDart(node, nb.Link)),
						Bits:    bits,
						Hdr:     core.Header{PR: rng.Intn(4) == 0, DD: float64(rng.Intn(8))},
					}
				}
			}
			free <- b
		}
		start := time.Now()
		for i := 0; i < batches; i++ {
			b := <-free
			if wire {
				tmpl := templates[b]
				for j := range b.Wire {
					copy(b.Wire[j].Buf, tmpl[j])
				}
			}
			for !eng.Submit(b) {
				// Rings full: the workers are behind; yield and retry.
				time.Sleep(10 * time.Microsecond)
			}
		}
		decided := eng.Close()
		return decided, time.Since(start), nil
	}

	unit := "decisions"
	if wire {
		unit = "frames"
	}
	fmt.Printf("# compiled dataplane throughput (ingest → decide → transmit)\n")
	fmt.Printf("topology   %s (%d nodes, %d links)\n", tp.Name, g.NumNodes(), g.NumLinks())
	fmt.Printf("codec      %s (%d DD bits)\n", fib.Codec(), fib.DDBits())
	fmt.Printf("batch      %d packets\n", batchSize)
	if source != nil && !wire {
		fmt.Printf("sizes      %s\n", source.Name())
	}

	decided, elapsed, err := runPhase(nil)
	if err != nil {
		return err
	}
	fmt.Printf("shards     %d\n", engShards)
	fmt.Printf("decide-only   %d %s in %v — %.1f M %s/sec\n",
		decided, unit, elapsed.Round(time.Millisecond), float64(decided)/elapsed.Seconds()/1e6, unit)

	tx := dataplane.NewTxQueue(fib, dataplane.TxConfig{BandwidthBps: egressBw, Metrics: reg})
	decided, elapsed, err = runPhase(tx)
	if err != nil {
		return err
	}
	st := tx.Stats()
	fmt.Printf("end-to-end    %d %s in %v — %.1f M %s/sec (egress %.0f Gb/s links)\n",
		decided, unit, elapsed.Round(time.Millisecond), float64(decided)/elapsed.Seconds()/1e6, unit, egressBw/1e9)
	fmt.Printf("egress        sent %d (%.1f Gb) | queue-full drops %d | link-down drops %d\n",
		st.Sent, float64(st.SentBits)/1e9, st.DropQueueFull, st.DropLinkDown)
	return nil
}

// markWireFrame stamps a PR mark with the given DD code into a frame in
// place, in the frame's address family, repairing the IPv4 checksum.
func markWireFrame(fib *dataplane.FIB, buf []byte, dd uint32) error {
	if fib.Codec() == dataplane.CodecFlowLabel {
		fl, err := header.EncodeFlowLabel(header.Mark{PR: true, DD: dd})
		if err != nil {
			return err
		}
		buf[1] = buf[1]&0xF0 | byte(fl>>16)
		buf[2] = byte(fl >> 8)
		buf[3] = byte(fl)
		return nil
	}
	dscp, err := header.EncodeDSCP(header.Mark{PR: true, DD: dd})
	if err != nil {
		return err
	}
	buf[1] = dscp << 2
	buf[10], buf[11] = 0, 0
	ck := header.Checksum(buf[:header.HeaderLen])
	buf[10], buf[11] = byte(ck>>8), byte(ck)
	return nil
}

// runResilience quantifies the paper's headline claim: a Monte-Carlo
// sweep of seeded failure-scenario draws over a topology panel, PR on
// the compiled dataplane against the reconvergence baseline, every loss
// refereed by the scenario's connectivity oracle. An explicit -topo
// narrows the panel to that topology; the default panel covers the
// ring, grid and random generator families — three structurally
// different genus-0 regimes. A -scenario starting with '@' loads a
// scripted scenario file (one spec per line, '#' comments).
func runResilience(topoName string, topoSet bool, spec string, draws int, seed int64) error {
	names := []string{"ring:24", "grid:4x8", "rand:24@7"}
	if topoSet {
		names = []string{topoName}
	}
	var proc failure.Process
	if strings.HasPrefix(spec, "@") {
		f, err := os.Open(spec[1:])
		if err != nil {
			return fmt.Errorf("-scenario script: %w", err)
		}
		defer f.Close()
		if proc, err = failure.ParseScript(f); err != nil {
			return err
		}
		spec = fmt.Sprintf("%s (script %s)", proc.Name(), spec[1:])
	}
	return eval.WriteResilienceReport(os.Stdout, names, eval.ResilienceConfig{
		Spec:    spec,
		Process: proc,
		Draws:   draws,
		Seed:    seed,
	})
}

// runTrace is -resilience -trace: instead of the aggregate sweep it
// replays draws with the flight recorder armed on every packet and the
// registry folded into per-epoch deltas, then prints the explained
// cycle walk of a recycled packet and the epoch timeline. The traced
// topology is -topo when set, otherwise the first panel topology.
// TraceResilience verifies the timeline's summed deltas equal the
// aggregate counters exactly before returning, so a printed timeline
// is guaranteed lossless.
func runTrace(topoName string, topoSet bool, spec string, draws int, seed int64, reg *telemetry.Registry) error {
	name := "ring:24"
	if topoSet {
		name = topoName
	}
	tp, err := topo.ByName(name)
	if err != nil {
		return err
	}
	var proc failure.Process
	if strings.HasPrefix(spec, "@") {
		f, err := os.Open(spec[1:])
		if err != nil {
			return fmt.Errorf("-scenario script: %w", err)
		}
		defer f.Close()
		if proc, err = failure.ParseScript(f); err != nil {
			return err
		}
		spec = ""
	}
	res, err := eval.TraceResilience(tp, eval.ResilienceConfig{
		Spec:    spec,
		Process: proc,
		Draws:   draws,
		Seed:    seed,
		Metrics: reg,
	})
	if err != nil {
		return err
	}

	fmt.Printf("# flight-recorded resilience trace: %s, scheme %s, scenario %s (draw %d)\n",
		tp.Name, res.Scheme, res.Scenario, res.Draw)
	fmt.Printf("flights kept %d | generated %d delivered %d violations %d\n\n",
		len(res.Flights), res.Stats.Generated, res.Stats.Delivered, res.Stats.Violations)

	if f := res.Recycled(); f != nil {
		fmt.Println("## recycled packet (cycle walk)")
		fmt.Print(f.Explain())
	} else {
		fmt.Printf("no recycled packet in %d draw(s); try more -draws or a denser -scenario\n", max(draws, 1))
	}

	fmt.Println("\n## per-epoch counter timeline (summed deltas == aggregate, verified)")
	eval.WriteTimeline(os.Stdout, res.Epochs)
	return nil
}

// runSoak is the whole-stack endurance run: RunSoak sustains the
// configured concurrent flows through a live sharded engine with
// TxQueue egress while the failure scenario and a hot-swap stream
// (weight tweaks plus a structural chord add/remove) land on it, then
// prints the refereed account, the per-epoch timeline and the verdict
// line. A failing verdict is also a non-zero exit, so CI can gate on
// either. A -scenario starting with '@' loads a scripted scenario file.
func runSoak(topoName, spec string, cfg eval.SoakConfig) error {
	tp, err := topo.ByName(topoName)
	if err != nil {
		return err
	}
	if strings.HasPrefix(spec, "@") {
		f, err := os.Open(spec[1:])
		if err != nil {
			return fmt.Errorf("-scenario script: %w", err)
		}
		defer f.Close()
		if cfg.Process, err = failure.ParseScript(f); err != nil {
			return err
		}
	} else {
		cfg.Spec = spec
	}
	res, err := eval.RunSoak(tp, cfg)
	if err != nil {
		return err
	}
	eval.WriteSoakReport(os.Stdout, res)
	if !res.Pass {
		return fmt.Errorf("soak verdict FAIL: %s", strings.Join(res.FailReasons, "; "))
	}
	return nil
}

// runChurn reports the planned-maintenance numbers: the full-vs-delta
// recompile latency table over a topology panel, then a live hot-swap
// check on -topo — a sharded engine decides a continuous stream of
// batches while delta-recompiled FIBs are swapped in (Engine.ApplyDelta);
// every submitted packet must come out decided, i.e. zero loss across
// the swaps.
func runChurn(topoName string, edits int, seed int64, reg *telemetry.Registry) error {
	if edits <= 0 {
		return fmt.Errorf("-churn needs -edits ≥ 1 (got %d)", edits)
	}
	names := []string{topoName}
	for _, n := range []string{"abilene", "geant", "teleglobe", "ring:64", "grid:8x8"} {
		if n != topoName {
			names = append(names, n)
		}
	}
	fmt.Printf("# topology churn: full vs delta recompile, %d random single-link weight edits per topology (seed %d)\n", edits, seed)
	if err := eval.WriteChurnReport(os.Stdout, names, edits, seed); err != nil {
		return err
	}

	tp, err := topo.ByName(topoName)
	if err != nil {
		return err
	}
	g := tp.Graph
	sys := tp.Embedding
	if sys == nil {
		if sys, err = (embedding.Auto{Seed: 1}).Embed(g); err != nil {
			return err
		}
	}
	prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		return err
	}
	rec, err := dataplane.NewRecompiler(prot, nil, nil)
	if err != nil {
		return err
	}

	if reg != nil {
		rec.Register(reg)
	}
	var submitted atomic.Uint64
	free := make(chan *dataplane.Batch, 64)
	eng := dataplane.NewEngine(rec.FIB(), dataplane.EngineConfig{
		OnDone:  func(b *dataplane.Batch) { free <- b },
		Metrics: reg,
	})
	n := g.NumNodes()
	for i := 0; i < 16; i++ {
		pkts := make([]dataplane.Packet, 256)
		for j := range pkts {
			pkts[j] = dataplane.Packet{
				Node:    graph.NodeID((i + j) % n),
				Dst:     graph.NodeID((i + j + 1 + j%(n-1)) % n),
				Ingress: rotation.NoDart,
			}
		}
		free <- &dataplane.Batch{Pkts: pkts}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case b := <-free:
				for !eng.Submit(b) {
				}
				submitted.Add(uint64(len(b.Pkts)))
			}
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	var recompile, swap time.Duration
	swaps := 0
	for i := 0; i < edits; i++ {
		l := graph.LinkID(rng.Intn(rec.Graph().NumLinks()))
		w := rec.Graph().Weight(l) * (0.4 + 1.2*rng.Float64())
		start := time.Now()
		d, err := rec.Apply(graph.SetWeight(l, w))
		if err != nil {
			close(stop)
			return err
		}
		recompile += time.Since(start)
		start = time.Now()
		if err := eng.ApplyDelta(d); err != nil {
			close(stop)
			return err
		}
		swap += time.Since(start)
		swaps++
		time.Sleep(time.Millisecond) // let traffic flow between swaps
	}
	close(stop)
	wg.Wait()
	decided := eng.Close()
	lost := submitted.Load() - decided
	fmt.Printf("\n# live hot-swap on %s: %d delta swaps under continuous engine traffic\n", tp.Name, swaps)
	fmt.Printf("packets submitted  %d\n", submitted.Load())
	fmt.Printf("packets decided    %d\n", decided)
	fmt.Printf("packets lost       %d (expected: 0)\n", lost)
	fmt.Printf("delta recompile    %v mean\n", (recompile / time.Duration(swaps)).Round(time.Microsecond))
	fmt.Printf("FIB swap           %v mean\n", (swap / time.Duration(swaps)).Round(time.Microsecond))
	if lost != 0 {
		return fmt.Errorf("engine dropped %d packets across hot-swaps", lost)
	}
	return nil
}

// runCompile is the scaling report behind the "scale past 1000 nodes"
// work: per-phase compile time (destination trees, quantiser ranking,
// FIB fill) sequential versus at GOMAXPROCS workers, resident FIB bytes
// dense versus shared-column, and delta-apply latency single-edit versus
// a coalesced duplicate-target batch.
func runCompile(topoName string, seed int64) error {
	tp, err := topo.ByName(topoName)
	if err != nil {
		return err
	}
	g := tp.Graph
	fmt.Printf("# compile scaling on %s: %d nodes, %d links\n", tp.Name, g.NumNodes(), g.NumLinks())
	sys := tp.Embedding
	if sys == nil {
		start := time.Now()
		if sys, err = (embedding.Auto{Seed: 1}).Embed(g); err != nil {
			return err
		}
		fmt.Printf("embed            %12v (genus %d)\n", time.Since(start).Round(time.Microsecond), sys.Genus())
	}

	procs := runtime.GOMAXPROCS(0)
	type phases struct {
		trees, quant, dense, shared time.Duration
		denseB, sharedB             int64
	}
	run := func(workers int) (phases, error) {
		var ph phases
		start := time.Now()
		tbl := route.BuildWorkers(g, route.HopCount, workers)
		ph.trees = time.Since(start)
		prot, err := core.New(g, sys, tbl, core.Config{Variant: core.Full, Quantise: true})
		if err != nil {
			return ph, err
		}
		start = time.Now()
		quant := core.BuildQuantiserWorkers(tbl, workers)
		ph.quant = time.Since(start)
		start = time.Now()
		dense, err := dataplane.CompileWithOptions(prot, quant,
			dataplane.CompileOptions{Workers: workers, Columns: dataplane.ColumnsDense})
		if err != nil {
			return ph, err
		}
		ph.dense = time.Since(start)
		start = time.Now()
		shared, err := dataplane.CompileWithOptions(prot, quant,
			dataplane.CompileOptions{Workers: workers, Columns: dataplane.ColumnsShared})
		if err != nil {
			return ph, err
		}
		ph.shared = time.Since(start)
		ph.denseB, ph.sharedB = dense.MemBytes(), shared.MemBytes()
		return ph, nil
	}
	seq, err := run(1)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %12s", "phase", "workers=1")
	if procs > 1 {
		fmt.Printf(" %11s=%d %9s", "workers", procs, "speedup")
	}
	fmt.Println()
	row := func(name string, s, p time.Duration) {
		fmt.Printf("%-16s %12v", name, s.Round(time.Microsecond))
		if procs > 1 {
			fmt.Printf(" %13v %8.1f×", p.Round(time.Microsecond), s.Seconds()/p.Seconds())
		}
		fmt.Println()
	}
	par := seq
	if procs > 1 {
		if par, err = run(procs); err != nil {
			return err
		}
	}
	row("trees", seq.trees, par.trees)
	row("quantiser", seq.quant, par.quant)
	row("fib dense", seq.dense, par.dense)
	row("fib shared", seq.shared, par.shared)
	row("total", seq.trees+seq.quant+seq.shared, par.trees+par.quant+par.shared)
	fmt.Printf("fib bytes        dense %d, shared %d (%.1f× smaller)\n",
		seq.denseB, seq.sharedB, float64(seq.denseB)/float64(seq.sharedB))

	// Delta curve: single weight edits versus a duplicate-target batch
	// the coalescer reduces before recompiling.
	tbl := route.BuildWorkers(g, route.HopCount, procs)
	prot, err := core.New(g, sys, tbl, core.Config{Variant: core.Full, Quantise: true})
	if err != nil {
		return err
	}
	rec, err := dataplane.NewRecompiler(prot, nil, nil)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	const rounds = 8
	var single, batch time.Duration
	for i := 0; i < rounds; i++ {
		l := graph.LinkID(rng.Intn(rec.Graph().NumLinks()))
		w := rec.Graph().Weight(l) * (0.4 + 1.2*rng.Float64())
		start := time.Now()
		if _, err := rec.Apply(graph.SetWeight(l, w)); err != nil {
			return err
		}
		single += time.Since(start)
	}
	for i := 0; i < rounds; i++ {
		l := graph.LinkID(rng.Intn(rec.Graph().NumLinks()))
		edits := []graph.Edit{
			graph.SetWeight(l, 2), graph.SetWeight(l, 5),
			graph.SetWeight(l, rec.Graph().Weight(l)*(0.4+1.2*rng.Float64())),
		}
		start := time.Now()
		if _, err := rec.Apply(edits...); err != nil {
			return err
		}
		batch += time.Since(start)
	}
	st := rec.Stats()
	fmt.Printf("delta apply      %12v mean (single weight edit)\n", (single / rounds).Round(time.Microsecond))
	fmt.Printf("coalesced apply  %12v mean (3-edit duplicate-target batch)\n", (batch / rounds).Round(time.Microsecond))
	fmt.Printf("recompiler       %d applies, %d edits (%d coalesced away), %d trees repaired, %d untouched\n",
		st.Applies, st.Edits, st.CoalescedEdits, st.Repair.Repaired, st.Repair.Unchanged)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prsim:", err)
	os.Exit(1)
}
