// Command topogen emits topologies in the library's edge-list format, for
// feeding custom experiments or external tools:
//
//	topogen -topo abilene                 # built-in, distance weights
//	topogen -topo geant -weights unit
//	topogen -gen ring -n 10               # synthetic generators
//	topogen -gen random -n 20 -m 35 -seed 7
//	topogen -gen torus -rows 4 -cols 5
package main

import (
	"flag"
	"fmt"
	"os"

	"recycle/internal/graph"
	"recycle/internal/topo"
)

func main() {
	var (
		topoName = flag.String("topo", "", "built-in topology (paper, abilene, geant, teleglobe)")
		gen      = flag.String("gen", "", "generator: ring, grid, torus, complete, random, planar")
		n        = flag.Int("n", 10, "node count for generators")
		m        = flag.Int("m", 0, "link count for the random generator")
		rows     = flag.Int("rows", 3, "rows for grid/torus")
		cols     = flag.Int("cols", 3, "cols for grid/torus")
		seed     = flag.Int64("seed", 1, "seed for random generators")
		weights  = flag.String("weights", "distance", "built-in weighting: distance or unit")
	)
	flag.Parse()

	var g *graph.Graph
	switch {
	case *topoName != "":
		w := topo.DistanceWeights
		if *weights == "unit" {
			w = topo.UnitWeights
		}
		tp, err := builtin(*topoName, w)
		if err != nil {
			fatal(err)
		}
		g = tp.Graph
	case *gen != "":
		switch *gen {
		case "ring":
			g = graph.Ring(*n)
		case "grid":
			g = graph.Grid(*rows, *cols)
		case "torus":
			g = graph.Torus(*rows, *cols)
		case "complete":
			g = graph.Complete(*n)
		case "random":
			links := *m
			if links == 0 {
				links = 2 * *n
			}
			g = graph.RandomTwoConnected(*n, links, *seed)
		case "planar":
			g = graph.RandomPlanarLike(*n, *seed)
		default:
			fatal(fmt.Errorf("unknown generator %q", *gen))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err := graph.Write(os.Stdout, g); err != nil {
		fatal(err)
	}
}

// builtin resolves a built-in topology with the requested weighting (the
// generic ByName always uses distance weights for ISP topologies).
func builtin(name string, w topo.Weighting) (topo.Topology, error) {
	switch name {
	case "paper", "example", "fig1":
		return topo.PaperExample(), nil
	case "abilene":
		return topo.Abilene(w), nil
	case "geant":
		return topo.Geant(w), nil
	case "teleglobe":
		return topo.Teleglobe(w), nil
	}
	return topo.Topology{}, fmt.Errorf("unknown topology %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
