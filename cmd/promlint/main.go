// Command promlint validates a Prometheus text-format (0.0.4) exposition
// without any client library — the CI smoke check behind `prsim …
// -metrics`: start a run, scrape /metrics, and hold the output to the
// format's actual rules rather than "the HTTP request succeeded".
//
// Usage:
//
//	promlint http://localhost:6060/metrics   scrape a live endpoint
//	promlint snapshot.prom                   lint a file
//	promlint -                               lint stdin
//
// Checks, per line and per family:
//
//   - comment lines are well-formed HELP/TYPE with a valid metric name,
//     TYPE naming one of counter|gauge|histogram|summary|untyped
//   - at most one TYPE per family, emitted before the family's samples,
//     and families are contiguous (no interleaving)
//   - samples parse as name[{labels}] value [timestamp] with valid
//     label syntax and a float-parseable value
//   - histogram families have monotonically non-decreasing cumulative
//     buckets, an le="+Inf" bucket, and _count equal to the +Inf bucket
//
// Exit status 0 with a one-line summary when clean; 1 with one
// "line N: …" diagnostic per violation otherwise.
package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: promlint <url|file|->")
		os.Exit(2)
	}
	r, closer, err := open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	defer closer()
	res, err := lint(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	for _, issue := range res.Issues {
		fmt.Fprintln(os.Stderr, "promlint:", issue)
	}
	if len(res.Issues) > 0 {
		os.Exit(1)
	}
	fmt.Printf("promlint: OK — %d families (%d histograms), %d samples\n",
		res.Families, res.Histograms, res.Samples)
}

func open(arg string) (io.Reader, func(), error) {
	switch {
	case arg == "-":
		return os.Stdin, func() {}, nil
	case strings.HasPrefix(arg, "http://"), strings.HasPrefix(arg, "https://"):
		c := &http.Client{Timeout: 10 * time.Second}
		resp, err := c.Get(arg)
		if err != nil {
			return nil, nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, nil, fmt.Errorf("%s: HTTP %s", arg, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			resp.Body.Close()
			return nil, nil, fmt.Errorf("%s: Content-Type %q is not the text exposition format", arg, ct)
		}
		return resp.Body, func() { resp.Body.Close() }, nil
	default:
		f, err := os.Open(arg)
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	}
}

// result is what lint reports back: diagnostics plus the counts the
// summary line (and the tests) assert on.
type result struct {
	Issues     []string
	Families   int
	Histograms int
	Samples    int
}

// family accumulates everything seen for one metric family so the
// cross-line invariants (TYPE-before-samples, histogram bucket algebra)
// can be checked once the input is consumed.
type family struct {
	typ        string // "" until a TYPE line names it
	samples    int
	bucketCum  []uint64 // cumulative bucket values in file order
	infBucket  *uint64
	count      *uint64
	hasSum     bool
	doneAtLine int // last line of a contiguous run, to catch interleaving
}

func lint(r io.Reader) (*result, error) {
	res := &result{}
	fams := map[string]*family{}
	var order []string
	var last string // family of the previous non-comment, non-blank line

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	bad := func(format string, args ...any) {
		res.Issues = append(res.Issues, fmt.Sprintf("line %d: %s", lineNo, fmt.Sprintf(format, args...)))
	}
	fam := func(name string) *family {
		base := familyName(name)
		f, ok := fams[base]
		if !ok {
			f = &family{}
			fams[base] = f
			order = append(order, base)
		}
		return f
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // arbitrary comments are legal
			}
			if !validName(name) {
				bad("%s for invalid metric name %q", kind, name)
				continue
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					bad("TYPE %s: unknown type %q", name, rest)
					continue
				}
				f := fam(name)
				if f.typ != "" {
					bad("duplicate TYPE for %s", name)
				}
				if f.samples > 0 {
					bad("TYPE %s appears after its samples", name)
				}
				f.typ = rest
			}
			continue
		}

		name, labels, value, ok := parseSample(line, bad)
		if !ok {
			continue
		}
		res.Samples++
		base := familyName(name)
		f := fam(name)
		if f.samples > 0 && last != base {
			bad("family %s is interleaved with %s", base, last)
		}
		last = base
		f.samples++
		f.doneAtLine = lineNo

		if f.typ == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					bad("%s has no le label", name)
					break
				}
				v := uint64(value)
				if le == "+Inf" {
					f.infBucket = &v
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					bad("%s: le=%q is not a number", name, le)
				}
				f.bucketCum = append(f.bucketCum, v)
			case strings.HasSuffix(name, "_sum"):
				f.hasSum = true
			case strings.HasSuffix(name, "_count"):
				v := uint64(value)
				f.count = &v
			default:
				bad("%s: histogram family has plain sample %s", base, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Cross-line family invariants, in first-appearance order so the
	// diagnostics are stable.
	sort.SliceStable(order, func(i, j int) bool { return fams[order[i]].doneAtLine < fams[order[j]].doneAtLine })
	for _, base := range order {
		f := fams[base]
		lineNo = f.doneAtLine
		if f.typ == "" && f.samples > 0 {
			bad("family %s has samples but no TYPE", base)
		}
		if f.typ != "histogram" {
			continue
		}
		for i := 1; i < len(f.bucketCum); i++ {
			if f.bucketCum[i] < f.bucketCum[i-1] {
				bad("family %s: bucket counts decrease (%d after %d)", base, f.bucketCum[i], f.bucketCum[i-1])
				break
			}
		}
		switch {
		case f.infBucket == nil:
			bad("family %s has no le=\"+Inf\" bucket", base)
		case f.count == nil:
			bad("family %s has no _count sample", base)
		case *f.infBucket != *f.count:
			bad("family %s: le=\"+Inf\" bucket %d != _count %d", base, *f.infBucket, *f.count)
		}
		if !f.hasSum {
			bad("family %s has no _sum sample", base)
		}
		res.Histograms++
	}
	res.Families = len(fams)
	return res, nil
}

// familyName strips the histogram/summary sample suffixes so _bucket,
// _sum and _count group under one family.
func familyName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return name[:len(name)-len(suf)]
		}
	}
	return name
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// parseComment splits "# TYPE name rest" / "# HELP name rest"; other
// comments return ok=false and are ignored by the caller.
func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || (fields[1] != "TYPE" && fields[1] != "HELP") {
		return "", "", "", false
	}
	rest = strings.Join(fields[3:], " ")
	return fields[1], fields[2], rest, true
}

// parseSample parses `name[{labels}] value [timestamp]`, reporting each
// syntax problem through bad and returning ok=false on failure.
func parseSample(line string, bad func(string, ...any)) (name string, labels map[string]string, value float64, ok bool) {
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		bad("sample %q has no value", line)
		return
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if !validName(name) {
		bad("invalid metric name %q", name)
		return
	}
	labels = map[string]string{}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			bad("%s: unterminated label set", name)
			return
		}
		if !parseLabels(rest[1:end], labels, name, bad) {
			return
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		bad("%s: want `value [timestamp]` after name, got %q", name, strings.TrimSpace(rest))
		return
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		bad("%s: value %q is not a float", name, fields[0])
		return
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			bad("%s: timestamp %q is not an integer", name, fields[1])
			return
		}
	}
	return name, labels, v, true
}

// parseLabels parses the inside of a {…} label set. Escapes inside
// quoted values (\\, \", \n) are accepted; a quote or comma inside a
// value must be escaped, which keeps the split-on-comma approach exact
// for the format this tool targets.
func parseLabels(s string, out map[string]string, metric string, bad func(string, ...any)) bool {
	for _, kv := range splitLabels(s) {
		if kv == "" {
			continue
		}
		eq := strings.Index(kv, "=")
		if eq < 0 {
			bad("%s: label %q has no '='", metric, kv)
			return false
		}
		k, v := kv[:eq], kv[eq+1:]
		if !validName(k) || strings.Contains(k, ":") {
			bad("%s: invalid label name %q", metric, k)
			return false
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			bad("%s: label %s value %q is not quoted", metric, k, v)
			return false
		}
		out[k] = unescapeLabel(v[1 : len(v)-1])
	}
	return true
}

// splitLabels splits on commas that are not inside a quoted value.
func splitLabels(s string) []string {
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

func unescapeLabel(s string) string {
	r := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n")
	return r.Replace(s)
}
