package main

import (
	"bytes"
	"strings"
	"testing"

	"recycle/internal/telemetry"
)

// TestLintRoundTrip holds the linter and the exporter to each other: a
// populated registry rendered by WritePrometheus must lint clean, with
// the family and histogram counts the registry implies.
func TestLintRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("engine.decided").Add(41)
	reg.Gauge("soak.inflight").Set(7)
	h := reg.Histogram("engine.batch_ns", telemetry.ExponentialBuckets(100, 4, 6))
	for i := int64(0); i < 100; i++ {
		h.Observe(i * 37)
	}
	tr := telemetry.NewTracer(16)
	sp := tr.Start("x", 0)
	sp.End()
	reg.RegisterCollector(tr)

	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	res, err := lint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Issues) != 0 {
		t.Fatalf("clean exposition has lint issues: %v", res.Issues)
	}
	// counter + gauge + histogram + the tracer's span-dropped gauge
	if res.Families != 4 || res.Histograms != 1 {
		t.Fatalf("got %d families, %d histograms; want 4, 1", res.Families, res.Histograms)
	}
}

// TestLintCatches feeds hand-broken expositions and requires a
// diagnostic mentioning the right thing for each.
func TestLintCatches(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"no TYPE", "foo 1\n", "no TYPE"},
		{"bad type", "# TYPE foo widget\nfoo 1\n", "unknown type"},
		{"TYPE after samples", "# TYPE foo counter\nfoo 1\n# TYPE foo counter\n", "duplicate TYPE"},
		{"bad value", "# TYPE foo counter\nfoo banana\n", "not a float"},
		{"bad name", "# TYPE foo counter\nfoo 1\n2foo 3\n", "invalid metric name"},
		{"interleaved", "# TYPE a counter\n# TYPE b counter\na 1\nb 2\na 3\n", "interleaved"},
		{"unquoted label", "# TYPE foo counter\nfoo{x=1} 2\n", "not quoted"},
		{"no inf bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 4\nh_count 3\n", "+Inf"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 4\nh_count 3\n", "!= _count"},
		{"shrinking buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 4\nh_count 3\n", "decrease"},
		{"no sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n", "_sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := lint(strings.NewReader(tc.in))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Issues) == 0 {
				t.Fatalf("lint accepted broken input %q", tc.in)
			}
			found := false
			for _, is := range res.Issues {
				found = found || strings.Contains(is, tc.want)
			}
			if !found {
				t.Fatalf("no issue mentions %q; got %v", tc.want, res.Issues)
			}
		})
	}
}
