// Command prtables prints the PR state a router would hold: the cycle
// following tables of the embedding (paper Table 1) and the routing table
// with the added distance-discriminator column (§4.3).
//
//	prtables -topo paper            # every node's tables, paper example
//	prtables -topo abilene -node Denver
//	prtables -topo geant -faces     # the embedding's cycle system
package main

import (
	"flag"
	"fmt"
	"os"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/topo"
)

func main() {
	var (
		topoName = flag.String("topo", "paper", "topology: paper, abilene, geant, teleglobe or a generator spec (ring:24, wring:16@7, grid:4x8, chain:12)")
		nodeName = flag.String("node", "", "print only this node's tables")
		faces    = flag.Bool("faces", false, "print the embedding's cycle system")
		dot      = flag.Bool("dot", false, "emit the embedding as Graphviz DOT (faces on edge labels)")
		disc     = flag.String("dd", "hops", "distance discriminator: hops or weight")
	)
	flag.Parse()

	tp, err := topo.ByName(*topoName)
	if err != nil {
		fatal(err)
	}
	g := tp.Graph
	sys := tp.Embedding
	if sys == nil {
		sys, err = (embedding.Auto{Seed: 1}).Embed(g)
		if err != nil {
			fatal(err)
		}
	}
	d := route.HopCount
	if *disc == "weight" {
		d = route.WeightSum
	}
	tbl := route.Build(g, d)
	prot, err := core.New(g, sys, tbl, core.Config{Variant: core.Full})
	if err != nil {
		fatal(err)
	}

	if *dot {
		if err := rotation.WriteDOT(os.Stdout, sys); err != nil {
			fatal(err)
		}
		return
	}
	quant := core.BuildQuantiser(tbl)
	fmt.Printf("topology %s: %d nodes, %d links, genus %d, PR header %d bits (1 PR + %d DD, raw %d), %s codec\n\n",
		tp.Name, g.NumNodes(), g.NumLinks(), sys.Genus(), 1+quant.Bits(), quant.Bits(), tbl.DDBits(),
		dataplane.CodecFor(quant.Bits()))

	if *faces {
		printFaces(g, sys)
		return
	}

	nodes := allNodes(g)
	if *nodeName != "" {
		id := g.NodeByName(*nodeName)
		if id == graph.NoNode {
			fatal(fmt.Errorf("unknown node %q", *nodeName))
		}
		nodes = []graph.NodeID{id}
	}
	for _, n := range nodes {
		fmt.Println(prot.FormatCycleTable(n))
		printRoutingTable(g, tbl, n)
		fmt.Println()
	}
}

func allNodes(g *graph.Graph) []graph.NodeID {
	out := make([]graph.NodeID, g.NumNodes())
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

func printRoutingTable(g *graph.Graph, tbl *route.Table, n graph.NodeID) {
	fmt.Printf("Routing table at node %s (with DD column, %s)\n", g.Name(n), tbl.DiscriminatorKind())
	fmt.Printf("%-14s %-14s %-8s\n", "Destination", "NextHop", "DD")
	for d := 0; d < g.NumNodes(); d++ {
		dst := graph.NodeID(d)
		if dst == n || !tbl.Reachable(n, dst) {
			continue
		}
		fmt.Printf("%-14s %-14s %-8g\n", g.Name(dst), g.Name(tbl.NextNode(n, dst)), tbl.DD(n, dst))
	}
}

func printFaces(g *graph.Graph, sys *rotation.System) {
	fs := sys.Faces()
	fmt.Printf("cycle system: %d oriented faces\n", len(fs.Faces))
	for _, f := range fs.Faces {
		fmt.Printf("  c%-3d (%d darts):", f.Index+1, f.Len())
		for _, d := range f.Darts {
			dart := sys.Dart(d)
			fmt.Printf(" %s→%s", g.Name(dart.Tail), g.Name(dart.Head))
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prtables:", err)
	os.Exit(1)
}
