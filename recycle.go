// Package recycle is a Go implementation of Packet Re-cycling (PR), the
// fast-reroute technique of Lor, Landa and Rio, "Packet Re-cycling:
// Eliminating Packet Losses due to Network Failures" (HotNets 2010).
//
// PR extends conventional shortest-path routing with a recovery mode built
// on a cellular embedding of the network graph: every unidirectional link
// belongs to exactly one oriented cycle of the embedding, and the cycle
// through the reverse link is a ready-made bypass. One header bit (the PR
// bit) switches a packet into cycle following; ⌈log2 d⌉ more (the DD bits)
// carry the distance discriminator that guarantees termination under
// arbitrary connectivity-preserving failure combinations.
//
// # Quick start
//
//	net, err := recycle.FromTopology("abilene")
//	if err != nil { ... }
//	fails := recycle.NewFailureSet(net.MustLinkBetween("Denver", "KansasCity"))
//	res := net.Route("Seattle", "NewYork", fails)
//	fmt.Println(res.Outcome, res.Stretch)
//
// The package is a façade over the internal implementation:
//
//   - internal/graph      — graph substrate, shortest paths, failures
//   - internal/rotation   — rotation systems, faces, genus
//   - internal/embedding  — planar / greedy / annealing embedders
//   - internal/route      — routing tables and distance discriminators
//   - internal/core       — the PR protocol itself
//   - internal/fcp        — Failure-Carrying Packets baseline
//   - internal/reconv     — reconvergence baseline
//   - internal/sim        — discrete-event simulator
//   - internal/traffic    — pluggable arrival processes (Poisson, MMPP,
//     bounded-Pareto sizes, trace replay)
//   - internal/eval       — the paper's Figure 2 / §6 experiment harness
//   - internal/header     — DSCP pool-2 wire encoding
//   - internal/dataplane  — compiled FIB, wire fast path, sharded engine
//     with per-dart egress transmit queues
//   - internal/telemetry  — zero-alloc metrics registry, per-packet
//     flight recorder, per-epoch counter timelines
package recycle

import (
	"io"
	"net/netip"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/header"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/topo"
	"recycle/internal/traffic"
)

// Graph is a weighted undirected network graph.
type Graph = graph.Graph

// NodeID identifies a node of a Graph.
type NodeID = graph.NodeID

// LinkID identifies an undirected link of a Graph.
type LinkID = graph.LinkID

// NoLink is the invalid link index; a TopologyDelta's LinkMap maps
// removed links to it.
const NoLink = graph.NoLink

// FailureSet is a set of failed (bidirectional) links.
type FailureSet = graph.FailureSet

// NewFailureSet builds a failure set from link IDs.
func NewFailureSet(links ...LinkID) *FailureSet { return graph.NewFailureSet(links...) }

// NewGraph returns an empty mutable graph with capacity hints.
func NewGraph(nodes, links int) *Graph { return graph.New(nodes, links) }

// RotationSystem is a cellular embedding of a graph on an orientable
// surface, expressed as cyclic neighbour orders.
type RotationSystem = rotation.System

// DartID identifies a directed half of an undirected link: dart 2l is
// link l oriented A→B, dart 2l+1 is B→A.
type DartID = rotation.DartID

// NoDart is the invalid dart index (a packet at its origin has no
// ingress dart).
const NoDart = rotation.NoDart

// Embedder computes rotation systems; see AutoEmbedder, PlanarEmbedder,
// GreedyEmbedder.
type Embedder = embedding.Embedder

// AutoEmbedder embeds planar graphs exactly (genus 0) and falls back to
// greedy+annealing heuristics for non-planar graphs.
type AutoEmbedder = embedding.Auto

// PlanarEmbedder embeds planar graphs on the sphere and fails otherwise.
type PlanarEmbedder = embedding.Planar

// GreedyEmbedder incrementally inserts links to maximise face count.
type GreedyEmbedder = embedding.Greedy

// Discriminator selects PR's distance-discriminator function.
type Discriminator = route.Discriminator

// Discriminator choices (paper §4.3).
const (
	// HopCount discriminates by hops along the shortest path (default).
	HopCount = route.HopCount
	// WeightSum discriminates by total link weight along the shortest path.
	WeightSum = route.WeightSum
)

// Variant selects the PR termination rule.
type Variant = core.Variant

// Protocol variants (paper §4.2 and §4.3).
const (
	// Basic covers any single link failure on 2-edge-connected networks.
	Basic = core.Basic
	// Full covers any connectivity-preserving failure combination.
	Full = core.Full
)

// Header is PR's per-packet state: the PR bit and DD bits.
type Header = core.Header

// Result is a completed packet walk with its transcript and stretch.
type Result = core.Result

// Step is one node's handling of a packet within a Result.
type Step = core.Step

// Outcome classifies how a walk ended.
type Outcome = core.Outcome

// Walk outcomes.
const (
	// Delivered: the packet reached its destination.
	Delivered = core.Delivered
	// Looped: a forwarding loop was detected.
	Looped = core.Looped
	// Isolated: a router had every incident link failed.
	Isolated = core.Isolated
	// NoRoute: no failure-free route existed to begin with.
	NoRoute = core.NoRoute
)

// FIB is a compiled forwarding table: the network's routing state
// flattened into dense arrays for allocation-free constant-time per-hop
// decisions. Build one with Network.Compile.
type FIB = dataplane.FIB

// LinkState is the dataplane's bitset of locally detected link failures,
// the compiled counterpart of FailureSet.
type LinkState = dataplane.LinkState

// NewLinkState returns an all-up link state sized for numLinks links.
func NewLinkState(numLinks int) *LinkState { return dataplane.NewLinkState(numLinks) }

// LinkStateFrom compiles a FailureSet (nil allowed) into a LinkState.
func LinkStateFrom(numLinks int, f *FailureSet) *LinkState {
	return dataplane.FromFailureSet(numLinks, f)
}

// Packet is the dataplane engine's unit of work: one forwarding decision.
type Packet = dataplane.Packet

// Batch is a slice of dataplane packets handed to the engine together.
type Batch = dataplane.Batch

// WireVerdict classifies the outcome of one wire-path forwarding step;
// see FIB.ForwardWire.
type WireVerdict = dataplane.WireVerdict

// Wire-path verdicts.
const (
	// WireForward: packet rewritten in place; transmit on the returned dart.
	WireForward = dataplane.WireForward
	// WireDeliver: the destination address is this node.
	WireDeliver = dataplane.WireDeliver
	// WireDropTTL: the TTL (hop limit) reached zero.
	WireDropTTL = dataplane.WireDropTTL
	// WireDropNoRoute: no usable egress.
	WireDropNoRoute = dataplane.WireDropNoRoute
	// WireDropNotIP: neither a 20-byte-header IPv4 packet nor a
	// fixed-header IPv6 packet.
	WireDropNotIP = dataplane.WireDropNotIP
	// WireDropNotOurs: destination outside the node address plan.
	WireDropNotOurs = dataplane.WireDropNotOurs
	// WireDropCodecMismatch: the packet's address family cannot carry this
	// network's quantised discriminator code (IPv4 DSCP on a flow-label
	// network). Traffic in the network's own family never hits it.
	WireDropCodecMismatch = dataplane.WireDropCodecMismatch
	// WireDropBadMark: a PR mark that is impossible by protocol.
	WireDropBadMark = dataplane.WireDropBadMark
)

// WireCodec identifies the wire encoding a compiled network stamps PR
// marks with, selected automatically at Compile time; see FIB.Codec.
type WireCodec = dataplane.Codec

// Wire codecs.
const (
	// CodecDSCP: IPv4 DSCP pool 2, 3 DD bits — chosen when every
	// quantised discriminator fits (hop diameter ≤ 7).
	CodecDSCP = dataplane.CodecDSCP
	// CodecFlowLabel: IPv6 flow label, 17 DD bits — the escape hatch for
	// larger diameters and weight-sum discriminators.
	CodecFlowLabel = dataplane.CodecFlowLabel
)

// NodeAddr returns the IPv4 address the wire path's node plan assigns to n.
func NodeAddr(n NodeID) netip.Addr { return dataplane.NodeAddr(n) }

// NodeAddr6 returns the IPv6 address the wire path's node plan assigns to n.
func NodeAddr6(n NodeID) netip.Addr { return dataplane.NodeAddr6(n) }

// IPv4 is the minimal checksum-correct IPv4 header codec the wire path
// forwards; use it to craft and inspect packets fed to FIB.ForwardWire.
type IPv4 = header.IPv4

// IPv6 is the minimal IPv6 header codec the wire path forwards on
// flow-label-codec networks.
type IPv6 = header.IPv6

// Mark is the PR header state carried in the DSCP pool-2 field (IPv4) or
// the flow label (IPv6).
type Mark = header.Mark

// Quantiser is the order-preserving rank bucketisation of distance
// discriminators that makes any topology's DD wire-encodable; Compile
// applies it automatically, and Network.Quantiser exposes it for
// inspection.
type Quantiser = core.Quantiser

// WirePacket is one raw frame on the engine's byte-level fast path; see
// Batch.Wire and FIB.ForwardWireBatch.
type WirePacket = dataplane.WirePacket

// Engine is the sharded dataplane forwarding engine: worker goroutines
// draining batched packet rings against an atomically swapped LinkState
// snapshot.
type Engine = dataplane.Engine

// EngineConfig parameterises NewEngine.
type EngineConfig = dataplane.EngineConfig

// NewEngine starts a forwarding engine over a compiled FIB.
func NewEngine(fib *FIB, cfg EngineConfig) *Engine { return dataplane.NewEngine(fib, cfg) }

// Egress is the engine pipeline's transmit stage: it receives every
// decided batch, with the link-state snapshot it was decided under,
// before OnDone. TxQueue is the built-in implementation.
type Egress = dataplane.Egress

// TxQueue is the built-in Egress: one bounded, link-rate-paced transmit
// queue per dart, preserving per-link-direction FIFO delivery order.
type TxQueue = dataplane.TxQueue

// TxConfig parameterises NewTxQueue.
type TxConfig = dataplane.TxConfig

// TxVerdict classifies one transmit attempt; see TxQueue.Send.
type TxVerdict = dataplane.TxVerdict

// Transmit verdicts.
const (
	// TxSent: the packet was serialised onto its egress link.
	TxSent = dataplane.TxSent
	// TxDropQueueFull: the per-dart queue exceeded its backlog bound.
	TxDropQueueFull = dataplane.TxDropQueueFull
	// TxDropLinkDown: the egress link is marked down in the snapshot.
	TxDropLinkDown = dataplane.TxDropLinkDown
)

// NewTxQueue builds per-dart transmit queues for a compiled FIB's links.
func NewTxQueue(fib *FIB, cfg TxConfig) *TxQueue { return dataplane.NewTxQueue(fib, cfg) }

// TrafficSource is an immutable description of one flow's arrival
// process; Stream() mints fresh deterministic iterators, so the same
// source drives many runs identically. Implementations: FixedTraffic,
// PoissonTraffic, MMPPTraffic, ReplayTraffic.
type TrafficSource = traffic.Source

// TrafficStream yields one flow's successive emissions (inter-arrival
// gap + packet size in bits).
type TrafficStream = traffic.Stream

// SizeDist draws packet sizes, composable with Poisson/MMPP arrivals;
// implementations: FixedSize, BoundedPareto.
type SizeDist = traffic.SizeDist

// FixedTraffic emits fixed-size packets at a fixed interval — the
// legacy simulator flow, as a TrafficSource.
type FixedTraffic = traffic.Fixed

// PoissonTraffic emits packets with exponential inter-arrival times.
type PoissonTraffic = traffic.Poisson

// MMPPTraffic is a two-state on/off Markov-modulated Poisson process:
// bursts and silences with exponential dwell times.
type MMPPTraffic = traffic.MMPP

// ReplayTraffic re-emits a recorded packet trace.
type ReplayTraffic = traffic.Replay

// TraceRecord is one packet of a ReplayTraffic trace.
type TraceRecord = traffic.Record

// FixedSize is the degenerate size distribution (every packet equal).
type FixedSize = traffic.FixedSize

// BoundedPareto draws heavy-tailed packet sizes truncated to
// [MinBits, MaxBits].
type BoundedPareto = traffic.BoundedPareto

// ParseTrafficSpec parses a textual source specification such as
// "poisson:rate=2430", "mmpp:on=12150,off=0,dwell=20ms/80ms",
// "fixed:interval=1ms,bits=8192" or "replay:trace.txt".
func ParseTrafficSpec(spec string) (TrafficSource, error) { return traffic.ParseSpec(spec) }

// ReadTrafficTrace parses a textual packet trace (`<seconds> <bytes>`
// per line) into a ReplayTraffic source.
func ReadTrafficTrace(r io.Reader) (ReplayTraffic, error) { return traffic.ReadTrace(r) }

// Edit is one planned topology change — a link weight shift, addition or
// removal — consumed by Network.Update and the incremental Recompiler.
type Edit = graph.Edit

// SetWeight returns the edit changing link l's weight to w.
func SetWeight(l LinkID, w float64) Edit { return graph.SetWeight(l, w) }

// AddLink returns the edit adding an a–b link of weight w.
func AddLink(a, b NodeID, w float64) Edit { return graph.AddLinkEdit(a, b, w) }

// RemoveLink returns the edit removing link l (link IDs above it shift
// down; the TopologyDelta's LinkMap records the renumbering).
func RemoveLink(l LinkID) Edit { return graph.RemoveLinkEdit(l) }

// TopologyDelta is the product of one delta recompilation: the edited
// network's forwarding state plus the bookkeeping Engine.ApplyDelta needs
// to hot-swap onto it.
type TopologyDelta = dataplane.Delta

// Recompiler performs incremental FIB recompilation across chained edit
// sets; see Network.Recompiler and Network.Update.
type Recompiler = dataplane.Recompiler

// Topology bundles a named graph with optional embedding metadata.
type Topology = topo.Topology

// BuiltinTopologies lists the names accepted by FromTopology: the paper's
// Figure 1 example and the three evaluation ISP backbones.
func BuiltinTopologies() []string { return topo.Names() }
