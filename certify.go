package recycle

import (
	"io"

	"recycle/internal/certify"
	"recycle/internal/eval"
	"recycle/internal/failure"
	"recycle/internal/topo"
)

// CertifyConfig parameterises a k-failure certification run: the shared
// Panel (topologies, seed, metrics) plus the adversary's power — up to K
// simultaneous failures drawn from the link, node or combined universe —
// and the guided-search knobs for regimes too large to enumerate.
type CertifyConfig = eval.CertifyConfig

// Certificate is a per-topology resilience certificate: either
// "provably zero violations for every failure set of ≤K elements" or
// the subset-minimal counterexamples, each with its refereed violating
// walk attached. Headline() is the one-line verdict CI greps;
// PinScenarios() exports the counterexamples as regression pins for
// ResilienceConfig.Pins.
type Certificate = certify.Certificate

// CertifyViolation is one counterexample inside a certificate: the
// minimal failure set, the (src, dst) pair it breaks, and the violating
// walk confirmed by the same connectivity oracle that referees
// simulated losses.
type CertifyViolation = certify.Violation

// ElementMode selects the universe a certification draws failures from.
type ElementMode = failure.ElementMode

// Element universes a certification may draw failures from.
const (
	// LinkFailures fails links only — the paper's primary regime.
	LinkFailures = failure.LinkFailures
	// NodeFailures fails whole routers (every incident link).
	NodeFailures = failure.NodeFailures
	// LinkAndNodeFailures draws from the union.
	LinkAndNodeFailures = failure.LinkAndNodeFailures
)

// RunCertify compiles the named topology's dataplane and runs the
// adversarial failure search against it (or, with cfg.Baseline, against
// the reconvergence control arm), returning the resilience certificate.
// Small regimes are proved by exhaustion; larger ones fall back to the
// guided search (cut-targeting DFS plus seeded annealing), whose
// certificates say CLEAR rather than CERTIFIED when incomplete.
func RunCertify(topology string, cfg CertifyConfig) (*Certificate, error) {
	tp, err := topo.ByName(topology)
	if err != nil {
		return nil, err
	}
	return eval.RunCertify(tp, cfg)
}

// WriteCertify certifies cfg.Topologies (nil = the default
// ring/grid/random panel) and renders each certificate in full,
// returning them so a caller can feed PinScenarios into a resilience
// sweep.
func WriteCertify(w io.Writer, cfg CertifyConfig) ([]*Certificate, error) {
	if cfg.Topologies == nil {
		cfg.Topologies = []string{"ring:24", "grid:4x8", "rand:24@7"}
	}
	return eval.WriteCertifyReport(w, cfg)
}
