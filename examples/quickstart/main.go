// Quickstart: build a PR-enabled network over the Abilene backbone, fail a
// link, and watch a packet re-cycle around it.
package main

import (
	"fmt"
	"log"

	"recycle"
)

func main() {
	// Every built-in topology is embedded offline at construction time —
	// Abilene is planar, so the embedding is exact (genus 0).
	net, err := recycle.FromTopology("abilene")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net.Describe())

	// Fail the Denver–Kansas City link and send a packet across it.
	fails := recycle.NewFailureSet(net.MustLinkBetween("Denver", "KansasCity"))
	res, err := net.Route("Seattle", "NewYork", fails)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\noutcome: %v, stretch %.2f, %d hops\n", res.Outcome, res.Stretch, res.Hops())
	fmt.Println("per-hop transcript:")
	g := net.Graph()
	for _, s := range res.Steps {
		fmt.Printf("  %-14s %-9s PR=%-5v DD=%g\n",
			g.Name(s.Node), s.Event, s.Header.PR, s.Header.DD)
	}

	// Without failures the same packet follows the shortest path.
	clean, err := net.Route("Seattle", "NewYork", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfailure-free: stretch %.2f over %d hops\n", clean.Stretch, clean.Hops())
}
