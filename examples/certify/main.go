// Certification end to end through the facade: certify PR clean at k=2
// on a ring, extract the reconvergence baseline's counterexamples, and
// replay them as pinned draws of a resilience sweep — the worst-case
// search feeding the Monte-Carlo harness.
package main

import (
	"fmt"
	"log"
	"os"

	"recycle"
)

func main() {
	// The guarantee, proved by exhaustion: every failure set of ≤2 links
	// on ring:16 leaves PR violation-free (losses across partitions are
	// excused by definition — no scheme delivers across a cut).
	cert, err := recycle.RunCertify("ring:16", recycle.CertifyConfig{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cert.Headline())
	if !cert.Certified {
		log.Fatal("PR failed certification on a genus-0 ring")
	}

	// The control arm: the same adversary against reconvergence finds
	// minimal counterexamples — concrete failure sets under which the
	// baseline blackholes a still-connected pair.
	base, err := recycle.RunCertify("ring:16", recycle.CertifyConfig{K: 1, Baseline: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline: %d minimal counterexamples at k=1; smallest %s\n",
		len(base.Counterexamples), base.Counterexamples[0].SetString())

	// Close the loop: pin those certified counterexamples into the
	// Monte-Carlo sweep. PR must survive every set that breaks
	// reconvergence; the pins make that a standing regression.
	cfg := recycle.ResilienceConfig{Draws: 5}
	cfg.Pins = base.PinScenarios()
	rows, err := recycle.RunResilience("ring:16", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npinned sweep: %d draws per scheme (%d sampled + %d pins)\n",
		rows[0].Draws, 5, len(cfg.Pins))
	for _, r := range rows {
		fmt.Printf("  %-34s violations %d\n", r.Scheme, r.Violations)
	}
	if rows[0].Violations != 0 {
		fmt.Println("PR violated a pinned counterexample — the guarantee is broken")
		os.Exit(1)
	}
}
