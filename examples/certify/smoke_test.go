package main

import "testing"

// TestSmoke runs the certification example end to end: the example
// log.Fatal-s unless PR certifies clean at k=2, the baseline yields
// counterexamples, and PR survives every pinned counterexample — so
// this smoke test doubles as a facade-level guarantee check.
func TestSmoke(t *testing.T) {
	main()
}
