// Soak runs the whole stack at once: thousands of concurrent Poisson
// flows walked hop-by-hop through the live sharded engine and its
// paced egress queues, while a continuous MTBF failure process flips
// links under the traffic and control-plane hot-swaps — weight tweaks
// plus a structural chord add/remove — land on the running engine.
// Every loss is refereed by the connectivity oracle, the telemetry
// timeline is rolled on every scenario event and swap (and proven to
// sum to the aggregate exactly), and the run ends in a verdict: the §5
// guarantee demands zero violations however long the soak runs.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"recycle"
)

func main() {
	res, err := recycle.RunSoak("grid:6x6", recycle.SoakConfig{
		Panel:     recycle.Panel{Spec: "mtbf:up=4s,down=150ms"},
		Flows:     5_000,
		Duration:  2 * time.Second,
		SwapEvery: 250 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	recycle.WriteSoakReport(os.Stdout, res)

	if res.Violations != 0 {
		log.Fatalf("soak found %d violations; the §5 guarantee demands 0", res.Violations)
	}
	if res.StructuralSwaps == 0 {
		log.Fatal("no structural hot-swap landed on the running engine")
	}
	fmt.Printf("\n%d packets across %d epochs, %d hot-swaps (%d structural), %d link events: zero violations\n",
		res.Generated, len(res.Epochs), res.Swaps, res.StructuralSwaps, res.ScenarioEvents)
}
