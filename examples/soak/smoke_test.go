package main

import "testing"

// TestSmoke runs the soak example end to end: the example itself
// log.Fatal-s on any violation or a missing structural swap, so this
// smoke test doubles as a sustained-guarantee check.
func TestSmoke(t *testing.T) {
	main()
}
