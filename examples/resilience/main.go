// Resilience quantifies the paper's headline claim with the Monte-Carlo
// failure harness: across seeded draws of a stochastic failure process —
// independent per-link MTBF/MTTR noise with a correlated SRLG fiber cut
// layered on top — packet re-cycling loses not a single packet while its
// source–destination pair stays physically connected, where a
// reconverging IGP bleeds traffic through every convergence window. A
// connectivity oracle referees each loss: *excused* when the pair was
// partitioned (no scheme delivers across a partition), a *violation*
// when a live path existed and the scheme lost the packet anyway.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"recycle"
)

func main() {
	// A composed failure process: background exponential up/down on every
	// link, plus a deterministic shared-risk cut of two links at t=1s —
	// the correlated multi-failure regime independent-MTBF models miss.
	spec := "mtbf:up=2s,down=300ms+srlg:links=0;1,at=1s,down=500ms"
	proc, err := recycle.ParseFailureScenario(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Peek at one draw: the same (graph, horizon, seed) triple always
	// yields the identical scenario, so any reported number is replayable.
	net, err := recycle.FromTopology("ring:24")
	if err != nil {
		log.Fatal(err)
	}
	sc, err := proc.Generate(net.Graph(), 4*time.Second, recycle.FailureDrawSeed(1, 0))
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := recycle.NewConnectivityOracle(net.Graph(), sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("draw 0 of %q on %s: %d outages, %d link-state epochs\n\n",
		spec, net.Name(), len(sc.Outages), oracle.Epochs())

	// The sweep: 25 seeded draws on the ring and grid families, PR on the
	// compiled dataplane vs the reconvergence baseline, identical probe
	// traffic, instantaneous local detection (isolating routing resilience
	// from loss-of-light latency, which hits every scheme the same).
	cfg := recycle.ResilienceConfig{
		Panel: recycle.Panel{Spec: spec, Topologies: []string{"ring:24", "grid:4x8"}},
		Draws: 25,
	}
	if err := recycle.WriteResilience(os.Stdout, cfg); err != nil {
		log.Fatal(err)
	}

	// The guarantee, asserted: zero violations for PR on both topologies.
	fmt.Println()
	for _, name := range []string{"ring:24", "grid:4x8"} {
		rows, err := recycle.RunResilience(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		pr, reconv := rows[0], rows[1]
		if pr.Violations != 0 {
			log.Fatalf("%s: PR lost %d packets while the pair was connected — the §1 guarantee is broken",
				name, pr.Violations)
		}
		fmt.Printf("%-10s PR violations 0 (availability %.6f) | reconvergence violations %d (availability %.6f)\n",
			name, pr.Availability(), reconv.Violations, reconv.Availability())
	}
}
