package main

import "testing"

// TestSmoke runs the example end to end: it must compute every artefact
// it prints without log.Fatal-ing (which would exit non-zero and fail the
// test binary). The example itself asserts zero PR violations, so this
// smoke test doubles as a guarantee check.
func TestSmoke(t *testing.T) {
	main()
}
