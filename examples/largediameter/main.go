// Largediameter shows the wire-codec escape hatch: on a 24-node ring the
// hop diameter is 12, so recovery stamps distance discriminators the
// 3-bit DSCP pool-2 field cannot carry — the seed dataplane dropped those
// packets outright (WireDropDDOverflow). Compile now rank-quantises the
// discriminators and selects the IPv6 flow-label codec (17 DD bits), and
// the same packet that used to die crosses the failure on real IPv6 bytes.
package main

import (
	"fmt"
	"log"

	"recycle"
)

func main() {
	net, err := recycle.FromTopology("ring:24")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net.Describe())

	fib, err := net.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled codec: %s (%d DD bits; DSCP offers 3)\n\n", fib.Codec(), fib.DDBits())

	// Fail the first link on the path 0 → 12 (the antipode) and forward
	// real IPv6 bytes hop by hop through the wire fast path.
	src, dst := recycle.NodeID(0), recycle.NodeID(12)
	st := recycle.LinkStateFrom(net.Graph().NumLinks(), recycle.NewFailureSet(0))
	h := recycle.IPv6{HopLimit: 64, NextHeader: 17,
		Src: recycle.NodeAddr6(src), Dst: recycle.NodeAddr6(dst)}
	buf, err := h.Marshal()
	if err != nil {
		log.Fatal(err)
	}

	node := src
	ingress := recycle.NoDart
	for hop := 0; ; hop++ {
		eg, verdict := fib.ForwardWire(node, ingress, st, buf)
		if verdict == recycle.WireDeliver {
			fmt.Printf("hop %2d: node %2d delivers the packet\n", hop, node)
			break
		}
		if verdict != recycle.WireForward {
			log.Fatalf("hop %d: unexpected verdict %v", hop, verdict)
		}
		var cur recycle.IPv6
		if err := cur.Unmarshal(buf); err != nil {
			log.Fatal(err)
		}
		markNote := "unmarked"
		if mark, err := cur.PRMark(); err == nil {
			markNote = fmt.Sprintf("PR=%v DD=%d (flow label %#05x)", mark.PR, mark.DD, cur.FlowLabel)
		}
		fmt.Printf("hop %2d: node %2d forwards on dart %3d  %s\n", hop, node, eg, markNote)
		node = fib.Head(eg)
		ingress = eg
	}

	// The quantised walk of the abstract protocol matches what the wire
	// just did.
	res := net.RouteIDs(src, dst, recycle.NewFailureSet(0))
	fmt.Printf("\nabstract protocol: %v after %d hops (stretch %.2f)\n",
		res.Outcome, res.Hops(), res.Stretch)
}
