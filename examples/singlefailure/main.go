// Singlefailure walks the paper's Figure 1(b) scenario step by step: the
// D–E link fails, node D marks the packet with the PR bit and sends it on
// the complementary cycle c2, and node E terminates cycle following when it
// meets the failure from the other side.
package main

import (
	"fmt"
	"log"

	"recycle"
)

func main() {
	// The "paper" topology ships the published Figure 1 embedding, so the
	// cycle labels below match the paper exactly.
	net, err := recycle.FromTopology("paper")
	if err != nil {
		log.Fatal(err)
	}

	// Table 1: the cycle-following table at node D.
	table, err := net.CycleTable("D")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)

	// Figure 1(b): fail D-E, send A→F.
	fails := recycle.NewFailureSet(net.MustLinkBetween("D", "E"))
	res, err := net.Route("A", "F", fails)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A→F with D-E failed: %v, stretch %.1f\n", res.Outcome, res.Stretch)
	g := net.Graph()
	for i, s := range res.Steps {
		fmt.Printf("  step %d at %s: %-8s (PR=%v DD=%g)\n",
			i, g.Name(s.Node), s.Event, s.Header.PR, s.Header.DD)
	}
	fmt.Println()
	fmt.Println("The packet travels A→B→D (shortest path), D detects the failure,")
	fmt.Println("stamps DD=2 and re-cycles it along c2 via B and C; E's smaller")
	fmt.Println("discriminator (1 < 2) clears the PR bit and delivers via E→F.")
}
