package main

import "testing"

// TestSmoke runs the example end to end: it must trace a draw, find a
// recycled packet's cycle walk and print the verified per-epoch
// timeline without log.Fatal-ing. The example asserts that the SRLG
// cut actually forces PR to recycle, so this doubles as a recorder
// coverage check.
func TestSmoke(t *testing.T) {
	main()
}
