// Flightrecorder shows the observability surface end to end: a
// resilience draw replayed with the per-packet flight recorder armed
// and the metrics registry folded into per-epoch deltas. The recorder
// captures each packet's full walk — ingress, egress dart, protocol
// event, header state at every hop — so when a failure pushes a packet
// onto a recycling cycle, the exact cycle walk can be printed and read
// like a transcript. The timeline shows the same run as counter deltas
// per link-state epoch, and its summed deltas are verified to equal the
// aggregate counters exactly: the exposition loses nothing.
package main

import (
	"fmt"
	"log"
	"os"

	"recycle"
)

func main() {
	// A deterministic scenario on a ring: one shared-risk cut of two
	// links at t=1s, repaired 500ms later. On a ring every bypass is the
	// long way around, so a recycled packet's cycle walk is unmistakable.
	cfg := recycle.ResilienceConfig{
		Panel: recycle.Panel{Spec: "srlg:links=0;1,at=1s,down=500ms"},
		Draws: 5,
	}
	res, err := recycle.TraceResilience("ring:16", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced draw %d of %q on ring:16 — scheme %s, %d flights kept\n\n",
		res.Draw, cfg.Spec, res.Scheme, len(res.Flights))

	// The flight recorder retained every "interesting" walk (recycled or
	// lost). Pick the first one that engaged PR and print its transcript.
	f := res.Recycled()
	if f == nil {
		log.Fatal("no packet recycled — the SRLG cut should force PR on a ring")
	}
	fmt.Println("## one recycled packet, explained")
	fmt.Print(f.Explain())
	fmt.Printf("\nrecycle hops %d, delivered=%v\n\n", f.RecycleHops(), f.Delivered())

	// The per-epoch timeline: the same run folded into counter deltas at
	// every link-state transition. Losses (if any) cluster in the epochs
	// whose failures caused them; TraceResilience has already verified
	// the summed deltas equal the aggregate counters exactly.
	fmt.Println("## per-epoch counter timeline")
	recycle.WriteMetricsTimeline(os.Stdout, res.Epochs)

	// The aggregate counters the timeline folds: delivery and loss from
	// the same registry snapshot algebra.
	fmt.Printf("\naggregate: generated %d delivered %d violations %d\n",
		res.Aggregate.Counter("sim.generated"),
		res.Aggregate.Counter("sim.delivered"),
		res.Aggregate.Counter("sim.loss.violation"))
}
