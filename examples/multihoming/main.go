// Multihoming sketches the paper's §7 extension: protecting reachability to
// an external BGP prefix announced over several egress links. The prefix is
// modelled as a virtual node attached to every egress router — PR's cycle
// following then covers egress-link failures with no BGP convergence.
package main

import (
	"fmt"
	"log"

	"recycle"
)

func main() {
	// An ISP with five routers, multihomed to prefix P via r2, r3 and r4.
	g := recycle.NewGraph(6, 10)
	r0 := g.AddNode("r0")
	r1 := g.AddNode("r1")
	r2 := g.AddNode("r2")
	r3 := g.AddNode("r3")
	r4 := g.AddNode("r4")
	prefix := g.AddNode("prefix") // virtual node for the BGP prefix

	g.MustAddLink(r0, r1, 1)
	g.MustAddLink(r0, r2, 1)
	g.MustAddLink(r1, r3, 1)
	g.MustAddLink(r2, r3, 1)
	g.MustAddLink(r3, r4, 1)
	g.MustAddLink(r2, r4, 1)
	// Egress links: the prefix is reachable via three providers. Weights
	// express provider preference (r2 primary).
	egressPrimary := g.MustAddLink(r2, prefix, 1)
	egressBackup1 := g.MustAddLink(r3, prefix, 2)
	g.MustAddLink(r4, prefix, 3)

	net, err := recycle.NewNetwork(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net.Describe())

	// Failure-free: r0 exits via the preferred egress at r2.
	res := net.RouteIDs(r0, prefix, nil)
	fmt.Printf("\nno failures:   %v via %v (stretch %.1f)\n", res.Outcome, names(net, res), res.Stretch)

	// Primary egress dies: PR re-cycles to the r3 egress instantly.
	res = net.RouteIDs(r0, prefix, recycle.NewFailureSet(egressPrimary))
	fmt.Printf("primary down:  %v via %v (stretch %.1f)\n", res.Outcome, names(net, res), res.Stretch)

	// Primary and first backup both die: still delivered via r4.
	res = net.RouteIDs(r0, prefix, recycle.NewFailureSet(egressPrimary, egressBackup1))
	fmt.Printf("two down:      %v via %v (stretch %.1f)\n", res.Outcome, names(net, res), res.Stretch)

	fmt.Println()
	fmt.Println("Mapping announcements onto a connectivity graph lets PR protect")
	fmt.Println("interdomain reachability without waiting for BGP to reconverge (§7).")
}

func names(net *recycle.Network, res recycle.Result) []string {
	g := net.Graph()
	out := make([]string, 0, len(res.Steps))
	for _, s := range res.Steps {
		out = append(out, g.Name(s.Node))
	}
	return out
}
