// Multifailure reproduces the paper's Figure 1(c): two simultaneous link
// failures (D-E and B-C). The §4.2 basic protocol loops forever on this
// scenario — the decreasing-distance termination condition of §4.3 is
// exactly what rescues it.
package main

import (
	"fmt"
	"log"

	"recycle"
)

func main() {
	net, err := recycle.FromTopology("paper")
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph()
	a, _ := net.Node("A")
	f, _ := net.Node("F")
	fails := recycle.NewFailureSet(
		net.MustLinkBetween("D", "E"),
		net.MustLinkBetween("B", "C"),
	)

	// The basic single-bit protocol (§4.2) forwards D→B, hits B-C, resumes
	// shortest-path routing, runs straight back into D-E... forever.
	basic := net.RouteBasic(a, f, fails)
	fmt.Printf("basic variant (§4.2): %v after %d hops — the Figure 1(c) loop\n",
		basic.Outcome, basic.Hops())

	// The full protocol (§4.3) stamps the detecting router's distance
	// discriminator into the DD bits; routers with an equal-or-larger
	// discriminator keep cycling, and only E (DD 1 < 2) terminates.
	full := net.RouteIDs(a, f, fails)
	fmt.Printf("full variant  (§4.3): %v, stretch %.2f\n\n", full.Outcome, full.Stretch)
	for i, s := range full.Steps {
		fmt.Printf("  step %d at %s: %-9s (PR=%v DD=%g)\n",
			i, g.Name(s.Node), s.Event, s.Header.PR, s.Header.DD)
	}
	fmt.Println()
	fmt.Println("Path A→B→D→B→A→C→E→F: D stamps DD=2; B (DD 3 ≥ 2) continues on c3")
	fmt.Println("via A; C (DD 2 ≥ 2) continues on c2; E (DD 1 < 2) resumes shortest-")
	fmt.Println("path routing and delivers.")
}
