// Trafficmix demonstrates the paper's zero-loss claim under realistic
// traffic: a Poisson flow and a bursty on/off MMPP flow (heavy-tailed
// packet sizes) cross a link that is already failed and locally
// detected. Packet Re-cycling delivers every single packet — the
// pre-computed recovery cycles need no reconvergence — while the
// link-state IGP baseline keeps dropping until its convergence window
// elapses.
package main

import (
	"fmt"
	"log"
	"time"

	"recycle"
	"recycle/internal/sim"
	"recycle/internal/telemetry"
	"recycle/internal/traffic"
)

func main() {
	net, err := recycle.FromTopology("abilene")
	if err != nil {
		log.Fatal(err)
	}
	fib, err := net.Compile()
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph()
	node := func(name string) recycle.NodeID {
		id, err := net.Node(name)
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	seattle := node("Seattle")
	losangeles := node("LosAngeles")
	sunnyvale := node("Sunnyvale")

	// Both flows cross the Seattle–Sunnyvale link, which fails at t=0;
	// detection fires at 50 ms and the traffic starts at 100 ms, so every
	// router adjacent to the failure already knows. The paper's claim is
	// exactly this regime: after local detection, PR loses nothing, with
	// no reconvergence ever run.
	flows := []sim.Flow{
		{Src: seattle, Dst: losangeles, Start: 100 * time.Millisecond,
			Source: traffic.Poisson{Rate: 2430, Seed: 1}},
		{Src: seattle, Dst: sunnyvale, Start: 100 * time.Millisecond,
			Source: traffic.MMPP{
				RateOn: 12_150, MeanOn: 20 * time.Millisecond, MeanOff: 80 * time.Millisecond,
				Sizes: traffic.BoundedPareto{Alpha: 1.3, MinBits: 512, MaxBits: 96_000},
				Seed:  2,
			}},
	}
	failed := net.MustLinkBetween("Seattle", "Sunnyvale")

	fmt.Println("Poisson + MMPP/Pareto mix over the failed Seattle–Sunnyvale link")
	fmt.Printf("%-30s %-10s %-10s %-7s\n", "scheme", "generated", "delivered", "lost")
	run := func(scheme sim.Scheme) *telemetry.Snapshot {
		s, err := sim.New(sim.Config{
			Graph:          g,
			Scheme:         scheme,
			Horizon:        2 * time.Second,
			DetectionDelay: 50 * time.Millisecond,
			Flows:          flows,
		})
		if err != nil {
			log.Fatal(err)
		}
		s.FailLinkAt(failed, 0)
		st := s.Run()
		gen, del := st.Counter(sim.MetricGenerated), st.Counter(sim.MetricDelivered)
		fmt.Printf("%-30s %-10d %-10d %-7d\n", scheme.Name(), gen, del, gen-del)
		return st
	}

	pr := run(&sim.CompiledPRScheme{FIB: fib})
	run(&sim.FCPScheme{})
	run(&sim.ReconvScheme{})

	if sim.Dropped(pr) != 0 {
		log.Fatalf("PR dropped %d packets; the zero-drop demonstration failed", sim.Dropped(pr))
	}
	fmt.Println()
	fmt.Println("PR re-cycles every packet around the known-failed link: zero drops,")
	fmt.Println("no recomputation — the recovery cycles were compiled offline.")
}
