package main

import "testing"

// TestSmoke runs the example end to end: it must compute every artefact
// it prints without log.Fatal-ing (which would exit non-zero and fail
// the test binary) — including its own zero-drop assertion on the PR
// run. This puts example drift under tier-1 instead of leaving it to
// users.
func TestSmoke(t *testing.T) {
	main()
}
