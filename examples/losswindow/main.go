// Losswindow reproduces the paper's §1 motivation with live traffic in the
// event-driven simulator: during a one-second outage on a loaded link, a
// reconverging IGP drops packets for its whole convergence window, while PR
// (and FCP) lose only what is emitted before local failure detection fires.
package main

import (
	"fmt"
	"log"
	"time"

	"recycle"
	"recycle/internal/sim"
)

func main() {
	net, err := recycle.FromTopology("abilene")
	if err != nil {
		log.Fatal(err)
	}
	g := net.Graph()
	src, _ := net.Node("Seattle")
	dst, _ := net.Node("LosAngeles")

	// A 20%-loaded OC-192 at 1 kB packets carries ≈243k pps; simulate at
	// 1:100 scale (losses scale linearly with the rate).
	const pps = 2430.0
	const scale = 100.0

	schemes := []sim.Scheme{
		&sim.PRScheme{Protocol: net.Protocol()},
		&sim.FCPScheme{},
		&sim.ReconvScheme{},
	}
	fmt.Println("one-second outage on the Seattle→Sunnyvale link, 50 ms detection")
	fmt.Printf("%-28s %-10s %-10s %-14s\n", "scheme", "generated", "delivered", "lost at OC-192")
	for _, s := range schemes {
		res, err := sim.RunLossWindow(sim.Config{
			Graph:          g,
			Scheme:         s,
			Horizon:        3 * time.Second,
			DetectionDelay: 50 * time.Millisecond,
		}, src, dst, pps, time.Second)
		if err != nil {
			log.Fatal(err)
		}
		lost := float64(res.Generated-res.Delivered) * scale
		fmt.Printf("%-28s %-10d %-10d %-14.0f\n", res.Scheme, res.Generated, res.Delivered, lost)
	}
	fmt.Println()
	fmt.Println("PR's loss window is exactly the local detection delay; the IGP keeps")
	fmt.Println("blackholing until flooding, SPF and FIB installation complete.")
}
