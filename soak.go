package recycle

import (
	"io"

	"recycle/internal/eval"
	"recycle/internal/topo"
)

// SoakConfig parameterises a whole-stack soak run: concurrent flow
// count, emission window, failure scenario, per-flow traffic process,
// hot-swap cadence and the pass verdict's drop bound.
type SoakConfig = eval.SoakConfig

// SoakResult is one soak run's full account: the refereed packet
// totals, sustained rates, control-plane churn counts, egress and
// allocation telemetry, the per-epoch timeline (verified to sum to the
// aggregate exactly) and the pass/fail verdict.
type SoakResult = eval.SoakResult

// DefaultSoakScenario is RunSoak's default background failure process.
const DefaultSoakScenario = eval.DefaultSoakSpec

// RunSoak runs the whole stack at once, for a sustained period, on one
// named topology: hundreds of thousands of concurrent traffic flows
// walked through a live sharded engine with paced egress queues, under
// a continuous failure scenario and a stream of control-plane
// hot-swaps (weight tweaks plus a structural chord add/remove), every
// loss refereed by the connectivity oracle. The §5 guarantee holds
// under soak exactly as it does per-draw: a passing run saw zero
// violations — no packet lost while its pair stayed connected and
// nothing changed mid-flight.
func RunSoak(topology string, cfg SoakConfig) (*SoakResult, error) {
	tp, err := topo.ByName(topology)
	if err != nil {
		return nil, err
	}
	return eval.RunSoak(tp, cfg)
}

// WriteSoakReport renders a soak run as a readable report ending in a
// greppable "verdict: PASS|FAIL" line.
func WriteSoakReport(w io.Writer, r *SoakResult) { eval.WriteSoakReport(w, r) }
