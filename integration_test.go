package recycle_test

import (
	"bytes"
	"testing"
	"time"

	"recycle"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/sim"
)

// TestWalkMatchesSimulator cross-validates the two execution engines: the
// combinatorial Walk and the discrete-event simulator must route a packet
// through the same node sequence when the simulator carries no competing
// traffic and failures are pre-detected.
func TestWalkMatchesSimulator(t *testing.T) {
	net, err := recycle.FromTopology("geant")
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph()
	failSets, err := recycle.SampleFailures(g, 3, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range failSets {
		for srcI := 0; srcI < g.NumNodes(); srcI += 4 {
			for dstI := 0; dstI < g.NumNodes(); dstI += 3 {
				if srcI == dstI {
					continue
				}
				src, dst := recycle.NodeID(srcI), recycle.NodeID(dstI)
				walk := net.RouteIDs(src, dst, fs)

				s, err := sim.New(sim.Config{
					Graph:          g,
					Scheme:         &sim.PRScheme{Protocol: net.Protocol()},
					Horizon:        10 * time.Second,
					DetectionDelay: time.Microsecond,
					Flows: []sim.Flow{{
						Src: src, Dst: dst,
						Interval: time.Hour, // exactly one packet
						Start:    time.Second,
					}},
				})
				if err != nil {
					t.Fatal(err)
				}
				// Fail links at t=0 so detection completes long before the
				// packet launches at t=1s.
				for _, l := range fs.Links() {
					s.FailLinkAt(l, 0)
				}
				st := s.Run()
				if walk.Delivered() {
					if st.Counter(sim.MetricDelivered) != 1 {
						t.Fatalf("failures %v %d→%d: walk delivered but sim did not (%+v)",
							fs, srcI, dstI, st.Counters)
					}
					if hops := int(st.Counter(sim.MetricHops)); hops != walk.Hops() {
						t.Fatalf("failures %v %d→%d: sim hops %d != walk hops %d",
							fs, srcI, dstI, hops, walk.Hops())
					}
				} else if st.Counter(sim.MetricDelivered) != 0 {
					t.Fatalf("failures %v %d→%d: walk dropped but sim delivered", fs, srcI, dstI)
				}
			}
		}
	}
}

// TestEmbeddingSaveLoadRoundTrip: the §4.3 distribution artefact — the
// embedding computed offline, serialised, and reloaded — must reproduce
// identical forwarding.
func TestEmbeddingSaveLoadRoundTrip(t *testing.T) {
	net, err := recycle.FromTopology("abilene")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.SaveEmbedding(&buf); err != nil {
		t.Fatal(err)
	}
	sys, err := recycle.LoadEmbedding(&buf, net.Graph())
	if err != nil {
		t.Fatal(err)
	}
	net2, err := recycle.NewNetwork(net.Graph(), recycle.WithEmbedding(sys))
	if err != nil {
		t.Fatal(err)
	}
	if net2.Genus() != net.Genus() {
		t.Fatalf("genus changed across save/load: %d -> %d", net.Genus(), net2.Genus())
	}
	// Identical walks under identical failures.
	for _, fs := range recycle.SingleFailures(net.Graph()) {
		for src := 0; src < net.Graph().NumNodes(); src++ {
			for dst := 0; dst < net.Graph().NumNodes(); dst++ {
				if src == dst {
					continue
				}
				a := net.RouteIDs(recycle.NodeID(src), recycle.NodeID(dst), fs)
				b := net2.RouteIDs(recycle.NodeID(src), recycle.NodeID(dst), fs)
				if a.Outcome != b.Outcome || a.Cost != b.Cost || len(a.Steps) != len(b.Steps) {
					t.Fatalf("walk diverged after embedding reload: %d→%d under %v", src, dst, fs)
				}
			}
		}
	}
}

// TestPerHopDecideAgreesWithWalk: Decide applied step by step must replay
// Walk's transcript exactly (the contract package sim depends on).
func TestPerHopDecideAgreesWithWalk(t *testing.T) {
	net, err := recycle.FromTopology("teleglobe")
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph()
	p := net.Protocol()
	fs := graph.NewFailureSet(2, 9, 17)
	for src := 0; src < g.NumNodes(); src += 2 {
		for dst := 0; dst < g.NumNodes(); dst += 5 {
			if src == dst {
				continue
			}
			walk := p.Walk(recycle.NodeID(src), recycle.NodeID(dst), fs)
			if !walk.Delivered() {
				continue
			}
			node := recycle.NodeID(src)
			ingress := rotation.NoDart
			hdr := recycle.Header{}
			for i, step := range walk.Steps {
				if node != step.Node {
					t.Fatalf("%d→%d step %d: replay at node %d, walk at %d", src, dst, i, node, step.Node)
				}
				if i == len(walk.Steps)-1 {
					break // delivery step has no egress
				}
				d := p.Decide(node, recycle.NodeID(dst), ingress, hdr, fs)
				if !d.OK || d.Egress != step.Egress {
					t.Fatalf("%d→%d step %d: Decide egress %v, walk egress %v", src, dst, i, d.Egress, step.Egress)
				}
				if d.Header != step.Header {
					t.Fatalf("%d→%d step %d: Decide header %+v, walk header %+v", src, dst, i, d.Header, step.Header)
				}
				hdr = d.Header
				ingress = d.Egress
				node = g.Link(rotation.LinkOf(d.Egress)).Other(node)
			}
		}
	}
}
