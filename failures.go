package recycle

import (
	"io"
	"time"

	"recycle/internal/eval"
	"recycle/internal/failure"
	"recycle/internal/topo"
)

// FailureProcess is an immutable description of a stochastic or scripted
// failure model: Generate draws one concrete scenario per (graph,
// horizon, seed), deterministically, so a Monte-Carlo sweep replays
// every draw against every scheme under comparison.
type FailureProcess = failure.Process

// FailureScenario is one concrete failure history: a set of timed outage
// intervals over links and nodes, as drawn by a FailureProcess.
type FailureScenario = failure.Scenario

// Outage is one contiguous down interval of a link or a node.
type Outage = failure.Outage

// ForeverOutage marks an outage that is never repaired within the run.
const ForeverOutage = failure.Forever

// LinkOutage returns the outage taking link l down during [from, to).
func LinkOutage(l LinkID, from, to time.Duration) Outage { return failure.LinkOutage(l, from, to) }

// NodeOutage returns the outage taking node n — every incident link, the
// paper's §4 dead-router model — down during [from, to).
func NodeOutage(n NodeID, from, to time.Duration) Outage { return failure.NodeOutageAt(n, from, to) }

// Failure process implementations (package failure). MTBFProcess fails
// every link independently with exponential up/down dwells; FlapProcess
// is the §7 flap storm; SRLGProcess cuts a shared-risk link group
// together; NodeOutageProcess kills a router; RegionalProcess takes down
// a hop-radius ball of the topology; MultiProcess composes any of them
// into one correlated scenario.
type (
	MTBFProcess       = failure.MTBF
	FlapProcess       = failure.Flap
	SRLGProcess       = failure.SRLG
	NodeOutageProcess = failure.NodeOutage
	RegionalProcess   = failure.Regional
	MultiProcess      = failure.Multi
)

// ParseFailureScenario parses a compact failure-process spec, e.g.
// "mtbf:up=10s,down=200ms", "srlg:links=3-7;9,at=1s,down=500ms",
// "region:center=12,radius=2,at=1s", or '+'-joined compositions. See
// package failure for the grammar.
func ParseFailureScenario(spec string) (FailureProcess, error) { return failure.ParseScenario(spec) }

// ParseFailureScript parses a scripted scenario file: one spec per line,
// '#' comments, all lines composed into one correlated process.
func ParseFailureScript(r io.Reader) (FailureProcess, error) { return failure.ParseScript(r) }

// ConnectivityOracle answers whether a src–dst pair was physically
// connected at (or throughout) an instant under a scenario — the referee
// that classifies each packet loss as excusable (pair partitioned) or a
// violation of the paper's guarantee (pair connected, loss anyway).
type ConnectivityOracle = failure.Oracle

// NewConnectivityOracle indexes a scenario's link-state timeline over a
// graph.
func NewConnectivityOracle(g *Graph, sc *FailureScenario) (*ConnectivityOracle, error) {
	return failure.NewOracle(g, sc)
}

// FailureDrawSeed derives the seed of Monte-Carlo draw i from a sweep's
// master seed (decorrelated via splitmix64 sequencing).
func FailureDrawSeed(seed int64, draw int) int64 { return failure.DrawSeed(seed, draw) }

// Panel is the configuration surface every eval harness shares: the
// topology panel, failure process, master seed and optional shared
// metrics registry, embedded by ResilienceConfig, SoakConfig,
// CertifyConfig and the rest.
type Panel = eval.Panel

// ResilienceConfig parameterises a Monte-Carlo resilience sweep: the
// shared Panel (failure spec, seed, topologies) plus the number of
// seeded draws, the run horizon, the probe rate and any certified
// counterexample pins replayed as extra draws.
type ResilienceConfig = eval.ResilienceConfig

// ResilienceRow is one (topology, scheme) cell of a resilience sweep:
// generated/delivered counts, the violation/transient/excused loss
// partition and the availability quotient.
type ResilienceRow = eval.ResilienceRow

// RunResilience sweeps Monte-Carlo failure scenarios over one named
// topology (built-in or generator spec): every draw is replayed against
// PR on the compiled dataplane and against the reconvergence baseline
// with identical probe traffic, and every loss is refereed by the
// scenario's connectivity oracle. On a genus-0 embedding the PR row's
// Violations must be zero — that is the paper's §1 claim.
func RunResilience(topology string, cfg ResilienceConfig) ([]ResilienceRow, error) {
	tp, err := topo.ByName(topology)
	if err != nil {
		return nil, err
	}
	return eval.RunResilience(tp, cfg)
}

// WriteResilience runs the sweep over cfg.Topologies (nil = the default
// ring/grid/random panel) and renders the report table.
func WriteResilience(w io.Writer, cfg ResilienceConfig) error {
	if cfg.Topologies == nil {
		cfg.Topologies = []string{"ring:24", "grid:4x8", "rand:24@7"}
	}
	return eval.WriteResilienceReport(w, cfg)
}
