module recycle

go 1.22
