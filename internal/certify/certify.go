// Package certify turns the Monte-Carlo resilience harness into a
// verification tool: an adversary that hunts the failure set maximising
// packet-recycling violations for (src, dst) pairs and emits a
// per-topology resilience certificate — either "provably zero violations
// for all ≤k simultaneous link/node failures" or a subset-minimal
// counterexample failure set with the refereed violating walk attached.
//
// The paper's headline claim (§5) is a worst-case statement: no packet is
// lost under *any* static failure combination that leaves its pair
// connected on a genus-0 embedding. Sampling (eval.RunResilience) gives
// statistical evidence; this package probes the claim at its boundary the
// way the related work does (Chiesa et al., *Exploring the Limits of
// Static Failover Routing*): k approaching the edge connectivity.
//
// Two search strategies share one vocabulary (failure.Element universes,
// failure.Subsets enumeration, failure.NeighbourMove perturbations):
//
//   - Exhaustive sweeps every failure set of size ≤ k, pruned by the
//     affected-pair test (a pair whose failure-free walk consults no
//     failed link walks identically and delivers — skip it) and by
//     domination (a set containing an already-found violating subset for
//     the pair cannot be minimal). Sets that disconnect the pair are
//     excused by definition — the Oracle's rule.
//   - Guided combines walk-guided DFS ("greedy cut-targeting": attack
//     only the links the current walk actually consults, which is
//     *complete* for subset-minimal counterexamples — see guided.go) with
//     seeded simulated annealing in the style of
//     internal/embedding/anneal.go for the large-k regime.
//
// Both fan out across destinations via internal/par and are
// deterministic for a fixed Config.Seed. Every emitted counterexample is
// re-refereed through the connectivity Oracle (the same code that judges
// simulated losses) and carries the full violating walk as a
// telemetry.Flight transcript.
package certify

import (
	"fmt"
	"sort"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/failure"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/telemetry"
)

// Walk verdicts. Delivered matches the flight recorder's vocabulary;
// looped and blackhole are the two ways a static walk dies.
const (
	VerdictDelivered = "delivered"
	VerdictLooped    = "looped"
	VerdictBlackhole = "blackhole"
	VerdictNoRoute   = "no-route"
)

// Walk is one static walk outcome under a candidate failure set.
type Walk struct {
	// Delivered reports whether the packet reached its destination.
	Delivered bool
	// Verdict is the terminal fate (Verdict* constants).
	Verdict string
	// Decided lists the nodes that executed a forwarding decision, in
	// order and with repeats — the walk's footprint. A forwarding decision
	// consults only links incident to the deciding node, so the links
	// incident to Decided are a sound superset of every link whose state
	// the walk read: the branching set of the guided search.
	Decided []graph.NodeID
	// Recycled counts decisions off the shortest path (detect, cycle,
	// continue) — the annealing search's stress signal.
	Recycled int
	// Hops is the per-decision transcript (only when requested).
	Hops []telemetry.Hop
}

// Walker is a forwarding scheme under certification: a pure function
// from (pair, static failure set) to a walk. Implementations are
// stateless and safe for concurrent use — the searches walk from many
// goroutines. transcript requests the full per-hop record (costlier;
// sweeps pass false and re-walk the counterexamples they keep).
type Walker interface {
	Name() string
	Walk(src, dst graph.NodeID, fs *graph.FailureSet, transcript bool) Walk
}

// PRWalker walks packets through a compiled FIB — the same tables the
// engine forwards with, so a certificate speaks for the dataplane, not
// for a re-derivation of it. Decisions are bit-identical to
// core.Protocol (the dataplane's differential sweeps prove it); loops
// are detected by exact forwarding-state repetition, as in core.Walk.
type PRWalker struct {
	fib      *dataplane.FIB
	maxSteps int
}

// NewPRWalker wraps a compiled FIB for certification walks.
func NewPRWalker(fib *dataplane.FIB) *PRWalker {
	return &PRWalker{fib: fib, maxSteps: 4*fib.NumNodes()*fib.NumLinks() + 16}
}

// Name implements Walker.
func (w *PRWalker) Name() string {
	if w.fib.Variant() == core.Basic {
		return "packet-recycling-basic"
	}
	return "packet-recycling"
}

// prState is the complete forwarding state of a packet at a router —
// repetition proves a loop (forwarding is deterministic in it).
type prState struct {
	node    graph.NodeID
	ingress rotation.DartID
	pr      bool
	dd      float64
}

// Walk implements Walker.
func (w *PRWalker) Walk(src, dst graph.NodeID, fs *graph.FailureSet, transcript bool) Walk {
	var res Walk
	if src == dst {
		res.Delivered = true
		res.Verdict = VerdictDelivered
		return res
	}
	st := dataplane.FromFailureSet(w.fib.NumLinks(), fs)
	hdr := core.Header{}
	node, ingress := src, rotation.NoDart
	seen := make(map[prState]bool)
	for steps := 0; steps <= w.maxSteps; steps++ {
		if node == dst {
			res.Delivered = true
			res.Verdict = VerdictDelivered
			if transcript {
				res.Hops = append(res.Hops, telemetry.Hop{Node: node, Ingress: ingress, Egress: rotation.NoDart, Event: core.EventDeliver, Header: hdr})
			}
			return res
		}
		s := prState{node: node, ingress: ingress, pr: hdr.PR, dd: hdr.DD}
		if seen[s] {
			res.Verdict = VerdictLooped
			return res
		}
		seen[s] = true
		res.Decided = append(res.Decided, node)
		d := w.fib.Decide(node, dst, ingress, hdr, st)
		if !d.OK {
			res.Verdict = VerdictBlackhole
			return res
		}
		switch d.Event {
		case core.EventDetect, core.EventCycle, core.EventContinue:
			res.Recycled++
		}
		if transcript {
			res.Hops = append(res.Hops, telemetry.Hop{Node: node, Ingress: ingress, Egress: d.Egress, Event: d.Event, Header: d.Header})
		}
		hdr = d.Header
		node = w.fib.Head(d.Egress)
		ingress = d.Egress
	}
	res.Verdict = VerdictLooped // step-cap backstop, as in core.Walk
	return res
}

// ReconvWalker is the reconvergence baseline *inside its detection
// window* (§1): packets forward on the failure-free shortest-path trees
// — the stale tables routers hold until flooding, SPF and FIB install
// complete — and die on the first failed link of the path. This is the
// loss PR exists to eliminate; post-convergence reconvergence always
// delivers connected pairs and certifies trivially, so it is the window
// that the adversary attacks.
type ReconvWalker struct {
	g   *graph.Graph
	tbl *route.Table
}

// NewReconvWalker builds the stale-table baseline walker for g.
func NewReconvWalker(g *graph.Graph) *ReconvWalker {
	return &ReconvWalker{g: g, tbl: route.Build(g, route.HopCount)}
}

// Name implements Walker.
func (w *ReconvWalker) Name() string { return "reconvergence" }

// Walk implements Walker.
func (w *ReconvWalker) Walk(src, dst graph.NodeID, fs *graph.FailureSet, transcript bool) Walk {
	var res Walk
	if src == dst {
		res.Delivered = true
		res.Verdict = VerdictDelivered
		return res
	}
	node := src
	ingress := rotation.NoDart
	for node != dst {
		l := w.tbl.NextLink(node, dst)
		if l == graph.NoLink {
			res.Verdict = VerdictNoRoute
			return res
		}
		res.Decided = append(res.Decided, node)
		if fs.Down(l) {
			// The stale table points into the failure: the packet is
			// dropped at this router until reconvergence. The transcript
			// records the detection with no egress — the drop itself.
			if transcript {
				res.Hops = append(res.Hops, telemetry.Hop{Node: node, Ingress: ingress, Egress: rotation.NoDart, Event: core.EventDetect})
			}
			res.Verdict = VerdictBlackhole
			return res
		}
		eg := outgoingDart(w.g, node, l)
		if transcript {
			res.Hops = append(res.Hops, telemetry.Hop{Node: node, Ingress: ingress, Egress: eg, Event: core.EventRoute})
		}
		ingress = eg
		node = w.tbl.NextNode(node, dst)
	}
	if transcript {
		res.Hops = append(res.Hops, telemetry.Hop{Node: node, Ingress: ingress, Egress: rotation.NoDart, Event: core.EventDeliver})
	}
	res.Delivered = true
	res.Verdict = VerdictDelivered
	return res
}

// outgoingDart returns the dart of link l that leaves node n.
func outgoingDart(g *graph.Graph, n graph.NodeID, l graph.LinkID) rotation.DartID {
	if g.Link(l).A == n {
		return rotation.DartID(2 * l)
	}
	return rotation.DartID(2*l + 1)
}

// space binds a graph to an element universe: index translation and the
// consulted-element sets the guided search branches on.
type space struct {
	g     *graph.Graph
	mode  failure.ElementMode
	elems []failure.Element
	// linkIdx/nodeIdx map a LinkID/NodeID to its universe index (-1 when
	// the mode excludes that element kind).
	linkIdx []int
	nodeIdx []int
}

func newSpace(g *graph.Graph, mode failure.ElementMode) *space {
	s := &space{g: g, mode: mode, elems: failure.Universe(g, mode)}
	s.linkIdx = make([]int, g.NumLinks())
	s.nodeIdx = make([]int, g.NumNodes())
	for i := range s.linkIdx {
		s.linkIdx[i] = -1
	}
	for i := range s.nodeIdx {
		s.nodeIdx[i] = -1
	}
	for i, e := range s.elems {
		if e.IsNode() {
			s.nodeIdx[e.Node] = i
		} else {
			s.linkIdx[e.Link] = i
		}
	}
	return s
}

// size returns the universe cardinality.
func (s *space) size() int { return len(s.elems) }

// elemsOf maps universe indices to elements.
func (s *space) elemsOf(idx []int) []failure.Element {
	out := make([]failure.Element, len(idx))
	for i, j := range idx {
		out[i] = s.elems[j]
	}
	return out
}

// fsOf expands universe indices into the concrete link failure set.
func (s *space) fsOf(idx []int) *graph.FailureSet {
	return failure.FailureSetOf(s.g, s.elemsOf(idx))
}

// consulted returns the sorted universe indices of every element whose
// failure state the walk may have read: links incident to a deciding
// node, plus (in node modes) the deciding nodes and their neighbours. A
// forwarding decision only inspects links incident to its router, so
// this is a sound superset — the completeness anchor of the guided DFS.
func (s *space) consulted(decided []graph.NodeID) []int {
	mark := make(map[int]bool)
	add := func(i int) {
		if i >= 0 {
			mark[i] = true
		}
	}
	for _, n := range decided {
		for _, nb := range s.g.Neighbors(n) {
			add(s.linkIdx[nb.Link])
			add(s.nodeIdx[nb.Node])
		}
		add(s.nodeIdx[n])
	}
	out := make([]int, 0, len(mark))
	for i := range mark {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// setKey canonicalises a sorted index set for dedup and memoisation.
func setKey(idx []int) string { return fmt.Sprint(idx) }
