package certify

import (
	"sort"

	"recycle/internal/graph"
	"recycle/internal/par"
	"recycle/internal/telemetry"
)

// Guided hunts counterexamples without enumerating the whole ≤K universe,
// combining two strategies and merging their finds:
//
//   - Walk-guided DFS — greedy cut-targeting made rigorous. From the
//     empty set, each state walks the pair and branches only on elements
//     the walk consulted (links incident to deciding routers). This is
//     COMPLETE for subset-minimal counterexamples: let F (|F| ≤ K) be
//     minimal violating and S ⊊ F reachable. The pair is connected under
//     F, hence under S (fewer failures), so S is not excused; S is not
//     violating (F is minimal), so the walk under S delivers. If that
//     walk consulted no element of F∖S it would be the identical walk
//     under F — contradicting F violating — so it consults some e ∈ F∖S,
//     and the DFS explores S∪{e}. By induction from S = ∅, F is reached.
//     Branching is therefore bounded by the walk's footprint, not the
//     graph: the search only ever attacks links the compiled FIB's
//     current walk actually traverses or inspects.
//
//   - Seeded simulated annealing (anneal.go) — the stochastic prong for
//     the large-k regime where even footprint-bounded branching explodes.
//     Its finds are minimised before merging, so the two prongs emit the
//     same vocabulary.
//
// The certificate is Complete (the DFS argument above), so a clean guided
// run certifies — and the differential gate in the tests holds it to
// exactly that promise against the exhaustive sweep.
func Guided(g *graph.Graph, w Walker, cfg Config) (*Certificate, error) {
	cfg = cfg.withDefaults()
	sp := newSpace(g, cfg.Mode)
	dsts, srcs := pairsByDst(g, cfg.Pairs)

	root := cfg.Tracer.Start("certify.guided", cfg.TraceParent)
	root.SetAttr(telemetry.AttrNodes, int64(g.NumNodes()))
	root.SetAttr(telemetry.AttrCount, int64(len(dsts)))
	defer root.End()

	stats := make([]SearchStats, len(dsts))
	viols := make([][]Violation, len(dsts))
	dfsSpan := cfg.Tracer.Start("certify.dfs", root.ID())
	obs := cfg.Tracer.RangeObserver("certify.dfs.worker", dfsSpan.ID())
	par.ForObserved(len(dsts), cfg.Workers, obs, func(_, lo, hi int) {
		for di := lo; di < hi; di++ {
			for _, src := range srcs[di] {
				viols[di] = append(viols[di], dfsPair(g, w, sp, cfg, src, dsts[di], &stats[di])...)
			}
		}
	})
	dfsSpan.End()

	var all []Violation
	var total SearchStats
	for i := range viols {
		all = append(all, viols[i]...)
		total.merge(stats[i])
	}

	annealSpan := cfg.Tracer.Start("certify.anneal", root.ID())
	annealed, annealStats := annealSearch(g, w, sp, cfg, annealSpan.ID(), dsts, srcs)
	annealSpan.End()
	all = append(all, annealed...)
	total.merge(annealStats)

	return buildCertificate(g, w, sp, cfg, "guided", true, all, total)
}

// dfsPair runs the walk-guided DFS for one pair.
func dfsPair(g *graph.Graph, w Walker, sp *space, cfg Config, src, dst graph.NodeID, st *SearchStats) []Violation {
	visited := make(map[string]bool)
	minimal := &found{}
	var out []Violation

	var rec func(idx []int)
	rec = func(idx []int) {
		key := setKey(idx)
		if visited[key] {
			return
		}
		visited[key] = true
		st.DFSStates++
		st.Sets++
		if minimal.dominated(idx) {
			st.PrunedDominated++
			return
		}
		fs := sp.fsOf(idx)
		walk := w.Walk(src, dst, fs, false)
		st.Walks++
		if !walk.Delivered {
			if !graph.ReachableUnder(g, dst, fs)[src] {
				// Excused — and every superset keeps the pair disconnected,
				// so this branch is closed.
				st.Excused++
				return
			}
			st.ViolationsFound++
			minimal.add(idx)
			out = append(out, newViolation(sp, src, dst, idx, w))
			return // supersets of a violating set are never minimal
		}
		if len(idx) >= cfg.K {
			return
		}
		for _, e := range sp.consulted(walk.Decided) {
			if contains(idx, e) {
				continue
			}
			rec(insertSorted(idx, e))
		}
	}
	rec(nil)
	return out
}

// contains reports membership in a sorted index set.
func contains(idx []int, e int) bool {
	i := sort.SearchInts(idx, e)
	return i < len(idx) && idx[i] == e
}

// insertSorted returns a fresh sorted set with e added.
func insertSorted(idx []int, e int) []int {
	out := make([]int, 0, len(idx)+1)
	i := sort.SearchInts(idx, e)
	out = append(out, idx[:i]...)
	out = append(out, e)
	out = append(out, idx[i:]...)
	return out
}
