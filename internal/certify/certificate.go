package certify

import (
	"fmt"
	"io"
	"strings"

	"recycle/internal/failure"
	"recycle/internal/graph"
	"recycle/internal/telemetry"
)

// Violation is one counterexample: a subset-minimal failure set under
// which the walker loses a packet whose pair stays connected — exactly
// the loss class the Oracle counts against a scheme.
type Violation struct {
	Src, Dst graph.NodeID
	// Elements is the minimal failure set (links and/or nodes).
	Elements []failure.Element
	// Links is the concrete link expansion the walker consulted.
	Links *graph.FailureSet
	// Walk is the violating walk with its full transcript.
	Walk Walk
	// Refereed reports that the connectivity Oracle confirmed the pair
	// connected under a static scenario of exactly these elements — the
	// same referee that classifies simulated losses.
	Refereed bool

	// indices is the sorted universe-index form used for dedup,
	// domination and differential comparison.
	indices []int
}

// Key canonicalises the violation as "src>dst:{elem, …}" for
// differential comparison between searches.
func (v Violation) Key() string {
	parts := make([]string, len(v.Elements))
	for i, e := range v.Elements {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%d>%d:{%s}", v.Src, v.Dst, strings.Join(parts, ", "))
}

// SetString renders the failure set alone ("{link 3, node 7}").
func (v Violation) SetString() string {
	parts := make([]string, len(v.Elements))
	for i, e := range v.Elements {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Flight packages the violating walk as a flight-recorder transcript,
// ready for telemetry.Flight.Explain — the audit narrative attached to
// the certificate.
func (v Violation) Flight() *telemetry.Flight {
	rec := telemetry.NewRecorder(telemetry.RecorderConfig{
		Capacity:    1,
		SampleEvery: 1,
		KeepAll:     true,
		MaxHops:     len(v.Walk.Hops) + 1,
	})
	fl := rec.Begin(0, v.Src, v.Dst, 0)
	for _, h := range v.Walk.Hops {
		fl.Record(h)
	}
	rec.Finish(fl, v.Walk.Verdict, 0)
	return rec.Flights()[0]
}

// Scenario wraps the violation as a static failure scenario — the form
// eval.RunResilience replays as a regression pin and the Oracle referees.
func (v Violation) Scenario() *failure.Scenario {
	return failure.StaticScenario(fmt.Sprintf("certify-pin:%s", v.Key()), v.Elements)
}

// Certificate is the per-(topology, scheme) verdict of a certification
// search.
type Certificate struct {
	// Topology and Walker label the subject; Genus is the embedding genus
	// the walker ran on (GenusUnknown when the scheme has none).
	Topology string
	Walker   string
	Genus    int
	// K and Mode fix the adversary's power: up to K simultaneous
	// failures drawn from the Mode universe (UniverseSize elements).
	K            int
	Mode         failure.ElementMode
	UniverseSize int
	// Method is "exhaustive" or "guided"; Complete reports whether the
	// search provably covered every subset-minimal counterexample of size
	// ≤ K (true for both: the exhaustive sweep by enumeration, the guided
	// DFS by the consulted-link completeness argument — see guided.go).
	Method   string
	Complete bool
	// Certified is the headline: Complete and zero counterexamples — no
	// packet loss under any ≤K-element failure leaving its pair
	// connected.
	Certified bool
	// DistinctSets is the number of failure sets of size 1..K in the
	// universe (what "all ≤k failures" quantifies over).
	DistinctSets int64
	// Counterexamples lists every subset-minimal violation found, sorted
	// by (size, src, dst, set); empty when Certified.
	Counterexamples []Violation
	// Stats counts the search's work.
	Stats SearchStats
}

// buildCertificate finalises a search: dedup + minimise + referee every
// violation, then assemble and publish.
func buildCertificate(g *graph.Graph, w Walker, sp *space, cfg Config, method string, complete bool, viols []Violation, stats SearchStats) (*Certificate, error) {
	minimised := make([]Violation, 0, len(viols))
	for _, v := range viols {
		mv, err := Minimise(g, w, sp, v)
		if err != nil {
			return nil, err
		}
		minimised = append(minimised, mv)
	}
	minimised = dedupViolations(minimised)
	for i := range minimised {
		if err := referee(g, &minimised[i]); err != nil {
			return nil, err
		}
	}

	var distinct int64
	for k := 1; k <= cfg.K; k++ {
		distinct += failure.CountSubsets(sp.size(), k)
	}
	cert := &Certificate{
		Topology:        cfg.Label,
		Walker:          w.Name(),
		Genus:           cfg.Genus,
		K:               cfg.K,
		Mode:            cfg.Mode,
		UniverseSize:    sp.size(),
		Method:          method,
		Complete:        complete,
		Certified:       complete && len(minimised) == 0,
		DistinctSets:    distinct,
		Counterexamples: minimised,
		Stats:           stats,
	}
	stats.publish(cfg.Metrics)
	return cert, nil
}

// Minimise greedily reduces a violating set to a subset-minimal one: as
// long as removing some element keeps the walk violating (undelivered
// with the pair still connected), remove it. The searches emit minimal
// sets by construction; Minimise re-establishes the property
// unconditionally (and is what the annealing stage, which examines sets
// out of subset order, relies on).
func Minimise(g *graph.Graph, w Walker, sp *space, v Violation) (Violation, error) {
	idx := append([]int(nil), v.indices...)
	if len(idx) == 0 {
		return Violation{}, fmt.Errorf("certify: minimise of empty set for %d>%d", v.Src, v.Dst)
	}
	for changed := true; changed && len(idx) > 1; {
		changed = false
		for i := 0; i < len(idx); i++ {
			cand := make([]int, 0, len(idx)-1)
			cand = append(cand, idx[:i]...)
			cand = append(cand, idx[i+1:]...)
			fs := sp.fsOf(cand)
			walk := w.Walk(v.Src, v.Dst, fs, false)
			if walk.Delivered {
				continue
			}
			if !graph.ReachableUnder(g, v.Dst, fs)[v.Src] {
				continue // excused, not a violation — keep the element
			}
			idx = cand
			changed = true
			break
		}
	}
	return newViolation(sp, v.Src, v.Dst, idx, w), nil
}

// referee confirms the violation through the connectivity Oracle — the
// same machinery that classifies simulated losses — and re-checks the
// walk. A disagreement means the search mislabelled an excused loss; it
// is returned as an error, never silently certified.
func referee(g *graph.Graph, v *Violation) error {
	o, err := failure.NewOracle(g, v.Scenario())
	if err != nil {
		return fmt.Errorf("certify: refereeing %s: %w", v.Key(), err)
	}
	if !o.ConnectedAt(v.Src, v.Dst, 0) {
		return fmt.Errorf("certify: %s: oracle rules the pair disconnected — excused, not a violation", v.Key())
	}
	if v.Walk.Delivered {
		return fmt.Errorf("certify: %s: recorded walk delivered", v.Key())
	}
	v.Refereed = true
	return nil
}

// Headline is the one-line verdict CI greps for:
//
//	certificate: CERTIFIED k=2 — ...
//	certificate: COUNTEREXAMPLE k=2 — ...
//	certificate: CLEAR k=4 — ... (incomplete search found nothing)
func (c *Certificate) Headline() string {
	genus := ""
	if c.Genus != GenusUnknown {
		genus = fmt.Sprintf(" (genus %d)", c.Genus)
	}
	subject := fmt.Sprintf("topology %s, scheme %s%s, universe %s (%d elements), method %s",
		c.Topology, c.Walker, genus, c.Mode, c.UniverseSize, c.Method)
	switch {
	case c.Certified:
		return fmt.Sprintf("certificate: CERTIFIED k=%d — %s: zero violations across all %d failure sets of ≤%d elements (%d walks)",
			c.K, subject, c.DistinctSets, c.K, c.Stats.Walks)
	case len(c.Counterexamples) > 0:
		v := c.Counterexamples[0]
		return fmt.Sprintf("certificate: COUNTEREXAMPLE k=%d — %s: %d minimal violating sets; smallest %s breaks pair %d→%d (%s while the pair stays connected; refereed)",
			c.K, subject, len(c.Counterexamples), v.SetString(), v.Src, v.Dst, v.Walk.Verdict)
	default:
		return fmt.Sprintf("certificate: CLEAR k=%d — %s: no violation found, but the search was not exhaustive",
			c.K, subject)
	}
}

// Write renders the full certificate: the headline, the search
// accounting, and (for counterexamples) the refereed violating walk of
// the smallest set.
func (c *Certificate) Write(w io.Writer) error {
	if _, err := fmt.Fprintln(w, c.Headline()); err != nil {
		return err
	}
	st := c.Stats
	fmt.Fprintf(w, "  search: %d set enumerations, %d walks, %d pair-sets pruned unaffected, %d pruned dominated, %d excused by disconnection\n",
		st.Sets, st.Walks, st.PrunedUnaffected, st.PrunedDominated, st.Excused)
	if st.DFSStates > 0 || st.AnnealMoves > 0 {
		fmt.Fprintf(w, "  guided: %d DFS states, %d annealing moves (%d accepted)\n",
			st.DFSStates, st.AnnealMoves, st.AnnealAccepts)
	}
	if len(c.Counterexamples) == 0 {
		return nil
	}
	const maxListed = 5
	for i, v := range c.Counterexamples {
		if i == maxListed {
			fmt.Fprintf(w, "  … %d further minimal counterexamples not listed\n", len(c.Counterexamples)-maxListed)
			break
		}
		fmt.Fprintf(w, "  counterexample %d: %s pair %d→%d (%s, refereed=%v)\n",
			i+1, v.SetString(), v.Src, v.Dst, v.Walk.Verdict, v.Refereed)
	}
	fmt.Fprintln(w, "  violating walk of the smallest counterexample:")
	for _, line := range strings.Split(c.Counterexamples[0].Flight().Explain(), "\n") {
		fmt.Fprintf(w, "    %s\n", line)
	}
	return nil
}

// PinScenarios exports every counterexample as a static failure scenario
// — the regression pins eval.RunResilience replays on every sweep so a
// once-found counterexample can never silently return.
func (c *Certificate) PinScenarios() []*failure.Scenario {
	out := make([]*failure.Scenario, len(c.Counterexamples))
	for i, v := range c.Counterexamples {
		out[i] = v.Scenario()
	}
	return out
}
