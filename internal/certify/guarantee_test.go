package certify

import (
	"fmt"
	"strings"
	"testing"

	"recycle/internal/core"
	"recycle/internal/topo"
)

// differentialMix is the 25-graph panel the guided search is gated on:
// random planar 2-edge-connected topologies spanning 8–16 nodes across
// decorrelated generator seeds.
func differentialMix(t *testing.T) []topo.Topology {
	t.Helper()
	out := make([]topo.Topology, 0, 25)
	for i := 0; i < 25; i++ {
		n := 8 + i%9
		seed := 100 + 7*i
		out = append(out, mustTopo(t, fmt.Sprintf("rand:%d@%d", n, seed)))
	}
	return out
}

// TestGuidedRediscoversExhaustive is the differential gate of the guided
// search: on every graph of the mix, for both imperfect walkers (the
// stale-table baseline and the PR Basic ablation), the guided search must
// emit exactly the counterexample set the exhaustive k≤2 sweep proves —
// nothing missing (completeness) and nothing extra (soundness +
// minimality).
func TestGuidedRediscoversExhaustive(t *testing.T) {
	for _, tp := range differentialMix(t) {
		walkers := []Walker{
			NewReconvWalker(tp.Graph),
			prWalker(t, tp, core.Basic),
		}
		for _, w := range walkers {
			cfg := Config{K: 2, Seed: 1, Label: tp.Name}
			ex, err := Exhaustive(tp.Graph, w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			gd, err := Guided(tp.Graph, w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			exKeys, gdKeys := keysOf(ex), keysOf(gd)
			for k := range exKeys {
				if !gdKeys[k] {
					t.Errorf("%s/%s: guided search missed exhaustive counterexample %s", tp.Name, w.Name(), k)
				}
			}
			for k := range gdKeys {
				if !exKeys[k] {
					t.Errorf("%s/%s: guided search emitted %s, which the exhaustive sweep never found", tp.Name, w.Name(), k)
				}
			}
		}
	}
}

// TestCertifyGuarantee is the acceptance gate of the certification
// subsystem, probing the paper's §5 claim at its boundary:
//
//  1. the exhaustive sweep certifies zero PR violations for ALL ≤2
//     simultaneous link failures on ring:24, grid:4x8 and rand:24@7;
//  2. the identical sweep against the reconvergence (stale-table)
//     baseline emits a concrete minimal counterexample with its refereed
//     violating walk attached;
//  3. the guided search (annealing + greedy cut-targeting) reproduces
//     every exhaustive k=3 counterexample on the 25-graph differential
//     mix under a fixed seed.
func TestCertifyGuarantee(t *testing.T) {
	for _, name := range []string{"ring:24", "grid:4x8", "rand:24@7"} {
		tp := mustTopo(t, name)

		pr, err := Exhaustive(tp.Graph, prWalker(t, tp, core.Full), Config{K: 2, Label: name, Genus: 0})
		if err != nil {
			t.Fatal(err)
		}
		if !pr.Certified {
			t.Fatalf("%s: PR failed certification: %s", name, pr.Headline())
		}
		if !strings.Contains(pr.Headline(), "certificate: CERTIFIED k=2") {
			t.Fatalf("%s: malformed headline %q", name, pr.Headline())
		}

		base, err := Exhaustive(tp.Graph, NewReconvWalker(tp.Graph), Config{K: 2, Label: name, Genus: GenusUnknown})
		if err != nil {
			t.Fatal(err)
		}
		if base.Certified || len(base.Counterexamples) == 0 {
			t.Fatalf("%s: the reconvergence baseline must produce a counterexample", name)
		}
		v := base.Counterexamples[0]
		if !v.Refereed {
			t.Fatalf("%s: counterexample %s lacks the oracle referee", name, v.Key())
		}
		if v.Walk.Delivered || len(v.Walk.Hops) == 0 {
			t.Fatalf("%s: counterexample %s lacks its violating walk", name, v.Key())
		}
		if got := v.Flight().Explain(); !strings.Contains(got, "verdict: blackhole") {
			t.Fatalf("%s: violating walk transcript malformed:\n%s", name, got)
		}
	}

	// Part 3: fixed-seed k=3 differential on the 25-graph mix. PR Basic
	// supplies genuine multi-link minimal counterexamples (the reason §4.3
	// exists); the baseline supplies the single-link ones.
	for _, tp := range differentialMix(t) {
		for _, w := range []Walker{NewReconvWalker(tp.Graph), prWalker(t, tp, core.Basic)} {
			cfg := Config{K: 3, Seed: 42, Label: tp.Name}
			ex, err := Exhaustive(tp.Graph, w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			gd, err := Guided(tp.Graph, w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			exKeys, gdKeys := keysOf(ex), keysOf(gd)
			missing := 0
			for k := range exKeys {
				if !gdKeys[k] {
					missing++
					t.Errorf("%s/%s: guided search missed k=3 counterexample %s", tp.Name, w.Name(), k)
				}
			}
			if missing == 0 && len(exKeys) != len(gdKeys) {
				t.Errorf("%s/%s: guided found %d sets vs exhaustive %d", tp.Name, w.Name(), len(gdKeys), len(exKeys))
			}
		}
	}
}
