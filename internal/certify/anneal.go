package certify

import (
	"math"
	"math/rand"
	"sort"

	"recycle/internal/failure"
	"recycle/internal/graph"
	"recycle/internal/par"
	"recycle/internal/telemetry"
)

// Annealing schedule, in the style of internal/embedding/anneal.go:
// geometric cooling from tStart to tEnd over the iteration budget.
const (
	annealTStart = 2.0
	annealTEnd   = 0.01
)

// annealSearch is the stochastic prong of the guided search: seeded
// simulated annealing over ≤K-element sets, attacking the hardest pairs
// (longest failure-free walks — the most failure surface). The objective
// rewards walks that are long and heavily recycled — the adversary's
// gradient toward trouble — with violations as the jackpot; moves are
// failure.NeighbourMove perturbations biased toward the elements the
// current walk consulted, the same cut-targeting signal the DFS branches
// on. Everything is driven by sub-seeds of cfg.Seed, so a certificate is
// reproducible run-to-run.
func annealSearch(g *graph.Graph, w Walker, sp *space, cfg Config, parent telemetry.SpanID, dsts []graph.NodeID, srcs [][]graph.NodeID) ([]Violation, SearchStats) {
	if sp.size() == 0 {
		return nil, SearchStats{}
	}
	pairs := hardestPairs(w, cfg, dsts, srcs)
	stats := make([]SearchStats, len(pairs))
	viols := make([][]Violation, len(pairs))
	obs := cfg.Tracer.RangeObserver("certify.anneal.worker", parent)
	par.ForObserved(len(pairs), cfg.Workers, obs, func(_, lo, hi int) {
		for pi := lo; pi < hi; pi++ {
			viols[pi] = annealPair(g, w, sp, cfg, parent, pairs[pi], pi, &stats[pi])
		}
	})
	var all []Violation
	var total SearchStats
	for i := range viols {
		all = append(all, viols[i]...)
		total.merge(stats[i])
	}
	return all, total
}

// hardestPairs ranks the configured pairs by failure-free walk length and
// keeps the top cfg.AnnealPairs — deterministically.
func hardestPairs(w Walker, cfg Config, dsts []graph.NodeID, srcs [][]graph.NodeID) []Pair {
	type ranked struct {
		p    Pair
		cost int
	}
	var all []ranked
	for di, dst := range dsts {
		for _, src := range srcs[di] {
			base := w.Walk(src, dst, nil, false)
			if !base.Delivered {
				continue
			}
			all = append(all, ranked{p: Pair{Src: src, Dst: dst}, cost: len(base.Decided)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].cost != all[j].cost {
			return all[i].cost > all[j].cost
		}
		if all[i].p.Src != all[j].p.Src {
			return all[i].p.Src < all[j].p.Src
		}
		return all[i].p.Dst < all[j].p.Dst
	})
	n := cfg.AnnealPairs
	if n > len(all) {
		n = len(all)
	}
	out := make([]Pair, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].p
	}
	return out
}

// annealPair runs cfg.Restarts seeded annealing chains against one pair.
func annealPair(g *graph.Graph, w Walker, sp *space, cfg Config, parent telemetry.SpanID, p Pair, ordinal int, st *SearchStats) []Violation {
	var out []Violation
	minimal := &found{}
	n := sp.size()
	startSize := cfg.K
	if startSize > n {
		startSize = n
	}
	for r := 0; r < cfg.Restarts; r++ {
		seed := failure.DrawSeed(cfg.Seed, ordinal*cfg.Restarts+r)
		restart := cfg.Tracer.Start("certify.anneal.restart", parent)
		restart.SetAttr(telemetry.AttrDest, int64(p.Dst))
		restart.SetAttr(telemetry.AttrCount, int64(r))
		restart.SetAttr(telemetry.AttrSeed, seed)
		rng := rand.New(rand.NewSource(seed))
		cur := failure.RandomSubset(rng, n, startSize)
		curScore, curWalk := annealScore(g, w, sp, p, cur, st)
		cool := math.Pow(annealTEnd/annealTStart, 1/float64(cfg.Iters))
		t := annealTStart
		for it := 0; it < cfg.Iters; it++ {
			prefer := sp.consulted(curWalk.Decided)
			cand := failure.NeighbourMove(rng, cur, n, cfg.K, prefer)
			st.AnnealMoves++
			candScore, candWalk := annealScore(g, w, sp, p, cand, st)
			if candScore >= jackpotScore && !minimal.dominated(cand) {
				st.ViolationsFound++
				minimal.add(cand)
				out = append(out, newViolation(sp, p.Src, p.Dst, cand, w))
			}
			if candScore >= curScore || rng.Float64() < math.Exp((candScore-curScore)/t) {
				cur, curScore, curWalk = cand, candScore, candWalk
				st.AnnealAccepts++
			}
			t *= cool
		}
		restart.End()
	}
	return out
}

// jackpotScore marks a violating set; excusedScore repels the chain from
// partitions, which are dead ends for the adversary.
const (
	jackpotScore = 1e6
	excusedScore = -100
)

// annealScore walks the pair under the candidate set and scores the
// adversary's progress: violation ≫ long, heavily-recycled delivery >
// short delivery > excused partition.
func annealScore(g *graph.Graph, w Walker, sp *space, p Pair, idx []int, st *SearchStats) (float64, Walk) {
	fs := sp.fsOf(idx)
	walk := w.Walk(p.Src, p.Dst, fs, false)
	st.Walks++
	st.Sets++
	if walk.Delivered {
		return float64(len(walk.Decided)) + 5*float64(walk.Recycled), walk
	}
	if !graph.ReachableUnder(g, p.Dst, fs)[p.Src] {
		st.Excused++
		return excusedScore, walk
	}
	return jackpotScore, walk
}
