package certify

import (
	"fmt"
	"sort"

	"recycle/internal/failure"
	"recycle/internal/graph"
	"recycle/internal/par"
	"recycle/internal/telemetry"
)

// GenusUnknown marks a certificate whose scheme has no embedding (the
// reconvergence baseline) — the genus column is then omitted.
const GenusUnknown = -1

// Pair is one ordered (src, dst) flow under certification.
type Pair struct {
	Src, Dst graph.NodeID
}

// Config parameterises a certification search.
type Config struct {
	// K is the maximum number of simultaneous element failures (default 2).
	K int
	// Mode selects the element universe (default LinkFailures).
	Mode failure.ElementMode
	// Pairs restricts the sweep to specific flows; nil certifies every
	// ordered pair.
	Pairs []Pair
	// Seed drives the annealing search (default 1). Exhaustive sweeps and
	// the guided DFS are deterministic regardless.
	Seed int64
	// Workers bounds the par fan-out across destinations (0 = automatic,
	// 1 = sequential).
	Workers int
	// Label names the topology in the certificate.
	Label string
	// Genus is the embedding genus to stamp into the certificate (certify
	// does not compute embeddings); GenusUnknown omits it. The §5
	// guarantee is conditioned on genus 0, so a certificate on a higher
	// genus measures an embedder, not the paper's claim.
	Genus int
	// Metrics optionally receives the search-progress counters
	// (certify.* names); nil records nothing.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives the search's span tree: a root
	// "certify.exhaustive" or "certify.guided" span with per-worker
	// sweep/DFS children and, for the guided strategy, per-restart
	// annealing chains. TraceParent parents the root (0 makes it a root).
	Tracer      *telemetry.Tracer
	TraceParent telemetry.SpanID
	// Restarts is the annealing restart count per attacked pair (default
	// 2); Iters the iteration budget per restart (default 400).
	Restarts int
	Iters    int
	// AnnealPairs bounds how many pairs the annealing stage attacks
	// (default 8, the highest-cost pairs first). The DFS stage covers
	// every pair regardless; annealing is the stochastic cross-check and
	// the only strategy that scales past DFS's branching at large k.
	AnnealPairs int
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Restarts == 0 {
		c.Restarts = 2
	}
	if c.Iters == 0 {
		c.Iters = 400
	}
	if c.AnnealPairs == 0 {
		c.AnnealPairs = 8
	}
	return c
}

// SearchStats counts the work a search did — the telemetry of the hunt.
type SearchStats struct {
	// Sets is the number of distinct failure sets examined.
	Sets uint64
	// Walks is the number of walks executed.
	Walks uint64
	// PrunedUnaffected counts (set, pair) combinations skipped because
	// the pair's failure-free walk consults no failed element (it walks
	// identically and delivers — the locality property).
	PrunedUnaffected uint64
	// PrunedDominated counts combinations skipped because the set
	// contains an already-found violating subset for the pair (it cannot
	// be minimal).
	PrunedDominated uint64
	// Excused counts undelivered walks excused by disconnection.
	Excused uint64
	// ViolationsFound counts violations recorded before minimisation and
	// dedup.
	ViolationsFound uint64
	// DFSStates / AnnealMoves / AnnealAccepts instrument the guided
	// strategies.
	DFSStates     uint64
	AnnealMoves   uint64
	AnnealAccepts uint64
}

func (s *SearchStats) merge(o SearchStats) {
	s.Sets += o.Sets
	s.Walks += o.Walks
	s.PrunedUnaffected += o.PrunedUnaffected
	s.PrunedDominated += o.PrunedDominated
	s.Excused += o.Excused
	s.ViolationsFound += o.ViolationsFound
	s.DFSStates += o.DFSStates
	s.AnnealMoves += o.AnnealMoves
	s.AnnealAccepts += o.AnnealAccepts
}

// Metric names of the search-progress counters.
const (
	MetricSets             = "certify.sets"
	MetricWalks            = "certify.walks"
	MetricPrunedUnaffected = "certify.pruned_unaffected"
	MetricPrunedDominated  = "certify.pruned_dominated"
	MetricExcused          = "certify.excused"
	MetricViolations       = "certify.violations"
	MetricDFSStates        = "certify.dfs_states"
	MetricAnnealMoves      = "certify.anneal_moves"
	MetricAnnealAccepts    = "certify.anneal_accepts"
)

// publish records the final stats into a registry (nil-tolerant).
func (s SearchStats) publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter(MetricSets).Add(s.Sets)
	reg.Counter(MetricWalks).Add(s.Walks)
	reg.Counter(MetricPrunedUnaffected).Add(s.PrunedUnaffected)
	reg.Counter(MetricPrunedDominated).Add(s.PrunedDominated)
	reg.Counter(MetricExcused).Add(s.Excused)
	reg.Counter(MetricViolations).Add(s.ViolationsFound)
	reg.Counter(MetricDFSStates).Add(s.DFSStates)
	reg.Counter(MetricAnnealMoves).Add(s.AnnealMoves)
	reg.Counter(MetricAnnealAccepts).Add(s.AnnealAccepts)
}

// pairsByDst groups the configured pairs by destination: dsts lists the
// destinations in ascending order, srcs[i] the sources toward dsts[i].
func pairsByDst(g *graph.Graph, pairs []Pair) (dsts []graph.NodeID, srcs [][]graph.NodeID) {
	byDst := make(map[graph.NodeID][]graph.NodeID)
	if len(pairs) == 0 {
		for d := 0; d < g.NumNodes(); d++ {
			for s := 0; s < g.NumNodes(); s++ {
				if s != d {
					byDst[graph.NodeID(d)] = append(byDst[graph.NodeID(d)], graph.NodeID(s))
				}
			}
		}
	} else {
		for _, p := range pairs {
			if p.Src != p.Dst {
				byDst[p.Dst] = append(byDst[p.Dst], p.Src)
			}
		}
	}
	for d := range byDst {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	srcs = make([][]graph.NodeID, len(dsts))
	for i, d := range dsts {
		ss := byDst[d]
		sort.Slice(ss, func(a, b int) bool { return ss[a] < ss[b] })
		srcs[i] = ss
	}
	return dsts, srcs
}

// found is the per-pair record of minimal violating sets discovered so
// far, used for domination pruning during a sweep.
type found struct {
	sets [][]int
}

// dominated reports whether idx contains any recorded set.
func (f *found) dominated(idx []int) bool {
	for _, s := range f.sets {
		if containsAll(idx, s) {
			return true
		}
	}
	return false
}

// add records a new set, dropping any recorded superset of it.
func (f *found) add(idx []int) {
	kept := f.sets[:0]
	for _, s := range f.sets {
		if !containsAll(s, idx) {
			kept = append(kept, s)
		}
	}
	f.sets = append(kept, append([]int(nil), idx...))
}

// containsAll reports whether sorted set a contains every member of
// sorted set b.
func containsAll(a, b []int) bool {
	i := 0
	for _, want := range b {
		for i < len(a) && a[i] < want {
			i++
		}
		if i >= len(a) || a[i] != want {
			return false
		}
		i++
	}
	return true
}

// Exhaustive enumerates every failure set of 1..K elements against every
// configured pair and returns the complete certificate: CERTIFIED when no
// violation exists, otherwise every subset-minimal counterexample with
// its refereed violating walk. Sizes sweep in ascending order, so a
// recorded counterexample's proper subsets have all been proven
// violation-free — minimality is a consequence of the sweep, and is
// re-verified per emitted set anyway (Minimise).
//
// Pruning never loses a violation:
//   - unaffected pairs (failure-free walk consults no failed element)
//     walk identically under the set and deliver;
//   - sets containing an already-found violating subset for the pair
//     cannot be subset-minimal for it;
//   - sets disconnecting the pair are excused by the Oracle's own rule.
func Exhaustive(g *graph.Graph, w Walker, cfg Config) (*Certificate, error) {
	cfg = cfg.withDefaults()
	sp := newSpace(g, cfg.Mode)
	dsts, srcs := pairsByDst(g, cfg.Pairs)

	root := cfg.Tracer.Start("certify.exhaustive", cfg.TraceParent)
	root.SetAttr(telemetry.AttrNodes, int64(g.NumNodes()))
	root.SetAttr(telemetry.AttrCount, int64(len(dsts)))
	defer root.End()

	stats := make([]SearchStats, len(dsts))
	viols := make([][]Violation, len(dsts))
	obs := cfg.Tracer.RangeObserver("certify.sweep.worker", root.ID())
	par.ForObserved(len(dsts), cfg.Workers, obs, func(_, lo, hi int) {
		for di := lo; di < hi; di++ {
			viols[di] = sweepDst(g, w, sp, cfg, dsts[di], srcs[di], &stats[di])
		}
	})

	var total SearchStats
	for i := range stats {
		total.merge(stats[i])
	}
	var all []Violation
	for _, vs := range viols {
		all = append(all, vs...)
	}
	return buildCertificate(g, w, sp, cfg, "exhaustive", true, all, total)
}

// sweepDst runs the exhaustive enumeration for one destination: sizes
// ascending, sets in lexicographic order, sources ascending — fully
// deterministic, so the par fan-out is bit-identical to sequential.
func sweepDst(g *graph.Graph, w Walker, sp *space, cfg Config, dst graph.NodeID, sources []graph.NodeID, st *SearchStats) []Violation {
	// Failure-free walks per source: the consulted footprint is the
	// affectedness test — if no failed element is consulted, the walk
	// under the set is the same walk.
	baseConsulted := make(map[graph.NodeID][]int, len(sources))
	for _, src := range sources {
		base := w.Walk(src, dst, nil, false)
		st.Walks++
		if base.Delivered {
			baseConsulted[src] = sp.consulted(base.Decided)
		}
		// A scheme failing with zero failures is broken in a way this
		// sweep does not certify; leave the pair out (nothing to attack).
	}

	minimal := make(map[graph.NodeID]*found, len(sources))
	for _, src := range sources {
		minimal[src] = &found{}
	}

	var out []Violation
	inSet := make([]bool, sp.size())
	for size := 1; size <= cfg.K; size++ {
		failure.Subsets(sp.size(), size, func(idx []int) bool {
			st.Sets++
			for _, i := range idx {
				inSet[i] = true
			}
			var fs *graph.FailureSet // built lazily: most pairs prune
			var reach []bool
			for _, src := range sources {
				cons, ok := baseConsulted[src]
				if !ok {
					continue
				}
				if !touches(cons, inSet) {
					st.PrunedUnaffected++
					continue
				}
				if minimal[src].dominated(idx) {
					st.PrunedDominated++
					continue
				}
				if fs == nil {
					fs = sp.fsOf(idx)
				}
				walk := w.Walk(src, dst, fs, false)
				st.Walks++
				if walk.Delivered {
					continue
				}
				if reach == nil {
					reach = graph.ReachableUnder(g, dst, fs)
				}
				if !reach[src] {
					st.Excused++
					continue
				}
				st.ViolationsFound++
				minimal[src].add(idx)
				out = append(out, newViolation(sp, src, dst, idx, w))
			}
			for _, i := range idx {
				inSet[i] = false
			}
			return true
		})
	}
	return out
}

// touches reports whether any consulted index is in the current set.
func touches(consulted []int, inSet []bool) bool {
	for _, i := range consulted {
		if inSet[i] {
			return true
		}
	}
	return false
}

// newViolation re-walks the pair with a transcript and packages the
// violation record.
func newViolation(sp *space, src, dst graph.NodeID, idx []int, w Walker) Violation {
	elems := sp.elemsOf(idx)
	fs := sp.fsOf(idx)
	walk := w.Walk(src, dst, fs, true)
	return Violation{
		Src:      src,
		Dst:      dst,
		Elements: elems,
		Links:    fs,
		Walk:     walk,
		indices:  append([]int(nil), idx...),
	}
}

// Certify picks the strategy by universe size: the exhaustive sweep when
// the number of ≤K-subsets is within budget, the guided search beyond it.
func Certify(g *graph.Graph, w Walker, cfg Config) (*Certificate, error) {
	cfg = cfg.withDefaults()
	sp := newSpace(g, cfg.Mode)
	var sets int64
	for k := 1; k <= cfg.K; k++ {
		sets += failure.CountSubsets(sp.size(), k)
		if sets > exhaustiveBudget {
			return Guided(g, w, cfg)
		}
	}
	return Exhaustive(g, w, cfg)
}

// exhaustiveBudget is the set-count ceiling beyond which Certify switches
// to the guided search (~the k=2 sweep of a few-hundred-link graph).
const exhaustiveBudget = 200_000

// violationLess orders violations for deterministic output: smallest set
// first, then source, destination and set contents.
func violationLess(a, b Violation) bool {
	if len(a.indices) != len(b.indices) {
		return len(a.indices) < len(b.indices)
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	for i := range a.indices {
		if a.indices[i] != b.indices[i] {
			return a.indices[i] < b.indices[i]
		}
	}
	return false
}

// dedupViolations sorts and removes duplicate (pair, set) records and
// drops non-minimal sets dominated by another record of the same pair.
func dedupViolations(in []Violation) []Violation {
	sort.Slice(in, func(i, j int) bool { return violationLess(in[i], in[j]) })
	seen := make(map[string]bool, len(in))
	perPair := make(map[Pair]*found)
	var out []Violation
	for _, v := range in {
		key := fmt.Sprintf("%d>%d:%s", v.Src, v.Dst, setKey(v.indices))
		if seen[key] {
			continue
		}
		seen[key] = true
		p := Pair{Src: v.Src, Dst: v.Dst}
		f := perPair[p]
		if f == nil {
			f = &found{}
			perPair[p] = f
		}
		// Sorted by ascending size, so subsets precede supersets.
		if f.dominated(v.indices) {
			continue
		}
		f.add(v.indices)
		out = append(out, v)
	}
	return out
}
