package certify

import (
	"reflect"
	"strings"
	"testing"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/failure"
	"recycle/internal/graph"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// mustTopo resolves a topology spec or fails the test.
func mustTopo(t *testing.T, name string) topo.Topology {
	t.Helper()
	tp, err := topo.ByName(name)
	if err != nil {
		t.Fatalf("topo %q: %v", name, err)
	}
	return tp
}

// prWalker compiles a FIB for the topology (Auto embedding, hop-count
// discriminators — the harness defaults) and wraps it for certification.
func prWalker(t *testing.T, tp topo.Topology, v core.Variant) *PRWalker {
	t.Helper()
	g := tp.Graph
	sys := tp.Embedding
	if sys == nil {
		var err error
		sys, err = (embedding.Auto{Seed: 1}).Embed(g)
		if err != nil {
			t.Fatalf("embedding %s: %v", tp.Name, err)
		}
	}
	p, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: v})
	if err != nil {
		t.Fatal(err)
	}
	fib, err := dataplane.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return NewPRWalker(fib)
}

func keysOf(cert *Certificate) map[string]bool {
	out := make(map[string]bool, len(cert.Counterexamples))
	for _, v := range cert.Counterexamples {
		out[v.Key()] = true
	}
	return out
}

func TestPRWalkerMatchesProtocolWalk(t *testing.T) {
	// The certification walker must agree with the interpreted protocol
	// on delivery for every pair under assorted failure sets — it walks
	// the compiled FIB, which is differentially pinned to core elsewhere,
	// so this is a wiring check of the walker loop itself.
	tp := mustTopo(t, "rand:10@4")
	g := tp.Graph
	sys, err := (embedding.Auto{Seed: 1}).Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	fib, err := dataplane.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	w := NewPRWalker(fib)
	sets := []*graph.FailureSet{
		nil,
		graph.NewFailureSet(0),
		graph.NewFailureSet(1, 5),
		graph.NewFailureSet(2, 3, 7),
	}
	for _, fs := range sets {
		for src := 0; src < g.NumNodes(); src++ {
			for dst := 0; dst < g.NumNodes(); dst++ {
				if src == dst {
					continue
				}
				s, d := graph.NodeID(src), graph.NodeID(dst)
				got := w.Walk(s, d, fs, true)
				want := p.Walk(s, d, fs)
				if got.Delivered != want.Delivered() {
					t.Fatalf("walker disagrees with protocol: %d→%d under %v: walker=%v core=%v",
						src, dst, fs, got.Verdict, want.Outcome)
				}
				if got.Delivered && len(got.Hops) != len(want.Steps) {
					t.Fatalf("transcript length mismatch %d→%d: %d hops vs %d steps",
						src, dst, len(got.Hops), len(want.Steps))
				}
			}
		}
	}
}

func TestExhaustiveCertifiesPR(t *testing.T) {
	tp := mustTopo(t, "ring:12")
	cert, err := Exhaustive(tp.Graph, prWalker(t, tp, core.Full), Config{K: 2, Label: tp.Name, Genus: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Certified || !cert.Complete || cert.Method != "exhaustive" {
		t.Fatalf("expected exhaustive certification, got %+v", cert.Headline())
	}
	if want := int64(12 + 66); cert.DistinctSets != want {
		t.Fatalf("DistinctSets = %d, want %d", cert.DistinctSets, want)
	}
	if !strings.Contains(cert.Headline(), "certificate: CERTIFIED k=2") {
		t.Fatalf("headline missing the CI gate string: %q", cert.Headline())
	}
	var sb strings.Builder
	if err := cert.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "zero violations") {
		t.Fatalf("report missing verdict text:\n%s", sb.String())
	}
}

func TestExhaustiveReconvCounterexample(t *testing.T) {
	tp := mustTopo(t, "ring:12")
	w := NewReconvWalker(tp.Graph)
	cert, err := Exhaustive(tp.Graph, w, Config{K: 2, Label: tp.Name, Genus: GenusUnknown})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Certified || len(cert.Counterexamples) == 0 {
		t.Fatal("the stale-table baseline must fail certification on a ring")
	}
	v := cert.Counterexamples[0]
	if len(v.Elements) != 1 {
		t.Fatalf("smallest reconvergence counterexample should be one link, got %s", v.SetString())
	}
	if !v.Refereed {
		t.Fatal("counterexample not refereed by the oracle")
	}
	if v.Walk.Delivered || len(v.Walk.Hops) == 0 {
		t.Fatalf("counterexample must carry an undelivered transcript, got %+v", v.Walk)
	}
	fl := v.Flight()
	if fl.Delivered() || !strings.Contains(fl.Explain(), "verdict:") {
		t.Fatalf("flight transcript malformed:\n%s", fl.Explain())
	}
	if !strings.Contains(cert.Headline(), "certificate: COUNTEREXAMPLE k=2") {
		t.Fatalf("headline: %q", cert.Headline())
	}
	var sb strings.Builder
	if err := cert.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "violating walk") {
		t.Fatalf("report missing the violating walk:\n%s", sb.String())
	}
}

// TestCounterexampleMinimality brute-forces the certificate's minimality
// claim: every proper subset of an emitted set must be violation-free
// (delivered, or excused by disconnection) for the counterexample's pair.
func TestCounterexampleMinimality(t *testing.T) {
	cases := []struct {
		topo string
		mk   func(tp topo.Topology) Walker
	}{
		{"rand:10@5", func(tp topo.Topology) Walker { return NewReconvWalker(tp.Graph) }},
		{"rand:10@5", func(tp topo.Topology) Walker { return prWalker(t, tp, core.Basic) }},
		{"grid:3x4", func(tp topo.Topology) Walker { return prWalker(t, tp, core.Basic) }},
	}
	for _, tc := range cases {
		tp := mustTopo(t, tc.topo)
		w := tc.mk(tp)
		cert, err := Exhaustive(tp.Graph, w, Config{K: 3, Label: tp.Name})
		if err != nil {
			t.Fatal(err)
		}
		if len(cert.Counterexamples) == 0 {
			t.Fatalf("%s/%s: expected counterexamples", tc.topo, w.Name())
		}
		for _, v := range cert.Counterexamples {
			n := len(v.Elements)
			for size := 1; size < n; size++ {
				failure.Subsets(n, size, func(pick []int) bool {
					sub := make([]failure.Element, len(pick))
					for i, j := range pick {
						sub[i] = v.Elements[j]
					}
					fs := failure.FailureSetOf(tp.Graph, sub)
					walk := w.Walk(v.Src, v.Dst, fs, false)
					if !walk.Delivered && graph.ReachableUnder(tp.Graph, v.Dst, fs)[v.Src] {
						t.Errorf("%s/%s: %s is not minimal: proper subset %v also violates",
							tc.topo, w.Name(), v.Key(), sub)
						return false
					}
					return true
				})
			}
		}
	}
}

// TestSearchDeterminism re-runs both strategies under a fixed seed and
// demands bit-identical certificates — the property that makes a
// certificate a reproducible artefact rather than a lucky draw.
func TestSearchDeterminism(t *testing.T) {
	tp := mustTopo(t, "rand:12@9")
	w := prWalker(t, tp, core.Basic)
	run := func(strategy func(*graph.Graph, Walker, Config) (*Certificate, error), workers int) *Certificate {
		cert, err := strategy(tp.Graph, w, Config{K: 3, Seed: 11, Label: tp.Name, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return cert
	}
	for _, strategy := range []func(*graph.Graph, Walker, Config) (*Certificate, error){Exhaustive, Guided} {
		a, b := run(strategy, 0), run(strategy, 1)
		if a.Headline() != b.Headline() {
			t.Fatalf("non-deterministic headline:\n%s\n%s", a.Headline(), b.Headline())
		}
		if !reflect.DeepEqual(keysOf(a), keysOf(b)) {
			t.Fatal("non-deterministic counterexample sets")
		}
		if !reflect.DeepEqual(a.Stats, b.Stats) {
			t.Fatalf("non-deterministic search stats:\n%+v\n%+v", a.Stats, b.Stats)
		}
	}
}

// TestCertifyAutoStrategy checks the size-based dispatch: small
// universes sweep exhaustively, large ones fall back to guided.
func TestCertifyAutoStrategy(t *testing.T) {
	small := mustTopo(t, "ring:8")
	cert, err := Certify(small.Graph, NewReconvWalker(small.Graph), Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Method != "exhaustive" {
		t.Fatalf("small universe should sweep exhaustively, got %s", cert.Method)
	}
	big := mustTopo(t, "grid:10x40")
	cert, err = Certify(big.Graph, NewReconvWalker(big.Graph), Config{
		K:     3,
		Pairs: []Pair{{Src: 0, Dst: graph.NodeID(big.Graph.NumNodes() - 1)}},
		Iters: 50, Restarts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Method != "guided" {
		t.Fatalf("large universe should use the guided search, got %s", cert.Method)
	}
	if len(cert.Counterexamples) == 0 {
		t.Fatal("stale-table baseline must fail even under guided search")
	}
}

// TestNodeFailureUniverse exercises the node-element mode: failing an
// articulation-adjacent node excuses pairs behind it, and PR still
// certifies on the ring where any single node failure leaves every
// other pair connected.
func TestNodeFailureUniverse(t *testing.T) {
	tp := mustTopo(t, "ring:10")
	cert, err := Exhaustive(tp.Graph, prWalker(t, tp, core.Full), Config{K: 1, Mode: failure.NodeFailures, Label: tp.Name, Genus: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Certified {
		t.Fatalf("PR must certify single node failures on a ring: %s", cert.Headline())
	}
	if cert.UniverseSize != 10 {
		t.Fatalf("universe = %d, want 10 nodes", cert.UniverseSize)
	}
	// The stale-table baseline loses packets routed through a dead node.
	bad, err := Exhaustive(tp.Graph, NewReconvWalker(tp.Graph), Config{K: 1, Mode: failure.NodeFailures, Label: tp.Name, Genus: GenusUnknown})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Certified {
		t.Fatal("reconvergence must not certify node failures on a ring")
	}
	for _, v := range bad.Counterexamples {
		if !v.Elements[0].IsNode() {
			t.Fatalf("node-mode counterexample names a link: %s", v.Key())
		}
	}
}

// TestPinScenarios round-trips a counterexample through the failure
// machinery: the pinned scenario must reproduce exactly the violating
// link set at t=0 and referee as connected for the pair.
func TestPinScenarios(t *testing.T) {
	tp := mustTopo(t, "ring:8")
	cert, err := Exhaustive(tp.Graph, NewReconvWalker(tp.Graph), Config{K: 1, Label: tp.Name})
	if err != nil {
		t.Fatal(err)
	}
	pins := cert.PinScenarios()
	if len(pins) != len(cert.Counterexamples) {
		t.Fatalf("pins = %d, counterexamples = %d", len(pins), len(cert.Counterexamples))
	}
	for i, sc := range pins {
		o, err := failure.NewOracle(tp.Graph, sc)
		if err != nil {
			t.Fatal(err)
		}
		v := cert.Counterexamples[i]
		if !o.ConnectedAt(v.Src, v.Dst, 0) {
			t.Fatalf("pin %d: oracle rules pair disconnected", i)
		}
		got := o.FailuresAt(0)
		if got.String() != v.Links.String() {
			t.Fatalf("pin %d: scenario failures %s != violation links %s", i, got, v.Links)
		}
	}
}
