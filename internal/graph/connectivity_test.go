package graph

import (
	"testing"
	"testing/quick"
)

func TestBridgesLine(t *testing.T) {
	// a-b-c line: both links are bridges.
	g := New(3, 2)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	mustLink(t, g, a, b, 1)
	mustLink(t, g, b, c, 1)
	g.Freeze()
	br := Bridges(g)
	if len(br) != 2 {
		t.Fatalf("bridges = %v; want 2", br)
	}
}

func TestBridgesRingHasNone(t *testing.T) {
	if br := Bridges(Ring(7)); len(br) != 0 {
		t.Fatalf("ring bridges = %v; want none", br)
	}
}

func TestBridgesBarbell(t *testing.T) {
	// Two triangles joined by a single link: exactly that link is a bridge.
	g := New(6, 7)
	for i := 0; i < 6; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	mustLink(t, g, 0, 1, 1)
	mustLink(t, g, 1, 2, 1)
	mustLink(t, g, 0, 2, 1)
	bridge := mustLink(t, g, 2, 3, 1)
	mustLink(t, g, 3, 4, 1)
	mustLink(t, g, 4, 5, 1)
	mustLink(t, g, 3, 5, 1)
	g.Freeze()
	br := Bridges(g)
	if len(br) != 1 || br[0] != bridge {
		t.Fatalf("bridges = %v; want [%d]", br, bridge)
	}
}

func TestBridgesParallelLinksNeverBridge(t *testing.T) {
	// a=b double link then b-c single: only b-c is a bridge.
	g := New(3, 3)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	mustLink(t, g, a, b, 1)
	mustLink(t, g, a, b, 1)
	bc := mustLink(t, g, b, c, 1)
	g.Freeze()
	br := Bridges(g)
	if len(br) != 1 || br[0] != bc {
		t.Fatalf("bridges = %v; want [%d]", br, bc)
	}
}

// TestBridgesMatchBruteForce removes each link in turn and compares
// connectivity against the Tarjan answer on seeded random graphs.
func TestBridgesMatchBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g := RandomTwoConnected(10, 13, seed)
		tarjan := make(map[LinkID]bool)
		for _, b := range Bridges(g) {
			tarjan[b] = true
		}
		for _, l := range g.Links() {
			brute := !ConnectedUnder(g, NewFailureSet(l.ID))
			if brute != tarjan[l.ID] {
				t.Fatalf("seed %d link %d: brute-force bridge=%v, tarjan=%v", seed, l.ID, brute, tarjan[l.ID])
			}
		}
	}
}

func TestTwoEdgeConnected(t *testing.T) {
	if !TwoEdgeConnected(Ring(5)) {
		t.Fatal("ring should be 2-edge-connected")
	}
	line := New(2, 1)
	a := line.AddNode("a")
	b := line.AddNode("b")
	mustLink(t, line, a, b, 1)
	line.Freeze()
	if TwoEdgeConnected(line) {
		t.Fatal("single link is not 2-edge-connected")
	}
	if TwoEdgeConnected(New(0, 0).Freeze()) {
		t.Fatal("empty graph is not 2-edge-connected")
	}
}

func TestArticulationPoints(t *testing.T) {
	// Bowtie: two triangles sharing node 2 — node 2 is the cut vertex.
	g := New(5, 6)
	for i := 0; i < 5; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	mustLink(t, g, 0, 1, 1)
	mustLink(t, g, 1, 2, 1)
	mustLink(t, g, 0, 2, 1)
	mustLink(t, g, 2, 3, 1)
	mustLink(t, g, 3, 4, 1)
	mustLink(t, g, 2, 4, 1)
	g.Freeze()
	cuts := ArticulationPoints(g)
	if len(cuts) != 1 || cuts[0] != 2 {
		t.Fatalf("articulation points = %v; want [2]", cuts)
	}
	if BiConnected(g) {
		t.Fatal("bowtie is not biconnected")
	}
	if !BiConnected(Ring(4)) {
		t.Fatal("ring should be biconnected")
	}
}

func TestArticulationPointsLine(t *testing.T) {
	g := New(3, 2)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	mustLink(t, g, a, b, 1)
	mustLink(t, g, b, c, 1)
	g.Freeze()
	cuts := ArticulationPoints(g)
	if len(cuts) != 1 || cuts[0] != b {
		t.Fatalf("articulation points of line = %v; want [b]", cuts)
	}
}

// TestArticulationPointsMatchBruteForce compares against node-removal
// connectivity checks on random graphs.
func TestArticulationPointsMatchBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := RandomTwoConnected(9, 11, seed)
		fast := make(map[NodeID]bool)
		for _, c := range ArticulationPoints(g) {
			fast[c] = true
		}
		for v := 0; v < g.NumNodes(); v++ {
			brute := removingDisconnects(g, NodeID(v))
			if brute != fast[NodeID(v)] {
				t.Fatalf("seed %d node %d: brute=%v tarjan=%v", seed, v, brute, fast[NodeID(v)])
			}
		}
	}
}

// removingDisconnects reports whether deleting v splits the remaining nodes.
func removingDisconnects(g *Graph, v NodeID) bool {
	n := g.NumNodes()
	if n <= 2 {
		return false
	}
	visited := make([]bool, n)
	visited[v] = true // pretend removed
	start := NodeID(-1)
	for i := 0; i < n; i++ {
		if NodeID(i) != v {
			start = NodeID(i)
			break
		}
	}
	stack := []NodeID{start}
	visited[start] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.Neighbors(u) {
			if nb.Node == v || visited[nb.Node] {
				continue
			}
			visited[nb.Node] = true
			count++
			stack = append(stack, nb.Node)
		}
	}
	return count != n-1
}

func TestComponents(t *testing.T) {
	g := New(5, 2)
	for i := 0; i < 5; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	mustLink(t, g, 0, 1, 1)
	mustLink(t, g, 2, 3, 1)
	g.Freeze()
	comps := Components(g)
	if len(comps) != 3 {
		t.Fatalf("components = %v; want 3", comps)
	}
	if len(comps[0]) != 2 || comps[0][0] != 0 {
		t.Fatalf("first component = %v; want [0 1]", comps[0])
	}
	if len(comps[2]) != 1 || comps[2][0] != 4 {
		t.Fatalf("third component = %v; want [4]", comps[2])
	}
}

func TestConnectedUnder(t *testing.T) {
	g := Ring(4)
	if !ConnectedUnder(g, NewFailureSet(0)) {
		t.Fatal("ring minus one link should stay connected")
	}
	if ConnectedUnder(g, NewFailureSet(0, 2)) {
		t.Fatal("ring minus two opposite links should disconnect")
	}
	if !ConnectedUnder(New(0, 0).Freeze(), nil) {
		t.Fatal("empty graph is trivially connected")
	}
}

func TestReachableUnder(t *testing.T) {
	g := Ring(4)
	r := ReachableUnder(g, 0, NewFailureSet(0, 2))
	// Failing 0-1 and 2-3 splits into {0,3} and {1,2}.
	if !r[0] || !r[3] || r[1] || r[2] {
		t.Fatalf("reachable = %v; want {0,3}", r)
	}
}

// Property: for random 2-connected generators, the result really is
// 2-edge-connected and connected.
func TestRandomTwoConnectedProperty(t *testing.T) {
	check := func(seed int64) bool {
		n := 5 + int(seed%10+10)%10
		g := RandomTwoConnected(n, n+n/2, seed)
		return Connected(g) && TwoEdgeConnected(g) && g.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
