package graph

import (
	"container/heap"
	"math"
)

// Infinity is the distance reported for unreachable nodes.
var Infinity = math.Inf(1)

// SPTree is a shortest-path tree rooted at a destination node. Because links
// are undirected, the tree simultaneously answers "how does every node reach
// Dest" — which is the orientation routing tables need (paper §4.1 builds the
// shortest path tree *to* each destination).
//
// Ties between equal-cost paths are broken deterministically: prefer the
// next hop with the smaller NodeID, then the smaller LinkID. The paper
// assumes a single next hop per destination; deterministic tie-breaking makes
// every experiment reproducible.
type SPTree struct {
	Dest NodeID
	// Dist[n] is the weight-sum from n to Dest along the tree (Infinity if
	// unreachable).
	Dist []float64
	// Hops[n] is the hop count from n to Dest along the tree (-1 if
	// unreachable). This is the paper's default distance discriminator.
	Hops []int
	// NextLink[n] is the first link on n's path to Dest (NoLink at Dest or
	// when unreachable).
	NextLink []LinkID
	// NextNode[n] is the node after n on the path to Dest (NoNode at Dest or
	// when unreachable).
	NextNode []NodeID
}

type dijkstraItem struct {
	node NodeID
	dist float64
	idx  int
}

type dijkstraHeap []*dijkstraItem

func (h dijkstraHeap) Len() int { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}
func (h dijkstraHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *dijkstraHeap) Push(x any) {
	it := x.(*dijkstraItem)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *dijkstraHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// ShortestPathTree runs Dijkstra's algorithm from dest over the links that
// are up under failures (nil means no failures) and returns the tree oriented
// toward dest.
func ShortestPathTree(g *Graph, dest NodeID, failures *FailureSet) *SPTree {
	n := g.NumNodes()
	t := &SPTree{
		Dest:     dest,
		Dist:     make([]float64, n),
		Hops:     make([]int, n),
		NextLink: make([]LinkID, n),
		NextNode: make([]NodeID, n),
	}
	for i := 0; i < n; i++ {
		t.Dist[i] = Infinity
		t.Hops[i] = -1
		t.NextLink[i] = NoLink
		t.NextNode[i] = NoNode
	}
	if n == 0 {
		return t
	}

	items := make([]*dijkstraItem, n)
	h := make(dijkstraHeap, 0, n)
	t.Dist[dest] = 0
	t.Hops[dest] = 0
	items[dest] = &dijkstraItem{node: dest, dist: 0}
	heap.Push(&h, items[dest])

	for h.Len() > 0 {
		it := heap.Pop(&h).(*dijkstraItem)
		u := it.node
		items[u] = nil
		du := t.Dist[u]
		for _, nb := range g.Neighbors(u) {
			if failures.Down(nb.Link) {
				continue
			}
			v := nb.Node
			cand := du + g.Weight(nb.Link)
			switch {
			case cand < t.Dist[v]:
				// strictly better
			case cand == t.Dist[v] && betterTie(t, v, u, nb.Link):
				// equal cost, deterministically preferred parent
			default:
				continue
			}
			t.Dist[v] = cand
			t.Hops[v] = t.Hops[u] + 1
			t.NextNode[v] = u
			t.NextLink[v] = nb.Link
			if items[v] == nil {
				items[v] = &dijkstraItem{node: v, dist: cand}
				heap.Push(&h, items[v])
			} else {
				items[v].dist = cand
				heap.Fix(&h, items[v].idx)
			}
		}
	}
	return t
}

// betterTie reports whether (parent, link) is preferred over v's current
// equal-cost assignment: smaller next-hop node wins, then smaller link ID.
func betterTie(t *SPTree, v, parent NodeID, link LinkID) bool {
	cur := t.NextNode[v]
	if cur == NoNode {
		return true
	}
	if parent != cur {
		return parent < cur
	}
	return link < t.NextLink[v]
}

// Reachable reports whether n can reach the tree's destination.
func (t *SPTree) Reachable(n NodeID) bool { return !math.IsInf(t.Dist[n], 1) }

// Path returns the node sequence from src to the tree's destination
// (inclusive of both), or nil if unreachable.
func (t *SPTree) Path(src NodeID) []NodeID {
	if !t.Reachable(src) {
		return nil
	}
	path := []NodeID{src}
	for n := src; n != t.Dest; {
		n = t.NextNode[n]
		path = append(path, n)
	}
	return path
}

// PathLinks returns the link sequence from src to the destination, or nil if
// unreachable (empty if src == Dest).
func (t *SPTree) PathLinks(src NodeID) []LinkID {
	if !t.Reachable(src) {
		return nil
	}
	var links []LinkID
	for n := src; n != t.Dest; n = t.NextNode[n] {
		links = append(links, t.NextLink[n])
	}
	return links
}

// UsesLink reports whether src's path to the destination traverses link id.
// Used to select the source-destination pairs affected by a failure scenario.
func (t *SPTree) UsesLink(src NodeID, id LinkID) bool {
	if !t.Reachable(src) {
		return false
	}
	for n := src; n != t.Dest; n = t.NextNode[n] {
		if t.NextLink[n] == id {
			return true
		}
	}
	return false
}

// AllPairs computes the shortest-path distance matrix with Floyd–Warshall.
// It exists primarily as an independent cross-check of Dijkstra in tests and
// to compute graph diameters for DD-bit sizing.
func AllPairs(g *Graph, failures *FailureSet) [][]float64 {
	n := g.NumNodes()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = Infinity
			}
		}
	}
	for _, l := range g.Links() {
		if failures.Down(l.ID) {
			continue
		}
		if l.Weight < d[l.A][l.B] {
			d[l.A][l.B] = l.Weight
			d[l.B][l.A] = l.Weight
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if cand := dik + d[k][j]; cand < d[i][j] {
					d[i][j] = cand
				}
			}
		}
	}
	return d
}

// HopDiameter returns the maximum finite hop distance between any node pair
// (ignoring weights). The paper sizes the DD field as ⌈log2 d⌉ bits with d
// the network diameter, so this uses hop counts. Returns 0 for graphs with
// fewer than two nodes and -1 if the graph is disconnected.
func HopDiameter(g *Graph) int {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	diam := 0
	for s := 0; s < n; s++ {
		dist := bfsHops(g, NodeID(s), nil)
		for v := 0; v < n; v++ {
			if dist[v] < 0 {
				return -1
			}
			if dist[v] > diam {
				diam = dist[v]
			}
		}
	}
	return diam
}

// bfsHops returns hop distances from src under failures; -1 means
// unreachable.
func bfsHops(g *Graph, src NodeID, failures *FailureSet) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(u) {
			if failures.Down(nb.Link) || dist[nb.Node] >= 0 {
				continue
			}
			dist[nb.Node] = dist[u] + 1
			queue = append(queue, nb.Node)
		}
	}
	return dist
}

// HopDistances returns hop distances from src under failures (-1 if
// unreachable). Exposed for baselines and tests.
func HopDistances(g *Graph, src NodeID, failures *FailureSet) []int {
	return bfsHops(g, src, failures)
}
