package graph

// Bridges returns the bridge links of g: links whose removal disconnects the
// component containing them. A graph with no bridges and minimum degree ≥ 1
// is 2-edge-connected, the precondition for the paper's single-failure
// guarantee (§4.2: "full failure recovery from any single link failure in
// 2-connected networks").
//
// The implementation is the classic Tarjan low-link DFS, iterative to stay
// safe on deep topologies, and multigraph-aware: parallel links between the
// same pair are never bridges.
func Bridges(g *Graph) []LinkID {
	n := g.NumNodes()
	disc := make([]int, n) // discovery time, 0 = unvisited
	low := make([]int, n)  // lowest discovery time reachable
	var bridges []LinkID
	timer := 1

	type frame struct {
		node    NodeID
		inLink  LinkID // link used to enter node (NoLink at root)
		nextNbr int    // next adjacency index to examine
	}

	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		stack := []frame{{node: NodeID(start), inLink: NoLink}}
		disc[start] = timer
		low[start] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.node
			if f.nextNbr < len(g.Neighbors(u)) {
				nb := g.Neighbors(u)[f.nextNbr]
				f.nextNbr++
				if nb.Link == f.inLink {
					continue // don't traverse the entry link backwards
				}
				v := nb.Node
				if disc[v] == 0 {
					disc[v] = timer
					low[v] = timer
					timer++
					stack = append(stack, frame{node: v, inLink: nb.Link})
				} else if disc[v] < low[u] {
					low[u] = disc[v]
				}
				continue
			}
			// Post-order: propagate low-link to parent and test bridge.
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			p := &stack[len(stack)-1]
			if low[u] < low[p.node] {
				low[p.node] = low[u]
			}
			if low[u] > disc[p.node] {
				bridges = append(bridges, f.inLink)
			}
		}
	}
	return bridges
}

// TwoEdgeConnected reports whether g is connected, has at least two nodes,
// and contains no bridges.
func TwoEdgeConnected(g *Graph) bool {
	if g.NumNodes() < 2 || !Connected(g) {
		return false
	}
	return len(Bridges(g)) == 0
}

// ArticulationPoints returns the cut vertices of g: nodes whose removal
// disconnects the component containing them. Used to validate topologies for
// node-failure experiments.
func ArticulationPoints(g *Graph) []NodeID {
	n := g.NumNodes()
	disc := make([]int, n)
	low := make([]int, n)
	isCut := make([]bool, n)
	timer := 1

	type frame struct {
		node     NodeID
		parent   NodeID
		nextNbr  int
		children int
	}

	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		stack := []frame{{node: NodeID(start), parent: NoNode}}
		disc[start] = timer
		low[start] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.node
			if f.nextNbr < len(g.Neighbors(u)) {
				nb := g.Neighbors(u)[f.nextNbr]
				f.nextNbr++
				v := nb.Node
				if v == f.parent {
					// Skip one traversal back to the parent; parallel links
					// to the parent still count as back-edges, handled by
					// clearing parent after first skip.
					f.parent = NoNode
					continue
				}
				if disc[v] == 0 {
					f.children++
					disc[v] = timer
					low[v] = timer
					timer++
					stack = append(stack, frame{node: v, parent: u})
				} else if disc[v] < low[u] {
					low[u] = disc[v]
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				// u is a DFS root: cut vertex iff ≥ 2 DFS children.
				if f.children >= 2 {
					isCut[u] = true
				}
				continue
			}
			p := &stack[len(stack)-1]
			if low[u] < low[p.node] {
				low[p.node] = low[u]
			}
			// Non-root parent is a cut vertex if child cannot reach above it.
			if len(stack) > 1 && low[u] >= disc[p.node] {
				isCut[p.node] = true
			}
			_ = f
		}
	}
	var cuts []NodeID
	for i, c := range isCut {
		if c {
			cuts = append(cuts, NodeID(i))
		}
	}
	return cuts
}

// BiConnected reports whether g is 2-connected (connected, ≥ 3 nodes, no
// articulation points).
func BiConnected(g *Graph) bool {
	if g.NumNodes() < 3 || !Connected(g) {
		return false
	}
	return len(ArticulationPoints(g)) == 0
}

// Components returns the connected components of g as slices of node IDs,
// each sorted ascending, ordered by their smallest member.
func Components(g *Graph) [][]NodeID {
	n := g.NumNodes()
	seen := make([]bool, n)
	var comps [][]NodeID
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{NodeID(s)}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, nb := range g.Neighbors(u) {
				if !seen[nb.Node] {
					seen[nb.Node] = true
					stack = append(stack, nb.Node)
				}
			}
		}
		sortNodeIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

func sortNodeIDs(s []NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
