package graph

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestApplyEditWeight(t *testing.T) {
	g := Ring(5)
	g2, m, err := ApplyEdit(g, SetWeight(2, 3.5))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumLinks() != 5 || g2.Weight(2) != 3.5 || g2.Weight(1) != 1 {
		t.Fatalf("weight edit wrong: %v", g2.Links())
	}
	for i, id := range m {
		if id != LinkID(i) {
			t.Fatalf("weight edit must keep IDs, got map %v", m)
		}
	}
	if g.Weight(2) != 1 {
		t.Fatal("original graph mutated")
	}
}

func TestApplyEditAddRemove(t *testing.T) {
	g := Ring(5)
	g2, m, err := ApplyEdit(g, AddLinkEdit(0, 2, 2.5))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumLinks() != 6 || g2.FindLink(0, 2) != 5 || g2.Weight(5) != 2.5 {
		t.Fatalf("add edit wrong: %v", g2.Links())
	}
	if m[4] != 4 {
		t.Fatalf("add edit must keep IDs, got %v", m)
	}
	g3, m3, err := ApplyEdit(g2, RemoveLinkEdit(1))
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumLinks() != 5 || g3.HasLink(1, 2) {
		t.Fatalf("remove edit wrong: %v", g3.Links())
	}
	if m3[0] != 0 || m3[1] != NoLink || m3[2] != 1 || m3[5] != 4 {
		t.Fatalf("remove mapping wrong: %v", m3)
	}
	if err := g3.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyEditsComposedMapping(t *testing.T) {
	g := Ring(6)
	g2, m, err := ApplyEdits(g, []Edit{
		RemoveLinkEdit(2),    // ids 3.. shift down
		SetWeight(2, 9),      // old link 3
		AddLinkEdit(0, 3, 4), // new id 5
		RemoveLinkEdit(0),    // old link 0; ids shift again
	})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumLinks() != 5 {
		t.Fatalf("want 5 links, got %d", g2.NumLinks())
	}
	if m[0] != NoLink || m[2] != NoLink {
		t.Fatalf("removed links must map to NoLink: %v", m)
	}
	// Old link 3 (nodes 3-4) survived both removals and carries weight 9.
	l := m[3]
	if l == NoLink || g2.Weight(l) != 9 {
		t.Fatalf("old link 3 mapping wrong: %v (links %v)", m, g2.Links())
	}
	if g2.FindLink(0, 3) == NoLink {
		t.Fatal("added link missing")
	}
}

func TestApplyEditValidation(t *testing.T) {
	g := Ring(4)
	bad := []Edit{
		SetWeight(99, 1),
		SetWeight(0, 0),
		SetWeight(0, -2),
		AddLinkEdit(0, 0, 1),
		AddLinkEdit(0, 99, 1),
		AddLinkEdit(0, 2, -1),
		RemoveLinkEdit(-1),
		{Kind: EditKind(42)},
	}
	for _, e := range bad {
		if _, _, err := ApplyEdit(g, e); err == nil {
			t.Fatalf("edit %v: want error", e)
		}
	}
}

// randomEditableGraph mixes float and small-integer weights so equal-cost
// ties — where canonical parent selection and hop cascades actually bite
// — are common.
func randomEditableGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, m)
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	perm := rng.Perm(n)
	weight := func() float64 {
		if rng.Intn(2) == 0 {
			return float64(1 + rng.Intn(4))
		}
		return 1 + 9*rng.Float64()
	}
	for i := 0; i < n; i++ {
		g.MustAddLink(NodeID(perm[i]), NodeID(perm[(i+1)%n]), weight())
	}
	for g.NumLinks() < m {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a == b || g.HasLink(a, b) {
			continue
		}
		g.MustAddLink(a, b, weight())
	}
	return g.Freeze()
}

// treesEqual asserts bit-identical trees (Dist compared bitwise).
func treesEqual(t *testing.T, ctx string, got, want *SPTree) {
	t.Helper()
	for v := range want.Dist {
		if math.Float64bits(got.Dist[v]) != math.Float64bits(want.Dist[v]) {
			t.Fatalf("%s: node %d Dist %v ≠ full %v", ctx, v, got.Dist[v], want.Dist[v])
		}
		if got.Hops[v] != want.Hops[v] {
			t.Fatalf("%s: node %d Hops %d ≠ full %d", ctx, v, got.Hops[v], want.Hops[v])
		}
		if got.NextLink[v] != want.NextLink[v] || got.NextNode[v] != want.NextNode[v] {
			t.Fatalf("%s: node %d parent (%d,%d) ≠ full (%d,%d)", ctx, v,
				got.NextNode[v], got.NextLink[v], want.NextNode[v], want.NextLink[v])
		}
	}
}

// TestSPTRepairDifferential drives the repairer through chained random
// weight edits on random tie-rich graphs and asserts every repaired tree
// is bit-identical to a from-scratch Dijkstra on the edited graph.
func TestSPTRepairDifferential(t *testing.T) {
	var rep SPTRepairer
	for seed := int64(1); seed <= 60; seed++ {
		rng := rand.New(rand.NewSource(seed * 7))
		n := 6 + int(seed%12)
		g := randomEditableGraph(n, n+2+int(seed)%n, seed)
		trees := make([]*SPTree, n)
		for d := 0; d < n; d++ {
			trees[d] = ShortestPathTree(g, NodeID(d), nil)
		}
		for step := 0; step < 8; step++ {
			l := LinkID(rng.Intn(g.NumLinks()))
			oldW := g.Weight(l)
			var w float64
			switch rng.Intn(4) {
			case 0:
				w = oldW * (1.1 + rng.Float64())
			case 1:
				w = oldW * (0.2 + 0.7*rng.Float64())
			case 2:
				w = float64(1 + rng.Intn(5)) // integral: provokes ties
			default:
				w = oldW // no-op edit
			}
			if w <= 0 {
				w = 1
			}
			g2, _, err := ApplyEdit(g, SetWeight(l, w))
			if err != nil {
				t.Fatal(err)
			}
			for d := 0; d < n; d++ {
				got, _ := rep.WeightChange(g2, trees[d], l, oldW)
				want := ShortestPathTree(g2, NodeID(d), nil)
				ctx := fmt.Sprintf("seed %d step %d dst %d link %d %g→%g", seed, step, d, l, oldW, w)
				treesEqual(t, ctx, got, want)
				trees[d] = got
			}
			g = g2
		}
	}
	repaired, unchanged, fullFallback, touched := rep.Counters()
	if repaired == 0 {
		t.Fatal("no incremental repairs exercised")
	}
	if fullFallback > 0 {
		t.Fatalf("%d defensive fallbacks — incremental invariants violated", fullFallback)
	}
	t.Logf("repairs=%d unchanged=%d touched=%d", repaired, unchanged, touched)
}

// TestRemapTreeLinks checks the removal remap shares untouched arrays and
// rewrites only link IDs.
func TestRemapTreeLinks(t *testing.T) {
	g := Ring(6)
	tr := ShortestPathTree(g, 0, nil)
	m := make([]LinkID, g.NumLinks())
	for i := range m {
		m[i] = LinkID(i)
	}
	m[3] = NoLink
	for i := 4; i < len(m); i++ {
		m[i] = LinkID(i - 1)
	}
	rt := RemapTreeLinks(tr, m)
	for v := range tr.NextLink {
		want := tr.NextLink[v]
		if want != NoLink {
			want = m[want]
		}
		if rt.NextLink[v] != want {
			t.Fatalf("node %d: remap %d want %d", v, rt.NextLink[v], want)
		}
	}
	if &rt.Dist[0] != &tr.Dist[0] {
		t.Fatal("Dist must be shared")
	}
}
