package graph

import (
	"testing"
)

func TestFailureSetBasics(t *testing.T) {
	fs := NewFailureSet(3, 1)
	if !fs.Down(3) || !fs.Down(1) || fs.Down(2) {
		t.Fatal("Down gave wrong answers")
	}
	if fs.Len() != 2 {
		t.Fatalf("Len = %d; want 2", fs.Len())
	}
	fs.Add(2)
	fs.Remove(1)
	want := []LinkID{2, 3}
	got := fs.Links()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Links = %v; want %v", got, want)
	}
	if s := fs.String(); s != "{2, 3}" {
		t.Fatalf("String = %q; want {2, 3}", s)
	}
}

func TestNilFailureSetReads(t *testing.T) {
	var fs *FailureSet
	if fs.Down(0) {
		t.Fatal("nil set reports failures")
	}
	if fs.Len() != 0 {
		t.Fatal("nil set has nonzero length")
	}
	if fs.Links() != nil {
		t.Fatal("nil set has links")
	}
	if c := fs.Clone(); c == nil || c.Len() != 0 {
		t.Fatal("clone of nil set should be empty non-nil")
	}
}

func TestFailureSetClone(t *testing.T) {
	fs := NewFailureSet(1)
	c := fs.Clone()
	c.Add(2)
	if fs.Down(2) {
		t.Fatal("clone not independent")
	}
}

func TestZeroValueFailureSet(t *testing.T) {
	var fs FailureSet
	fs.Add(7)
	if !fs.Down(7) {
		t.Fatal("zero-value set unusable")
	}
}

func TestFailNode(t *testing.T) {
	g := Ring(5)
	fs := FailNode(g, 0)
	if fs.Len() != 2 {
		t.Fatalf("node 0 of C5 has %d incident links; want 2", fs.Len())
	}
	// Node failure of a ring node disconnects nothing else but isolates it.
	r := ReachableUnder(g, 1, fs)
	if r[0] {
		t.Fatal("failed node still reachable")
	}
	for i := 1; i < 5; i++ {
		if !r[i] {
			t.Fatalf("node %d unreachable after single node failure on ring", i)
		}
	}
}

func TestSurviving(t *testing.T) {
	g := Ring(4)
	s := Surviving(g, NewFailureSet(0))
	if s.NumNodes() != 4 || s.NumLinks() != 3 {
		t.Fatalf("surviving graph = %v; want 4 nodes 3 links", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.Name(0) != g.Name(0) {
		t.Fatal("surviving graph lost node names")
	}
}

func TestSingleFailureScenariosSkipBridges(t *testing.T) {
	// Barbell: 7 links, 1 bridge → 6 scenarios.
	g := New(6, 7)
	for i := 0; i < 6; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	mustLink(t, g, 0, 1, 1)
	mustLink(t, g, 1, 2, 1)
	mustLink(t, g, 0, 2, 1)
	mustLink(t, g, 2, 3, 1)
	mustLink(t, g, 3, 4, 1)
	mustLink(t, g, 4, 5, 1)
	mustLink(t, g, 3, 5, 1)
	g.Freeze()
	sc := SingleFailureScenarios(g)
	if len(sc) != 6 {
		t.Fatalf("scenarios = %d; want 6 (bridge skipped)", len(sc))
	}
	for _, fs := range sc {
		if !ConnectedUnder(g, fs) {
			t.Fatalf("scenario %v disconnects the graph", fs)
		}
	}
}

func TestSampleFailureScenarios(t *testing.T) {
	g := RandomTwoConnected(12, 24, 7)
	scenarios, err := SampleFailureScenarios(g, 4, 50, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 50 {
		t.Fatalf("got %d scenarios; want 50", len(scenarios))
	}
	seen := make(map[string]bool)
	for _, fs := range scenarios {
		if fs.Len() != 4 {
			t.Fatalf("scenario %v has %d links; want 4", fs, fs.Len())
		}
		if !ConnectedUnder(g, fs) {
			t.Fatalf("scenario %v disconnects", fs)
		}
		if seen[fs.String()] {
			t.Fatalf("duplicate scenario %v", fs)
		}
		seen[fs.String()] = true
	}
}

func TestSampleFailureScenariosDeterministic(t *testing.T) {
	g := RandomTwoConnected(10, 20, 3)
	a, err := SampleFailureScenarios(g, 3, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleFailureScenarios(g, 3, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("scenario %d differs between identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSampleFailureScenariosErrors(t *testing.T) {
	g := Ring(4)
	if _, err := SampleFailureScenarios(g, 0, 5, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SampleFailureScenarios(g, 4, 5, 1); err == nil {
		t.Fatal("k=NumLinks accepted")
	}
	// k=2 on C4 always disconnects → expect error after rejection sampling.
	if _, err := SampleFailureScenarios(g, 2, 5, 1); err == nil {
		t.Fatal("impossible scenario request accepted")
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name         string
		g            *Graph
		nodes, links int
	}{
		{"ring", Ring(6), 6, 6},
		{"grid", Grid(3, 4), 12, 17},
		{"torus", Torus(3, 3), 9, 18},
		{"complete", Complete(5), 5, 10},
		{"bipartite", CompleteBipartite(3, 3), 6, 9},
	}
	for _, tc := range cases {
		if tc.g.NumNodes() != tc.nodes || tc.g.NumLinks() != tc.links {
			t.Errorf("%s: %d nodes %d links; want %d, %d", tc.name, tc.g.NumNodes(), tc.g.NumLinks(), tc.nodes, tc.links)
		}
		if err := tc.g.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", tc.name, err)
		}
		if !Connected(tc.g) {
			t.Errorf("%s: not connected", tc.name)
		}
	}
}

func TestRandomPlanarLikeIsConnected(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := RandomPlanarLike(12, seed)
		if !Connected(g) {
			t.Fatalf("seed %d: disconnected", seed)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
