package graph

import (
	"bytes"
	"strings"
	"testing"
)

const sampleTopology = `# sample
node a
node b
node c
link a b 1.5
link b c 2
link a c 3
`

func TestParse(t *testing.T) {
	g, err := ParseString(sampleTopology)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumLinks() != 3 {
		t.Fatalf("parsed %d nodes %d links; want 3, 3", g.NumNodes(), g.NumLinks())
	}
	if !g.Frozen() {
		t.Fatal("parsed graph should be frozen")
	}
	ab := g.FindLink(g.NodeByName("a"), g.NodeByName("b"))
	if w := g.Weight(ab); w != 1.5 {
		t.Fatalf("weight a-b = %v; want 1.5", w)
	}
}

func TestParseAutoCreatesNodes(t *testing.T) {
	g, err := ParseString("link x y 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("auto-created %d nodes; want 2", g.NumNodes())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"bad directive", "frobnicate a b\n"},
		{"node arity", "node\n"},
		{"dup node", "node a\nnode a\n"},
		{"link arity", "link a b\n"},
		{"bad weight", "link a b x\n"},
		{"zero weight", "link a b 0\n"},
		{"self loop", "link a a 1\n"},
	}
	for _, tc := range cases {
		if _, err := ParseString(tc.in); err == nil {
			t.Errorf("%s: no error for %q", tc.name, tc.in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig, err := ParseString(sampleTopology)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != orig.NumNodes() || back.NumLinks() != orig.NumLinks() {
		t.Fatalf("round trip changed size: %v -> %v", orig, back)
	}
	for i := 0; i < orig.NumNodes(); i++ {
		if back.Name(NodeID(i)) != orig.Name(NodeID(i)) {
			t.Fatalf("node %d name changed: %q -> %q", i, orig.Name(NodeID(i)), back.Name(NodeID(i)))
		}
	}
	for _, l := range orig.Links() {
		bl := back.Link(l.ID)
		if bl.A != l.A || bl.B != l.B || bl.Weight != l.Weight {
			t.Fatalf("link %d changed: %+v -> %+v", l.ID, l, bl)
		}
	}
}

func TestWriteRejectsBadNames(t *testing.T) {
	g := New(2, 1)
	a := g.AddNode("has space")
	b := g.AddNode("ok")
	mustLink(t, g, a, b, 1)
	g.Freeze()
	if err := Write(&bytes.Buffer{}, g); err == nil {
		t.Fatal("Write accepted whitespace in node name")
	}

	dup := New(2, 0)
	dup.AddNode("same")
	dup.AddNode("same")
	dup.Freeze()
	if err := Write(&bytes.Buffer{}, dup); err == nil {
		t.Fatal("Write accepted duplicate names")
	}
}

func TestFormatLink(t *testing.T) {
	g, err := ParseString(sampleTopology)
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatLink(g, 0); s != "a-b" {
		t.Fatalf("FormatLink = %q; want a-b", s)
	}
	names := SortedLinkNames(g, NewFailureSet(0, 2))
	if len(names) != 2 || names[0] != "a-b" || names[1] != "a-c" {
		t.Fatalf("SortedLinkNames = %v", names)
	}
}

func TestParseIgnoresCommentsAndBlankLines(t *testing.T) {
	in := "\n# hi\n\nlink a b 1\n  \n# bye\n"
	g, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 1 {
		t.Fatalf("links = %d; want 1", g.NumLinks())
	}
}
