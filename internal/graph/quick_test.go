package graph

import (
	"testing"
	"testing/quick"
)

// Property: Surviving removes exactly the failed links and preserves node
// identity.
func TestSurvivingProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		g := RandomTwoConnected(8+int(uint64(seed)%6), 14+int(uint64(seed)%8), seed)
		k := int(kRaw)%3 + 1
		fs := NewFailureSet()
		base := int(uint64(seed) % uint64(g.NumLinks()))
		for i := 0; i < k; i++ {
			fs.Add(LinkID((base + i*3) % g.NumLinks()))
		}
		s := Surviving(g, fs)
		if s.NumNodes() != g.NumNodes() || s.NumLinks() != g.NumLinks()-fs.Len() {
			return false
		}
		for n := 0; n < g.NumNodes(); n++ {
			if s.Name(NodeID(n)) != g.Name(NodeID(n)) {
				return false
			}
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: hop distances from BFS agree with unit-weight Dijkstra.
func TestBFSAgreesWithUnitDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		n := 6 + int(uint64(seed)%8)
		g := Ring(n) // unit weights
		src := NodeID(uint64(seed) % uint64(n))
		bfs := HopDistances(g, src, nil)
		tree := ShortestPathTree(g, src, nil)
		for v := 0; v < n; v++ {
			if float64(bfs[v]) != tree.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: failure-set clone is always independent and order-insensitive.
func TestFailureSetCloneProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		fs := NewFailureSet()
		for _, id := range ids {
			fs.Add(LinkID(id))
		}
		c := fs.Clone()
		c.Add(9999)
		if fs.Down(9999) {
			return false
		}
		for _, id := range ids {
			if !c.Down(LinkID(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every scenario from SampleFailureScenarios preserves
// connectivity and has the requested size.
func TestSampleScenarioProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomTwoConnected(10, 20, seed)
		scenarios, err := SampleFailureScenarios(g, 3, 5, seed)
		if err != nil {
			return true // some graphs admit none; not a failure of the property
		}
		for _, fs := range scenarios {
			if fs.Len() != 3 || !ConnectedUnder(g, fs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
