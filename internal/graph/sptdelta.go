package graph

import (
	"math"
)

// SPTRepairer incrementally repairs shortest-path trees after a
// single-link weight change — the per-destination primitive of delta FIB
// recompilation. The repaired tree is bit-identical to running
// ShortestPathTree from scratch on the edited graph: the final state of
// Dijkstra with this package's deterministic tie-breaking is a canonical
// function of the graph alone —
//
//	Dist[v] = min over incident (u, link) of Dist[u] + weight(link)
//	parent  = the (u, link)-lexicographically smallest candidate
//	          achieving that minimum (bit-equal float comparison)
//	Hops[v] = Hops[parent] + 1
//
// — so any algorithm that recomputes exactly the affected part of that
// fixpoint reproduces the full run. For a weight increase the affected
// region is the old tree's subtree behind the link; for a decrease it is
// the set of nodes the cheaper link strictly improves. Both are usually a
// small fraction of the graph, which is where the delta speedup comes
// from.
//
// A repairer owns reusable scratch sized to the largest graph it has seen
// and is NOT safe for concurrent use. If an internal consistency check
// ever fails (a repaired distance that no neighbour candidate achieves),
// the repairer falls back to a full Dijkstra for that destination and
// counts it in Stats — correctness never depends on the fast path.
type SPTRepairer struct {
	// epoch-stamped scratch: a mark array entry is valid only when it
	// equals the current epoch, so resets are O(1).
	epoch    uint32
	overlay  []float64 // repaired distances, valid when distMark matches
	distMark []uint32
	inSub    []uint32 // subtree membership (weight increase)
	settled  []uint32 // region-Dijkstra settled marks
	rkMark   []uint32 // recheck-set dedup
	heap     repairHeap
	region   []NodeID // affected nodes (increase: subtree; decrease: improved)
	order    []NodeID // settle order of the region Dijkstra (increase)
	recheck  []NodeID
	chain    []NodeID   // cascade stack scratch
	changes  []reparent // re-parented nodes scratch
	seeds    []NodeID   // cascade seeds scratch
	slab     []float64  // bulk allocation pool for repaired distance planes
	// kids caches each destination's tree children lists across calls:
	// the subtree walk of a weight increase then costs O(|subtree|)
	// instead of O(n). Entries are validated by tree pointer and updated
	// incrementally from the re-parent set, so a chained recompiler hits
	// the cache on every edit.
	kids map[NodeID]*childCache

	stats repairCounters
}

// repairCounters accumulates repairer outcomes; Counters exposes them
// for telemetry collectors (dataplane.Recompiler.Register publishes
// them as the repair.* snapshot names).
type repairCounters struct {
	repaired     int64
	unchanged    int64
	fullFallback int64
	nodesTouched int64
}

// reparent records one canonical-parent change found by the recheck
// scan.
type reparent struct {
	v    NodeID
	node NodeID
	link LinkID
}

// childCache is one destination's children-list snapshot: head[v] is v's
// first tree child, next[c] the next sibling (-1 terminated), valid only
// while tree matches the caller's tree pointer.
type childCache struct {
	tree *SPTree
	head []int32
	next []int32
}

// Counters returns the repairer's cumulative outcome counts: trees
// rebuilt through the incremental path, calls that proved the tree
// unaffected, defensive full-Dijkstra rebuilds, and the summed
// affected-region sizes across repairs.
func (r *SPTRepairer) Counters() (repaired, unchanged, fullFallback, nodesTouched int64) {
	return r.stats.repaired, r.stats.unchanged, r.stats.fullFallback, r.stats.nodesTouched
}

// repairItem is one heap entry of the region Dijkstra.
type repairItem struct {
	dist float64
	node NodeID
}

// repairHeap is a plain binary min-heap on (dist, node), matching the
// full Dijkstra's pop order. Lazy deletion: stale entries are skipped at
// pop time against the overlay distance.
type repairHeap []repairItem

func (h *repairHeap) push(it repairItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !repairLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *repairHeap) pop() repairItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && repairLess((*h)[l], (*h)[small]) {
			small = l
		}
		if r < n && repairLess((*h)[r], (*h)[small]) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

func repairLess(a, b repairItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.node < b.node
}

// grow sizes the scratch for an n-node graph and starts a fresh epoch.
func (r *SPTRepairer) grow(n int) {
	if len(r.overlay) < n {
		r.overlay = make([]float64, n)
		r.distMark = make([]uint32, n)
		r.inSub = make([]uint32, n)
		r.settled = make([]uint32, n)
		r.rkMark = make([]uint32, n)
	}
	r.epoch++
	if r.epoch == 0 { // wrapped: scrub stale marks once
		for i := range r.distMark {
			r.distMark[i], r.inSub[i] = 0, 0
			r.settled[i], r.rkMark[i] = 0, 0
		}
		r.epoch = 1
	}
	r.heap = r.heap[:0]
	r.region = r.region[:0]
	r.order = r.order[:0]
	r.recheck = r.recheck[:0]
}

// dist reads the repaired distance of v: the overlay when set this epoch,
// the old tree's value otherwise.
func (r *SPTRepairer) dist(old *SPTree, v NodeID) float64 {
	if r.distMark[v] == r.epoch {
		return r.overlay[v]
	}
	return old.Dist[v]
}

// allocDist cuts an n-sized distance plane from a slab: repaired trees
// are allocated in bulk (16 planes at a time), trading 16× fewer small
// allocations for the slab living as long as its longest-lived tree —
// the right trade for a control plane that repairs most destinations on
// every edit.
func (r *SPTRepairer) allocDist(n int) []float64 {
	if len(r.slab) < n {
		r.slab = make([]float64, 16*n)
	}
	out := r.slab[:n:n]
	r.slab = r.slab[n:]
	return out
}

func (r *SPTRepairer) setDist(v NodeID, d float64) {
	if r.distMark[v] != r.epoch {
		r.distMark[v] = r.epoch
		r.region = append(r.region, v)
	}
	r.overlay[v] = d
}

// WeightChange repairs old — a canonical shortest-path tree toward
// old.Dest on the pre-edit graph — into the canonical tree on g, where g
// differs from the pre-edit graph only by link l's weight (previously
// oldW, now g.Weight(l)). When the tree is unaffected the original tree
// is returned with changed == false.
func (r *SPTRepairer) WeightChange(g *Graph, old *SPTree, l LinkID, oldW float64) (t *SPTree, changed bool) {
	wNew := g.Weight(l)
	if wNew == oldW {
		r.stats.unchanged++
		return old, false
	}
	link := g.Link(l)
	a, b := link.A, link.B
	if !old.Reachable(a) && !old.Reachable(b) {
		// Both endpoints in an unreachable component: every candidate
		// through l stays infinite.
		r.stats.unchanged++
		return old, false
	}
	r.grow(g.NumNodes())
	if wNew > oldW {
		if !r.raiseDists(g, old, l) {
			r.stats.unchanged++
			return old, false
		}
	} else {
		r.lowerDists(g, old, l)
	}

	// Recheck set. For an increase it is exactly the region: a node
	// outside keeps its distance and every outside candidate value, and
	// any inside candidate that tied for its parent slot would have put
	// the node inside the region in the first place — while inside
	// candidates only got worse, so no outside parent can move. For a
	// decrease, tied candidates can appear anywhere next to an improved
	// node (and at l's endpoints, whose l-candidate changed even when no
	// distance did), so neighbours join the set.
	recheck := r.region
	if wNew < oldW {
		addRecheck := func(v NodeID) {
			if r.rkMark[v] != r.epoch {
				r.rkMark[v] = r.epoch
				r.recheck = append(r.recheck, v)
			}
		}
		for _, v := range r.region {
			addRecheck(v)
			// An unimproved neighbour's parent can only move when an
			// improved candidate lands bit-equal on its distance — a
			// strictly better one would have improved it into the
			// region, a worse one never enters the achiever set.
			dv := r.overlay[v]
			for _, nb := range g.Neighbors(v) {
				if dv+g.Weight(nb.Link) == r.dist(old, nb.Node) {
					addRecheck(nb.Node)
				}
			}
		}
		// l's own candidate changed even where no distance did: a new
		// bit-equal tie at an endpoint can flip its parent onto l.
		if old.Reachable(a) && old.Reachable(b) {
			if r.dist(old, b)+wNew == r.dist(old, a) {
				addRecheck(a)
			}
			if r.dist(old, a)+wNew == r.dist(old, b) {
				addRecheck(b)
			}
		}
		recheck = r.recheck
	}

	// Materialise the repaired distance plane before the parent scan:
	// copy-on-write only when some distance actually moved, after which
	// every read below is a plain array load.
	distChanged := false
	for _, v := range r.region {
		if r.overlay[v] != old.Dist[v] {
			distChanged = true
			break
		}
	}
	dist := old.Dist
	if distChanged {
		dist = r.allocDist(len(old.Dist))
		copy(dist, old.Dist)
		for _, v := range r.region {
			dist[v] = r.overlay[v]
		}
	}

	// Canonical parent re-selection over the recheck set. Neighbors are
	// (node, link)-sorted after Freeze, so a strict `<` scan yields the
	// lexicographically smallest candidate achieving the minimum — the
	// same parent the full Dijkstra's betterTie rule converges to.
	changes := r.changes[:0]
	for _, v := range recheck {
		if v == old.Dest || !old.Reachable(v) {
			continue
		}
		bestD := math.Inf(1)
		bestP, bestL := NoNode, NoLink
		for _, nb := range g.Neighbors(v) {
			du := dist[nb.Node]
			if math.IsInf(du, 1) {
				continue
			}
			if cand := du + g.Weight(nb.Link); cand < bestD {
				bestD, bestP, bestL = cand, nb.Node, nb.Link
			}
		}
		if bestD != dist[v] {
			// A repaired distance no candidate achieves (or vice versa):
			// the incremental invariants were violated. Never deliver a
			// wrong tree — recompute this destination from scratch.
			r.stats.fullFallback++
			return ShortestPathTree(g, old.Dest, nil), true
		}
		if bestP != old.NextNode[v] || bestL != old.NextLink[v] {
			changes = append(changes, reparent{v: v, node: bestP, link: bestL})
		}
	}
	if !distChanged && len(changes) == 0 {
		r.stats.unchanged++
		return old, false
	}

	// Materialise the rest of the repaired tree with per-array
	// copy-on-write: only the planes that actually moved are cloned, the
	// rest are shared with the old tree. Downstream consumers exploit
	// the sharing — a shared Hops (or Dist) plane proves the
	// discriminator column unchanged without a scan. Hops can only move
	// when some parent moved (Hops[v] is Hops[parent]+1 along an
	// unchanged chain), so the hop plane is cloned exactly when the
	// parent planes are.
	nt := &SPTree{Dest: old.Dest, Dist: dist, Hops: old.Hops,
		NextLink: old.NextLink, NextNode: old.NextNode}
	cc := r.children(old)
	if len(changes) > 0 {
		nt.NextLink = append([]LinkID(nil), old.NextLink...)
		nt.NextNode = append([]NodeID(nil), old.NextNode...)
		for _, c := range changes {
			cc.reparent(c.v, old.NextNode[c.v], c.node, nt)
			nt.NextNode[c.v] = c.node
			nt.NextLink[c.v] = c.link
		}
		// The hop plane clones lazily, on the first hop count that
		// actually moves: a tie flip between equal-length paths (the
		// common planned-maintenance case) re-parents without touching a
		// single hop, and the shared plane then proves the hop-count
		// discriminator column unchanged for free.
		if wNew > oldW {
			// Every hop change of an increase is confined to the region
			// (a tie-flipped parent and all its tree descendants route
			// over l), and the region Dijkstra's settle order lists it
			// parent-before-child — one linear pass repairs the plane.
			hops := old.Hops
			for _, v := range r.order {
				h := hops[nt.NextNode[v]] + 1
				if h == hops[v] {
					continue
				}
				if &hops[0] == &old.Hops[0] {
					hops = append([]int(nil), old.Hops...)
				}
				hops[v] = h
			}
			nt.Hops = hops
		} else {
			seeds := r.seeds[:0]
			for _, c := range changes {
				seeds = append(seeds, c.v)
			}
			nt.Hops = r.cascadeHops(cc, nt, old.Hops, seeds)
			r.seeds = seeds[:0]
		}
	}
	cc.tree = nt
	r.changes = changes[:0]
	r.stats.repaired++
	r.stats.nodesTouched += int64(len(r.region))
	return nt, true
}

// SharedHops reports whether two trees share the same backing array for
// the hop-count plane — the O(1) "this column did not move" proof the
// repairer's copy-on-write leaves behind.
func SharedHops(a, b *SPTree) bool {
	return len(a.Hops) > 0 && len(b.Hops) > 0 && &a.Hops[0] == &b.Hops[0]
}

// SharedDist reports whether two trees share the distance plane.
func SharedDist(a, b *SPTree) bool {
	return len(a.Dist) > 0 && len(b.Dist) > 0 && &a.Dist[0] == &b.Dist[0]
}

// SharedNextLink reports whether two trees share the next-hop plane.
func SharedNextLink(a, b *SPTree) bool {
	return len(a.NextLink) > 0 && len(b.NextLink) > 0 && &a.NextLink[0] == &b.NextLink[0]
}

// raiseDists handles a weight increase: only nodes whose old shortest
// path crosses l — the old tree's subtree behind l — can move. It
// recomputes their distances with a Dijkstra over that region seeded from
// the (unchanged) boundary, and reports whether any node was affected.
func (r *SPTRepairer) raiseDists(g *Graph, old *SPTree, l LinkID) bool {
	link := g.Link(l)
	// The child endpoint c routes over l; if neither endpoint does, no
	// shortest path uses l and a worse l changes nothing (alternatives
	// only lost ground).
	var c NodeID
	switch {
	case old.NextLink[link.A] == l:
		c = link.A
	case old.NextLink[link.B] == l:
		c = link.B
	default:
		return false
	}
	r.markSubtree(old, c)
	// Seed every region node with its best boundary candidate.
	for _, v := range r.region {
		best := math.Inf(1)
		for _, nb := range g.Neighbors(v) {
			if r.inSub[nb.Node] == r.epoch {
				continue
			}
			du := old.Dist[nb.Node]
			if math.IsInf(du, 1) {
				continue
			}
			if cand := du + g.Weight(nb.Link); cand < best {
				best = cand
			}
		}
		r.overlay[v] = best
		if !math.IsInf(best, 1) {
			r.heap.push(repairItem{dist: best, node: v})
		}
	}
	// Region Dijkstra: settle in (dist, node) order, relaxing only
	// region-internal links (l itself is a boundary link by construction).
	for len(r.heap) > 0 {
		it := r.heap.pop()
		v := it.node
		if r.settled[v] == r.epoch || it.dist != r.overlay[v] {
			continue
		}
		r.settled[v] = r.epoch
		r.order = append(r.order, v)
		for _, nb := range g.Neighbors(v) {
			u := nb.Node
			if r.inSub[u] != r.epoch || r.settled[u] == r.epoch {
				continue
			}
			if cand := it.dist + g.Weight(nb.Link); cand < r.overlay[u] {
				r.overlay[u] = cand
				r.heap.push(repairItem{dist: cand, node: u})
			}
		}
	}
	return true
}

// children returns the destination's children-list cache for old,
// rebuilding it only when the cached snapshot is for a different tree.
func (r *SPTRepairer) children(old *SPTree) *childCache {
	if r.kids == nil {
		r.kids = make(map[NodeID]*childCache)
	}
	cc := r.kids[old.Dest]
	if cc != nil && cc.tree == old {
		return cc
	}
	n := len(old.Dist)
	if cc == nil || len(cc.head) < n {
		cc = &childCache{head: make([]int32, n), next: make([]int32, n)}
		r.kids[old.Dest] = cc
	}
	for v := 0; v < n; v++ {
		cc.head[v] = -1
	}
	for v := 0; v < n; v++ {
		p := old.NextNode[v]
		if p == NoNode {
			continue
		}
		cc.next[v] = cc.head[p]
		cc.head[p] = int32(v)
	}
	cc.tree = old
	return cc
}

// reparentCached moves v from oldParent's child list to newParent's and
// stamps the cache as describing nt. Sibling lists are degree-bounded,
// so the unlink scan is cheap.
func (cc *childCache) reparent(v, oldParent, newParent NodeID, nt *SPTree) {
	if oldParent != NoNode {
		if cc.head[oldParent] == int32(v) {
			cc.head[oldParent] = cc.next[v]
		} else {
			for c := cc.head[oldParent]; c >= 0; c = cc.next[c] {
				if cc.next[c] == int32(v) {
					cc.next[c] = cc.next[v]
					break
				}
			}
		}
	}
	if newParent != NoNode {
		cc.next[v] = cc.head[newParent]
		cc.head[newParent] = int32(v)
	}
	cc.tree = nt
}

// markSubtree collects the old tree's subtree rooted at c (inclusive)
// into r.region, marking membership in r.inSub — a BFS over the cached
// children lists, O(|subtree|).
func (r *SPTRepairer) markSubtree(old *SPTree, c NodeID) *childCache {
	cc := r.children(old)
	r.inSub[c] = r.epoch
	r.distMark[c] = r.epoch
	r.region = append(r.region, c)
	for i := 0; i < len(r.region); i++ {
		for ch := cc.head[r.region[i]]; ch >= 0; ch = cc.next[ch] {
			v := NodeID(ch)
			r.inSub[v] = r.epoch
			r.distMark[v] = r.epoch
			r.region = append(r.region, v)
		}
	}
	return cc
}

// lowerDists handles a weight decrease: strict improvements seeded at l's
// endpoints propagate outward Dijkstra-style; distances can only drop.
func (r *SPTRepairer) lowerDists(g *Graph, old *SPTree, l LinkID) {
	link := g.Link(l)
	w := g.Weight(l)
	seed := func(e, via NodeID) {
		dvia := old.Dist[via]
		if math.IsInf(dvia, 1) {
			return
		}
		if cand := dvia + w; cand < old.Dist[e] {
			r.setDist(e, cand)
			r.heap.push(repairItem{dist: cand, node: e})
		}
	}
	seed(link.A, link.B)
	seed(link.B, link.A)
	for len(r.heap) > 0 {
		it := r.heap.pop()
		v := it.node
		if r.settled[v] == r.epoch || it.dist != r.overlay[v] {
			continue
		}
		r.settled[v] = r.epoch
		for _, nb := range g.Neighbors(v) {
			u := nb.Node
			if cand := it.dist + g.Weight(nb.Link); cand < r.dist(old, u) {
				r.setDist(u, cand)
				r.heap.push(repairItem{dist: cand, node: u})
			}
		}
	}
}

// cascadeHops repairs hop counts below every re-parented node: a node's
// hop count is its parent's plus one, so a parent change can shift whole
// subtrees even when no distance moved (equal-cost paths of different
// lengths). The cascade follows the repaired tree's children lists (cc
// must already describe nt's parents) and prunes branches whose hop
// count is confirmed unchanged. It returns the repaired plane — oldHops
// itself when nothing moved, a lazy clone otherwise.
func (r *SPTRepairer) cascadeHops(cc *childCache, nt *SPTree, oldHops []int, seeds []NodeID) []int {
	hops := oldHops
	stack := r.chain[:0]
	for _, s := range seeds {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h := hops[nt.NextNode[v]] + 1
		if h == hops[v] {
			continue
		}
		if &hops[0] == &oldHops[0] {
			hops = append([]int(nil), oldHops...)
		}
		hops[v] = h
		for c := cc.head[v]; c >= 0; c = cc.next[c] {
			stack = append(stack, NodeID(c))
		}
	}
	r.chain = stack[:0]
	return hops
}

// RemapTreeLinks rewrites a tree's NextLink column through a link-ID
// mapping (see ApplyEdit), sharing every other array with the original.
// It is the cheap half of surviving a link removal: trees that never used
// the removed link keep their structure, only the IDs shift.
func RemapTreeLinks(t *SPTree, linkMap []LinkID) *SPTree {
	nl := make([]LinkID, len(t.NextLink))
	for i, l := range t.NextLink {
		if l == NoLink {
			nl[i] = NoLink
		} else {
			nl[i] = linkMap[l]
		}
	}
	return &SPTree{Dest: t.Dest, Dist: t.Dist, Hops: t.Hops, NextLink: nl, NextNode: t.NextNode}
}
