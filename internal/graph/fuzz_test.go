package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse hardens the topology codec: arbitrary input must never panic,
// and anything that parses must survive a write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("link a b 1\n")
	f.Add(sampleTopology)
	f.Add("node x\nnode y\nlink x y 2.5\n# comment\n")
	f.Add("link a a 1\n")
	f.Add("rotation a b\n")
	f.Add("link a b -1\n")
	f.Add("link a b NaN\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseString(input)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v\ninput: %q", err, input)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			// Unwritable names (duplicates etc.) are legal parse results.
			return
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\nserialised: %q", err, buf.String())
		}
		if back.NumNodes() != g.NumNodes() || back.NumLinks() != g.NumLinks() {
			t.Fatalf("round trip changed size: %v -> %v", g, back)
		}
	})
}

// FuzzParseWeights stresses numeric weight handling specifically.
func FuzzParseWeights(f *testing.F) {
	f.Add("1.5")
	f.Add("-0")
	f.Add("1e308")
	f.Add("Inf")
	f.Fuzz(func(t *testing.T, w string) {
		if strings.ContainsAny(w, " \t\n") {
			return
		}
		g, err := ParseString("link a b " + w + "\n")
		if err != nil {
			return
		}
		// Accepted weights must be positive and finite enough to route on.
		if got := g.Weight(0); !(got > 0) {
			t.Fatalf("accepted non-positive weight %v from %q", got, w)
		}
	})
}
