package graph

import (
	"fmt"
	"math/rand"
)

// SingleFailureScenarios returns one failure set per link whose removal keeps
// the graph connected. On a 2-edge-connected topology that is every link;
// bridges are skipped because no reroute scheme can recover from them (the
// paper conditions all guarantees on the network remaining connected).
func SingleFailureScenarios(g *Graph) []*FailureSet {
	var out []*FailureSet
	bridge := make(map[LinkID]bool)
	for _, b := range Bridges(g) {
		bridge[b] = true
	}
	for _, l := range g.Links() {
		if bridge[l.ID] {
			continue
		}
		out = append(out, NewFailureSet(l.ID))
	}
	return out
}

// SampleFailureScenarios draws count failure sets of exactly k distinct links
// each, uniformly among k-subsets, keeping only those that leave the graph
// connected. Sampling is seeded and therefore reproducible. It gives up
// after a generous number of rejections, returning fewer scenarios, so that
// pathological (k too close to breaking the graph) requests terminate.
func SampleFailureScenarios(g *Graph, k, count int, seed int64) ([]*FailureSet, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: scenario size %d < 1", k)
	}
	if k >= g.NumLinks() {
		return nil, fmt.Errorf("graph: cannot fail %d of %d links and stay connected", k, g.NumLinks())
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, count)
	var out []*FailureSet
	maxAttempts := count * 200
	ids := make([]LinkID, g.NumLinks())
	for i := range ids {
		ids[i] = LinkID(i)
	}
	for attempts := 0; len(out) < count && attempts < maxAttempts; attempts++ {
		// Partial Fisher-Yates: pick k distinct links.
		for i := 0; i < k; i++ {
			j := i + rng.Intn(len(ids)-i)
			ids[i], ids[j] = ids[j], ids[i]
		}
		fs := NewFailureSet(ids[:k]...)
		key := fs.String()
		if seen[key] || !ConnectedUnder(g, fs) {
			continue
		}
		seen[key] = true
		out = append(out, fs)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("graph: no connectivity-preserving %d-failure scenario found", k)
	}
	return out, nil
}
