package graph

import (
	"strings"
	"testing"
)

func mustLink(t *testing.T, g *Graph, a, b NodeID, w float64) LinkID {
	t.Helper()
	id, err := g.AddLink(a, b, w)
	if err != nil {
		t.Fatalf("AddLink(%d,%d,%v): %v", a, b, w, err)
	}
	return id
}

// triangle returns the frozen triangle graph with unit weights.
func triangle(t *testing.T) *Graph {
	t.Helper()
	g := New(3, 3)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	mustLink(t, g, a, b, 1)
	mustLink(t, g, b, c, 1)
	mustLink(t, g, a, c, 1)
	return g.Freeze()
}

func TestAddNodeAndLink(t *testing.T) {
	g := New(0, 0)
	a := g.AddNode("a")
	b := g.AddNode("b")
	if a != 0 || b != 1 {
		t.Fatalf("node ids = %d, %d; want 0, 1", a, b)
	}
	id := mustLink(t, g, a, b, 2.5)
	if id != 0 {
		t.Fatalf("link id = %d; want 0", id)
	}
	if g.NumNodes() != 2 || g.NumLinks() != 1 {
		t.Fatalf("counts = %d nodes %d links; want 2, 1", g.NumNodes(), g.NumLinks())
	}
	if w := g.Weight(id); w != 2.5 {
		t.Fatalf("weight = %v; want 2.5", w)
	}
	if got := g.Link(id).Other(a); got != b {
		t.Fatalf("Other(a) = %d; want %d", got, b)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddLinkErrors(t *testing.T) {
	g := New(0, 0)
	a := g.AddNode("a")
	b := g.AddNode("b")
	cases := []struct {
		name string
		a, b NodeID
		w    float64
	}{
		{"self-loop", a, a, 1},
		{"unknown node", a, 99, 1},
		{"negative node", -1, b, 1},
		{"zero weight", a, b, 0},
		{"negative weight", a, b, -3},
	}
	for _, tc := range cases {
		if _, err := g.AddLink(tc.a, tc.b, tc.w); err == nil {
			t.Errorf("%s: AddLink succeeded, want error", tc.name)
		}
	}
}

func TestFreezeImmutability(t *testing.T) {
	g := triangle(t)
	if !g.Frozen() {
		t.Fatal("graph not frozen")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddNode after Freeze did not panic")
		}
	}()
	g.AddNode("x")
}

func TestFreezeSortsAdjacency(t *testing.T) {
	g := New(0, 0)
	a := g.AddNode("a")
	c := g.AddNode("c")
	b := g.AddNode("b")
	// Insert in scrambled order.
	mustLink(t, g, a, c, 1)
	mustLink(t, g, a, b, 1)
	g.Freeze()
	// Node IDs: a=0, c=1, b=2 — sorted adjacency is [c b].
	nbrs := g.Neighbors(a)
	if len(nbrs) != 2 || nbrs[0].Node != c || nbrs[1].Node != b {
		t.Fatalf("adjacency of a = %+v; want sorted by NodeID [c b]", nbrs)
	}
}

func TestOtherPanicsOnForeignNode(t *testing.T) {
	g := triangle(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	l := g.Link(0) // a-b
	l.Other(2)     // c is not an endpoint
}

func TestNodeByName(t *testing.T) {
	g := triangle(t)
	if got := g.NodeByName("b"); got != 1 {
		t.Fatalf("NodeByName(b) = %d; want 1", got)
	}
	if got := g.NodeByName("zzz"); got != NoNode {
		t.Fatalf("NodeByName(zzz) = %d; want NoNode", got)
	}
}

func TestFindLinkAndHasLink(t *testing.T) {
	g := triangle(t)
	if id := g.FindLink(0, 1); id != 0 {
		t.Fatalf("FindLink(0,1) = %d; want 0", id)
	}
	if id := g.FindLink(1, 0); id != 0 {
		t.Fatalf("FindLink(1,0) = %d; want 0 (undirected)", id)
	}
	if g.FindLink(0, 0) != NoLink {
		t.Fatal("FindLink(0,0) found a self-link")
	}
	if !g.HasLink(1, 2) || g.HasLink(0, 99) {
		t.Fatal("HasLink gave wrong answers")
	}
}

func TestParallelLinks(t *testing.T) {
	g := New(2, 2)
	a := g.AddNode("a")
	b := g.AddNode("b")
	l0 := mustLink(t, g, a, b, 5)
	l1 := mustLink(t, g, a, b, 1)
	g.Freeze()
	if g.Degree(a) != 2 {
		t.Fatalf("degree(a) = %d; want 2 (multigraph)", g.Degree(a))
	}
	// FindLink returns the lowest ID even though l1 is cheaper.
	if got := g.FindLink(a, b); got != l0 {
		t.Fatalf("FindLink = %d; want %d", got, l0)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	_ = l1
}

func TestCloneIndependence(t *testing.T) {
	g := triangle(t)
	c := g.Clone()
	if c.Frozen() {
		t.Fatal("clone should be mutable")
	}
	c.AddNode("d")
	if g.NumNodes() != 3 || c.NumNodes() != 4 {
		t.Fatalf("clone not independent: g=%d c=%d nodes", g.NumNodes(), c.NumNodes())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone Validate: %v", err)
	}
}

func TestDegreeExtremes(t *testing.T) {
	g := New(0, 0)
	if g.MinDegree() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty graph degree extremes should be 0")
	}
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	mustLink(t, g, a, b, 1)
	mustLink(t, g, a, c, 1)
	g.Freeze()
	if g.MinDegree() != 1 {
		t.Fatalf("MinDegree = %d; want 1", g.MinDegree())
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d; want 2", g.MaxDegree())
	}
}

func TestStringer(t *testing.T) {
	g := triangle(t)
	if s := g.String(); !strings.Contains(s, "3") {
		t.Fatalf("String() = %q; want node/link counts", s)
	}
}
