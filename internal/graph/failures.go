package graph

import (
	"fmt"
	"sort"
	"strings"
)

// FailureSet is the set of links considered down. Failures are bidirectional,
// matching the paper's §4 assumption. The zero value is an empty set ready
// for use; methods on a nil set treat it as empty for reads.
type FailureSet struct {
	down map[LinkID]bool
}

// NewFailureSet returns a failure set containing the given links.
func NewFailureSet(links ...LinkID) *FailureSet {
	f := &FailureSet{down: make(map[LinkID]bool, len(links))}
	for _, l := range links {
		f.down[l] = true
	}
	return f
}

// Add marks a link as failed.
func (f *FailureSet) Add(l LinkID) {
	if f.down == nil {
		f.down = make(map[LinkID]bool)
	}
	f.down[l] = true
}

// Remove marks a link as repaired.
func (f *FailureSet) Remove(l LinkID) {
	delete(f.down, l)
}

// Down reports whether link l is failed. A nil set has no failures.
func (f *FailureSet) Down(l LinkID) bool {
	if f == nil {
		return false
	}
	return f.down[l]
}

// Len returns the number of failed links.
func (f *FailureSet) Len() int {
	if f == nil {
		return 0
	}
	return len(f.down)
}

// Links returns the failed links in ascending order.
func (f *FailureSet) Links() []LinkID {
	if f == nil {
		return nil
	}
	out := make([]LinkID, 0, len(f.down))
	for l := range f.down {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an independent copy.
func (f *FailureSet) Clone() *FailureSet {
	c := NewFailureSet()
	if f == nil {
		return c
	}
	for l := range f.down {
		c.down[l] = true
	}
	return c
}

// String renders the set as e.g. "{3, 7}".
func (f *FailureSet) String() string {
	parts := make([]string, 0, f.Len())
	for _, l := range f.Links() {
		parts = append(parts, fmt.Sprintf("%d", l))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// FailNode returns a failure set in which every link incident to n is down.
// The paper models node failures this way (§4: failures are bidirectional;
// a dead router is indistinguishable from all its links failing).
func FailNode(g *Graph, n NodeID) *FailureSet {
	f := NewFailureSet()
	for _, nb := range g.Neighbors(n) {
		f.Add(nb.Link)
	}
	return f
}

// Surviving returns a copy of g with all failed links removed. Node IDs and
// names are preserved; link IDs are reassigned, so the result is only
// suitable for path computations (the reconvergence baseline), not for
// cross-referencing LinkIDs with the original graph.
func Surviving(g *Graph, failures *FailureSet) *Graph {
	s := New(g.NumNodes(), g.NumLinks()-failures.Len())
	for n := 0; n < g.NumNodes(); n++ {
		s.AddNode(g.Name(NodeID(n)))
	}
	for _, l := range g.Links() {
		if !failures.Down(l.ID) {
			s.MustAddLink(l.A, l.B, l.Weight)
		}
	}
	return s.Freeze()
}

// ConnectedUnder reports whether the graph remains connected when the failed
// links are removed. An empty graph is trivially connected.
func ConnectedUnder(g *Graph, failures *FailureSet) bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	visited := make([]bool, n)
	stack := []NodeID{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.Neighbors(u) {
			if failures.Down(nb.Link) || visited[nb.Node] {
				continue
			}
			visited[nb.Node] = true
			count++
			stack = append(stack, nb.Node)
		}
	}
	return count == n
}

// ReachableUnder returns the set of nodes reachable from src when the failed
// links are removed, as a boolean slice indexed by NodeID.
func ReachableUnder(g *Graph, src NodeID, failures *FailureSet) []bool {
	visited := make([]bool, g.NumNodes())
	if !g.validNode(src) {
		return visited
	}
	stack := []NodeID{src}
	visited[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.Neighbors(u) {
			if failures.Down(nb.Link) || visited[nb.Node] {
				continue
			}
			visited[nb.Node] = true
			stack = append(stack, nb.Node)
		}
	}
	return visited
}

// Connected reports whether g is connected.
func Connected(g *Graph) bool { return ConnectedUnder(g, nil) }
