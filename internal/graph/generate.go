package graph

import (
	"fmt"
	"math/rand"
)

// Generators for synthetic topologies used by tests, property checks and the
// ablation benchmarks. All generators return frozen graphs with unit weights
// unless documented otherwise, and all randomness is seeded.

// Ring returns the n-cycle C_n (n ≥ 3). Rings are the smallest 2-connected
// graphs and embed on the sphere with exactly two faces.
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: ring size %d < 3", n))
	}
	g := New(n, n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("r%d", i))
	}
	for i := 0; i < n; i++ {
		g.MustAddLink(NodeID(i), NodeID((i+1)%n), 1)
	}
	return g.Freeze()
}

// Grid returns the rows×cols grid graph. Grids are planar and 2-connected
// for rows, cols ≥ 2.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("graph: grid dimensions must be positive")
	}
	g := New(rows*cols, 2*rows*cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(fmt.Sprintf("g%d_%d", r, c))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddLink(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				g.MustAddLink(id(r, c), id(r+1, c), 1)
			}
		}
	}
	return g.Freeze()
}

// Torus returns the rows×cols toroidal grid (wrap-around in both
// dimensions). Tori are non-planar for rows, cols ≥ 3 and embed on the
// genus-1 surface — a natural stress case for the embedding machinery.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: torus dimensions must be ≥ 3")
	}
	g := New(rows*cols, 2*rows*cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(fmt.Sprintf("t%d_%d", r, c))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.MustAddLink(id(r, c), id(r, (c+1)%cols), 1)
			g.MustAddLink(id(r, c), id((r+1)%rows, c), 1)
		}
	}
	return g.Freeze()
}

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n, n*(n-1)/2)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("k%d", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddLink(NodeID(i), NodeID(j), 1)
		}
	}
	return g.Freeze()
}

// CompleteBipartite returns K_{a,b}. K_{3,3} is the smallest non-planar
// graph together with K5; both are embedding-test staples.
func CompleteBipartite(a, b int) *Graph {
	g := New(a+b, a*b)
	for i := 0; i < a; i++ {
		g.AddNode(fmt.Sprintf("l%d", i))
	}
	for j := 0; j < b; j++ {
		g.AddNode(fmt.Sprintf("r%d", j))
	}
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.MustAddLink(NodeID(i), NodeID(a+j), 1)
		}
	}
	return g.Freeze()
}

// RandomTwoConnected returns a random 2-edge-connected graph with n nodes
// and approximately m links: a Hamiltonian ring (guaranteeing
// 2-edge-connectivity) plus m-n random chords. Weights are uniform in
// [1, 10). Deterministic for a given seed.
func RandomTwoConnected(n, m int, seed int64) *Graph {
	if n < 3 {
		panic("graph: random 2-connected graph needs n ≥ 3")
	}
	if m < n {
		m = n
	}
	maxLinks := n * (n - 1) / 2
	if m > maxLinks {
		m = maxLinks
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n, m)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i))
	}
	perm := rng.Perm(n)
	weight := func() float64 { return 1 + 9*rng.Float64() }
	for i := 0; i < n; i++ {
		g.MustAddLink(NodeID(perm[i]), NodeID(perm[(i+1)%n]), weight())
	}
	for g.NumLinks() < m {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a == b || g.HasLink(a, b) {
			continue
		}
		g.MustAddLink(a, b, weight())
	}
	return g.Freeze()
}

// RandomPlanarLike returns a random maximal-degree-bounded planar-ish graph
// built by triangulating a ring: every new chord connects ring-adjacent
// spans. It is planar by construction (outerplanar plus nested chords),
// giving the LR planarity embedder realistic positive cases.
func RandomPlanarLike(n int, seed int64) *Graph {
	if n < 3 {
		panic("graph: planar-like graph needs n ≥ 3")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n, 2*n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("p%d", i))
	}
	for i := 0; i < n; i++ {
		g.MustAddLink(NodeID(i), NodeID((i+1)%n), 1)
	}
	// Fan triangulation of random sub-intervals keeps the graph planar:
	// chords (lo, k) for k in (lo+2 .. hi) drawn inside the disc never cross.
	var addFan func(lo, hi int)
	addFan = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		for k := lo + 2; k <= hi; k++ {
			if rng.Float64() < 0.5 && !g.HasLink(NodeID(lo), NodeID(k%n)) && lo != k%n {
				g.MustAddLink(NodeID(lo), NodeID(k%n), 1)
			}
		}
	}
	addFan(0, n-1)
	return g.Freeze()
}
