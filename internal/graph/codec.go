package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text codec reads and writes a minimal edge-list format so topologies
// can be shipped as plain files and fed to the cmd/ tools:
//
//	# comment
//	node <name>
//	link <nameA> <nameB> <weight>
//
// Node lines are optional; link lines auto-create unknown nodes. Names must
// not contain whitespace. Weights must be positive.

// Parse reads a graph in edge-list format.
func Parse(r io.Reader) (*Graph, error) {
	g := New(0, 0)
	byName := make(map[string]NodeID)
	node := func(name string) NodeID {
		if id, ok := byName[name]; ok {
			return id
		}
		id := g.AddNode(name)
		byName[name] = id
		return id
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want 'node <name>'", lineNo)
			}
			if _, dup := byName[fields[1]]; dup {
				return nil, fmt.Errorf("graph: line %d: duplicate node %q", lineNo, fields[1])
			}
			node(fields[1])
		case "link":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want 'link <a> <b> <weight>'", lineNo)
			}
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[3], err)
			}
			if _, err := g.AddLink(node(fields[1]), node(fields[2]), w); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g.Freeze(), nil
}

// ParseString is Parse over an in-memory string.
func ParseString(s string) (*Graph, error) { return Parse(strings.NewReader(s)) }

// Write serialises g in the edge-list format accepted by Parse. Nodes are
// written first (preserving IDs on round-trip), then links in ID order.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	names := make([]string, g.NumNodes())
	for i := range names {
		names[i] = g.Name(NodeID(i))
	}
	if err := checkWritableNames(names); err != nil {
		return err
	}
	for _, n := range names {
		fmt.Fprintf(bw, "node %s\n", n)
	}
	for _, l := range g.Links() {
		fmt.Fprintf(bw, "link %s %s %g\n", g.Name(l.A), g.Name(l.B), l.Weight)
	}
	return bw.Flush()
}

func checkWritableNames(names []string) error {
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "" || strings.ContainsAny(n, " \t\n") {
			return fmt.Errorf("graph: node name %q not writable in edge-list format", n)
		}
		if seen[n] {
			return fmt.Errorf("graph: duplicate node name %q not writable", n)
		}
		seen[n] = true
	}
	return nil
}

// FormatLink renders a link as "A-B" using node names, for logs and error
// messages.
func FormatLink(g *Graph, id LinkID) string {
	l := g.Link(id)
	return g.Name(l.A) + "-" + g.Name(l.B)
}

// SortedLinkNames renders a failure set as human-readable link names, used
// by reports.
func SortedLinkNames(g *Graph, fs *FailureSet) []string {
	var names []string
	for _, id := range fs.Links() {
		names = append(names, FormatLink(g, id))
	}
	sort.Strings(names)
	return names
}
