package graph

import (
	"math"
	"testing"
)

func TestShortestPathTreeLine(t *testing.T) {
	// a -1- b -2- c; tree rooted at c.
	g := New(3, 2)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	mustLink(t, g, a, b, 1)
	mustLink(t, g, b, c, 2)
	g.Freeze()

	tr := ShortestPathTree(g, c, nil)
	if tr.Dist[a] != 3 || tr.Dist[b] != 2 || tr.Dist[c] != 0 {
		t.Fatalf("dist = %v; want [3 2 0]", tr.Dist)
	}
	if tr.Hops[a] != 2 || tr.Hops[b] != 1 || tr.Hops[c] != 0 {
		t.Fatalf("hops = %v; want [2 1 0]", tr.Hops)
	}
	if tr.NextNode[a] != b || tr.NextNode[b] != c || tr.NextNode[c] != NoNode {
		t.Fatalf("next nodes wrong: %v", tr.NextNode)
	}
	path := tr.Path(a)
	if len(path) != 3 || path[0] != a || path[2] != c {
		t.Fatalf("Path(a) = %v", path)
	}
	links := tr.PathLinks(a)
	if len(links) != 2 || links[0] != 0 || links[1] != 1 {
		t.Fatalf("PathLinks(a) = %v", links)
	}
}

func TestShortestPathPrefersCheaperRoute(t *testing.T) {
	// a-b direct weight 10; a-c-b weight 2+2.
	g := New(3, 3)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	mustLink(t, g, a, b, 10)
	mustLink(t, g, a, c, 2)
	mustLink(t, g, c, b, 2)
	g.Freeze()
	tr := ShortestPathTree(g, b, nil)
	if tr.Dist[a] != 4 {
		t.Fatalf("dist a→b = %v; want 4", tr.Dist[a])
	}
	if tr.NextNode[a] != c {
		t.Fatalf("a's next hop = %v; want c", tr.NextNode[a])
	}
	if tr.Hops[a] != 2 {
		t.Fatalf("a's hop discriminator = %d; want 2", tr.Hops[a])
	}
}

func TestShortestPathDeterministicTieBreak(t *testing.T) {
	// Two equal-cost paths from a to d: via b (node 1) and via c (node 2).
	// The tie-break must choose the smaller next-hop node, b.
	g := New(4, 4)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	mustLink(t, g, a, b, 1)
	mustLink(t, g, a, c, 1)
	mustLink(t, g, b, d, 1)
	mustLink(t, g, c, d, 1)
	g.Freeze()
	for i := 0; i < 10; i++ {
		tr := ShortestPathTree(g, d, nil)
		if tr.NextNode[a] != b {
			t.Fatalf("run %d: a's next hop = %v; want b (deterministic tie-break)", i, tr.NextNode[a])
		}
	}
}

func TestShortestPathUnderFailures(t *testing.T) {
	g := Ring(5)
	// Ring 0-1-2-3-4-0; fail link 0 (0-1): node 1 must reach 0 the long way.
	tr := ShortestPathTree(g, 0, NewFailureSet(0))
	if tr.Dist[1] != 4 {
		t.Fatalf("dist 1→0 with 0-1 failed = %v; want 4", tr.Dist[1])
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3, 1)
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddNode("island")
	mustLink(t, g, a, b, 1)
	g.Freeze()
	tr := ShortestPathTree(g, a, nil)
	if tr.Reachable(2) {
		t.Fatal("island reported reachable")
	}
	if !math.IsInf(tr.Dist[2], 1) || tr.Hops[2] != -1 {
		t.Fatalf("island dist/hops = %v/%d; want +Inf/-1", tr.Dist[2], tr.Hops[2])
	}
	if tr.Path(2) != nil || tr.PathLinks(2) != nil {
		t.Fatal("paths from unreachable node should be nil")
	}
}

func TestUsesLink(t *testing.T) {
	g := Ring(4) // links: 0:0-1, 1:1-2, 2:2-3, 3:3-0
	tr := ShortestPathTree(g, 0, nil)
	if !tr.UsesLink(1, 0) {
		t.Fatal("path 1→0 should use link 0")
	}
	if tr.UsesLink(1, 2) {
		t.Fatal("path 1→0 should not use link 2")
	}
	if tr.UsesLink(0, 0) {
		t.Fatal("destination uses no links")
	}
}

// TestDijkstraAgreesWithFloydWarshall cross-checks the two shortest-path
// implementations on seeded random graphs.
func TestDijkstraAgreesWithFloydWarshall(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := RandomTwoConnected(12, 22, seed)
		ap := AllPairs(g, nil)
		for dest := 0; dest < g.NumNodes(); dest++ {
			tr := ShortestPathTree(g, NodeID(dest), nil)
			for src := 0; src < g.NumNodes(); src++ {
				want := ap[src][dest]
				got := tr.Dist[src]
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("seed %d: dist %d→%d: dijkstra %v, floyd-warshall %v", seed, src, dest, got, want)
				}
			}
		}
	}
}

// TestTreePathCostsMatchDist verifies that walking the tree reproduces the
// claimed distances and hop counts.
func TestTreePathCostsMatchDist(t *testing.T) {
	g := RandomTwoConnected(15, 30, 42)
	tr := ShortestPathTree(g, 3, nil)
	for src := 0; src < g.NumNodes(); src++ {
		links := tr.PathLinks(NodeID(src))
		sum := 0.0
		for _, l := range links {
			sum += g.Weight(l)
		}
		if math.Abs(sum-tr.Dist[src]) > 1e-9 {
			t.Fatalf("src %d: path weight %v != dist %v", src, sum, tr.Dist[src])
		}
		if len(links) != tr.Hops[src] {
			t.Fatalf("src %d: path hops %d != hops %d", src, len(links), tr.Hops[src])
		}
	}
}

func TestHopDiameter(t *testing.T) {
	if d := HopDiameter(Ring(6)); d != 3 {
		t.Fatalf("diameter of C6 = %d; want 3", d)
	}
	if d := HopDiameter(Complete(5)); d != 1 {
		t.Fatalf("diameter of K5 = %d; want 1", d)
	}
	if d := HopDiameter(Grid(3, 4)); d != 5 {
		t.Fatalf("diameter of 3x4 grid = %d; want 5", d)
	}
	// Disconnected.
	g := New(2, 0)
	g.AddNode("a")
	g.AddNode("b")
	g.Freeze()
	if d := HopDiameter(g); d != -1 {
		t.Fatalf("diameter of disconnected graph = %d; want -1", d)
	}
	// Trivial.
	single := New(1, 0)
	single.AddNode("only")
	single.Freeze()
	if d := HopDiameter(single); d != 0 {
		t.Fatalf("diameter of single node = %d; want 0", d)
	}
}

func TestHopDistances(t *testing.T) {
	g := Grid(2, 3)
	d := HopDistances(g, 0, nil)
	// Node 5 is the far corner of the 2x3 grid: 3 hops away.
	if d[5] != 3 {
		t.Fatalf("hop distance to far corner = %d; want 3", d[5])
	}
}

func TestAllPairsRespectsFailures(t *testing.T) {
	g := Ring(4)
	ap := AllPairs(g, NewFailureSet(0)) // fail 0-1
	if ap[0][1] != 3 {
		t.Fatalf("dist 0→1 with link 0 failed = %v; want 3", ap[0][1])
	}
}
