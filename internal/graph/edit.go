package graph

import "fmt"

// EditKind discriminates topology edits.
type EditKind int

const (
	// EditWeight changes the weight of an existing link.
	EditWeight EditKind = iota
	// EditAddLink adds a new link between two existing nodes.
	EditAddLink
	// EditRemoveLink removes an existing link. Link IDs above the removed
	// one shift down by one (IDs stay dense); ApplyEdits returns the
	// mapping.
	EditRemoveLink
)

// String names the edit kind.
func (k EditKind) String() string {
	switch k {
	case EditWeight:
		return "weight"
	case EditAddLink:
		return "add"
	case EditRemoveLink:
		return "remove"
	}
	return fmt.Sprintf("EditKind(%d)", int(k))
}

// Edit is one planned topology change — the unit of maintenance the
// incremental recompiler consumes. Link references are in the ID space of
// the graph the edit set is applied to; edits within one ApplyEdits batch
// all reference that original space.
type Edit struct {
	Kind EditKind
	// Link is the target of EditWeight / EditRemoveLink.
	Link LinkID
	// A, B are the endpoints of EditAddLink.
	A, B NodeID
	// Weight is the new weight for EditWeight / EditAddLink.
	Weight float64
}

// SetWeight returns the edit changing link l's weight to w.
func SetWeight(l LinkID, w float64) Edit { return Edit{Kind: EditWeight, Link: l, Weight: w} }

// AddLinkEdit returns the edit adding an a–b link of weight w.
func AddLinkEdit(a, b NodeID, w float64) Edit {
	return Edit{Kind: EditAddLink, A: a, B: b, Weight: w}
}

// RemoveLinkEdit returns the edit removing link l.
func RemoveLinkEdit(l LinkID) Edit { return Edit{Kind: EditRemoveLink, Link: l} }

// String renders the edit for logs.
func (e Edit) String() string {
	switch e.Kind {
	case EditWeight:
		return fmt.Sprintf("weight(link %d → %g)", e.Link, e.Weight)
	case EditAddLink:
		return fmt.Sprintf("add(%d–%d @ %g)", e.A, e.B, e.Weight)
	case EditRemoveLink:
		return fmt.Sprintf("remove(link %d)", e.Link)
	}
	return fmt.Sprintf("edit(kind %d)", int(e.Kind))
}

// Structural reports whether the edit changes the link set (and therefore
// the dart space and the embedding), as opposed to only link weights.
func (e Edit) Structural() bool { return e.Kind != EditWeight }

// validate checks one edit against the graph it will be applied to.
func (e Edit) validate(g *Graph) error {
	switch e.Kind {
	case EditWeight, EditRemoveLink:
		if e.Link < 0 || int(e.Link) >= g.NumLinks() {
			return fmt.Errorf("graph: edit %v references unknown link", e)
		}
		if e.Kind == EditWeight && e.Weight <= 0 {
			return fmt.Errorf("graph: edit %v has non-positive weight", e)
		}
	case EditAddLink:
		if !g.validNode(e.A) || !g.validNode(e.B) {
			return fmt.Errorf("graph: edit %v references unknown node", e)
		}
		if e.A == e.B {
			return fmt.Errorf("graph: edit %v is a self-loop", e)
		}
		if e.Weight <= 0 {
			return fmt.Errorf("graph: edit %v has non-positive weight", e)
		}
	default:
		return fmt.Errorf("graph: unknown edit kind %d", int(e.Kind))
	}
	return nil
}

// ApplyEdit applies a single edit to a frozen graph and returns the edited
// frozen clone plus the link-ID mapping from g's space to the new graph's
// (NoLink for a removed link). Weight changes and additions keep every
// existing ID; a removal shifts the IDs above it down by one.
func ApplyEdit(g *Graph, e Edit) (*Graph, []LinkID, error) {
	if err := e.validate(g); err != nil {
		return nil, nil, err
	}
	linkMap := make([]LinkID, g.NumLinks())
	for i := range linkMap {
		linkMap[i] = LinkID(i)
	}
	if e.Kind == EditWeight && g.Frozen() {
		// Weight-only fast path: adjacency and names are weight-free, so
		// the edited graph shares them and clones just the link table —
		// the delta recompiler applies thousands of these.
		links := append([]Link(nil), g.links...)
		links[e.Link].Weight = e.Weight
		return &Graph{names: g.names, links: links, adj: g.adj, frozen: true}, linkMap, nil
	}
	out := New(g.NumNodes(), g.NumLinks()+1)
	for n := 0; n < g.NumNodes(); n++ {
		out.AddNode(g.Name(NodeID(n)))
	}
	for _, l := range g.Links() {
		if e.Kind == EditRemoveLink && l.ID == e.Link {
			linkMap[l.ID] = NoLink
			continue
		}
		w := l.Weight
		if e.Kind == EditWeight && l.ID == e.Link {
			w = e.Weight
		}
		linkMap[l.ID] = out.MustAddLink(l.A, l.B, w)
	}
	if e.Kind == EditAddLink {
		if _, err := out.AddLink(e.A, e.B, e.Weight); err != nil {
			return nil, nil, err
		}
	}
	return out.Freeze(), linkMap, nil
}

// ApplyEdits applies a sequence of edits (each referencing the ID space of
// the graph before it, i.e. edits see the effect of earlier edits in the
// batch) and returns the final graph plus the composed link-ID mapping
// from g's original space (NoLink for links removed anywhere in the
// batch).
func ApplyEdits(g *Graph, edits []Edit) (*Graph, []LinkID, error) {
	cur := g
	composed := make([]LinkID, g.NumLinks())
	for i := range composed {
		composed[i] = LinkID(i)
	}
	for _, e := range edits {
		next, m, err := ApplyEdit(cur, e)
		if err != nil {
			return nil, nil, err
		}
		for i, old := range composed {
			if old != NoLink {
				composed[i] = m[old]
			}
		}
		cur = next
	}
	return cur, composed, nil
}
