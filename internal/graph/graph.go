// Package graph provides the weighted undirected graph substrate used by the
// Packet Re-cycling reproduction: adjacency storage, shortest paths,
// connectivity analysis, and failure-scenario sampling.
//
// Nodes are dense integer indices [0, NumNodes). Every undirected link is
// identified by a LinkID (its insertion index) and induces two directed
// "darts" (see package rotation). Graphs are immutable once Freeze is called,
// which lets downstream packages (routing tables, embeddings, simulators)
// share them safely across goroutines.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node; dense indices starting at zero.
type NodeID int

// LinkID identifies an undirected link by insertion order.
type LinkID int

// Invalid sentinel values returned by lookups that find nothing.
const (
	NoNode NodeID = -1
	NoLink LinkID = -1
)

// Link is an undirected weighted edge between two nodes.
type Link struct {
	ID     LinkID
	A, B   NodeID
	Weight float64
}

// Other returns the endpoint of l that is not n. It panics if n is not an
// endpoint of l, which always indicates a programming error upstream.
func (l Link) Other(n NodeID) NodeID {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of link %d (%d-%d)", n, l.ID, l.A, l.B))
}

// Incident reports whether n is one of l's endpoints.
func (l Link) Incident(n NodeID) bool { return l.A == n || l.B == n }

// Neighbor is one entry in a node's adjacency list.
type Neighbor struct {
	Node NodeID // the node on the far side of the link
	Link LinkID // the connecting link
}

// Graph is a weighted undirected graph. The zero value is an empty graph
// ready for use; add nodes and links, then call Freeze before handing it to
// consumers that require immutability.
type Graph struct {
	names  []string
	links  []Link
	adj    [][]Neighbor
	frozen bool
}

// New returns an empty mutable graph with capacity hints for n nodes and m
// links. Hints may be zero.
func New(n, m int) *Graph {
	return &Graph{
		names: make([]string, 0, n),
		links: make([]Link, 0, m),
		adj:   make([][]Neighbor, 0, n),
	}
}

// AddNode appends a node with the given human-readable name and returns its
// identifier. Names need not be unique, but topology loaders enforce
// uniqueness for lookup friendliness.
func (g *Graph) AddNode(name string) NodeID {
	g.mustBeMutable()
	id := NodeID(len(g.names))
	g.names = append(g.names, name)
	g.adj = append(g.adj, nil)
	return id
}

// AddLink connects a and b with the given positive weight and returns the new
// link's identifier. Self-loops are rejected: they are meaningless for
// routing and break the cellular-embedding machinery's assumption that every
// dart has a distinct reverse.
func (g *Graph) AddLink(a, b NodeID, weight float64) (LinkID, error) {
	g.mustBeMutable()
	if a == b {
		return NoLink, fmt.Errorf("graph: self-loop on node %d rejected", a)
	}
	if !g.validNode(a) || !g.validNode(b) {
		return NoLink, fmt.Errorf("graph: link %d-%d references unknown node", a, b)
	}
	if weight <= 0 {
		return NoLink, fmt.Errorf("graph: link %d-%d has non-positive weight %v", a, b, weight)
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, A: a, B: b, Weight: weight})
	g.adj[a] = append(g.adj[a], Neighbor{Node: b, Link: id})
	g.adj[b] = append(g.adj[b], Neighbor{Node: a, Link: id})
	return id, nil
}

// MustAddLink is AddLink for statically known-good inputs (topology tables,
// tests); it panics on error.
func (g *Graph) MustAddLink(a, b NodeID, weight float64) LinkID {
	id, err := g.AddLink(a, b, weight)
	if err != nil {
		panic(err)
	}
	return id
}

// Freeze marks the graph immutable. Further AddNode/AddLink calls panic.
// Freeze also canonicalises adjacency order (by neighbor node, then link ID)
// so that algorithms iterate deterministically regardless of insertion order.
// It returns g for chaining.
func (g *Graph) Freeze() *Graph {
	if g.frozen {
		return g
	}
	for _, nbrs := range g.adj {
		sort.Slice(nbrs, func(i, j int) bool {
			if nbrs[i].Node != nbrs[j].Node {
				return nbrs[i].Node < nbrs[j].Node
			}
			return nbrs[i].Link < nbrs[j].Link
		})
	}
	g.frozen = true
	return g
}

// Frozen reports whether Freeze has been called.
func (g *Graph) Frozen() bool { return g.frozen }

func (g *Graph) mustBeMutable() {
	if g.frozen {
		panic("graph: mutation after Freeze")
	}
}

func (g *Graph) validNode(n NodeID) bool { return n >= 0 && int(n) < len(g.names) }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumLinks returns the undirected link count.
func (g *Graph) NumLinks() int { return len(g.links) }

// Name returns the node's human-readable name.
func (g *Graph) Name(n NodeID) string { return g.names[n] }

// NodeByName returns the first node with the given name, or NoNode.
func (g *Graph) NodeByName(name string) NodeID {
	for i, s := range g.names {
		if s == name {
			return NodeID(i)
		}
	}
	return NoNode
}

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Links returns the underlying link slice. Callers must not modify it.
func (g *Graph) Links() []Link { return g.links }

// Neighbors returns n's adjacency list. Callers must not modify it. After
// Freeze the list is sorted by (neighbor, link).
func (g *Graph) Neighbors(n NodeID) []Neighbor { return g.adj[n] }

// Degree returns the number of links incident to n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// FindLink returns the lowest-ID link joining a and b, or NoLink.
func (g *Graph) FindLink(a, b NodeID) LinkID {
	if !g.validNode(a) || !g.validNode(b) {
		return NoLink
	}
	best := NoLink
	for _, nb := range g.adj[a] {
		if nb.Node == b && (best == NoLink || nb.Link < best) {
			best = nb.Link
		}
	}
	return best
}

// HasLink reports whether at least one link joins a and b.
func (g *Graph) HasLink(a, b NodeID) bool { return g.FindLink(a, b) != NoLink }

// Weight returns the weight of link id.
func (g *Graph) Weight(id LinkID) float64 { return g.links[id].Weight }

// MinDegree returns the smallest node degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	min := g.Degree(0)
	for n := 1; n < len(g.adj); n++ {
		if d := g.Degree(NodeID(n)); d < min {
			min = d
		}
	}
	return min
}

// MaxDegree returns the largest node degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for n := range g.adj {
		if d := g.Degree(NodeID(n)); d > max {
			max = d
		}
	}
	return max
}

// Clone returns a deep, mutable copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.NumNodes(), g.NumLinks())
	c.names = append(c.names, g.names...)
	c.links = append(c.links, g.links...)
	c.adj = make([][]Neighbor, len(g.adj))
	for i, nbrs := range g.adj {
		c.adj[i] = append([]Neighbor(nil), nbrs...)
	}
	return c
}

// String summarises the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes: %d, links: %d}", g.NumNodes(), g.NumLinks())
}

// ErrDisconnected is returned by algorithms that require a connected graph.
var ErrDisconnected = errors.New("graph: graph is not connected")

// Validate performs structural sanity checks: adjacency symmetry, link
// endpoint validity, and ID density. It is used by tests and topology
// loaders; a healthy Graph built through AddNode/AddLink always passes.
func (g *Graph) Validate() error {
	for i, l := range g.links {
		if LinkID(i) != l.ID {
			return fmt.Errorf("graph: link %d stored at index %d", l.ID, i)
		}
		if !g.validNode(l.A) || !g.validNode(l.B) {
			return fmt.Errorf("graph: link %d has invalid endpoints %d-%d", l.ID, l.A, l.B)
		}
		if l.A == l.B {
			return fmt.Errorf("graph: link %d is a self-loop", l.ID)
		}
		if l.Weight <= 0 {
			return fmt.Errorf("graph: link %d has non-positive weight %v", l.ID, l.Weight)
		}
	}
	seen := make(map[[2]int]int)
	for n, nbrs := range g.adj {
		for _, nb := range nbrs {
			l := g.links[nb.Link]
			if !l.Incident(NodeID(n)) || l.Other(NodeID(n)) != nb.Node {
				return fmt.Errorf("graph: adjacency of node %d disagrees with link %d", n, nb.Link)
			}
			seen[[2]int{n, int(nb.Link)}]++
		}
	}
	for _, l := range g.links {
		if seen[[2]int{int(l.A), int(l.ID)}] != 1 || seen[[2]int{int(l.B), int(l.ID)}] != 1 {
			return fmt.Errorf("graph: link %d not represented exactly once per endpoint", l.ID)
		}
	}
	return nil
}
