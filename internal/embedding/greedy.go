package embedding

import (
	"recycle/internal/graph"
	"recycle/internal/rotation"
)

// Greedy builds an embedding incrementally: a spanning forest first (always
// embeddable with one face per component), then each remaining chord at the
// pair of insertion positions that maximises the resulting face count.
// Inserting a chord across an existing face splits it (face count +1, genus
// unchanged); when no such slot exists the least-damaging merge is chosen.
// Because single-pass insertion is myopic, construction is followed by
// remove-and-reinsert improvement sweeps, which are monotone in face count
// and therefore terminate.
//
// Greedy is exact on trees and rings and very close to minimum genus on the
// sparse, near-planar topologies of real ISP backbones; the Annealer can
// polish its result further.
type Greedy struct {
	// Sweeps bounds the improvement passes after construction; zero
	// selects the default of 4.
	Sweeps int
}

// Name implements Embedder.
func (Greedy) Name() string { return "greedy-faces" }

// Embed implements Embedder.
func (gr Greedy) Embed(g *graph.Graph) (*rotation.System, error) {
	tree, chords := spanningForestSplit(g)
	orders := make([][]rotation.DartID, g.NumNodes())
	for _, l := range tree {
		insertLinkAt(g, orders, l, len(orders[g.Link(l).A]), len(orders[g.Link(l).B]))
	}
	for _, l := range chords {
		i, j, _ := bestInsertion(g, orders, l)
		insertLinkAt(g, orders, l, i, j)
	}

	// Improvement sweeps: pull each link out and re-insert it at its best
	// slot pair. Face count never decreases, so the loop terminates; stop
	// early on a pass with no improvement.
	sweeps := gr.Sweeps
	if sweeps == 0 {
		sweeps = 4
	}
	current := countPartialFaces(g, orders)
	for pass := 0; pass < sweeps; pass++ {
		improved := false
		for _, l := range g.Links() {
			removeLink(orders, l.ID)
			i, j, faces := bestInsertion(g, orders, l.ID)
			insertLinkAt(g, orders, l.ID, i, j)
			if faces > current {
				current = faces
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	linkOrders := make([][]graph.LinkID, g.NumNodes())
	for n, darts := range orders {
		linkOrders[n] = make([]graph.LinkID, len(darts))
		for i, d := range darts {
			linkOrders[n][i] = rotation.LinkOf(d)
		}
	}
	return rotation.FromLinkOrders(g, linkOrders)
}

// bestInsertion exhaustively evaluates all slot pairs for link l against the
// partial embedding and returns the face-maximising pair.
func bestInsertion(g *graph.Graph, orders [][]rotation.DartID, l graph.LinkID) (bestI, bestJ, bestFaces int) {
	a, b := g.Link(l).A, g.Link(l).B
	bestFaces = -1
	for i := 0; i <= len(orders[a]); i++ {
		for j := 0; j <= len(orders[b]); j++ {
			if f := facesWithInsertion(g, orders, l, i, j); f > bestFaces {
				bestFaces, bestI, bestJ = f, i, j
			}
		}
	}
	return bestI, bestJ, bestFaces
}

// removeLink deletes both darts of link l from the partial orders.
func removeLink(orders [][]rotation.DartID, l graph.LinkID) {
	ab, ba := rotation.DartsOf(l)
	for n, darts := range orders {
		out := darts[:0]
		for _, d := range darts {
			if d != ab && d != ba {
				out = append(out, d)
			}
		}
		orders[n] = out
	}
}

// countPartialFaces counts φ orbits over the darts currently present.
func countPartialFaces(g *graph.Graph, orders [][]rotation.DartID) int {
	next := make(map[rotation.DartID]rotation.DartID, 2*g.NumLinks())
	for _, darts := range orders {
		for k, d := range darts {
			next[d] = darts[(k+1)%len(darts)]
		}
	}
	seen := make(map[rotation.DartID]bool, len(next))
	faces := 0
	for d := range next {
		if seen[d] {
			continue
		}
		faces++
		for e := d; !seen[e]; e = next[rotation.ReverseID(e)] {
			seen[e] = true
		}
	}
	return faces
}

// spanningForestSplit partitions links into a BFS spanning forest (in
// discovery order) and the remaining chords (in ID order).
func spanningForestSplit(g *graph.Graph) (tree, chords []graph.LinkID) {
	inTree := make([]bool, g.NumLinks())
	visited := make([]bool, g.NumNodes())
	for s := 0; s < g.NumNodes(); s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue := []graph.NodeID{graph.NodeID(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, nb := range g.Neighbors(u) {
				if visited[nb.Node] {
					continue
				}
				visited[nb.Node] = true
				inTree[nb.Link] = true
				tree = append(tree, nb.Link)
				queue = append(queue, nb.Node)
			}
		}
	}
	for _, l := range g.Links() {
		if !inTree[l.ID] {
			chords = append(chords, l.ID)
		}
	}
	return tree, chords
}

// insertLinkAt inserts link l's darts into the partial rotation orders at
// slot i of endpoint A's order and slot j of endpoint B's.
func insertLinkAt(g *graph.Graph, orders [][]rotation.DartID, l graph.LinkID, i, j int) {
	lk := g.Link(l)
	ab, ba := rotation.DartsOf(l)
	orders[lk.A] = insertAt(orders[lk.A], i, ab)
	orders[lk.B] = insertAt(orders[lk.B], j, ba)
}

func insertAt(s []rotation.DartID, i int, d rotation.DartID) []rotation.DartID {
	s = append(s, rotation.NoDart)
	copy(s[i+1:], s[i:])
	s[i] = d
	return s
}

// facesWithInsertion counts the faces of the partial embedding that would
// result from inserting link l at slots (i, j), without mutating orders.
func facesWithInsertion(g *graph.Graph, orders [][]rotation.DartID, l graph.LinkID, i, j int) int {
	lk := g.Link(l)
	a := insertAt(append([]rotation.DartID(nil), orders[lk.A]...), i, rotation.DartID(2*l))
	b := insertAt(append([]rotation.DartID(nil), orders[lk.B]...), j, rotation.DartID(2*l+1))
	next := make(map[rotation.DartID]rotation.DartID, 2*(g.NumLinks()+1))
	addOrbit := func(darts []rotation.DartID) {
		for k, d := range darts {
			next[d] = darts[(k+1)%len(darts)]
		}
	}
	for n, darts := range orders {
		switch graph.NodeID(n) {
		case lk.A, lk.B:
			// replaced below
		default:
			addOrbit(darts)
		}
	}
	addOrbit(a)
	addOrbit(b)
	// Trace φ(d) = σ(reverse(d)) over the inserted darts only.
	seen := make(map[rotation.DartID]bool, len(next))
	faces := 0
	for d := range next {
		if seen[d] {
			continue
		}
		faces++
		for e := d; !seen[e]; e = next[rotation.ReverseID(e)] {
			seen[e] = true
		}
	}
	return faces
}
