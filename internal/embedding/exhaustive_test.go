package embedding

import (
	"errors"
	"testing"

	"recycle/internal/graph"
)

// TestExhaustiveKnownGenera pins the orientable genus of classic graphs —
// ground truth the heuristics are measured against.
func TestExhaustiveKnownGenera(t *testing.T) {
	cases := []struct {
		name  string
		g     *graph.Graph
		genus int
	}{
		{"K4", graph.Complete(4), 0},
		{"K5", graph.Complete(5), 1},
		{"K33", graph.CompleteBipartite(3, 3), 1},
		{"C7", graph.Ring(7), 0},
		{"petersen", petersen(), 1},
		{"grid2x3", graph.Grid(2, 3), 0},
	}
	for _, tc := range cases {
		got, err := MinimumGenus(tc.g, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.genus {
			t.Errorf("%s: minimum genus = %d; want %d", tc.name, got, tc.genus)
		}
	}
}

// TestExhaustiveGroundTruthsHeuristics: on graphs small enough for exact
// search, the heuristics must stay within one handle of optimal.
func TestExhaustiveGroundTruthsHeuristics(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Complete(5),
		graph.CompleteBipartite(3, 3),
		petersen(),
	}
	for i, g := range graphs {
		exact, err := MinimumGenus(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := (Greedy{}).Embed(g)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Genus() > exact+1 {
			t.Errorf("case %d: greedy genus %d vs exact %d (slack > 1)", i, greedy.Genus(), exact)
		}
		annealed, err := Annealer{Seed: 5, Iterations: 20000}.Embed(g)
		if err != nil {
			t.Fatal(err)
		}
		if annealed.Genus() > exact+1 {
			t.Errorf("case %d: annealed genus %d vs exact %d (slack > 1)", i, annealed.Genus(), exact)
		}
	}
}

func TestExhaustiveBudget(t *testing.T) {
	// K6 has (4!)^6 ≈ 1.9e8 systems; a tiny budget must abort cleanly.
	_, err := Exhaustive{Budget: 10}.Embed(graph.Complete(6))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v; want ErrBudgetExceeded", err)
	}
}

func TestExhaustiveEarlyExitOnPlanar(t *testing.T) {
	// A planar graph with large search space still returns promptly via
	// the genus-0 early exit.
	g := graph.Grid(3, 3)
	sys, err := Exhaustive{Budget: 100_000}.Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Genus() != 0 {
		t.Fatalf("genus = %d; want 0", sys.Genus())
	}
}

func TestExhaustiveRejectsDisconnected(t *testing.T) {
	g := graph.New(2, 0)
	g.AddNode("a")
	g.AddNode("b")
	g.Freeze()
	if _, err := (Exhaustive{}).Embed(g); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}
