package embedding

import (
	"recycle/internal/graph"
)

// ringSet stores, per node, a circular doubly-linked list of neighbour
// nodes — the half-edge adjacency rings assembled by the embedding phase of
// the planarity test. Because the planarity test rejects multigraphs, a
// neighbour node uniquely identifies a half-edge.
type ringSet struct {
	cw    []map[graph.NodeID]graph.NodeID // next neighbour clockwise
	ccw   []map[graph.NodeID]graph.NodeID // next neighbour counter-clockwise
	first []graph.NodeID                  // iteration anchor; NoNode = empty
}

func newRingSet(g *graph.Graph) *ringSet {
	n := g.NumNodes()
	rs := &ringSet{
		cw:    make([]map[graph.NodeID]graph.NodeID, n),
		ccw:   make([]map[graph.NodeID]graph.NodeID, n),
		first: make([]graph.NodeID, n),
	}
	for i := 0; i < n; i++ {
		rs.cw[i] = make(map[graph.NodeID]graph.NodeID, g.Degree(graph.NodeID(i)))
		rs.ccw[i] = make(map[graph.NodeID]graph.NodeID, g.Degree(graph.NodeID(i)))
		rs.first[i] = graph.NoNode
	}
	return rs
}

// insertCW inserts half-edge v→w immediately clockwise of v→ref. A NoNode
// ref means the ring is empty and w becomes its sole (and first) entry.
func (rs *ringSet) insertCW(v, w, ref graph.NodeID) {
	if ref == graph.NoNode {
		rs.cw[v][w] = w
		rs.ccw[v][w] = w
		rs.first[v] = w
		return
	}
	after := rs.cw[v][ref]
	rs.cw[v][ref] = w
	rs.cw[v][w] = after
	rs.ccw[v][w] = ref
	rs.ccw[v][after] = w
}

// insertCCW inserts half-edge v→w immediately counter-clockwise of v→ref,
// updating the first-pointer when ref was first (matching the planarity
// algorithm's "insert before" semantics).
func (rs *ringSet) insertCCW(v, w, ref graph.NodeID) {
	if ref == graph.NoNode {
		rs.insertCW(v, w, graph.NoNode)
		return
	}
	before := rs.ccw[v][ref]
	rs.insertCW(v, w, before)
	if rs.first[v] == ref {
		rs.first[v] = w
	}
}

// insertFirst makes v→w the new first half-edge of v's ring, placed
// counter-clockwise of the previous first entry.
func (rs *ringSet) insertFirst(v, w graph.NodeID) {
	rs.insertCCW(v, w, rs.first[v])
}

// cycle returns v's neighbours in clockwise order starting at the first
// entry. An empty ring yields nil.
func (rs *ringSet) cycle(v graph.NodeID) []graph.NodeID {
	start := rs.first[v]
	if start == graph.NoNode {
		return nil
	}
	out := []graph.NodeID{start}
	for w := rs.cw[v][start]; w != start; w = rs.cw[v][w] {
		out = append(out, w)
		if len(out) > len(rs.cw[v]) {
			panic("embedding: adjacency ring corrupt")
		}
	}
	return out
}
