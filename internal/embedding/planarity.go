// Package embedding computes cellular embeddings (rotation systems) of
// network graphs for Packet Re-cycling. The paper performs this step offline
// on a designated server (§4.3) and notes that minimum-genus embedding is
// NP-hard in general but efficient for planar graphs (§7). Accordingly this
// package offers:
//
//   - Planar: the left-right planarity test (de Fraysseix–Rosenstiehl, in
//     Brandes' formulation) with full embedding extraction — linear time,
//     genus 0, for planar inputs such as most ISP backbone cores;
//   - Greedy: face-maximising incremental edge insertion for arbitrary
//     graphs;
//   - Annealer: seeded local search over rotation systems to reduce genus;
//   - Auto: planar if possible, otherwise the best of the heuristics.
package embedding

import (
	"errors"
	"fmt"
	"sort"

	"recycle/internal/graph"
	"recycle/internal/rotation"
)

// ErrNonPlanar is returned by Planar.Embed for graphs that admit no
// crossing-free drawing in the plane.
var ErrNonPlanar = errors.New("embedding: graph is not planar")

// ErrMultigraph is returned by Planar.Embed when the graph has parallel
// links, which the left-right implementation does not support. (Parallel
// links never change planarity; deduplicate before testing if needed.)
var ErrMultigraph = errors.New("embedding: parallel links not supported by the planarity test")

// Planar embeds planar graphs on the sphere (genus 0) using the left-right
// planarity criterion. Embed returns ErrNonPlanar for non-planar inputs.
type Planar struct{}

// Name implements Embedder.
func (Planar) Name() string { return "planar-lr" }

// Embed implements Embedder.
func (Planar) Embed(g *graph.Graph) (*rotation.System, error) {
	if hasParallelLinks(g) {
		return nil, ErrMultigraph
	}
	lr := newLRState(g)
	orders, err := lr.run()
	if err != nil {
		return nil, err
	}
	return rotation.FromLinkOrders(g, orders)
}

func hasParallelLinks(g *graph.Graph) bool {
	seen := make(map[[2]graph.NodeID]bool, g.NumLinks())
	for _, l := range g.Links() {
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		if seen[[2]graph.NodeID{a, b}] {
			return true
		}
		seen[[2]graph.NodeID{a, b}] = true
	}
	return false
}

// ---------------------------------------------------------------------------
// Left-right planarity (Brandes' formulation of de Fraysseix–Rosenstiehl).
//
// Oriented edges are rotation.DartIDs: dart 2l is link l oriented A→B,
// 2l+1 the reverse. The algorithm runs three DFS passes:
//
//  1. orientation — orient each link along the DFS, computing heights,
//     low-points and nesting depths;
//  2. testing — maintain a stack of conflict pairs of return-edge
//     intervals; the graph is planar iff no interval pair ever needs both
//     of its sides simultaneously;
//  3. embedding — derive each edge's side (+1 right / −1 left) from the
//     recorded constraints and assemble counter-clockwise adjacency rings.
// ---------------------------------------------------------------------------

type lrState struct {
	g *graph.Graph

	height     []int             // per node; -1 = unvisited
	parentEdge []rotation.DartID // per node; NoDart at roots
	roots      []graph.NodeID

	orientedLink []bool              // per link: already oriented?
	orientedAdj  [][]rotation.DartID // per node: outgoing oriented darts (DFS order)
	orderedAdj   [][]rotation.DartID // per node: outgoing darts by nesting depth

	lowpt    []int // per dart
	lowpt2   []int
	nesting  []int
	ref      []rotation.DartID
	side     []int8
	lowptME  []rotation.DartID // lowpt_edge
	stackBot []*conflictPair   // stack bottom marker per dart

	s []*conflictPair
}

// interval is a range of return edges, bounded by its low and high darts.
type interval struct {
	low, high rotation.DartID
}

var emptyInterval = interval{low: rotation.NoDart, high: rotation.NoDart}

func (i interval) empty() bool { return i.low == rotation.NoDart && i.high == rotation.NoDart }

// conflictPair holds the return-edge intervals that must embed on opposite
// sides of the current tree edge.
type conflictPair struct {
	l, r interval
}

func (p *conflictPair) swap() { p.l, p.r = p.r, p.l }

func (p *conflictPair) lowest(lr *lrState) int {
	if p.l.empty() {
		return lr.lowpt[p.r.low]
	}
	if p.r.empty() {
		return lr.lowpt[p.l.low]
	}
	if a, b := lr.lowpt[p.l.low], lr.lowpt[p.r.low]; a < b {
		return a
	} else {
		return b
	}
}

func newLRState(g *graph.Graph) *lrState {
	n, m := g.NumNodes(), g.NumLinks()
	lr := &lrState{
		g:            g,
		height:       make([]int, n),
		parentEdge:   make([]rotation.DartID, n),
		orientedLink: make([]bool, m),
		orientedAdj:  make([][]rotation.DartID, n),
		orderedAdj:   make([][]rotation.DartID, n),
		lowpt:        make([]int, 2*m),
		lowpt2:       make([]int, 2*m),
		nesting:      make([]int, 2*m),
		ref:          make([]rotation.DartID, 2*m),
		side:         make([]int8, 2*m),
		lowptME:      make([]rotation.DartID, 2*m),
		stackBot:     make([]*conflictPair, 2*m),
	}
	for i := range lr.height {
		lr.height[i] = -1
		lr.parentEdge[i] = rotation.NoDart
	}
	for d := range lr.ref {
		lr.ref[d] = rotation.NoDart
		lr.side[d] = 1
		lr.lowptME[d] = rotation.NoDart
	}
	return lr
}

// dart returns link l oriented away from tail.
func (lr *lrState) dart(tail graph.NodeID, l graph.LinkID) rotation.DartID {
	ab, ba := rotation.DartsOf(l)
	if lr.g.Link(l).A == tail {
		return ab
	}
	return ba
}

func (lr *lrState) headOf(d rotation.DartID) graph.NodeID {
	l := lr.g.Link(rotation.LinkOf(d))
	if d%2 == 0 {
		return l.B
	}
	return l.A
}

func (lr *lrState) tailOf(d rotation.DartID) graph.NodeID {
	l := lr.g.Link(rotation.LinkOf(d))
	if d%2 == 0 {
		return l.A
	}
	return l.B
}

func (lr *lrState) top() *conflictPair {
	if len(lr.s) == 0 {
		return nil
	}
	return lr.s[len(lr.s)-1]
}

func (lr *lrState) push(p *conflictPair) { lr.s = append(lr.s, p) }

func (lr *lrState) pop() *conflictPair {
	p := lr.s[len(lr.s)-1]
	lr.s = lr.s[:len(lr.s)-1]
	return p
}

// run executes the three phases and returns per-node link orders
// (counter-clockwise) for a planar embedding.
func (lr *lrState) run() ([][]graph.LinkID, error) {
	n, m := lr.g.NumNodes(), lr.g.NumLinks()
	if n > 2 && m > 3*n-6 {
		return nil, ErrNonPlanar // Euler bound: planar simple graphs are sparse
	}

	// Phase 1: orientation.
	for v := 0; v < n; v++ {
		if lr.height[v] == -1 {
			lr.height[v] = 0
			lr.roots = append(lr.roots, graph.NodeID(v))
			lr.dfsOrient(graph.NodeID(v))
		}
	}

	// Phase 2: testing. Adjacency ordered by nesting depth (stable on the
	// DFS orientation order, for determinism).
	for v := 0; v < n; v++ {
		lr.orderedAdj[v] = append([]rotation.DartID(nil), lr.orientedAdj[v]...)
		sortByNesting(lr.orderedAdj[v], lr.nesting)
	}
	for _, r := range lr.roots {
		if !lr.dfsTest(r) {
			return nil, ErrNonPlanar
		}
	}

	// Phase 3: embedding. Fold the recorded side constraints into signed
	// nesting depths, re-sort, and assemble adjacency rings.
	for v := 0; v < n; v++ {
		for _, d := range lr.orientedAdj[v] {
			lr.nesting[d] *= int(lr.sign(d))
		}
	}
	rings := newRingSet(lr.g)
	for v := 0; v < n; v++ {
		lr.orderedAdj[v] = append([]rotation.DartID(nil), lr.orientedAdj[v]...)
		sortByNesting(lr.orderedAdj[v], lr.nesting)
		var prev graph.NodeID = graph.NoNode
		for _, d := range lr.orderedAdj[v] {
			w := lr.headOf(d)
			rings.insertCW(graph.NodeID(v), w, prev)
			prev = w
		}
	}
	leftRef := make([]graph.NodeID, n)
	rightRef := make([]graph.NodeID, n)
	for i := range leftRef {
		leftRef[i] = graph.NoNode
		rightRef[i] = graph.NoNode
	}
	for _, r := range lr.roots {
		lr.dfsEmbed(r, rings, leftRef, rightRef)
	}

	// Convert rings to link orders.
	orders := make([][]graph.LinkID, n)
	for v := 0; v < n; v++ {
		nbrs := rings.cycle(graph.NodeID(v))
		if len(nbrs) != lr.g.Degree(graph.NodeID(v)) {
			return nil, fmt.Errorf("embedding: internal error: node %d ring has %d entries, degree %d", v, len(nbrs), lr.g.Degree(graph.NodeID(v)))
		}
		orders[v] = make([]graph.LinkID, len(nbrs))
		for i, w := range nbrs {
			orders[v][i] = lr.g.FindLink(graph.NodeID(v), w)
		}
	}
	return orders, nil
}

func sortByNesting(darts []rotation.DartID, nesting []int) {
	sort.SliceStable(darts, func(i, j int) bool {
		return nesting[darts[i]] < nesting[darts[j]]
	})
}

func (lr *lrState) dfsOrient(v graph.NodeID) {
	e := lr.parentEdge[v]
	for _, nb := range lr.g.Neighbors(v) {
		if lr.orientedLink[nb.Link] {
			continue
		}
		lr.orientedLink[nb.Link] = true
		vw := lr.dart(v, nb.Link)
		lr.orientedAdj[v] = append(lr.orientedAdj[v], vw)
		lr.lowpt[vw] = lr.height[v]
		lr.lowpt2[vw] = lr.height[v]
		if lr.height[nb.Node] == -1 { // tree edge
			lr.parentEdge[nb.Node] = vw
			lr.height[nb.Node] = lr.height[v] + 1
			lr.dfsOrient(nb.Node)
		} else { // back edge
			lr.lowpt[vw] = lr.height[nb.Node]
		}
		// Nesting depth: twice the low-point, +1 for chordal edges so that
		// edges with identical return height nest deterministically.
		lr.nesting[vw] = 2 * lr.lowpt[vw]
		if lr.lowpt2[vw] < lr.height[v] {
			lr.nesting[vw]++
		}
		if e != rotation.NoDart {
			switch {
			case lr.lowpt[vw] < lr.lowpt[e]:
				lr.lowpt2[e] = minInt(lr.lowpt[e], lr.lowpt2[vw])
				lr.lowpt[e] = lr.lowpt[vw]
			case lr.lowpt[vw] > lr.lowpt[e]:
				lr.lowpt2[e] = minInt(lr.lowpt2[e], lr.lowpt[vw])
			default:
				lr.lowpt2[e] = minInt(lr.lowpt2[e], lr.lowpt2[vw])
			}
		}
	}
}

func (lr *lrState) dfsTest(v graph.NodeID) bool {
	e := lr.parentEdge[v]
	for i, vw := range lr.orderedAdj[v] {
		lr.stackBot[vw] = lr.top()
		w := lr.headOf(vw)
		if vw == lr.parentEdge[w] { // tree edge
			if !lr.dfsTest(w) {
				return false
			}
		} else { // back edge
			lr.lowptME[vw] = vw
			lr.push(&conflictPair{l: emptyInterval, r: interval{low: vw, high: vw}})
		}
		if lr.lowpt[vw] < lr.height[v] { // vw has a return edge below v
			if i == 0 {
				if e != rotation.NoDart {
					lr.lowptME[e] = lr.lowptME[vw]
				}
			} else if !lr.addConstraints(vw, e) {
				return false
			}
		}
	}
	if e != rotation.NoDart {
		u := lr.tailOf(e)
		lr.trimBackEdges(u)
		// The side of e is the side of a highest return edge.
		if lr.lowpt[e] < lr.height[u] {
			top := lr.top()
			hl, hr := top.l.high, top.r.high
			if hl != rotation.NoDart && (hr == rotation.NoDart || lr.lowpt[hl] > lr.lowpt[hr]) {
				lr.ref[e] = hl
			} else {
				lr.ref[e] = hr
			}
		}
	}
	return true
}

func (lr *lrState) conflicting(i interval, b rotation.DartID) bool {
	return !i.empty() && lr.lowpt[i.high] > lr.lowpt[b]
}

func (lr *lrState) addConstraints(ei, e rotation.DartID) bool {
	p := &conflictPair{l: emptyInterval, r: emptyInterval}
	// Merge return edges of ei into p.r.
	for {
		q := lr.pop()
		if !q.l.empty() {
			q.swap()
		}
		if !q.l.empty() {
			return false // not planar
		}
		if lr.lowpt[q.r.low] > lr.lowpt[e] {
			// Merge intervals.
			if p.r.empty() {
				p.r.high = q.r.high
			} else {
				lr.ref[p.r.low] = q.r.high
			}
			p.r.low = q.r.low
		} else {
			// Align with the parent edge's low-point edge.
			lr.ref[q.r.low] = lr.lowptME[e]
		}
		if lr.top() == lr.stackBot[ei] {
			break
		}
	}
	// Merge conflicting return edges of earlier siblings into p.l.
	for lr.top() != nil && (lr.conflicting(lr.top().l, ei) || lr.conflicting(lr.top().r, ei)) {
		q := lr.pop()
		if lr.conflicting(q.r, ei) {
			q.swap()
		}
		if lr.conflicting(q.r, ei) {
			return false // not planar
		}
		// Merge the interval below lowpt(ei) into p.r.
		lr.ref[p.r.low] = q.r.high
		if q.r.low != rotation.NoDart {
			p.r.low = q.r.low
		}
		if p.l.empty() {
			p.l.high = q.l.high
		} else {
			lr.ref[p.l.low] = q.l.high
		}
		p.l.low = q.l.low
	}
	if !(p.l.empty() && p.r.empty()) {
		lr.push(p)
	}
	return true
}

func (lr *lrState) trimBackEdges(u graph.NodeID) {
	// Drop entire conflict pairs whose lowest return is u itself.
	for len(lr.s) > 0 && lr.top().lowest(lr) == lr.height[u] {
		p := lr.pop()
		if p.l.low != rotation.NoDart {
			lr.side[p.l.low] = -1
		}
	}
	if len(lr.s) == 0 {
		return
	}
	// Trim the topmost pair's intervals of edges returning to u.
	p := lr.pop()
	for p.l.high != rotation.NoDart && lr.headOf(p.l.high) == u {
		p.l.high = lr.ref[p.l.high]
	}
	if p.l.high == rotation.NoDart && p.l.low != rotation.NoDart {
		lr.ref[p.l.low] = p.r.low
		lr.side[p.l.low] = -1
		p.l.low = rotation.NoDart
	}
	for p.r.high != rotation.NoDart && lr.headOf(p.r.high) == u {
		p.r.high = lr.ref[p.r.high]
	}
	if p.r.high == rotation.NoDart && p.r.low != rotation.NoDart {
		lr.ref[p.r.low] = p.l.low
		lr.side[p.r.low] = -1
		p.r.low = rotation.NoDart
	}
	lr.push(p)
}

// sign resolves the side of edge e by following the reference chain laid
// down during testing.
func (lr *lrState) sign(e rotation.DartID) int8 {
	if lr.ref[e] != rotation.NoDart {
		lr.side[e] *= lr.sign(lr.ref[e])
		lr.ref[e] = rotation.NoDart
	}
	return lr.side[e]
}

func (lr *lrState) dfsEmbed(v graph.NodeID, rings *ringSet, leftRef, rightRef []graph.NodeID) {
	for _, vw := range lr.orderedAdj[v] {
		w := lr.headOf(vw)
		if vw == lr.parentEdge[w] { // tree edge
			rings.insertFirst(w, v)
			leftRef[v] = w
			rightRef[v] = w
			lr.dfsEmbed(w, rings, leftRef, rightRef)
		} else { // back edge: embed the half-edge at the ancestor w
			if lr.side[vw] == 1 {
				rings.insertCW(w, v, rightRef[w])
			} else {
				rings.insertCCW(w, v, leftRef[w])
				leftRef[w] = v
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
