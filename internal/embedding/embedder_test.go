package embedding

import (
	"testing"

	"recycle/internal/graph"
	"recycle/internal/rotation"
)

func TestGreedyRing(t *testing.T) {
	s, err := (Greedy{}).Embed(graph.Ring(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// A ring has a unique embedding with two faces: genus 0.
	if gen := s.Genus(); gen != 0 {
		t.Fatalf("ring genus = %d; want 0", gen)
	}
}

func TestGreedyTreeSingleFace(t *testing.T) {
	// Star K1,4: tree → one face, genus 0.
	g := graph.New(5, 4)
	c := g.AddNode("hub")
	for i := 0; i < 4; i++ {
		leaf := g.AddNode("leaf")
		g.MustAddLink(c, leaf, 1)
	}
	g.Freeze()
	s, err := (Greedy{}).Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	if f := s.CountFaces(); f != 1 {
		t.Fatalf("tree faces = %d; want 1", f)
	}
	if gen := s.Genus(); gen != 0 {
		t.Fatalf("tree genus = %d; want 0", gen)
	}
}

func TestGreedyOnPlanarGraphsNearGenusZero(t *testing.T) {
	// Greedy is a heuristic: exact on small/simple planar graphs, and
	// allowed one unit of slack on the grid, where its local optimum is
	// genus 1 (Auto uses the exact planar embedder for planar inputs).
	cases := []struct {
		name     string
		g        *graph.Graph
		maxGenus int
	}{
		{"K4", graph.Complete(4), 0},
		{"grid3x3", graph.Grid(3, 3), 1},
		{"C6", graph.Ring(6), 0},
	}
	for _, tc := range cases {
		s, err := (Greedy{}).Embed(tc.g)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if gen := s.Genus(); gen > tc.maxGenus {
			t.Errorf("%s: greedy genus = %d; want ≤ %d", tc.name, gen, tc.maxGenus)
		}
	}
}

func TestGreedyK5GenusOne(t *testing.T) {
	// The orientable genus of K5 is exactly 1; greedy must not do worse
	// than 2 on such a small instance and can never do better than 1.
	s, err := (Greedy{}).Embed(graph.Complete(5))
	if err != nil {
		t.Fatal(err)
	}
	if gen := s.Genus(); gen < 1 || gen > 2 {
		t.Fatalf("K5 greedy genus = %d; want 1 (or at worst 2)", gen)
	}
}

func TestAnnealerImprovesOrMatchesGreedy(t *testing.T) {
	cases := []*graph.Graph{
		graph.Complete(5),
		graph.CompleteBipartite(3, 3),
		graph.Torus(3, 3),
		graph.RandomTwoConnected(10, 20, 5),
	}
	for i, g := range cases {
		greedy, err := (Greedy{}).Embed(g)
		if err != nil {
			t.Fatal(err)
		}
		annealed, err := Annealer{Seed: 1, Iterations: 4000}.Embed(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := annealed.Validate(); err != nil {
			t.Fatalf("case %d: invalid annealed system: %v", i, err)
		}
		if annealed.Genus() > greedy.Genus() {
			t.Errorf("case %d: anneal genus %d > greedy genus %d", i, annealed.Genus(), greedy.Genus())
		}
	}
}

func TestAnnealerFindsK5MinimumGenus(t *testing.T) {
	// genus(K5) = 1. With a reasonable budget annealing should reach it.
	s, err := Annealer{Seed: 7, Iterations: 20000}.Embed(graph.Complete(5))
	if err != nil {
		t.Fatal(err)
	}
	if gen := s.Genus(); gen != 1 {
		t.Fatalf("K5 annealed genus = %d; want 1", gen)
	}
}

func TestAnnealerDeterministic(t *testing.T) {
	g := graph.RandomTwoConnected(9, 16, 2)
	a, err := Annealer{Seed: 3, Iterations: 1000}.Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Annealer{Seed: 3, Iterations: 1000}.Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	for d := rotation.DartID(0); int(d) < a.NumDarts(); d++ {
		if a.NextAround(d) != b.NextAround(d) {
			t.Fatal("annealer not deterministic for equal seeds")
		}
	}
}

func TestAdjacencyAndRandomEmbedders(t *testing.T) {
	g := graph.Grid(3, 3)
	for _, e := range []Embedder{Adjacency{}, RandomOrder{Seed: 4}} {
		s, err := e.Embed(g)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if e.Name() == "" {
			t.Fatal("embedder must have a name")
		}
	}
}

func TestAutoUsesPlanarWhenPossible(t *testing.T) {
	s, err := (Auto{Seed: 1}).Embed(graph.Grid(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if gen := s.Genus(); gen != 0 {
		t.Fatalf("auto on planar grid: genus = %d; want 0", gen)
	}
}

func TestAutoFallsBackOnNonPlanar(t *testing.T) {
	s, err := (Auto{Seed: 1, AnnealIterations: 5000}).Embed(graph.Complete(5))
	if err != nil {
		t.Fatal(err)
	}
	if gen := s.Genus(); gen < 1 || gen > 2 {
		t.Fatalf("auto on K5: genus = %d; want 1 or 2", gen)
	}
}

func TestAutoHandlesMultigraph(t *testing.T) {
	g := graph.New(3, 4)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.MustAddLink(a, b, 1)
	g.MustAddLink(a, b, 1) // parallel
	g.MustAddLink(b, c, 1)
	g.MustAddLink(a, c, 1)
	g.Freeze()
	s, err := (Auto{Seed: 2}).Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDisconnected(t *testing.T) {
	g := graph.New(6, 6)
	for i := 0; i < 6; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	g.MustAddLink(0, 1, 1)
	g.MustAddLink(1, 2, 1)
	g.MustAddLink(0, 2, 1)
	g.MustAddLink(3, 4, 1)
	g.MustAddLink(4, 5, 1)
	g.MustAddLink(3, 5, 1)
	g.Freeze()
	s, err := (Greedy{}).Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	if f := s.CountFaces(); f != 4 {
		t.Fatalf("two triangles: faces = %d; want 4", f)
	}
}

// TestEmbeddersProduceValidSystems runs every embedder over random graphs
// and validates structural invariants.
func TestEmbeddersProduceValidSystems(t *testing.T) {
	embedders := []Embedder{Adjacency{}, RandomOrder{Seed: 9}, Greedy{}, Annealer{Seed: 9, Iterations: 500}, Auto{Seed: 9, AnnealIterations: 500}}
	for seed := int64(1); seed <= 5; seed++ {
		g := graph.RandomTwoConnected(8, 14, seed)
		for _, e := range embedders {
			s, err := e.Embed(g)
			if err != nil {
				t.Fatalf("%s seed %d: %v", e.Name(), seed, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s seed %d: %v", e.Name(), seed, err)
			}
			if s.Genus() < 0 {
				t.Fatalf("%s seed %d: negative genus", e.Name(), seed)
			}
		}
	}
}
