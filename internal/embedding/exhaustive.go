package embedding

import (
	"fmt"

	"recycle/internal/graph"
	"recycle/internal/rotation"
)

// Exhaustive enumerates rotation systems to find a minimum-genus embedding.
// The search space is Π_v (deg(v)−1)! (cyclic orders per node, first
// neighbour pinned), so this is only feasible for small or low-degree
// graphs — exactly the regime where it serves as ground truth for the
// heuristic embedders (the paper notes minimum-genus embedding is NP-hard
// in general, §7). The enumeration aborts with an error once Budget
// candidate systems have been evaluated, unless a genus-0 system is found
// earlier (genus 0 is always optimal, so the search can stop).
type Exhaustive struct {
	// Budget caps evaluated rotation systems (default 2_000_000).
	Budget int
}

// Name implements Embedder.
func (Exhaustive) Name() string { return "exhaustive" }

// ErrBudgetExceeded is returned when the search space exceeds the budget
// before completing the enumeration.
var ErrBudgetExceeded = fmt.Errorf("embedding: exhaustive search budget exceeded")

// Embed implements Embedder.
func (e Exhaustive) Embed(g *graph.Graph) (*rotation.System, error) {
	budget := e.Budget
	if budget == 0 {
		budget = 2_000_000
	}
	if !graph.Connected(g) {
		return nil, fmt.Errorf("embedding: exhaustive search requires a connected graph")
	}

	// Per node: the incident links; we permute positions 1..d-1 and keep
	// position 0 fixed (cyclic orders are rotation-invariant).
	incident := make([][]graph.LinkID, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		for _, nb := range g.Neighbors(graph.NodeID(n)) {
			incident[n] = append(incident[n], nb.Link)
		}
	}

	orders := make([][]graph.LinkID, g.NumNodes())
	for n := range orders {
		orders[n] = append([]graph.LinkID(nil), incident[n]...)
	}

	var best *rotation.System
	bestFaces := -1
	evaluated := 0

	var rec func(node int) error
	rec = func(node int) error {
		if evaluated >= budget {
			return ErrBudgetExceeded
		}
		if node == g.NumNodes() {
			evaluated++
			sys, err := rotation.FromLinkOrders(g, orders)
			if err != nil {
				return err
			}
			if f := sys.CountFaces(); f > bestFaces {
				bestFaces = f
				best = sys
			}
			return nil
		}
		// Heap-style permutation of positions 1..d-1 (position 0 pinned).
		ord := orders[node]
		if len(ord) <= 2 {
			return rec(node + 1)
		}
		var permute func(k int) error
		permute = func(k int) error {
			if k == len(ord) {
				return rec(node + 1)
			}
			for i := k; i < len(ord); i++ {
				ord[k], ord[i] = ord[i], ord[k]
				if err := permute(k + 1); err != nil {
					return err
				}
				ord[k], ord[i] = ord[i], ord[k]
				if best != nil && best.Genus() == 0 {
					return nil // cannot do better than the sphere
				}
			}
			return nil
		}
		return permute(1)
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("embedding: exhaustive search found no system")
	}
	return best, nil
}

// MinimumGenus returns the exact genus of g, found by exhaustive search
// within the budget (0 = default).
func MinimumGenus(g *graph.Graph, budget int) (int, error) {
	sys, err := Exhaustive{Budget: budget}.Embed(g)
	if err != nil {
		return 0, err
	}
	return sys.Genus(), nil
}
