package embedding

import (
	"errors"
	"fmt"

	"recycle/internal/graph"
	"recycle/internal/rotation"
)

// Embedder computes a cellular embedding (rotation system) for a graph.
// Implementations must be deterministic: equal inputs (and seeds) yield
// equal embeddings, so that routing experiments are reproducible.
type Embedder interface {
	// Name identifies the algorithm in reports and benchmarks.
	Name() string
	// Embed returns a rotation system for g.
	Embed(g *graph.Graph) (*rotation.System, error)
}

// Adjacency is the trivial embedder: rotations follow the graph's frozen
// adjacency lists. Always succeeds; typically poor genus. It is the
// baseline the ablation benchmarks measure other embedders against.
type Adjacency struct{}

// Name implements Embedder.
func (Adjacency) Name() string { return "adjacency" }

// Embed implements Embedder.
func (Adjacency) Embed(g *graph.Graph) (*rotation.System, error) {
	return rotation.AdjacencyOrder(g), nil
}

// RandomOrder embeds with a uniformly random, seeded rotation system. Used
// by property tests: PR must deliver packets under any rotation system.
type RandomOrder struct {
	Seed int64
}

// Name implements Embedder.
func (RandomOrder) Name() string { return "random" }

// Embed implements Embedder.
func (r RandomOrder) Embed(g *graph.Graph) (*rotation.System, error) {
	return rotation.Random(g, r.Seed), nil
}

// Auto picks the best available embedding: exact genus 0 from the planarity
// test when the graph is planar, otherwise the better of Greedy and an
// annealing pass seeded from it. This mirrors the paper's deployment story:
// an offline server computes the embedding with whatever algorithm fits the
// topology (§7).
type Auto struct {
	// Seed drives the annealing fallback.
	Seed int64
	// AnnealIterations bounds the fallback's move budget (0 = default).
	AnnealIterations int
}

// Name implements Embedder.
func (Auto) Name() string { return "auto" }

// Embed implements Embedder.
func (a Auto) Embed(g *graph.Graph) (*rotation.System, error) {
	if planar, err := (Planar{}).Embed(g); err == nil {
		return planar, nil
	} else if !errors.Is(err, ErrNonPlanar) && !errors.Is(err, ErrMultigraph) {
		return nil, err
	}
	greedy, err := (Greedy{}).Embed(g)
	if err != nil {
		return nil, fmt.Errorf("embedding: greedy fallback: %w", err)
	}
	annealed, err := Annealer{Seed: a.Seed, Iterations: a.AnnealIterations, Start: Greedy{}}.Embed(g)
	if err != nil {
		return greedy, nil
	}
	if !graph.Connected(g) {
		// Genus comparison requires connectivity; fall back to face count.
		if annealed.CountFaces() >= greedy.CountFaces() {
			return annealed, nil
		}
		return greedy, nil
	}
	if annealed.Genus() <= greedy.Genus() {
		return annealed, nil
	}
	return greedy, nil
}
