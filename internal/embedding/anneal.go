package embedding

import (
	"math"
	"math/rand"

	"recycle/internal/graph"
	"recycle/internal/rotation"
)

// Annealer reduces embedding genus by seeded simulated annealing over
// rotation systems. The state space is the set of per-node cyclic orders;
// a move relocates one link within one node's order; the objective is the
// face count (maximising faces minimises genus by Euler's formula).
//
// The paper notes (§7) that minimum-genus embedding is NP-hard in general;
// annealing is the standard practical fallback for the non-planar cases
// where the left-right embedder does not apply.
type Annealer struct {
	// Seed drives all randomness; equal seeds give equal results.
	Seed int64
	// Iterations bounds the number of proposed moves. Zero selects a
	// size-dependent default (200 × links).
	Iterations int
	// Start produces the initial embedding. Nil defaults to Greedy.
	Start Embedder
}

// Name implements Embedder.
func (a Annealer) Name() string { return "anneal" }

// Embed implements Embedder.
func (a Annealer) Embed(g *graph.Graph) (*rotation.System, error) {
	start := a.Start
	if start == nil {
		start = Greedy{}
	}
	init, err := start.Embed(g)
	if err != nil {
		return nil, err
	}
	iters := a.Iterations
	if iters == 0 {
		iters = 200 * g.NumLinks()
	}
	if g.NumLinks() == 0 || iters <= 0 {
		return init, nil
	}

	rng := rand.New(rand.NewSource(a.Seed))
	cur := ordersOf(g, init)
	curFaces := faceCount(g, cur)
	best := cloneOrders(cur)
	bestFaces := curFaces

	// Moves only help at nodes of degree ≥ 3: cyclic orders of shorter
	// rotations are all equivalent.
	var movable []graph.NodeID
	for n := 0; n < g.NumNodes(); n++ {
		if g.Degree(graph.NodeID(n)) >= 3 {
			movable = append(movable, graph.NodeID(n))
		}
	}
	if len(movable) == 0 {
		return init, nil
	}

	// Geometric cooling from T0 to Tend over the iteration budget.
	const t0, tEnd = 2.0, 0.01
	cool := math.Pow(tEnd/t0, 1/float64(iters))
	temp := t0
	for it := 0; it < iters; it++ {
		n := movable[rng.Intn(len(movable))]
		ord := cur[n]
		from := rng.Intn(len(ord))
		to := rng.Intn(len(ord))
		if from == to {
			temp *= cool
			continue
		}
		moveWithin(ord, from, to)
		faces := faceCount(g, cur)
		delta := faces - curFaces
		if delta >= 0 || rng.Float64() < math.Exp(float64(delta)/temp) {
			curFaces = faces
			if faces > bestFaces {
				bestFaces = faces
				best = cloneOrders(cur)
			}
		} else {
			moveWithin(ord, to, from) // revert
		}
		temp *= cool
	}
	return rotation.FromLinkOrders(g, toLinkOrders(best))
}

// ordersOf extracts mutable per-node dart orders from a system.
func ordersOf(g *graph.Graph, s *rotation.System) [][]rotation.DartID {
	out := make([][]rotation.DartID, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		out[n] = append([]rotation.DartID(nil), s.Rotation(graph.NodeID(n))...)
	}
	return out
}

func cloneOrders(orders [][]rotation.DartID) [][]rotation.DartID {
	out := make([][]rotation.DartID, len(orders))
	for i, o := range orders {
		out[i] = append([]rotation.DartID(nil), o...)
	}
	return out
}

func toLinkOrders(orders [][]rotation.DartID) [][]graph.LinkID {
	out := make([][]graph.LinkID, len(orders))
	for i, o := range orders {
		out[i] = make([]graph.LinkID, len(o))
		for j, d := range o {
			out[i][j] = rotation.LinkOf(d)
		}
	}
	return out
}

// moveWithin relocates the element at index from to index to, shifting the
// slice between them.
func moveWithin(s []rotation.DartID, from, to int) {
	d := s[from]
	if from < to {
		copy(s[from:], s[from+1:to+1])
	} else {
		copy(s[to+1:], s[to:from])
	}
	s[to] = d
}

// faceCount counts φ orbits of the full rotation described by orders.
func faceCount(g *graph.Graph, orders [][]rotation.DartID) int {
	nd := 2 * g.NumLinks()
	next := make([]rotation.DartID, nd)
	for _, darts := range orders {
		for i, d := range darts {
			next[d] = darts[(i+1)%len(darts)]
		}
	}
	seen := make([]bool, nd)
	faces := 0
	for d := 0; d < nd; d++ {
		if seen[d] {
			continue
		}
		faces++
		for e := rotation.DartID(d); !seen[e]; e = next[rotation.ReverseID(e)] {
			seen[e] = true
		}
	}
	return faces
}
