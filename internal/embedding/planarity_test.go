package embedding

import (
	"errors"
	"testing"

	"recycle/internal/graph"
)

// petersen returns the Petersen graph, the classic small non-planar graph
// that satisfies the Euler edge bound (15 ≤ 3·10−6), so it exercises the
// conflict-pair machinery rather than the early exit.
func petersen() *graph.Graph {
	g := graph.New(10, 15)
	for i := 0; i < 10; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < 5; i++ {
		g.MustAddLink(graph.NodeID(i), graph.NodeID((i+1)%5), 1)     // outer C5
		g.MustAddLink(graph.NodeID(5+i), graph.NodeID(5+(i+2)%5), 1) // inner pentagram
		g.MustAddLink(graph.NodeID(i), graph.NodeID(5+i), 1)         // spokes
	}
	return g.Freeze()
}

func TestPlanarVerdictKnownGraphs(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		planar bool
	}{
		{"K3", graph.Complete(3), true},
		{"K4", graph.Complete(4), true},
		{"K5", graph.Complete(5), false},
		{"K6", graph.Complete(6), false},
		{"K33", graph.CompleteBipartite(3, 3), false},
		{"K23", graph.CompleteBipartite(2, 3), true},
		{"C8", graph.Ring(8), true},
		{"grid4x5", graph.Grid(4, 5), true},
		{"torus4x4", graph.Torus(4, 4), false},
		{"petersen", petersen(), false},
	}
	for _, tc := range cases {
		s, err := (Planar{}).Embed(tc.g)
		if tc.planar {
			if err != nil {
				t.Errorf("%s: Embed failed: %v; want planar embedding", tc.name, err)
				continue
			}
			if err := s.Validate(); err != nil {
				t.Errorf("%s: invalid rotation system: %v", tc.name, err)
			}
			if gen := s.Genus(); gen != 0 {
				t.Errorf("%s: genus = %d; want 0", tc.name, gen)
			}
		} else if !errors.Is(err, ErrNonPlanar) {
			t.Errorf("%s: err = %v; want ErrNonPlanar", tc.name, err)
		}
	}
}

func TestPlanarTinyGraphs(t *testing.T) {
	// Single node.
	k1 := graph.New(1, 0)
	k1.AddNode("a")
	k1.Freeze()
	if _, err := (Planar{}).Embed(k1); err != nil {
		t.Fatalf("K1: %v", err)
	}
	// Single edge.
	k2 := graph.New(2, 1)
	a := k2.AddNode("a")
	b := k2.AddNode("b")
	k2.MustAddLink(a, b, 1)
	k2.Freeze()
	s, err := (Planar{}).Embed(k2)
	if err != nil {
		t.Fatalf("K2: %v", err)
	}
	if gen := s.Genus(); gen != 0 {
		t.Fatalf("K2 genus = %d; want 0", gen)
	}
	// Path P3: a tree; one face.
	p3 := graph.New(3, 2)
	x := p3.AddNode("x")
	y := p3.AddNode("y")
	z := p3.AddNode("z")
	p3.MustAddLink(x, y, 1)
	p3.MustAddLink(y, z, 1)
	p3.Freeze()
	s, err = (Planar{}).Embed(p3)
	if err != nil {
		t.Fatalf("P3: %v", err)
	}
	if f := s.CountFaces(); f != 1 {
		t.Fatalf("P3 faces = %d; want 1", f)
	}
}

func TestPlanarDisconnected(t *testing.T) {
	// Two triangles, no connection: planar, embeddable per component.
	g := graph.New(6, 6)
	for i := 0; i < 6; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	g.MustAddLink(0, 1, 1)
	g.MustAddLink(1, 2, 1)
	g.MustAddLink(0, 2, 1)
	g.MustAddLink(3, 4, 1)
	g.MustAddLink(4, 5, 1)
	g.MustAddLink(3, 5, 1)
	g.Freeze()
	s, err := (Planar{}).Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each triangle contributes 2 faces.
	if f := s.CountFaces(); f != 4 {
		t.Fatalf("faces = %d; want 4", f)
	}
}

func TestPlanarRejectsMultigraph(t *testing.T) {
	g := graph.New(2, 2)
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.MustAddLink(a, b, 1)
	g.MustAddLink(a, b, 1)
	g.Freeze()
	if _, err := (Planar{}).Embed(g); !errors.Is(err, ErrMultigraph) {
		t.Fatalf("err = %v; want ErrMultigraph", err)
	}
}

// TestPlanarRandomPlanarGraphs: the fan-triangulated ring generator is
// planar by construction, so every instance must embed at genus 0.
func TestPlanarRandomPlanarGraphs(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := graph.RandomPlanarLike(6+int(seed%20), seed)
		s, err := (Planar{}).Embed(g)
		if err != nil {
			t.Fatalf("seed %d: %v (graph is planar by construction)", seed, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if gen := s.Genus(); gen != 0 {
			t.Fatalf("seed %d: genus = %d; want 0", seed, gen)
		}
	}
}

// TestPlanarK5MinusEdge: K5 minus any single edge is planar.
func TestPlanarK5MinusEdge(t *testing.T) {
	for skip := 0; skip < 10; skip++ {
		g := graph.New(5, 9)
		for i := 0; i < 5; i++ {
			g.AddNode(string(rune('a' + i)))
		}
		idx := 0
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				if idx != skip {
					g.MustAddLink(graph.NodeID(i), graph.NodeID(j), 1)
				}
				idx++
			}
		}
		g.Freeze()
		s, err := (Planar{}).Embed(g)
		if err != nil {
			t.Fatalf("K5 minus edge %d: %v", skip, err)
		}
		if gen := s.Genus(); gen != 0 {
			t.Fatalf("K5 minus edge %d: genus = %d", skip, gen)
		}
	}
}

// TestPlanarK33MinusEdge: K3,3 minus any edge is planar.
func TestPlanarK33MinusEdge(t *testing.T) {
	for skip := 0; skip < 9; skip++ {
		g := graph.New(6, 8)
		for i := 0; i < 6; i++ {
			g.AddNode(string(rune('a' + i)))
		}
		idx := 0
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if idx != skip {
					g.MustAddLink(graph.NodeID(i), graph.NodeID(3+j), 1)
				}
				idx++
			}
		}
		g.Freeze()
		if _, err := (Planar{}).Embed(g); err != nil {
			t.Fatalf("K3,3 minus edge %d: %v", skip, err)
		}
	}
}

// TestPlanarVerdictStableUnderRelabeling embeds several node permutations
// of the same graphs; the verdict must not depend on labels.
func TestPlanarVerdictStableUnderRelabeling(t *testing.T) {
	relabel := func(g *graph.Graph, perm []int) *graph.Graph {
		h := graph.New(g.NumNodes(), g.NumLinks())
		for i := 0; i < g.NumNodes(); i++ {
			h.AddNode(g.Name(graph.NodeID(i)) + "'")
		}
		for _, l := range g.Links() {
			h.MustAddLink(graph.NodeID(perm[l.A]), graph.NodeID(perm[l.B]), l.Weight)
		}
		return h.Freeze()
	}
	perms := [][]int{
		{4, 3, 2, 1, 0, 9, 8, 7, 6, 5},
		{9, 0, 8, 1, 7, 2, 6, 3, 5, 4},
	}
	for _, p := range perms {
		if _, err := (Planar{}).Embed(relabel(petersen(), p)); !errors.Is(err, ErrNonPlanar) {
			t.Fatalf("relabelled petersen: err = %v; want ErrNonPlanar", err)
		}
	}
	gridPerm := []int{11, 3, 7, 0, 5, 9, 1, 10, 2, 8, 4, 6}
	if s, err := (Planar{}).Embed(relabel(graph.Grid(3, 4), gridPerm)); err != nil || s.Genus() != 0 {
		t.Fatalf("relabelled grid: err=%v", err)
	}
}

// TestPlanarDenseRejection: random graphs above the Euler bound must be
// rejected without touching the DFS machinery.
func TestPlanarDenseRejection(t *testing.T) {
	g := graph.RandomTwoConnected(8, 20, 3) // 20 > 3*8-6 = 18
	if _, err := (Planar{}).Embed(g); !errors.Is(err, ErrNonPlanar) {
		t.Fatalf("dense graph: err = %v; want ErrNonPlanar", err)
	}
}

// TestPlanarMatchesEdgeSubdivision: subdividing edges preserves planarity.
// Subdivide every edge of K5 and Petersen (still non-planar) and of grids
// (still planar).
func TestPlanarMatchesEdgeSubdivision(t *testing.T) {
	subdivide := func(g *graph.Graph) *graph.Graph {
		h := graph.New(g.NumNodes()+g.NumLinks(), 2*g.NumLinks())
		for i := 0; i < g.NumNodes(); i++ {
			h.AddNode(g.Name(graph.NodeID(i)))
		}
		for _, l := range g.Links() {
			mid := h.AddNode("mid")
			h.MustAddLink(l.A, mid, 1)
			h.MustAddLink(mid, l.B, 1)
		}
		return h.Freeze()
	}
	if _, err := (Planar{}).Embed(subdivide(graph.Complete(5))); !errors.Is(err, ErrNonPlanar) {
		t.Fatalf("subdivided K5: err = %v; want ErrNonPlanar", err)
	}
	if _, err := (Planar{}).Embed(subdivide(petersen())); !errors.Is(err, ErrNonPlanar) {
		t.Fatalf("subdivided petersen: err = %v; want ErrNonPlanar", err)
	}
	s, err := (Planar{}).Embed(subdivide(graph.Grid(3, 3)))
	if err != nil {
		t.Fatalf("subdivided grid: %v", err)
	}
	if gen := s.Genus(); gen != 0 {
		t.Fatalf("subdivided grid genus = %d", gen)
	}
}
