// Package topo ships the topologies the paper evaluates on (§6): the
// Figure 1 running example (reconstructed exactly from the prose, including
// its cellular embedding), the Abilene research backbone, the GÉANT European
// research network, and a PoP-level reconstruction of the Teleglobe (AS6453)
// backbone. Each Topology bundles the graph with optional metadata (a known
// embedding for the paper example, coordinates for distance weighting).
package topo

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"recycle/internal/graph"
	"recycle/internal/rotation"
)

// Topology is a named network graph ready for experiments.
type Topology struct {
	// Name identifies the topology in reports ("abilene", ...).
	Name string
	// Graph is the frozen network graph.
	Graph *graph.Graph
	// Embedding optionally fixes a known-good rotation system (the paper
	// example ships the published Figure 1 embedding). Nil means "let an
	// embedder choose".
	Embedding *rotation.System
}

// Weighting selects how built-in topologies assign link weights.
type Weighting int

const (
	// UnitWeights gives every link weight 1 (hop-count routing).
	UnitWeights Weighting = iota
	// DistanceWeights uses great-circle kilometres between the endpoint
	// cities, the conventional approximation of IGP metrics on research
	// backbones.
	DistanceWeights
)

// String names the weighting.
func (w Weighting) String() string {
	if w == DistanceWeights {
		return "distance"
	}
	return "unit"
}

// city is a node with coordinates for distance weighting.
type city struct {
	name     string
	lat, lon float64
}

// buildCityTopology assembles a topology from a city list and a link list
// given as name pairs.
func buildCityTopology(name string, cities []city, links [][2]string, w Weighting) Topology {
	g := graph.New(len(cities), len(links))
	idx := make(map[string]graph.NodeID, len(cities))
	pos := make(map[string]city, len(cities))
	for _, c := range cities {
		id := g.AddNode(c.name)
		idx[c.name] = id
		pos[c.name] = c
	}
	for _, lk := range links {
		a, ok := idx[lk[0]]
		if !ok {
			panic(fmt.Sprintf("topo: %s: unknown city %q", name, lk[0]))
		}
		b, ok := idx[lk[1]]
		if !ok {
			panic(fmt.Sprintf("topo: %s: unknown city %q", name, lk[1]))
		}
		weight := 1.0
		if w == DistanceWeights {
			weight = greatCircleKM(pos[lk[0]], pos[lk[1]])
			if weight < 1 {
				weight = 1 // co-located PoPs still cost something
			}
		}
		g.MustAddLink(a, b, weight)
	}
	return Topology{Name: name, Graph: g.Freeze()}
}

// greatCircleKM returns the haversine distance between two cities in km.
func greatCircleKM(a, b city) float64 {
	const earthRadiusKM = 6371.0
	rad := func(deg float64) float64 { return deg * math.Pi / 180 }
	dLat := rad(b.lat - a.lat)
	dLon := rad(b.lon - a.lon)
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(rad(a.lat))*math.Cos(rad(b.lat))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKM * math.Asin(math.Sqrt(h))
}

// ByName returns a built-in topology by name — "paper", "abilene",
// "geant" or "teleglobe" (distance weights for the ISP topologies) — or a
// generator spec such as "ring:24", "wring:16@7", "grid:4x8" or
// "chain:12" (see Generated).
func ByName(name string) (Topology, error) {
	return ByNameWeighted(name, DistanceWeights)
}

// ByNameWeighted is ByName with an explicit weighting for the ISP
// topologies (the paper example keeps its published weights; generated
// topologies their generated ones).
func ByNameWeighted(name string, w Weighting) (Topology, error) {
	switch name {
	case "paper", "example", "fig1":
		return PaperExample(), nil
	case "abilene":
		return Abilene(w), nil
	case "geant":
		return Geant(w), nil
	case "teleglobe":
		return Teleglobe(w), nil
	}
	if strings.Contains(name, ":") {
		return Generated(name)
	}
	return Topology{}, fmt.Errorf("topo: unknown topology %q (want paper, abilene, geant, teleglobe or a generator spec like ring:24, grid:4x8, chain:12)", name)
}

// Names lists the built-in topology names. Generator families (ring:N,
// wring:N@seed, grid:RxC, chain:K) are parameterised and not enumerated.
func Names() []string {
	n := []string{"paper", "abilene", "geant", "teleglobe"}
	sort.Strings(n)
	return n
}
