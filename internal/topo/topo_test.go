package topo

import (
	"testing"

	"recycle/internal/graph"
	"recycle/internal/rotation"
)

func TestPaperExampleStructure(t *testing.T) {
	tp := PaperExample()
	g := tp.Graph
	if g.NumNodes() != 6 || g.NumLinks() != 9 {
		t.Fatalf("paper example: %d nodes %d links; want 6, 9", g.NumNodes(), g.NumLinks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantEdges := [][2]string{
		{"A", "B"}, {"A", "C"}, {"A", "F"}, {"B", "C"}, {"B", "D"},
		{"C", "E"}, {"D", "E"}, {"D", "F"}, {"E", "F"},
	}
	for _, e := range wantEdges {
		if !g.HasLink(g.NodeByName(e[0]), g.NodeByName(e[1])) {
			t.Errorf("missing edge %s-%s", e[0], e[1])
		}
	}
	if !graph.TwoEdgeConnected(g) {
		t.Fatal("paper example should be 2-edge-connected")
	}
}

// TestPaperEmbeddingFaces pins the published Figure 1 cycle system:
// exactly the five faces c1..c5 from the paper (c5 being the outer cell of
// the stereographic projection).
func TestPaperEmbeddingFaces(t *testing.T) {
	tp := PaperExample()
	g, sys := tp.Graph, tp.Embedding
	if sys == nil {
		t.Fatal("paper example must ship its embedding")
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if gen := sys.Genus(); gen != 0 {
		t.Fatalf("paper embedding genus = %d; want 0 (sphere)", gen)
	}

	node := func(name string) graph.NodeID { return g.NodeByName(name) }
	dart := func(from, to string) rotation.DartID {
		l := g.FindLink(node(from), node(to))
		if l == graph.NoLink {
			t.Fatalf("no link %s-%s", from, to)
		}
		return sys.OutgoingDart(node(from), l)
	}
	wantFaces := map[string][]string{
		"c1": {"D", "E", "F"},
		"c2": {"D", "B", "C", "E"},
		"c3": {"B", "A", "C"},
		"c4": {"A", "B", "D", "F"},
		"c5": {"A", "F", "E", "C"},
	}
	fs := sys.Faces()
	if len(fs.Faces) != 5 {
		t.Fatalf("faces = %d; want 5", len(fs.Faces))
	}
	// Walk each expected face: φ must step through its node sequence.
	for name, seq := range wantFaces {
		for i := range seq {
			from, to := seq[i], seq[(i+1)%len(seq)]
			next := sys.FaceNext(dart(from, to))
			wantNext := dart(to, seq[(i+2)%len(seq)])
			if next != wantNext {
				t.Errorf("%s: φ(%s→%s) = %v; want %s→%s", name, from, to, sys.Dart(next), to, seq[(i+2)%len(seq)])
			}
		}
	}
}

// TestPaperShortestPathNarrative pins the §4 routing narrative: the SP tree
// toward F gives hop discriminators A:4, B:3, C:2, D:2, E:1, with A routing
// via B and D routing via E.
func TestPaperShortestPathNarrative(t *testing.T) {
	tp := PaperExample()
	g := tp.Graph
	f := g.NodeByName("F")
	tree := graph.ShortestPathTree(g, f, nil)

	wantHops := map[string]int{"A": 4, "B": 3, "C": 2, "D": 2, "E": 1, "F": 0}
	for name, hops := range wantHops {
		if got := tree.Hops[g.NodeByName(name)]; got != hops {
			t.Errorf("hops(%s→F) = %d; want %d", name, got, hops)
		}
	}
	wantNext := map[string]string{"A": "B", "B": "D", "D": "E", "E": "F", "C": "E"}
	for from, to := range wantNext {
		if got := tree.NextNode[g.NodeByName(from)]; got != g.NodeByName(to) {
			t.Errorf("next(%s→F) = %s; want %s", from, g.Name(got), to)
		}
	}
}

func TestAbilene(t *testing.T) {
	for _, w := range []Weighting{UnitWeights, DistanceWeights} {
		tp := Abilene(w)
		g := tp.Graph
		if g.NumNodes() != 11 || g.NumLinks() != 14 {
			t.Fatalf("abilene(%v): %d nodes %d links; want 11, 14", w, g.NumNodes(), g.NumLinks())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if !graph.TwoEdgeConnected(g) {
			t.Fatal("abilene should be 2-edge-connected")
		}
	}
	// Distance weights: Seattle-Sunnyvale is ~1100 km.
	g := Abilene(DistanceWeights).Graph
	l := g.FindLink(g.NodeByName("Seattle"), g.NodeByName("Sunnyvale"))
	if w := g.Weight(l); w < 900 || w > 1300 {
		t.Fatalf("Seattle-Sunnyvale distance = %.0f km; want ≈1100", w)
	}
}

func TestGeant(t *testing.T) {
	tp := Geant(DistanceWeights)
	g := tp.Graph
	if g.NumNodes() != 23 {
		t.Fatalf("geant nodes = %d; want 23", g.NumNodes())
	}
	if g.NumLinks() < 35 || g.NumLinks() > 40 {
		t.Fatalf("geant links = %d; want ≈37", g.NumLinks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !graph.Connected(g) {
		t.Fatal("geant must be connected")
	}
	if !graph.TwoEdgeConnected(g) {
		t.Fatalf("geant should be 2-edge-connected; bridges: %v", graph.Bridges(g))
	}
}

func TestTeleglobe(t *testing.T) {
	tp := Teleglobe(DistanceWeights)
	g := tp.Graph
	if g.NumNodes() != 25 {
		t.Fatalf("teleglobe nodes = %d; want 25", g.NumNodes())
	}
	if g.NumLinks() < 35 || g.NumLinks() > 40 {
		t.Fatalf("teleglobe links = %d; want ≈37", g.NumLinks())
	}
	if !graph.TwoEdgeConnected(g) {
		t.Fatalf("teleglobe should be 2-edge-connected; bridges: %v", graph.Bridges(g))
	}
	// The reconstruction must support the paper's 10-failure experiment.
	if _, err := graph.SampleFailureScenarios(g, 10, 5, 1); err != nil {
		t.Fatalf("cannot sample 10-failure scenarios: %v", err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		tp, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tp.Graph == nil || tp.Name == "" {
			t.Fatalf("%s: incomplete topology", name)
		}
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := ByName("fig1"); err != nil {
		t.Fatal("fig1 alias should resolve")
	}
}

func TestGreatCircleSanity(t *testing.T) {
	ny := city{"NY", 40.71, -74.01}
	london := city{"London", 51.51, -0.13}
	d := greatCircleKM(ny, london)
	if d < 5400 || d > 5800 {
		t.Fatalf("NY-London = %.0f km; want ≈5570", d)
	}
	if z := greatCircleKM(ny, ny); z != 0 {
		t.Fatalf("self distance = %v; want 0", z)
	}
}

func TestWeightingString(t *testing.T) {
	if UnitWeights.String() != "unit" || DistanceWeights.String() != "distance" {
		t.Fatal("weighting names wrong")
	}
}
