package topo

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"recycle/internal/graph"
)

const sampleMeasured = `# three-PoP toy export
node NYC 40.71 -74.01
node LON 51.51 -0.13
node PAR 48.86 2.35

link NYC LON
link LON PAR 7.5
link PAR NYC
`

func TestParseMeasured(t *testing.T) {
	tp, err := ParseMeasured("toy", strings.NewReader(sampleMeasured))
	if err != nil {
		t.Fatal(err)
	}
	g := tp.Graph
	if g.NumNodes() != 3 || g.NumLinks() != 3 {
		t.Fatalf("got %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	// IDs follow declaration order.
	for i, want := range []string{"NYC", "LON", "PAR"} {
		if got := g.Name(graph.NodeID(i)); got != want {
			t.Fatalf("node %d = %q, want %q", i, got, want)
		}
	}
	// Unweighted links with placed endpoints get great-circle km.
	nycLon := g.FindLink(0, 1)
	if w := g.Weight(nycLon); w < 5000 || w > 6000 {
		t.Fatalf("NYC–LON weight %v, want ~5570 km", w)
	}
	// Explicit weights pass through.
	if w := g.Weight(g.FindLink(1, 2)); w != 7.5 {
		t.Fatalf("LON–PAR weight %v, want 7.5", w)
	}
}

func TestParseMeasuredErrors(t *testing.T) {
	for _, tc := range []struct{ name, in, wantErr string }{
		{"unknown-directive", "edge a b", "unknown directive"},
		{"dup-node", "node a\nnode a", "duplicate node"},
		{"undeclared", "node a\nlink a b", "undeclared node"},
		{"bad-weight", "node a\nnode b\nlink a b nope", "bad weight"},
		{"bad-coords", "node a 1 x", "bad coordinates"},
		{"empty", "# nothing\n", "no nodes"},
	} {
		_, err := ParseMeasured(tc.name, strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestLoadMeasuredSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "toy.topo")
	if err := os.WriteFile(path, []byte(sampleMeasured), 0o644); err != nil {
		t.Fatal(err)
	}
	tp, err := ByName("isp:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Name != "toy" {
		t.Fatalf("name %q, want toy (base name, suffix stripped)", tp.Name)
	}
	if tp.Graph.NumLinks() != 3 {
		t.Fatalf("links %d", tp.Graph.NumLinks())
	}
	if _, err := ByName("isp:/no/such/file.topo"); err == nil {
		t.Fatal("missing file: want error")
	}
}

// TestBigGenerators pins the scale workloads the compile benchmarks rely
// on: rand:2000 and grid:40x50 must build (and stay 2-edge-connected for
// rand, which the resilience guarantee needs).
func TestBigGenerators(t *testing.T) {
	tp, err := Generated("rand:2000@1")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Graph.NumNodes() != 2000 {
		t.Fatalf("rand nodes %d", tp.Graph.NumNodes())
	}
	if tp.Graph.NumLinks() <= 2000 {
		t.Fatalf("rand links %d, want cycle + chords", tp.Graph.NumLinks())
	}
	if len(graph.Bridges(tp.Graph)) != 0 {
		t.Fatal("rand:2000 has bridges")
	}
	tp, err = Generated("grid:40x50")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Graph.NumNodes() != 2000 {
		t.Fatalf("grid nodes %d", tp.Graph.NumNodes())
	}
	if tp.Embedding == nil {
		t.Fatal("grid ships its canonical embedding")
	}
}
