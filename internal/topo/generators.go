package topo

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"recycle/internal/graph"
	"recycle/internal/rotation"
)

// Generated large-diameter topologies. The paper evaluates on backbones of
// hop diameter ≤ 6, where the DSCP pool-2 codec's 3 DD bits suffice; these
// generators produce the regression workloads beyond that budget —
// diameters 8..32 and weighted links — that force the flow-label codec.
// Each ships its canonical genus-0 embedding (built directly from the
// planar drawing via rotation.MustFromLinkOrders, like the paper example)
// so construction never runs a planarity embedder.

// Ring returns the n-cycle as a topology: hop diameter ⌊n/2⌋, the
// smallest graph family that scales diameter linearly. A cycle's rotation
// system is forced (degree 2 everywhere), so the adjacency order is
// already the genus-0 embedding.
func Ring(n int) Topology {
	g := graph.Ring(n)
	return Topology{
		Name:      fmt.Sprintf("ring:%d", n),
		Graph:     g,
		Embedding: rotation.AdjacencyOrder(g),
	}
}

// WeightedRing is Ring with deterministic pseudo-random link weights in
// [1, 10): hop-count and weight-sum discriminators diverge on it, so the
// rank quantiser has real bucketisation to do.
func WeightedRing(n int, seed int64) Topology {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n, n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("r%d", i))
	}
	for i := 0; i < n; i++ {
		g.MustAddLink(graph.NodeID(i), graph.NodeID((i+1)%n), 1+9*rng.Float64())
	}
	g.Freeze()
	return Topology{
		Name:      fmt.Sprintf("wring:%d@%d", n, seed),
		Graph:     g,
		Embedding: rotation.AdjacencyOrder(g),
	}
}

// Grid returns the rows×cols grid as a topology with its canonical planar
// embedding: at every node the incident links in clockwise geometric
// order (north, east, south, west). Hop diameter rows+cols−2.
func Grid(rows, cols int) Topology {
	g := graph.Grid(rows, cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	orders := make([][]graph.LinkID, g.NumNodes())
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			var order []graph.LinkID
			if r > 0 {
				order = append(order, g.FindLink(id(r, c), id(r-1, c)))
			}
			if c+1 < cols {
				order = append(order, g.FindLink(id(r, c), id(r, c+1)))
			}
			if r+1 < rows {
				order = append(order, g.FindLink(id(r, c), id(r+1, c)))
			}
			if c > 0 {
				order = append(order, g.FindLink(id(r, c), id(r, c-1)))
			}
			orders[id(r, c)] = order
		}
	}
	return Topology{
		Name:      fmt.Sprintf("grid:%dx%d", rows, cols),
		Graph:     g,
		Embedding: rotation.MustFromLinkOrders(g, orders),
	}
}

// Chain returns a chain of k diamond cells: joints u_0..u_k with each
// consecutive pair bridged by a top and a bottom node, giving hop diameter
// 2k while staying 2-edge-connected (every cell is a 4-cycle). It models
// long thin provider backbones — strings of PoP pairs — where the paper's
// 3-bit budget runs out fastest.
func Chain(k int) Topology {
	if k < 1 {
		panic("topo: chain needs at least one cell")
	}
	g := graph.New(3*k+1, 4*k)
	joints := make([]graph.NodeID, k+1)
	tops := make([]graph.NodeID, k)
	bots := make([]graph.NodeID, k)
	joints[0] = g.AddNode("u0")
	for i := 0; i < k; i++ {
		tops[i] = g.AddNode(fmt.Sprintf("t%d", i))
		bots[i] = g.AddNode(fmt.Sprintf("b%d", i))
		joints[i+1] = g.AddNode(fmt.Sprintf("u%d", i+1))
		g.MustAddLink(joints[i], tops[i], 1)
		g.MustAddLink(joints[i], bots[i], 1)
		g.MustAddLink(tops[i], joints[i+1], 1)
		g.MustAddLink(bots[i], joints[i+1], 1)
	}
	g.Freeze()
	// Canonical planar embedding from the drawing (tops above the joint
	// axis, bottoms below): clockwise at an interior joint u_i the links go
	// previous-top, next-top, next-bottom, previous-bottom; degree-2 nodes
	// have a forced order.
	orders := make([][]graph.LinkID, g.NumNodes())
	for i := 0; i <= k; i++ {
		var order []graph.LinkID
		if i > 0 {
			order = append(order, g.FindLink(joints[i], tops[i-1]))
		}
		if i < k {
			order = append(order, g.FindLink(joints[i], tops[i]))
			order = append(order, g.FindLink(joints[i], bots[i]))
		}
		if i > 0 {
			order = append(order, g.FindLink(joints[i], bots[i-1]))
		}
		orders[joints[i]] = order
	}
	for i := 0; i < k; i++ {
		orders[tops[i]] = []graph.LinkID{
			g.FindLink(tops[i], joints[i]),
			g.FindLink(tops[i], joints[i+1]),
		}
		orders[bots[i]] = []graph.LinkID{
			g.FindLink(bots[i], joints[i]),
			g.FindLink(bots[i], joints[i+1]),
		}
	}
	return Topology{
		Name:      fmt.Sprintf("chain:%d", k),
		Graph:     g,
		Embedding: rotation.MustFromLinkOrders(g, orders),
	}
}

// Rand returns a random planar 2-edge-connected topology: the n-cycle
// plus non-crossing random chords drawn inside the disc, with
// deterministic pseudo-random link weights in [1, 10). Planarity is by
// construction (nested chords never cross), so the Auto embedder finds a
// genus-0 embedding and the §5 delivery guarantee applies — which makes
// the family the "random" leg of the resilience harness: unlike ring and
// grid it has irregular degree, asymmetric redundancy and weight-diverse
// shortest paths, while staying inside the guarantee's preconditions.
func Rand(n int, seed int64) Topology {
	if n < 4 {
		panic("topo: rand needs ≥ 4 nodes")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n, 2*n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("x%d", i))
	}
	weight := func() float64 { return 1 + 9*rng.Float64() }
	for i := 0; i < n; i++ {
		g.MustAddLink(graph.NodeID(i), graph.NodeID((i+1)%n), weight())
	}
	// Draw chords (a, b), a < b, rejecting any that would cross an
	// accepted one: two chords inside the disc cross iff their endpoints
	// strictly interleave around the cycle. Aim for n/2 chords; give up
	// after a bounded number of rejections so dense small cases terminate.
	type chord struct{ a, b int }
	var chords []chord
	crosses := func(c chord) bool {
		for _, d := range chords {
			if (d.a < c.a && c.a < d.b && d.b < c.b) ||
				(c.a < d.a && d.a < c.b && c.b < d.b) {
				return true
			}
		}
		return false
	}
	for tries := 8 * n; tries > 0 && len(chords) < n/2; tries-- {
		a, b := rng.Intn(n), rng.Intn(n)
		if a > b {
			a, b = b, a
		}
		c := chord{a, b}
		if b-a < 2 || (a == 0 && b == n-1) || g.HasLink(graph.NodeID(a), graph.NodeID(b)) || crosses(c) {
			continue
		}
		chords = append(chords, c)
		g.MustAddLink(graph.NodeID(a), graph.NodeID(b), weight())
	}
	return Topology{Name: fmt.Sprintf("rand:%d@%d", n, seed), Graph: g.Freeze()}
}

// Generated parses a generator spec — "ring:24", "wring:16@7",
// "grid:4x8", "chain:12", "rand:24@7" — and returns the topology. The
// seed after '@' is optional (default 1).
func Generated(spec string) (Topology, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return Topology{}, fmt.Errorf("topo: %q is not a generator spec (want kind:args)", spec)
	}
	bad := func(err error) (Topology, error) {
		return Topology{}, fmt.Errorf("topo: bad %s spec %q: %v", kind, spec, err)
	}
	switch kind {
	case "ring":
		n, err := strconv.Atoi(arg)
		if err != nil {
			return bad(err)
		}
		if n < 3 {
			return bad(fmt.Errorf("ring needs ≥ 3 nodes"))
		}
		return Ring(n), nil
	case "wring":
		sizeStr, seedStr, hasSeed := strings.Cut(arg, "@")
		n, err := strconv.Atoi(sizeStr)
		if err != nil {
			return bad(err)
		}
		if n < 3 {
			return bad(fmt.Errorf("ring needs ≥ 3 nodes"))
		}
		seed := int64(1)
		if hasSeed {
			seed, err = strconv.ParseInt(seedStr, 10, 64)
			if err != nil {
				return bad(err)
			}
		}
		return WeightedRing(n, seed), nil
	case "grid":
		rStr, cStr, ok := strings.Cut(arg, "x")
		if !ok {
			return bad(fmt.Errorf("want grid:RxC"))
		}
		rows, err := strconv.Atoi(rStr)
		if err != nil {
			return bad(err)
		}
		cols, err := strconv.Atoi(cStr)
		if err != nil {
			return bad(err)
		}
		if rows < 2 || cols < 2 {
			return bad(fmt.Errorf("grid needs rows, cols ≥ 2"))
		}
		return Grid(rows, cols), nil
	case "chain":
		k, err := strconv.Atoi(arg)
		if err != nil {
			return bad(err)
		}
		if k < 1 {
			return bad(fmt.Errorf("chain needs ≥ 1 cell"))
		}
		return Chain(k), nil
	case "rand":
		sizeStr, seedStr, hasSeed := strings.Cut(arg, "@")
		n, err := strconv.Atoi(sizeStr)
		if err != nil {
			return bad(err)
		}
		if n < 4 {
			return bad(fmt.Errorf("rand needs ≥ 4 nodes"))
		}
		seed := int64(1)
		if hasSeed {
			seed, err = strconv.ParseInt(seedStr, 10, 64)
			if err != nil {
				return bad(err)
			}
		}
		return Rand(n, seed), nil
	case "isp":
		return LoadMeasured(arg)
	}
	return Topology{}, fmt.Errorf("topo: unknown generator %q (want ring, wring, grid, chain, rand or isp:<path>)", kind)
}
