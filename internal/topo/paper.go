package topo

import (
	"fmt"

	"recycle/internal/graph"
	"recycle/internal/rotation"
)

// PaperExample returns the six-node network of the paper's Figure 1,
// reconstructed exactly from the prose of §4, together with its published
// cellular embedding.
//
// Nodes A–F; edges A-B, A-C, A-F, B-C, B-D, C-E, D-E, D-F, E-F. The
// oriented faces of the embedding are:
//
//	c1 = D→E, E→F, F→D
//	c2 = D→B, B→C, C→E, E→D
//	c3 = B→A, A→C, C→B
//	c4 = A→B, B→D, D→F, F→A
//	c5 = A→F, F→E, E→C, C→A   (the outer cell, unlabelled in the paper)
//
// Link weights are chosen so the shortest-path tree toward F matches the
// paper's narrative (packets from A route A→B→D→E→F; D's direct D-F link is
// expensive): the hop-count distance discriminators to F come out as
// A:4, B:3, C:2, D:2, E:1, reproducing the DD values of §4.3 exactly.
func PaperExample() Topology {
	g := graph.New(6, 9)
	a := g.AddNode("A")
	b := g.AddNode("B")
	c := g.AddNode("C")
	d := g.AddNode("D")
	e := g.AddNode("E")
	f := g.AddNode("F")

	weights := []struct {
		x, y graph.NodeID
		w    float64
	}{
		{a, b, 1}, // AB
		{a, c, 3}, // AC
		{a, f, 9}, // AF
		{b, c, 2}, // BC
		{b, d, 1}, // BD
		{c, e, 2}, // CE
		{d, e, 1}, // DE
		{d, f, 9}, // DF (expensive: D routes to F via E)
		{e, f, 1}, // EF
	}
	for _, lw := range weights {
		g.MustAddLink(lw.x, lw.y, lw.w)
	}
	g.Freeze()

	// Rotation orders derived from the faces above. The face-tracing
	// convention is φ(u→v) = σ(v→u): the cycle-following successor of the
	// dart arriving at v from u is the next link in v's rotation after the
	// link to u. The orders below reproduce c1..c5 exactly (verified by
	// TestPaperEmbeddingFaces).
	find := func(x, y graph.NodeID) graph.LinkID {
		l := g.FindLink(x, y)
		if l == graph.NoLink {
			panic(fmt.Sprintf("topo: paper example missing link %d-%d", x, y))
		}
		return l
	}
	orders := make([][]graph.LinkID, 6)
	orders[a] = []graph.LinkID{find(a, b), find(a, c), find(a, f)}
	orders[b] = []graph.LinkID{find(b, a), find(b, d), find(b, c)}
	orders[c] = []graph.LinkID{find(c, a), find(c, b), find(c, e)}
	orders[d] = []graph.LinkID{find(d, b), find(d, f), find(d, e)}
	orders[e] = []graph.LinkID{find(e, d), find(e, f), find(e, c)}
	orders[f] = []graph.LinkID{find(f, d), find(f, a), find(f, e)}
	sys, err := rotation.FromLinkOrders(g, orders)
	if err != nil {
		panic(fmt.Sprintf("topo: paper embedding invalid: %v", err))
	}
	return Topology{Name: "paper", Graph: g, Embedding: sys}
}
