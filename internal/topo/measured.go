package topo

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"recycle/internal/graph"
)

// ParseMeasured reads an ISP-measured topology in the simple text format
// of Rocketfuel-style PoP exports:
//
//	# comment (blank lines ignored)
//	node <name> [lat lon]
//	link <a> <b> [weight]
//
// Nodes may carry coordinates; a link without an explicit weight gets the
// great-circle kilometres between its endpoints when both have
// coordinates, and weight 1 otherwise — the same convention the built-in
// ISP topologies use. Node names may be any whitespace-free token
// (Rocketfuel exports use "city,CC" PoP labels). Node IDs follow
// declaration order, so the numbering is reproducible run to run. name
// labels the resulting Topology in reports.
func ParseMeasured(name string, r io.Reader) (Topology, error) {
	type nodeRec struct {
		c      city
		placed bool
	}
	nodes := map[string]*nodeRec{}
	var nodeOrder []string
	type linkRec struct {
		a, b string
		w    float64
		expl bool
		line int
	}
	var links []linkRec
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		bad := func(msg string) (Topology, error) {
			return Topology{}, fmt.Errorf("topo: %s line %d: %s", name, lineNo, msg)
		}
		switch f[0] {
		case "node":
			if len(f) != 2 && len(f) != 4 {
				return bad("want: node <name> [lat lon]")
			}
			if _, dup := nodes[f[1]]; dup {
				return bad(fmt.Sprintf("duplicate node %q", f[1]))
			}
			rec := &nodeRec{c: city{name: f[1]}}
			if len(f) == 4 {
				lat, err1 := strconv.ParseFloat(f[2], 64)
				lon, err2 := strconv.ParseFloat(f[3], 64)
				if err1 != nil || err2 != nil {
					return bad("bad coordinates")
				}
				rec.c.lat, rec.c.lon, rec.placed = lat, lon, true
			}
			nodes[f[1]] = rec
			nodeOrder = append(nodeOrder, f[1])
		case "link":
			if len(f) != 3 && len(f) != 4 {
				return bad("want: link <a> <b> [weight]")
			}
			l := linkRec{a: f[1], b: f[2], line: lineNo}
			if len(f) == 4 {
				w, err := strconv.ParseFloat(f[3], 64)
				if err != nil || w <= 0 {
					return bad("bad weight")
				}
				l.w, l.expl = w, true
			}
			links = append(links, l)
		default:
			return bad(fmt.Sprintf("unknown directive %q (want node or link)", f[0]))
		}
	}
	if err := sc.Err(); err != nil {
		return Topology{}, fmt.Errorf("topo: %s: %w", name, err)
	}
	if len(nodes) == 0 {
		return Topology{}, fmt.Errorf("topo: %s: no nodes", name)
	}
	g := graph.New(len(nodes), len(links))
	ids := make(map[string]graph.NodeID, len(nodes))
	for _, n := range nodeOrder {
		ids[n] = g.AddNode(n)
	}
	for _, l := range links {
		a, okA := ids[l.a]
		b, okB := ids[l.b]
		if !okA || !okB {
			missing := l.a
			if okA {
				missing = l.b
			}
			return Topology{}, fmt.Errorf("topo: %s line %d: link references undeclared node %q", name, l.line, missing)
		}
		w := l.w
		if !l.expl {
			w = 1
			ra, rb := nodes[l.a], nodes[l.b]
			if ra.placed && rb.placed {
				w = greatCircleKM(ra.c, rb.c)
				if w < 1 {
					w = 1 // co-located PoPs still cost something
				}
			}
		}
		if _, err := g.AddLink(a, b, w); err != nil {
			return Topology{}, fmt.Errorf("topo: %s line %d: %v", name, l.line, err)
		}
	}
	return Topology{Name: name, Graph: g.Freeze()}, nil
}

// LoadMeasured reads a measured topology file (see ParseMeasured); the
// topology is named after the file's base name. The "isp:<path>" spec
// accepted by ByName and every -topo flag routes here.
func LoadMeasured(path string) (Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return Topology{}, fmt.Errorf("topo: %w", err)
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimSuffix(name, ".topo")
	return ParseMeasured(name, f)
}
