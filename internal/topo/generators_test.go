package topo

import (
	"testing"

	"recycle/internal/embedding"
	"recycle/internal/graph"
)

// TestGeneratedTopologiesLargeDiameter: the regression families must cover
// hop diameters 8..32 — beyond the DSCP pool-2 budget of 7 — while staying
// 2-edge-connected (no bridges: PR's recovery precondition) and shipping
// genus-0 embeddings (the §5 delivery guarantee's precondition).
func TestGeneratedTopologiesLargeDiameter(t *testing.T) {
	cases := []struct {
		tp       Topology
		diameter int
	}{
		{Ring(16), 8},
		{Ring(24), 12},
		{Ring(64), 32},
		{WeightedRing(20, 7), 10},
		{Grid(2, 9), 9},
		{Grid(5, 5), 8},
		{Grid(9, 9), 16},
		{Chain(4), 8},
		{Chain(16), 32},
	}
	for _, tc := range cases {
		t.Run(tc.tp.Name, func(t *testing.T) {
			g := tc.tp.Graph
			if !g.Frozen() {
				t.Fatal("generated graph not frozen")
			}
			if d := graph.HopDiameter(g); d != tc.diameter {
				t.Fatalf("hop diameter = %d; want %d", d, tc.diameter)
			}
			for _, fs := range graph.SingleFailureScenarios(g) {
				if !graph.ConnectedUnder(g, fs) {
					t.Fatalf("bridge found: %v disconnects", fs)
				}
			}
			if tc.tp.Embedding == nil {
				t.Fatal("no embedding shipped")
			}
			if err := tc.tp.Embedding.Validate(); err != nil {
				t.Fatalf("embedding invalid: %v", err)
			}
			if genus := tc.tp.Embedding.Genus(); genus != 0 {
				t.Fatalf("embedding genus = %d; want 0", genus)
			}
		})
	}
}

// TestWeightedRingWeightsVary: the weighted ring must actually decouple
// weight sums from hop counts.
func TestWeightedRingWeightsVary(t *testing.T) {
	tp := WeightedRing(16, 3)
	g := tp.Graph
	first := g.Link(0).Weight
	varied := false
	for l := 1; l < g.NumLinks(); l++ {
		if g.Link(graph.LinkID(l)).Weight != first {
			varied = true
		}
		if g.Link(graph.LinkID(l)).Weight < 1 {
			t.Fatalf("link %d weight %v < 1", l, g.Link(graph.LinkID(l)).Weight)
		}
	}
	if !varied {
		t.Fatal("all weights equal: not a weighted ring")
	}
	if w1, w2 := WeightedRing(16, 3), WeightedRing(16, 3); w1.Graph.Link(5).Weight != w2.Graph.Link(5).Weight {
		t.Fatal("weighted ring not deterministic per seed")
	}
}

// TestGeneratedSpecParsing: ByName accepts generator specs and rejects
// malformed ones.
func TestGeneratedSpecParsing(t *testing.T) {
	good := map[string]int{ // spec → expected node count
		"ring:24":    24,
		"wring:16@7": 16,
		"wring:16":   16,
		"grid:4x8":   32,
		"chain:12":   37,
	}
	for spec, nodes := range good {
		tp, err := ByName(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if tp.Graph.NumNodes() != nodes {
			t.Fatalf("%s: %d nodes; want %d", spec, tp.Graph.NumNodes(), nodes)
		}
		if tp.Name != spec && spec != "wring:16" {
			t.Fatalf("%s: name %q", spec, tp.Name)
		}
	}
	for _, spec := range []string{
		"ring:2", "ring:x", "grid:4", "grid:1x5", "grid:axb",
		"chain:0", "chain:z", "wring:16@x", "torus:3x3", "ring",
	} {
		if _, err := ByName(spec); err == nil {
			t.Fatalf("%s: accepted", spec)
		}
	}
}

// TestRandGenerator: the random planar family must stay inside the §5
// guarantee's preconditions — 2-edge-connected (chords never cross by
// construction, so the cycle+chords graph is planar and the Auto
// embedder must find genus 0) — while being deterministic per seed and
// actually irregular (some chords drawn).
func TestRandGenerator(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		tp := Rand(24, seed)
		g := tp.Graph
		if !g.Frozen() {
			t.Fatal("rand graph not frozen")
		}
		if g.NumNodes() != 24 {
			t.Fatalf("rand:24@%d has %d nodes", seed, g.NumNodes())
		}
		if g.NumLinks() <= 24 {
			t.Fatalf("rand:24@%d drew no chords (%d links); the family must be denser than the bare cycle",
				seed, g.NumLinks())
		}
		if !graph.TwoEdgeConnected(g) {
			t.Fatalf("rand:24@%d is not 2-edge-connected", seed)
		}
		sys, err := (embedding.Auto{Seed: 1}).Embed(g)
		if err != nil {
			t.Fatalf("rand:24@%d: %v", seed, err)
		}
		if genus := sys.Genus(); genus != 0 {
			t.Fatalf("rand:24@%d embedding genus = %d; want 0 (chords are non-crossing by construction)", seed, genus)
		}
	}
	a, b := Rand(20, 5), Rand(20, 5)
	if a.Graph.NumLinks() != b.Graph.NumLinks() {
		t.Fatal("rand not deterministic per seed")
	}
	for l := 0; l < a.Graph.NumLinks(); l++ {
		la, lb := a.Graph.Link(graph.LinkID(l)), b.Graph.Link(graph.LinkID(l))
		if la.A != lb.A || la.B != lb.B || la.Weight != lb.Weight {
			t.Fatalf("rand link %d differs across same-seed draws: %+v vs %+v", l, la, lb)
		}
	}
}

// TestRandSpecParsing: ByName accepts rand:N and rand:N@S.
func TestRandSpecParsing(t *testing.T) {
	tp, err := ByName("rand:24@7")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Graph.NumNodes() != 24 || tp.Name != "rand:24@7" {
		t.Fatalf("rand:24@7 parsed to %q with %d nodes", tp.Name, tp.Graph.NumNodes())
	}
	if tp2, err := ByName("rand:16"); err != nil || tp2.Name != "rand:16@1" {
		t.Fatalf("rand:16 default seed: %v, %q", err, tp2.Name)
	}
	for _, spec := range []string{"rand:3", "rand:x", "rand:24@x"} {
		if _, err := ByName(spec); err == nil {
			t.Fatalf("%s: accepted", spec)
		}
	}
}
