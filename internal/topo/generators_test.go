package topo

import (
	"testing"

	"recycle/internal/graph"
)

// TestGeneratedTopologiesLargeDiameter: the regression families must cover
// hop diameters 8..32 — beyond the DSCP pool-2 budget of 7 — while staying
// 2-edge-connected (no bridges: PR's recovery precondition) and shipping
// genus-0 embeddings (the §5 delivery guarantee's precondition).
func TestGeneratedTopologiesLargeDiameter(t *testing.T) {
	cases := []struct {
		tp       Topology
		diameter int
	}{
		{Ring(16), 8},
		{Ring(24), 12},
		{Ring(64), 32},
		{WeightedRing(20, 7), 10},
		{Grid(2, 9), 9},
		{Grid(5, 5), 8},
		{Grid(9, 9), 16},
		{Chain(4), 8},
		{Chain(16), 32},
	}
	for _, tc := range cases {
		t.Run(tc.tp.Name, func(t *testing.T) {
			g := tc.tp.Graph
			if !g.Frozen() {
				t.Fatal("generated graph not frozen")
			}
			if d := graph.HopDiameter(g); d != tc.diameter {
				t.Fatalf("hop diameter = %d; want %d", d, tc.diameter)
			}
			for _, fs := range graph.SingleFailureScenarios(g) {
				if !graph.ConnectedUnder(g, fs) {
					t.Fatalf("bridge found: %v disconnects", fs)
				}
			}
			if tc.tp.Embedding == nil {
				t.Fatal("no embedding shipped")
			}
			if err := tc.tp.Embedding.Validate(); err != nil {
				t.Fatalf("embedding invalid: %v", err)
			}
			if genus := tc.tp.Embedding.Genus(); genus != 0 {
				t.Fatalf("embedding genus = %d; want 0", genus)
			}
		})
	}
}

// TestWeightedRingWeightsVary: the weighted ring must actually decouple
// weight sums from hop counts.
func TestWeightedRingWeightsVary(t *testing.T) {
	tp := WeightedRing(16, 3)
	g := tp.Graph
	first := g.Link(0).Weight
	varied := false
	for l := 1; l < g.NumLinks(); l++ {
		if g.Link(graph.LinkID(l)).Weight != first {
			varied = true
		}
		if g.Link(graph.LinkID(l)).Weight < 1 {
			t.Fatalf("link %d weight %v < 1", l, g.Link(graph.LinkID(l)).Weight)
		}
	}
	if !varied {
		t.Fatal("all weights equal: not a weighted ring")
	}
	if w1, w2 := WeightedRing(16, 3), WeightedRing(16, 3); w1.Graph.Link(5).Weight != w2.Graph.Link(5).Weight {
		t.Fatal("weighted ring not deterministic per seed")
	}
}

// TestGeneratedSpecParsing: ByName accepts generator specs and rejects
// malformed ones.
func TestGeneratedSpecParsing(t *testing.T) {
	good := map[string]int{ // spec → expected node count
		"ring:24":    24,
		"wring:16@7": 16,
		"wring:16":   16,
		"grid:4x8":   32,
		"chain:12":   37,
	}
	for spec, nodes := range good {
		tp, err := ByName(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if tp.Graph.NumNodes() != nodes {
			t.Fatalf("%s: %d nodes; want %d", spec, tp.Graph.NumNodes(), nodes)
		}
		if tp.Name != spec && spec != "wring:16" {
			t.Fatalf("%s: name %q", spec, tp.Name)
		}
	}
	for _, spec := range []string{
		"ring:2", "ring:x", "grid:4", "grid:1x5", "grid:axb",
		"chain:0", "chain:z", "wring:16@x", "torus:3x3", "ring",
	} {
		if _, err := ByName(spec); err == nil {
			t.Fatalf("%s: accepted", spec)
		}
	}
}
