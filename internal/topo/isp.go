package topo

// Built-in ISP topologies used by the paper's evaluation (§6).
//
// Abilene is the published 11-node / 14-link Internet2 research backbone
// [paper ref 21]. GÉANT is the 23-node / 37-link pan-European research
// network snapshot widely used in routing studies [paper ref 5]. Teleglobe
// is a PoP-level reconstruction of the AS6453 backbone measured by
// Rocketfuel [paper ref 18]; the raw Rocketfuel data is not redistributable,
// so the link list below reconstructs a topology of the published size,
// degree distribution and diameter from the documented PoP cities — see
// DESIGN.md §3 for the substitution rationale. Stretch distributions depend
// on exactly these shape properties, which is what the reproduction needs.

// Abilene returns the Internet2 Abilene backbone: 11 PoPs, 14 links.
func Abilene(w Weighting) Topology {
	cities := []city{
		{"Seattle", 47.61, -122.33},
		{"Sunnyvale", 37.37, -122.04},
		{"LosAngeles", 34.05, -118.24},
		{"Denver", 39.74, -104.99},
		{"KansasCity", 39.10, -94.58},
		{"Houston", 29.76, -95.37},
		{"Chicago", 41.88, -87.63},
		{"Indianapolis", 39.77, -86.16},
		{"Atlanta", 33.75, -84.39},
		{"Washington", 38.91, -77.04},
		{"NewYork", 40.71, -74.01},
	}
	links := [][2]string{
		{"Seattle", "Sunnyvale"},
		{"Seattle", "Denver"},
		{"Sunnyvale", "LosAngeles"},
		{"Sunnyvale", "Denver"},
		{"LosAngeles", "Houston"},
		{"Denver", "KansasCity"},
		{"KansasCity", "Houston"},
		{"KansasCity", "Indianapolis"},
		{"Houston", "Atlanta"},
		{"Chicago", "Indianapolis"},
		{"Chicago", "NewYork"},
		{"Indianapolis", "Atlanta"},
		{"Atlanta", "Washington"},
		{"NewYork", "Washington"},
	}
	return buildCityTopology("abilene", cities, links, w)
}

// Geant returns the GÉANT pan-European research network: 23 PoPs, 37 links
// (the 2004–2009 snapshot used throughout the traffic-engineering
// literature).
func Geant(w Weighting) Topology {
	cities := []city{
		{"Austria", 48.21, 16.37},
		{"Belgium", 50.85, 4.35},
		{"Croatia", 45.81, 15.98},
		{"Czech", 50.09, 14.42},
		{"Germany", 50.11, 8.68},
		{"Spain", 40.42, -3.70},
		{"France", 48.86, 2.35},
		{"Greece", 37.98, 23.73},
		{"Hungary", 47.50, 19.04},
		{"Ireland", 53.35, -6.26},
		{"Israel", 32.09, 34.78},
		{"Italy", 41.90, 12.50},
		{"Luxembourg", 49.61, 6.13},
		{"Netherlands", 52.37, 4.89},
		{"Poland", 52.23, 21.01},
		{"Portugal", 38.72, -9.14},
		{"Sweden", 59.33, 18.07},
		{"Slovenia", 46.06, 14.51},
		{"Slovakia", 48.15, 17.11},
		{"Switzerland", 46.95, 7.45},
		{"UK", 51.51, -0.13},
		{"NewYorkPoP", 40.71, -74.01},
		{"Cyprus", 35.19, 33.38},
	}
	links := [][2]string{
		{"Austria", "Czech"},
		{"Austria", "Germany"},
		{"Austria", "Hungary"},
		{"Austria", "Slovakia"},
		{"Austria", "Slovenia"},
		{"Austria", "Switzerland"},
		{"Belgium", "France"},
		{"Belgium", "Netherlands"},
		{"Belgium", "UK"},
		{"Croatia", "Hungary"},
		{"Czech", "Germany"},
		{"Czech", "Poland"},
		{"Czech", "Slovakia"},
		{"Germany", "Italy"},
		{"Germany", "Netherlands"},
		{"Germany", "Sweden"},
		{"Germany", "Switzerland"},
		{"Germany", "NewYorkPoP"},
		{"Spain", "France"},
		{"Spain", "Portugal"},
		{"France", "Luxembourg"},
		{"France", "Switzerland"},
		{"France", "UK"},
		{"Greece", "Italy"},
		{"Greece", "Cyprus"},
		{"Hungary", "Slovakia"},
		{"Ireland", "UK"},
		{"Ireland", "Netherlands"},
		{"Israel", "Italy"},
		{"Israel", "Cyprus"},
		{"Italy", "Switzerland"},
		{"Luxembourg", "Germany"},
		{"Netherlands", "UK"},
		{"Poland", "Sweden"},
		{"Portugal", "UK"},
		{"Sweden", "NewYorkPoP"},
		{"Slovenia", "Croatia"},
		{"UK", "NewYorkPoP"},
	}
	return buildCityTopology("geant", cities, links, w)
}

// Teleglobe returns the PoP-level reconstruction of the Teleglobe / VSNL
// International backbone (Rocketfuel AS6453): 25 PoPs, 37 links spanning
// its published North American / European / Asian footprint.
func Teleglobe(w Weighting) Topology {
	cities := []city{
		{"Montreal", 45.50, -73.57},
		{"Toronto", 43.65, -79.38},
		{"NewYork", 40.71, -74.01},
		{"Newark", 40.74, -74.17},
		{"Ashburn", 39.04, -77.49},
		{"Atlanta2", 33.75, -84.39},
		{"Miami", 25.76, -80.19},
		{"Chicago2", 41.88, -87.63},
		{"Dallas", 32.78, -96.80},
		{"PaloAlto", 37.44, -122.14},
		{"LosAngeles2", 34.05, -118.24},
		{"Seattle2", 47.61, -122.33},
		{"London", 51.51, -0.13},
		{"Paris", 48.86, 2.35},
		{"Amsterdam", 52.37, 4.89},
		{"Frankfurt", 50.11, 8.68},
		{"Madrid", 40.42, -3.70},
		{"Lisbon", 38.72, -9.14},
		{"Milan", 45.46, 9.19},
		{"Singapore", 1.35, 103.82},
		{"HongKong", 22.32, 114.17},
		{"Tokyo", 35.68, 139.65},
		{"Mumbai", 19.08, 72.88},
		{"Chennai", 13.08, 80.27},
		{"SaoPaulo", -23.55, -46.63},
	}
	links := [][2]string{
		// North American core ring + chords.
		{"Montreal", "Toronto"},
		{"Montreal", "NewYork"},
		{"Toronto", "Chicago2"},
		{"NewYork", "Newark"},
		{"NewYork", "Ashburn"},
		{"Newark", "Ashburn"},
		{"Ashburn", "Atlanta2"},
		{"Atlanta2", "Miami"},
		{"Atlanta2", "Dallas"},
		{"Chicago2", "NewYork"},
		{"Chicago2", "Dallas"},
		{"Chicago2", "Seattle2"},
		{"Dallas", "LosAngeles2"},
		{"Dallas", "Miami"},
		{"PaloAlto", "LosAngeles2"},
		{"PaloAlto", "Seattle2"},
		{"PaloAlto", "Tokyo"},
		// Transatlantic.
		{"NewYork", "London"},
		{"Newark", "Paris"},
		{"Montreal", "London"},
		{"Miami", "SaoPaulo"},
		{"SaoPaulo", "Lisbon"},
		// European mesh.
		{"London", "Paris"},
		{"London", "Amsterdam"},
		{"London", "Lisbon"},
		{"Paris", "Frankfurt"},
		{"Paris", "Madrid"},
		{"Amsterdam", "Frankfurt"},
		{"Frankfurt", "Milan"},
		{"Madrid", "Lisbon"},
		{"Milan", "Paris"},
		// Asia.
		{"London", "Mumbai"},
		{"Mumbai", "Chennai"},
		{"Chennai", "Singapore"},
		{"Singapore", "HongKong"},
		{"HongKong", "Tokyo"},
		{"Singapore", "Mumbai"},
	}
	return buildCityTopology("teleglobe", cities, links, w)
}
