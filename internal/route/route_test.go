package route

import (
	"testing"

	"recycle/internal/graph"
	"recycle/internal/topo"
)

func TestBuildPaperExample(t *testing.T) {
	tp := topo.PaperExample()
	tbl := Build(tp.Graph, HopCount)
	g := tp.Graph
	f := g.NodeByName("F")

	// The §4.3 DD narrative: A:4 B:3 C:2 D:2 E:1 toward F.
	want := map[string]float64{"A": 4, "B": 3, "C": 2, "D": 2, "E": 1, "F": 0}
	for name, dd := range want {
		if got := tbl.DD(g.NodeByName(name), f); got != dd {
			t.Errorf("DD(%s→F) = %v; want %v", name, got, dd)
		}
	}
	if next := tbl.NextNode(g.NodeByName("D"), f); next != g.NodeByName("E") {
		t.Errorf("D's next hop to F = %s; want E", g.Name(next))
	}
	if l := tbl.NextLink(f, f); l != graph.NoLink {
		t.Error("destination should have no next link")
	}
}

func TestWeightSumDiscriminator(t *testing.T) {
	tp := topo.PaperExample()
	g := tp.Graph
	tbl := Build(g, WeightSum)
	f := g.NodeByName("F")
	// D→E→F: weights 1 + 1 = 2.
	if dd := tbl.DD(g.NodeByName("D"), f); dd != 2 {
		t.Fatalf("weight DD(D→F) = %v; want 2", dd)
	}
	// A→B→D→E→F = 1+1+1+1 = 4.
	if dd := tbl.DD(g.NodeByName("A"), f); dd != 4 {
		t.Fatalf("weight DD(A→F) = %v; want 4", dd)
	}
	if tbl.DiscriminatorKind() != WeightSum {
		t.Fatal("discriminator kind lost")
	}
}

func TestDDStrictlyDecreasesAlongPath(t *testing.T) {
	// The termination proof (§5.3) needs DD to decrease strictly hop by
	// hop along any shortest path, for both discriminators.
	for _, disc := range []Discriminator{HopCount, WeightSum} {
		g := graph.RandomTwoConnected(20, 40, 3)
		tbl := Build(g, disc)
		for dest := 0; dest < g.NumNodes(); dest++ {
			d := graph.NodeID(dest)
			for src := 0; src < g.NumNodes(); src++ {
				n := graph.NodeID(src)
				for n != d {
					next := tbl.NextNode(n, d)
					if tbl.DD(next, d) >= tbl.DD(n, d) {
						t.Fatalf("%v: DD not strictly decreasing at %d→%d toward %d", disc, n, next, d)
					}
					n = next
				}
			}
		}
	}
}

func TestDDPanicsOnUnreachable(t *testing.T) {
	g := graph.New(2, 0)
	g.AddNode("a")
	g.AddNode("b")
	g.Freeze()
	tbl := Build(g, HopCount)
	if tbl.Reachable(0, 1) {
		t.Fatal("disconnected nodes reported reachable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DD for unreachable pair did not panic")
		}
	}()
	tbl.DD(0, 1)
}

func TestMaxDDAndDDBits(t *testing.T) {
	// Ring of 8: hop diameter 4 → maxDD 4 → 3 bits.
	tbl := Build(graph.Ring(8), HopCount)
	if max := tbl.MaxDD(); max != 4 {
		t.Fatalf("maxDD = %v; want 4", max)
	}
	if bits := tbl.DDBits(); bits != 3 {
		t.Fatalf("DDBits = %d; want 3", bits)
	}
	// Paper example: maxDD is 4 (A→F) → 3 bits.
	tp := topo.PaperExample()
	tbl = Build(tp.Graph, HopCount)
	if bits := tbl.DDBits(); bits != 3 {
		t.Fatalf("paper example DDBits = %d; want 3", bits)
	}
	// Single link: maxDD 1 → 1 bit.
	g := graph.New(2, 1)
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.MustAddLink(a, b, 1)
	g.Freeze()
	if bits := Build(g, HopCount).DDBits(); bits != 1 {
		t.Fatalf("K2 DDBits = %d; want 1", bits)
	}
}

func TestPathCost(t *testing.T) {
	g := graph.Ring(5)
	tbl := Build(g, HopCount)
	if c := tbl.PathCost(2, 0); c != 2 {
		t.Fatalf("cost 2→0 on C5 = %v; want 2", c)
	}
}

func TestDiscriminatorString(t *testing.T) {
	if HopCount.String() != "hop-count" || WeightSum.String() != "weight-sum" {
		t.Fatal("discriminator names wrong")
	}
	if Discriminator(99).String() == "" {
		t.Fatal("unknown discriminator should still render")
	}
}
