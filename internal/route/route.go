// Package route builds the conventional shortest-path routing state PR
// extends: per-destination next hops plus the "distance discriminator"
// column the paper adds to the routing table (§4.3) — a strictly decreasing
// function of progress along the shortest path, used by PR's termination
// condition. Hop count (the paper's running example) and weight sum (its
// other candidate) are both supported.
package route

import (
	"fmt"
	"math"

	"recycle/internal/graph"
	"recycle/internal/par"
)

// Discriminator selects the distance-discriminator function stored beside
// each routing entry.
type Discriminator int

const (
	// HopCount discriminates by hops along the shortest path — the
	// paper's default, needing only ⌈log2 d⌉ DD bits for diameter d.
	HopCount Discriminator = iota
	// WeightSum discriminates by the sum of link weights along the
	// shortest path.
	WeightSum
)

// String names the discriminator for reports.
func (d Discriminator) String() string {
	switch d {
	case HopCount:
		return "hop-count"
	case WeightSum:
		return "weight-sum"
	}
	return fmt.Sprintf("Discriminator(%d)", int(d))
}

// Table is the full routing state of a network: one shortest-path tree per
// destination, computed on the failure-free topology. PR never recomputes
// it at failure time — that is the point of the scheme.
type Table struct {
	g     *graph.Graph
	disc  Discriminator
	trees []*graph.SPTree // indexed by destination
}

// Build computes routing tables for every destination of g using Dijkstra
// with deterministic tie-breaking. Destinations are independent, so the
// builds fan out across GOMAXPROCS workers; each tree is a canonical
// function of (g, destination) alone, so the result is bit-identical to
// a sequential build at any worker count.
func Build(g *graph.Graph, disc Discriminator) *Table {
	return BuildWorkers(g, disc, 0)
}

// BuildWorkers is Build with an explicit worker count: 0 picks the
// automatic fan-out, 1 forces the sequential build (the differential
// harnesses compare the two).
func BuildWorkers(g *graph.Graph, disc Discriminator, workers int) *Table {
	t := &Table{g: g, disc: disc, trees: make([]*graph.SPTree, g.NumNodes())}
	par.For(g.NumNodes(), workers, func(_, lo, hi int) {
		for d := lo; d < hi; d++ {
			t.trees[d] = graph.ShortestPathTree(g, graph.NodeID(d), nil)
		}
	})
	return t
}

// NewFromTrees assembles a Table over g from externally computed
// per-destination trees — the delta-recompilation hook: an incremental
// recompiler repairs only the destination trees a topology edit touched
// and shares every clean tree with the previous table. trees[d] must be
// the canonical ShortestPathTree toward destination d on g (the
// differential harness in internal/dataplane enforces this bit-for-bit).
func NewFromTrees(g *graph.Graph, disc Discriminator, trees []*graph.SPTree) (*Table, error) {
	if len(trees) != g.NumNodes() {
		return nil, fmt.Errorf("route: %d trees for %d nodes", len(trees), g.NumNodes())
	}
	for d, tree := range trees {
		if tree == nil || tree.Dest != graph.NodeID(d) {
			return nil, fmt.Errorf("route: tree %d missing or rooted elsewhere", d)
		}
	}
	return &Table{g: g, disc: disc, trees: trees}, nil
}

// Graph returns the topology the table was built for.
func (t *Table) Graph() *graph.Graph { return t.g }

// DiscriminatorKind returns which discriminator the table stores.
func (t *Table) DiscriminatorKind() Discriminator { return t.disc }

// Tree returns the shortest-path tree toward dest.
func (t *Table) Tree(dest graph.NodeID) *graph.SPTree { return t.trees[dest] }

// NextLink returns the link node n uses toward dest (NoLink at dest or if
// unreachable).
func (t *Table) NextLink(n, dest graph.NodeID) graph.LinkID {
	return t.trees[dest].NextLink[n]
}

// NextNode returns the node after n on the path toward dest.
func (t *Table) NextNode(n, dest graph.NodeID) graph.NodeID {
	return t.trees[dest].NextNode[n]
}

// Reachable reports whether n can reach dest in the failure-free topology.
func (t *Table) Reachable(n, dest graph.NodeID) bool {
	return t.trees[dest].Reachable(n)
}

// DD returns node n's distance discriminator toward dest. Larger means
// farther; the destination's own value is 0. It panics for unreachable
// pairs, which routing code must filter first.
func (t *Table) DD(n, dest graph.NodeID) float64 {
	tree := t.trees[dest]
	if !tree.Reachable(n) {
		panic(fmt.Sprintf("route: DD(%d,%d) for unreachable pair", n, dest))
	}
	if t.disc == HopCount {
		return float64(tree.Hops[n])
	}
	return tree.Dist[n]
}

// PathCost returns the failure-free shortest-path cost (weight sum) from n
// to dest, +Inf if unreachable.
func (t *Table) PathCost(n, dest graph.NodeID) float64 { return t.trees[dest].Dist[n] }

// MaxDD returns the largest finite discriminator value stored in the table.
// The paper sizes the DD header field from this: ⌈log2(maxDD+1)⌉ bits when
// using hop counts (in the order of log2 of the diameter).
func (t *Table) MaxDD() float64 {
	max := 0.0
	for dest := 0; dest < t.g.NumNodes(); dest++ {
		tree := t.trees[dest]
		for n := 0; n < t.g.NumNodes(); n++ {
			if !tree.Reachable(graph.NodeID(n)) {
				continue
			}
			if dd := t.DD(graph.NodeID(n), graph.NodeID(dest)); dd > max {
				max = dd
			}
		}
	}
	return max
}

// DDBits returns the number of bits needed to carry any DD value of this
// table: the smallest b with 2^b > maxDD (minimum 1). With hop-count
// discriminators this is the paper's "in the order of log2(d) bits" for
// network diameter d; weight sums are first rounded up.
func (t *Table) DDBits() int {
	max := int64(math.Ceil(t.MaxDD()))
	bits := 1
	for int64(1)<<bits <= max {
		bits++
	}
	return bits
}
