package traffic

import (
	"fmt"
	"math"
	"math/rand"
)

// BoundedPareto draws packet sizes from a bounded Pareto distribution —
// the standard heavy-tailed model for flow and packet sizes (most packets
// small, a fat tail of large ones), truncated to [MinBits, MaxBits] so no
// sample exceeds a link MTU or underflows a header. Shape Alpha controls
// the tail: smaller alpha, heavier tail (internet flow sizes are commonly
// fitted with alpha ≈ 1.1–1.5).
type BoundedPareto struct {
	// Alpha is the tail index (must be positive; ≈1.1–1.5 for internet
	// traffic).
	Alpha float64
	// MinBits and MaxBits bound the sampled sizes.
	MinBits, MaxBits int
}

// Name implements SizeDist.
func (b BoundedPareto) Name() string { return "bounded-pareto" }

// Validate implements SizeDist.
func (b BoundedPareto) Validate() error {
	if b.Alpha <= 0 {
		return fmt.Errorf("traffic: bounded-pareto sizes have non-positive alpha %g", b.Alpha)
	}
	if b.MinBits <= 0 {
		return fmt.Errorf("traffic: bounded-pareto sizes have non-positive minimum %d bits", b.MinBits)
	}
	if b.MaxBits < b.MinBits {
		return fmt.Errorf("traffic: bounded-pareto sizes have max %d bits below min %d", b.MaxBits, b.MinBits)
	}
	return nil
}

// SampleBits implements SizeDist by inverse-CDF sampling:
// x = L / (1 - U·(1-(L/H)^α))^(1/α).
func (b BoundedPareto) SampleBits(rng *rand.Rand) int {
	l, h := float64(b.MinBits), float64(b.MaxBits)
	if b.MinBits == b.MaxBits {
		return b.MinBits
	}
	u := rng.Float64()
	x := l / math.Pow(1-u*(1-math.Pow(l/h, b.Alpha)), 1/b.Alpha)
	if x > h {
		x = h // guard numeric drift at u→1
	}
	return int(x)
}

// Mean returns the analytic mean of the distribution, for statistical
// sanity tests and load planning.
func (b BoundedPareto) Mean() float64 {
	l, h := float64(b.MinBits), float64(b.MaxBits)
	a := b.Alpha
	if b.MinBits == b.MaxBits {
		return l
	}
	if a == 1 {
		return l * h / (h - l) * math.Log(h/l)
	}
	return math.Pow(l, a) / (1 - math.Pow(l/h, a)) * a / (a - 1) *
		(1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}
