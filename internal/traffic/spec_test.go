package traffic

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		want Source
	}{
		{"fixed:rate=1000", Fixed{Interval: time.Millisecond}},
		{"fixed:interval=2ms,bits=4096", Fixed{Interval: 2 * time.Millisecond, Bits: 4096}},
		{"poisson:rate=2430", Poisson{Rate: 2430, Seed: 1}},
		{"poisson:rate=100,bits=512,seed=9", Poisson{Rate: 100, Sizes: FixedSize{Bits: 512}, Seed: 9}},
		{"poisson:rate=100,pareto=1.3/512/96000", Poisson{Rate: 100, Sizes: BoundedPareto{Alpha: 1.3, MinBits: 512, MaxBits: 96000}, Seed: 1}},
		{"mmpp:on=5000,off=0,dwell=10ms/90ms", MMPP{RateOn: 5000, MeanOn: 10 * time.Millisecond, MeanOff: 90 * time.Millisecond, Seed: 1}},
		{"mmpp:on=5000,off=100,dwell=10ms/90ms,seed=3", MMPP{RateOn: 5000, RateOff: 100, MeanOn: 10 * time.Millisecond, MeanOff: 90 * time.Millisecond, Seed: 3}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("ParseSpec(%q) = %#v; want %#v", c.spec, got, c.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"warp:rate=1", "unknown source kind"},
		{"fixed:", "needs rate"},
		{"fixed:rate=0", "non-positive rate"},
		{"fixed:rate=1,interval=1ms", "not both"},
		{"fixed:rate=1,pareto=1.3/1/2", "does not apply to fixed sources"},
		{"poisson:rate=1,dwell=1ms/2ms", "does not apply to poisson sources"},
		{"mmpp:on=100,dwell=1ms/2ms,interval=5ms", "does not apply to mmpp sources"},
		{"fixed:bogus=1", "unknown option"},
		{"fixed:rate", "want key=value"},
		{"poisson:bits=100", "needs rate"},
		{"poisson:rate=-5", "non-positive rate"},
		{"poisson:rate=abc", "bad rate"},
		{"mmpp:on=100", "needs on=<pps> and dwell"},
		{"mmpp:on=100,dwell=10ms", "dwell wants <on>/<off>"},
		{"mmpp:on=100,dwell=10ms/0s", "zero or negative off-state dwell"},
		{"poisson:rate=1,pareto=1.3/512", "pareto wants alpha/minbits/maxbits"},
		{"replay:", "needs a trace path"},
		{"replay:/definitely/not/a/file", "no such file"},
	}
	for _, c := range cases {
		if _, err := ParseSpec(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("ParseSpec(%q) error = %v; want containing %q", c.spec, err, c.want)
		}
	}
}

func TestParseSpecReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := os.WriteFile(path, []byte("0.0 100\n0.5 200\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := ParseSpec("replay:" + path)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := src.(Replay)
	if !ok || len(r.Records) != 2 {
		t.Fatalf("got %#v; want a 2-record Replay", src)
	}
	if r.Records[1].At != 500*time.Millisecond || r.Records[1].Bits != 1600 {
		t.Fatalf("record 1 = %+v; want {500ms 1600}", r.Records[1])
	}
}

// TestParseSpecSeeded: a global CLI seed reaches stochastic specs that
// do not pin their own, and never overrides an explicit seed=.
func TestParseSpecSeeded(t *testing.T) {
	src, err := ParseSpecSeeded("poisson:rate=100", 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := src.(Poisson).Seed; got != 9 {
		t.Fatalf("default seed not applied: got %d; want 9", got)
	}
	src, err = ParseSpecSeeded("poisson:rate=100,seed=3", 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := src.(Poisson).Seed; got != 3 {
		t.Fatalf("explicit seed overridden: got %d; want 3", got)
	}
	if src, err = ParseSpecSeeded("mmpp:on=5000,dwell=10ms/90ms", 4); err != nil {
		t.Fatal(err)
	}
	if got := src.(MMPP).Seed; got != 4 {
		t.Fatalf("mmpp default seed not applied: got %d; want 4", got)
	}
}
