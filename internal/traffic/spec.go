package traffic

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses a command-line traffic source specification:
//
//	fixed:rate=1000                  fixed-interval, 1000 pps
//	fixed:interval=2ms,bits=4096     fixed-interval by period
//	poisson:rate=2430                Poisson arrivals
//	poisson:rate=2430,pareto=1.3/4096/96000,seed=7
//	mmpp:on=5000,off=0,dwell=10ms/90ms
//	replay:path/to/trace.txt         recorded trace (seconds + bytes per line)
//
// Common options: bits=N (fixed packet size), pareto=alpha/minbits/maxbits
// (heavy-tailed sizes; overrides bits), seed=S (RNG seed, default 1).
// The returned Source is validated.
func ParseSpec(spec string) (Source, error) { return ParseSpecSeeded(spec, 1) }

// ParseSpecSeeded is ParseSpec with a caller-supplied default seed: a
// spec that names seed= explicitly keeps it, any other stochastic spec
// draws from defaultSeed. It is how a CLI's single global -seed flag
// reaches traffic sources without forbidding per-spec overrides.
func ParseSpecSeeded(spec string, defaultSeed int64) (Source, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	switch kind {
	case "fixed", "poisson", "mmpp":
		opts, err := parseOpts(kind, rest)
		if err != nil {
			return nil, err
		}
		if !opts.has("seed") {
			opts.seed = defaultSeed
		}
		return buildSource(kind, opts)
	case "replay":
		if rest == "" {
			return nil, fmt.Errorf("traffic: replay spec needs a trace path (replay:<path>)")
		}
		f, err := os.Open(rest)
		if err != nil {
			return nil, fmt.Errorf("traffic: replay spec: %w", err)
		}
		defer f.Close()
		return ReadTrace(f)
	}
	return nil, fmt.Errorf("traffic: unknown source kind %q (want fixed, poisson, mmpp or replay)", kind)
}

// specOpts are the parsed key=value options of one spec.
type specOpts struct {
	kind     string
	rate     float64
	interval time.Duration
	on, off  float64
	dwellOn  time.Duration
	dwellOff time.Duration
	bits     int
	pareto   *BoundedPareto
	seed     int64

	set map[string]bool
}

func (o *specOpts) has(key string) bool { return o.set[key] }

// specKeys lists the options each spec kind accepts; anything else is
// rejected rather than silently ignored, so a mistyped spec never runs a
// different experiment than asked.
var specKeys = map[string]map[string]bool{
	"fixed":   {"rate": true, "interval": true, "bits": true},
	"poisson": {"rate": true, "bits": true, "pareto": true, "seed": true},
	"mmpp":    {"on": true, "off": true, "dwell": true, "bits": true, "pareto": true, "seed": true},
}

func parseOpts(kind, rest string) (*specOpts, error) {
	o := &specOpts{kind: kind, seed: 1, set: map[string]bool{}}
	if rest == "" {
		return o, nil
	}
	for _, item := range strings.Split(rest, ",") {
		key, val, found := strings.Cut(item, "=")
		if !found || val == "" {
			return nil, fmt.Errorf("traffic: %s spec: want key=value, got %q", kind, item)
		}
		if !specKeys[kind][key] {
			for _, keys := range specKeys {
				if keys[key] {
					return nil, fmt.Errorf("traffic: %s spec: option %q does not apply to %s sources", kind, key, kind)
				}
			}
			return nil, fmt.Errorf("traffic: %s spec: unknown option %q", kind, key)
		}
		var err error
		switch key {
		case "rate":
			o.rate, err = strconv.ParseFloat(val, 64)
		case "interval":
			o.interval, err = time.ParseDuration(val)
		case "on":
			o.on, err = strconv.ParseFloat(val, 64)
		case "off":
			o.off, err = strconv.ParseFloat(val, 64)
		case "dwell":
			onS, offS, ok := strings.Cut(val, "/")
			if !ok {
				return nil, fmt.Errorf("traffic: %s spec: dwell wants <on>/<off> durations, got %q", kind, val)
			}
			if o.dwellOn, err = time.ParseDuration(onS); err == nil {
				o.dwellOff, err = time.ParseDuration(offS)
			}
		case "bits":
			o.bits, err = strconv.Atoi(val)
		case "pareto":
			parts := strings.Split(val, "/")
			if len(parts) != 3 {
				return nil, fmt.Errorf("traffic: %s spec: pareto wants alpha/minbits/maxbits, got %q", kind, val)
			}
			p := &BoundedPareto{}
			if p.Alpha, err = strconv.ParseFloat(parts[0], 64); err == nil {
				if p.MinBits, err = strconv.Atoi(parts[1]); err == nil {
					p.MaxBits, err = strconv.Atoi(parts[2])
				}
			}
			o.pareto = p
		case "seed":
			o.seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return nil, fmt.Errorf("traffic: %s spec: unknown option %q", kind, key)
		}
		if err != nil {
			return nil, fmt.Errorf("traffic: %s spec: bad %s %q: %w", kind, key, val, err)
		}
		o.set[key] = true
	}
	return o, nil
}

// sizes resolves the spec's size options into a SizeDist (nil = default).
func (o *specOpts) sizes() SizeDist {
	if o.pareto != nil {
		return *o.pareto
	}
	if o.bits != 0 {
		return FixedSize{Bits: o.bits}
	}
	return nil
}

func buildSource(kind string, o *specOpts) (Source, error) {
	var src Source
	switch kind {
	case "fixed":
		iv := o.interval
		switch {
		case o.has("interval") && o.has("rate"):
			return nil, fmt.Errorf("traffic: fixed spec: give rate or interval, not both")
		case o.has("rate"):
			if o.rate <= 0 {
				return nil, fmt.Errorf("traffic: fixed spec has non-positive rate %g pps", o.rate)
			}
			iv = time.Duration(float64(time.Second) / o.rate)
		case !o.has("interval"):
			return nil, fmt.Errorf("traffic: fixed spec needs rate=<pps> or interval=<duration>")
		}
		src = Fixed{Interval: iv, Bits: o.bits}
	case "poisson":
		if !o.has("rate") {
			return nil, fmt.Errorf("traffic: poisson spec needs rate=<pps>")
		}
		src = Poisson{Rate: o.rate, Sizes: o.sizes(), Seed: o.seed}
	case "mmpp":
		if !o.has("on") || !o.has("dwell") {
			return nil, fmt.Errorf("traffic: mmpp spec needs on=<pps> and dwell=<on>/<off>")
		}
		src = MMPP{RateOn: o.on, RateOff: o.off,
			MeanOn: o.dwellOn, MeanOff: o.dwellOff,
			Sizes: o.sizes(), Seed: o.seed}
	}
	if err := src.Validate(); err != nil {
		return nil, err
	}
	return src, nil
}
