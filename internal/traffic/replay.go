package traffic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Record is one packet of a replay trace: an emission offset from the
// flow's start and the packet size.
type Record struct {
	At   time.Duration
	Bits int
}

// Replay re-emits a recorded packet trace — offsets and sizes captured
// from a real link (or exported from a pcap with `tshark -T fields -e
// frame.time_relative -e frame.len`) — so experiments run on measured
// traffic instead of a synthetic model. The trace is finite: the flow
// ends when the records run out.
type Replay struct {
	// Records are the emissions in non-decreasing time order.
	Records []Record
}

// Name implements Source.
func (r Replay) Name() string { return "replay" }

// Validate implements Source.
func (r Replay) Validate() error {
	prev := time.Duration(0)
	for i, rec := range r.Records {
		if rec.At < prev {
			return fmt.Errorf("traffic: replay record %d at %v precedes record %d at %v (trace must be time-sorted)",
				i, rec.At, i-1, prev)
		}
		if rec.Bits <= 0 {
			return fmt.Errorf("traffic: replay record %d has non-positive size %d bits", i, rec.Bits)
		}
		prev = rec.At
	}
	return nil
}

// Stream implements Source.
func (r Replay) Stream() Stream { return &replayStream{records: r.Records} }

type replayStream struct {
	records []Record
	idx     int
	prev    time.Duration
}

func (s *replayStream) Next() (time.Duration, int, bool) {
	if s.idx >= len(s.records) {
		return 0, 0, false
	}
	rec := s.records[s.idx]
	s.idx++
	gap := rec.At - s.prev
	s.prev = rec.At
	return gap, rec.Bits, true
}

// ReadTrace parses a textual packet trace: one `<seconds> <bytes>` pair
// per line (floating-point seconds from trace start, packet size in
// bytes — tshark's frame.time_relative / frame.len export), blank lines
// and #-comments ignored. Sizes are converted to bits.
func ReadTrace(r io.Reader) (Replay, error) {
	var out Replay
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return Replay{}, fmt.Errorf("traffic: trace line %d: want `<seconds> <bytes>`, got %q", line, text)
		}
		secs, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return Replay{}, fmt.Errorf("traffic: trace line %d: bad timestamp %q: %w", line, fields[0], err)
		}
		if secs < 0 {
			return Replay{}, fmt.Errorf("traffic: trace line %d: negative timestamp %g", line, secs)
		}
		bytes, err := strconv.Atoi(fields[1])
		if err != nil {
			return Replay{}, fmt.Errorf("traffic: trace line %d: bad size %q: %w", line, fields[1], err)
		}
		out.Records = append(out.Records, Record{
			At:   time.Duration(secs * float64(time.Second)),
			Bits: 8 * bytes,
		})
	}
	if err := sc.Err(); err != nil {
		return Replay{}, fmt.Errorf("traffic: reading trace: %w", err)
	}
	if err := out.Validate(); err != nil {
		return Replay{}, err
	}
	return out, nil
}
