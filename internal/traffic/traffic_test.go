package traffic

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// drain pulls n emissions from a stream, returning gaps and sizes.
func drain(t *testing.T, s Stream, n int) (gaps []time.Duration, bits []int) {
	t.Helper()
	for i := 0; i < n; i++ {
		g, b, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended after %d emissions; want %d", i, n)
		}
		gaps = append(gaps, g)
		bits = append(bits, b)
	}
	return gaps, bits
}

func TestFixedStream(t *testing.T) {
	f := Fixed{Interval: 5 * time.Millisecond, Bits: 4096}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	gaps, bits := drain(t, f.Stream(), 4)
	// The first gap is zero (emit at flow start, the legacy behaviour),
	// then the fixed interval forever.
	want := []time.Duration{0, 5 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gap[%d] = %v; want %v", i, gaps[i], want[i])
		}
		if bits[i] != 4096 {
			t.Fatalf("bits[%d] = %d; want 4096", i, bits[i])
		}
	}
	// Zero bits defaults to DefaultBits.
	_, bits = drain(t, Fixed{Interval: time.Millisecond}.Stream(), 1)
	if bits[0] != DefaultBits {
		t.Fatalf("default bits = %d; want %d", bits[0], DefaultBits)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		src  Source
		want string
	}{
		{Fixed{Interval: 0}, "non-positive interval"},
		{Fixed{Interval: time.Millisecond, Bits: -1}, "negative bits"},
		{Poisson{Rate: 0}, "non-positive rate"},
		{Poisson{Rate: -3}, "non-positive rate"},
		{Poisson{Rate: 100, Sizes: BoundedPareto{Alpha: 0, MinBits: 1, MaxBits: 2}}, "non-positive alpha"},
		{MMPP{RateOn: 0, MeanOn: time.Second, MeanOff: time.Second}, "non-positive on-state rate"},
		{MMPP{RateOn: 10, RateOff: -1, MeanOn: time.Second, MeanOff: time.Second}, "negative off-state rate"},
		{MMPP{RateOn: 10, MeanOn: 0, MeanOff: time.Second}, "burst length must be positive"},
		{MMPP{RateOn: 10, MeanOn: time.Second, MeanOff: -time.Second}, "negative off-state dwell"},
		{Replay{Records: []Record{{At: time.Second, Bits: 100}, {At: 0, Bits: 100}}}, "time-sorted"},
		{Replay{Records: []Record{{At: 0, Bits: 0}}}, "non-positive size"},
	}
	for _, c := range cases {
		err := c.src.Validate()
		if err == nil {
			t.Fatalf("%s %+v: Validate() = nil; want error containing %q", c.src.Name(), c.src, c.want)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not contain %q", c.src.Name(), err, c.want)
		}
	}
}

// TestStreamsAreDeterministic: two streams from the same source replay
// identical sequences — the property that lets one Source drive many
// scheme-comparison runs fairly.
func TestStreamsAreDeterministic(t *testing.T) {
	sources := []Source{
		Poisson{Rate: 1000, Seed: 7},
		Poisson{Rate: 500, Sizes: BoundedPareto{Alpha: 1.3, MinBits: 512, MaxBits: 96000}, Seed: 3},
		MMPP{RateOn: 5000, MeanOn: 10 * time.Millisecond, MeanOff: 40 * time.Millisecond, Seed: 9},
	}
	for _, src := range sources {
		a, b := src.Stream(), src.Stream()
		for i := 0; i < 500; i++ {
			ga, ba, _ := a.Next()
			gb, bb, _ := b.Next()
			if ga != gb || ba != bb {
				t.Fatalf("%s: emission %d differs between streams: (%v,%d) vs (%v,%d)",
					src.Name(), i, ga, ba, gb, bb)
			}
		}
	}
}

// TestPoissonStatistics: with a fixed seed, the empirical mean and
// variance of inter-arrival gaps match the exponential distribution
// (mean 1/λ, variance 1/λ²) within a few percent, and counts in windows
// have dispersion index ≈ 1 (the Poisson signature).
func TestPoissonStatistics(t *testing.T) {
	const rate = 2000.0
	const n = 200_000
	gaps, _ := drain(t, Poisson{Rate: rate, Seed: 42}.Stream(), n)

	var sum, sumSq float64
	for _, g := range gaps {
		s := g.Seconds()
		sum += s
		sumSq += s * s
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1/rate)/(1/rate) > 0.02 {
		t.Fatalf("mean gap = %g s; want ≈ %g (±2%%)", mean, 1/rate)
	}
	wantVar := 1 / (rate * rate)
	if math.Abs(variance-wantVar)/wantVar > 0.05 {
		t.Fatalf("gap variance = %g; want ≈ %g (±5%%)", variance, wantVar)
	}

	// Dispersion index of counts in 50 ms windows: ≈1 for Poisson.
	counts := windowCounts(gaps, 50*time.Millisecond)
	d := dispersion(counts)
	if d < 0.9 || d > 1.1 {
		t.Fatalf("dispersion index = %g; want ≈ 1 for Poisson", d)
	}
}

// TestMMPPStatistics: the empirical mean rate matches the dwell-weighted
// analytic rate, the traffic is overdispersed relative to Poisson (the
// point of using MMPP), and with a silent off state the long silences
// have mean ≈ MeanOff — the state dwell time surfacing in the gap
// sequence.
func TestMMPPStatistics(t *testing.T) {
	src := MMPP{
		RateOn:  10_000,
		RateOff: 0,
		MeanOn:  20 * time.Millisecond,
		MeanOff: 80 * time.Millisecond,
		Seed:    11,
	}
	// The rate estimator's error is governed by the number of on/off
	// cycles observed (~one per 100 ms), not the packet count, so the run
	// must be long in cycles: 400k packets ≈ 200 s ≈ 2000 cycles.
	const n = 400_000
	gaps, _ := drain(t, src.Stream(), n)

	var total time.Duration
	for _, g := range gaps {
		total += g
	}
	rate := float64(n) / total.Seconds()
	want := src.MeanRate() // 10000 * 20/(20+80) = 2000 pps
	if math.Abs(rate-want)/want > 0.05 {
		t.Fatalf("empirical rate = %g pps; want ≈ %g (±5%%)", rate, want)
	}

	// Burstiness: counts in windows must be far overdispersed vs Poisson.
	counts := windowCounts(gaps, 50*time.Millisecond)
	if d := dispersion(counts); d < 2 {
		t.Fatalf("dispersion index = %g; want ≫ 1 for on/off bursts", d)
	}

	// Off-state dwells: with RateOff = 0 every silence longer than a few
	// on-state gaps is an off dwell plus one on-state arrival gap.
	// E[silence] ≈ MeanOff + 1/RateOn. The threshold (10× the mean
	// on-state gap) misclassifies a vanishing fraction of on-gaps.
	threshold := 10 * time.Duration(float64(time.Second)/src.RateOn)
	var silence time.Duration
	silences := 0
	for _, g := range gaps {
		if g > threshold {
			silence += g
			silences++
		}
	}
	if silences == 0 {
		t.Fatal("no off-state silences observed")
	}
	meanSilence := (silence / time.Duration(silences)).Seconds()
	wantSilence := src.MeanOff.Seconds() + 1/src.RateOn
	if math.Abs(meanSilence-wantSilence)/wantSilence > 0.10 {
		t.Fatalf("mean off-state silence = %gs; want ≈ %gs (±10%%)", meanSilence, wantSilence)
	}
}

// TestBoundedParetoStatistics: samples respect the bounds and the
// empirical mean matches the analytic mean.
func TestBoundedParetoStatistics(t *testing.T) {
	dist := BoundedPareto{Alpha: 1.3, MinBits: 512, MaxBits: 12_000_000}
	if err := dist.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const n = 500_000
	var sum float64
	for i := 0; i < n; i++ {
		b := dist.SampleBits(rng)
		if b < dist.MinBits || b > dist.MaxBits {
			t.Fatalf("sample %d outside [%d, %d]", b, dist.MinBits, dist.MaxBits)
		}
		sum += float64(b)
	}
	mean := sum / n
	want := dist.Mean()
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("empirical mean = %g bits; want ≈ %g (±5%%)", mean, want)
	}
}

func TestReplayStream(t *testing.T) {
	trace := `
# time(s)  bytes
0.000  1000
0.010  500
0.010  500
0.035  1500
`
	r, err := ReadTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stream()
	wantGap := []time.Duration{0, 10 * time.Millisecond, 0, 25 * time.Millisecond}
	wantBits := []int{8000, 4000, 4000, 12000}
	for i := range wantGap {
		g, b, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended at %d", i)
		}
		if g != wantGap[i] || b != wantBits[i] {
			t.Fatalf("emission %d = (%v, %d); want (%v, %d)", i, g, b, wantGap[i], wantBits[i])
		}
	}
	if _, _, ok := s.Next(); ok {
		t.Fatal("stream did not end after the trace ran out")
	}
	// A second Next after exhaustion stays false.
	if _, _, ok := s.Next(); ok {
		t.Fatal("exhausted stream restarted")
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"0.1 100 extra", "want `<seconds> <bytes>`"},
		{"abc 100", "bad timestamp"},
		{"0.1 xyz", "bad size"},
		{"-1 100", "negative timestamp"},
		{"1.0 100\n0.5 100", "time-sorted"},
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c.in)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("ReadTrace(%q) error = %v; want containing %q", c.in, err, c.want)
		}
	}
}

// windowCounts bins a gap sequence into fixed windows and returns the
// per-window arrival counts.
func windowCounts(gaps []time.Duration, window time.Duration) []int {
	var counts []int
	var now, edge time.Duration
	edge = window
	count := 0
	for _, g := range gaps {
		now += g
		for now >= edge {
			counts = append(counts, count)
			count = 0
			edge += window
		}
		count++
	}
	return counts
}

// dispersion returns variance/mean of the counts (1 for Poisson).
func dispersion(counts []int) float64 {
	var sum, sumSq float64
	for _, c := range counts {
		f := float64(c)
		sum += f
		sumSq += f * f
	}
	n := float64(len(counts))
	mean := sum / n
	return (sumSq/n - mean*mean) / mean
}
