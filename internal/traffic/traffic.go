// Package traffic generates packet arrival processes for the simulator
// and the dataplane engine. The paper's evaluation (and this repo's §1
// loss-window experiment) originally offered only fixed-interval flows;
// a zero-loss claim is only as credible as the traffic it was measured
// under, so this package adds the processes the related work evaluates
// against — Poisson arrivals, on/off Markov-modulated bursts (MMPP),
// heavy-tailed bounded-Pareto packet sizes, and trace replay — behind
// one small interface.
//
// A Source is an immutable description of one flow's arrival process;
// Stream() mints a fresh deterministic iterator, so the same Source can
// drive many runs (one per scheme under comparison) with bit-identical
// emissions. All randomness flows from the Source's explicit seed.
package traffic

import (
	"fmt"
	"math/rand"
	"time"
)

// DefaultBits is the packet size used when none is configured: 8192 bits
// (1 kB), the paper's average packet size.
const DefaultBits = 8192

// Source is an immutable description of one flow's arrival process.
// Stream mints a fresh deterministic iterator; calling it again replays
// the identical emission sequence. Validate reports configuration errors
// (negative rates, zero dwell times, inverted size bounds) descriptively,
// before any packet is generated; Stream may panic on a Source whose
// Validate returns non-nil.
type Source interface {
	// Name identifies the process kind in reports ("fixed", "poisson", …).
	Name() string
	// Validate checks the parameters, returning a descriptive error for
	// unusable configurations.
	Validate() error
	// Stream returns a fresh deterministic emission iterator.
	Stream() Stream
}

// Stream yields one flow's successive packet emissions. Next returns the
// inter-arrival gap from the previous emission (measured from the flow's
// start time for the first call — a zero first gap emits a packet at the
// start instant itself) and the emitted packet's size in bits. ok=false
// ends the flow; once false, Next stays false.
type Stream interface {
	Next() (gap time.Duration, bits int, ok bool)
}

// SizeDist draws packet sizes, composable with any arrival process that
// has a Sizes field. Implementations must be deterministic given the rng.
type SizeDist interface {
	// Name identifies the distribution in reports.
	Name() string
	// Validate checks the parameters.
	Validate() error
	// SampleBits draws one packet size in bits.
	SampleBits(rng *rand.Rand) int
}

// sampleSize draws from d, defaulting nil to DefaultBits fixed.
func sampleSize(d SizeDist, rng *rand.Rand) int {
	if d == nil {
		return DefaultBits
	}
	return d.SampleBits(rng)
}

// validateSizes validates an optional size distribution.
func validateSizes(d SizeDist) error {
	if d == nil {
		return nil
	}
	return d.Validate()
}

// FixedSize is the degenerate size distribution: every packet is Bits
// bits (0 = DefaultBits).
type FixedSize struct {
	Bits int
}

// Name implements SizeDist.
func (f FixedSize) Name() string { return "fixed-size" }

// Validate implements SizeDist.
func (f FixedSize) Validate() error {
	if f.Bits < 0 {
		return fmt.Errorf("traffic: fixed size has negative bits %d", f.Bits)
	}
	return nil
}

// SampleBits implements SizeDist.
func (f FixedSize) SampleBits(*rand.Rand) int {
	if f.Bits == 0 {
		return DefaultBits
	}
	return f.Bits
}

// ---------------------------------------------------------------------------
// Fixed-interval arrivals (the legacy sim.Flow process, extracted)
// ---------------------------------------------------------------------------

// Fixed emits fixed-size packets at a fixed interval — the process the
// simulator's Flow used before this package existed, extracted so it is
// one Source among many. Its first packet is emitted at the flow's start
// instant (first gap zero), exactly like the legacy behaviour; the
// differential test in internal/sim proves the schedules bit-identical.
type Fixed struct {
	// Interval between packets.
	Interval time.Duration
	// Bits per packet (0 = DefaultBits).
	Bits int
}

// Name implements Source.
func (f Fixed) Name() string { return "fixed" }

// Validate implements Source.
func (f Fixed) Validate() error {
	if f.Interval <= 0 {
		return fmt.Errorf("traffic: fixed source has non-positive interval %v", f.Interval)
	}
	if f.Bits < 0 {
		return fmt.Errorf("traffic: fixed source has negative bits %d", f.Bits)
	}
	return nil
}

// Stream implements Source.
func (f Fixed) Stream() Stream {
	bits := f.Bits
	if bits == 0 {
		bits = DefaultBits
	}
	return &fixedStream{interval: f.Interval, bits: bits}
}

type fixedStream struct {
	interval time.Duration
	bits     int
	started  bool
}

func (s *fixedStream) Next() (time.Duration, int, bool) {
	if !s.started {
		s.started = true
		return 0, s.bits, true
	}
	return s.interval, s.bits, true
}

// ---------------------------------------------------------------------------
// Poisson arrivals
// ---------------------------------------------------------------------------

// Poisson emits packets with exponentially distributed inter-arrival
// times at a mean rate of Rate packets per second — the classic memoryless
// arrival process.
type Poisson struct {
	// Rate is the mean emission rate in packets per second.
	Rate float64
	// Sizes draws packet sizes (nil = DefaultBits fixed).
	Sizes SizeDist
	// Seed drives the deterministic RNG.
	Seed int64
}

// Name implements Source.
func (p Poisson) Name() string { return "poisson" }

// Validate implements Source.
func (p Poisson) Validate() error {
	if p.Rate <= 0 {
		return fmt.Errorf("traffic: poisson source has non-positive rate %g pps", p.Rate)
	}
	return validateSizes(p.Sizes)
}

// Stream implements Source.
func (p Poisson) Stream() Stream {
	return &poissonStream{rate: p.Rate, sizes: p.Sizes, rng: rand.New(rand.NewSource(p.Seed))}
}

type poissonStream struct {
	rate  float64
	sizes SizeDist
	rng   *rand.Rand
}

func (s *poissonStream) Next() (time.Duration, int, bool) {
	gap := time.Duration(s.rng.ExpFloat64() / s.rate * float64(time.Second))
	return gap, sampleSize(s.sizes, s.rng), true
}

// ---------------------------------------------------------------------------
// Markov-modulated Poisson arrivals (on/off bursts)
// ---------------------------------------------------------------------------

// MMPP is a two-state (on/off) Markov-modulated Poisson process: the flow
// alternates between an on state emitting at RateOn and an off state
// emitting at RateOff (usually 0), with exponentially distributed state
// dwell times of mean MeanOn and MeanOff. It models the bursty,
// correlated traffic a fixed-interval or pure-Poisson generator cannot:
// trains of back-to-back packets separated by silences.
type MMPP struct {
	// RateOn is the emission rate in the on state, packets per second.
	RateOn float64
	// RateOff is the emission rate in the off state (0 = silent bursts).
	RateOff float64
	// MeanOn is the mean dwell time in the on state.
	MeanOn time.Duration
	// MeanOff is the mean dwell time in the off state.
	MeanOff time.Duration
	// Sizes draws packet sizes (nil = DefaultBits fixed).
	Sizes SizeDist
	// Seed drives the deterministic RNG.
	Seed int64
}

// Name implements Source.
func (m MMPP) Name() string { return "mmpp" }

// Validate implements Source.
func (m MMPP) Validate() error {
	if m.RateOn <= 0 {
		return fmt.Errorf("traffic: mmpp source has non-positive on-state rate %g pps", m.RateOn)
	}
	if m.RateOff < 0 {
		return fmt.Errorf("traffic: mmpp source has negative off-state rate %g pps", m.RateOff)
	}
	if m.MeanOn <= 0 {
		return fmt.Errorf("traffic: mmpp source has zero or negative on-state dwell %v (burst length must be positive)", m.MeanOn)
	}
	if m.MeanOff <= 0 {
		return fmt.Errorf("traffic: mmpp source has zero or negative off-state dwell %v", m.MeanOff)
	}
	return validateSizes(m.Sizes)
}

// MeanRate returns the long-run mean emission rate in packets per second:
// the dwell-weighted average of the two state rates.
func (m MMPP) MeanRate() float64 {
	on, off := m.MeanOn.Seconds(), m.MeanOff.Seconds()
	return (m.RateOn*on + m.RateOff*off) / (on + off)
}

// Stream implements Source.
func (m MMPP) Stream() Stream {
	rng := rand.New(rand.NewSource(m.Seed))
	s := &mmppStream{cfg: m, rng: rng, on: true}
	s.dwell = s.sampleDwell()
	return s
}

type mmppStream struct {
	cfg   MMPP
	rng   *rand.Rand
	on    bool
	dwell time.Duration // time left in the current state
}

// sampleDwell draws an exponential dwell for the current state.
func (s *mmppStream) sampleDwell() time.Duration {
	mean := s.cfg.MeanOn
	if !s.on {
		mean = s.cfg.MeanOff
	}
	return time.Duration(s.rng.ExpFloat64() * float64(mean))
}

// rate returns the emission rate of the current state.
func (s *mmppStream) rate() float64 {
	if s.on {
		return s.cfg.RateOn
	}
	return s.cfg.RateOff
}

func (s *mmppStream) Next() (time.Duration, int, bool) {
	var gap time.Duration
	for {
		r := s.rate()
		if r > 0 {
			// Candidate arrival within the current state; the exponential
			// is memoryless, so redrawing after a state change is exact.
			d := time.Duration(s.rng.ExpFloat64() / r * float64(time.Second))
			if d < s.dwell {
				s.dwell -= d
				gap += d
				return gap, sampleSize(s.cfg.Sizes, s.rng), true
			}
		}
		// No arrival before the state expires: consume the dwell, switch.
		gap += s.dwell
		s.on = !s.on
		s.dwell = s.sampleDwell()
	}
}
