package eval

import (
	"bytes"
	"strings"
	"testing"

	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/topo"
)

// TestEmbeddingDeliveryAblation quantifies the reproduction's main finding:
// genus-0 embeddings deliver everything, arbitrary rotation systems do not.
func TestEmbeddingDeliveryAblation(t *testing.T) {
	tp, err := topo.ByName("abilene")
	if err != nil {
		t.Fatal(err)
	}
	failures := graph.SingleFailureScenarios(tp.Graph)
	probes, err := MeasureEmbeddingDelivery(tp, []embedding.Embedder{
		embedding.Planar{},
		embedding.Adjacency{},
	}, failures)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != 2 {
		t.Fatalf("probes = %d; want 2", len(probes))
	}
	planar, adj := probes[0], probes[1]
	if planar.Genus != 0 {
		t.Fatalf("planar genus = %d", planar.Genus)
	}
	if planar.Rate() != 1 {
		t.Fatalf("planar delivery = %v; want 1", planar.Rate())
	}
	// The adjacency-order embedding on Abilene contains the documented
	// single-failure loop, so its rate must be below 1.
	if adj.Rate() >= 1 {
		t.Fatalf("adjacency delivery = %v; expected loops (see TestEmbeddingQualityMatters)", adj.Rate())
	}
	if adj.Looped == 0 {
		t.Fatal("adjacency probe should record looped walks")
	}
	if planar.Walks != adj.Walks {
		t.Fatalf("walk counts differ: %d vs %d", planar.Walks, adj.Walks)
	}
}

func TestWriteEmbeddingDeliveryReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEmbeddingDeliveryReport(&buf, "abilene", 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"planar-lr", "adjacency", "random", "rate"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q:\n%s", frag, out)
		}
	}
	if err := WriteEmbeddingDeliveryReport(&buf, "nope", 3); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

// TestUnitWeightFigureVariant: the unit-weight rerun keeps the scheme
// ordering and shrinks PR's tail versus distance weights.
func TestUnitWeightFigureVariant(t *testing.T) {
	base, err := FigureByID("2a")
	if err != nil {
		t.Fatal(err)
	}
	unit := base
	unit.UnitWeights = true

	distExp, err := RunFigure(base)
	if err != nil {
		t.Fatal(err)
	}
	unitExp, err := RunFigure(unit)
	if err != nil {
		t.Fatal(err)
	}
	for _, exp := range []*Experiment{distExp, unitExp} {
		rc := exp.SeriesFor(Reconvergence)
		pr := exp.SeriesFor(PR)
		if rc.MeanStretch() > pr.MeanStretch() {
			t.Fatal("ordering violated")
		}
		if pr.DeliveryRate() != 1 {
			t.Fatal("PR lossy")
		}
	}
	if unitExp.SeriesFor(PR).MaxStretch() > distExp.SeriesFor(PR).MaxStretch() {
		t.Fatalf("unit-weight max stretch %v above distance-weight %v; expected shrinkage",
			unitExp.SeriesFor(PR).MaxStretch(), distExp.SeriesFor(PR).MaxStretch())
	}
}

// TestExhaustiveDualFailuresOnISPTopologies verifies the Full variant on
// EVERY connectivity-preserving pair of link failures of every evaluation
// topology — beyond the paper's sampled evaluation.
func TestExhaustiveDualFailuresOnISPTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive pair enumeration skipped in -short mode")
	}
	for _, name := range []string{"abilene", "geant", "teleglobe"} {
		tp, err := topo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := tp.Graph
		var failures []*graph.FailureSet
		for i := 0; i < g.NumLinks(); i++ {
			for j := i + 1; j < g.NumLinks(); j++ {
				fs := graph.NewFailureSet(graph.LinkID(i), graph.LinkID(j))
				if graph.ConnectedUnder(g, fs) {
					failures = append(failures, fs)
				}
			}
		}
		probes, err := MeasureEmbeddingDelivery(tp, []embedding.Embedder{embedding.Planar{}}, failures)
		if err != nil {
			t.Fatal(err)
		}
		p := probes[0]
		if p.Rate() != 1 {
			t.Fatalf("%s: dual-failure delivery = %v over %d walks (looped %d, isolated %d)",
				name, p.Rate(), p.Walks, p.Looped, p.Isolated)
		}
		t.Logf("%s: %d dual-failure scenarios, %d affected walks, all delivered", name, len(failures), p.Walks)
	}
}
