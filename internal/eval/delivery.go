package eval

import (
	"fmt"
	"io"

	"recycle/internal/core"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// DeliveryProbe measures PR's delivery rate under one embedding algorithm —
// the ablation behind this reproduction's main finding: the §5 guarantee
// holds on genus-0 embeddings and degrades with embedding quality.
type DeliveryProbe struct {
	// EmbedderName identifies the embedding algorithm.
	EmbedderName string
	// Genus of the embedding it produced.
	Genus int
	// Walks attempted (affected pairs × scenarios).
	Walks int
	// Delivered, Looped and Isolated partition the walks.
	Delivered int
	Looped    int
	Isolated  int
}

// Rate returns the delivered fraction.
func (p DeliveryProbe) Rate() float64 {
	if p.Walks == 0 {
		return 1
	}
	return float64(p.Delivered) / float64(p.Walks)
}

// MeasureEmbeddingDelivery runs PR (Full variant) over the same failure
// scenarios under each embedder and reports per-embedder delivery.
func MeasureEmbeddingDelivery(tp topo.Topology, embedders []embedding.Embedder, failures []*graph.FailureSet) ([]DeliveryProbe, error) {
	g := tp.Graph
	tbl := route.Build(g, route.HopCount)
	var probes []DeliveryProbe
	for _, e := range embedders {
		sys, err := e.Embed(g)
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", e.Name(), err)
		}
		p, err := core.New(g, sys, tbl, core.Config{Variant: core.Full})
		if err != nil {
			return nil, err
		}
		probe := DeliveryProbe{EmbedderName: e.Name(), Genus: sys.Genus()}
		for _, fs := range failures {
			if !graph.ConnectedUnder(g, fs) {
				continue
			}
			for src := 0; src < g.NumNodes(); src++ {
				for dst := 0; dst < g.NumNodes(); dst++ {
					if src == dst {
						continue
					}
					s, d := graph.NodeID(src), graph.NodeID(dst)
					if !affected(tbl.Tree(d), s, fs) {
						continue
					}
					probe.Walks++
					switch p.Walk(s, d, fs).Outcome {
					case core.Delivered:
						probe.Delivered++
					case core.Looped:
						probe.Looped++
					case core.Isolated:
						probe.Isolated++
					}
				}
			}
		}
		probes = append(probes, probe)
	}
	return probes, nil
}

// WriteEmbeddingDeliveryReport renders the embedding-quality ablation for a
// topology over its single-failure scenarios plus sampled multi-failures.
func WriteEmbeddingDeliveryReport(w io.Writer, name string, seed int64) error {
	tp, err := topo.ByName(name)
	if err != nil {
		return err
	}
	failures := graph.SingleFailureScenarios(tp.Graph)
	if multi, err := graph.SampleFailureScenarios(tp.Graph, 3, 50, seed); err == nil {
		failures = append(failures, multi...)
	}
	embedders := []embedding.Embedder{
		embedding.Planar{},
		embedding.Greedy{},
		embedding.Adjacency{},
		embedding.RandomOrder{Seed: seed},
	}
	probes, err := MeasureEmbeddingDelivery(tp, embedders, failures)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# embedding-quality ablation on %s (single + 3-link failures)\n", name)
	fmt.Fprintf(w, "%-12s %-6s %-8s %-10s %-8s %-9s %-9s\n",
		"embedder", "genus", "walks", "delivered", "looped", "isolated", "rate")
	for _, p := range probes {
		fmt.Fprintf(w, "%-12s %-6d %-8d %-10d %-8d %-9d %-9.4f\n",
			p.EmbedderName, p.Genus, p.Walks, p.Delivered, p.Looped, p.Isolated, p.Rate())
	}
	return nil
}
