package eval

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/failure"
	"recycle/internal/route"
	"recycle/internal/sim"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
)

// WriteTimeline renders a per-epoch counter fold as a readable table:
// one row per link-state epoch with the headline counters' deltas, so
// losses visibly cluster in the epochs whose failures caused them.
func WriteTimeline(w io.Writer, epochs []telemetry.Epoch) {
	fmt.Fprintf(w, "%-4s %-10s %-10s %-32s %9s %9s %9s %8s %6s %6s\n",
		"ep", "start", "end", "label", "generated", "delivered", "blackhole", "no-route", "ttl", "viol")
	for _, e := range epochs {
		d := e.Delta
		fmt.Fprintf(w, "%-4d %-10v %-10v %-32s %9d %9d %9d %8d %6d %6d\n",
			e.Index, e.Start, e.End, e.Label,
			d.Counter(sim.MetricGenerated), d.Counter(sim.MetricDelivered),
			d.Counter(sim.MetricDropBlackhole), d.Counter(sim.MetricDropNoRoute),
			d.Counter(sim.MetricDropTTL), d.Counter(sim.MetricLossViolation))
	}
}

// WriteTimelineCSV emits the fold as CSV: epoch bookkeeping columns
// followed by one column per counter name appearing in any epoch, in
// sorted order, so downstream plotting needs no schema knowledge.
func WriteTimelineCSV(w io.Writer, epochs []telemetry.Epoch) error {
	names := map[string]bool{}
	for _, e := range epochs {
		for n := range e.Delta.Counters {
			names[n] = true
		}
	}
	cols := make([]string, 0, len(names))
	for n := range names {
		cols = append(cols, n)
	}
	sort.Strings(cols)

	cw := csv.NewWriter(w)
	header := append([]string{"epoch", "start_ns", "end_ns", "label"}, cols...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, e := range epochs {
		row := []string{
			strconv.Itoa(e.Index),
			strconv.FormatInt(int64(e.Start), 10),
			strconv.FormatInt(int64(e.End), 10),
			e.Label,
		}
		for _, n := range cols {
			row = append(row, strconv.FormatUint(e.Delta.Counter(n), 10))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTimelineJSON emits the fold as indented JSON, epochs in order,
// each with its full delta snapshot (counters, gauges, histograms).
func WriteTimelineJSON(w io.Writer, epochs []telemetry.Epoch) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(epochs)
}

// TraceResult is one traced resilience draw: the recorder's retained
// flights, the per-epoch timeline, and the run's aggregate counter
// deltas — with the exposition-is-lossless invariant (summed epoch
// deltas == aggregate) already verified by TraceResilience.
type TraceResult struct {
	Scheme   string
	Scenario string
	// Draw is the scenario draw index that produced a recycled flight
	// (the first one that did, or the last draw tried).
	Draw      int
	Flights   []*telemetry.Flight
	Epochs    []telemetry.Epoch
	Aggregate *telemetry.Snapshot
}

// Recycled returns the first flight that engaged PR (nil when none
// did).
func (t *TraceResult) Recycled() *telemetry.Flight {
	for _, f := range t.Flights {
		if f.Recycled() {
			return f
		}
	}
	return nil
}

// TraceResilience replays resilience draws with the full telemetry
// surface armed — every packet flight-recorded, counters folded per
// epoch — and returns the first draw on which PR actually recycled a
// packet (falling back to the last draw when none did, e.g. a scenario
// that never fails a link on the probe path). It is RunResilience's
// explainability counterpart: instead of aggregate rows it produces
// the per-packet cycle walks and the per-epoch loss timeline for one
// scenario, and it verifies the timeline's summed deltas equal the
// aggregate counters exactly before returning.
func TraceResilience(tp topo.Topology, cfg ResilienceConfig) (*TraceResult, error) {
	cfg = cfg.withDefaults()
	proc, err := cfg.process()
	if err != nil {
		return nil, err
	}
	g := tp.Graph
	sys := tp.Embedding
	if sys == nil {
		if sys, err = (embedding.Auto{Seed: 1}).Embed(g); err != nil {
			return nil, err
		}
	}
	prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		return nil, err
	}
	fib, err := dataplane.Compile(prot)
	if err != nil {
		return nil, err
	}
	src, dst := diameterPair(g)
	interval := time.Duration(float64(time.Second) / cfg.PPS)
	flows := []sim.Flow{
		{Src: src, Dst: dst, Interval: interval, Bits: 8192},
		{Src: dst, Dst: src, Interval: interval, Bits: 8192, Start: interval / 2},
	}

	var out *TraceResult
	for draw := 0; draw < cfg.Draws; draw++ {
		sc, err := proc.Generate(g, cfg.Horizon, failure.DrawSeed(cfg.Seed, draw))
		if err != nil {
			return nil, err
		}
		reg := cfg.Metrics
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		rec := telemetry.NewRecorder(telemetry.RecorderConfig{SampleEvery: 1, Capacity: 256})
		base := reg.Snapshot()
		scheme := &sim.CompiledPRScheme{FIB: fib}
		s, err := sim.New(sim.Config{
			Graph:          g,
			Scheme:         scheme,
			Flows:          flows,
			Horizon:        cfg.Horizon,
			DetectionDelay: sim.InstantDetection,
			Metrics:        reg,
			Recorder:       rec,
		})
		if err != nil {
			return nil, err
		}
		if err := s.ApplyScenario(sc); err != nil {
			return nil, err
		}
		s.Run()
		agg := reg.Snapshot().Sub(base)
		epochs := s.Timeline().Epochs()
		if err := checkTimelineExact(s.Timeline().Sum(), agg); err != nil {
			return nil, fmt.Errorf("eval: draw %d: %w", draw, err)
		}
		out = &TraceResult{
			Scheme:    scheme.Name(),
			Scenario:  sc.Name,
			Draw:      draw,
			Flights:   rec.Flights(),
			Epochs:    epochs,
			Aggregate: agg,
		}
		if out.Recycled() != nil {
			return out, nil
		}
	}
	return out, nil
}

// checkTimelineExact verifies the lossless-exposition invariant: the
// merged per-epoch deltas must equal the aggregate counter-for-counter
// and histogram-for-histogram.
func checkTimelineExact(sum, agg *telemetry.Snapshot) error {
	for name, v := range agg.Counters {
		if sum.Counters[name] != v {
			return fmt.Errorf("timeline not exact: %s summed %d, aggregate %d", name, sum.Counters[name], v)
		}
	}
	for name, v := range sum.Counters {
		if agg.Counters[name] != v {
			return fmt.Errorf("timeline not exact: %s summed %d, aggregate %d", name, v, agg.Counters[name])
		}
	}
	for name, h := range agg.Histograms {
		sh := sum.Histograms[name]
		if sh.Count != h.Count || sh.Sum != h.Sum {
			return fmt.Errorf("timeline not exact: histogram %s summed %d/%d, aggregate %d/%d",
				name, sh.Count, sh.Sum, h.Count, h.Sum)
		}
	}
	return nil
}
