package eval

import (
	"fmt"
	"io"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/fcp"
	"recycle/internal/graph"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// Overhead quantifies the §6 comparison for one topology: what each scheme
// costs in header bits, per-router memory and failure-time computation.
type Overhead struct {
	Topology string
	Nodes    int
	Links    int
	// HopDiameter is d in the paper's "order of log2(d) DD bits".
	HopDiameter int

	// PRHeaderBits = 1 PR bit + quantised DD bits (core.Quantiser ranks;
	// identical to raw ⌈log2 d⌉ for hop counts).
	PRHeaderBits int
	// PRFitsDSCPPool2 reports whether the header fits in the 4 free bits
	// of DSCP pool 2 (xxxx11 code points, RFC 2474) the paper proposes;
	// when false the dataplane compiles the IPv6 flow-label codec instead.
	PRFitsDSCPPool2 bool
	// PRWireCodec names the codec dataplane.Compile selects.
	PRWireCodec string
	// PRCycleEntriesPerRouter is the mean cycle-following table size
	// (2 entries per interface).
	PRCycleEntriesPerRouter float64
	// PRDDEntriesPerRouter is the extra routing-table column size.
	PRDDEntriesPerRouter int
	// PREmbeddingGenus is the genus of the offline embedding used.
	PREmbeddingGenus int

	// FCPMaxHeaderBits is the worst-case FCP header across all single
	// failures (it grows further with more failures).
	FCPMaxHeaderBits int
	// FCPMaxRecomputations is the worst per-packet count of on-demand SPF
	// runs across all single-failure walks.
	FCPMaxRecomputations int

	// ReconvFloodMessages is the per-failure LSA flood cost (2·links,
	// both directions).
	ReconvFloodMessages int
}

// MeasureOverhead computes the overhead table for one topology using single
// link failures (the paper's common case).
func MeasureOverhead(tp topo.Topology) (Overhead, error) {
	g := tp.Graph
	o := Overhead{
		Topology:    tp.Name,
		Nodes:       g.NumNodes(),
		Links:       g.NumLinks(),
		HopDiameter: graph.HopDiameter(g),
	}

	sys := tp.Embedding
	if sys == nil {
		var err error
		sys, err = (embedding.Auto{Seed: 1}).Embed(g)
		if err != nil {
			return o, err
		}
	}
	o.PREmbeddingGenus = sys.Genus()

	tbl := route.Build(g, route.HopCount)
	ddBits := core.BuildQuantiser(tbl).Bits()
	o.PRHeaderBits = 1 + ddBits
	codec := dataplane.CodecFor(ddBits)
	o.PRFitsDSCPPool2 = codec == dataplane.CodecDSCP
	o.PRWireCodec = codec.String()
	totalEntries := 0
	for n := 0; n < g.NumNodes(); n++ {
		totalEntries += 2 * g.Degree(graph.NodeID(n))
	}
	o.PRCycleEntriesPerRouter = float64(totalEntries) / float64(g.NumNodes())
	o.PRDDEntriesPerRouter = g.NumNodes() - 1

	f := fcp.New(g)
	for _, fs := range graph.SingleFailureScenarios(g) {
		for src := 0; src < g.NumNodes(); src++ {
			for dst := 0; dst < g.NumNodes(); dst++ {
				if src == dst {
					continue
				}
				r := f.Walk(graph.NodeID(src), graph.NodeID(dst), fs)
				if bits := fcp.HeaderBits(g, r.CarriedFailures); bits > o.FCPMaxHeaderBits {
					o.FCPMaxHeaderBits = bits
				}
				if r.Recomputations > o.FCPMaxRecomputations {
					o.FCPMaxRecomputations = r.Recomputations
				}
			}
		}
	}
	o.ReconvFloodMessages = 2 * g.NumLinks()
	return o, nil
}

// WriteOverheadReport renders the §6 comparison for the given topologies.
func WriteOverheadReport(w io.Writer, names []string) error {
	fmt.Fprintf(w, "%-10s %-5s %-5s %-4s | %-7s %-10s %-9s %-6s | %-8s %-7s | %-7s\n",
		"topology", "nodes", "links", "diam",
		"PRbits", "codec", "cyc/rtr", "genus",
		"FCPbits", "FCPspf", "LSAmsgs")
	for _, name := range names {
		tp, err := topo.ByName(name)
		if err != nil {
			return err
		}
		o, err := MeasureOverhead(tp)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %-5d %-5d %-4d | %-7d %-10s %-9.1f %-6d | %-8d %-7d | %-7d\n",
			o.Topology, o.Nodes, o.Links, o.HopDiameter,
			o.PRHeaderBits, o.PRWireCodec, o.PRCycleEntriesPerRouter, o.PREmbeddingGenus,
			o.FCPMaxHeaderBits, o.FCPMaxRecomputations, o.ReconvFloodMessages)
	}
	return nil
}
