package eval

import (
	"fmt"
	"io"

	"recycle/internal/certify"
	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/failure"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// CertifyConfig parameterises a k-failure certification run: the
// adversarial counterpart of ResilienceConfig's Monte-Carlo sampling.
// The embedded Panel's Topologies, Seed, Metrics and Tracer are consumed
// (certify.* search-progress counters land in Metrics, the search's span
// tree in Tracer); the
// failure-process fields are ignored — the adversary enumerates failure
// sets, it does not sample a process.
type CertifyConfig struct {
	Panel
	// K is the maximum number of simultaneous element failures to
	// certify against (default 2).
	K int
	// Mode selects the element universe: link failures (default), node
	// failures, or both.
	Mode failure.ElementMode
	// Baseline certifies the reconvergence baseline instead of compiled
	// PR — the control arm that demonstrates the certificate machinery
	// finds real counterexamples (reconvergence violates under a single
	// well-placed failure; PR on a genus-0 embedding must not).
	Baseline bool
	// Workers bounds the per-destination fan-out (0 = automatic).
	Workers int
	// Restarts and Iters forward to the annealing stage of the guided
	// search (certify.Config defaults apply when zero).
	Restarts int
	Iters    int
}

func (c *CertifyConfig) withDefaults() CertifyConfig {
	out := *c
	out.Panel = out.Panel.withDefaults("")
	if out.K == 0 {
		out.K = 2
	}
	return out
}

// RunCertify compiles the topology's dataplane and runs the adversarial
// failure search against it, producing the topology's resilience
// certificate: either "provably zero violations for every failure set
// of ≤K elements" (exhaustive regimes) or the minimal counterexamples
// with refereed violating walks. With cfg.Baseline the walker is the
// reconvergence baseline over the same graph. The certificate's
// PinScenarios feed ResilienceConfig.Pins, closing the loop between
// worst-case search and Monte-Carlo regression.
func RunCertify(tp topo.Topology, cfg CertifyConfig) (*certify.Certificate, error) {
	eff := cfg.withDefaults()
	g := tp.Graph

	var walker certify.Walker
	genus := certify.GenusUnknown
	if eff.Baseline {
		walker = certify.NewReconvWalker(g)
	} else {
		sys := tp.Embedding
		if sys == nil {
			var err error
			if sys, err = (embedding.Auto{Seed: 1}).Embed(g); err != nil {
				return nil, err
			}
		}
		prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
		if err != nil {
			return nil, err
		}
		fib, err := dataplane.CompileWithOptions(prot, nil, dataplane.CompileOptions{
			Tracer: eff.Tracer, Metrics: eff.Metrics,
		})
		if err != nil {
			return nil, err
		}
		walker = certify.NewPRWalker(fib)
		genus = sys.Genus()
	}

	return certify.Certify(g, walker, certify.Config{
		K:        eff.K,
		Mode:     eff.Mode,
		Seed:     eff.Seed,
		Workers:  eff.Workers,
		Label:    tp.Name,
		Genus:    genus,
		Metrics:  eff.Metrics,
		Tracer:   eff.Tracer,
		Restarts: eff.Restarts,
		Iters:    eff.Iters,
	})
}

// WriteCertifyReport runs certification over the config's topology
// panel and renders each certificate in full — headline (the line CI
// greps), search accounting, and any refereed counterexample walks. It
// returns the certificates alongside any error so a caller can feed
// their PinScenarios into a resilience sweep.
func WriteCertifyReport(w io.Writer, cfg CertifyConfig) ([]*certify.Certificate, error) {
	eff := cfg.withDefaults()
	panel, err := eff.Panel.topologies()
	if err != nil {
		return nil, err
	}
	certs := make([]*certify.Certificate, 0, len(panel))
	for i, tp := range panel {
		if i > 0 {
			fmt.Fprintln(w)
		}
		cert, err := RunCertify(tp, cfg)
		if err != nil {
			return certs, fmt.Errorf("eval: certify %s: %w", tp.Name, err)
		}
		if err := cert.Write(w); err != nil {
			return certs, err
		}
		certs = append(certs, cert)
	}
	return certs, nil
}
