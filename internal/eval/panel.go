package eval

import (
	"recycle/internal/failure"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
)

// Panel is the configuration surface every eval harness shares: the
// topology panel under test, the failure process driving the runs, the
// master seed, and an optional shared metrics registry. Harness configs
// (ResilienceConfig, SoakConfig, ChurnConfig, TrafficLossConfig,
// CertifyConfig) embed it, so the same literal fields parameterise every
// harness and a CLI can bind one set of global flags to all of them.
type Panel struct {
	// Topologies is the named topology panel the report writers iterate
	// (topo.ByName grammar, e.g. "abilene", "ring:24", "rand:24@7").
	// Harnesses that run a single topology take it as an explicit
	// argument and ignore this field.
	Topologies []string
	// Spec is the failure-process specification the runs sample from
	// (failure.ParseScenario grammar). Empty selects the harness's
	// default process. Harnesses without a failure dimension (churn,
	// traffic mix) ignore it.
	Spec string
	// Process optionally supplies a pre-built failure process (e.g. a
	// scripted scenario file via failure.ParseScript); when non-nil it
	// is used verbatim and Spec only labels the report.
	Process failure.Process
	// Seed is the harness's master seed (default 1). Every derived
	// stream (scenario draws, traffic, annealing) sub-seeds from it, so
	// a fixed Seed reproduces the run bit-for-bit.
	Seed int64
	// Metrics optionally shares a live registry (e.g. one served over
	// HTTP by `prsim -metrics`); nil gives the harness a private one.
	// Runs subtract a base snapshot, so sharing never double-counts.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives the run's control-plane span tree
	// (compiles, hot-swaps, scenario events) and is registered as a
	// collector on the run's registry, so snapshots — and the epoch
	// timeline — carry the spans that ended inside them. Harnesses
	// tolerate nil at zero cost.
	Tracer *telemetry.Tracer
}

// withDefaults resolves the Panel's empty fields: defaultSpec fills
// Spec (a non-nil Process labels it instead), and Seed defaults to 1.
func (p Panel) withDefaults(defaultSpec string) Panel {
	if p.Spec == "" {
		if p.Process != nil {
			p.Spec = p.Process.Name()
		} else {
			p.Spec = defaultSpec
		}
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// process resolves the Panel's failure process: Process verbatim when
// set (validated), the parsed Spec otherwise. Call after withDefaults.
func (p Panel) process() (failure.Process, error) {
	if p.Process != nil {
		if err := p.Process.Validate(); err != nil {
			return nil, err
		}
		return p.Process, nil
	}
	return failure.ParseScenario(p.Spec)
}

// topologies resolves the named panel through topo.ByName, in order.
func (p Panel) topologies() ([]topo.Topology, error) {
	out := make([]topo.Topology, 0, len(p.Topologies))
	for _, name := range p.Topologies {
		tp, err := topo.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, tp)
	}
	return out, nil
}
