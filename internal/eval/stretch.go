// Package eval is the experiment harness that regenerates the paper's
// evaluation artefacts: the six stretch-CCDF panels of Figure 2, the §6
// overhead comparison, and the §1 loss-window numbers. It wires the PR
// protocol and both baselines (FCP, reconvergence) through identical
// failure scenarios and reports the same conditional distribution the paper
// plots: P(stretch > x | path affected by the failure).
package eval

import (
	"fmt"
	"math"
	"sort"

	"recycle/internal/core"
	"recycle/internal/embedding"
	"recycle/internal/fcp"
	"recycle/internal/graph"
	"recycle/internal/reconv"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// SchemeID identifies a recovery mechanism under comparison — the
// experiment-panel enum, distinct from the sim.Scheme execution
// interface.
type SchemeID int

const (
	// Reconvergence: optimal post-convergence shortest paths.
	Reconvergence SchemeID = iota
	// FCP: failure-carrying packets.
	FCP
	// PR: packet re-cycling, Full variant (§4.3).
	PR
	// PRBasic: packet re-cycling, Basic variant (§4.2) — an ablation the
	// paper discusses but does not plot.
	PRBasic
)

// String names the scheme as in the paper's legend.
func (s SchemeID) String() string {
	switch s {
	case Reconvergence:
		return "Re-convergence"
	case FCP:
		return "Failure-Carrying Packets"
	case PR:
		return "Packet Re-cycling"
	case PRBasic:
		return "Packet Re-cycling (basic)"
	}
	return fmt.Sprintf("SchemeID(%d)", int(s))
}

// Spec describes one stretch experiment (one Figure 2 panel).
type Spec struct {
	// Topology under test.
	Topology topo.Topology
	// Schemes to compare; nil means the paper's three.
	Schemes []SchemeID
	// Failures is the scenario list (one failure set per scenario).
	Failures []*graph.FailureSet
	// Discriminator for PR routing tables (default HopCount).
	Discriminator route.Discriminator
	// Embedder computes PR's embedding when the topology does not carry
	// one (default embedding.Auto{}).
	Embedder embedding.Embedder
}

// Series is one scheme's outcome over every scenario and affected pair.
type Series struct {
	Scheme SchemeID
	// Stretches holds one stretch value per delivered affected walk.
	Stretches []float64
	// Affected counts (scenario, src, dst) walks attempted.
	Affected int
	// Dropped counts walks that did not deliver.
	Dropped int
}

// DeliveryRate returns delivered / affected (1 when nothing was affected).
func (s *Series) DeliveryRate() float64 {
	if s.Affected == 0 {
		return 1
	}
	return float64(len(s.Stretches)) / float64(s.Affected)
}

// CCDF returns P(stretch > x) for each x in xs.
func (s *Series) CCDF(xs []float64) []float64 {
	sorted := append([]float64(nil), s.Stretches...)
	sort.Float64s(sorted)
	out := make([]float64, len(xs))
	for i, x := range xs {
		// count of samples > x  =  len - upper_bound(x)
		idx := sort.SearchFloat64s(sorted, x+1e-12)
		out[i] = 0
		if len(sorted) > 0 {
			out[i] = float64(len(sorted)-idx) / float64(len(sorted))
		}
	}
	return out
}

// MaxStretch returns the largest observed stretch (0 when empty).
func (s *Series) MaxStretch() float64 {
	max := 0.0
	for _, v := range s.Stretches {
		if v > max {
			max = v
		}
	}
	return max
}

// MeanStretch returns the average stretch (0 when empty).
func (s *Series) MeanStretch() float64 {
	if len(s.Stretches) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Stretches {
		sum += v
	}
	return sum / float64(len(s.Stretches))
}

// Experiment is the result of running a Spec.
type Experiment struct {
	Spec   Spec
	Series []*Series
	// Scenarios actually evaluated (those keeping the graph connected).
	Scenarios int
}

// SeriesFor returns the series of a scheme, or nil.
func (e *Experiment) SeriesFor(s SchemeID) *Series {
	for _, sr := range e.Series {
		if sr.Scheme == s {
			return sr
		}
	}
	return nil
}

// Run executes the experiment: for every scenario, for every ordered pair
// whose failure-free shortest path traverses a failed link (the paper's
// "| path" conditioning), walk each scheme and record stretch.
func Run(spec Spec) (*Experiment, error) {
	g := spec.Topology.Graph
	if len(spec.Schemes) == 0 {
		spec.Schemes = []SchemeID{Reconvergence, FCP, PR}
	}
	if spec.Embedder == nil {
		spec.Embedder = embedding.Auto{Seed: 1}
	}

	sys := spec.Topology.Embedding
	if sys == nil {
		var err error
		sys, err = spec.Embedder.Embed(g)
		if err != nil {
			return nil, fmt.Errorf("eval: embedding %s: %w", spec.Topology.Name, err)
		}
	}
	tbl := route.Build(g, spec.Discriminator)

	prFull, err := core.New(g, sys, tbl, core.Config{Variant: core.Full})
	if err != nil {
		return nil, err
	}
	prBasic, err := core.New(g, sys, tbl, core.Config{Variant: core.Basic})
	if err != nil {
		return nil, err
	}
	fcpRouter := fcp.New(g)
	reconvRouter := reconv.New(g)

	exp := &Experiment{Spec: spec}
	series := make(map[SchemeID]*Series)
	for _, s := range spec.Schemes {
		sr := &Series{Scheme: s}
		series[s] = sr
		exp.Series = append(exp.Series, sr)
	}

	// Failure-free trees for affectedness: pair (s,t) is affected when its
	// SP path to t crosses a failed link.
	baseline := make([]*graph.SPTree, g.NumNodes())
	for d := 0; d < g.NumNodes(); d++ {
		baseline[d] = tbl.Tree(graph.NodeID(d))
	}

	for _, fs := range spec.Failures {
		if !graph.ConnectedUnder(g, fs) {
			continue // the paper conditions on surviving connectivity
		}
		exp.Scenarios++
		for src := 0; src < g.NumNodes(); src++ {
			for dst := 0; dst < g.NumNodes(); dst++ {
				if src == dst {
					continue
				}
				s, d := graph.NodeID(src), graph.NodeID(dst)
				if !affected(baseline[dst], s, fs) {
					continue
				}
				for _, scheme := range spec.Schemes {
					sr := series[scheme]
					sr.Affected++
					stretch, delivered := walkScheme(scheme, prFull, prBasic, fcpRouter, reconvRouter, s, d, fs)
					if !delivered {
						sr.Dropped++
						continue
					}
					sr.Stretches = append(sr.Stretches, stretch)
				}
			}
		}
	}
	return exp, nil
}

// affected reports whether src's failure-free path toward the tree's
// destination crosses any failed link.
func affected(tree *graph.SPTree, src graph.NodeID, fs *graph.FailureSet) bool {
	if !tree.Reachable(src) {
		return false
	}
	for n := src; n != tree.Dest; n = tree.NextNode[n] {
		if fs.Down(tree.NextLink[n]) {
			return true
		}
	}
	return false
}

func walkScheme(s SchemeID, prFull, prBasic *core.Protocol, f *fcp.Router, rc *reconv.Router, src, dst graph.NodeID, fs *graph.FailureSet) (stretch float64, delivered bool) {
	switch s {
	case PR:
		r := prFull.Walk(src, dst, fs)
		return clampStretch(r.Stretch), r.Delivered()
	case PRBasic:
		r := prBasic.Walk(src, dst, fs)
		return clampStretch(r.Stretch), r.Delivered()
	case FCP:
		r := f.Walk(src, dst, fs)
		return clampStretch(r.Stretch), r.Delivered
	case Reconvergence:
		r := rc.Walk(src, dst, fs)
		return clampStretch(r.Stretch), r.Delivered
	}
	return 0, false
}

// clampStretch absorbs float accumulation noise just below 1.
func clampStretch(v float64) float64 { return math.Max(v, 1) }
