package eval

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/failure"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
	"recycle/internal/traffic"
)

// The soak harness is the full stack running *at once* for a sustained
// period: hundreds of thousands of concurrent traffic flows walked
// hop-by-hop through a live sharded Engine with a TxQueue egress, while
// a continuous failure scenario plays out against the engine's link
// state and a stream of Recompiler hot-swaps (weight tweaks and
// structural chord add/remove) lands on the running engine — everything
// publishing into one telemetry.Registry whose Timeline is rolled on
// every scenario event and swap, with the summed per-epoch deltas
// proven equal to the aggregate exactly (the same lossless-exposition
// invariant TraceResilience pins).
//
// Every loss is refereed live, with the semantics the simulator's
// oracle referee established: a drop while the pair was partitioned is
// excused; a drop whose flight window overlapped a link-state
// transition or a hot-swap is a §7 transient; a drop under steady
// connected state is a violation — the class the paper's guarantee
// (and the soak verdict) demands stay at zero.

// Soak metric names. The soak.* counters are written by the
// single-threaded referee pump, so the per-epoch timeline attributes
// every emission, delivery and refereed loss to the epoch it happened
// in.
const (
	MetricSoakGenerated   = "soak.generated"
	MetricSoakDelivered   = "soak.delivered"
	MetricSoakDropNoRoute = "soak.drop.no-route"
	MetricSoakDropTTL     = "soak.drop.ttl"
	MetricSoakViolation   = "soak.loss.violation"
	MetricSoakTransient   = "soak.loss.transient"
	MetricSoakExcused     = "soak.loss.excused"
	MetricSoakHops        = "soak.hops"
	MetricSoakLatencyNs   = "soak.latency_ns"
	MetricSoakFlows       = "soak.flows"
	MetricSoakLagNs       = "soak.calendar_lag_ns"
	MetricSoakHeapBytes   = "soak.heap_alloc_bytes"
	MetricSoakTxBacklogNs = "soak.tx_backlog_ns"
	// Per-dart-class backlog distributions, sampled by the pump at flush
	// cadence: forward darts (even IDs) and reverse darts (odd IDs) each
	// get a histogram of instantaneous queueing delay plus a peak gauge —
	// the queue-sizing telemetry the single MaxBacklog gauge hides.
	MetricSoakTxBacklogFwdNs    = "soak.tx_backlog.fwd_ns"
	MetricSoakTxBacklogRevNs    = "soak.tx_backlog.rev_ns"
	MetricSoakTxBacklogFwdMaxNs = "soak.tx_backlog.fwd_max_ns"
	MetricSoakTxBacklogRevMaxNs = "soak.tx_backlog.rev_max_ns"
)

// backlogBuckets bins sampled per-dart backlog: 1 µs .. ~262 ms, with
// idle darts (zero backlog) landing in the first bucket.
func backlogBuckets() []int64 { return telemetry.ExponentialBuckets(1000, 4, 10) }

// DefaultSoakSpec is the soak's background failure process: per-link
// exponential 20 s MTBF / 200 ms MTTR. On a 100-link topology that is
// several link events per second — continuous churn, with occasional
// concurrent failures and partitions.
const DefaultSoakSpec = "mtbf:up=20s,down=200ms"

// SoakConfig parameterises RunSoak. The embedded Panel carries the
// failure process (default DefaultSoakSpec), the master seed — which
// drives everything: flow endpoints, traffic, the scenario draw and the
// swap edit stream — and the optional shared metrics registry.
type SoakConfig struct {
	Panel
	// Flows is the concurrent flow count (default 100_000). Each flow is
	// a persistent (src,dst) pair emitting per the Traffic process; the
	// per-flow state is ~48 bytes, so hundreds of thousands of flows fit
	// easily where that many traffic.Stream iterators (≈5 kB of legacy
	// rand state each) would not.
	Flows int
	// Duration is how long emissions run (default 30s). In-flight
	// packets drain to a verdict after the horizon.
	Duration time.Duration
	// Traffic is the per-flow arrival process (traffic.ParseSpec
	// grammar: fixed, poisson or mmpp; default "poisson:rate=2"). The
	// spec's rate is per flow: aggregate offered load is Flows × the
	// process's mean rate.
	Traffic string
	// SwapEvery is the interval between control-plane hot-swaps against
	// the running engine (default Duration/12). Most swaps are weight
	// tweaks; one adds a structural chord and a later one removes it
	// (when a genus-preserving chord exists).
	SwapEvery time.Duration
	// Shards is the engine worker count (0 = engine default).
	Shards int
	// BatchSize is packets per engine batch (default 256).
	BatchSize int
	// BandwidthBps is the egress per-link bandwidth (0 = TxQueue's
	// default).
	BandwidthBps float64
	// MaxHops is the per-packet hop budget (default 4×nodes, the
	// simulator's TTL convention).
	MaxHops int
	// MaxDropFrac bounds the pass verdict's tolerated drop fraction:
	// (no-route + ttl + tx drops) / generated (default 0.02). Violations
	// are never tolerated, whatever this bound.
	MaxDropFrac float64
}

func (c *SoakConfig) withDefaults() SoakConfig {
	out := *c
	out.Panel = out.Panel.withDefaults(DefaultSoakSpec)
	if out.Flows == 0 {
		out.Flows = 100_000
	}
	if out.Duration == 0 {
		out.Duration = 30 * time.Second
	}
	if out.Traffic == "" {
		out.Traffic = "poisson:rate=2"
	}
	if out.SwapEvery == 0 {
		out.SwapEvery = out.Duration / 12
	}
	if out.BatchSize == 0 {
		out.BatchSize = 256
	}
	if out.MaxDropFrac == 0 {
		out.MaxDropFrac = 0.02
	}
	return out
}

// SoakResult is one soak run's full account.
type SoakResult struct {
	Topology string
	Scenario string
	Genus    int
	Flows    int
	// OfferedPPS is the configured aggregate offered load: Flows × the
	// traffic process's mean per-flow rate.
	OfferedPPS float64
	// Horizon is the configured emission window; Elapsed the wall time
	// including the post-horizon drain.
	Horizon time.Duration
	Elapsed time.Duration

	// Generated..DropTTL account every emitted packet exactly:
	// Generated == Delivered + DropNoRoute + DropTTL.
	Generated   uint64
	Delivered   uint64
	DropNoRoute uint64
	DropTTL     uint64
	// Violations/Transient/Excused referee the drops: a violation is a
	// loss under steady connected state (the class the §5 guarantee
	// forbids on genus-0 embeddings), a transient had a failure, repair
	// or hot-swap land mid-flight (§7's damped regime), an excused loss
	// crossed a partition no scheme can.
	Violations uint64
	Transient  uint64
	Excused    uint64

	// Decisions is the engine's total (every hop of every walk);
	// DecisionsPerSec and DeliveredPerSec are sustained rates over
	// Elapsed.
	Decisions       uint64
	DecisionsPerSec float64
	DeliveredPerSec float64

	// Swaps counts hot-swaps applied to the live engine;
	// StructuralSwaps of those changed the link set; SkippedSwaps were
	// abandoned (no genus-preserving chord found, or an edit was
	// refused). ScenarioEvents counts link failures/repairs applied.
	Swaps           int
	StructuralSwaps int
	SkippedSwaps    int
	ScenarioEvents  int

	// AllocBytes/Mallocs/NumGC are runtime.MemStats deltas over the run
	// — the steady-state allocation telemetry a microbenchmark cannot
	// see.
	AllocBytes uint64
	Mallocs    uint64
	NumGC      uint32

	// Epochs is the per-event timeline; Aggregate the run's total
	// deltas. RunSoak verifies sum(Epochs) == Aggregate exactly before
	// returning.
	Epochs    []telemetry.Epoch
	Aggregate *telemetry.Snapshot

	// Pass is the verdict: zero violations and drops within
	// MaxDropFrac. FailReasons explains a false Pass.
	Pass        bool
	FailReasons []string
}

// DropFrac is (walk drops + tx drops) / generated. The egress account
// lives under the tx.* names of the run's Aggregate snapshot, retired
// dart-space generations across structural swaps included.
func (r *SoakResult) DropFrac() float64 {
	if r.Generated == 0 {
		return 0
	}
	var txDropped uint64
	if r.Aggregate != nil {
		txDropped = dataplane.TxDropped(r.Aggregate)
	}
	return float64(r.DropNoRoute+r.DropTTL+txDropped) / float64(r.Generated)
}

// ---------------------------------------------------------------------------
// Compact per-flow traffic state
// ---------------------------------------------------------------------------

type flowKind uint8

const (
	flowFixed flowKind = iota
	flowPoisson
	flowMMPP
)

// soakTraffic is a traffic.Source compiled into shared per-kind
// parameters, so per-flow state shrinks to soakFlow.
type soakTraffic struct {
	kind     flowKind
	interval time.Duration // fixed
	rate     float64       // poisson
	rateOn   float64       // mmpp
	rateOff  float64
	meanOn   float64 // mmpp dwell means, in seconds
	meanOff  float64
	sizes    traffic.SizeDist // nil for the fixed-size fast path
	bits     int32
	meanRate float64 // packets/sec per flow, for the offered-load report
}

func compileTraffic(src traffic.Source) (*soakTraffic, error) {
	if err := src.Validate(); err != nil {
		return nil, err
	}
	sizeOf := func(d traffic.SizeDist) (traffic.SizeDist, int32) {
		switch s := d.(type) {
		case nil:
			return nil, traffic.DefaultBits
		case traffic.FixedSize:
			if s.Bits == 0 {
				return nil, traffic.DefaultBits
			}
			return nil, int32(s.Bits)
		default:
			return d, 0
		}
	}
	switch s := src.(type) {
	case traffic.Fixed:
		bits := int32(s.Bits)
		if bits == 0 {
			bits = traffic.DefaultBits
		}
		return &soakTraffic{kind: flowFixed, interval: s.Interval, bits: bits,
			meanRate: float64(time.Second) / float64(s.Interval)}, nil
	case traffic.Poisson:
		sizes, bits := sizeOf(s.Sizes)
		return &soakTraffic{kind: flowPoisson, rate: s.Rate, sizes: sizes, bits: bits,
			meanRate: s.Rate}, nil
	case traffic.MMPP:
		sizes, bits := sizeOf(s.Sizes)
		return &soakTraffic{kind: flowMMPP, rateOn: s.RateOn, rateOff: s.RateOff,
			meanOn: s.MeanOn.Seconds(), meanOff: s.MeanOff.Seconds(),
			sizes: sizes, bits: bits, meanRate: s.MeanRate()}, nil
	}
	return nil, fmt.Errorf("eval: soak traffic must be fixed, poisson or mmpp (got %s)", src.Name())
}

// soakFlow is one flow's complete emission state: ≈48 bytes, against
// the ≈5 kB a traffic.Stream's legacy rand.Rand source would cost.
type soakFlow struct {
	next  time.Duration // next emission instant
	dwell time.Duration // mmpp: time left in the current state
	rng   uint64        // splitmix64 state
	src   int32
	dst   int32
	on    bool // mmpp state
}

// sm64 is splitmix64: tiny, seedable, statistically solid — the same
// sequencing finaliser failure.DrawSeed sub-seeds with.
func sm64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// smUnit draws a uniform in (0, 1].
func smUnit(s *uint64) float64 {
	return (float64(sm64(s)>>11) + 1) / (1 << 53)
}

// expDur draws an exponential gap at the given rate (events/second).
func expDur(s *uint64, rate float64) time.Duration {
	return time.Duration(-math.Log(smUnit(s)) / rate * float64(time.Second))
}

// nextGap advances one flow to its next emission, mirroring the
// corresponding traffic.Stream semantics (Poisson: exponential gaps;
// MMPP: memoryless redraw across state switches, exactly the
// mmppStream.Next algorithm).
func (tr *soakTraffic) nextGap(f *soakFlow) time.Duration {
	switch tr.kind {
	case flowFixed:
		return tr.interval
	case flowPoisson:
		return expDur(&f.rng, tr.rate)
	default: // flowMMPP
		var gap time.Duration
		for {
			r := tr.rateOn
			if !f.on {
				r = tr.rateOff
			}
			if r > 0 {
				d := expDur(&f.rng, r)
				if d < f.dwell {
					f.dwell -= d
					return gap + d
				}
			}
			gap += f.dwell
			f.on = !f.on
			mean := tr.meanOn
			if !f.on {
				mean = tr.meanOff
			}
			f.dwell = time.Duration(-math.Log(smUnit(&f.rng)) * mean * float64(time.Second))
		}
	}
}

// ---------------------------------------------------------------------------
// Emission calendar: a binary min-heap of flow indices keyed by next
// ---------------------------------------------------------------------------

type soakCalendar struct {
	flows []soakFlow
	heap  []int32
}

func (c *soakCalendar) len() int { return len(c.heap) }

func (c *soakCalendar) less(i, j int) bool {
	return c.flows[c.heap[i]].next < c.flows[c.heap[j]].next
}

// peek returns the earliest next-emission instant.
func (c *soakCalendar) peek() time.Duration { return c.flows[c.heap[0]].next }

func (c *soakCalendar) siftDown(i int) {
	n := len(c.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && c.less(l, m) {
			m = l
		}
		if r < n && c.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		c.heap[i], c.heap[m] = c.heap[m], c.heap[i]
		i = m
	}
}

func (c *soakCalendar) init() {
	for i := len(c.heap)/2 - 1; i >= 0; i-- {
		c.siftDown(i)
	}
}

// bump re-sinks the root after its flow's next instant advanced.
func (c *soakCalendar) bump() { c.siftDown(0) }

// ---------------------------------------------------------------------------
// Churn log: applied control-plane instants for the transient referee
// ---------------------------------------------------------------------------

// churnLog records when control-plane actions (scenario events, FIB
// hot-swaps) actually landed on the engine, plus the worst observed lag
// between an action's scheduled and applied instants. The referee
// widens its stability window backwards by that lag and checks applied
// instants directly: a packet walks under engine state at most lag
// behind the oracle's scheduled state, so a loss within the slack of a
// transition is a §7 transient, never a false violation minted by
// scheduling jitter.
type churnLog struct {
	mu    sync.Mutex
	times []time.Duration // applied instants, ascending
	lagNs atomic.Int64
}

func (c *churnLog) record(at time.Duration) {
	c.mu.Lock()
	c.times = append(c.times, at)
	c.mu.Unlock()
}

func (c *churnLog) noteLag(lag time.Duration) {
	for {
		cur := c.lagNs.Load()
		if int64(lag) <= cur || c.lagNs.CompareAndSwap(cur, int64(lag)) {
			return
		}
	}
}

func (c *churnLog) lag() time.Duration { return time.Duration(c.lagNs.Load()) }

// overlaps reports whether any applied instant falls in (from, to].
func (c *churnLog) overlaps(from, to time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := sort.Search(len(c.times), func(i int) bool { return c.times[i] > from })
	return i < len(c.times) && c.times[i] <= to
}

// ---------------------------------------------------------------------------
// RunSoak
// ---------------------------------------------------------------------------

// soakMeta is the walker's per-packet sidecar, parallel to Batch.Pkts.
type soakMeta struct {
	emit time.Duration
	src  int32
	hops int32
}

// soakBatch pairs an engine batch with its sidecar.
type soakBatch struct {
	b    *dataplane.Batch
	meta []soakMeta
}

// soakDone is one decided batch plus the FIB it was decided under. The
// deciding FIB matters: across a structural hot-swap the current FIB
// has a different dart space, and mapping egress darts through the
// wrong one is silently wrong.
type soakDone struct {
	sb  *soakBatch
	fib *dataplane.FIB
}

// RunSoak drives the full stack for cfg.Duration and referees every
// loss. The verdict demands zero violations and bounded drops, and the
// per-epoch timeline's summed deltas are verified against the
// aggregate snapshot before the result is returned.
func RunSoak(tp topo.Topology, cfg SoakConfig) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	g := tp.Graph
	n := g.NumNodes()
	if n < 2 {
		return nil, fmt.Errorf("eval: soak needs at least 2 nodes")
	}
	if cfg.MaxHops == 0 {
		cfg.MaxHops = 4 * n
	}
	sys := tp.Embedding
	var err error
	if sys == nil {
		if sys, err = (embedding.Auto{Seed: 1}).Embed(g); err != nil {
			return nil, err
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	tracer := cfg.Tracer
	if tracer != nil {
		reg.RegisterCollector(tracer)
	}
	runSpan := tracer.Start("soak.run", 0)
	runSpan.SetAttr(telemetry.AttrNodes, int64(n))
	runSpan.SetAttr(telemetry.AttrSeed, cfg.Seed)
	defer runSpan.End()

	prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		return nil, err
	}
	fib, err := dataplane.CompileWithOptions(prot, nil, dataplane.CompileOptions{
		Tracer: tracer, TraceParent: runSpan.ID(), Metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	rec, err := dataplane.NewRecompiler(prot, nil, fib)
	if err != nil {
		return nil, err
	}
	rec.SetTracer(tracer)

	proc, err := cfg.process()
	if err != nil {
		return nil, err
	}
	sc, err := proc.Generate(g, cfg.Duration, failure.DrawSeed(cfg.Seed, 0))
	if err != nil {
		return nil, err
	}
	oracle, err := failure.NewOracle(g, sc)
	if err != nil {
		return nil, err
	}
	events, err := sc.Events(g)
	if err != nil {
		return nil, err
	}

	src, err := traffic.ParseSpecSeeded(cfg.Traffic, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tr, err := compileTraffic(src)
	if err != nil {
		return nil, err
	}

	tx := dataplane.NewTxQueue(fib, dataplane.TxConfig{BandwidthBps: cfg.BandwidthBps, Metrics: reg})
	rec.Register(reg)
	reg.Gauge(MetricSoakFlows).Set(int64(cfg.Flows))
	reg.RegisterCollector(telemetry.CollectorFunc(func(s *telemetry.Snapshot) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.SetGauge(MetricSoakHeapBytes, int64(ms.HeapAlloc))
		s.SetGauge(MetricSoakTxBacklogNs, int64(tx.MaxBacklog()))
	}))

	// Seed the flow population: random (src,dst) pairs, de-phased first
	// emissions so the calendar doesn't open with a thundering herd.
	rng := rand.New(rand.NewSource(failure.DrawSeed(cfg.Seed, 1)))
	cal := &soakCalendar{
		flows: make([]soakFlow, cfg.Flows),
		heap:  make([]int32, cfg.Flows),
	}
	for i := range cal.flows {
		f := &cal.flows[i]
		f.src = int32(rng.Intn(n))
		for {
			f.dst = int32(rng.Intn(n))
			if f.dst != f.src {
				break
			}
		}
		f.rng = uint64(failure.DrawSeed(cfg.Seed, 2)) + uint64(i)*0x9E3779B97F4A7C15
		f.on = true
		switch tr.kind {
		case flowFixed:
			f.next = time.Duration(sm64(&f.rng) % uint64(tr.interval))
		case flowPoisson:
			f.next = expDur(&f.rng, tr.rate)
		default:
			f.dwell = time.Duration(-math.Log(smUnit(&f.rng)) * tr.meanOn * float64(time.Second))
			f.next = tr.nextGap(f)
		}
		cal.heap[i] = int32(i)
	}
	cal.init()

	churn := &churnLog{}
	p := &soakPump{
		cfg:    cfg,
		tr:     tr,
		cal:    cal,
		oracle: oracle,
		churn:  churn,
		rng:    rand.New(rand.NewSource(failure.DrawSeed(cfg.Seed, 3))),
		lag:    reg.Gauge(MetricSoakLagNs),
		tracer: tracer,
		root:   runSpan.ID(),
		tx:     tx,
	}
	p.backFwd = reg.Histogram(MetricSoakTxBacklogFwdNs, backlogBuckets())
	p.backRev = reg.Histogram(MetricSoakTxBacklogRevNs, backlogBuckets())
	p.backFwdMax = reg.Gauge(MetricSoakTxBacklogFwdMaxNs)
	p.backRevMax = reg.Gauge(MetricSoakTxBacklogRevMaxNs)
	p.generated = reg.Counter(MetricSoakGenerated).Handle()
	p.delivered = reg.Counter(MetricSoakDelivered).Handle()
	p.noRoute = reg.Counter(MetricSoakDropNoRoute).Handle()
	p.ttl = reg.Counter(MetricSoakDropTTL).Handle()
	p.violation = reg.Counter(MetricSoakViolation).Handle()
	p.transient = reg.Counter(MetricSoakTransient).Handle()
	p.excused = reg.Counter(MetricSoakExcused).Handle()
	p.hops = reg.Histogram(MetricSoakHops, telemetry.ExponentialBuckets(1, 2, 10)).Handle()
	p.latency = reg.Histogram(MetricSoakLatencyNs, telemetry.ExponentialBuckets(1000, 4, 12)).Handle()

	// Batch pool: enough to keep every shard busy, and the done channel
	// is sized to the pool so a worker's hand-off can never block.
	pool := 4 * maxInt(cfg.Shards, runtime.GOMAXPROCS(0))
	if pool < 32 {
		pool = 32
	}
	p.done = make(chan soakDone, pool)
	p.byBatch = make(map[*dataplane.Batch]*soakBatch, pool)
	for i := 0; i < pool; i++ {
		sb := &soakBatch{
			b:    &dataplane.Batch{Pkts: make([]dataplane.Packet, 0, cfg.BatchSize)},
			meta: make([]soakMeta, 0, cfg.BatchSize),
		}
		p.byBatch[sb.b] = sb
		p.idle = append(p.idle, sb)
	}

	// The byBatch map is immutable once the engine starts, so the
	// OnDoneState hook (worker goroutines) reads it without locks.
	eng := dataplane.NewEngine(fib, dataplane.EngineConfig{
		Shards:  cfg.Shards,
		Egress:  tx,
		Metrics: reg,
		Tracer:  tracer,
		OnDoneState: func(b *dataplane.Batch, f *dataplane.FIB, _ *dataplane.LinkState) {
			p.done <- soakDone{sb: p.byBatch[b], fib: f}
		},
	})
	p.eng = eng

	var msStart runtime.MemStats
	runtime.ReadMemStats(&msStart)
	base := reg.Snapshot()
	tl := telemetry.NewTimeline(reg)
	start := time.Now()

	ctl := &soakControl{
		cfg: cfg, eng: eng, rec: rec, tl: tl, churn: churn,
		events: events, start: start,
		baseGenus: sys.Genus(),
		rng:       rand.New(rand.NewSource(failure.DrawSeed(cfg.Seed, 4))),
		tracer:    tracer,
		root:      runSpan.ID(),
	}
	ctlDone := make(chan struct{})
	go func() {
		defer close(ctlDone)
		ctl.run()
	}()

	p.run(start)
	<-ctlDone
	decisions := eng.Close()
	elapsed := time.Since(start)
	if ctl.err != nil {
		return nil, ctl.err
	}

	finishAt := cfg.Duration
	if elapsed > finishAt {
		finishAt = elapsed
	}
	epochs := tl.Finish(finishAt)
	agg := reg.Snapshot().Sub(base)
	if err := checkTimelineExact(tl.Sum(), agg); err != nil {
		return nil, fmt.Errorf("eval: soak %w", err)
	}

	var msEnd runtime.MemStats
	runtime.ReadMemStats(&msEnd)

	res := &SoakResult{
		Topology:        tp.Name,
		Scenario:        sc.Name,
		Genus:           sys.Genus(),
		Flows:           cfg.Flows,
		OfferedPPS:      float64(cfg.Flows) * tr.meanRate,
		Horizon:         cfg.Duration,
		Elapsed:         elapsed,
		Generated:       agg.Counter(MetricSoakGenerated),
		Delivered:       agg.Counter(MetricSoakDelivered),
		DropNoRoute:     agg.Counter(MetricSoakDropNoRoute),
		DropTTL:         agg.Counter(MetricSoakDropTTL),
		Violations:      agg.Counter(MetricSoakViolation),
		Transient:       agg.Counter(MetricSoakTransient),
		Excused:         agg.Counter(MetricSoakExcused),
		Decisions:       decisions,
		DecisionsPerSec: float64(decisions) / elapsed.Seconds(),
		Swaps:           ctl.swaps,
		StructuralSwaps: ctl.structural,
		SkippedSwaps:    ctl.skipped,
		ScenarioEvents:  ctl.eventsApplied,
		AllocBytes:      msEnd.TotalAlloc - msStart.TotalAlloc,
		Mallocs:         msEnd.Mallocs - msStart.Mallocs,
		NumGC:           msEnd.NumGC - msStart.NumGC,
		Epochs:          epochs,
		Aggregate:       agg,
	}
	res.DeliveredPerSec = float64(res.Delivered) / elapsed.Seconds()

	if got := res.Delivered + res.DropNoRoute + res.DropTTL; got != res.Generated {
		return nil, fmt.Errorf("eval: soak accounting leak: %d delivered+dropped ≠ %d generated", got, res.Generated)
	}
	if got := res.Violations + res.Transient + res.Excused; got != res.DropNoRoute+res.DropTTL {
		return nil, fmt.Errorf("eval: soak referee leak: %d refereed ≠ %d dropped", got, res.DropNoRoute+res.DropTTL)
	}

	res.Pass = true
	if res.Violations != 0 {
		res.Pass = false
		res.FailReasons = append(res.FailReasons,
			fmt.Sprintf("%d violations (losses under steady connected state)", res.Violations))
	}
	if df := res.DropFrac(); df > cfg.MaxDropFrac {
		res.Pass = false
		res.FailReasons = append(res.FailReasons,
			fmt.Sprintf("drop fraction %.4f exceeds bound %.4f", df, cfg.MaxDropFrac))
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// The pump: single-threaded emit → classify → referee → resubmit loop
// ---------------------------------------------------------------------------

// soakPump owns all traffic-side state. Decided batches come back on
// the done channel (from worker goroutines); everything else — packet
// classification, oracle queries, calendar pops, counter writes —
// happens on the pump goroutine, so the referee needs no locks and the
// oracle's lazily-filled reachability cache is safe. Workers never
// submit (they only send on the buffered channel), so resubmission can
// never deadlock the engine.
type soakPump struct {
	cfg    SoakConfig
	tr     *soakTraffic
	cal    *soakCalendar
	oracle *failure.Oracle
	churn  *churnLog
	eng    *dataplane.Engine
	rng    *rand.Rand // shared size-distribution draws

	done    chan soakDone
	byBatch map[*dataplane.Batch]*soakBatch
	idle    []*soakBatch

	tracer *telemetry.Tracer
	root   telemetry.SpanID
	tx     *dataplane.TxQueue
	// Per-dart-class backlog sampling (forward/reverse darts), taken on
	// the pump goroutine each time a flush of decided batches drains.
	backFwd    *telemetry.Histogram
	backRev    *telemetry.Histogram
	backFwdMax *telemetry.Gauge
	backRevMax *telemetry.Gauge

	generated telemetry.CounterHandle
	delivered telemetry.CounterHandle
	noRoute   telemetry.CounterHandle
	ttl       telemetry.CounterHandle
	violation telemetry.CounterHandle
	transient telemetry.CounterHandle
	excused   telemetry.CounterHandle
	hops      telemetry.HistogramHandle
	latency   telemetry.HistogramHandle
	lag       *telemetry.Gauge

	emitted  uint64
	resolved uint64
}

func (p *soakPump) run(start time.Time) {
	horizon := p.cfg.Duration
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	// The pump span covers the traffic/referee goroutine's lifetime; the
	// drain span (opened when the horizon passes with packets still in
	// flight) isolates the post-horizon resolution tail — the recovery
	// latency the referee's verdicts depend on.
	pumpSpan := p.tracer.Start("soak.pump", p.root)
	defer pumpSpan.End()
	var drain telemetry.Span
	defer drain.End()
	for {
		now := time.Since(start)
		// Fill idle batches with due emissions and submit them.
		for len(p.idle) > 0 && p.cal.len() > 0 && p.cal.peek() <= now && p.cal.peek() < horizon {
			sb := p.idle[len(p.idle)-1]
			p.idle = p.idle[:len(p.idle)-1]
			p.fill(sb, now, horizon)
			if len(sb.b.Pkts) == 0 {
				p.idle = append(p.idle, sb)
				break
			}
			p.submit(sb)
		}
		if now >= horizon && p.emitted == p.resolved {
			return // drained: every emitted packet has a verdict
		}
		if now >= horizon && drain.ID() == 0 {
			drain = p.tracer.Start("soak.drain", pumpSpan.ID())
		}
		// Calendar-lag gauge: how far emissions trail their schedule
		// (saturation telemetry — offered load beyond the pump).
		if now < horizon && p.cal.len() > 0 {
			if lag := now - p.cal.peek(); lag > 0 {
				p.lag.SetMax(int64(lag))
			}
		}

		// Sleep until a decided batch comes back or the next emission is
		// due (whichever is first).
		wake := 5 * time.Millisecond
		if len(p.idle) > 0 && now < horizon && p.cal.len() > 0 {
			if d := p.cal.peek() - now; d > 0 && d < wake {
				wake = d
			}
		}
		timer.Reset(wake)
		select {
		case d := <-p.done:
			p.process(d, time.Since(start), horizon)
			for drained := false; !drained; {
				select {
				case d := <-p.done:
					p.process(d, time.Since(start), horizon)
				default:
					drained = true
				}
			}
			p.sampleBacklog()
		case <-timer.C:
		}
	}
}

// sampleBacklog observes every dart's instantaneous backlog into the
// per-class histograms and peak gauges. Called once per flush of decided
// batches — O(darts), never per packet.
func (p *soakPump) sampleBacklog() {
	if p.tx == nil {
		return
	}
	mf, mr := p.tx.SampleBacklog(p.backFwd, p.backRev)
	p.backFwdMax.SetMax(int64(mf))
	p.backRevMax.SetMax(int64(mr))
}

// fill tops an idle batch up with due emissions.
func (p *soakPump) fill(sb *soakBatch, now, horizon time.Duration) {
	capN := cap(sb.b.Pkts)
	for len(sb.b.Pkts) < capN && p.cal.len() > 0 {
		at := p.cal.peek()
		if at > now || at >= horizon {
			break
		}
		f := &p.cal.flows[p.cal.heap[0]]
		bits := p.tr.bits
		if p.tr.sizes != nil {
			bits = int32(p.tr.sizes.SampleBits(p.rng))
		}
		sb.b.Pkts = append(sb.b.Pkts, dataplane.Packet{
			Node:    graph.NodeID(f.src),
			Dst:     graph.NodeID(f.dst),
			Ingress: rotation.NoDart,
			Bits:    bits,
		})
		sb.meta = append(sb.meta, soakMeta{emit: at, src: f.src})
		f.next = at + p.tr.nextGap(f)
		p.cal.bump()
		p.emitted++
		p.generated.Inc()
	}
}

func (p *soakPump) submit(sb *soakBatch) {
	for !p.eng.Submit(sb.b) {
		// Every ring full — transient by construction (the pool is far
		// smaller than aggregate ring capacity); let workers drain.
		time.Sleep(50 * time.Microsecond)
	}
}

// process classifies one decided batch: delivered packets and drops
// are resolved, survivors advance one hop and the batch — topped up
// with fresh emissions — goes straight back to the engine.
func (p *soakPump) process(d soakDone, now, horizon time.Duration) {
	sb, fib := d.sb, d.fib
	pkts, meta := sb.b.Pkts, sb.meta
	keep := 0
	for i := range pkts {
		pk := &pkts[i]
		m := &meta[i]
		if !pk.OK {
			p.refereeDrop(m, pk.Dst, now, p.noRoute)
			continue
		}
		next := fib.Head(pk.Egress)
		m.hops++
		if next == pk.Dst {
			p.resolved++
			p.delivered.Inc()
			p.hops.Observe(int64(m.hops))
			p.latency.Observe(int64(now - m.emit))
			continue
		}
		if int(m.hops) >= p.cfg.MaxHops {
			p.refereeDrop(m, pk.Dst, now, p.ttl)
			continue
		}
		// The arrival dart at the next node IS the egress dart (the
		// convention core.Protocol.Walk and the wire path share): cycle
		// following computes φ(ingress) on it directly.
		pk.Node = next
		pk.Ingress = pk.Egress
		pkts[keep] = *pk
		meta[keep] = *m
		keep++
	}
	sb.b.Pkts = pkts[:keep]
	sb.meta = meta[:keep]
	p.fill(sb, now, horizon)
	if len(sb.b.Pkts) == 0 {
		p.idle = append(p.idle, sb)
		return
	}
	p.submit(sb)
}

// refereeDrop resolves one lost packet into violation / transient /
// excused, mirroring the simulator's oracle referee. The stability
// window is widened backwards by the worst observed control-plane lag,
// and the churn log's applied instants are checked directly: a loss
// whose flight window brushed a transition in either time base is a §7
// transient, never a false violation minted by scheduling jitter.
func (p *soakPump) refereeDrop(m *soakMeta, dst graph.NodeID, now time.Duration, drop telemetry.CounterHandle) {
	p.resolved++
	drop.Inc()
	src := graph.NodeID(m.src)
	switch {
	case !p.oracle.ConnectedThroughout(src, dst, m.emit, now):
		p.excused.Inc()
	case !p.oracle.StableThroughout(m.emit-p.churn.lag(), now) || p.churn.overlaps(m.emit, now):
		p.transient.Inc()
	default:
		p.violation.Inc()
	}
}

// ---------------------------------------------------------------------------
// The control goroutine: scenario replay + hot-swap schedule
// ---------------------------------------------------------------------------

// soakControl owns the control plane: it replays the scenario's link
// events against the engine and lands a hot-swap every SwapEvery, each
// rolling the shared Timeline at its scheduled instant. It is the only
// goroutine touching the Timeline and the Recompiler.
type soakControl struct {
	cfg       SoakConfig
	eng       *dataplane.Engine
	rec       *dataplane.Recompiler
	tl        *telemetry.Timeline
	churn     *churnLog
	events    []failure.Event
	start     time.Time
	baseGenus int
	rng       *rand.Rand
	tracer    *telemetry.Tracer
	root      telemetry.SpanID

	swaps         int
	structural    int
	skipped       int
	eventsApplied int
	chord         graph.LinkID
	added         bool
	err           error
}

func updown(down bool) string {
	if down {
		return "down"
	}
	return "up"
}

func (c *soakControl) run() {
	horizon := c.cfg.Duration
	ei := 0
	swapIdx := 0
	nextSwap := c.cfg.SwapEvery
	// Structural swaps: a chord is added a third of the way in and
	// removed at two thirds, bracketing a window in which the engine
	// forwards on a larger dart space than it was built with.
	total := int(horizon / c.cfg.SwapEvery)
	addAt := total / 3
	removeAt := (2 * total) / 3
	if removeAt <= addAt {
		removeAt = addAt + 1
	}
	for c.err == nil {
		next := failure.Forever
		if ei < len(c.events) {
			next = c.events[ei].At
		}
		doSwap := false
		if nextSwap < next {
			next = nextSwap
			doSwap = true
		}
		if next >= horizon {
			return
		}
		if d := next - time.Since(c.start); d > 0 {
			time.Sleep(d)
		}
		if doSwap {
			c.swap(swapIdx, next, addAt, removeAt)
			swapIdx++
			nextSwap += c.cfg.SwapEvery
			continue
		}
		// Apply every event scheduled at this instant under one epoch
		// boundary — the same same-instant folding the oracle does, so
		// timeline epoch i aligns with oracle epoch i.
		first := true
		for ei < len(c.events) && c.events[ei].At == next {
			ev := c.events[ei]
			label := fmt.Sprintf("link %d %s", ev.Link, updown(ev.Down))
			if first {
				c.tl.Roll(next, label)
				first = false
			} else {
				c.tl.Annotate(label)
			}
			name := "soak.link.up"
			if ev.Down {
				name = "soak.link.down"
			}
			sp := c.tracer.Start(name, c.root)
			sp.SetAttr(telemetry.AttrLink, int64(ev.Link))
			c.eng.SetLink(ev.Link, ev.Down)
			sp.End()
			applied := time.Since(c.start)
			c.churn.record(applied)
			c.churn.noteLag(applied - next)
			c.eventsApplied++
			ei++
		}
	}
}

// swap lands one hot-swap on the running engine: a weight tweak, or at
// the scheduled indices a structural chord add / remove.
func (c *soakControl) swap(idx int, at time.Duration, addAt, removeAt int) {
	// The swap span brackets the whole attempt — recompile and engine
	// ApplyDelta included. Those publish their own root span trees
	// ("recompile.apply", "engine.swap"); the Chrome export shows them
	// temporally nested inside this one on the control-plane track.
	sp := c.tracer.Start("soak.swap", c.root)
	sp.SetAttr(telemetry.AttrCount, int64(idx))
	defer sp.End()
	var (
		d     *dataplane.Delta
		label string
		err   error
	)
	switch {
	case idx == addAt && !c.added:
		d, label = c.tryAddChord()
		if d == nil && c.err != nil {
			return
		}
		if d == nil {
			// No genus-preserving chord found: fall back to a weight
			// tweak so the swap cadence holds.
			c.skipped++
			d, label, err = c.tweakWeight()
		}
	case idx == removeAt && c.added:
		label = fmt.Sprintf("swap: remove chord link %d", c.chord)
		d, err = c.rec.Apply(graph.RemoveLinkEdit(c.chord))
		if err == nil {
			c.added = false
		}
	default:
		d, label, err = c.tweakWeight()
	}
	if err != nil {
		c.skipped++
		return
	}
	c.tl.Roll(at, label)
	if aerr := c.eng.ApplyDelta(d); aerr != nil {
		// The recompiler advanced but the engine refused: the two are
		// now desynchronised, which no later swap can repair. Abort.
		c.err = fmt.Errorf("eval: soak hot-swap refused: %w", aerr)
		return
	}
	applied := time.Since(c.start)
	c.churn.record(applied)
	c.churn.noteLag(applied - at)
	c.swaps++
	if d.Structural {
		c.structural++
	}
}

// tryAddChord hunts for a chord whose appended rotation placement keeps
// the surface genus — §5's guarantee is conditioned on the embedding,
// so a genus-raising chord is reverted (the trial edit is undone) and
// another candidate tried.
func (c *soakControl) tryAddChord() (*dataplane.Delta, string) {
	n := c.rec.Graph().NumNodes()
	for try := 0; try < 16; try++ {
		g := c.rec.Graph()
		a := graph.NodeID(c.rng.Intn(n))
		b := graph.NodeID(c.rng.Intn(n))
		if a == b || g.HasLink(a, b) {
			continue
		}
		d, err := c.rec.Apply(graph.AddLinkEdit(a, b, 1))
		if err != nil {
			continue // the recompiler is unchanged on error
		}
		if d.System.Genus() > c.baseGenus {
			chord := graph.LinkID(d.Graph.NumLinks() - 1)
			if _, rerr := c.rec.Apply(graph.RemoveLinkEdit(chord)); rerr != nil {
				c.err = fmt.Errorf("eval: soak could not revert trial chord: %w", rerr)
				return nil, ""
			}
			continue
		}
		c.chord = graph.LinkID(d.Graph.NumLinks() - 1)
		c.added = true
		return d, fmt.Sprintf("swap: add chord %d–%d (link %d)", a, b, c.chord)
	}
	return nil, ""
}

// tweakWeight nudges a random link's weight — the planned-maintenance
// edit stream that exercises non-structural hot-swaps.
func (c *soakControl) tweakWeight() (*dataplane.Delta, string, error) {
	g := c.rec.Graph()
	l := graph.LinkID(c.rng.Intn(g.NumLinks()))
	w := g.Weight(l) * (0.5 + c.rng.Float64())
	d, err := c.rec.Apply(graph.SetWeight(l, w))
	return d, fmt.Sprintf("swap: link %d weight %.3g", l, w), err
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

// WriteSoakReport renders one soak run: the headline account, the
// sustained rates, the control-plane churn, the allocation and egress
// telemetry, and the full per-epoch timeline — closing with the
// verdict line CI greps.
func WriteSoakReport(w io.Writer, r *SoakResult) {
	fmt.Fprintf(w, "# soak: %s (genus %d), %d flows ≈ %.0f pps offered, %v horizon (%v elapsed), scenario %s\n",
		r.Topology, r.Genus, r.Flows, r.OfferedPPS, r.Horizon, r.Elapsed.Round(time.Millisecond), r.Scenario)
	fmt.Fprintf(w, "# violation = lost while the pair stayed connected and nothing changed mid-flight;\n")
	fmt.Fprintf(w, "# transient = a failure/repair/hot-swap landed mid-flight (§7); excused = the pair was partitioned\n\n")

	fmt.Fprintf(w, "generated   %12d\n", r.Generated)
	fmt.Fprintf(w, "delivered   %12d  (%.1f pkts/s sustained)\n", r.Delivered, r.DeliveredPerSec)
	fmt.Fprintf(w, "no-route    %12d\n", r.DropNoRoute)
	fmt.Fprintf(w, "ttl         %12d\n", r.DropTTL)
	fmt.Fprintf(w, "violations  %12d\n", r.Violations)
	fmt.Fprintf(w, "transient   %12d\n", r.Transient)
	fmt.Fprintf(w, "excused     %12d\n", r.Excused)
	fmt.Fprintf(w, "decisions   %12d  (%.0f decisions/s sustained)\n", r.Decisions, r.DecisionsPerSec)
	fmt.Fprintf(w, "swaps       %12d  (%d structural, %d skipped)\n", r.Swaps, r.StructuralSwaps, r.SkippedSwaps)
	fmt.Fprintf(w, "link events %12d\n", r.ScenarioEvents)
	if a := r.Aggregate; a != nil {
		fmt.Fprintf(w, "tx          %12d sent, %d dropped (%d queue-full, %d link-down, %d stale-dart)\n",
			a.Counter(dataplane.MetricTxSent), dataplane.TxDropped(a),
			a.Counter(dataplane.MetricTxDropQueueFull), a.Counter(dataplane.MetricTxDropLinkDown),
			a.Counter(dataplane.MetricTxDropStaleDart))
	}
	perDecision := 0.0
	if r.Decisions > 0 {
		perDecision = float64(r.AllocBytes) / float64(r.Decisions)
	}
	fmt.Fprintf(w, "alloc       %12d B (%.1f B/decision), %d mallocs, %d GCs\n",
		r.AllocBytes, perDecision, r.Mallocs, r.NumGC)
	if r.Aggregate != nil {
		fmt.Fprintf(w, "gauges      calendar-lag %v, peak tx backlog %v, heap %d B, fib %d B\n",
			time.Duration(r.Aggregate.Gauge(MetricSoakLagNs)),
			time.Duration(r.Aggregate.Gauge(MetricSoakTxBacklogNs)),
			r.Aggregate.Gauge(MetricSoakHeapBytes),
			r.Aggregate.Gauge(dataplane.MetricFIBMemBytes))
		writeBacklogClass(w, r.Aggregate, "fwd darts", MetricSoakTxBacklogFwdNs, MetricSoakTxBacklogFwdMaxNs)
		writeBacklogClass(w, r.Aggregate, "rev darts", MetricSoakTxBacklogRevNs, MetricSoakTxBacklogRevMaxNs)
		writeStageLatencies(w, r.Aggregate)
		if sp := r.Aggregate.Spans; sp != nil {
			fmt.Fprintf(w, "spans       %12d captured (%d evicted)\n", len(sp.Spans), sp.Dropped)
		}
	}

	fmt.Fprintf(w, "\n%-5s %-12s %-12s %-40s %9s %9s %8s %6s %5s %6s %7s\n",
		"ep", "start", "end", "label", "generated", "delivered", "no-route", "ttl", "viol", "trans", "excused")
	for _, e := range r.Epochs {
		d := e.Delta
		fmt.Fprintf(w, "%-5d %-12v %-12v %-40s %9d %9d %8d %6d %5d %6d %7d\n",
			e.Index, e.Start, e.End, e.Label,
			d.Counter(MetricSoakGenerated), d.Counter(MetricSoakDelivered),
			d.Counter(MetricSoakDropNoRoute), d.Counter(MetricSoakDropTTL),
			d.Counter(MetricSoakViolation), d.Counter(MetricSoakTransient),
			d.Counter(MetricSoakExcused))
	}

	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "\nverdict: %s (drop fraction %.4f", verdict, r.DropFrac())
	for _, reason := range r.FailReasons {
		fmt.Fprintf(w, "; %s", reason)
	}
	fmt.Fprintf(w, ")\n")
}

// writeBacklogClass prints one dart class's sampled backlog
// distribution: p50/p99 (bucket upper bounds) over every flush-cadence
// sample of every dart in the class, plus the true peak from the
// high-watermark gauge.
func writeBacklogClass(w io.Writer, a *telemetry.Snapshot, label, hist, maxGauge string) {
	h, ok := a.Histograms[hist]
	if !ok || h.Count == 0 {
		return
	}
	fmt.Fprintf(w, "backlog     %-10s p50 ≤%v  p99 ≤%v  max %v  (%d samples)\n",
		label,
		time.Duration(h.Quantile(0.5)).Round(time.Microsecond),
		time.Duration(h.Quantile(0.99)).Round(time.Microsecond),
		time.Duration(a.Gauge(maxGauge)),
		h.Count)
}

// writeStageLatencies prints the control- and data-plane stage latency
// histograms the run accumulated — compile phases, swap barrier/apply,
// engine decide batches, tx queue waits — as p50/p99 bucket bounds, the
// latency-attribution summary of the span-traced seams.
func writeStageLatencies(w io.Writer, a *telemetry.Snapshot) {
	stages := []struct{ label, name string }{
		{"compile phase", dataplane.MetricCompilePhaseNs},
		{"swap barrier", dataplane.MetricSwapBarrierNs},
		{"swap apply", dataplane.MetricSwapApplyNs},
		{"decide batch", dataplane.MetricBatchNs},
		{"tx queue wait", dataplane.MetricTxQueueWaitNs},
	}
	wrote := false
	for _, st := range stages {
		h, ok := a.Histograms[st.name]
		if !ok || h.Count == 0 {
			continue
		}
		if !wrote {
			fmt.Fprintf(w, "\nstage latency (p50/p99 are bucket upper bounds):\n")
			wrote = true
		}
		fmt.Fprintf(w, "  %-14s p50 ≤%-12v p99 ≤%-12v %d samples\n",
			st.label,
			time.Duration(h.Quantile(0.5)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond),
			h.Count)
	}
}
