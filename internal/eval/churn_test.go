package eval

import (
	"bytes"
	"strings"
	"testing"

	"recycle/internal/topo"
)

func TestMeasureChurn(t *testing.T) {
	tp, err := topo.ByName("ring:32")
	if err != nil {
		t.Fatal(err)
	}
	c, err := MeasureChurn(tp, ChurnConfig{Panel: Panel{Seed: 1}, Edits: 6})
	if err != nil {
		t.Fatal(err)
	}
	if c.Edits != 6 || c.Nodes != 32 {
		t.Fatalf("churn meta wrong: %+v", c)
	}
	if c.FullMedian <= 0 || c.DeltaMedian <= 0 {
		t.Fatalf("unmeasured latencies: %+v", c)
	}
	if c.DirtyMean <= 0 {
		t.Fatalf("weight edits touched no destinations: %+v", c)
	}
	// The hard speed claim (≥5× on ring:64) is pinned by
	// TestDeltaRecompileSpeedup in internal/dataplane; here we only
	// require the delta path not to be slower than full recompilation.
	if c.Speedup < 1 {
		t.Fatalf("delta slower than full: %+v", c)
	}
}

func TestWriteChurnReport(t *testing.T) {
	var buf bytes.Buffer
	cfg := ChurnConfig{Panel: Panel{Topologies: []string{"abilene", "ring:24"}, Seed: 2}, Edits: 4}
	if err := WriteChurnReport(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"topology", "abilene", "ring:24", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if err := WriteChurnReport(&buf, ChurnConfig{Panel: Panel{Topologies: []string{"nosuch"}}}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
