package eval

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
)

// Churn quantifies the topology-churn comparison for one topology: what
// a planned single-link weight change costs through a full recompile
// (routing tables + quantiser + protocol + FIB from scratch — today's
// control-plane stall) versus a delta recompile (only the affected
// destination columns repaired).
type Churn struct {
	Topology string
	Nodes    int
	Links    int
	// Edits is how many random single-link weight edits were timed.
	Edits int
	// FullMedian and DeltaMedian are per-edit recompile latencies.
	FullMedian  time.Duration
	DeltaMedian time.Duration
	// Speedup is FullMedian / DeltaMedian.
	Speedup float64
	// DirtyMean is the mean affected-destination count per edit, out of
	// Nodes destination trees.
	DirtyMean float64
}

// ChurnConfig parameterises the churn comparison. The embedded Panel's
// Topologies, Seed, Metrics and Tracer are consumed; its
// failure-process fields are ignored (churn has no failure dimension).
// A shared Metrics registry accumulates the full path's compile-phase
// latency histogram, and a Tracer receives every compile's and every
// delta Apply's span tree.
type ChurnConfig struct {
	Panel
	// Edits is how many random single-link weight edits to time per
	// topology (default 24).
	Edits int
}

func (c *ChurnConfig) withDefaults() ChurnConfig {
	out := *c
	out.Panel = out.Panel.withDefaults("")
	if out.Edits == 0 {
		out.Edits = 24
	}
	return out
}

// MeasureChurn times full-vs-delta recompilation over a sequence of
// random single-link weight edits (deterministic per cfg.Seed). Every
// delta result is the bit-identical FIB the differential harness pins,
// so the two columns are directly comparable.
func MeasureChurn(tp topo.Topology, cfg ChurnConfig) (Churn, error) {
	eff := cfg.withDefaults()
	edits, seed := eff.Edits, eff.Seed
	g := tp.Graph
	c := Churn{Topology: tp.Name, Nodes: g.NumNodes(), Links: g.NumLinks(), Edits: edits}
	sys := tp.Embedding
	if sys == nil {
		var err error
		sys, err = (embedding.Auto{Seed: 1}).Embed(g)
		if err != nil {
			return c, err
		}
	}
	tbl := route.Build(g, route.HopCount)
	p, err := core.New(g, sys, tbl, core.Config{Variant: core.Full})
	if err != nil {
		return c, err
	}
	rec, err := dataplane.NewRecompiler(p, nil, nil)
	if err != nil {
		return c, err
	}
	rec.SetTracer(eff.Tracer)
	if eff.Metrics != nil {
		rec.Register(eff.Metrics)
	}

	rng := rand.New(rand.NewSource(seed))
	plan := make([]graph.Edit, edits)
	for i := range plan {
		l := graph.LinkID(rng.Intn(g.NumLinks()))
		w := g.Weight(l) * (0.4 + 1.2*rng.Float64())
		plan[i] = graph.SetWeight(l, w)
	}

	fullTimes := make([]time.Duration, 0, edits)
	deltaTimes := make([]time.Duration, 0, edits)
	dirty := 0
	fullSys := sys
	for _, e := range plan {
		nextG, _, err := graph.ApplyEdit(rec.Graph(), e)
		if err != nil {
			return c, err
		}
		// Full path: what a topology change costs without the recompiler
		// — rebuild the rotation system (same link orders), every routing
		// tree, the whole quantiser and the whole FIB.
		start := time.Now()
		orders := make([][]graph.LinkID, nextG.NumNodes())
		for v := 0; v < nextG.NumNodes(); v++ {
			orders[v] = fullSys.LinkOrder(graph.NodeID(v))
		}
		if fullSys, err = rotation.FromLinkOrders(nextG, orders); err != nil {
			return c, err
		}
		fullTbl := route.Build(nextG, route.HopCount)
		fullQuant := core.BuildQuantiser(fullTbl)
		fullP, err := core.New(nextG, fullSys, fullTbl, core.Config{Variant: core.Full})
		if err == nil {
			_, err = dataplane.CompileWithOptions(fullP, fullQuant,
				dataplane.CompileOptions{Tracer: eff.Tracer, Metrics: eff.Metrics})
		}
		if err != nil {
			return c, err
		}
		fullTimes = append(fullTimes, time.Since(start))

		// Delta path: the recompiler's Apply, producing the identical FIB.
		start = time.Now()
		d, err := rec.Apply(e)
		if err != nil {
			return c, err
		}
		deltaTimes = append(deltaTimes, time.Since(start))
		dirty += len(d.Dirty)
	}
	c.FullMedian = median(fullTimes)
	c.DeltaMedian = median(deltaTimes)
	if c.DeltaMedian > 0 {
		c.Speedup = float64(c.FullMedian) / float64(c.DeltaMedian)
	}
	c.DirtyMean = float64(dirty) / float64(edits)
	return c, nil
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// WriteChurnReport renders the full-vs-delta recompile comparison over
// the config's topology panel — the "Topology churn" table in README.md
// and the panel behind prsim churn — followed by the per-stage compile
// latency distribution (p50/p99) the runs accumulated.
func WriteChurnReport(w io.Writer, cfg ChurnConfig) error {
	fmt.Fprintf(w, "%-10s %-5s %-5s | %-10s %-10s %-8s | %-9s\n",
		"topology", "nodes", "links", "full", "delta", "speedup", "dirty/dst")
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	base := cfg.Metrics.Snapshot()
	panel, err := cfg.Panel.topologies()
	if err != nil {
		return err
	}
	for _, tp := range panel {
		c, err := MeasureChurn(tp, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %-5d %-5d | %-10v %-10v %-8.1f | %5.1f/%-3d\n",
			c.Topology, c.Nodes, c.Links,
			c.FullMedian.Round(time.Microsecond), c.DeltaMedian.Round(time.Microsecond),
			c.Speedup, c.DirtyMean, c.Nodes)
	}
	writeStageLatencies(w, cfg.Metrics.Snapshot().Sub(base))
	return nil
}
