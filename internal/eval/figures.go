package eval

import (
	"fmt"
	"io"
	"sort"

	"recycle/internal/graph"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// Figure describes one panel of the paper's Figure 2.
type Figure struct {
	// ID is the panel label ("2a" .. "2f").
	ID string
	// Title matches the paper's caption.
	Title string
	// TopologyName is the built-in topology.
	TopologyName string
	// FailureCount is the number of simultaneous link failures (1 =
	// enumerate all single failures; >1 = seeded sampling).
	FailureCount int
	// Scenarios is how many sampled multi-failure scenarios to evaluate
	// (ignored for single failures).
	Scenarios int
	// Seed drives multi-failure sampling.
	Seed int64
	// UnitWeights evaluates on hop-count link weights instead of
	// great-circle distances. The paper does not state its weighting; the
	// default here is distance, and this flag regenerates the unit-weight
	// variant for comparison (tails shrink, ordering is unchanged).
	UnitWeights bool
}

// Figures returns the paper's six panels in order. Multi-failure counts
// (4, 10, 16) match the captions of Figures 2(d), 2(e), 2(f).
func Figures() []Figure {
	return []Figure{
		{ID: "2a", Title: "Abilene with single failures", TopologyName: "abilene", FailureCount: 1},
		{ID: "2b", Title: "Teleglobe with single failures", TopologyName: "teleglobe", FailureCount: 1},
		{ID: "2c", Title: "Geant with single failures", TopologyName: "geant", FailureCount: 1},
		{ID: "2d", Title: "Abilene with 4 failures", TopologyName: "abilene", FailureCount: 4, Scenarios: 300, Seed: 24},
		{ID: "2e", Title: "Teleglobe with 10 failures", TopologyName: "teleglobe", FailureCount: 10, Scenarios: 300, Seed: 25},
		{ID: "2f", Title: "Geant with 16 failures", TopologyName: "geant", FailureCount: 16, Scenarios: 300, Seed: 26},
	}
}

// FigureByID returns the panel description for an ID like "2a".
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("eval: unknown figure %q (want 2a..2f)", id)
}

// BuildSpec turns a Figure into a runnable Spec.
func BuildSpec(f Figure) (Spec, error) {
	w := topo.DistanceWeights
	if f.UnitWeights {
		w = topo.UnitWeights
	}
	tp, err := topo.ByNameWeighted(f.TopologyName, w)
	if err != nil {
		return Spec{}, err
	}
	var failures []*graph.FailureSet
	if f.FailureCount <= 1 {
		failures = graph.SingleFailureScenarios(tp.Graph)
	} else {
		failures, err = graph.SampleFailureScenarios(tp.Graph, f.FailureCount, f.Scenarios, f.Seed)
		if err != nil {
			return Spec{}, fmt.Errorf("eval: figure %s: %w", f.ID, err)
		}
	}
	return Spec{
		Topology:      tp,
		Failures:      failures,
		Discriminator: route.HopCount,
	}, nil
}

// RunFigure runs one Figure 2 panel end to end.
func RunFigure(f Figure) (*Experiment, error) {
	spec, err := BuildSpec(f)
	if err != nil {
		return nil, err
	}
	return Run(spec)
}

// StretchAxis returns the paper's x axis: 1, 3, 5, ..., 15 extended with
// the intermediate integers for smoother series.
func StretchAxis() []float64 {
	var xs []float64
	for x := 1.0; x <= 15; x++ {
		xs = append(xs, x)
	}
	return xs
}

// WriteCCDF renders the experiment as the figure's data table: one row per
// x value, one column per scheme, in the paper's legend order.
func WriteCCDF(w io.Writer, exp *Experiment, title string) error {
	xs := StretchAxis()
	schemes := append([]SchemeID(nil), schemesOf(exp)...)
	sort.Slice(schemes, func(i, j int) bool { return schemes[i] < schemes[j] })

	if _, err := fmt.Fprintf(w, "# %s\n", title); err != nil {
		return err
	}
	fmt.Fprintf(w, "# scenarios=%d\n", exp.Scenarios)
	fmt.Fprintf(w, "%-8s", "stretch")
	for _, s := range schemes {
		fmt.Fprintf(w, " %-26s", s)
	}
	fmt.Fprintln(w)
	curves := make(map[SchemeID][]float64, len(schemes))
	for _, s := range schemes {
		curves[s] = exp.SeriesFor(s).CCDF(xs)
	}
	for i, x := range xs {
		fmt.Fprintf(w, "%-8.0f", x)
		for _, s := range schemes {
			fmt.Fprintf(w, " %-26.4f", curves[s][i])
		}
		fmt.Fprintln(w)
	}
	for _, s := range schemes {
		sr := exp.SeriesFor(s)
		fmt.Fprintf(w, "# %-26s delivery=%.4f mean=%.3f max=%.2f affected=%d\n",
			s, sr.DeliveryRate(), sr.MeanStretch(), sr.MaxStretch(), sr.Affected)
	}
	return nil
}

func schemesOf(exp *Experiment) []SchemeID {
	out := make([]SchemeID, 0, len(exp.Series))
	for _, s := range exp.Series {
		out = append(out, s.Scheme)
	}
	return out
}
