package eval

import (
	"fmt"
	"io"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/failure"
	"recycle/internal/route"
	"recycle/internal/sim"
	"recycle/internal/topo"
)

// ResilienceConfig parameterises a Monte-Carlo resilience sweep. The
// embedded Panel carries the topology panel, failure process, seed and
// metrics registry shared with every other harness; Metrics is consumed
// by TraceResilience only (RunResilience ignores it).
type ResilienceConfig struct {
	Panel
	// Draws is the number of seeded scenario draws per topology (default
	// 50). Draw i uses failure.DrawSeed(Seed, i), so every scheme under
	// comparison replays the identical i-th scenario.
	Draws int
	// Horizon is the simulated run length per draw (default 4s).
	Horizon time.Duration
	// PPS is the per-flow probe rate (default 200 packets/second).
	PPS float64
	// Pins are certified counterexample scenarios (typically
	// certify.Certificate.PinScenarios) replayed as extra draws after
	// the Monte-Carlo ones — the regression seam between the adversarial
	// search and the sampling harness: a once-found violating failure
	// set is re-checked on every sweep, so it can never silently return.
	Pins []*failure.Scenario
}

// DefaultResilienceSpec is the background failure process of the sweep:
// independent per-link exponential up/down with a 2 s MTBF and 300 ms
// MTTR. Over a 4 s horizon every link fails about twice, concurrent
// multi-link outages are routine, and on sparse topologies the draws
// include partitions — so both loss classes (excused and violation) get
// exercised, not just the easy single-failure regime.
const DefaultResilienceSpec = "mtbf:up=2s,down=300ms"

func (c *ResilienceConfig) withDefaults() ResilienceConfig {
	out := *c
	out.Panel = out.Panel.withDefaults(DefaultResilienceSpec)
	if out.Draws == 0 {
		out.Draws = 50
	}
	if out.Horizon == 0 {
		out.Horizon = 4 * time.Second
	}
	if out.PPS == 0 {
		out.PPS = 200
	}
	return out
}

// ResilienceRow aggregates one (topology, scheme) cell of the sweep.
type ResilienceRow struct {
	Topology string
	// Genus of the embedding PR ran on. The §5 zero-violation guarantee
	// is conditioned on genus 0; a non-zero genus row measures how far an
	// imperfect embedding falls short rather than testing the guarantee.
	Genus  int
	Scheme string
	Draws  int
	// Generated..Excused sum over all draws. Violations are losses while
	// the src–dst pair stayed physically connected and the link state
	// held still (they count against the scheme); transient losses had a
	// failure or repair land mid-flight (§7's damped regime); excused
	// losses crossed a partition no scheme can.
	Generated  int
	Delivered  int
	Violations int
	Transient  int
	Excused    int
	// ViolationDraws counts draws with at least one violation.
	ViolationDraws int
}

// DeliveredFrac is Delivered / Generated (1 when nothing was generated).
func (r ResilienceRow) DeliveredFrac() float64 { return frac(r.Delivered, r.Generated) }

// ViolationFrac is Violations / Generated.
func (r ResilienceRow) ViolationFrac() float64 {
	if r.Generated == 0 {
		return 0
	}
	return float64(r.Violations) / float64(r.Generated)
}

// Availability is the delivered fraction of deliverable packets:
// Delivered / (Generated − Excused). Excused packets crossed a physical
// partition, so they are excluded from the denominator — a scheme that
// delivers everything deliverable scores 1 even on draws with
// partitions.
func (r ResilienceRow) Availability() float64 {
	return frac(r.Delivered, r.Generated-r.Excused)
}

func frac(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// RunResilience sweeps Monte-Carlo failure scenarios over one topology:
// cfg.Draws seeded draws of the failure process, each replayed against
// PR on the compiled dataplane and against the reconvergence baseline
// with the identical probe traffic (both directions of the topology's
// hop-diameter pair). Detection is instantaneous (sim.InstantDetection),
// isolating routing resilience from the loss-of-light latency that hits
// every scheme identically; the reconvergence baseline still pays its
// flooding+SPF+FIB-install window, which is where its violations come
// from. Every loss is refereed by the scenario's connectivity oracle.
func RunResilience(tp topo.Topology, cfg ResilienceConfig) ([]ResilienceRow, error) {
	cfg = cfg.withDefaults()
	proc, err := cfg.process()
	if err != nil {
		return nil, err
	}
	g := tp.Graph
	sys := tp.Embedding
	if sys == nil {
		if sys, err = (embedding.Auto{Seed: 1}).Embed(g); err != nil {
			return nil, err
		}
	}
	prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		return nil, err
	}
	fib, err := dataplane.Compile(prot)
	if err != nil {
		return nil, err
	}
	src, dst := diameterPair(g)
	interval := time.Duration(float64(time.Second) / cfg.PPS)
	flows := []sim.Flow{
		{Src: src, Dst: dst, Interval: interval, Bits: 8192},
		{Src: dst, Dst: src, Interval: interval, Bits: 8192, Start: interval / 2},
	}
	schemes := []func() sim.Scheme{
		func() sim.Scheme { return &sim.CompiledPRScheme{FIB: fib} },
		func() sim.Scheme { return &sim.ReconvScheme{} },
	}
	rows := make([]ResilienceRow, len(schemes))
	// The draw list is the Monte-Carlo draws followed by the certified
	// counterexample pins: each pin replays as one extra draw against
	// every scheme, refereed by its own oracle like any sampled scenario.
	scenarios := make([]*failure.Scenario, 0, cfg.Draws+len(cfg.Pins))
	for draw := 0; draw < cfg.Draws; draw++ {
		sc, err := proc.Generate(g, cfg.Horizon, failure.DrawSeed(cfg.Seed, draw))
		if err != nil {
			return nil, err
		}
		scenarios = append(scenarios, sc)
	}
	scenarios = append(scenarios, cfg.Pins...)
	for draw, sc := range scenarios {
		for i, mk := range schemes {
			scheme := mk()
			s, err := sim.New(sim.Config{
				Graph:          g,
				Scheme:         scheme,
				Flows:          flows,
				Horizon:        cfg.Horizon,
				DetectionDelay: sim.InstantDetection,
			})
			if err != nil {
				return nil, err
			}
			if err := s.ApplyScenario(sc); err != nil {
				return nil, err
			}
			st := s.Run()
			row := &rows[i]
			if draw == 0 {
				row.Topology = tp.Name
				row.Genus = sys.Genus()
				row.Scheme = scheme.Name()
			}
			row.Draws++
			row.Generated += int(st.Counter(sim.MetricGenerated))
			row.Delivered += int(st.Counter(sim.MetricDelivered))
			row.Violations += int(st.Counter(sim.MetricLossViolation))
			row.Transient += int(st.Counter(sim.MetricLossTransient))
			row.Excused += int(st.Counter(sim.MetricLossExcused))
			if st.Counter(sim.MetricLossViolation) > 0 {
				row.ViolationDraws++
			}
		}
	}
	return rows, nil
}

// WriteResilienceReport runs the sweep over the config's topology panel
// and renders the table: per (topology, scheme) the delivered, violation
// and excused fractions plus availability. It is the quantification of
// the paper's headline claim — PR rows on genus-0 embeddings must show
// zero violations; the reconvergence baseline's violation column is the
// loss PR exists to eliminate.
func WriteResilienceReport(w io.Writer, cfg ResilienceConfig) error {
	eff := cfg.withDefaults()
	fmt.Fprintf(w, "# Monte-Carlo resilience: %d draws of %q per topology, %v horizon, seed %d\n",
		eff.Draws, eff.Spec, eff.Horizon, eff.Seed)
	if len(eff.Pins) > 0 {
		fmt.Fprintf(w, "# plus %d certified counterexample pin(s) replayed as extra draws\n", len(eff.Pins))
	}
	fmt.Fprintf(w, "# violation = lost while the pair stayed connected and the link state held still;\n")
	fmt.Fprintf(w, "# transient = a failure/repair landed mid-flight (§7); excused = the pair was partitioned\n")
	fmt.Fprintf(w, "%-12s %-5s %-34s %-9s %-9s %-10s %-9s %-8s %-10s %-12s\n",
		"topology", "genus", "scheme", "generated", "delivered", "violations", "transient", "excused", "avail", "violation-f")
	panel, err := eff.Panel.topologies()
	if err != nil {
		return err
	}
	for _, tp := range panel {
		rows, err := RunResilience(tp, cfg)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%-12s %-5d %-34s %-9d %-9d %-10d %-9d %-8d %-10.6f %-12.6f\n",
				r.Topology, r.Genus, r.Scheme, r.Generated, r.Delivered,
				r.Violations, r.Transient, r.Excused, r.Availability(), r.ViolationFrac())
		}
	}
	return nil
}
