package eval

import (
	"strings"
	"testing"
	"time"

	"recycle/internal/dataplane"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
)

// soakIdentities asserts the accounting every soak run must close:
// each emitted packet is delivered or dropped, each drop is refereed
// exactly once, and the per-epoch timeline sums to the aggregate
// (RunSoak verifies the last internally; here we re-derive it from the
// public result so the exported Epochs/Aggregate pair stands alone).
func soakIdentities(t *testing.T, r *SoakResult) {
	t.Helper()
	if r.Generated == 0 {
		t.Fatal("soak emitted no traffic")
	}
	if got := r.Delivered + r.DropNoRoute + r.DropTTL; got != r.Generated {
		t.Fatalf("accounting leak: delivered %d + no-route %d + ttl %d = %d; generated %d",
			r.Delivered, r.DropNoRoute, r.DropTTL, got, r.Generated)
	}
	if got := r.Violations + r.Transient + r.Excused; got != r.DropNoRoute+r.DropTTL {
		t.Fatalf("referee leak: classified %d; dropped %d", got, r.DropNoRoute+r.DropTTL)
	}
	if r.Decisions < r.Generated {
		t.Fatalf("decisions %d < generated %d; every packet takes at least one hop",
			r.Decisions, r.Generated)
	}
	if len(r.Epochs) == 0 || r.Aggregate == nil {
		t.Fatal("timeline missing from result")
	}
	sum := telemetry.NewSnapshot()
	for _, e := range r.Epochs {
		sum.Merge(e.Delta)
	}
	if err := checkTimelineExact(sum, r.Aggregate); err != nil {
		t.Fatalf("epoch sums drifted from aggregate: %v", err)
	}
	if agg := r.Aggregate.Counter(MetricSoakGenerated); agg != r.Generated {
		t.Fatalf("aggregate counter %s = %d; result says %d", MetricSoakGenerated, agg, r.Generated)
	}
	if agg := r.Aggregate.Counter(MetricSoakViolation); agg != r.Violations {
		t.Fatalf("aggregate counter %s = %d; result says %d", MetricSoakViolation, agg, r.Violations)
	}
	if mem := r.Aggregate.Gauge(dataplane.MetricFIBMemBytes); mem <= 0 {
		t.Fatalf("%s gauge = %d; the engine publishes resident FIB bytes at start and every swap",
			dataplane.MetricFIBMemBytes, mem)
	}
}

// TestRunSoakSmoke: a short full-stack soak — live engine, TxQueue
// egress, continuous MTBF churn and a dense hot-swap stream — must
// close its accounting, roll at least one epoch per control action,
// and show zero violations.
func TestRunSoakSmoke(t *testing.T) {
	res, err := RunSoak(mustTopo(t, "grid:4x4"), SoakConfig{
		Panel:     Panel{Spec: "mtbf:up=2s,down=100ms"},
		Flows:     3_000,
		Duration:  1200 * time.Millisecond,
		SwapEvery: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	soakIdentities(t, res)
	if res.Violations != 0 {
		t.Fatalf("%d violations under soak; the §5 guarantee demands 0", res.Violations)
	}
	if res.Genus != 0 {
		t.Fatalf("soak ran on a genus-%d embedding", res.Genus)
	}
	if res.Swaps+res.SkippedSwaps < 3 {
		t.Fatalf("only %d swaps attempted (%d applied) over %d intervals",
			res.Swaps+res.SkippedSwaps, res.Swaps, 12)
	}
	var swapEpochs, linkEpochs int
	for _, e := range res.Epochs {
		if strings.Contains(e.Label, "swap:") {
			swapEpochs++
		}
		if strings.Contains(e.Label, "link ") && !strings.Contains(e.Label, "swap:") {
			linkEpochs++
		}
	}
	if res.Swaps > 0 && swapEpochs == 0 {
		t.Fatal("swaps applied but no swap-labelled epoch rolled")
	}
	if res.ScenarioEvents > 0 && linkEpochs == 0 {
		t.Fatal("scenario events applied but no link-labelled epoch rolled")
	}
	if res.Aggregate.Counter(dataplane.MetricTxSent) == 0 {
		t.Fatal("TxQueue egress saw no frames")
	}
}

// TestSoakAcceptance is the PR's headline gate: ≥100k concurrent flows
// sustained ≥30s through the live engine while the MTBF scenario and
// ≥10 hot-swaps (at least one structural) land on it — zero violations,
// bounded drops, exact timeline. Short mode scales down but keeps every
// structural element (scenario churn, structural swap, verdict).
func TestSoakAcceptance(t *testing.T) {
	cfg := SoakConfig{Flows: 100_000, Duration: 30 * time.Second}
	if testing.Short() {
		cfg = SoakConfig{
			Panel:     Panel{Spec: "mtbf:up=6s,down=150ms"},
			Flows:     20_000,
			Duration:  6 * time.Second,
			SwapEvery: 500 * time.Millisecond,
		}
	}
	res, err := RunSoak(mustTopo(t, "grid:8x8"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	soakIdentities(t, res)
	if res.Violations != 0 {
		t.Fatalf("%d violations across %d packets; want 0", res.Violations, res.Generated)
	}
	if !res.Pass {
		t.Fatalf("soak verdict FAIL: %v (drop frac %.4f)", res.FailReasons, res.DropFrac())
	}
	if res.Swaps < 10 {
		t.Fatalf("only %d hot-swaps landed; the acceptance bar is ≥10", res.Swaps)
	}
	if res.StructuralSwaps < 1 {
		t.Fatal("no structural hot-swap landed on the running engine")
	}
	if res.ScenarioEvents == 0 {
		t.Fatal("the failure scenario never touched the engine")
	}
	if res.DecisionsPerSec <= 0 || res.DeliveredPerSec <= 0 {
		t.Fatalf("sustained rates not reported: %+v", res)
	}
	t.Logf("soak: %d flows, %s: %d generated, %.0f decisions/s, %d swaps (%d structural), %d scenario events, drop frac %.4f",
		res.Flows, res.Elapsed.Round(time.Millisecond), res.Generated, res.DecisionsPerSec,
		res.Swaps, res.StructuralSwaps, res.ScenarioEvents, res.DropFrac())
}

// TestSoakSharedRegistry: handing RunSoak a live registry (the
// `prsim -metrics` path) must not double-count — the run subtracts its
// base snapshot, so pre-existing counts stay out of the result.
func TestSoakSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter(MetricSoakGenerated).Add(1_000_000) // pre-existing noise
	res, err := RunSoak(mustTopo(t, "ring:12"), SoakConfig{
		Panel:    Panel{Metrics: reg},
		Flows:    500,
		Duration: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	soakIdentities(t, res)
	if res.Generated >= 1_000_000 {
		t.Fatalf("pre-existing registry counts bled into the run: generated %d", res.Generated)
	}
}

func TestSoakBadConfig(t *testing.T) {
	tp := mustTopo(t, "ring:8")
	if _, err := RunSoak(tp, SoakConfig{Panel: Panel{Spec: "quake:mag=9"}, Duration: time.Second}); err == nil {
		t.Fatal("unknown failure spec accepted")
	}
	if _, err := RunSoak(tp, SoakConfig{Traffic: "carrier-pigeon", Duration: time.Second}); err == nil {
		t.Fatal("unknown traffic spec accepted")
	}
}

func TestWriteSoakReport(t *testing.T) {
	res, err := RunSoak(mustTopo(t, "grid:4x4"), SoakConfig{
		Flows:     1_000,
		Duration:  600 * time.Millisecond,
		SwapEvery: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	WriteSoakReport(&b, res)
	out := b.String()
	for _, want := range []string{
		"soak:", "flows", "scenario", "generated", "delivered",
		"violations", "swaps", "decisions", "verdict:",
		"ep ", // the per-epoch table header
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report lacks %q:\n%s", want, out)
		}
	}
	if res.Pass && !strings.Contains(out, "verdict: PASS") {
		t.Fatalf("passing run must grep as \"verdict: PASS\":\n%s", out)
	}
}

// BenchmarkSoak measures sustained whole-stack throughput (decisions
// per second under churn and hot-swaps). It lives in internal/eval
// deliberately: the CI bench gate pins the dataplane microbenchmarks by
// name and does not sweep this package, so wall-clock-driven soak
// numbers never destabilise the regression gate.
func BenchmarkSoak(b *testing.B) {
	tp, err := topo.ByName("grid:6x6")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := RunSoak(tp, SoakConfig{
			Flows:     20_000,
			Duration:  2 * time.Second,
			SwapEvery: 250 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DecisionsPerSec, "decisions/s")
		b.ReportMetric(res.DeliveredPerSec, "delivered/s")
	}
}
