package eval

import (
	"fmt"
	"io"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/route"
	"recycle/internal/sim"
	"recycle/internal/topo"
	"recycle/internal/traffic"
)

// DefaultTrafficMix is the traffic-source panel the loss-window report
// runs when the caller names none: the legacy fixed-interval probe, a
// Poisson process at the same mean rate, silent-burst MMPP at the same
// mean rate, and heavy-tailed (bounded-Pareto) packet sizes on Poisson
// arrivals.
func DefaultTrafficMix() []traffic.Source {
	return []traffic.Source{
		traffic.Fixed{Interval: time.Second / 2430},
		traffic.Poisson{Rate: 2430, Seed: 1},
		traffic.MMPP{RateOn: 12_150, MeanOn: 20 * time.Millisecond,
			MeanOff: 80 * time.Millisecond, Seed: 1},
		traffic.Poisson{Rate: 2430,
			Sizes: traffic.BoundedPareto{Alpha: 1.3, MinBits: 512, MaxBits: 96_000}, Seed: 1},
	}
}

// TrafficLossReport is a completed loss-window-over-traffic-mixes
// experiment: the probe pair it crossed and one row per (traffic
// source, scheme) pair. Each row's Traffic field carries the qualified
// source label (e.g. "poisson+bounded-pareto").
type TrafficLossReport struct {
	// Src and Dst are the probe flow's endpoints (the topology's
	// hop-diameter pair).
	Src, Dst graph.NodeID
	// Rows holds one result per source × scheme, sources outermost.
	Rows []sim.LossWindowResult
}

// RunTrafficLoss runs the §1 loss-window experiment over a panel of
// traffic sources: for each source, the same offered load (identical
// deterministic stream) is played against PR on the compiled dataplane,
// FCP and a reconverging IGP, with the first link of the probe's
// shortest path failing one second in. The probe flow crosses the
// topology's hop-diameter pair, so every scheme reroutes a worst-case
// path.
func RunTrafficLoss(tp topo.Topology, sources []traffic.Source) (*TrafficLossReport, error) {
	g := tp.Graph
	src, dst := diameterPair(g)
	sys := tp.Embedding
	if sys == nil {
		var err error
		if sys, err = (embedding.Auto{Seed: 1}).Embed(g); err != nil {
			return nil, err
		}
	}
	prot, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: core.Full})
	if err != nil {
		return nil, err
	}
	fib, err := dataplane.Compile(prot)
	if err != nil {
		return nil, err
	}
	report := &TrafficLossReport{Src: src, Dst: dst}
	for _, source := range sources {
		if err := source.Validate(); err != nil {
			return nil, fmt.Errorf("eval: traffic mix: %w", err)
		}
		schemes := []sim.Scheme{
			&sim.CompiledPRScheme{FIB: fib},
			&sim.FCPScheme{},
			&sim.ReconvScheme{},
		}
		for _, scheme := range schemes {
			res, err := sim.RunLossWindowTraffic(sim.Config{
				Graph:          g,
				Scheme:         scheme,
				Horizon:        3 * time.Second,
				DetectionDelay: 50 * time.Millisecond,
			}, src, dst, source, time.Second)
			if err != nil {
				return nil, err
			}
			res.Traffic = sourceLabel(source)
			report.Rows = append(report.Rows, res)
		}
	}
	return report, nil
}

// TrafficLossConfig parameterises the loss-window-over-traffic-mixes
// report. The embedded Panel's Topologies is consumed; its
// failure-process, seed and metrics fields are ignored (the experiment
// scripts its own single failure and the sources carry their own
// seeds).
type TrafficLossConfig struct {
	Panel
	// Sources is the traffic-source panel (nil runs DefaultTrafficMix).
	Sources []traffic.Source
}

// WriteTrafficLossReport renders the loss-window-over-traffic-mixes
// figure over the config's topology panel.
func WriteTrafficLossReport(w io.Writer, cfg TrafficLossConfig) error {
	sources := cfg.Sources
	if sources == nil {
		sources = DefaultTrafficMix()
	}
	panel, err := cfg.Panel.topologies()
	if err != nil {
		return err
	}
	for i, tp := range panel {
		if i > 0 {
			fmt.Fprintln(w)
		}
		report, err := RunTrafficLoss(tp, sources)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# §1 loss window over traffic mixes on %s: %s→%s flow, first-hop link fails at t=1s\n",
			tp.Name, tp.Graph.Name(report.Src), tp.Graph.Name(report.Dst))
		fmt.Fprintf(w, "%-22s %-30s %-10s %-10s %-10s %-8s %-5s %-9s\n",
			"traffic", "scheme", "generated", "delivered", "blackhole", "noroute", "ttl", "delivery")
		for _, r := range report.Rows {
			rate := 1.0
			if r.Generated > 0 {
				rate = float64(r.Delivered) / float64(r.Generated)
			}
			fmt.Fprintf(w, "%-22s %-30s %-10d %-10d %-10d %-8d %-5d %-9.4f\n",
				r.Traffic, r.Scheme, r.Generated, r.Delivered, r.Blackhole, r.NoRoute, r.TTL, rate)
		}
	}
	return nil
}

// sourceLabel names a source for the report, qualifying the size
// distribution when one is attached.
func sourceLabel(s traffic.Source) string {
	switch src := s.(type) {
	case traffic.Poisson:
		if src.Sizes != nil {
			return s.Name() + "+" + src.Sizes.Name()
		}
	case traffic.MMPP:
		if src.Sizes != nil {
			return s.Name() + "+" + src.Sizes.Name()
		}
	}
	return s.Name()
}

// diameterPair returns a (src, dst) pair realising the graph's hop
// diameter — the longest shortest path, the probe every scheme has to
// reroute hardest for.
func diameterPair(g *graph.Graph) (graph.NodeID, graph.NodeID) {
	bestS, bestD := graph.NodeID(0), graph.NodeID(1)
	best := -1
	for d := 0; d < g.NumNodes(); d++ {
		tree := graph.ShortestPathTree(g, graph.NodeID(d), nil)
		for s := 0; s < g.NumNodes(); s++ {
			if tree.Hops[s] > best {
				best = tree.Hops[s]
				bestS, bestD = graph.NodeID(s), graph.NodeID(d)
			}
		}
	}
	return bestS, bestD
}
