package eval

import (
	"strings"
	"testing"
	"time"

	"recycle/internal/topo"
	"recycle/internal/traffic"
)

// TestRunTrafficLoss: on Abilene, every traffic mix reproduces the §1
// ordering — PR loses at most the detection window (no no-route or TTL
// drops) while the reconverging IGP loses strictly more.
func TestRunTrafficLoss(t *testing.T) {
	tp := topo.Abilene(topo.UnitWeights)
	// A lighter panel than the default keeps the test fast.
	sources := []traffic.Source{
		traffic.Poisson{Rate: 500, Seed: 1},
		traffic.MMPP{RateOn: 2500, MeanOn: 20 * time.Millisecond,
			MeanOff: 80 * time.Millisecond, Seed: 1},
	}
	report, err := RunTrafficLoss(tp, sources)
	if err != nil {
		t.Fatal(err)
	}
	rows := report.Rows
	if len(rows) != len(sources)*3 {
		t.Fatalf("got %d rows; want %d (sources × schemes)", len(rows), len(sources)*3)
	}
	if report.Src == report.Dst {
		t.Fatalf("degenerate probe pair %d→%d", report.Src, report.Dst)
	}
	// Per traffic source: identical offered load across schemes, PR clean.
	for i := 0; i < len(rows); i += 3 {
		pr, fcp, reconv := rows[i], rows[i+1], rows[i+2]
		if pr.Generated != fcp.Generated || pr.Generated != reconv.Generated {
			t.Fatalf("%s: offered load differs across schemes: %d/%d/%d",
				pr.Traffic, pr.Generated, fcp.Generated, reconv.Generated)
		}
		if pr.Generated == 0 {
			t.Fatalf("%s: nothing generated", pr.Traffic)
		}
		if pr.NoRoute != 0 || pr.TTL != 0 {
			t.Fatalf("%s: PR dropped outside the detection window: %+v", pr.Traffic, pr)
		}
		prLost := pr.Generated - pr.Delivered
		rcLost := reconv.Generated - reconv.Delivered
		if rcLost <= prLost {
			t.Fatalf("%s: reconvergence lost %d ≤ PR lost %d", pr.Traffic, rcLost, prLost)
		}
	}
}

func TestWriteTrafficLossReport(t *testing.T) {
	var sb strings.Builder
	sources := []traffic.Source{
		traffic.Poisson{Rate: 200, Sizes: traffic.BoundedPareto{Alpha: 1.3, MinBits: 512, MaxBits: 96_000}, Seed: 1},
	}
	cfg := TrafficLossConfig{Panel: Panel{Topologies: []string{"abilene"}}, Sources: sources}
	if err := WriteTrafficLossReport(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"loss window over traffic mixes", "poisson+bounded-pareto",
		"packet-recycling-compiled-full", "failure-carrying-packets", "reconvergence"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
