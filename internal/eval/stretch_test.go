package eval

import (
	"bytes"
	"strings"
	"testing"

	"recycle/internal/graph"
	"recycle/internal/route"
	"recycle/internal/topo"
)

func runAbileneSingle(t *testing.T) *Experiment {
	t.Helper()
	tp, err := topo.ByName("abilene")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Run(Spec{
		Topology:      tp,
		Failures:      graph.SingleFailureScenarios(tp.Graph),
		Discriminator: route.HopCount,
	})
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

func TestRunAbileneSingleFailures(t *testing.T) {
	exp := runAbileneSingle(t)
	if exp.Scenarios != 14 {
		t.Fatalf("scenarios = %d; want 14 (every Abilene link)", exp.Scenarios)
	}
	for _, scheme := range []SchemeID{Reconvergence, FCP, PR} {
		sr := exp.SeriesFor(scheme)
		if sr == nil {
			t.Fatalf("missing series for %v", scheme)
		}
		if sr.Affected == 0 {
			t.Fatalf("%v: no affected pairs", scheme)
		}
		if sr.DeliveryRate() != 1 {
			t.Fatalf("%v: delivery rate %v; want 1 (all schemes recover single failures)", scheme, sr.DeliveryRate())
		}
		for _, v := range sr.Stretches {
			if v < 1 {
				t.Fatalf("%v: stretch %v < 1", scheme, v)
			}
		}
	}
	// All three schemes see the same affected set.
	if exp.SeriesFor(PR).Affected != exp.SeriesFor(FCP).Affected {
		t.Fatal("affected counts differ between schemes")
	}
}

// TestFigureShapeOrdering is the reproduction's core qualitative check:
// reconvergence is stretch-optimal, FCP sits at or above it, PR trades the
// most stretch for its tiny header. Compared on means and on CCDF
// dominance at every axis point.
func TestFigureShapeOrdering(t *testing.T) {
	exp := runAbileneSingle(t)
	rc := exp.SeriesFor(Reconvergence)
	fc := exp.SeriesFor(FCP)
	pr := exp.SeriesFor(PR)

	if rc.MeanStretch() > fc.MeanStretch()+1e-9 {
		t.Fatalf("reconvergence mean %v above FCP mean %v", rc.MeanStretch(), fc.MeanStretch())
	}
	if fc.MeanStretch() > pr.MeanStretch()+1e-9 {
		t.Fatalf("FCP mean %v above PR mean %v", fc.MeanStretch(), pr.MeanStretch())
	}
	xs := StretchAxis()
	rcC, fcC, prC := rc.CCDF(xs), fc.CCDF(xs), pr.CCDF(xs)
	for i := range xs {
		if rcC[i] > fcC[i]+1e-9 {
			t.Fatalf("x=%v: reconvergence CCDF %v above FCP %v", xs[i], rcC[i], fcC[i])
		}
		if fcC[i] > prC[i]+0.02 {
			// FCP may locally cross PR on tiny samples; allow slack but
			// not systematic inversion.
			t.Fatalf("x=%v: FCP CCDF %v far above PR %v", xs[i], fcC[i], prC[i])
		}
	}
}

// TestReconvergenceEqualsOptimal: cross-check one scenario by hand.
func TestReconvergenceSeriesOptimal(t *testing.T) {
	g := graph.Ring(5)
	tp := topo.Topology{Name: "ring5", Graph: g}
	exp, err := Run(Spec{
		Topology: tp,
		Failures: []*graph.FailureSet{graph.NewFailureSet(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rc := exp.SeriesFor(Reconvergence)
	// On C5 with link 0-1 failed: affected ordered pairs are those whose SP
	// crosses 0-1: (0,1),(1,0),(0,2)? SP 0→2 on C5 is 0-1-2 or 0-4-3-2; SP
	// = min hops = 0-1-2 (deterministic tie: via smaller neighbor). Check
	// at least the direct pair's stretch: new path 0→1 costs 4, stretch 4.
	found := false
	for _, v := range rc.Stretches {
		if v == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a stretch-4 sample for the direct pair; got %v", rc.Stretches)
	}
}

func TestCCDFMonotoneNonIncreasing(t *testing.T) {
	exp := runAbileneSingle(t)
	xs := StretchAxis()
	for _, sr := range exp.Series {
		c := sr.CCDF(xs)
		for i := 1; i < len(c); i++ {
			if c[i] > c[i-1]+1e-12 {
				t.Fatalf("%v: CCDF increases at x=%v", sr.Scheme, xs[i])
			}
		}
		if len(sr.Stretches) > 0 && c[0] > 1 {
			t.Fatalf("%v: CCDF above 1", sr.Scheme)
		}
	}
}

func TestCCDFEdgeCases(t *testing.T) {
	s := &Series{Scheme: PR}
	c := s.CCDF([]float64{1, 2})
	if c[0] != 0 || c[1] != 0 {
		t.Fatal("empty series CCDF should be 0")
	}
	s.Stretches = []float64{1, 1, 3}
	c = s.CCDF([]float64{1, 2, 3})
	// P(>1) = 1/3, P(>2) = 1/3, P(>3) = 0.
	if c[0] < 0.33 || c[0] > 0.34 || c[2] != 0 {
		t.Fatalf("CCDF = %v", c)
	}
}

func TestFigureRegistry(t *testing.T) {
	figs := Figures()
	if len(figs) != 6 {
		t.Fatalf("figures = %d; want 6", len(figs))
	}
	wantCounts := map[string]int{"2a": 1, "2b": 1, "2c": 1, "2d": 4, "2e": 10, "2f": 16}
	for _, f := range figs {
		if wantCounts[f.ID] != f.FailureCount {
			t.Errorf("%s: failure count %d; want %d", f.ID, f.FailureCount, wantCounts[f.ID])
		}
		if _, err := BuildSpec(f); err != nil {
			t.Errorf("%s: BuildSpec: %v", f.ID, err)
		}
	}
	if _, err := FigureByID("2z"); err == nil {
		t.Fatal("unknown figure accepted")
	}
	f, err := FigureByID("2d")
	if err != nil || f.TopologyName != "abilene" {
		t.Fatalf("FigureByID(2d) = %+v, %v", f, err)
	}
}

func TestWriteCCDF(t *testing.T) {
	exp := runAbileneSingle(t)
	var buf bytes.Buffer
	if err := WriteCCDF(&buf, exp, "Abilene with single failures"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"Packet Re-cycling", "Failure-Carrying Packets", "Re-convergence", "delivery=1.0000"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("CCDF output missing %q:\n%s", frag, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 15 {
		t.Fatal("CCDF table too short")
	}
}

func TestPRBasicAblationSeries(t *testing.T) {
	tp, err := topo.ByName("abilene")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Run(Spec{
		Topology: tp,
		Failures: graph.SingleFailureScenarios(tp.Graph),
		Schemes:  []SchemeID{PR, PRBasic},
	})
	if err != nil {
		t.Fatal(err)
	}
	basic := exp.SeriesFor(PRBasic)
	if basic.DeliveryRate() != 1 {
		t.Fatalf("basic variant single-failure delivery = %v; want 1", basic.DeliveryRate())
	}
}

func TestRunSkipsDisconnectingScenarios(t *testing.T) {
	g := graph.Ring(4)
	exp, err := Run(Spec{
		Topology: topo.Topology{Name: "ring4", Graph: g},
		Failures: []*graph.FailureSet{graph.NewFailureSet(0, 2)}, // disconnects
	})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Scenarios != 0 {
		t.Fatalf("scenarios = %d; want 0 (disconnecting scenario skipped)", exp.Scenarios)
	}
}

func TestMeasureOverhead(t *testing.T) {
	tp, err := topo.ByName("abilene")
	if err != nil {
		t.Fatal(err)
	}
	o, err := MeasureOverhead(tp)
	if err != nil {
		t.Fatal(err)
	}
	if o.Nodes != 11 || o.Links != 14 {
		t.Fatalf("overhead nodes/links = %d/%d", o.Nodes, o.Links)
	}
	// Abilene hop diameter is 5 → DD bits 3 → PR header 4 bits → fits
	// DSCP pool 2.
	if o.HopDiameter != 5 {
		t.Fatalf("diameter = %d; want 5", o.HopDiameter)
	}
	if o.PRHeaderBits != 4 || !o.PRFitsDSCPPool2 {
		t.Fatalf("PR header bits = %d (fits=%v); want 4 bits fitting pool 2", o.PRHeaderBits, o.PRFitsDSCPPool2)
	}
	if o.PREmbeddingGenus != 0 {
		t.Fatalf("genus = %d; want 0", o.PREmbeddingGenus)
	}
	if o.FCPMaxHeaderBits <= o.PRHeaderBits {
		t.Fatalf("FCP max header %d not above PR %d", o.FCPMaxHeaderBits, o.PRHeaderBits)
	}
	if o.ReconvFloodMessages != 28 {
		t.Fatalf("LSA messages = %d; want 28", o.ReconvFloodMessages)
	}
}

func TestWriteOverheadReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOverheadReport(&buf, []string{"abilene", "geant", "teleglobe"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"abilene", "geant", "teleglobe", "PRbits"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q:\n%s", frag, out)
		}
	}
	if err := WriteOverheadReport(&buf, []string{"bogus"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestSchemeString(t *testing.T) {
	for _, s := range []SchemeID{Reconvergence, FCP, PR, PRBasic} {
		if s.String() == "" {
			t.Fatal("scheme must render")
		}
	}
	if SchemeID(42).String() == "" {
		t.Fatal("unknown scheme must render")
	}
}
