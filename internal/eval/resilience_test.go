package eval

import (
	"strings"
	"testing"
	"time"

	"recycle/internal/failure"
	"recycle/internal/topo"
)

// TestResilienceGuarantee is the PR's acceptance gate and the repo's
// headline number: across ≥ 50 seeded Monte-Carlo scenario draws per
// topology — ring, grid and a random planar family — the PR scheme shows
// ZERO violation windows (no packet lost while its pair stayed
// physically connected and the link state held still), while the
// reconvergence baseline loses a non-zero fraction on the very same
// draws. This is the paper's §1 claim, quantified.
func TestResilienceGuarantee(t *testing.T) {
	draws := 50
	if testing.Short() {
		draws = 12
	}
	cfg := ResilienceConfig{Draws: draws}
	for _, name := range []string{"ring:24", "grid:4x8", "rand:24@7"} {
		tp := mustTopo(t, name)
		rows, err := RunResilience(tp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("%s: %d rows; want PR and reconvergence", name, len(rows))
		}
		pr, reconv := rows[0], rows[1]
		if !strings.Contains(pr.Scheme, "recycling") || reconv.Scheme != "reconvergence" {
			t.Fatalf("%s: unexpected scheme rows %q, %q", name, pr.Scheme, reconv.Scheme)
		}
		if pr.Draws != draws || reconv.Draws != draws {
			t.Fatalf("%s: draws %d/%d; want %d", name, pr.Draws, reconv.Draws, draws)
		}
		if pr.Genus != 0 {
			t.Fatalf("%s: PR ran on a genus-%d embedding; the guarantee is conditioned on genus 0", name, pr.Genus)
		}
		if pr.Generated == 0 {
			t.Fatalf("%s: no probe traffic generated", name)
		}
		if pr.Generated != reconv.Generated {
			t.Fatalf("%s: schemes saw different offered loads: %d vs %d — the comparison is unfair",
				name, pr.Generated, reconv.Generated)
		}
		if pr.Violations != 0 {
			t.Fatalf("%s: PR shows %d violations across %d draws (%d draws affected); the §1 guarantee demands 0",
				name, pr.Violations, draws, pr.ViolationDraws)
		}
		if pr.ViolationFrac() != 0 || pr.ViolationDraws != 0 {
			t.Fatalf("%s: PR violation accounting inconsistent: %+v", name, pr)
		}
		if reconv.Violations == 0 {
			t.Fatalf("%s: the reconvergence baseline shows zero violations over %d draws — the harness is not stressing the convergence window",
				name, draws)
		}
		if pr.Availability() <= reconv.Availability() {
			t.Fatalf("%s: PR availability %.6f not above reconvergence %.6f",
				name, pr.Availability(), reconv.Availability())
		}
		// Accounting must close: every generated packet is delivered,
		// classified lost, or was still in flight at the horizon.
		for _, r := range rows {
			undelivered := r.Generated - r.Delivered
			classified := r.Violations + r.Transient + r.Excused
			if classified > undelivered {
				t.Fatalf("%s %s: classified losses %d exceed undelivered %d", name, r.Scheme, classified, undelivered)
			}
		}
	}
}

// TestResilienceDeterministic: the sweep replays bit-identically for a
// given master seed — the property that makes a reported violation
// reproducible by anyone with the seed.
func TestResilienceDeterministic(t *testing.T) {
	tp := mustTopo(t, "ring:16")
	cfg := ResilienceConfig{Panel: Panel{Seed: 3}, Draws: 5}
	a, err := RunResilience(tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunResilience(tp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different rows:\n%+v\n%+v", a[i], b[i])
		}
	}
	c, err := RunResilience(tp, ResilienceConfig{Panel: Panel{Seed: 4}, Draws: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a[1] == c[1] {
		t.Fatal("different master seeds replayed the identical reconvergence row")
	}
}

// TestResilienceCorrelatedSpec: the harness accepts composed specs — an
// SRLG storm layered over background noise — and still upholds the PR
// guarantee under correlated failures.
func TestResilienceCorrelatedSpec(t *testing.T) {
	tp := mustTopo(t, "grid:4x6")
	rows, err := RunResilience(tp, ResilienceConfig{
		Panel: Panel{Spec: "mtbf:up=3s,down=200ms+srlg:links=0;1;2,at=1s,down=500ms"},
		Draws: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Violations != 0 {
		t.Fatalf("PR violations under correlated SRLG draws: %d; want 0", rows[0].Violations)
	}
}

func TestResilienceBadSpec(t *testing.T) {
	tp := mustTopo(t, "ring:8")
	if _, err := RunResilience(tp, ResilienceConfig{Panel: Panel{Spec: "quake:mag=9"}, Draws: 1}); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestWriteResilienceReport(t *testing.T) {
	var b strings.Builder
	err := WriteResilienceReport(&b, ResilienceConfig{Panel: Panel{Topologies: []string{"ring:12"}}, Draws: 3, Horizon: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Monte-Carlo resilience", "ring:12", "reconvergence",
		"violations", "transient", "excused", "avail"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report lacks %q:\n%s", want, out)
		}
	}
	if err := WriteResilienceReport(&strings.Builder{}, ResilienceConfig{Panel: Panel{Topologies: []string{"no-such-topo"}}, Draws: 1}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func mustTopo(t *testing.T, name string) topo.Topology {
	t.Helper()
	tp, err := topo.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// TestResilienceProcessField: a pre-built process (e.g. a scripted
// scenario file) drives the sweep verbatim, with Spec as the label —
// and draws identically to the equivalent parsed spec, so CLI script
// runs replay through the library API.
func TestResilienceProcessField(t *testing.T) {
	tp := mustTopo(t, "ring:12")
	spec := "mtbf:up=2s,down=300ms"
	proc, err := failure.ParseScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	bySpec, err := RunResilience(tp, ResilienceConfig{Panel: Panel{Spec: spec}, Draws: 3, Horizon: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	byProc, err := RunResilience(tp, ResilienceConfig{Panel: Panel{Process: proc}, Draws: 3, Horizon: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bySpec {
		if bySpec[i] != byProc[i] {
			t.Fatalf("Process field draws differently from the equivalent Spec:\n%+v\n%+v", bySpec[i], byProc[i])
		}
	}
	if _, err := RunResilience(tp, ResilienceConfig{Panel: Panel{Process: failure.Multi{}}, Draws: 1}); err == nil {
		t.Fatal("invalid pre-built process accepted")
	}
}
