package eval

import (
	"strings"
	"testing"
	"time"
)

// TestRunCertifyPR: compiled PR on a genus-0 ring must certify clean at
// k=2 — the eval-level restatement of the §5 guarantee, proved by
// exhaustion rather than sampled.
func TestRunCertifyPR(t *testing.T) {
	cert, err := RunCertify(mustTopo(t, "ring:12"), CertifyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Certified {
		t.Fatalf("PR on ring:12 not certified at k=2:\n%s", cert.Headline())
	}
	if cert.Genus != 0 {
		t.Fatalf("ring embedded at genus %d; the guarantee needs 0", cert.Genus)
	}
	if cert.K != 2 {
		t.Fatalf("default K = %d; want 2", cert.K)
	}
}

// TestRunCertifyBaselinePinsResilience: the reconvergence control arm
// must yield counterexamples, and feeding their PinScenarios back into
// RunResilience must replay them as extra refereed draws — the
// search-to-regression loop the API redesign exists for.
func TestRunCertifyBaselinePinsResilience(t *testing.T) {
	tp := mustTopo(t, "ring:12")
	cert, err := RunCertify(tp, CertifyConfig{K: 1, Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Certified || len(cert.Counterexamples) == 0 {
		t.Fatalf("reconvergence certified clean — the adversary found nothing:\n%s", cert.Headline())
	}
	pins := cert.PinScenarios()
	base := ResilienceConfig{Draws: 2, Horizon: time.Second}
	rows, err := RunResilience(tp, base)
	if err != nil {
		t.Fatal(err)
	}
	pinned := base
	pinned.Pins = pins
	prows, err := RunResilience(tp, pinned)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if want := rows[i].Draws + len(pins); prows[i].Draws != want {
			t.Fatalf("scheme %s ran %d draws with %d pins; want %d",
				prows[i].Scheme, prows[i].Draws, len(pins), want)
		}
	}
	// The PR row must stay violation-free even under the baseline's
	// certified counterexamples — the pins are adversarial for
	// reconvergence, not for PR on a genus-0 embedding.
	if prows[0].Violations != 0 {
		t.Fatalf("PR violated under pinned scenarios: %d", prows[0].Violations)
	}
}

// TestWriteCertifyReport: the panel writer renders one full certificate
// per topology and returns them for pin extraction.
func TestWriteCertifyReport(t *testing.T) {
	var sb strings.Builder
	cfg := CertifyConfig{Panel: Panel{Topologies: []string{"ring:8", "ring:10"}}, K: 1}
	certs, err := WriteCertifyReport(&sb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(certs) != 2 {
		t.Fatalf("%d certificates; want 2", len(certs))
	}
	out := sb.String()
	if strings.Count(out, "certificate: CERTIFIED k=1") != 2 {
		t.Fatalf("report lacks two CERTIFIED headlines:\n%s", out)
	}
	for _, want := range []string{"ring:8", "ring:10", "search:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if _, err := WriteCertifyReport(&sb, CertifyConfig{Panel: Panel{Topologies: []string{"nosuch"}}}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
