package rotation

import (
	"fmt"
	"math/rand"

	"recycle/internal/graph"
)

// System is a rotation system over a graph: for every node, a cyclic order
// of its outgoing darts. By the Heffter–Edmonds correspondence this is
// exactly a cellular embedding of the graph on an orientable surface whose
// genus is computable from Euler's formula.
//
// Two permutations on darts fully describe the embedding:
//
//	σ (NextAround): the next outgoing dart around the same tail node, and
//	φ (FaceNext):   φ(d) = σ(reverse(d)), which traces oriented faces.
//
// The PR cycle-following table at a node (paper Table 1) is a direct
// reading of σ:
//
//	cycle-following egress for ingress dart i = σ(reverse(i)) = φ(i)
//	complementary egress for failed egress d  = φ(reverse(d)) = σ(d)
//
// A System is immutable after construction and safe for concurrent use.
type System struct {
	g *graph.Graph
	// order[n] is node n's outgoing darts in cyclic order.
	order [][]DartID
	// next[d] is σ(d); prev[d] its inverse. Indexed by DartID.
	next []DartID
	prev []DartID
}

// FromLinkOrders constructs a rotation system from, per node, the cyclic
// order of incident links. Every orders[n] must be a permutation of the
// links incident to n (parallel links appear once each).
func FromLinkOrders(g *graph.Graph, orders [][]graph.LinkID) (*System, error) {
	if len(orders) != g.NumNodes() {
		return nil, fmt.Errorf("rotation: %d orders for %d nodes", len(orders), g.NumNodes())
	}
	s := &System{
		g:     g,
		order: make([][]DartID, g.NumNodes()),
		next:  make([]DartID, 2*g.NumLinks()),
		prev:  make([]DartID, 2*g.NumLinks()),
	}
	for n := 0; n < g.NumNodes(); n++ {
		node := graph.NodeID(n)
		incident := make(map[graph.LinkID]int, g.Degree(node))
		for _, nb := range g.Neighbors(node) {
			incident[nb.Link]++
		}
		if len(orders[n]) != g.Degree(node) {
			return nil, fmt.Errorf("rotation: node %d order has %d links; degree is %d", n, len(orders[n]), g.Degree(node))
		}
		darts := make([]DartID, 0, len(orders[n]))
		for _, l := range orders[n] {
			if incident[l] == 0 {
				return nil, fmt.Errorf("rotation: node %d order repeats or misses link %d", n, l)
			}
			incident[l]--
			darts = append(darts, outgoingDart(g, node, l))
		}
		s.order[n] = darts
	}
	s.buildPermutations()
	return s, nil
}

// MustFromLinkOrders is FromLinkOrders for orders known correct by
// construction — canonical embeddings shipped with generated topologies
// (package topo) and test fixtures. It panics on invalid orders.
func MustFromLinkOrders(g *graph.Graph, orders [][]graph.LinkID) *System {
	s, err := FromLinkOrders(g, orders)
	if err != nil {
		panic(err)
	}
	return s
}

// outgoingDart returns the DartID of link l oriented away from node n.
func outgoingDart(g *graph.Graph, n graph.NodeID, l graph.LinkID) DartID {
	ab, ba := DartsOf(l)
	if g.Link(l).A == n {
		return ab
	}
	return ba
}

func (s *System) buildPermutations() {
	for _, darts := range s.order {
		for i, d := range darts {
			n := darts[(i+1)%len(darts)]
			s.next[d] = n
			s.prev[n] = d
		}
	}
}

// AdjacencyOrder returns the rotation system whose cyclic orders follow the
// graph's (frozen, hence deterministic) adjacency lists. This is the
// "arbitrary embedding" every other embedding algorithm is measured
// against: correct, but with no genus optimisation.
func AdjacencyOrder(g *graph.Graph) *System {
	orders := make([][]graph.LinkID, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		for _, nb := range g.Neighbors(graph.NodeID(n)) {
			orders[n] = append(orders[n], nb.Link)
		}
	}
	s, err := FromLinkOrders(g, orders)
	if err != nil {
		// Adjacency lists are by construction valid orders.
		panic(err)
	}
	return s
}

// Random returns a uniformly random rotation system, seeded. Used by the
// annealing embedder and by property tests (PR must be correct under *any*
// rotation system).
func Random(g *graph.Graph, seed int64) *System {
	rng := rand.New(rand.NewSource(seed))
	orders := make([][]graph.LinkID, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		nbrs := g.Neighbors(graph.NodeID(n))
		perm := rng.Perm(len(nbrs))
		orders[n] = make([]graph.LinkID, len(nbrs))
		for i, p := range perm {
			orders[n][i] = nbrs[p].Link
		}
	}
	s, err := FromLinkOrders(g, orders)
	if err != nil {
		panic(err)
	}
	return s
}

// Graph returns the underlying graph.
func (s *System) Graph() *graph.Graph { return s.g }

// Rebind returns a system identical to s over g2, sharing every
// permutation array — the delta-recompilation hook for weight-only
// topology edits, where the embedding is untouched but downstream
// constructors insist the system and graph instances match. g2 must have
// exactly the same structure as s's graph: the same node count and the
// same links joining the same endpoints (weights are free to differ).
func (s *System) Rebind(g2 *graph.Graph) (*System, error) {
	g := s.g
	if g2.NumNodes() != g.NumNodes() || g2.NumLinks() != g.NumLinks() {
		return nil, fmt.Errorf("rotation: rebind target is %d nodes / %d links; system has %d / %d",
			g2.NumNodes(), g2.NumLinks(), g.NumNodes(), g.NumLinks())
	}
	for i, l := range g.Links() {
		l2 := g2.Link(graph.LinkID(i))
		if l.A != l2.A || l.B != l2.B {
			return nil, fmt.Errorf("rotation: rebind target link %d joins %d-%d; system has %d-%d",
				i, l2.A, l2.B, l.A, l.B)
		}
	}
	return &System{g: g2, order: s.order, next: s.next, prev: s.prev}, nil
}

// NumDarts returns the dart count (2 × links).
func (s *System) NumDarts() int { return 2 * s.g.NumLinks() }

// Dart materialises a DartID into its Dart value.
func (s *System) Dart(id DartID) Dart {
	l := s.g.Link(LinkOf(id))
	if id%2 == 0 {
		return Dart{Link: l.ID, Tail: l.A, Head: l.B}
	}
	return Dart{Link: l.ID, Tail: l.B, Head: l.A}
}

// OutgoingDart returns the dart of link l oriented away from n.
func (s *System) OutgoingDart(n graph.NodeID, l graph.LinkID) DartID {
	return outgoingDart(s.g, n, l)
}

// Rotation returns node n's outgoing darts in cyclic order. Callers must
// not modify the returned slice.
func (s *System) Rotation(n graph.NodeID) []DartID { return s.order[n] }

// LinkOrder returns node n's rotation as link IDs, the inverse of
// FromLinkOrders' input.
func (s *System) LinkOrder(n graph.NodeID) []graph.LinkID {
	out := make([]graph.LinkID, len(s.order[n]))
	for i, d := range s.order[n] {
		out[i] = LinkOf(d)
	}
	return out
}

// NextAround returns σ(d): the next outgoing dart around d's tail node.
func (s *System) NextAround(d DartID) DartID { return s.next[d] }

// PrevAround returns σ⁻¹(d).
func (s *System) PrevAround(d DartID) DartID { return s.prev[d] }

// FaceNext returns φ(d) = σ(reverse(d)): the dart following d along its
// oriented face. Orbits of φ are the cellular cycles of the embedding.
func (s *System) FaceNext(d DartID) DartID { return s.next[ReverseID(d)] }

// FacePrev returns φ⁻¹(d) = reverse(σ⁻¹(d)).
func (s *System) FacePrev(d DartID) DartID { return ReverseID(s.prev[d]) }

// Complementary returns the egress dart a PR router uses when egress dart d
// has failed: the first dart of the complementary cycle after the failed
// link, φ(reverse(d)), which conveniently equals σ(d) — the next outgoing
// dart in the local rotation. This is the third column of the paper's
// cycle-following table.
func (s *System) Complementary(d DartID) DartID { return s.next[d] }

// Validate checks internal consistency: σ and its inverse agree, every dart
// appears exactly once across rotations, and φ's orbits partition the darts.
func (s *System) Validate() error {
	seen := make([]bool, s.NumDarts())
	for n, darts := range s.order {
		for _, d := range darts {
			if d < 0 || int(d) >= s.NumDarts() {
				return fmt.Errorf("rotation: node %d lists invalid dart %d", n, d)
			}
			if seen[d] {
				return fmt.Errorf("rotation: dart %d listed twice", d)
			}
			seen[d] = true
			if s.Dart(d).Tail != graph.NodeID(n) {
				return fmt.Errorf("rotation: node %d lists dart %v not rooted at it", n, s.Dart(d))
			}
		}
	}
	for d := range seen {
		if !seen[d] {
			return fmt.Errorf("rotation: dart %d missing from all rotations", d)
		}
	}
	for d := 0; d < s.NumDarts(); d++ {
		if s.prev[s.next[d]] != DartID(d) {
			return fmt.Errorf("rotation: σ inverse broken at dart %d", d)
		}
	}
	return nil
}
