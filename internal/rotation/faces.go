package rotation

import (
	"fmt"

	"recycle/internal/graph"
)

// Face is one oriented cellular cycle of the embedding: an orbit of the
// face-tracing permutation φ. The paper calls these "cellular cycles"; the
// bypass route for a failed link is exactly the face containing the link's
// reverse dart.
type Face struct {
	// Index is the face's position in Faces().
	Index int
	// Darts lists the orbit in φ order, starting from its smallest DartID.
	Darts []DartID
}

// Len returns the number of darts (= hops) on the face.
func (f Face) Len() int { return len(f.Darts) }

// Nodes returns the node sequence visited by the face (tails of each dart).
func (f Face) Nodes(s *System) []graph.NodeID {
	out := make([]graph.NodeID, len(f.Darts))
	for i, d := range f.Darts {
		out[i] = s.Dart(d).Tail
	}
	return out
}

// FaceSet is the complete cycle system of an embedding, with a dart→face
// index for O(1) "which cycle bypasses this link" lookups.
type FaceSet struct {
	Faces []Face
	// faceOf[d] is the index of the face containing dart d.
	faceOf []int
}

// Faces traces all orbits of φ and returns the embedding's cycle system.
// Every dart belongs to exactly one face, so every undirected link belongs
// to exactly two oriented faces (possibly the same face traversed twice,
// when the link is a bridge or the embedding folds a face onto both sides).
func (s *System) Faces() *FaceSet {
	n := s.NumDarts()
	fs := &FaceSet{faceOf: make([]int, n)}
	for i := range fs.faceOf {
		fs.faceOf[i] = -1
	}
	for d := 0; d < n; d++ {
		if fs.faceOf[d] >= 0 {
			continue
		}
		idx := len(fs.Faces)
		var orbit []DartID
		for e := DartID(d); fs.faceOf[e] < 0; e = s.FaceNext(e) {
			fs.faceOf[e] = idx
			orbit = append(orbit, e)
		}
		fs.Faces = append(fs.Faces, Face{Index: idx, Darts: orbit})
	}
	return fs
}

// FaceOf returns the face containing dart d.
func (fs *FaceSet) FaceOf(d DartID) Face { return fs.Faces[fs.faceOf[d]] }

// FaceIndexOf returns the index of the face containing dart d.
func (fs *FaceSet) FaceIndexOf(d DartID) int { return fs.faceOf[d] }

// SameFace reports whether two darts lie on the same oriented face.
func (fs *FaceSet) SameFace(a, b DartID) bool { return fs.faceOf[a] == fs.faceOf[b] }

// CountFaces returns the number of φ orbits without materialising them.
func (s *System) CountFaces() int {
	n := s.NumDarts()
	seen := make([]bool, n)
	count := 0
	for d := 0; d < n; d++ {
		if seen[d] {
			continue
		}
		count++
		for e := DartID(d); !seen[e]; e = s.FaceNext(e) {
			seen[e] = true
		}
	}
	return count
}

// Genus returns the genus of the orientable surface the rotation system
// embeds its (connected) graph on, via Euler's formula V − E + F = 2 − 2g.
// It panics if the underlying graph is disconnected (genus is then not
// defined by this formula) or if the parity is impossible, both of which
// indicate corrupted state.
func (s *System) Genus() int {
	if !graph.Connected(s.g) {
		panic("rotation: genus of a disconnected graph is undefined")
	}
	v := s.g.NumNodes()
	e := s.g.NumLinks()
	f := s.CountFaces()
	chi := v - e + f
	if chi > 2 || (2-chi)%2 != 0 {
		panic(fmt.Sprintf("rotation: impossible Euler characteristic %d (V=%d E=%d F=%d)", chi, v, e, f))
	}
	return (2 - chi) / 2
}

// EulerCharacteristic returns V − E + F. Exposed for tests and for the
// embedding optimiser, which maximises F (equivalently χ) to minimise genus.
func (s *System) EulerCharacteristic() int {
	return s.g.NumNodes() - s.g.NumLinks() + s.CountFaces()
}
