package rotation

import (
	"bytes"
	"strings"
	"testing"

	"recycle/internal/graph"
)

func TestWriteDOT(t *testing.T) {
	g := graph.Ring(4)
	s := AdjacencyOrder(g)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"graph embedding {", "r0", "r3", "n0 -- n1", "c1|c2"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("DOT output missing %q:\n%s", frag, out)
		}
	}
	// A clean ring embedding has no guarantee-breaking links.
	if strings.Contains(out, "color=red") {
		t.Fatal("ring embedding should have no same-face links")
	}
}

func TestWriteDOTFlagsSameFaceLinks(t *testing.T) {
	// A path graph (tree): every link's two darts share the single face.
	g := graph.New(3, 2)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.MustAddLink(a, b, 1)
	g.MustAddLink(b, c, 1)
	g.Freeze()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, AdjacencyOrder(g)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "color=red") {
		t.Fatal("tree links should be flagged as same-face")
	}
}
