// Package rotation implements rotation systems — combinatorial descriptions
// of cellular embeddings of graphs on orientable surfaces — together with
// face tracing, genus computation, and the complementary-cycle mapping that
// Packet Re-cycling's cycle-following tables are built from (paper §3).
//
// A classical theorem (Heffter–Edmonds–Ringel; see Mohar & Thomassen, "Graphs
// on Surfaces") states that the rotation systems of a connected graph G are
// in one-to-one correspondence with the cellular embeddings of G on
// orientable surfaces. PR therefore never needs geometry: a cyclic order of
// neighbours at every node fully determines the cycle system, and *any*
// rotation system yields a correct (if possibly high-stretch) PR
// configuration.
package rotation

import (
	"fmt"

	"recycle/internal/graph"
)

// Dart is a directed half of an undirected link: link l traversed from Tail
// to Head. Every link induces exactly two darts, mutual reverses. Darts are
// the unit the face-tracing permutation acts on, and — in PR terms — a dart
// is "the packet crossing link l in this direction".
type Dart struct {
	Link graph.LinkID
	Tail graph.NodeID
	Head graph.NodeID
}

// Reverse returns the dart traversing the same link in the opposite
// direction.
func (d Dart) Reverse() Dart { return Dart{Link: d.Link, Tail: d.Head, Head: d.Tail} }

// String renders the dart as "tail→head(link)".
func (d Dart) String() string {
	return fmt.Sprintf("%d→%d(l%d)", d.Tail, d.Head, d.Link)
}

// DartID densely indexes darts: dart 2l is link l oriented A→B, dart 2l+1 is
// B→A. Dense IDs let face tracing use slices instead of maps.
type DartID int

// NoDart is the invalid dart index.
const NoDart DartID = -1

// DartsOf returns the two dart IDs of link l.
func DartsOf(l graph.LinkID) (ab, ba DartID) { return DartID(2 * l), DartID(2*l + 1) }

// ReverseID returns the dart ID of the reverse dart.
func ReverseID(d DartID) DartID { return d ^ 1 }

// LinkOf returns the link a dart belongs to.
func LinkOf(d DartID) graph.LinkID { return graph.LinkID(d / 2) }
