package rotation

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"recycle/internal/graph"
)

// The embedding codec serialises a rotation system as plain text so the
// offline embedding server can ship cycle-following state to routers
// (paper §4.3: "appropriate cycle following tables are uploaded to all
// routers"). One line per node:
//
//	rotation <node> <neighbor> <neighbor> ...
//
// Neighbours appear in cyclic order; parallel links are disambiguated by
// repetition order (k-th occurrence of a neighbour = k-th parallel link in
// LinkID order). Comments (#) and blank lines are ignored.

// Write serialises s in rotation format using node names.
func Write(w io.Writer, s *System) error {
	g := s.Graph()
	bw := bufio.NewWriter(w)
	for n := 0; n < g.NumNodes(); n++ {
		node := graph.NodeID(n)
		fmt.Fprintf(bw, "rotation %s", g.Name(node))
		for _, d := range s.Rotation(node) {
			fmt.Fprintf(bw, " %s", g.Name(s.Dart(d).Head))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Read parses a rotation system for g from the format emitted by Write.
// Every node of g must appear exactly once and list a permutation of its
// neighbours.
func Read(r io.Reader, g *graph.Graph) (*System, error) {
	orders := make([][]graph.LinkID, g.NumNodes())
	seen := make([]bool, g.NumNodes())
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "rotation" {
			return nil, fmt.Errorf("rotation: line %d: unknown directive %q", lineNo, fields[0])
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("rotation: line %d: want 'rotation <node> ...'", lineNo)
		}
		node := g.NodeByName(fields[1])
		if node == graph.NoNode {
			return nil, fmt.Errorf("rotation: line %d: unknown node %q", lineNo, fields[1])
		}
		if seen[node] {
			return nil, fmt.Errorf("rotation: line %d: duplicate rotation for %q", lineNo, fields[1])
		}
		seen[node] = true
		links, err := resolveNeighbors(g, node, fields[2:])
		if err != nil {
			return nil, fmt.Errorf("rotation: line %d: %v", lineNo, err)
		}
		orders[node] = links
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for n, ok := range seen {
		if !ok && g.Degree(graph.NodeID(n)) > 0 {
			return nil, fmt.Errorf("rotation: node %q missing", g.Name(graph.NodeID(n)))
		}
	}
	return FromLinkOrders(g, orders)
}

// resolveNeighbors maps neighbour names to link IDs, handling parallel
// links by occurrence order.
func resolveNeighbors(g *graph.Graph, node graph.NodeID, names []string) ([]graph.LinkID, error) {
	// Collect candidate links per neighbour in LinkID order.
	candidates := make(map[graph.NodeID][]graph.LinkID)
	for _, nb := range g.Neighbors(node) {
		candidates[nb.Node] = append(candidates[nb.Node], nb.Link)
	}
	used := make(map[graph.NodeID]int)
	links := make([]graph.LinkID, 0, len(names))
	for _, name := range names {
		nb := g.NodeByName(name)
		if nb == graph.NoNode {
			return nil, fmt.Errorf("unknown neighbour %q", name)
		}
		avail := candidates[nb]
		k := used[nb]
		if k >= len(avail) {
			return nil, fmt.Errorf("neighbour %q listed more times than links exist", name)
		}
		used[nb] = k + 1
		links = append(links, avail[k])
	}
	return links, nil
}
