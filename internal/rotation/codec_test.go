package rotation

import (
	"bytes"
	"strings"
	"testing"

	"recycle/internal/graph"
)

func TestCodecRoundTrip(t *testing.T) {
	g := graph.RandomTwoConnected(9, 16, 4)
	orig := Random(g, 11)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	for d := DartID(0); int(d) < orig.NumDarts(); d++ {
		if orig.NextAround(d) != back.NextAround(d) {
			t.Fatalf("round trip changed σ at dart %d", d)
		}
	}
	if orig.Genus() != back.Genus() {
		t.Fatal("round trip changed genus")
	}
}

func TestCodecRoundTripParallelLinks(t *testing.T) {
	g := graph.New(2, 3)
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.MustAddLink(a, b, 1)
	g.MustAddLink(a, b, 2)
	g.MustAddLink(a, b, 3)
	g.Freeze()
	// Orders that interleave the three parallel links differently per side.
	orders := [][]graph.LinkID{{1, 0, 2}, {2, 1, 0}}
	orig, err := FromLinkOrders(g, orders)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	// Occurrence-order disambiguation cannot recover arbitrary parallel
	// interleavings exactly, but the result must be a valid system with
	// the same per-node degree sequence and a well-defined genus.
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.NumDarts() != orig.NumDarts() {
		t.Fatal("dart count changed")
	}
}

func TestCodecErrors(t *testing.T) {
	g := graph.Ring(3)
	cases := []struct{ name, in string }{
		{"bad directive", "spin r0 r1 r2\n"},
		{"arity", "rotation\n"},
		{"unknown node", "rotation nope r1 r2\n"},
		{"unknown neighbour", "rotation r0 r1 nope\n"},
		{"duplicate node", "rotation r0 r1 r2\nrotation r0 r1 r2\nrotation r1 r0 r2\nrotation r2 r0 r1\n"},
		{"missing node", "rotation r0 r1 r2\n"},
		{"over-listed neighbour", "rotation r0 r1 r1\nrotation r1 r0 r2\nrotation r2 r1 r0\n"},
		{"wrong degree", "rotation r0 r1\nrotation r1 r0 r2\nrotation r2 r1 r0\n"},
	}
	for _, tc := range cases {
		if _, err := Read(strings.NewReader(tc.in), g); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.in)
		}
	}
}

func TestCodecIgnoresCommentsAndBlank(t *testing.T) {
	g := graph.Ring(3)
	in := "# embedding for C3\n\nrotation r0 r1 r2\nrotation r1 r2 r0\n rotation r2 r0 r1\n"
	s, err := Read(strings.NewReader(in), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCodecIsolatedNodeAllowed(t *testing.T) {
	g := graph.New(3, 1)
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddNode("island")
	g.MustAddLink(a, b, 1)
	g.Freeze()
	in := "rotation a b\nrotation b a\n"
	if _, err := Read(strings.NewReader(in), g); err != nil {
		t.Fatalf("isolated node should not be required: %v", err)
	}
}
