package rotation

import (
	"bufio"
	"fmt"
	"io"

	"recycle/internal/graph"
)

// WriteDOT renders the embedded graph in Graphviz DOT format. Each
// undirected link is annotated with the two oriented faces it separates
// ("c<i>|c<j>"), making the cycle system visible: the paper's Figure 1(a)
// can be regenerated directly from `prtables`-style output piped through
// Graphviz. Links whose two darts lie on a single face — the configuration
// that breaks PR's delivery guarantee — are drawn red and bold so embedding
// defects are visually obvious.
func WriteDOT(w io.Writer, s *System) error {
	g := s.Graph()
	fs := s.Faces()
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph embedding {")
	fmt.Fprintln(bw, "  layout=neato;")
	fmt.Fprintln(bw, "  node [shape=circle];")
	for n := 0; n < g.NumNodes(); n++ {
		fmt.Fprintf(bw, "  n%d [label=%q];\n", n, g.Name(graph.NodeID(n)))
	}
	for _, l := range g.Links() {
		ab, ba := DartsOf(l.ID)
		fa, fb := fs.FaceIndexOf(ab), fs.FaceIndexOf(ba)
		attrs := fmt.Sprintf("label=\"c%d|c%d\"", fa+1, fb+1)
		if fa == fb {
			attrs += ", color=red, penwidth=2" // guarantee-breaking link
		}
		fmt.Fprintf(bw, "  n%d -- n%d [%s];\n", l.A, l.B, attrs)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
