package rotation

import (
	"testing"
	"testing/quick"

	"recycle/internal/graph"
)

func TestDartBasics(t *testing.T) {
	d := Dart{Link: 3, Tail: 1, Head: 2}
	r := d.Reverse()
	if r.Tail != 2 || r.Head != 1 || r.Link != 3 {
		t.Fatalf("Reverse = %+v", r)
	}
	if d.String() == "" || r.String() == d.String() {
		t.Fatal("dart strings should differ by direction")
	}
}

func TestDartIDs(t *testing.T) {
	ab, ba := DartsOf(5)
	if ab != 10 || ba != 11 {
		t.Fatalf("DartsOf(5) = %d, %d; want 10, 11", ab, ba)
	}
	if ReverseID(ab) != ba || ReverseID(ba) != ab {
		t.Fatal("ReverseID not an involution")
	}
	if LinkOf(ab) != 5 || LinkOf(ba) != 5 {
		t.Fatal("LinkOf wrong")
	}
}

func TestAdjacencyOrderTriangle(t *testing.T) {
	g := graph.Complete(3)
	s := AdjacencyOrder(g)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumDarts() != 6 {
		t.Fatalf("NumDarts = %d; want 6", s.NumDarts())
	}
	// Triangle embeds on the sphere: 3 - 3 + F = 2 → F = 2, genus 0.
	if f := s.CountFaces(); f != 2 {
		t.Fatalf("faces = %d; want 2", f)
	}
	if gen := s.Genus(); gen != 0 {
		t.Fatalf("genus = %d; want 0", gen)
	}
}

func TestFromLinkOrdersRejectsBadInput(t *testing.T) {
	g := graph.Complete(3)
	// Wrong arity.
	if _, err := FromLinkOrders(g, [][]graph.LinkID{{0}, {0, 1}, {1, 2}}); err == nil {
		t.Fatal("accepted wrong-arity order")
	}
	// Repeated link.
	if _, err := FromLinkOrders(g, [][]graph.LinkID{{0, 0}, {0, 1}, {1, 2}}); err == nil {
		t.Fatal("accepted repeated link")
	}
	// Foreign link: node 1 is incident to links 0 and 2, not link 1 (0-2).
	if _, err := FromLinkOrders(g, [][]graph.LinkID{{0, 1}, {1, 2}, {1, 2}}); err == nil {
		t.Fatal("accepted link not incident to node")
	}
	// Wrong outer length.
	if _, err := FromLinkOrders(g, [][]graph.LinkID{{0, 1}}); err == nil {
		t.Fatal("accepted wrong node count")
	}
}

func TestSigmaPhiRelationship(t *testing.T) {
	g := graph.RandomTwoConnected(10, 18, 1)
	s := Random(g, 42)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for d := DartID(0); int(d) < s.NumDarts(); d++ {
		if s.FaceNext(d) != s.NextAround(ReverseID(d)) {
			t.Fatalf("φ(%d) != σ(rev(%d))", d, d)
		}
		if s.FacePrev(s.FaceNext(d)) != d {
			t.Fatalf("φ⁻¹(φ(%d)) != %d", d, d)
		}
		if s.PrevAround(s.NextAround(d)) != d {
			t.Fatalf("σ⁻¹(σ(%d)) != %d", d, d)
		}
		// Complementary = σ(d) = φ(rev(d)).
		if s.Complementary(d) != s.FaceNext(ReverseID(d)) {
			t.Fatalf("complementary(%d) != φ(rev(%d))", d, d)
		}
	}
}

func TestDartMaterialisation(t *testing.T) {
	g := graph.Ring(4)
	s := AdjacencyOrder(g)
	l := g.Link(0)
	ab, ba := DartsOf(0)
	da := s.Dart(ab)
	if da.Tail != l.A || da.Head != l.B {
		t.Fatalf("dart %d = %+v; want %d→%d", ab, da, l.A, l.B)
	}
	db := s.Dart(ba)
	if db.Tail != l.B || db.Head != l.A {
		t.Fatalf("dart %d = %+v; want %d→%d", ba, db, l.B, l.A)
	}
	if s.OutgoingDart(l.A, 0) != ab || s.OutgoingDart(l.B, 0) != ba {
		t.Fatal("OutgoingDart wrong")
	}
}

func TestLinkOrderRoundTrip(t *testing.T) {
	g := graph.RandomTwoConnected(8, 14, 5)
	s := Random(g, 7)
	orders := make([][]graph.LinkID, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		orders[n] = s.LinkOrder(graph.NodeID(n))
	}
	s2, err := FromLinkOrders(g, orders)
	if err != nil {
		t.Fatal(err)
	}
	for d := DartID(0); int(d) < s.NumDarts(); d++ {
		if s.NextAround(d) != s2.NextAround(d) {
			t.Fatalf("round trip changed σ at dart %d", d)
		}
	}
}

// TestFacesPartitionDarts is the core cellular-embedding invariant: φ's
// orbits partition the darts, so every undirected link appears on exactly
// two oriented face traversals.
func TestFacesPartitionDarts(t *testing.T) {
	check := func(seed int64) bool {
		g := graph.RandomTwoConnected(4+int(uint64(seed)%8), 10+int(uint64(seed)%10), seed)
		s := Random(g, seed*31)
		fs := s.Faces()
		count := make(map[DartID]int)
		for _, f := range fs.Faces {
			for _, d := range f.Darts {
				count[d]++
			}
		}
		if len(count) != s.NumDarts() {
			return false
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		// Each link: exactly two dart traversals across all faces.
		for l := 0; l < g.NumLinks(); l++ {
			ab, ba := DartsOf(graph.LinkID(l))
			if count[ab] != 1 || count[ba] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGenusIntegrality: Euler characteristic is even and ≤ 2 for every
// rotation system of a connected graph.
func TestGenusIntegrality(t *testing.T) {
	check := func(seed int64) bool {
		g := graph.RandomTwoConnected(5+int(uint64(seed)%7), 8+int(uint64(seed)%12), seed)
		s := Random(g, seed)
		gen := s.Genus() // panics on violation
		return gen >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGenusDisconnectedPanics(t *testing.T) {
	g := graph.New(4, 2)
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	g.MustAddLink(a, b, 1)
	g.MustAddLink(c, d, 1)
	g.Freeze()
	s := AdjacencyOrder(g)
	defer func() {
		if recover() == nil {
			t.Fatal("Genus on disconnected graph did not panic")
		}
	}()
	s.Genus()
}

func TestFaceSetLookup(t *testing.T) {
	g := graph.Ring(5)
	s := AdjacencyOrder(g)
	fs := s.Faces()
	// A ring embeds with exactly 2 faces (inside and outside), each of
	// length 5.
	if len(fs.Faces) != 2 {
		t.Fatalf("faces of C5 = %d; want 2", len(fs.Faces))
	}
	for _, f := range fs.Faces {
		if f.Len() != 5 {
			t.Fatalf("face %d has %d darts; want 5", f.Index, f.Len())
		}
		if len(f.Nodes(s)) != 5 {
			t.Fatal("Nodes length mismatch")
		}
	}
	d := DartID(0)
	if fs.FaceOf(d).Index != fs.FaceIndexOf(d) {
		t.Fatal("FaceOf/FaceIndexOf disagree")
	}
	if !fs.SameFace(d, s.FaceNext(d)) {
		t.Fatal("φ successor should share d's face")
	}
	if fs.SameFace(d, ReverseID(d)) {
		t.Fatal("on a ring the two directions lie on different faces")
	}
}

func TestTorusGenusOne(t *testing.T) {
	// The natural rotation for a torus grid should yield genus 1 when
	// neighbours alternate (right, down, left, up). Construct it by hand.
	rows, cols := 3, 3
	g := graph.Torus(rows, cols)
	// For each node, order links: +col, +row, -col, -row.
	id := func(r, c int) graph.NodeID { return graph.NodeID(((r+rows)%rows)*cols + (c+cols)%cols) }
	orders := make([][]graph.LinkID, g.NumNodes())
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			n := id(r, c)
			right := g.FindLink(n, id(r, c+1))
			down := g.FindLink(n, id(r+1, c))
			left := g.FindLink(n, id(r, c-1))
			up := g.FindLink(n, id(r-1, c))
			orders[n] = []graph.LinkID{right, down, left, up}
		}
	}
	s, err := FromLinkOrders(g, orders)
	if err != nil {
		t.Fatal(err)
	}
	if gen := s.Genus(); gen != 1 {
		t.Fatalf("torus grid genus = %d; want 1", gen)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := graph.Ring(4)
	s := AdjacencyOrder(g)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt: duplicate a dart in one node's order.
	s.order[0][1] = s.order[0][0]
	if err := s.Validate(); err == nil {
		t.Fatal("Validate missed duplicated dart")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	g := graph.RandomTwoConnected(9, 16, 2)
	a := Random(g, 11)
	b := Random(g, 11)
	for d := DartID(0); int(d) < a.NumDarts(); d++ {
		if a.NextAround(d) != b.NextAround(d) {
			t.Fatal("Random not deterministic for equal seeds")
		}
	}
}
