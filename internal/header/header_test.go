package header

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"

	"recycle/internal/graph"
	"recycle/internal/topo"
)

func TestEncodeDecodeDSCPRoundTrip(t *testing.T) {
	for dd := uint8(0); dd <= MaxDD; dd++ {
		for _, pr := range []bool{false, true} {
			m := Mark{PR: pr, DD: dd}
			dscp, err := EncodeDSCP(m)
			if err != nil {
				t.Fatal(err)
			}
			if dscp&0b11 != 0b11 {
				t.Fatalf("encoded DSCP %#b not in pool 2", dscp)
			}
			back, err := DecodeDSCP(dscp)
			if err != nil {
				t.Fatal(err)
			}
			if back != m {
				t.Fatalf("round trip %+v -> %#b -> %+v", m, dscp, back)
			}
		}
	}
}

func TestEncodeDSCPOverflow(t *testing.T) {
	if _, err := EncodeDSCP(Mark{DD: MaxDD + 1}); !errors.Is(err, ErrDDOverflow) {
		t.Fatalf("err = %v; want ErrDDOverflow", err)
	}
}

func TestDecodeDSCPRejectsOtherPools(t *testing.T) {
	// Pool 1 (xxxxx0) and pool 3 (xxxx01) values must be rejected.
	for _, v := range []uint8{0b000000, 0b101110 /* EF */, 0b000001} {
		if _, err := DecodeDSCP(v); !errors.Is(err, ErrNotPool2) {
			t.Fatalf("DSCP %#b: err = %v; want ErrNotPool2", v, err)
		}
	}
	if _, err := DecodeDSCP(0b1000000); err == nil {
		t.Fatal("7-bit DSCP accepted")
	}
}

func TestFitsHopDiameterOnEvaluationTopologies(t *testing.T) {
	// §6: PR needs in the order of log2(d) bits; the pool-2 budget of 3 DD
	// bits must cover all three evaluation topologies.
	for _, name := range []string{"abilene", "geant", "teleglobe"} {
		tp, err := topo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		d := graph.HopDiameter(tp.Graph)
		if !FitsHopDiameter(d) {
			t.Errorf("%s: hop diameter %d does not fit %d DD bits", name, d, DDBits)
		}
	}
	if FitsHopDiameter(MaxDD+1) || FitsHopDiameter(-1) {
		t.Fatal("FitsHopDiameter bounds wrong")
	}
}

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func sampleHeader(t *testing.T) *IPv4 {
	return &IPv4{
		DSCP:        0b010111, // PR=0 DD=5 pool2
		ECN:         0,
		TotalLength: 1024,
		ID:          0x1234,
		Flags:       0b010, // DF
		TTL:         64,
		Protocol:    17, // UDP
		Src:         mustAddr(t, "10.0.0.1"),
		Dst:         mustAddr(t, "10.0.0.2"),
	}
}

func TestIPv4MarshalUnmarshalRoundTrip(t *testing.T) {
	h := sampleHeader(t)
	b, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != HeaderLen {
		t.Fatalf("encoded %d bytes; want %d", len(b), HeaderLen)
	}
	var back IPv4
	if err := back.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if back != *h {
		t.Fatalf("round trip changed header:\n  in  %+v\n  out %+v", *h, back)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	h := sampleHeader(t)
	b, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b[8] ^= 0xff // corrupt TTL
	var back IPv4
	if err := back.Unmarshal(b); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestIPv4MarshalValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(h *IPv4)
	}{
		{"oversized DSCP", func(h *IPv4) { h.DSCP = 0x40 }},
		{"oversized ECN", func(h *IPv4) { h.ECN = 4 }},
		{"oversized flags", func(h *IPv4) { h.Flags = 8 }},
		{"oversized frag offset", func(h *IPv4) { h.FragOffset = 0x2000 }},
		{"short total length", func(h *IPv4) { h.TotalLength = 10 }},
		{"IPv6 source", func(h *IPv4) { h.Src = mustAddr(t, "::1") }},
	}
	for _, tc := range cases {
		h := sampleHeader(t)
		tc.mutate(h)
		if _, err := h.Marshal(); err == nil {
			t.Errorf("%s: invalid header accepted", tc.name)
		}
	}
}

func TestIPv4UnmarshalRejectsBadInput(t *testing.T) {
	var h IPv4
	if err := h.Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short buffer accepted")
	}
	b, _ := sampleHeader(t).Marshal()
	b6 := append([]byte(nil), b...)
	b6[0] = 0x65 // version 6
	if err := h.Unmarshal(b6); err == nil {
		t.Fatal("IPv6 version accepted")
	}
	opt := append([]byte(nil), b...)
	opt[0] = 0x46 // IHL 6 (options)
	if err := h.Unmarshal(opt); err == nil {
		t.Fatal("options-bearing header accepted")
	}
}

func TestSetAndGetMark(t *testing.T) {
	h := sampleHeader(t)
	if err := h.SetMark(Mark{PR: true, DD: 2}); err != nil {
		t.Fatal(err)
	}
	b, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var back IPv4
	if err := back.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	m, err := back.PRMark()
	if err != nil {
		t.Fatal(err)
	}
	if !m.PR || m.DD != 2 {
		t.Fatalf("mark = %+v; want PR set DD 2", m)
	}
	if err := h.SetMark(Mark{DD: 200}); err == nil {
		t.Fatal("oversized DD accepted")
	}
}

func TestChecksumProperties(t *testing.T) {
	// RFC 1071 example: checksum of {0x0001, 0xf203, 0xf4f5, 0xf6f7}.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x; want %#x", got, ^uint16(0xddf2))
	}
	// Odd length is padded with a zero byte.
	if Checksum([]byte{0xab}) != ^uint16(0xab00) {
		t.Fatal("odd-length checksum wrong")
	}
}

// Property: every valid mark survives the DSCP round trip.
func TestMarkRoundTripProperty(t *testing.T) {
	f := func(pr bool, dd uint8) bool {
		m := Mark{PR: pr, DD: dd % (MaxDD + 1)}
		dscp, err := EncodeDSCP(m)
		if err != nil {
			return false
		}
		back, err := DecodeDSCP(dscp)
		return err == nil && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
