package header

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"

	"recycle/internal/graph"
	"recycle/internal/topo"
)

func TestEncodeDecodeDSCPRoundTrip(t *testing.T) {
	for dd := uint32(0); dd <= MaxDD; dd++ {
		for _, pr := range []bool{false, true} {
			m := Mark{PR: pr, DD: dd}
			dscp, err := EncodeDSCP(m)
			if err != nil {
				t.Fatal(err)
			}
			if dscp&0b11 != 0b11 {
				t.Fatalf("encoded DSCP %#b not in pool 2", dscp)
			}
			back, err := DecodeDSCP(dscp)
			if err != nil {
				t.Fatal(err)
			}
			if back != m {
				t.Fatalf("round trip %+v -> %#b -> %+v", m, dscp, back)
			}
		}
	}
}

func TestEncodeDSCPOverflow(t *testing.T) {
	if _, err := EncodeDSCP(Mark{DD: MaxDD + 1}); !errors.Is(err, ErrDDOverflow) {
		t.Fatalf("err = %v; want ErrDDOverflow", err)
	}
}

func TestDecodeDSCPRejectsOtherPools(t *testing.T) {
	// Pool 1 (xxxxx0) and pool 3 (xxxx01) values must be rejected.
	for _, v := range []uint8{0b000000, 0b101110 /* EF */, 0b000001} {
		if _, err := DecodeDSCP(v); !errors.Is(err, ErrNotPool2) {
			t.Fatalf("DSCP %#b: err = %v; want ErrNotPool2", v, err)
		}
	}
	if _, err := DecodeDSCP(0b1000000); err == nil {
		t.Fatal("7-bit DSCP accepted")
	}
}

func TestFitsHopDiameterOnEvaluationTopologies(t *testing.T) {
	// §6: PR needs in the order of log2(d) bits; the pool-2 budget of 3 DD
	// bits must cover all three evaluation topologies.
	for _, name := range []string{"abilene", "geant", "teleglobe"} {
		tp, err := topo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		d := graph.HopDiameter(tp.Graph)
		if !FitsHopDiameter(d) {
			t.Errorf("%s: hop diameter %d does not fit %d DD bits", name, d, DDBits)
		}
	}
	if FitsHopDiameter(MaxDD+1) || FitsHopDiameter(-1) {
		t.Fatal("FitsHopDiameter bounds wrong")
	}
}

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func sampleHeader(t *testing.T) *IPv4 {
	return &IPv4{
		DSCP:        0b010111, // PR=0 DD=5 pool2
		ECN:         0,
		TotalLength: 1024,
		ID:          0x1234,
		Flags:       0b010, // DF
		TTL:         64,
		Protocol:    17, // UDP
		Src:         mustAddr(t, "10.0.0.1"),
		Dst:         mustAddr(t, "10.0.0.2"),
	}
}

func TestIPv4MarshalUnmarshalRoundTrip(t *testing.T) {
	h := sampleHeader(t)
	b, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != HeaderLen {
		t.Fatalf("encoded %d bytes; want %d", len(b), HeaderLen)
	}
	var back IPv4
	if err := back.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if back != *h {
		t.Fatalf("round trip changed header:\n  in  %+v\n  out %+v", *h, back)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	h := sampleHeader(t)
	b, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b[8] ^= 0xff // corrupt TTL
	var back IPv4
	if err := back.Unmarshal(b); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestIPv4MarshalValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(h *IPv4)
	}{
		{"oversized DSCP", func(h *IPv4) { h.DSCP = 0x40 }},
		{"oversized ECN", func(h *IPv4) { h.ECN = 4 }},
		{"oversized flags", func(h *IPv4) { h.Flags = 8 }},
		{"oversized frag offset", func(h *IPv4) { h.FragOffset = 0x2000 }},
		{"short total length", func(h *IPv4) { h.TotalLength = 10 }},
		{"IPv6 source", func(h *IPv4) { h.Src = mustAddr(t, "::1") }},
	}
	for _, tc := range cases {
		h := sampleHeader(t)
		tc.mutate(h)
		if _, err := h.Marshal(); err == nil {
			t.Errorf("%s: invalid header accepted", tc.name)
		}
	}
}

func TestIPv4UnmarshalRejectsBadInput(t *testing.T) {
	var h IPv4
	if err := h.Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short buffer accepted")
	}
	b, _ := sampleHeader(t).Marshal()
	b6 := append([]byte(nil), b...)
	b6[0] = 0x65 // version 6
	if err := h.Unmarshal(b6); err == nil {
		t.Fatal("IPv6 version accepted")
	}
	opt := append([]byte(nil), b...)
	opt[0] = 0x46 // IHL 6 (options)
	if err := h.Unmarshal(opt); err == nil {
		t.Fatal("options-bearing header accepted")
	}
}

func TestSetAndGetMark(t *testing.T) {
	h := sampleHeader(t)
	if err := h.SetMark(Mark{PR: true, DD: 2}); err != nil {
		t.Fatal(err)
	}
	b, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var back IPv4
	if err := back.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	m, err := back.PRMark()
	if err != nil {
		t.Fatal(err)
	}
	if !m.PR || m.DD != 2 {
		t.Fatalf("mark = %+v; want PR set DD 2", m)
	}
	if err := h.SetMark(Mark{DD: 200}); err == nil {
		t.Fatal("oversized DD accepted")
	}
}

func TestChecksumProperties(t *testing.T) {
	// RFC 1071 example: checksum of {0x0001, 0xf203, 0xf4f5, 0xf6f7}.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#x; want %#x", got, ^uint16(0xddf2))
	}
	// Odd length is padded with a zero byte.
	if Checksum([]byte{0xab}) != ^uint16(0xab00) {
		t.Fatal("odd-length checksum wrong")
	}
}

// Property: every valid mark survives the DSCP round trip.
func TestMarkRoundTripProperty(t *testing.T) {
	f := func(pr bool, dd uint32) bool {
		m := Mark{PR: pr, DD: dd % (MaxDD + 1)}
		dscp, err := EncodeDSCP(m)
		if err != nil {
			return false
		}
		back, err := DecodeDSCP(dscp)
		return err == nil && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeFlowLabelRoundTrip(t *testing.T) {
	for _, dd := range []uint32{0, 1, 7, 8, 255, 4096, MaxFlowLabelDD} {
		for _, pr := range []bool{false, true} {
			m := Mark{PR: pr, DD: dd}
			fl, err := EncodeFlowLabel(m)
			if err != nil {
				t.Fatal(err)
			}
			if fl&0b11 != 0b11 {
				t.Fatalf("encoded flow label %#b not in pool 2", fl)
			}
			back, err := DecodeFlowLabel(fl)
			if err != nil {
				t.Fatal(err)
			}
			if back != m {
				t.Fatalf("round trip %+v -> %#b -> %+v", m, fl, back)
			}
		}
	}
}

func TestFlowLabelOverflowAndPoolRejection(t *testing.T) {
	if _, err := EncodeFlowLabel(Mark{DD: MaxFlowLabelDD + 1}); !errors.Is(err, ErrDDOverflow) {
		t.Fatalf("err = %v; want ErrDDOverflow", err)
	}
	for _, v := range []uint32{0b00, 0b01, 0b10, 0xFFFFC} {
		if _, err := DecodeFlowLabel(v); !errors.Is(err, ErrNotPool2) {
			t.Fatalf("flow label %#b: err = %v; want ErrNotPool2", v, err)
		}
	}
	if _, err := DecodeFlowLabel(1 << 20); err == nil {
		t.Fatal("21-bit flow label accepted")
	}
}

// TestCrossCodecAgreement: on the field widths the codecs share (DD ≤
// MaxDD), the DSCP and flow-label codecs carry identical marks, and the
// flow label's low 6 bits are exactly the DSCP value with the PR bit
// relocated to bit 19 — the "widened same shape" the package doc promises.
func TestCrossCodecAgreement(t *testing.T) {
	for dd := uint32(0); dd <= MaxDD; dd++ {
		for _, pr := range []bool{false, true} {
			m := Mark{PR: pr, DD: dd}
			dscp, err := EncodeDSCP(m)
			if err != nil {
				t.Fatal(err)
			}
			fl, err := EncodeFlowLabel(m)
			if err != nil {
				t.Fatal(err)
			}
			md, err := DecodeDSCP(dscp)
			if err != nil {
				t.Fatal(err)
			}
			mf, err := DecodeFlowLabel(fl)
			if err != nil {
				t.Fatal(err)
			}
			if md != mf || md != m {
				t.Fatalf("codecs disagree on %+v: DSCP %+v, flow label %+v", m, md, mf)
			}
			wantLow := uint32(dscp) &^ (1 << 5)
			if fl&0b111111 != wantLow {
				t.Fatalf("shared width layout differs: flow label %#b, DSCP %#b", fl, dscp)
			}
			if (fl&(1<<19) != 0) != pr {
				t.Fatalf("flow-label PR bit misplaced for %+v", m)
			}
		}
	}
}

func TestFitsCodecBits(t *testing.T) {
	if !FitsDSCP(0) || !FitsDSCP(DDBits) || FitsDSCP(DDBits+1) || FitsDSCP(-1) {
		t.Fatal("FitsDSCP bounds wrong")
	}
	if !FitsFlowLabel(DDBits+1) || !FitsFlowLabel(FlowLabelDDBits) || FitsFlowLabel(FlowLabelDDBits+1) {
		t.Fatal("FitsFlowLabel bounds wrong")
	}
}

func sampleHeader6(t *testing.T) *IPv6 {
	t.Helper()
	return &IPv6{
		TrafficClass:  0x2E,
		FlowLabel:     0b010111, // PR=0 DD=5 pool2
		PayloadLength: 1024,
		NextHeader:    17, // UDP
		HopLimit:      64,
		Src:           mustAddr(t, "fd00:5052::1"),
		Dst:           mustAddr(t, "fd00:5052::2"),
	}
}

func TestIPv6MarshalUnmarshalRoundTrip(t *testing.T) {
	h := sampleHeader6(t)
	b, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != HeaderLen6 {
		t.Fatalf("encoded %d bytes; want %d", len(b), HeaderLen6)
	}
	if b[0]>>4 != 6 {
		t.Fatalf("version nibble = %d", b[0]>>4)
	}
	var back IPv6
	if err := back.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if back != *h {
		t.Fatalf("round trip changed header:\n  in  %+v\n  out %+v", *h, back)
	}
}

func TestIPv6MarshalValidation(t *testing.T) {
	h := sampleHeader6(t)
	h.FlowLabel = 1 << 20
	if _, err := h.Marshal(); err == nil {
		t.Error("21-bit flow label accepted")
	}
	h = sampleHeader6(t)
	h.Src = mustAddr(t, "10.0.0.1")
	if _, err := h.Marshal(); err == nil {
		t.Error("IPv4 source accepted")
	}
	h = sampleHeader6(t)
	h.Dst = mustAddr(t, "::ffff:10.0.0.1")
	if _, err := h.Marshal(); err == nil {
		t.Error("4-in-6 destination accepted")
	}
}

func TestIPv6UnmarshalRejectsBadInput(t *testing.T) {
	var h IPv6
	if err := h.Unmarshal(make([]byte, 39)); err == nil {
		t.Fatal("short buffer accepted")
	}
	b, _ := sampleHeader6(t).Marshal()
	b[0] = 0x45
	if err := h.Unmarshal(b); err == nil {
		t.Fatal("IPv4 version accepted")
	}
}

func TestIPv6SetAndGetMark(t *testing.T) {
	h := sampleHeader6(t)
	if err := h.SetMark(Mark{PR: true, DD: 1234}); err != nil {
		t.Fatal(err)
	}
	b, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var back IPv6
	if err := back.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	m, err := back.PRMark()
	if err != nil {
		t.Fatal(err)
	}
	if !m.PR || m.DD != 1234 {
		t.Fatalf("mark = %+v; want PR set DD 1234", m)
	}
	if err := h.SetMark(Mark{DD: MaxFlowLabelDD + 1}); err == nil {
		t.Fatal("oversized DD accepted")
	}
}
