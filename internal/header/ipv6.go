package header

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv6 is a minimal IPv6 header layer sufficient to demonstrate PR's
// flow-label marking on real bytes: the fixed 40-byte header, no extension
// headers. IPv6 carries no header checksum, so in-place rewrites need no
// repair step.
type IPv6 struct {
	// TrafficClass is the 8-bit traffic class (DSCP+ECN).
	TrafficClass uint8
	// FlowLabel is the 20-bit flow label carrying the PR mark.
	FlowLabel uint32
	// PayloadLength counts the bytes after the fixed header.
	PayloadLength uint16
	// NextHeader is the payload protocol number.
	NextHeader uint8
	// HopLimit is IPv6's TTL.
	HopLimit uint8
	// Src and Dst are the endpoint addresses.
	Src, Dst netip.Addr
}

// HeaderLen6 is the encoded size: the fixed 40-byte header, no extensions.
const HeaderLen6 = 40

// Marshal encodes the header.
func (h *IPv6) Marshal() ([]byte, error) {
	if !h.Src.Is6() || h.Src.Is4In6() || !h.Dst.Is6() || h.Dst.Is4In6() {
		return nil, fmt.Errorf("header: src/dst must be IPv6 addresses")
	}
	if h.FlowLabel > 0xFFFFF {
		return nil, fmt.Errorf("header: flow label %#x exceeds 20 bits", h.FlowLabel)
	}
	b := make([]byte, HeaderLen6)
	b[0] = 0x60 | h.TrafficClass>>4
	b[1] = h.TrafficClass<<4 | uint8(h.FlowLabel>>16)
	b[2] = uint8(h.FlowLabel >> 8)
	b[3] = uint8(h.FlowLabel)
	binary.BigEndian.PutUint16(b[4:], h.PayloadLength)
	b[6] = h.NextHeader
	b[7] = h.HopLimit
	src := h.Src.As16()
	dst := h.Dst.As16()
	copy(b[8:], src[:])
	copy(b[24:], dst[:])
	return b, nil
}

// Unmarshal decodes a 40-byte IPv6 header.
func (h *IPv6) Unmarshal(b []byte) error {
	if len(b) < HeaderLen6 {
		return fmt.Errorf("header: %d bytes, need %d", len(b), HeaderLen6)
	}
	if b[0]>>4 != 6 {
		return fmt.Errorf("header: version %d is not IPv6", b[0]>>4)
	}
	h.TrafficClass = b[0]<<4 | b[1]>>4
	h.FlowLabel = uint32(b[1]&0x0F)<<16 | uint32(b[2])<<8 | uint32(b[3])
	h.PayloadLength = binary.BigEndian.Uint16(b[4:])
	h.NextHeader = b[6]
	h.HopLimit = b[7]
	h.Src = netip.AddrFrom16([16]byte(b[8:24]))
	h.Dst = netip.AddrFrom16([16]byte(b[24:40]))
	return nil
}

// SetMark stores a PR mark into the header's flow label.
func (h *IPv6) SetMark(m Mark) error {
	fl, err := EncodeFlowLabel(m)
	if err != nil {
		return err
	}
	h.FlowLabel = fl
	return nil
}

// PRMark extracts the PR mark from the header's flow label.
func (h *IPv6) PRMark() (Mark, error) { return DecodeFlowLabel(h.FlowLabel) }
