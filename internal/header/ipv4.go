package header

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv4 is a minimal IPv4 header layer sufficient to demonstrate PR's DSCP
// marking on real bytes: fixed 20-byte header, no options.
type IPv4 struct {
	// DSCP is the 6-bit differentiated services code point.
	DSCP uint8
	// ECN is the 2-bit explicit congestion notification field.
	ECN uint8
	// TotalLength covers header plus payload.
	TotalLength uint16
	// ID is the identification field.
	ID uint16
	// Flags is the 3-bit flag field (DF = 0b010).
	Flags uint8
	// FragOffset is the 13-bit fragment offset.
	FragOffset uint16
	// TTL is the time-to-live.
	TTL uint8
	// Protocol is the payload protocol number.
	Protocol uint8
	// Src and Dst are the endpoint addresses.
	Src, Dst netip.Addr
}

// HeaderLen is the encoded size: 20 bytes, no options.
const HeaderLen = 20

// Marshal encodes the header with a correct checksum.
func (h *IPv4) Marshal() ([]byte, error) {
	if !h.Src.Is4() || !h.Dst.Is4() {
		return nil, fmt.Errorf("header: src/dst must be IPv4 addresses")
	}
	if h.DSCP > 0b111111 {
		return nil, fmt.Errorf("header: DSCP %#x exceeds 6 bits", h.DSCP)
	}
	if h.ECN > 0b11 {
		return nil, fmt.Errorf("header: ECN %#x exceeds 2 bits", h.ECN)
	}
	if h.Flags > 0b111 {
		return nil, fmt.Errorf("header: flags %#x exceed 3 bits", h.Flags)
	}
	if h.FragOffset > 0x1fff {
		return nil, fmt.Errorf("header: fragment offset %#x exceeds 13 bits", h.FragOffset)
	}
	if h.TotalLength < HeaderLen {
		return nil, fmt.Errorf("header: total length %d below header size", h.TotalLength)
	}
	b := make([]byte, HeaderLen)
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.DSCP<<2 | h.ECN
	binary.BigEndian.PutUint16(b[2:], h.TotalLength)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], uint16(h.Flags)<<13|h.FragOffset)
	b[8] = h.TTL
	b[9] = h.Protocol
	src := h.Src.As4()
	dst := h.Dst.As4()
	copy(b[12:], src[:])
	copy(b[16:], dst[:])
	binary.BigEndian.PutUint16(b[10:], Checksum(b))
	return b, nil
}

// Unmarshal decodes and verifies a 20-byte IPv4 header.
func (h *IPv4) Unmarshal(b []byte) error {
	if len(b) < HeaderLen {
		return fmt.Errorf("header: %d bytes, need %d", len(b), HeaderLen)
	}
	if b[0]>>4 != 4 {
		return fmt.Errorf("header: version %d is not IPv4", b[0]>>4)
	}
	if ihl := int(b[0]&0xf) * 4; ihl != HeaderLen {
		return fmt.Errorf("header: IHL %d bytes unsupported (options not implemented)", ihl)
	}
	if Checksum(b[:HeaderLen]) != 0 {
		return fmt.Errorf("header: checksum verification failed")
	}
	if tl := binary.BigEndian.Uint16(b[2:]); tl < HeaderLen {
		return fmt.Errorf("header: total length %d below header size", tl)
	}
	h.DSCP = b[1] >> 2
	h.ECN = b[1] & 0b11
	h.TotalLength = binary.BigEndian.Uint16(b[2:])
	h.ID = binary.BigEndian.Uint16(b[4:])
	ff := binary.BigEndian.Uint16(b[6:])
	h.Flags = uint8(ff >> 13)
	h.FragOffset = ff & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Src = netip.AddrFrom4([4]byte(b[12:16]))
	h.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	return nil
}

// Checksum computes the RFC 1071 internet checksum over b. Computing it
// over a header whose checksum field holds the transmitted value yields 0
// for intact headers.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// SetMark stores a PR mark into the header's DSCP field.
func (h *IPv4) SetMark(m Mark) error {
	dscp, err := EncodeDSCP(m)
	if err != nil {
		return err
	}
	h.DSCP = dscp
	return nil
}

// PRMark extracts the PR mark from the header's DSCP field.
func (h *IPv4) PRMark() (Mark, error) { return DecodeDSCP(h.DSCP) }
