// Package header implements the on-the-wire encodings the paper proposes
// (§6) for carrying the PR bit and the DD bits, in two address families:
//
//   - IPv4: inside the DSCP field, using pool 2 of the code-point space
//     (binary xxxx11, RFC 2474 §6) which is reserved for experimental or
//     local use.
//   - IPv6: inside the 20-bit flow label (RFC 6437 permits local use when
//     the label is not otherwise needed), mirroring the DSCP layout so the
//     two codecs agree bit-for-bit on their shared field widths.
//
// Both encodings claim their field inside one administrative domain: the
// domain must bleach (zero or re-mark) the field on traffic entering at
// its edge, as diffserv domains already do for DSCP — host-chosen
// pseudo-random flow labels (RFC 6437) would otherwise collide with the
// pool-2 marker on one in four packets.
//
// A pool-2 DSCP value has its two low-order bits set to 11, leaving the
// four high-order bits free:
//
//	bit 5 (MSB)    : PR bit
//	bits 4..2      : DD value (3 bits)
//	bits 1..0 = 11 : pool-2 marker
//
// The flow-label codec widens the same shape to 20 bits:
//
//	bit 19 (MSB)   : PR bit
//	bits 18..2     : DD value (17 bits)
//	bits 1..0 = 11 : pool-2 marker
//
// Three DD bits cover quantised discriminators up to 7, enough for networks
// of hop diameter ≤ 7 — which includes Abilene (5), GÉANT (5) and the
// Teleglobe reconstruction (6). Larger networks (or weight-sum
// discriminators, once rank-quantised by core.Quantiser) switch to the
// flow-label codec, whose 17 DD bits cover any topology the dataplane's
// 65536-node address plan can express. Encode reports an explicit error
// rather than truncating silently in either codec.
//
// The package also provides minimal IPv4 (checksum-correct) and IPv6 header
// codecs (gopacket-style layers) so the examples and the wire fast path can
// work on real packet bytes.
package header

import (
	"errors"
	"fmt"
)

// DDBits is the DD field width available in DSCP pool 2 alongside the PR
// bit and the pool marker.
const DDBits = 3

// MaxDD is the largest discriminator encodable in the DSCP codec.
const MaxDD = 1<<DDBits - 1

// FlowLabelDDBits is the DD field width available in the 20-bit IPv6 flow
// label alongside the PR bit and the pool marker.
const FlowLabelDDBits = 17

// MaxFlowLabelDD is the largest discriminator encodable in the flow-label
// codec.
const MaxFlowLabelDD = 1<<FlowLabelDDBits - 1

// ErrDDOverflow is returned when a discriminator exceeds the codec's DD
// capacity.
var ErrDDOverflow = errors.New("header: distance discriminator exceeds codec capacity")

// ErrNotPool2 is returned when decoding a value outside pool 2 (low bits
// not 11) in either codec.
var ErrNotPool2 = errors.New("header: value is not in pool 2 (low bits 11)")

// Mark is the PR header state carried by a packet. DD is wide enough for
// the flow-label codec; the DSCP codec accepts only DD ≤ MaxDD.
type Mark struct {
	// PR is the re-cycling bit.
	PR bool
	// DD is the distance discriminator (0..MaxDD for DSCP,
	// 0..MaxFlowLabelDD for the flow label).
	DD uint32
}

// EncodeDSCP packs the mark into a 6-bit DSCP value in pool 2.
func EncodeDSCP(m Mark) (uint8, error) {
	if m.DD > MaxDD {
		return 0, fmt.Errorf("%w: %d > %d (DSCP)", ErrDDOverflow, m.DD, MaxDD)
	}
	v := uint8(0b11) // pool-2 marker
	v |= uint8(m.DD) << 2
	if m.PR {
		v |= 1 << 5
	}
	return v, nil
}

// DecodeDSCP unpacks a pool-2 DSCP value.
func DecodeDSCP(dscp uint8) (Mark, error) {
	if dscp > 0b111111 {
		return Mark{}, fmt.Errorf("header: DSCP %#x exceeds 6 bits", dscp)
	}
	if dscp&0b11 != 0b11 {
		return Mark{}, ErrNotPool2
	}
	return Mark{
		PR: dscp&(1<<5) != 0,
		DD: uint32(dscp>>2) & MaxDD,
	}, nil
}

// EncodeFlowLabel packs the mark into a 20-bit IPv6 flow-label value in
// pool 2 (low bits 11), mirroring the DSCP layout with a 17-bit DD field.
func EncodeFlowLabel(m Mark) (uint32, error) {
	if m.DD > MaxFlowLabelDD {
		return 0, fmt.Errorf("%w: %d > %d (flow label)", ErrDDOverflow, m.DD, MaxFlowLabelDD)
	}
	v := uint32(0b11) // pool-2 marker
	v |= m.DD << 2
	if m.PR {
		v |= 1 << 19
	}
	return v, nil
}

// DecodeFlowLabel unpacks a pool-2 flow-label value.
func DecodeFlowLabel(fl uint32) (Mark, error) {
	if fl > 0xFFFFF {
		return Mark{}, fmt.Errorf("header: flow label %#x exceeds 20 bits", fl)
	}
	if fl&0b11 != 0b11 {
		return Mark{}, ErrNotPool2
	}
	return Mark{
		PR: fl&(1<<19) != 0,
		DD: (fl >> 2) & MaxFlowLabelDD,
	}, nil
}

// FitsHopDiameter reports whether hop-count discriminators of a network
// with the given diameter fit the pool-2 DSCP encoding.
func FitsHopDiameter(diameter int) bool {
	return diameter >= 0 && diameter <= MaxDD
}

// FitsDSCP reports whether a b-bit quantised discriminator code fits the
// DSCP codec; codes needing more bits use the flow-label codec.
func FitsDSCP(bits int) bool { return bits >= 0 && bits <= DDBits }

// FitsFlowLabel reports whether a b-bit quantised discriminator code fits
// the flow-label codec — the widest field the package offers.
func FitsFlowLabel(bits int) bool { return bits >= 0 && bits <= FlowLabelDDBits }
