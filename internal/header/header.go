// Package header implements the on-the-wire encoding the paper proposes
// (§6): carrying the PR bit and the DD bits inside the DSCP field of the
// IPv4 header, using pool 2 of the code-point space (binary xxxx11, RFC
// 2474 §6) which is reserved for experimental or local use.
//
// A pool-2 DSCP value has its two low-order bits set to 11, leaving the
// four high-order bits free:
//
//	bit 5 (MSB)    : PR bit
//	bits 4..2      : DD value (3 bits)
//	bits 1..0 = 11 : pool-2 marker
//
// Three DD bits cover hop-count discriminators up to 7, enough for networks
// of hop diameter ≤ 7 — which includes Abilene (5), GÉANT (5) and the
// Teleglobe reconstruction (6). Larger networks need either weight
// quantisation or a different header field; Encode reports an explicit
// error rather than truncating silently.
//
// The package also provides a minimal, checksum-correct IPv4 header codec
// (gopacket-style layer) so the examples can show PR marking on real
// packet bytes.
package header

import (
	"errors"
	"fmt"
)

// DDBits is the DD field width available in DSCP pool 2 alongside the PR
// bit and the pool marker.
const DDBits = 3

// MaxDD is the largest encodable distance discriminator.
const MaxDD = 1<<DDBits - 1

// ErrDDOverflow is returned when a discriminator exceeds MaxDD.
var ErrDDOverflow = errors.New("header: distance discriminator exceeds DSCP pool-2 capacity")

// ErrNotPool2 is returned when decoding a DSCP value outside pool 2.
var ErrNotPool2 = errors.New("header: DSCP value is not in pool 2 (xxxx11)")

// Mark is the PR header state carried by a packet.
type Mark struct {
	// PR is the re-cycling bit.
	PR bool
	// DD is the distance discriminator (0..MaxDD).
	DD uint8
}

// EncodeDSCP packs the mark into a 6-bit DSCP value in pool 2.
func EncodeDSCP(m Mark) (uint8, error) {
	if m.DD > MaxDD {
		return 0, fmt.Errorf("%w: %d > %d", ErrDDOverflow, m.DD, MaxDD)
	}
	v := uint8(0b11) // pool-2 marker
	v |= m.DD << 2
	if m.PR {
		v |= 1 << 5
	}
	return v, nil
}

// DecodeDSCP unpacks a pool-2 DSCP value.
func DecodeDSCP(dscp uint8) (Mark, error) {
	if dscp > 0b111111 {
		return Mark{}, fmt.Errorf("header: DSCP %#x exceeds 6 bits", dscp)
	}
	if dscp&0b11 != 0b11 {
		return Mark{}, ErrNotPool2
	}
	return Mark{
		PR: dscp&(1<<5) != 0,
		DD: (dscp >> 2) & MaxDD,
	}, nil
}

// FitsHopDiameter reports whether hop-count discriminators of a network
// with the given diameter fit the pool-2 encoding.
func FitsHopDiameter(diameter int) bool {
	return diameter >= 0 && diameter <= MaxDD
}
