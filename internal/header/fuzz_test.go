package header

import (
	"net/netip"
	"testing"
)

// FuzzIPv4Unmarshal hardens the wire decoder: arbitrary bytes must never
// panic, and anything accepted must re-marshal to the identical bytes.
func FuzzIPv4Unmarshal(f *testing.F) {
	valid, _ := (&IPv4{
		DSCP: 0b000111, TotalLength: 20, TTL: 1, Protocol: 6,
		Src: mustAddrF("10.0.0.1"), Dst: mustAddrF("10.0.0.2"),
	}).Marshal()
	f.Add(valid)
	f.Add(make([]byte, 20))
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h IPv4
		if err := h.Unmarshal(data); err != nil {
			return
		}
		out, err := h.Marshal()
		if err != nil {
			t.Fatalf("decoded header fails to marshal: %+v: %v", h, err)
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatalf("byte %d changed on round trip: %#x -> %#x", i, data[i], out[i])
			}
		}
	})
}

// FuzzDecodeDSCP: all 6-bit values either decode to a mark that re-encodes
// to the same value, or are rejected.
func FuzzDecodeDSCP(f *testing.F) {
	f.Add(uint8(0b000011))
	f.Add(uint8(0b111111))
	f.Fuzz(func(t *testing.T, v uint8) {
		m, err := DecodeDSCP(v)
		if err != nil {
			return
		}
		back, err := EncodeDSCP(m)
		if err != nil || back != v {
			t.Fatalf("DSCP %#b: decode/encode mismatch (%#b, %v)", v, back, err)
		}
	})
}

func mustAddrF(s string) netip.Addr { return netip.MustParseAddr(s) }
