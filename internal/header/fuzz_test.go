package header

import (
	"net/netip"
	"testing"
)

// FuzzIPv4Unmarshal hardens the wire decoder: arbitrary bytes must never
// panic, and anything accepted must re-marshal to the identical bytes.
func FuzzIPv4Unmarshal(f *testing.F) {
	valid, _ := (&IPv4{
		DSCP: 0b000111, TotalLength: 20, TTL: 1, Protocol: 6,
		Src: mustAddrF("10.0.0.1"), Dst: mustAddrF("10.0.0.2"),
	}).Marshal()
	f.Add(valid)
	f.Add(make([]byte, 20))
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h IPv4
		if err := h.Unmarshal(data); err != nil {
			return
		}
		out, err := h.Marshal()
		if err != nil {
			t.Fatalf("decoded header fails to marshal: %+v: %v", h, err)
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatalf("byte %d changed on round trip: %#x -> %#x", i, data[i], out[i])
			}
		}
	})
}

// FuzzDecodeDSCP: all 6-bit values either decode to a mark that re-encodes
// to the same value, or are rejected.
func FuzzDecodeDSCP(f *testing.F) {
	f.Add(uint8(0b000011))
	f.Add(uint8(0b111111))
	f.Fuzz(func(t *testing.T, v uint8) {
		m, err := DecodeDSCP(v)
		if err != nil {
			return
		}
		back, err := EncodeDSCP(m)
		if err != nil || back != v {
			t.Fatalf("DSCP %#b: decode/encode mismatch (%#b, %v)", v, back, err)
		}
	})
}

// FuzzDecodeFlowLabel: every 20-bit value either decodes to a mark that
// re-encodes to the identical label, or is rejected; forged labels outside
// pool 2 (low bits ≠ 11) must never decode.
func FuzzDecodeFlowLabel(f *testing.F) {
	f.Add(uint32(0b11))
	f.Add(uint32(0xFFFFF))
	f.Add(uint32(0b10))
	f.Fuzz(func(t *testing.T, v uint32) {
		m, err := DecodeFlowLabel(v)
		if err != nil {
			if v <= 0xFFFFF && v&0b11 == 0b11 {
				t.Fatalf("in-pool flow label %#b rejected: %v", v, err)
			}
			return
		}
		if v > 0xFFFFF || v&0b11 != 0b11 {
			t.Fatalf("forged flow label %#x decoded to %+v", v, m)
		}
		back, err := EncodeFlowLabel(m)
		if err != nil || back != v {
			t.Fatalf("flow label %#b: decode/encode mismatch (%#b, %v)", v, back, err)
		}
	})
}

// FuzzCrossCodecMark: on the field widths the two codecs share, a mark must
// round-trip identically through both — the DSCP path and the flow-label
// path can never disagree about what a packet carries.
func FuzzCrossCodecMark(f *testing.F) {
	f.Add(false, uint32(0))
	f.Add(true, uint32(7))
	f.Fuzz(func(t *testing.T, pr bool, dd uint32) {
		m := Mark{PR: pr, DD: dd % (MaxDD + 1)}
		dscp, err := EncodeDSCP(m)
		if err != nil {
			t.Fatalf("EncodeDSCP(%+v): %v", m, err)
		}
		fl, err := EncodeFlowLabel(m)
		if err != nil {
			t.Fatalf("EncodeFlowLabel(%+v): %v", m, err)
		}
		md, err := DecodeDSCP(dscp)
		if err != nil {
			t.Fatal(err)
		}
		mf, err := DecodeFlowLabel(fl)
		if err != nil {
			t.Fatal(err)
		}
		if md != mf {
			t.Fatalf("codecs disagree: DSCP → %+v, flow label → %+v", md, mf)
		}
		if fl&0b111111 != uint32(dscp)&^(1<<5) {
			t.Fatalf("shared-width layout drifted: flow label %#b vs DSCP %#b", fl, dscp)
		}
	})
}

// FuzzIPv6Unmarshal hardens the IPv6 decoder: arbitrary bytes must never
// panic, and anything accepted must re-marshal to the identical bytes.
func FuzzIPv6Unmarshal(f *testing.F) {
	valid, _ := (&IPv6{
		FlowLabel: 0b010111, PayloadLength: 0, HopLimit: 1, NextHeader: 6,
		Src: mustAddrF("fd00::1"), Dst: mustAddrF("fd00::2"),
	}).Marshal()
	f.Add(valid)
	f.Add(make([]byte, 40))
	f.Add([]byte{0x60})
	f.Fuzz(func(t *testing.T, data []byte) {
		var h IPv6
		if err := h.Unmarshal(data); err != nil {
			return
		}
		out, err := h.Marshal()
		if err != nil {
			// A 4-in-6 or IPv4-mapped source parses but is refused by
			// Marshal; the decoder accepting it is harmless.
			return
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatalf("byte %d changed on round trip: %#x -> %#x", i, data[i], out[i])
			}
		}
	})
}

func mustAddrF(s string) netip.Addr { return netip.MustParseAddr(s) }
