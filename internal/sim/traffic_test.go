package sim

import (
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/graph"
	"recycle/internal/topo"
)

func TestAllPairsTrafficShape(t *testing.T) {
	g := graph.Ring(5)
	flows := TrafficModel{PacketsPerSecond: 1000, Seed: 1}.AllPairs(g)
	if len(flows) != 20 {
		t.Fatalf("flows = %d; want 20 ordered pairs", len(flows))
	}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self-flow generated")
		}
		if f.Interval <= 0 {
			t.Fatal("non-positive interval")
		}
		if f.Start >= f.Interval {
			t.Fatal("start jitter exceeds interval")
		}
	}
	single := graph.New(1, 0)
	single.AddNode("only")
	single.Freeze()
	if got := (TrafficModel{PacketsPerSecond: 10}).AllPairs(single); got != nil {
		t.Fatal("single node should yield no flows")
	}
}

func TestGravityTrafficDeterministicAndDegreeBiased(t *testing.T) {
	tp := topo.Geant(topo.UnitWeights)
	g := tp.Graph
	m := TrafficModel{PacketsPerSecond: 5000, Seed: 9}
	a := m.Gravity(g, 200)
	b := m.Gravity(g, 200)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("flow counts = %d, %d; want 200", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("gravity not deterministic per seed")
		}
	}
	// Degree bias: the max-degree node should appear as an endpoint more
	// often than a min-degree node across the sample.
	var maxNode, minNode graph.NodeID
	for n := 0; n < g.NumNodes(); n++ {
		if g.Degree(graph.NodeID(n)) > g.Degree(maxNode) {
			maxNode = graph.NodeID(n)
		}
		if g.Degree(graph.NodeID(n)) < g.Degree(minNode) {
			minNode = graph.NodeID(n)
		}
	}
	count := func(n graph.NodeID) int {
		c := 0
		for _, f := range a {
			if f.Src == n || f.Dst == n {
				c++
			}
		}
		return c
	}
	if count(maxNode) <= count(minNode) {
		t.Fatalf("degree bias missing: max-degree node in %d flows, min-degree in %d",
			count(maxNode), count(minNode))
	}
}

// TestAllPairsTrafficUnderFailure: an end-to-end multi-flow run over
// Abilene with a failure mid-run — PR keeps aggregate delivery near 1.
func TestAllPairsTrafficUnderFailure(t *testing.T) {
	tp := topo.Abilene(topo.UnitWeights)
	g := tp.Graph
	flows := TrafficModel{PacketsPerSecond: 2000, Seed: 3}.AllPairs(g)
	s, err := New(Config{
		Graph:          g,
		Scheme:         prScheme(t, g, core.Full),
		Horizon:        time.Second,
		DetectionDelay: 10 * time.Millisecond,
		Flows:          flows,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.FailLinkAt(5, 300*time.Millisecond)
	st := s.Run()
	if st.Counter(MetricGenerated) < 1000 {
		t.Fatalf("generated = %d; traffic model too sparse", st.Counter(MetricGenerated))
	}
	if DeliveryRate(st) < 0.99 {
		t.Fatalf("delivery rate = %v; PR should hold ≈1 under one failure", DeliveryRate(st))
	}
}
