package sim

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
	"recycle/internal/traffic"
)

// emission records one packet's birth, observed at its origin router.
type emission struct {
	id   int64
	at   time.Duration
	bits int
}

// recordingScheme wraps a Scheme and records every packet's first Process
// call (hop 0 at its source node) — the emission schedule, observable
// without any simulator test hook.
type recordingScheme struct {
	Scheme
	emissions []emission
}

func (r *recordingScheme) Process(s *Simulator, node graph.NodeID, pkt *Packet) (rotation.DartID, bool) {
	if node == pkt.Src && pkt.Hops == 0 {
		r.emissions = append(r.emissions, emission{id: pkt.ID, at: pkt.Created, bits: pkt.Bits})
	}
	return r.Scheme.Process(s, node, pkt)
}

// TestFixedSourceDifferential pins the refactor's contract: a flow driven
// by traffic.Fixed reproduces the legacy fixed-interval Flow *exactly* —
// same per-packet emission times, IDs and sizes, same aggregate stats —
// on a run that includes a failure and recovery.
func TestFixedSourceDifferential(t *testing.T) {
	tp := topo.Abilene(topo.UnitWeights)
	g := tp.Graph

	run := func(source traffic.Source) (*telemetry.Snapshot, []emission) {
		rec := &recordingScheme{Scheme: prScheme(t, g, core.Full)}
		flows := []Flow{
			{Src: 0, Dst: 5, Interval: 3 * time.Millisecond, Start: time.Millisecond, Source: source},
			{Src: 2, Dst: 8, Interval: 7 * time.Millisecond, Bits: 4096, Source: source},
		}
		if source != nil {
			// Mirror each legacy flow's parameters in its source.
			flows[0].Source = traffic.Fixed{Interval: 3 * time.Millisecond}
			flows[1].Source = traffic.Fixed{Interval: 7 * time.Millisecond, Bits: 4096}
		}
		s, err := New(Config{
			Graph:          g,
			Scheme:         rec,
			Horizon:        400 * time.Millisecond,
			DetectionDelay: 20 * time.Millisecond,
			Flows:          flows,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.FailLinkAt(0, 100*time.Millisecond)
		s.RepairLinkAt(0, 250*time.Millisecond)
		return s.Run(), rec.emissions
	}

	legacyStats, legacyEmit := run(nil)
	sourceStats, sourceEmit := run(traffic.Fixed{}) // sentinel; per-flow sources set inside

	if len(legacyEmit) == 0 {
		t.Fatal("legacy run emitted nothing")
	}
	if !reflect.DeepEqual(legacyEmit, sourceEmit) {
		for i := range legacyEmit {
			if i >= len(sourceEmit) || legacyEmit[i] != sourceEmit[i] {
				t.Fatalf("emission %d differs: legacy %+v vs source %+v (of %d/%d)",
					i, legacyEmit[i], sourceEmit[i], len(legacyEmit), len(sourceEmit))
			}
		}
		t.Fatalf("emission counts differ: legacy %d vs source %d", len(legacyEmit), len(sourceEmit))
	}
	if !reflect.DeepEqual(legacyStats, sourceStats) {
		t.Fatalf("stats differ:\nlegacy %+v\nsource %+v", legacyStats, sourceStats)
	}
}

// TestPoissonSourceDrivesSimulator: Poisson traffic through the
// interpreted PR scheme delivers everything on a healthy network, at
// roughly the configured rate.
func TestPoissonSourceDrivesSimulator(t *testing.T) {
	g := graph.Ring(6)
	s, err := New(Config{
		Graph:   g,
		Scheme:  prScheme(t, g, core.Full),
		Horizon: time.Second,
		Flows: []Flow{
			{Src: 0, Dst: 3, Source: traffic.Poisson{Rate: 2000, Seed: 1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Run()
	if DeliveryRate(st) != 1 {
		t.Fatalf("delivery rate = %v; want 1 without failures", DeliveryRate(st))
	}
	// ~2000 packets in 1 s; ±10% covers Poisson variation at this seed.
	if st.Counter(MetricGenerated) < 1800 || st.Counter(MetricGenerated) > 2200 {
		t.Fatalf("generated = %d; want ≈2000", st.Counter(MetricGenerated))
	}
}

// TestSourcesDriveCompiledEngine: Poisson, MMPP and replay sources drive
// the compiled dataplane — both the FIB scheme and the byte-level wire
// scheme — through a failure, with PR losing only the detection window.
func TestSourcesDriveCompiledEngine(t *testing.T) {
	tp := topo.Abilene(topo.UnitWeights)
	g := tp.Graph
	prot := prScheme(t, g, core.Full).Protocol
	fib, err := dataplane.Compile(prot)
	if err != nil {
		t.Fatal(err)
	}
	sources := []traffic.Source{
		traffic.Poisson{Rate: 1000, Seed: 7},
		traffic.MMPP{RateOn: 5000, MeanOn: 20 * time.Millisecond, MeanOff: 80 * time.Millisecond, Seed: 7},
		traffic.Replay{Records: []traffic.Record{
			{At: 0, Bits: 8192}, {At: 400 * time.Millisecond, Bits: 512},
			{At: 900 * time.Millisecond, Bits: 12000}, {At: 1500 * time.Millisecond, Bits: 8192},
		}},
	}
	for _, src := range sources {
		for _, scheme := range []Scheme{
			&CompiledPRScheme{FIB: fib},
			&WirePRScheme{FIB: fib},
		} {
			res, err := RunLossWindowTraffic(Config{
				Graph:          g,
				Scheme:         scheme,
				Horizon:        2 * time.Second,
				DetectionDelay: 50 * time.Millisecond,
			}, g.NodeByName("Seattle"), g.NodeByName("LosAngeles"), src, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if res.Traffic != src.Name() {
				t.Fatalf("traffic name = %q; want %q", res.Traffic, src.Name())
			}
			if res.Generated == 0 {
				t.Fatalf("%s/%s generated nothing", src.Name(), res.Scheme)
			}
			if res.NoRoute != 0 || res.TTL != 0 {
				t.Fatalf("%s/%s dropped outside the detection window: %+v", src.Name(), res.Scheme, res)
			}
			if res.Delivered+res.Blackhole != res.Generated {
				t.Fatalf("%s/%s unaccounted packets: %+v", src.Name(), res.Scheme, res)
			}
		}
	}
}

// TestReplaySourceEndsFlow: a finite trace emits exactly its records that
// fall before the horizon, then the flow stops.
func TestReplaySourceEndsFlow(t *testing.T) {
	g := graph.Ring(4)
	s, err := New(Config{
		Graph:   g,
		Scheme:  prScheme(t, g, core.Full),
		Horizon: time.Second,
		Flows: []Flow{{Src: 0, Dst: 2, Source: traffic.Replay{Records: []traffic.Record{
			{At: 100 * time.Millisecond, Bits: 8000},
			{At: 200 * time.Millisecond, Bits: 4000},
			{At: 2 * time.Second, Bits: 8000}, // beyond horizon: never emitted
		}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Run()
	if st.Counter(MetricGenerated) != 2 || st.Counter(MetricDelivered) != 2 {
		t.Fatalf("generated/delivered = %d/%d; want 2/2", st.Counter(MetricGenerated), st.Counter(MetricDelivered))
	}
}

// TestFlowValidation: bad flow and source parameters fail New with
// descriptive errors instead of panicking mid-run.
func TestFlowValidation(t *testing.T) {
	g := graph.Ring(4)
	scheme := prScheme(t, g, core.Full)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"src out of range", Config{Flows: []Flow{{Src: 9, Dst: 1, Interval: time.Millisecond}}}, "source node 9 outside"},
		{"dst out of range", Config{Flows: []Flow{{Src: 0, Dst: -2, Interval: time.Millisecond}}}, "destination node -2 outside"},
		{"negative start", Config{Flows: []Flow{{Src: 0, Dst: 1, Interval: time.Millisecond, Start: -time.Second}}}, "negative start"},
		{"negative bits", Config{Flows: []Flow{{Src: 0, Dst: 1, Interval: time.Millisecond, Bits: -8}}}, "negative bits"},
		{"negative rate source", Config{Flows: []Flow{{Src: 0, Dst: 1, Source: traffic.Poisson{Rate: -10}}}}, "non-positive rate"},
		{"zero burst source", Config{Flows: []Flow{{Src: 0, Dst: 1, Source: traffic.MMPP{RateOn: 10, MeanOff: time.Second}}}}, "burst length must be positive"},
		{"negative bandwidth", Config{BandwidthBps: -1}, "negative bandwidth"},
		{"negative detection", Config{DetectionDelay: -time.Second}, "negative detection delay"},
		{"negative holddown", Config{HoldDown: -time.Second}, "negative hold-down"},
		{"negative ttl", Config{TTL: -1}, "negative TTL"},
	}
	for _, c := range cases {
		cfg := c.cfg
		cfg.Graph = g
		cfg.Scheme = scheme
		cfg.Horizon = time.Second
		_, err := New(cfg)
		if err == nil {
			t.Fatalf("%s: New accepted the config", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}
