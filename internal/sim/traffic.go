package sim

import (
	"math/rand"
	"time"

	"recycle/internal/graph"
)

// TrafficModel generates flow sets for simulation runs.
type TrafficModel struct {
	// PacketsPerSecond is the aggregate emission rate across all flows.
	PacketsPerSecond float64
	// Bits per packet (default 8192).
	Bits int
	// Seed drives pair selection and start-time jitter.
	Seed int64
}

// AllPairs spreads the aggregate rate uniformly over every ordered node
// pair — the paper's implicit evaluation workload (every affected pair
// counts equally).
func (m TrafficModel) AllPairs(g *graph.Graph) []Flow {
	n := g.NumNodes()
	pairs := n * (n - 1)
	if pairs == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(m.Seed))
	perFlow := m.PacketsPerSecond / float64(pairs)
	interval := time.Duration(float64(time.Second) / perFlow)
	flows := make([]Flow, 0, pairs)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			flows = append(flows, Flow{
				Src:      graph.NodeID(s),
				Dst:      graph.NodeID(d),
				Interval: interval,
				Bits:     m.Bits,
				Start:    time.Duration(rng.Int63n(int64(interval))),
			})
		}
	}
	return flows
}

// Gravity draws count flows with endpoint probability proportional to node
// degree (a standard stand-in for population/capacity gravity models when
// no traffic matrix is available) and splits the aggregate rate evenly
// among them. Deterministic per seed.
func (m TrafficModel) Gravity(g *graph.Graph, count int) []Flow {
	if count <= 0 || g.NumNodes() < 2 {
		return nil
	}
	rng := rand.New(rand.NewSource(m.Seed))
	// Degree-weighted node sampler.
	var cum []int
	total := 0
	for n := 0; n < g.NumNodes(); n++ {
		total += g.Degree(graph.NodeID(n))
		cum = append(cum, total)
	}
	pick := func() graph.NodeID {
		x := rng.Intn(total)
		for i, c := range cum {
			if x < c {
				return graph.NodeID(i)
			}
		}
		return graph.NodeID(len(cum) - 1)
	}
	perFlow := m.PacketsPerSecond / float64(count)
	interval := time.Duration(float64(time.Second) / perFlow)
	flows := make([]Flow, 0, count)
	for len(flows) < count {
		s, d := pick(), pick()
		if s == d {
			continue
		}
		flows = append(flows, Flow{
			Src:      s,
			Dst:      d,
			Interval: interval,
			Bits:     m.Bits,
			Start:    time.Duration(rng.Int63n(int64(interval))),
		})
	}
	return flows
}
