package sim

import (
	"container/heap"
	"fmt"
	"time"

	"recycle/internal/core"
	"recycle/internal/failure"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/telemetry"
	"recycle/internal/traffic"
)

// Packet is one simulated datagram.
type Packet struct {
	// ID is unique per simulation.
	ID int64
	// Src and Dst are the endpoints.
	Src, Dst graph.NodeID
	// Bits is the packet size on the wire.
	Bits int
	// Created is the emission time.
	Created time.Duration
	// Hops counts traversed links.
	Hops int
	// Ingress is the dart the packet arrived on (NoDart at origin).
	Ingress rotation.DartID
	// Class is the traffic class inherited from the emitting flow, used
	// by per-class policies (§7).
	Class string
	// State carries scheme-specific per-packet data (PR header, FCP
	// carried-failure set). Owned by the scheme.
	State any

	// prHops counts hops spent off the shortest path (detect / cycle /
	// continue decisions), for the recycle-hop histogram.
	prHops int
	// flight is the armed flight-recorder transcript (nil when the
	// packet is not recorded).
	flight *telemetry.Flight
}

// DropReason classifies packet losses.
type DropReason string

// Drop reasons — each is metered under its sim.drop.* counter and
// stamped as the flight transcript's terminal verdict.
const (
	// DropBlackhole: sent onto a physically dead link before local
	// detection fired — the loss window every FRR scheme races against.
	DropBlackhole DropReason = "blackhole"
	// DropNoRoute: the scheme had no usable egress.
	DropNoRoute DropReason = "no-route"
	// DropTTL: hop budget exhausted (forwarding loop under failures).
	DropTTL DropReason = "ttl"
)

// Flow emits packets between two nodes. By default it is fixed-interval
// (Interval/Bits, the legacy behaviour); setting Source drives the flow
// with any traffic arrival process instead — Poisson, MMPP bursts,
// bounded-Pareto sizes, trace replay (package traffic).
type Flow struct {
	Src, Dst graph.NodeID
	// Interval between packets when Source is nil.
	Interval time.Duration
	// Bits per packet when Source is nil (default 8192 = 1 kB, the
	// paper's average size).
	Bits int
	// Start offsets the first packet (for a Source-driven flow, the
	// process origin: the first packet lands at Start plus the source's
	// first inter-arrival gap).
	Start time.Duration
	// Class tags emitted packets for per-class policies (§7).
	Class string
	// Source optionally replaces the fixed-interval process. The
	// simulator mints a fresh deterministic stream per run, so reusing a
	// Config replays identical traffic. traffic.Fixed reproduces the nil
	// behaviour bit-identically (see the differential test).
	Source traffic.Source
}

// Config parameterises a simulation run.
type Config struct {
	// Graph is the topology.
	Graph *graph.Graph
	// Scheme is the forwarding scheme under test.
	Scheme Scheme
	// Flows is the traffic matrix.
	Flows []Flow
	// Horizon ends the run (events after it are discarded).
	Horizon time.Duration
	// LinkDelay converts a link to its propagation delay. Nil defaults to
	// weight-as-kilometres over 200,000 km/s fibre, minimum 10 µs.
	LinkDelay func(l graph.Link) time.Duration
	// BandwidthBps is the serialisation rate of every link (default
	// 9.953 Gb/s, an OC-192).
	BandwidthBps float64
	// DetectionDelay is how long until routers adjacent to a failed link
	// locally detect it (default 50 ms; InstantDetection makes state
	// changes visible to routers in the same instant they happen).
	DetectionDelay time.Duration
	// HoldDown delays acting on link *recovery* (up-transitions) beyond
	// DetectionDelay. The paper's §7 flap-damping rule: a link must stay
	// idle long enough that packets which saw it down cannot meet it up
	// again while still cycle following. Zero means recoveries propagate
	// after DetectionDelay alone.
	HoldDown time.Duration
	// TTL is the hop budget per packet (default 4×nodes).
	TTL int
	// Metrics, when non-nil, is the registry the run meters into —
	// share one registry with an Engine, TxQueue or Recompiler for a
	// single coherent snapshot across the whole pipeline. When nil the
	// simulator meters into a private registry; either way Run returns
	// the run's counter delta, and Simulator.Metrics / Simulator.Timeline
	// expose the registry and the per-epoch fold.
	Metrics *telemetry.Registry
	// Recorder, when non-nil, arms the per-packet flight recorder:
	// sampled or matched packets record their full cycle walk (darts
	// taken, DD codes stamped, recycle events, final verdict).
	Recorder *telemetry.Recorder
}

// Simulator metric names. Counters fold per epoch in the Timeline;
// sim.latency_max_ns is a high-watermark gauge.
const (
	MetricGenerated     = "sim.generated"
	MetricDelivered     = "sim.delivered"
	MetricDropBlackhole = "sim.drop.blackhole"
	MetricDropNoRoute   = "sim.drop.no-route"
	MetricDropTTL       = "sim.drop.ttl"
	MetricLossViolation = "sim.loss.violation"
	MetricLossTransient = "sim.loss.transient"
	MetricLossExcused   = "sim.loss.excused"
	MetricLatencyNs     = "sim.latency_ns"
	MetricLatencyMaxNs  = "sim.latency_max_ns"
	MetricHops          = "sim.hops"
	MetricLatencyUs     = "sim.latency_us"
	MetricRecycleHops   = "sim.recycle_hops"
	MetricStretchPct    = "sim.stretch_pct"
)

// InstantDetection, as Config.DetectionDelay, makes link state changes
// visible to adjacent routers in the very instant they happen (a literal
// zero keeps the 50 ms default). It isolates a scheme's *routing*
// resilience from the hardware loss-of-light latency — which hits every
// scheme identically and is unavoidable by any of them — so the
// resilience harness measures exactly the guarantee the paper states:
// after routers see a failure, does the scheme still deliver?
const InstantDetection = time.Duration(-1)

// Run-delta accessors. A run's outcome IS its telemetry counter delta
// (the sim.* names, see Run); these helpers read the derived quantities
// callers ask for most. The three loss classes partition the drops when
// a scenario oracle is installed (ApplyScenario): a *violation*
// (MetricLossViolation) lost a packet while its pair was physically
// connected and the link state held still — the regime of the paper's
// §1 guarantee; a *transient* (MetricLossTransient) had a failure or
// repair land mid-flight, §7's damped regime; an *excused* loss
// (MetricLossExcused) crossed a partition no scheme can.

// Dropped sums the three sim.drop.* counters of a run delta.
func Dropped(d *telemetry.Snapshot) uint64 {
	return d.Counter(MetricDropBlackhole) + d.Counter(MetricDropNoRoute) + d.Counter(MetricDropTTL)
}

// DeliveryRate is delivered / generated (1 when nothing was generated).
func DeliveryRate(d *telemetry.Snapshot) float64 {
	g := d.Counter(MetricGenerated)
	if g == 0 {
		return 1
	}
	return float64(d.Counter(MetricDelivered)) / float64(g)
}

// MeanLatency is the average delivery latency of a run delta (0 when
// none delivered).
func MeanLatency(d *telemetry.Snapshot) time.Duration {
	n := d.Counter(MetricDelivered)
	if n == 0 {
		return 0
	}
	return time.Duration(d.Counter(MetricLatencyNs) / n)
}

// MaxLatency is the run's latency high watermark (the
// sim.latency_max_ns gauge).
func MaxLatency(d *telemetry.Snapshot) time.Duration {
	return time.Duration(d.Gauge(MetricLatencyMaxNs))
}

// Simulator executes one configuration. Create with New, inject failures
// with FailLinkAt / RepairLinkAt, then Run.
type Simulator struct {
	cfg   Config
	g     *graph.Graph
	queue eventHeap
	seq   int64
	now   time.Duration

	physDown  []bool            // physical link state
	linkGen   []uint64          // physical state generation, for flap damping
	knownDown *graph.FailureSet // locally detected state, fed to schemes
	linkFree  []time.Duration   // next instant each link's transmitter is idle (per direction)
	streams   []traffic.Stream  // per-flow emission streams (nil = legacy fixed-interval)
	oracle    *failure.Oracle   // loss referee installed by ApplyScenario (nil = don't classify)

	reg      *telemetry.Registry
	met      *simMetrics
	timeline *telemetry.Timeline // created at Run start, rolled on link events
	hopDist  map[graph.NodeID][]int
	hopGen   *graph.Graph // graph hopDist was computed over (topology updates invalidate)

	nextPacketID int64
}

// simMetrics is the referee's resolved instrument set: handles and
// histograms looked up once in New, so the event loop never touches
// the registry's lock.
type simMetrics struct {
	generated, delivered                      telemetry.CounterHandle
	dropBlackhole, dropNoRoute, dropTTL       telemetry.CounterHandle
	lossViolation, lossTransient, lossExcused telemetry.CounterHandle
	latencyNs, hops                           telemetry.CounterHandle
	latencyMax                                *telemetry.Gauge
	latencyUs, recycleHops, stretchPct        telemetry.HistogramHandle
}

func newSimMetrics(r *telemetry.Registry) *simMetrics {
	return &simMetrics{
		generated:     r.Counter(MetricGenerated).Handle(),
		delivered:     r.Counter(MetricDelivered).Handle(),
		dropBlackhole: r.Counter(MetricDropBlackhole).Handle(),
		dropNoRoute:   r.Counter(MetricDropNoRoute).Handle(),
		dropTTL:       r.Counter(MetricDropTTL).Handle(),
		lossViolation: r.Counter(MetricLossViolation).Handle(),
		lossTransient: r.Counter(MetricLossTransient).Handle(),
		lossExcused:   r.Counter(MetricLossExcused).Handle(),
		latencyNs:     r.Counter(MetricLatencyNs).Handle(),
		hops:          r.Counter(MetricHops).Handle(),
		latencyMax:    r.Gauge(MetricLatencyMaxNs),
		// 10 µs .. ~2.6 s delivery latency.
		latencyUs: r.Histogram(MetricLatencyUs, telemetry.ExponentialBuckets(10, 4, 9)).Handle(),
		// 0, 1, 2, ... 15 hops off the shortest path (16+ overflows).
		recycleHops: r.Histogram(MetricRecycleHops, telemetry.LinearBuckets(0, 1, 16)).Handle(),
		// Path stretch 100% (no stretch) .. 400%+, 25-point steps.
		stretchPct: r.Histogram(MetricStretchPct, telemetry.LinearBuckets(100, 25, 13)).Handle(),
	}
}

// New validates the configuration and prepares a simulator. Every flow
// and source parameter is checked up front with a descriptive error —
// a bad rate or dwell time fails here, not as a panic mid-run.
func New(cfg Config) (*Simulator, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("sim: nil graph")
	}
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("sim: nil scheme")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon must be positive")
	}
	if cfg.BandwidthBps < 0 {
		return nil, fmt.Errorf("sim: negative bandwidth %g bps", cfg.BandwidthBps)
	}
	if cfg.DetectionDelay < 0 && cfg.DetectionDelay != InstantDetection {
		return nil, fmt.Errorf("sim: negative detection delay %v", cfg.DetectionDelay)
	}
	if cfg.HoldDown < 0 {
		return nil, fmt.Errorf("sim: negative hold-down %v", cfg.HoldDown)
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("sim: negative TTL %d", cfg.TTL)
	}
	if cfg.BandwidthBps == 0 {
		cfg.BandwidthBps = 9.953e9
	}
	if cfg.DetectionDelay == 0 {
		cfg.DetectionDelay = 50 * time.Millisecond
	} else if cfg.DetectionDelay == InstantDetection {
		cfg.DetectionDelay = 0
	}
	if cfg.TTL == 0 {
		cfg.TTL = 4 * cfg.Graph.NumNodes()
	}
	if cfg.LinkDelay == nil {
		cfg.LinkDelay = func(l graph.Link) time.Duration {
			d := time.Duration(l.Weight / 200_000 * float64(time.Second))
			if d < 10*time.Microsecond {
				d = 10 * time.Microsecond
			}
			return d
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Simulator{
		cfg:       cfg,
		g:         cfg.Graph,
		physDown:  make([]bool, cfg.Graph.NumLinks()),
		linkGen:   make([]uint64, cfg.Graph.NumLinks()),
		knownDown: graph.NewFailureSet(),
		linkFree:  make([]time.Duration, 2*cfg.Graph.NumLinks()),
		streams:   make([]traffic.Stream, len(cfg.Flows)),
		reg:       reg,
		met:       newSimMetrics(reg),
	}
	for i, f := range cfg.Flows {
		if err := validateFlow(cfg.Graph, i, f); err != nil {
			return nil, err
		}
		if f.Source == nil {
			// Legacy fixed-interval path, kept verbatim: the differential
			// test pins traffic.Fixed bit-identical to it.
			s.schedule(&event{at: f.Start, kind: evGenerate, flow: i})
			continue
		}
		st := f.Source.Stream()
		s.streams[i] = st
		if gap, bits, ok := st.Next(); ok {
			s.schedule(&event{at: f.Start + gap, kind: evGenerate, flow: i, bits: bits})
		}
	}
	return s, nil
}

// validateFlow checks one flow's parameters, including its source's.
func validateFlow(g *graph.Graph, i int, f Flow) error {
	n := g.NumNodes()
	if f.Src < 0 || int(f.Src) >= n {
		return fmt.Errorf("sim: flow %d source node %d outside [0, %d)", i, f.Src, n)
	}
	if f.Dst < 0 || int(f.Dst) >= n {
		return fmt.Errorf("sim: flow %d destination node %d outside [0, %d)", i, f.Dst, n)
	}
	if f.Start < 0 {
		return fmt.Errorf("sim: flow %d has negative start %v", i, f.Start)
	}
	if f.Source != nil {
		if err := f.Source.Validate(); err != nil {
			return fmt.Errorf("sim: flow %d: %w", i, err)
		}
		return nil
	}
	if f.Interval <= 0 {
		return fmt.Errorf("sim: flow %d has non-positive interval", i)
	}
	if f.Bits < 0 {
		return fmt.Errorf("sim: flow %d has negative bits %d", i, f.Bits)
	}
	return nil
}

// Now returns the current simulated time (useful to schemes).
func (s *Simulator) Now() time.Duration { return s.now }

// KnownFailures returns the locally detected failure set schemes route
// around. Schemes must not mutate it.
func (s *Simulator) KnownFailures() *graph.FailureSet { return s.knownDown }

// Graph returns the topology.
func (s *Simulator) Graph() *graph.Graph { return s.g }

// FailLinkAt schedules a bidirectional link failure.
func (s *Simulator) FailLinkAt(l graph.LinkID, at time.Duration) {
	s.schedule(&event{at: at, kind: evLinkDown, link: l})
}

// RepairLinkAt schedules a link repair.
func (s *Simulator) RepairLinkAt(l graph.LinkID, at time.Duration) {
	s.schedule(&event{at: at, kind: evLinkUp, link: l})
}

// FailNodeAt schedules a whole-node outage: every link incident to n
// fails at the same instant. This is the timed-event counterpart of
// graph.FailNode — the paper's §4 model of a dead router (all its links
// failing bidirectionally) as a first-class sim event.
func (s *Simulator) FailNodeAt(n graph.NodeID, at time.Duration) {
	for _, nb := range s.g.Neighbors(n) {
		s.FailLinkAt(nb.Link, at)
	}
}

// RepairNodeAt schedules the node's return: every incident link repairs
// at the same instant. Pair with FailNodeAt; a link the node shares with
// another scheduled outage repairs here regardless — prefer
// ApplyScenario, which merges overlapping outages, when composing
// multi-cause histories.
func (s *Simulator) RepairNodeAt(n graph.NodeID, at time.Duration) {
	for _, nb := range s.g.Neighbors(n) {
		s.RepairLinkAt(nb.Link, at)
	}
}

// ApplyScenario expands a failure scenario into its normalised fail/
// repair event sequence (overlapping outages of one link merged, node
// outages expanded to incident links — see failure.Scenario.Events) and
// schedules it, then installs the scenario's connectivity oracle: every
// subsequent packet loss is refereed into Stats.Violations (pair
// connected, state stable over the packet's lifetime — counts against
// the scheme), Stats.Transient (pair connected but the state changed
// mid-flight, §7's damped regime) or Stats.Excused (the pair was
// partitioned at some instant — no scheme delivers across a partition).
func (s *Simulator) ApplyScenario(sc *failure.Scenario) error {
	events, err := sc.Events(s.g)
	if err != nil {
		return err
	}
	oracle, err := failure.NewOracle(s.g, sc)
	if err != nil {
		return err
	}
	for _, e := range events {
		if e.Down {
			s.FailLinkAt(e.Link, e.At)
		} else {
			s.RepairLinkAt(e.Link, e.At)
		}
	}
	s.oracle = oracle
	return nil
}

// Oracle returns the connectivity oracle installed by ApplyScenario
// (nil before it).
func (s *Simulator) Oracle() *failure.Oracle { return s.oracle }

// Metrics returns the registry the run meters into — Config.Metrics
// when one was supplied, the simulator's private registry otherwise.
func (s *Simulator) Metrics() *telemetry.Registry { return s.reg }

// Timeline returns the per-epoch fold of the run's counters: one epoch
// per link-state transition instant, aligned with the oracle's epoch
// numbering (same-instant events share a boundary). Nil before Run.
func (s *Simulator) Timeline() *telemetry.Timeline { return s.timeline }

// classifyLoss referees one drop against the scenario oracle.
func (s *Simulator) classifyLoss(pkt *Packet) {
	if s.oracle == nil {
		return
	}
	switch {
	case !s.oracle.ConnectedThroughout(pkt.Src, pkt.Dst, pkt.Created, s.now):
		s.met.lossExcused.Inc()
	case !s.oracle.StableThroughout(pkt.Created, s.now):
		s.met.lossTransient.Inc()
	default:
		s.met.lossViolation.Inc()
	}
}

// drop retires a lost packet: count the reason, referee it, close its
// flight transcript.
func (s *Simulator) drop(pkt *Packet, reason DropReason, c telemetry.CounterHandle) {
	c.Inc()
	s.met.recycleHops.Observe(int64(pkt.prHops))
	s.classifyLoss(pkt)
	if pkt.flight != nil {
		s.cfg.Recorder.Finish(pkt.flight, string(reason), s.now)
	}
}

// headerOf reads the packet's PR header when the scheme keeps one.
func headerOf(pkt *Packet) core.Header {
	h, _ := pkt.State.(core.Header)
	return h
}

// decisionEvent attributes the scheme's last Process decision: schemes
// implementing Explainer report it exactly; otherwise it is inferred
// from the PR bit (on the cycle vs. plain routing).
func (s *Simulator) decisionEvent(pkt *Packet) core.Event {
	if ex, ok := s.cfg.Scheme.(Explainer); ok {
		return ex.LastEvent()
	}
	if h, ok := pkt.State.(core.Header); ok && h.PR {
		return core.EventCycle
	}
	return core.EventRoute
}

// shortestHops returns the failure-free hop distance src→dst (−1 when
// unreachable), BFS'd once per source and cached; a topology update
// swapping the graph invalidates the cache.
func (s *Simulator) shortestHops(src, dst graph.NodeID) int {
	if s.hopGen != s.g {
		s.hopDist = make(map[graph.NodeID][]int)
		s.hopGen = s.g
	}
	d, ok := s.hopDist[src]
	if !ok {
		d = graph.HopDistances(s.g, src, nil)
		s.hopDist[src] = d
	}
	if int(dst) < len(d) {
		return d[dst]
	}
	return -1
}

// UpdateTopologyAt schedules a planned topology change — the maintenance
// scenario class: link weights shift (drain or cost-out) or new links
// come up mid-run. Schemes implementing TopologyUpdater (e.g. a compiled
// PR scheme with a delta recompiler) react; everything else keeps
// forwarding on its pre-maintenance tables, exactly like a router the
// control plane has not reached yet.
//
// Removals are rejected: they renumber the live link space under
// in-flight packets. Model a decommission as a weight cost-out (drain)
// followed by FailLinkAt — which is how operators do it anyway.
func (s *Simulator) UpdateTopologyAt(at time.Duration, edits ...graph.Edit) error {
	if len(edits) == 0 {
		return fmt.Errorf("sim: empty topology update")
	}
	for _, e := range edits {
		if e.Kind == graph.EditRemoveLink {
			return fmt.Errorf("sim: %v not schedulable mid-run; drain the link (SetWeight) and FailLinkAt instead", e)
		}
		if e.Kind != graph.EditWeight && e.Kind != graph.EditAddLink {
			return fmt.Errorf("sim: unknown edit kind in %v", e)
		}
	}
	s.schedule(&event{at: at, kind: evTopoUpdate, edits: edits})
	return nil
}

// TopologyUpdater is implemented by schemes that react to planned
// topology changes (UpdateTopologyAt). The simulator's graph has already
// been swapped when the hook runs; edits describe the change.
type TopologyUpdater interface {
	TopologyUpdated(s *Simulator, edits []graph.Edit)
}

// applyTopoUpdate swaps the simulator onto the edited graph, growing the
// per-link state for any added links, then notifies the scheme.
func (s *Simulator) applyTopoUpdate(edits []graph.Edit) {
	g2, _, err := graph.ApplyEdits(s.g, edits)
	if err != nil {
		// UpdateTopologyAt screened the edit kinds; a failure here is a
		// malformed maintenance plan (bad link/node IDs) — a caller bug.
		panic(fmt.Sprintf("sim: topology update failed: %v", err))
	}
	for grow := g2.NumLinks() - s.g.NumLinks(); grow > 0; grow-- {
		s.physDown = append(s.physDown, false)
		s.linkGen = append(s.linkGen, 0)
		s.linkFree = append(s.linkFree, 0, 0)
	}
	s.g = g2
	if tu, ok := s.cfg.Scheme.(TopologyUpdater); ok {
		tu.TopologyUpdated(s, edits)
	}
}

func (s *Simulator) schedule(e *event) {
	// The horizon caps packet generation only; deliveries, detections and
	// convergences in flight at the horizon still drain, so every
	// generated packet gets a definite fate.
	if e.kind == evGenerate && e.at > s.cfg.Horizon {
		return
	}
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

// Run drains the event queue up to the horizon and returns the run's
// telemetry counter delta — what *this* run accumulated under the
// sim.* names, scoped by a base snapshot so a shared registry
// (Config.Metrics reused across runs, or fed by an engine) never
// double-counts. See Metrics / Timeline for the live surface.
func (s *Simulator) Run() *telemetry.Snapshot {
	base := s.reg.Snapshot()
	s.timeline = telemetry.NewTimeline(s.reg)
	s.cfg.Scheme.Init(s)
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		switch e.kind {
		case evGenerate:
			s.handleGenerate(e.flow, e.bits)
		case evArrive:
			s.handleArrive(e.pkt, e.node)
		case evLinkDown:
			// A physical transition opens the next oracle epoch; fold the
			// counters accumulated so far into the closing one.
			s.timeline.Roll(e.at, fmt.Sprintf("link %d down", e.link))
			s.physDown[e.link] = true
			s.linkGen[e.link]++
			if s.cfg.DetectionDelay == 0 {
				// InstantDetection: apply atomically with the physical
				// transition, so no same-instant arrival can slip between
				// the failure and its detection.
				s.knownDown.Add(e.link)
				s.cfg.Scheme.TopologyChanged(s, e.link, true)
				break
			}
			s.schedule(&event{at: s.now + s.cfg.DetectionDelay, kind: evDetect,
				link: e.link, down: true, gen: s.linkGen[e.link]})
		case evLinkUp:
			s.timeline.Roll(e.at, fmt.Sprintf("link %d up", e.link))
			s.physDown[e.link] = false
			s.linkGen[e.link]++
			if s.cfg.DetectionDelay == 0 && s.cfg.HoldDown == 0 {
				s.knownDown.Remove(e.link)
				s.cfg.Scheme.TopologyChanged(s, e.link, false)
				break
			}
			// §7 flap damping: recoveries additionally wait out the
			// hold-down before routers act on them.
			s.schedule(&event{at: s.now + s.cfg.DetectionDelay + s.cfg.HoldDown, kind: evDetect,
				link: e.link, down: false, gen: s.linkGen[e.link]})
		case evDetect:
			if e.gen != s.linkGen[e.link] {
				break // the link flapped again before this took effect
			}
			if e.down {
				s.knownDown.Add(e.link)
			} else {
				s.knownDown.Remove(e.link)
			}
			s.cfg.Scheme.TopologyChanged(s, e.link, e.down)
		case evConverge:
			s.cfg.Scheme.Converge(s)
		case evTopoUpdate:
			s.applyTopoUpdate(e.edits)
		}
	}
	end := s.now
	if end < s.cfg.Horizon {
		end = s.cfg.Horizon
	}
	s.timeline.Finish(end)
	return s.reg.Snapshot().Sub(base)
}

// ScheduleConvergeAt lets schemes request a convergence-complete callback.
func (s *Simulator) ScheduleConvergeAt(at time.Duration) {
	s.schedule(&event{at: at, kind: evConverge})
}

func (s *Simulator) handleGenerate(flowIdx, bits int) {
	f := s.cfg.Flows[flowIdx]
	stream := s.streams[flowIdx]
	if stream == nil {
		// Legacy fixed-interval flow: the event carries no size.
		bits = f.Bits
		if bits == 0 {
			bits = 8192
		}
	}
	pkt := &Packet{
		ID:      s.nextPacketID,
		Src:     f.Src,
		Dst:     f.Dst,
		Bits:    bits,
		Created: s.now,
		Ingress: rotation.NoDart,
		Class:   f.Class,
	}
	s.nextPacketID++
	s.met.generated.Inc()
	if s.cfg.Recorder != nil {
		pkt.flight = s.cfg.Recorder.Begin(pkt.ID, pkt.Src, pkt.Dst, s.now)
	}
	// Schedule the flow's next emission, then process this packet.
	if stream == nil {
		s.schedule(&event{at: s.now + f.Interval, kind: evGenerate, flow: flowIdx})
	} else if gap, nbits, ok := stream.Next(); ok {
		s.schedule(&event{at: s.now + gap, kind: evGenerate, flow: flowIdx, bits: nbits})
	}
	s.handleArrive(pkt, f.Src)
}

func (s *Simulator) handleArrive(pkt *Packet, node graph.NodeID) {
	if node == pkt.Dst {
		lat := s.now - pkt.Created
		s.met.delivered.Inc()
		s.met.latencyNs.Add(uint64(lat))
		s.met.hops.Add(uint64(pkt.Hops))
		s.met.latencyMax.SetMax(int64(lat))
		s.met.latencyUs.Observe(int64(lat / time.Microsecond))
		s.met.recycleHops.Observe(int64(pkt.prHops))
		if base := s.shortestHops(pkt.Src, pkt.Dst); base > 0 {
			s.met.stretchPct.Observe(int64(100 * pkt.Hops / base))
		}
		if pkt.flight != nil {
			pkt.flight.Record(telemetry.Hop{At: s.now, Node: node, Ingress: pkt.Ingress,
				Egress: rotation.NoDart, Event: core.EventDeliver, Header: headerOf(pkt)})
			s.cfg.Recorder.Finish(pkt.flight, "delivered", s.now)
		}
		return
	}
	if pkt.Hops >= s.cfg.TTL {
		s.drop(pkt, DropTTL, s.met.dropTTL)
		return
	}
	egress, ok := s.cfg.Scheme.Process(s, node, pkt)
	if !ok {
		s.drop(pkt, DropNoRoute, s.met.dropNoRoute)
		return
	}
	ev := s.decisionEvent(pkt)
	switch ev {
	case core.EventDetect, core.EventCycle, core.EventContinue:
		pkt.prHops++
	}
	if pkt.flight != nil {
		pkt.flight.Record(telemetry.Hop{At: s.now, Node: node, Ingress: pkt.Ingress,
			Egress: egress, Event: ev, Header: headerOf(pkt)})
	}
	link := rotation.LinkOf(egress)
	if s.physDown[link] {
		// The scheme chose a dead link (failure not yet locally
		// detected): the packet is lost in the outage.
		s.drop(pkt, DropBlackhole, s.met.dropBlackhole)
		return
	}
	// FIFO serialisation per link direction, then propagation.
	txTime := time.Duration(float64(pkt.Bits) / s.cfg.BandwidthBps * float64(time.Second))
	start := s.now
	if s.linkFree[egress] > start {
		start = s.linkFree[egress]
	}
	done := start + txTime
	s.linkFree[egress] = done
	arrive := done + s.cfg.LinkDelay(s.g.Link(link))
	pkt.Hops++
	pkt.Ingress = egress
	next := s.g.Link(link).Other(node)
	s.schedule(&event{at: arrive, kind: evArrive, pkt: pkt, node: next})
}
