package sim

import (
	"container/heap"
	"fmt"
	"time"

	"recycle/internal/failure"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/traffic"
)

// Packet is one simulated datagram.
type Packet struct {
	// ID is unique per simulation.
	ID int64
	// Src and Dst are the endpoints.
	Src, Dst graph.NodeID
	// Bits is the packet size on the wire.
	Bits int
	// Created is the emission time.
	Created time.Duration
	// Hops counts traversed links.
	Hops int
	// Ingress is the dart the packet arrived on (NoDart at origin).
	Ingress rotation.DartID
	// Class is the traffic class inherited from the emitting flow, used
	// by per-class policies (§7).
	Class string
	// State carries scheme-specific per-packet data (PR header, FCP
	// carried-failure set). Owned by the scheme.
	State any
}

// DropReason classifies packet losses.
type DropReason string

// Drop reasons reported in Stats.Drops.
const (
	// DropBlackhole: sent onto a physically dead link before local
	// detection fired — the loss window every FRR scheme races against.
	DropBlackhole DropReason = "blackhole"
	// DropNoRoute: the scheme had no usable egress.
	DropNoRoute DropReason = "no-route"
	// DropTTL: hop budget exhausted (forwarding loop under failures).
	DropTTL DropReason = "ttl"
)

// Flow emits packets between two nodes. By default it is fixed-interval
// (Interval/Bits, the legacy behaviour); setting Source drives the flow
// with any traffic arrival process instead — Poisson, MMPP bursts,
// bounded-Pareto sizes, trace replay (package traffic).
type Flow struct {
	Src, Dst graph.NodeID
	// Interval between packets when Source is nil.
	Interval time.Duration
	// Bits per packet when Source is nil (default 8192 = 1 kB, the
	// paper's average size).
	Bits int
	// Start offsets the first packet (for a Source-driven flow, the
	// process origin: the first packet lands at Start plus the source's
	// first inter-arrival gap).
	Start time.Duration
	// Class tags emitted packets for per-class policies (§7).
	Class string
	// Source optionally replaces the fixed-interval process. The
	// simulator mints a fresh deterministic stream per run, so reusing a
	// Config replays identical traffic. traffic.Fixed reproduces the nil
	// behaviour bit-identically (see the differential test).
	Source traffic.Source
}

// Config parameterises a simulation run.
type Config struct {
	// Graph is the topology.
	Graph *graph.Graph
	// Scheme is the forwarding scheme under test.
	Scheme Scheme
	// Flows is the traffic matrix.
	Flows []Flow
	// Horizon ends the run (events after it are discarded).
	Horizon time.Duration
	// LinkDelay converts a link to its propagation delay. Nil defaults to
	// weight-as-kilometres over 200,000 km/s fibre, minimum 10 µs.
	LinkDelay func(l graph.Link) time.Duration
	// BandwidthBps is the serialisation rate of every link (default
	// 9.953 Gb/s, an OC-192).
	BandwidthBps float64
	// DetectionDelay is how long until routers adjacent to a failed link
	// locally detect it (default 50 ms; InstantDetection makes state
	// changes visible to routers in the same instant they happen).
	DetectionDelay time.Duration
	// HoldDown delays acting on link *recovery* (up-transitions) beyond
	// DetectionDelay. The paper's §7 flap-damping rule: a link must stay
	// idle long enough that packets which saw it down cannot meet it up
	// again while still cycle following. Zero means recoveries propagate
	// after DetectionDelay alone.
	HoldDown time.Duration
	// TTL is the hop budget per packet (default 4×nodes).
	TTL int
}

// InstantDetection, as Config.DetectionDelay, makes link state changes
// visible to adjacent routers in the very instant they happen (a literal
// zero keeps the 50 ms default). It isolates a scheme's *routing*
// resilience from the hardware loss-of-light latency — which hits every
// scheme identically and is unavoidable by any of them — so the
// resilience harness measures exactly the guarantee the paper states:
// after routers see a failure, does the scheme still deliver?
const InstantDetection = time.Duration(-1)

// Stats aggregates a run's outcomes.
type Stats struct {
	Generated int
	Delivered int
	Drops     map[DropReason]int
	// Violations, Transient and Excused partition the drops when a
	// scenario oracle is installed (ApplyScenario). A loss is a
	// *violation* when the src–dst pair was physically connected AND the
	// link state held constant throughout the packet's lifetime — the
	// scheme had a live path, nothing changed underneath it, and it lost
	// the packet anyway: exactly the regime of the paper's §1 guarantee.
	// It is *transient* when the pair stayed connected but a failure or
	// repair took effect mid-flight — the §7 in-flight-across-a-change
	// regime no scheme guarantees and damping mitigates. It is *excused*
	// when the pair was physically partitioned at some instant of the
	// packet's lifetime: no scheme can deliver across a partition.
	// Without an oracle all three stay zero.
	Violations int
	Transient  int
	Excused    int
	// TotalLatency accumulates delivery latencies; divide by Delivered
	// for the mean.
	TotalLatency time.Duration
	MaxLatency   time.Duration
	TotalHops    int
}

// Dropped sums all drop reasons.
func (s *Stats) Dropped() int {
	n := 0
	for _, c := range s.Drops {
		n += c
	}
	return n
}

// DeliveryRate is Delivered / Generated (1 when nothing was generated).
func (s *Stats) DeliveryRate() float64 {
	if s.Generated == 0 {
		return 1
	}
	return float64(s.Delivered) / float64(s.Generated)
}

// MeanLatency is the average delivery latency (0 when none delivered).
func (s *Stats) MeanLatency() time.Duration {
	if s.Delivered == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(s.Delivered)
}

// Simulator executes one configuration. Create with New, inject failures
// with FailLinkAt / RepairLinkAt, then Run.
type Simulator struct {
	cfg   Config
	g     *graph.Graph
	queue eventHeap
	seq   int64
	now   time.Duration

	physDown  []bool            // physical link state
	linkGen   []uint64          // physical state generation, for flap damping
	knownDown *graph.FailureSet // locally detected state, fed to schemes
	linkFree  []time.Duration   // next instant each link's transmitter is idle (per direction)
	streams   []traffic.Stream  // per-flow emission streams (nil = legacy fixed-interval)
	oracle    *failure.Oracle   // loss referee installed by ApplyScenario (nil = don't classify)

	nextPacketID int64
	// Stats is populated during Run.
	Stats Stats
}

// New validates the configuration and prepares a simulator. Every flow
// and source parameter is checked up front with a descriptive error —
// a bad rate or dwell time fails here, not as a panic mid-run.
func New(cfg Config) (*Simulator, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("sim: nil graph")
	}
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("sim: nil scheme")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon must be positive")
	}
	if cfg.BandwidthBps < 0 {
		return nil, fmt.Errorf("sim: negative bandwidth %g bps", cfg.BandwidthBps)
	}
	if cfg.DetectionDelay < 0 && cfg.DetectionDelay != InstantDetection {
		return nil, fmt.Errorf("sim: negative detection delay %v", cfg.DetectionDelay)
	}
	if cfg.HoldDown < 0 {
		return nil, fmt.Errorf("sim: negative hold-down %v", cfg.HoldDown)
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("sim: negative TTL %d", cfg.TTL)
	}
	if cfg.BandwidthBps == 0 {
		cfg.BandwidthBps = 9.953e9
	}
	if cfg.DetectionDelay == 0 {
		cfg.DetectionDelay = 50 * time.Millisecond
	} else if cfg.DetectionDelay == InstantDetection {
		cfg.DetectionDelay = 0
	}
	if cfg.TTL == 0 {
		cfg.TTL = 4 * cfg.Graph.NumNodes()
	}
	if cfg.LinkDelay == nil {
		cfg.LinkDelay = func(l graph.Link) time.Duration {
			d := time.Duration(l.Weight / 200_000 * float64(time.Second))
			if d < 10*time.Microsecond {
				d = 10 * time.Microsecond
			}
			return d
		}
	}
	s := &Simulator{
		cfg:       cfg,
		g:         cfg.Graph,
		physDown:  make([]bool, cfg.Graph.NumLinks()),
		linkGen:   make([]uint64, cfg.Graph.NumLinks()),
		knownDown: graph.NewFailureSet(),
		linkFree:  make([]time.Duration, 2*cfg.Graph.NumLinks()),
		streams:   make([]traffic.Stream, len(cfg.Flows)),
	}
	for i, f := range cfg.Flows {
		if err := validateFlow(cfg.Graph, i, f); err != nil {
			return nil, err
		}
		if f.Source == nil {
			// Legacy fixed-interval path, kept verbatim: the differential
			// test pins traffic.Fixed bit-identical to it.
			s.schedule(&event{at: f.Start, kind: evGenerate, flow: i})
			continue
		}
		st := f.Source.Stream()
		s.streams[i] = st
		if gap, bits, ok := st.Next(); ok {
			s.schedule(&event{at: f.Start + gap, kind: evGenerate, flow: i, bits: bits})
		}
	}
	return s, nil
}

// validateFlow checks one flow's parameters, including its source's.
func validateFlow(g *graph.Graph, i int, f Flow) error {
	n := g.NumNodes()
	if f.Src < 0 || int(f.Src) >= n {
		return fmt.Errorf("sim: flow %d source node %d outside [0, %d)", i, f.Src, n)
	}
	if f.Dst < 0 || int(f.Dst) >= n {
		return fmt.Errorf("sim: flow %d destination node %d outside [0, %d)", i, f.Dst, n)
	}
	if f.Start < 0 {
		return fmt.Errorf("sim: flow %d has negative start %v", i, f.Start)
	}
	if f.Source != nil {
		if err := f.Source.Validate(); err != nil {
			return fmt.Errorf("sim: flow %d: %w", i, err)
		}
		return nil
	}
	if f.Interval <= 0 {
		return fmt.Errorf("sim: flow %d has non-positive interval", i)
	}
	if f.Bits < 0 {
		return fmt.Errorf("sim: flow %d has negative bits %d", i, f.Bits)
	}
	return nil
}

// Now returns the current simulated time (useful to schemes).
func (s *Simulator) Now() time.Duration { return s.now }

// KnownFailures returns the locally detected failure set schemes route
// around. Schemes must not mutate it.
func (s *Simulator) KnownFailures() *graph.FailureSet { return s.knownDown }

// Graph returns the topology.
func (s *Simulator) Graph() *graph.Graph { return s.g }

// FailLinkAt schedules a bidirectional link failure.
func (s *Simulator) FailLinkAt(l graph.LinkID, at time.Duration) {
	s.schedule(&event{at: at, kind: evLinkDown, link: l})
}

// RepairLinkAt schedules a link repair.
func (s *Simulator) RepairLinkAt(l graph.LinkID, at time.Duration) {
	s.schedule(&event{at: at, kind: evLinkUp, link: l})
}

// FailNodeAt schedules a whole-node outage: every link incident to n
// fails at the same instant. This is the timed-event counterpart of
// graph.FailNode — the paper's §4 model of a dead router (all its links
// failing bidirectionally) as a first-class sim event.
func (s *Simulator) FailNodeAt(n graph.NodeID, at time.Duration) {
	for _, nb := range s.g.Neighbors(n) {
		s.FailLinkAt(nb.Link, at)
	}
}

// RepairNodeAt schedules the node's return: every incident link repairs
// at the same instant. Pair with FailNodeAt; a link the node shares with
// another scheduled outage repairs here regardless — prefer
// ApplyScenario, which merges overlapping outages, when composing
// multi-cause histories.
func (s *Simulator) RepairNodeAt(n graph.NodeID, at time.Duration) {
	for _, nb := range s.g.Neighbors(n) {
		s.RepairLinkAt(nb.Link, at)
	}
}

// ApplyScenario expands a failure scenario into its normalised fail/
// repair event sequence (overlapping outages of one link merged, node
// outages expanded to incident links — see failure.Scenario.Events) and
// schedules it, then installs the scenario's connectivity oracle: every
// subsequent packet loss is refereed into Stats.Violations (pair
// connected, state stable over the packet's lifetime — counts against
// the scheme), Stats.Transient (pair connected but the state changed
// mid-flight, §7's damped regime) or Stats.Excused (the pair was
// partitioned at some instant — no scheme delivers across a partition).
func (s *Simulator) ApplyScenario(sc *failure.Scenario) error {
	events, err := sc.Events(s.g)
	if err != nil {
		return err
	}
	oracle, err := failure.NewOracle(s.g, sc)
	if err != nil {
		return err
	}
	for _, e := range events {
		if e.Down {
			s.FailLinkAt(e.Link, e.At)
		} else {
			s.RepairLinkAt(e.Link, e.At)
		}
	}
	s.oracle = oracle
	return nil
}

// Oracle returns the connectivity oracle installed by ApplyScenario
// (nil before it).
func (s *Simulator) Oracle() *failure.Oracle { return s.oracle }

// classifyLoss referees one drop against the scenario oracle.
func (s *Simulator) classifyLoss(pkt *Packet) {
	if s.oracle == nil {
		return
	}
	switch {
	case !s.oracle.ConnectedThroughout(pkt.Src, pkt.Dst, pkt.Created, s.now):
		s.Stats.Excused++
	case !s.oracle.StableThroughout(pkt.Created, s.now):
		s.Stats.Transient++
	default:
		s.Stats.Violations++
	}
}

// UpdateTopologyAt schedules a planned topology change — the maintenance
// scenario class: link weights shift (drain or cost-out) or new links
// come up mid-run. Schemes implementing TopologyUpdater (e.g. a compiled
// PR scheme with a delta recompiler) react; everything else keeps
// forwarding on its pre-maintenance tables, exactly like a router the
// control plane has not reached yet.
//
// Removals are rejected: they renumber the live link space under
// in-flight packets. Model a decommission as a weight cost-out (drain)
// followed by FailLinkAt — which is how operators do it anyway.
func (s *Simulator) UpdateTopologyAt(at time.Duration, edits ...graph.Edit) error {
	if len(edits) == 0 {
		return fmt.Errorf("sim: empty topology update")
	}
	for _, e := range edits {
		if e.Kind == graph.EditRemoveLink {
			return fmt.Errorf("sim: %v not schedulable mid-run; drain the link (SetWeight) and FailLinkAt instead", e)
		}
		if e.Kind != graph.EditWeight && e.Kind != graph.EditAddLink {
			return fmt.Errorf("sim: unknown edit kind in %v", e)
		}
	}
	s.schedule(&event{at: at, kind: evTopoUpdate, edits: edits})
	return nil
}

// TopologyUpdater is implemented by schemes that react to planned
// topology changes (UpdateTopologyAt). The simulator's graph has already
// been swapped when the hook runs; edits describe the change.
type TopologyUpdater interface {
	TopologyUpdated(s *Simulator, edits []graph.Edit)
}

// applyTopoUpdate swaps the simulator onto the edited graph, growing the
// per-link state for any added links, then notifies the scheme.
func (s *Simulator) applyTopoUpdate(edits []graph.Edit) {
	g2, _, err := graph.ApplyEdits(s.g, edits)
	if err != nil {
		// UpdateTopologyAt screened the edit kinds; a failure here is a
		// malformed maintenance plan (bad link/node IDs) — a caller bug.
		panic(fmt.Sprintf("sim: topology update failed: %v", err))
	}
	for grow := g2.NumLinks() - s.g.NumLinks(); grow > 0; grow-- {
		s.physDown = append(s.physDown, false)
		s.linkGen = append(s.linkGen, 0)
		s.linkFree = append(s.linkFree, 0, 0)
	}
	s.g = g2
	if tu, ok := s.cfg.Scheme.(TopologyUpdater); ok {
		tu.TopologyUpdated(s, edits)
	}
}

func (s *Simulator) schedule(e *event) {
	// The horizon caps packet generation only; deliveries, detections and
	// convergences in flight at the horizon still drain, so every
	// generated packet gets a definite fate.
	if e.kind == evGenerate && e.at > s.cfg.Horizon {
		return
	}
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

// Run drains the event queue up to the horizon and returns the stats.
func (s *Simulator) Run() *Stats {
	s.Stats.Drops = make(map[DropReason]int)
	s.cfg.Scheme.Init(s)
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		switch e.kind {
		case evGenerate:
			s.handleGenerate(e.flow, e.bits)
		case evArrive:
			s.handleArrive(e.pkt, e.node)
		case evLinkDown:
			s.physDown[e.link] = true
			s.linkGen[e.link]++
			if s.cfg.DetectionDelay == 0 {
				// InstantDetection: apply atomically with the physical
				// transition, so no same-instant arrival can slip between
				// the failure and its detection.
				s.knownDown.Add(e.link)
				s.cfg.Scheme.TopologyChanged(s, e.link, true)
				break
			}
			s.schedule(&event{at: s.now + s.cfg.DetectionDelay, kind: evDetect,
				link: e.link, down: true, gen: s.linkGen[e.link]})
		case evLinkUp:
			s.physDown[e.link] = false
			s.linkGen[e.link]++
			if s.cfg.DetectionDelay == 0 && s.cfg.HoldDown == 0 {
				s.knownDown.Remove(e.link)
				s.cfg.Scheme.TopologyChanged(s, e.link, false)
				break
			}
			// §7 flap damping: recoveries additionally wait out the
			// hold-down before routers act on them.
			s.schedule(&event{at: s.now + s.cfg.DetectionDelay + s.cfg.HoldDown, kind: evDetect,
				link: e.link, down: false, gen: s.linkGen[e.link]})
		case evDetect:
			if e.gen != s.linkGen[e.link] {
				break // the link flapped again before this took effect
			}
			if e.down {
				s.knownDown.Add(e.link)
			} else {
				s.knownDown.Remove(e.link)
			}
			s.cfg.Scheme.TopologyChanged(s, e.link, e.down)
		case evConverge:
			s.cfg.Scheme.Converge(s)
		case evTopoUpdate:
			s.applyTopoUpdate(e.edits)
		}
	}
	return &s.Stats
}

// ScheduleConvergeAt lets schemes request a convergence-complete callback.
func (s *Simulator) ScheduleConvergeAt(at time.Duration) {
	s.schedule(&event{at: at, kind: evConverge})
}

func (s *Simulator) handleGenerate(flowIdx, bits int) {
	f := s.cfg.Flows[flowIdx]
	stream := s.streams[flowIdx]
	if stream == nil {
		// Legacy fixed-interval flow: the event carries no size.
		bits = f.Bits
		if bits == 0 {
			bits = 8192
		}
	}
	pkt := &Packet{
		ID:      s.nextPacketID,
		Src:     f.Src,
		Dst:     f.Dst,
		Bits:    bits,
		Created: s.now,
		Ingress: rotation.NoDart,
		Class:   f.Class,
	}
	s.nextPacketID++
	s.Stats.Generated++
	// Schedule the flow's next emission, then process this packet.
	if stream == nil {
		s.schedule(&event{at: s.now + f.Interval, kind: evGenerate, flow: flowIdx})
	} else if gap, nbits, ok := stream.Next(); ok {
		s.schedule(&event{at: s.now + gap, kind: evGenerate, flow: flowIdx, bits: nbits})
	}
	s.handleArrive(pkt, f.Src)
}

func (s *Simulator) handleArrive(pkt *Packet, node graph.NodeID) {
	if node == pkt.Dst {
		lat := s.now - pkt.Created
		s.Stats.Delivered++
		s.Stats.TotalLatency += lat
		if lat > s.Stats.MaxLatency {
			s.Stats.MaxLatency = lat
		}
		s.Stats.TotalHops += pkt.Hops
		return
	}
	if pkt.Hops >= s.cfg.TTL {
		s.Stats.Drops[DropTTL]++
		s.classifyLoss(pkt)
		return
	}
	egress, ok := s.cfg.Scheme.Process(s, node, pkt)
	if !ok {
		s.Stats.Drops[DropNoRoute]++
		s.classifyLoss(pkt)
		return
	}
	link := rotation.LinkOf(egress)
	if s.physDown[link] {
		// The scheme chose a dead link (failure not yet locally
		// detected): the packet is lost in the outage.
		s.Stats.Drops[DropBlackhole]++
		s.classifyLoss(pkt)
		return
	}
	// FIFO serialisation per link direction, then propagation.
	txTime := time.Duration(float64(pkt.Bits) / s.cfg.BandwidthBps * float64(time.Second))
	start := s.now
	if s.linkFree[egress] > start {
		start = s.linkFree[egress]
	}
	done := start + txTime
	s.linkFree[egress] = done
	arrive := done + s.cfg.LinkDelay(s.g.Link(link))
	pkt.Hops++
	pkt.Ingress = egress
	next := s.g.Link(link).Other(node)
	s.schedule(&event{at: arrive, kind: evArrive, pkt: pkt, node: next})
}
