// Package sim is a discrete-event network simulator for comparing failure
// recovery schemes under live traffic. The paper evaluates PR with a
// Java-based simulator (§6); this package is the Go substitute. It models
// propagation and serialisation delay, FIFO link occupancy, bidirectional
// link failures with a configurable local-detection delay, and pluggable
// forwarding schemes (PR, FCP, and a reconverging IGP), and is the engine
// behind the §1 loss-window experiment: how many packets die during an
// outage under each scheme.
package sim

import (
	"container/heap"
	"time"

	"recycle/internal/graph"
)

// eventKind discriminates queue entries.
type eventKind int

const (
	evArrive     eventKind = iota // packet arrives at a node
	evGenerate                    // flow emits its next packet
	evLinkDown                    // physical link failure
	evLinkUp                      // physical link repair
	evDetect                      // routers adjacent to a link learn its state
	evConverge                    // reconvergence completes network-wide
	evTopoUpdate                  // planned topology change takes effect
)

// event is one scheduled occurrence. seq breaks time ties deterministically
// in schedule order.
type event struct {
	at   time.Duration
	seq  int64
	kind eventKind

	pkt  *Packet      // evArrive
	node graph.NodeID // evArrive
	flow int          // evGenerate
	bits int          // evGenerate: packet size for source-driven flows
	link graph.LinkID // evLinkDown / evLinkUp / evDetect
	down bool         // evDetect: new state
	gen  uint64       // evDetect: link state generation; stale events no-op

	edits []graph.Edit // evTopoUpdate: the maintenance edit set
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

var _ heap.Interface = (*eventHeap)(nil)
