package sim

import (
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/graph"
)

// TestFlapDampingSuppressesBouncingLink: a link that flaps faster than the
// hold-down never re-enters the routers' view as up, so forwarding stays on
// the stable detour (§7's flap-damping discussion).
func TestFlapDampingSuppressesBouncingLink(t *testing.T) {
	g := graph.Ring(4)
	s, err := New(Config{
		Graph:          g,
		Scheme:         prScheme(t, g, core.Full),
		Horizon:        time.Second,
		DetectionDelay: 5 * time.Millisecond,
		HoldDown:       200 * time.Millisecond,
		Flows:          []Flow{{Src: 0, Dst: 1, Interval: 2 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Link 0 (0-1) fails at 100 ms then flaps up/down every 50 ms — each
	// up-transition is cancelled by the next down before the 200 ms
	// hold-down expires.
	s.FailLinkAt(0, 100*time.Millisecond)
	for ts := 150 * time.Millisecond; ts < 900*time.Millisecond; ts += 100 * time.Millisecond {
		s.RepairLinkAt(0, ts)
		s.FailLinkAt(0, ts+50*time.Millisecond)
	}
	st := s.Run()
	// Without damping, every brief up-phase would pull traffic back onto
	// the flapping link and blackhole it at the next down. With damping,
	// losses are limited to the initial detection window.
	if st.Counter(MetricDropBlackhole) > 5 {
		t.Fatalf("blackholed = %d with hold-down; want only the initial detection window", st.Counter(MetricDropBlackhole))
	}
	if DeliveryRate(st) < 0.97 {
		t.Fatalf("delivery rate = %v; want ≈1", DeliveryRate(st))
	}
}

// TestNoHoldDownSuffersFromFlapping is the control: with recoveries acted
// on immediately, the same flap pattern blackholes packets repeatedly.
func TestNoHoldDownSuffersFromFlapping(t *testing.T) {
	g := graph.Ring(4)
	s, err := New(Config{
		Graph:          g,
		Scheme:         prScheme(t, g, core.Full),
		Horizon:        time.Second,
		DetectionDelay: 5 * time.Millisecond,
		Flows:          []Flow{{Src: 0, Dst: 1, Interval: 2 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.FailLinkAt(0, 100*time.Millisecond)
	for ts := 150 * time.Millisecond; ts < 900*time.Millisecond; ts += 100 * time.Millisecond {
		s.RepairLinkAt(0, ts)
		s.FailLinkAt(0, ts+50*time.Millisecond)
	}
	st := s.Run()
	if st.Counter(MetricDropBlackhole) <= 5 {
		t.Fatalf("blackholed = %d without hold-down; expected repeated losses from flapping", st.Counter(MetricDropBlackhole))
	}
}

// TestHoldDownEventuallyRestoresLink: once the link stays up longer than
// the hold-down, traffic returns to the shortest path.
func TestHoldDownEventuallyRestoresLink(t *testing.T) {
	g := graph.Ring(4)
	s, err := New(Config{
		Graph:          g,
		Scheme:         prScheme(t, g, core.Full),
		Horizon:        2 * time.Second,
		DetectionDelay: 5 * time.Millisecond,
		HoldDown:       100 * time.Millisecond,
		Flows:          []Flow{{Src: 0, Dst: 1, Interval: 5 * time.Millisecond, Start: time.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fail and repair long before traffic starts: by t=1 s the link is
	// back and the hold-down has expired, so all packets take 1 hop.
	s.FailLinkAt(0, 100*time.Millisecond)
	s.RepairLinkAt(0, 200*time.Millisecond)
	st := s.Run()
	if DeliveryRate(st) != 1 {
		t.Fatalf("delivery rate = %v; want 1", DeliveryRate(st))
	}
	if st.Counter(MetricHops) != st.Counter(MetricDelivered) {
		t.Fatalf("hops = %d for %d packets; want direct single-hop paths after recovery",
			st.Counter(MetricHops), st.Counter(MetricDelivered))
	}
}
