package sim

import (
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/graph"
)

// TestPerClassProtectionPolicy exercises the §7 policy knob: only the
// "critical" traffic class is re-cycled; best-effort traffic is dropped at
// the failure like plain shortest-path forwarding.
func TestPerClassProtectionPolicy(t *testing.T) {
	g := graph.Ring(5)
	scheme := prScheme(t, g, core.Full)
	scheme.Protect = func(p *Packet) bool { return p.Class == "critical" }

	s, err := New(Config{
		Graph:          g,
		Scheme:         scheme,
		Horizon:        time.Second,
		DetectionDelay: time.Millisecond,
		Flows: []Flow{
			{Src: 0, Dst: 1, Interval: 5 * time.Millisecond, Class: "critical"},
			{Src: 0, Dst: 1, Interval: 5 * time.Millisecond, Class: "besteffort"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.FailLinkAt(0, 200*time.Millisecond) // the 0-1 link both flows use
	st := s.Run()

	// Critical traffic is fully protected after detection, so drops must
	// stay far below the best-effort class, which loses every packet for
	// the remaining 800 ms (≈160 packets).
	if st.Counter(MetricDropNoRoute) < 140 {
		t.Fatalf("no-route drops = %d; expected the unprotected class to keep dropping", st.Counter(MetricDropNoRoute))
	}
	if st.Counter(MetricDropBlackhole) > 5 {
		t.Fatalf("blackhole drops = %d; want only the detection window", st.Counter(MetricDropBlackhole))
	}
	// Roughly half the generated packets (critical class) deliver.
	if rate := DeliveryRate(st); rate < 0.45 || rate > 0.65 {
		t.Fatalf("delivery rate = %v; want ≈0.5 (critical only)", rate)
	}
}

// TestProtectNilProtectsEverything: the default policy is the paper's
// normal mode — every packet re-cycles.
func TestProtectNilProtectsEverything(t *testing.T) {
	g := graph.Ring(5)
	s, err := New(Config{
		Graph:          g,
		Scheme:         prScheme(t, g, core.Full),
		Horizon:        time.Second,
		DetectionDelay: time.Millisecond,
		Flows: []Flow{
			{Src: 0, Dst: 1, Interval: 5 * time.Millisecond, Class: "besteffort"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.FailLinkAt(0, 200*time.Millisecond)
	st := s.Run()
	if st.Counter(MetricDropNoRoute) != 0 {
		t.Fatalf("no-route drops = %d; want 0 with universal protection", st.Counter(MetricDropNoRoute))
	}
	if DeliveryRate(st) < 0.98 {
		t.Fatalf("delivery rate = %v; want ≈1", DeliveryRate(st))
	}
}
