package sim

import (
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/graph"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
)

// churnScheme builds a compiled PR scheme with a delta recompiler over a
// topology.
func churnScheme(t *testing.T, p *PRScheme) *CompiledPRScheme {
	t.Helper()
	rec, err := dataplane.NewRecompiler(p.Protocol, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &CompiledPRScheme{FIB: rec.FIB(), Recompiler: rec}
}

// TestMaintenanceDrain pins the maintenance scenario class: drain, then
// kill. A delta-recompiled PR router has moved every packet off the link
// before it dies — zero loss, no recycling stretch; a stale router
// survives on re-cycling but eats the detection window's blackhole loss;
// the announced update spares the reconverging IGP its §1 loss too.
func TestMaintenanceDrain(t *testing.T) {
	tp := topo.Geant(topo.DistanceWeights)
	cfg := Config{
		Graph:          tp.Graph,
		Horizon:        3 * time.Second,
		DetectionDelay: 50 * time.Millisecond,
	}
	src, dst := graph.NodeID(0), graph.NodeID(12)
	const pps = 1000
	drainAt, failAt := 1*time.Second, 2*time.Second

	interpreted := prScheme(t, tp.Graph, core.Full)

	// Updated PR: zero loss across the planned outage.
	cfg.Scheme = churnScheme(t, interpreted)
	updated, err := RunMaintenance(cfg, src, dst, pps, drainAt, failAt)
	if err != nil {
		t.Fatal(err)
	}
	if updated.Blackhole != 0 || updated.NoRoute != 0 || updated.TTL != 0 {
		t.Fatalf("updated PR lost packets across planned maintenance: %+v", updated)
	}
	if updated.Delivered != updated.Generated {
		t.Fatalf("updated PR delivered %d of %d", updated.Delivered, updated.Generated)
	}

	// Stale PR (no recompiler): still forwarding over the drained link
	// when it dies — the detection window's blackhole loss, even though
	// the outage was announced.
	cfg.Scheme = &CompiledPRScheme{FIB: churnScheme(t, interpreted).FIB}
	stale, err := RunMaintenance(cfg, src, dst, pps, drainAt, failAt)
	if err != nil {
		t.Fatal(err)
	}
	if stale.Blackhole == 0 {
		t.Fatalf("stale PR should blackhole during the detection window: %+v", stale)
	}

	// Reconverging IGP: the announced drain converges before the kill,
	// so planned maintenance costs it nothing either.
	cfg.Scheme = &ReconvScheme{}
	igp, err := RunMaintenance(cfg, src, dst, pps, drainAt, failAt)
	if err != nil {
		t.Fatal(err)
	}
	if igp.Blackhole != 0 || igp.NoRoute != 0 {
		t.Fatalf("IGP lost packets across announced maintenance: %+v", igp)
	}
}

// TestTopologyUpdateAddLink grows the simulated network mid-run: a new
// chord comes up, the delta recompiler picks it up, and the flow's path
// shortens — while an un-updated scheme keeps its longer (but still
// delivered) route.
func TestTopologyUpdateAddLink(t *testing.T) {
	g := graph.Ring(12)
	interpreted := prScheme(t, g, core.Full)

	run := func(scheme Scheme) *telemetry.Snapshot {
		s, err := New(Config{
			Graph:   g,
			Scheme:  scheme,
			Flows:   []Flow{{Src: 0, Dst: 6, Interval: time.Millisecond}},
			Horizon: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.UpdateTopologyAt(time.Second, graph.AddLinkEdit(0, 6, 1)); err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}

	withDelta := run(churnScheme(t, interpreted))
	stale := run(&CompiledPRScheme{FIB: churnScheme(t, interpreted).FIB})
	if withDelta.Counter(MetricDelivered) != withDelta.Counter(MetricGenerated) {
		t.Fatalf("delta scheme dropped: %+v", withDelta)
	}
	if stale.Counter(MetricDelivered) != stale.Counter(MetricGenerated) {
		t.Fatalf("stale scheme dropped: %+v", stale)
	}
	if withDelta.Counter(MetricHops) >= stale.Counter(MetricHops) {
		t.Fatalf("new link unused: delta %d hops, stale %d", withDelta.Counter(MetricHops), stale.Counter(MetricHops))
	}
}

// TestUpdateTopologyAtValidation covers the rejected maintenance plans.
func TestUpdateTopologyAtValidation(t *testing.T) {
	g := graph.Ring(6)
	s, err := New(Config{
		Graph:   g,
		Scheme:  prScheme(t, g, core.Full),
		Horizon: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateTopologyAt(time.Millisecond); err == nil {
		t.Fatal("empty update accepted")
	}
	if err := s.UpdateTopologyAt(time.Millisecond, graph.RemoveLinkEdit(0)); err == nil {
		t.Fatal("mid-run removal accepted")
	}
	if err := s.UpdateTopologyAt(time.Millisecond, graph.Edit{Kind: graph.EditKind(9)}); err == nil {
		t.Fatal("unknown edit kind accepted")
	}
}
