package sim

import (
	"fmt"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/graph"
	"recycle/internal/reconv"
	"recycle/internal/rotation"
	"recycle/internal/traffic"
)

// Scheme is a pluggable forwarding mechanism driven by the simulator.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Init is called once before the run.
	Init(s *Simulator)
	// Process decides the egress dart for a packet at a node. Returning
	// ok=false drops the packet (no usable route).
	Process(s *Simulator, node graph.NodeID, pkt *Packet) (egress rotation.DartID, ok bool)
	// TopologyChanged notifies the scheme that routers adjacent to a link
	// have locally detected a state change.
	TopologyChanged(s *Simulator, l graph.LinkID, down bool)
	// Converge is invoked when a requested convergence completes.
	Converge(s *Simulator)
}

// Explainer is optionally implemented by schemes that can attribute
// their last Process decision to a core.Event — the flight recorder
// uses it to label each recorded hop exactly (route, detect, cycle,
// continue, resume) instead of inferring from the PR bit. LastEvent is
// meaningful only immediately after a Process call, on the simulator's
// single event loop.
type Explainer interface {
	LastEvent() core.Event
}

// ---------------------------------------------------------------------------
// Packet Re-cycling
// ---------------------------------------------------------------------------

// PRScheme forwards with a core.Protocol. Routers consult only locally
// detected failures; packets sent into a not-yet-detected dead link are
// lost, so PR's loss window is exactly the detection delay.
type PRScheme struct {
	Protocol *core.Protocol
	// Protect optionally restricts re-cycling to selected traffic (the
	// paper's §7 policy knob: "ISPs can include extra rules and policies
	// to limit PR to certain types of traffic"). Unprotected packets are
	// forwarded on plain shortest paths and dropped at failures, like
	// ordinary best-effort traffic before reconvergence. Nil protects
	// everything.
	Protect func(*Packet) bool

	lastEvent core.Event
}

// Name implements Scheme.
func (p *PRScheme) Name() string { return "packet-recycling-" + p.Protocol.Variant().String() }

// Init implements Scheme.
func (p *PRScheme) Init(*Simulator) {}

// Process implements Scheme.
func (p *PRScheme) Process(s *Simulator, node graph.NodeID, pkt *Packet) (rotation.DartID, bool) {
	if p.Protect != nil && !p.Protect(pkt) {
		// Unprotected class: shortest path only, drop at known failures.
		p.lastEvent = core.EventRoute
		next := p.Protocol.Routes().NextLink(node, pkt.Dst)
		if next == graph.NoLink || s.KnownFailures().Down(next) {
			return rotation.NoDart, false
		}
		return dartFrom(s.Graph(), node, next), true
	}
	hdr, _ := pkt.State.(core.Header)
	d := p.Protocol.Decide(node, pkt.Dst, pkt.Ingress, hdr, s.KnownFailures())
	p.lastEvent = d.Event
	if !d.OK {
		return rotation.NoDart, false
	}
	pkt.State = d.Header
	return d.Egress, true
}

// LastEvent implements Explainer.
func (p *PRScheme) LastEvent() core.Event { return p.lastEvent }

// TopologyChanged implements Scheme. PR precomputes everything offline;
// detection alone flips the local interface state, which Process already
// reads from the simulator.
func (p *PRScheme) TopologyChanged(*Simulator, graph.LinkID, bool) {}

// Converge implements Scheme.
func (p *PRScheme) Converge(*Simulator) {}

// ---------------------------------------------------------------------------
// Packet Re-cycling on the compiled dataplane
// ---------------------------------------------------------------------------

// CompiledPRScheme forwards with a compiled dataplane.FIB instead of
// interpreting core.Protocol: identical decisions (the dataplane
// differential test proves bit-identity), a fraction of the per-packet
// cost. Local failure detections flip bits in a dataplane.LinkState
// mirror of the simulator's known-failure set.
//
// With a Recompiler attached the scheme also covers the maintenance
// scenario class: a planned topology change (Simulator.UpdateTopologyAt)
// is delta-recompiled and the scheme hops onto the patched FIB — the
// simulator counterpart of Engine.ApplyDelta. Without one, the scheme
// keeps its pre-maintenance FIB, modelling a router the control plane
// has not updated yet (still loss-free for weight changes: stale
// shortest paths remain live paths, just not optimal ones).
type CompiledPRScheme struct {
	FIB *dataplane.FIB
	// Recompiler, when non-nil, reacts to planned topology updates with
	// a delta recompile. It must have been built over the same network
	// state FIB was compiled from.
	Recompiler *dataplane.Recompiler

	state     *dataplane.LinkState
	lastEvent core.Event
}

// Name implements Scheme.
func (c *CompiledPRScheme) Name() string {
	return "packet-recycling-compiled-" + c.FIB.Variant().String()
}

// Init implements Scheme.
func (c *CompiledPRScheme) Init(s *Simulator) {
	c.state = dataplane.FromFailureSet(s.Graph().NumLinks(), s.KnownFailures())
}

// Process implements Scheme.
func (c *CompiledPRScheme) Process(s *Simulator, node graph.NodeID, pkt *Packet) (rotation.DartID, bool) {
	hdr, _ := pkt.State.(core.Header)
	d := c.FIB.Decide(node, pkt.Dst, pkt.Ingress, hdr, c.state)
	c.lastEvent = d.Event
	if !d.OK {
		return rotation.NoDart, false
	}
	pkt.State = d.Header
	return d.Egress, true
}

// LastEvent implements Explainer.
func (c *CompiledPRScheme) LastEvent() core.Event { return c.lastEvent }

// TopologyChanged implements Scheme: mirror the detection into the
// compiled link-state bitset.
func (c *CompiledPRScheme) TopologyChanged(_ *Simulator, l graph.LinkID, down bool) {
	c.state.Set(l, down)
}

// TopologyUpdated implements TopologyUpdater: delta-recompile the edit
// set and swap onto the patched FIB. The link-state mirror is rebuilt in
// the new link space from the simulator's known failures — the same
// carry-over Engine.ApplyDelta performs.
func (c *CompiledPRScheme) TopologyUpdated(s *Simulator, edits []graph.Edit) {
	if c.Recompiler == nil {
		return // un-updated router: keep forwarding on the stale FIB
	}
	d, err := c.Recompiler.Apply(edits...)
	if err != nil {
		panic(fmt.Sprintf("sim: delta recompile failed: %v", err))
	}
	if d == nil {
		return // the batch netted out to nothing; current FIB stands
	}
	c.FIB = d.FIB
	c.state = dataplane.FromFailureSet(d.Graph.NumLinks(), s.KnownFailures())
}

// Converge implements Scheme.
func (c *CompiledPRScheme) Converge(*Simulator) {}

// ---------------------------------------------------------------------------
// Packet Re-cycling on the wire fast path (real packet bytes)
// ---------------------------------------------------------------------------

// WirePRScheme forwards *real packet bytes* through the FIB's wire fast
// path: each simulated packet owns a marshalled IPv4 or IPv6 frame —
// matching the codec Compile selected for the network — and every hop runs
// ForwardWire on it: mark decode, rank-space decision, in-place rewrite.
// It is the end-to-end proof that the codec machinery (quantised DD codes,
// DSCP or flow-label marks, TTL, checksums) loses nothing the abstract
// protocol delivers *within the IP TTL budget*: frames start with the
// maximum TTL/hop limit of 255, so a recycled walk longer than 255 hops —
// possible only when the topology's worst-case recovery path exceeds it,
// e.g. a ring of several hundred nodes — drops as WireDropTTL where the
// abstract protocol (capped only by the simulator's 4×nodes budget) still
// delivers. No IP dataplane can do better; the divergence is visible, not
// silent: Verdicts tallies every wire outcome for assertions.
type WirePRScheme struct {
	FIB *dataplane.FIB
	// Verdicts counts ForwardWire outcomes, populated during the run.
	Verdicts map[dataplane.WireVerdict]int

	state *dataplane.LinkState
}

// Name implements Scheme.
func (w *WirePRScheme) Name() string {
	return "packet-recycling-wire-" + w.FIB.Variant().String() + "-" + w.FIB.Codec().String()
}

// Init implements Scheme.
func (w *WirePRScheme) Init(s *Simulator) {
	w.state = dataplane.FromFailureSet(s.Graph().NumLinks(), s.KnownFailures())
	w.Verdicts = make(map[dataplane.WireVerdict]int)
}

// Process implements Scheme: marshal the frame on first contact (in the
// codec's address family, full TTL budget — the simulator's own hop cap
// fires first on sane configurations), then let the wire path decide and
// rewrite it in place.
func (w *WirePRScheme) Process(s *Simulator, node graph.NodeID, pkt *Packet) (rotation.DartID, bool) {
	buf, ok := pkt.State.([]byte)
	if !ok {
		var err error
		if buf, err = w.FIB.NewWireFrame(pkt.Src, pkt.Dst); err != nil {
			return rotation.NoDart, false
		}
		pkt.State = buf
	}
	egress, verdict := w.FIB.ForwardWire(node, pkt.Ingress, w.state, buf)
	w.Verdicts[verdict]++
	if verdict != dataplane.WireForward {
		return rotation.NoDart, false
	}
	return egress, true
}

// TopologyChanged implements Scheme: mirror the detection into the
// compiled link-state bitset.
func (w *WirePRScheme) TopologyChanged(_ *Simulator, l graph.LinkID, down bool) {
	w.state.Set(l, down)
}

// Converge implements Scheme.
func (w *WirePRScheme) Converge(*Simulator) {}

// WireDrops sums the drop verdicts the wire path returned.
func (w *WirePRScheme) WireDrops() int {
	n := 0
	for v, c := range w.Verdicts {
		if v.Dropped() {
			n += c
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Failure-Carrying Packets
// ---------------------------------------------------------------------------

// FCPScheme forwards per the FCP rule: each packet carries the failures it
// has met; routers compute shortest paths over the topology minus carried
// failures. Locally detected failures are folded into the packet's set at
// the router that sees them.
type FCPScheme struct {
	g *graph.Graph
}

// Name implements Scheme.
func (f *FCPScheme) Name() string { return "failure-carrying-packets" }

// Init implements Scheme.
func (f *FCPScheme) Init(s *Simulator) { f.g = s.Graph() }

// Process implements Scheme.
func (f *FCPScheme) Process(s *Simulator, node graph.NodeID, pkt *Packet) (rotation.DartID, bool) {
	carried, _ := pkt.State.(*graph.FailureSet)
	if carried == nil {
		carried = graph.NewFailureSet()
		pkt.State = carried
	}
	for {
		tree := graph.ShortestPathTree(f.g, pkt.Dst, carried)
		next := tree.NextLink[node]
		if next == graph.NoLink {
			return rotation.NoDart, false
		}
		if s.KnownFailures().Down(next) {
			carried.Add(next) // learn and recompute
			continue
		}
		return dartFrom(f.g, node, next), true
	}
}

// TopologyChanged implements Scheme.
func (f *FCPScheme) TopologyChanged(*Simulator, graph.LinkID, bool) {}

// Converge implements Scheme.
func (f *FCPScheme) Converge(*Simulator) {}

// ---------------------------------------------------------------------------
// Reconverging IGP
// ---------------------------------------------------------------------------

// ReconvScheme models a link-state IGP: routers forward on tables computed
// at the last convergence; a detected change schedules a network-wide
// reconvergence after the model's flooding+SPF+FIB window. Packets that
// reach a failed egress before the new tables install are dropped — the
// §1 loss the paper motivates PR with.
type ReconvScheme struct {
	// Model parameterises the convergence window (zero value =
	// reconv.DefaultConvergence()).
	Model reconv.ConvergenceModel

	g      *graph.Graph
	trees  []*graph.SPTree
	radius int
}

// Name implements Scheme.
func (r *ReconvScheme) Name() string { return "reconvergence" }

// Init implements Scheme.
func (r *ReconvScheme) Init(s *Simulator) {
	if r.Model == (reconv.ConvergenceModel{}) {
		r.Model = reconv.DefaultConvergence()
	}
	r.g = s.Graph()
	r.radius = graph.HopDiameter(r.g)
	if r.radius < 0 {
		r.radius = r.g.NumNodes()
	}
	r.recompute(nil)
}

func (r *ReconvScheme) recompute(failures *graph.FailureSet) {
	r.trees = make([]*graph.SPTree, r.g.NumNodes())
	for d := 0; d < r.g.NumNodes(); d++ {
		r.trees[d] = graph.ShortestPathTree(r.g, graph.NodeID(d), failures)
	}
}

// Process implements Scheme.
func (r *ReconvScheme) Process(s *Simulator, node graph.NodeID, pkt *Packet) (rotation.DartID, bool) {
	next := r.trees[pkt.Dst].NextLink[node]
	if next == graph.NoLink {
		return rotation.NoDart, false
	}
	if s.KnownFailures().Down(next) {
		// Old FIB points into a failed link the router already knows is
		// dead: traffic is dropped until convergence completes.
		return rotation.NoDart, false
	}
	return dartFrom(r.g, node, next), true
}

// TopologyChanged implements Scheme: detection starts the convergence
// countdown (flooding + SPF + FIB install beyond the detection already
// elapsed).
func (r *ReconvScheme) TopologyChanged(s *Simulator, _ graph.LinkID, _ bool) {
	window := r.Model.Window(r.radius) - r.Model.Detection
	s.ScheduleConvergeAt(s.Now() + window)
}

// TopologyUpdated implements TopologyUpdater: a planned change floods
// like any LSA — the IGP converges onto the new metrics after the model
// window (no detection delay: the operator announced it, nobody had to
// notice a loss-of-light).
func (r *ReconvScheme) TopologyUpdated(s *Simulator, _ []graph.Edit) {
	r.g = s.Graph()
	window := r.Model.Window(r.radius) - r.Model.Detection
	s.ScheduleConvergeAt(s.Now() + window)
}

// Converge implements Scheme: install tables reflecting everything
// currently known.
func (r *ReconvScheme) Converge(s *Simulator) {
	r.recompute(s.KnownFailures())
}

// dartFrom returns link l oriented away from node n.
func dartFrom(g *graph.Graph, n graph.NodeID, l graph.LinkID) rotation.DartID {
	ab, ba := rotation.DartsOf(l)
	if g.Link(l).A == n {
		return ab
	}
	return ba
}

// ---------------------------------------------------------------------------
// Loss-window experiment (§1 motivation)
// ---------------------------------------------------------------------------

// LossWindowResult compares schemes on one outage scenario.
type LossWindowResult struct {
	Scheme    string
	Traffic   string
	Generated int
	Delivered int
	Blackhole int
	NoRoute   int
	TTL       int
}

// RunLossWindow runs the §1 motivation experiment: a single flow crossing
// a link that fails mid-run, on the given topology and scheme. The flow
// emits pps packets per second of 1 kB from src to dst between 0 and
// horizon; the first link of src's shortest path fails at failAt.
func RunLossWindow(cfg Config, src, dst graph.NodeID, pps float64, failAt time.Duration) (LossWindowResult, error) {
	interval := time.Duration(float64(time.Second) / pps)
	return runLossWindowFlow(cfg, Flow{Src: src, Dst: dst, Interval: interval, Bits: 8192}, failAt)
}

// RunLossWindowTraffic is RunLossWindow with an arbitrary arrival process
// driving the flow — the loss window under Poisson, MMPP-burst or replay
// traffic instead of the fixed-interval probe. The source's stream is
// minted fresh for the run, so the same source gives every scheme under
// comparison the identical offered load.
func RunLossWindowTraffic(cfg Config, src, dst graph.NodeID, source traffic.Source, failAt time.Duration) (LossWindowResult, error) {
	return runLossWindowFlow(cfg, Flow{Src: src, Dst: dst, Source: source}, failAt)
}

// runLossWindowFlow is the shared body: one flow, the first link of the
// source's shortest path failing at failAt.
func runLossWindowFlow(cfg Config, flow Flow, failAt time.Duration) (LossWindowResult, error) {
	return runOutageFlow(cfg, flow, failAt, 0)
}

// RunMaintenance runs the planned-decommission experiment: the first
// link of src's shortest path is drained (its weight costed out to above
// any alternative path) at drainAt, then taken down at failAt — the
// operator playbook for maintenance. A scheme that reacts to the drain
// (TopologyUpdater: delta-recompiled PR, a reconverging IGP) has moved
// all traffic off the link before it dies and loses nothing; a scheme
// that ignores planned updates eats the §1 detection loss window even
// though the outage was announced.
func RunMaintenance(cfg Config, src, dst graph.NodeID, pps float64, drainAt, failAt time.Duration) (LossWindowResult, error) {
	if failAt < drainAt {
		return LossWindowResult{}, fmt.Errorf("sim: maintenance fails at %v before the %v drain", failAt, drainAt)
	}
	interval := time.Duration(float64(time.Second) / pps)
	return runOutageFlow(cfg, Flow{Src: src, Dst: dst, Interval: interval, Bits: 8192}, failAt, drainAt)
}

// runOutageFlow fails the first link of the flow's shortest path at
// failAt, optionally draining it (weight cost-out via a topology update)
// at drainAt first (0 = no drain).
func runOutageFlow(cfg Config, flow Flow, failAt, drainAt time.Duration) (LossWindowResult, error) {
	cfg.Flows = []Flow{flow}
	s, err := New(cfg)
	if err != nil {
		return LossWindowResult{}, err
	}
	// Fail the first link on src's current shortest path.
	tree := graph.ShortestPathTree(cfg.Graph, flow.Dst, nil)
	target := tree.NextLink[flow.Src]
	if drainAt > 0 {
		heavy := 1.0
		for _, l := range cfg.Graph.Links() {
			heavy += l.Weight
		}
		if err := s.UpdateTopologyAt(drainAt, graph.SetWeight(target, heavy)); err != nil {
			return LossWindowResult{}, err
		}
	}
	s.FailLinkAt(target, failAt)
	st := s.Run()
	trafficName := "fixed"
	if flow.Source != nil {
		trafficName = flow.Source.Name()
	}
	return LossWindowResult{
		Scheme:    cfg.Scheme.Name(),
		Traffic:   trafficName,
		Generated: int(st.Counter(MetricGenerated)),
		Delivered: int(st.Counter(MetricDelivered)),
		Blackhole: int(st.Counter(MetricDropBlackhole)),
		NoRoute:   int(st.Counter(MetricDropNoRoute)),
		TTL:       int(st.Counter(MetricDropTTL)),
	}, nil
}
