package sim

import (
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/failure"
	"recycle/internal/graph"
)

// TestFailNodeAt: a node outage as a first-class timed event behaves like
// graph.FailNode — every incident link fails at the instant, and flows
// through the dead router reroute or die exactly as the §4 dead-router
// model says.
func TestFailNodeAt(t *testing.T) {
	g := graph.Ring(6)
	s, err := New(Config{
		Graph:   g,
		Scheme:  prScheme(t, g, core.Full),
		Horizon: time.Second,
		Flows:   []Flow{{Src: 0, Dst: 3, Interval: 5 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 sits on the clockwise 0→3 shortest path; killing it forces
	// packets the long way round. It never comes back.
	s.FailNodeAt(1, 200*time.Millisecond)
	st := s.Run()
	if st.Counter(MetricGenerated) == 0 || st.Counter(MetricDelivered) == 0 {
		t.Fatalf("no traffic flowed: %+v", st)
	}
	// The pair stays connected (counter-clockwise path survives): only the
	// detection-window losses may occur, everything after must deliver.
	lost := st.Counter(MetricGenerated) - st.Counter(MetricDelivered)
	if lost == 0 {
		t.Fatal("node failure on the shortest path lost nothing; detection window should bite")
	}
	// The knownDown set must end up covering exactly node 1's links.
	want := graph.FailNode(g, 1)
	for _, l := range want.Links() {
		if !s.KnownFailures().Down(l) {
			t.Fatalf("incident link %d not detected down after FailNodeAt", l)
		}
	}
	if s.KnownFailures().Len() != want.Len() {
		t.Fatalf("known failures %v; want exactly node 1's incident links %v", s.KnownFailures(), want)
	}
}

func TestRepairNodeAt(t *testing.T) {
	g := graph.Ring(6)
	s, err := New(Config{
		Graph:   g,
		Scheme:  prScheme(t, g, core.Full),
		Horizon: time.Second,
		Flows:   []Flow{{Src: 0, Dst: 3, Interval: 5 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.FailNodeAt(1, 100*time.Millisecond)
	s.RepairNodeAt(1, 300*time.Millisecond)
	st := s.Run()
	if st.Counter(MetricGenerated) == 0 {
		t.Fatal("no packets generated")
	}
	if s.KnownFailures().Len() != 0 {
		t.Fatalf("links still marked down after RepairNodeAt: %v", s.KnownFailures())
	}
}

// TestApplyScenarioSchedulesMergedEvents: overlapping outages of one link
// must not resurrect it when the first cause repairs.
func TestApplyScenarioSchedulesMergedEvents(t *testing.T) {
	g := graph.Ring(6)
	s, err := New(Config{
		Graph:          g,
		Scheme:         prScheme(t, g, core.Full),
		Horizon:        time.Second,
		DetectionDelay: InstantDetection,
		Flows:          []Flow{{Src: 0, Dst: 3, Interval: 5 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := &failure.Scenario{Name: "overlap", Outages: []failure.Outage{
		failure.LinkOutage(0, 100*time.Millisecond, 400*time.Millisecond),
		failure.LinkOutage(0, 200*time.Millisecond, 600*time.Millisecond),
	}}
	if err := s.ApplyScenario(sc); err != nil {
		t.Fatal(err)
	}
	if s.Oracle() == nil {
		t.Fatal("ApplyScenario did not install the oracle")
	}
	st := s.Run()
	// With instantaneous detection and the pair connected throughout (one
	// ring link down at a time), PR must deliver everything: a violation
	// here would mean the merge resurrected link 0 at 400ms and a packet
	// died on the phantom repair.
	if st.Counter(MetricLossViolation) != 0 {
		t.Fatalf("violations = %d; want 0 (overlap merge must hold the link down until 600ms)", st.Counter(MetricLossViolation))
	}
	if st.Counter(MetricDelivered) != st.Counter(MetricGenerated) {
		t.Fatalf("delivered %d of %d with instant detection and a connected pair", st.Counter(MetricDelivered), st.Counter(MetricGenerated))
	}
}

func TestApplyScenarioRejectsInvalid(t *testing.T) {
	g := graph.Ring(4)
	s, err := New(Config{
		Graph:   g,
		Scheme:  prScheme(t, g, core.Full),
		Horizon: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := &failure.Scenario{Name: "bad", Outages: []failure.Outage{
		failure.LinkOutage(99, 0, time.Second),
	}}
	if err := s.ApplyScenario(bad); err == nil {
		t.Fatal("out-of-range scenario accepted")
	}
	if s.Oracle() != nil {
		t.Fatal("oracle installed despite the rejected scenario")
	}
}

// TestLossClassification drives each of the three loss classes:
// violations (connected + stable — must be zero for PR), excused (the
// pair was partitioned), and delivery through everything else.
func TestLossClassification(t *testing.T) {
	g := graph.Ring(4)
	// Partition node 0: both incident links (0 and 3) down for [100ms, 500ms).
	sc := &failure.Scenario{Name: "partition", Outages: []failure.Outage{
		failure.LinkOutage(0, 100*time.Millisecond, 500*time.Millisecond),
		failure.LinkOutage(3, 100*time.Millisecond, 500*time.Millisecond),
	}}
	s, err := New(Config{
		Graph:          g,
		Scheme:         prScheme(t, g, core.Full),
		Horizon:        time.Second,
		DetectionDelay: InstantDetection,
		Flows:          []Flow{{Src: 0, Dst: 2, Interval: 5 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyScenario(sc); err != nil {
		t.Fatal(err)
	}
	st := s.Run()
	if st.Counter(MetricLossExcused) == 0 {
		t.Fatalf("no excused losses across a 400ms partition: %+v", st)
	}
	if st.Counter(MetricLossViolation) != 0 {
		t.Fatalf("PR shows %d violations with instant detection; want 0", st.Counter(MetricLossViolation))
	}
	if st.Counter(MetricLossExcused)+st.Counter(MetricLossTransient)+st.Counter(MetricLossViolation) != st.Counter(MetricGenerated)-st.Counter(MetricDelivered) {
		t.Fatalf("classification does not partition the losses: %+v", st)
	}
}

// TestTransientClassification: with a real (non-instant) detection delay,
// packets in flight when a link dies are lost in the §7 transient regime,
// not counted as violations.
func TestTransientClassification(t *testing.T) {
	g := graph.Ring(6)
	sc := &failure.Scenario{Name: "one-cut", Outages: []failure.Outage{
		failure.LinkOutage(0, 100*time.Millisecond, failure.Forever),
	}}
	s, err := New(Config{
		Graph:          g,
		Scheme:         prScheme(t, g, core.Full),
		Horizon:        time.Second,
		DetectionDelay: 50 * time.Millisecond,
		Flows:          []Flow{{Src: 0, Dst: 3, Interval: time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyScenario(sc); err != nil {
		t.Fatal(err)
	}
	st := s.Run()
	// The pair stays connected (it is one ring link): every detection-
	// window loss is transient — created before or during the state
	// change's epoch boundary... packets created *after* the change that
	// still die (routers not yet aware) lived under one stable epoch and
	// are violations of the instant-knowledge ideal, but PR's §1 guarantee
	// is stated for detected failures; the sim therefore only reaches zero
	// violations under InstantDetection. Here we assert the split is
	// consistent and that losses exist at all.
	lost := st.Counter(MetricGenerated) - st.Counter(MetricDelivered)
	if lost == 0 {
		t.Fatal("no detection-window losses on an undetected cut")
	}
	if st.Counter(MetricLossExcused) != 0 {
		t.Fatalf("excused = %d on a connected pair; want 0", st.Counter(MetricLossExcused))
	}
	if st.Counter(MetricLossViolation)+st.Counter(MetricLossTransient) != lost {
		t.Fatalf("violations %d + transient %d ≠ lost %d", st.Counter(MetricLossViolation), st.Counter(MetricLossTransient), lost)
	}
}

// TestInstantDetectionZeroLoss: the guarantee regime — with instantaneous
// detection and the pair connected throughout, PR delivers every packet
// across a mid-run failure.
func TestInstantDetectionZeroLoss(t *testing.T) {
	g := graph.Ring(6)
	s, err := New(Config{
		Graph:          g,
		Scheme:         prScheme(t, g, core.Full),
		Horizon:        time.Second,
		DetectionDelay: InstantDetection,
		Flows:          []Flow{{Src: 0, Dst: 3, Interval: time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.FailLinkAt(0, 100*time.Millisecond)
	s.RepairLinkAt(0, 600*time.Millisecond)
	st := s.Run()
	if st.Counter(MetricDelivered) != st.Counter(MetricGenerated) {
		t.Fatalf("lost %d packets under instant detection on a connected pair: %+v",
			st.Counter(MetricGenerated)-st.Counter(MetricDelivered), st)
	}
}

// TestInstantDetectionHoldDownStillDelays: InstantDetection removes the
// detection latency but a configured hold-down still damps recoveries.
func TestInstantDetectionHoldDownStillDelays(t *testing.T) {
	g := graph.Ring(4)
	s, err := New(Config{
		Graph:          g,
		Scheme:         prScheme(t, g, core.Full),
		Horizon:        time.Second,
		DetectionDelay: InstantDetection,
		HoldDown:       200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.FailLinkAt(0, 100*time.Millisecond)
	s.RepairLinkAt(0, 300*time.Millisecond)
	st := s.Run()
	_ = st
	// At 300ms the link is physically up but held down until 500ms.
	// Run() has completed, so the final state must be repaired.
	if s.KnownFailures().Down(0) {
		t.Fatal("link still known-down after the hold-down expired")
	}
}

func TestNegativeDetectionDelayRejected(t *testing.T) {
	g := graph.Ring(4)
	if _, err := New(Config{
		Graph:          g,
		Scheme:         prScheme(t, g, core.Full),
		Horizon:        time.Second,
		DetectionDelay: -2,
	}); err == nil {
		t.Fatal("negative detection delay other than InstantDetection accepted")
	}
}
