package sim

// Large-diameter end-to-end regression: on topologies whose quantised DD
// code needs more than DSCP pool-2's 3 bits, the seed dataplane *provably*
// dropped every packet whose recovery stamped a discriminator above 7
// (WireDropDDOverflow, a structural loss class). With rank quantisation
// and flow-label codec selection the wire path must now deliver everything
// the abstract protocol delivers — zero wire drops of any kind, live
// traffic, real packet bytes.

import (
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/header"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
)

// wireCase is one large-diameter scenario.
type wireCase struct {
	spec string
	disc route.Discriminator
}

// buildWireFIB compiles the topology's FIB and returns it with the graph.
func buildWireFIB(t *testing.T, tc wireCase) (*dataplane.FIB, *core.Protocol, *graph.Graph) {
	t.Helper()
	tp, err := topo.ByName(tc.spec)
	if err != nil {
		t.Fatal(err)
	}
	sys := tp.Embedding
	if sys == nil {
		if sys, err = (embedding.Auto{Seed: 1}).Embed(tp.Graph); err != nil {
			t.Fatal(err)
		}
	}
	tbl := route.Build(tp.Graph, tc.disc)
	p, err := core.New(tp.Graph, sys, tbl, core.Config{Variant: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	fib, err := dataplane.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return fib, p, tp.Graph
}

// TestWireSchemeLargeDiameterZeroDrops runs live traffic across a mid-run
// link failure on diameter-8..32 topologies and asserts the wire path
// loses only the physically unavoidable detection-window packets — never
// a discriminator-width drop.
func TestWireSchemeLargeDiameterZeroDrops(t *testing.T) {
	cases := []wireCase{
		{"ring:16", route.HopCount},     // diameter 8: smallest over-budget ring
		{"ring:24", route.HopCount},     // diameter 12
		{"ring:64", route.HopCount},     // diameter 32: top of the regression band
		{"grid:5x5", route.HopCount},    // diameter 8, meshier recovery cycles
		{"chain:8", route.HopCount},     // diameter 16, long thin cells
		{"wring:24@7", route.WeightSum}, // weighted: real bucketisation
	}
	for _, tc := range cases {
		t.Run(tc.spec+"/"+tc.disc.String(), func(t *testing.T) {
			fib, p, g := buildWireFIB(t, tc)

			// Precondition — this is exactly where the seed dataplane
			// dropped: the quantised code needs > 3 bits, so some recovery
			// stamp exceeds DSCP pool 2 and the seed wire path returned
			// WireDropDDOverflow for it.
			if fib.Codec() != dataplane.CodecFlowLabel {
				t.Fatalf("codec = %v; this case must exceed the DSCP budget", fib.Codec())
			}
			if bits := fib.DDBits(); bits <= header.DDBits {
				t.Fatalf("dd bits = %d; want > %d", bits, header.DDBits)
			}
			overBudget := false
			for node := 0; node < g.NumNodes() && !overBudget; node++ {
				for dst := 0; dst < g.NumNodes(); dst++ {
					if rank, ok := fib.WireDD(graph.NodeID(node), graph.NodeID(dst)); ok && rank > header.MaxDD {
						overBudget = true
						break
					}
				}
			}
			if !overBudget {
				t.Fatal("no over-budget discriminator: the seed would not have dropped here")
			}

			// A flow across the diameter; the first link of src's shortest
			// path fails mid-run, forcing recovery through marked packets.
			src := graph.NodeID(0)
			dst := graph.NodeID(g.NumNodes() / 2)
			failLink := p.Routes().NextLink(src, dst)
			if !graph.ConnectedUnder(g, graph.NewFailureSet(failLink)) {
				t.Fatalf("link %d is a bridge", failLink)
			}

			run := func(scheme Scheme) *telemetry.Snapshot {
				s, err := New(Config{
					Graph:          g,
					Scheme:         scheme,
					Flows:          []Flow{{Src: src, Dst: dst, Interval: time.Millisecond, Bits: 8192}},
					Horizon:        2 * time.Second,
					DetectionDelay: 50 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				s.FailLinkAt(failLink, time.Second)
				return s.Run()
			}

			wire := &WirePRScheme{FIB: fib}
			wireStats := run(wire)
			compiledStats := run(&CompiledPRScheme{FIB: fib})

			if wireStats.Counter(MetricGenerated) == 0 {
				t.Fatal("no traffic generated")
			}
			// The wire path never refuses a packet: all losses are
			// blackholes inside the 50 ms detection window.
			if drops := wire.WireDrops(); drops != 0 {
				t.Fatalf("wire path dropped %d packets (%v); want 0", drops, wire.Verdicts)
			}
			if nr := wireStats.Counter(MetricDropNoRoute); nr != 0 {
				t.Fatalf("%d no-route drops; want 0", nr)
			}
			if ttl := wireStats.Counter(MetricDropTTL); ttl != 0 {
				t.Fatalf("%d TTL drops; want 0", ttl)
			}
			if wireStats.Counter(MetricDelivered)+wireStats.Counter(MetricDropBlackhole) != wireStats.Counter(MetricGenerated) {
				t.Fatalf("accounting broken: %d delivered + %d blackholed != %d generated",
					wireStats.Counter(MetricDelivered), wireStats.Counter(MetricDropBlackhole), wireStats.Counter(MetricGenerated))
			}
			// Differential oracle at the traffic level: byte-level
			// forwarding delivers exactly what the compiled abstract
			// protocol does.
			if wireStats.Counter(MetricDelivered) != compiledStats.Counter(MetricDelivered) {
				t.Fatalf("wire delivered %d, compiled protocol %d", wireStats.Counter(MetricDelivered), compiledStats.Counter(MetricDelivered))
			}
			if wire.Verdicts[dataplane.WireForward] == 0 {
				t.Fatal("wire path never forwarded — scheme not engaged")
			}
		})
	}
}

// TestWireSchemeDSCPParity: on a small-diameter backbone the codec stays
// DSCP/IPv4 and the wire scheme matches the compiled protocol's delivery
// as well — codec selection costs nothing where the seed already worked.
func TestWireSchemeDSCPParity(t *testing.T) {
	fib, p, g := buildWireFIB(t, wireCase{"abilene", route.HopCount})
	if fib.Codec() != dataplane.CodecDSCP {
		t.Fatalf("abilene codec = %v; want dscp", fib.Codec())
	}
	src := graph.NodeID(0)
	dst := graph.NodeID(g.NumNodes() - 1)
	failLink := p.Routes().NextLink(src, dst)
	run := func(scheme Scheme) *telemetry.Snapshot {
		s, err := New(Config{
			Graph:          g,
			Scheme:         scheme,
			Flows:          []Flow{{Src: src, Dst: dst, Interval: time.Millisecond, Bits: 8192}},
			Horizon:        2 * time.Second,
			DetectionDelay: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.FailLinkAt(failLink, time.Second)
		return s.Run()
	}
	wire := &WirePRScheme{FIB: fib}
	ws := run(wire)
	cs := run(&CompiledPRScheme{FIB: fib})
	if wire.WireDrops() != 0 {
		t.Fatalf("wire drops on abilene: %v", wire.Verdicts)
	}
	if ws.Counter(MetricDelivered) != cs.Counter(MetricDelivered) {
		t.Fatalf("wire delivered %d, compiled %d", ws.Counter(MetricDelivered), cs.Counter(MetricDelivered))
	}
}

// TestWireTTLBudgetEnvelope pins down the one place byte-level forwarding
// can diverge from the abstract protocol: the IP TTL/hop-limit field is 8
// bits, so a frame starts with at most 255 hops of budget, while the
// abstract walk is capped only by the simulator's 4×nodes allowance. On a
// 600-node ring a recycled route runs ~400 hops: the protocol delivers,
// the wire path burns its TTL and drops — classified as WireDropTTL, never
// silently. No IP dataplane can beat this envelope, which is why
// WirePRScheme's parity claim is scoped to walks of ≤ 255 hops.
func TestWireTTLBudgetEnvelope(t *testing.T) {
	fib, p, g := buildWireFIB(t, wireCase{"ring:600", route.HopCount})
	if fib.Codec() != dataplane.CodecFlowLabel {
		t.Fatalf("ring:600 codec = %v; want flow-label", fib.Codec())
	}
	src, dst := graph.NodeID(0), graph.NodeID(200)
	failLink := p.Routes().NextLink(src, dst)
	fails := graph.NewFailureSet(failLink)

	res := p.Walk(src, dst, fails)
	if res.Outcome != core.Delivered {
		t.Fatalf("abstract walk: %v; want delivered", res.Outcome)
	}
	if res.Hops() <= 255 {
		t.Fatalf("abstract walk took %d hops; need > 255 to exercise the envelope", res.Hops())
	}

	st := dataplane.FromFailureSet(g.NumLinks(), fails)
	buf, err := fib.NewWireFrame(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	node, ingress := src, rotation.NoDart
	forwards := 0
	for {
		egress, verdict := fib.ForwardWire(node, ingress, st, buf)
		switch verdict {
		case dataplane.WireForward:
			forwards++
			if forwards > 300 {
				t.Fatal("wire walk still forwarding past any possible TTL budget")
			}
			node, ingress = fib.Head(egress), egress
			continue
		case dataplane.WireDropTTL:
			if forwards != 254 {
				t.Fatalf("TTL drop after %d forwards; want 254 (255-hop budget)", forwards)
			}
			return
		default:
			t.Fatalf("wire walk ended with %v after %d forwards; want WireDropTTL", verdict, forwards)
		}
	}
}
