package sim

import (
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/graph"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
)

func compiledScheme(t *testing.T, p *PRScheme) *CompiledPRScheme {
	t.Helper()
	fib, err := dataplane.Compile(p.Protocol)
	if err != nil {
		t.Fatal(err)
	}
	return &CompiledPRScheme{FIB: fib}
}

// TestCompiledSchemeMatchesInterpreted: the discrete-event simulator must
// produce identical outcomes whether PR runs on core.Protocol or on the
// compiled FIB — same deliveries, same drops, same latency distribution.
func TestCompiledSchemeMatchesInterpreted(t *testing.T) {
	tp := topo.Abilene(topo.DistanceWeights)
	g := tp.Graph
	interpreted := prScheme(t, g, core.Full)
	compiled := compiledScheme(t, interpreted)

	run := func(scheme Scheme) *telemetry.Snapshot {
		s, err := New(Config{
			Graph:          g,
			Scheme:         scheme,
			Flows:          []Flow{{Src: 0, Dst: 5, Interval: time.Millisecond}, {Src: 3, Dst: 9, Interval: time.Millisecond}},
			Horizon:        2 * time.Second,
			DetectionDelay: 40 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		// A failure mid-run and a repair near the end exercise both
		// directions of the link-state mirror.
		s.FailLinkAt(graph.LinkID(0), 500*time.Millisecond)
		s.FailLinkAt(graph.LinkID(4), 900*time.Millisecond)
		s.RepairLinkAt(graph.LinkID(0), 1400*time.Millisecond)
		return s.Run()
	}

	a := run(interpreted)
	b := run(compiled)
	for _, name := range []string{MetricGenerated, MetricDelivered, MetricLatencyNs,
		MetricHops, MetricDropBlackhole, MetricDropNoRoute, MetricDropTTL} {
		if a.Counter(name) != b.Counter(name) {
			t.Fatalf("compiled scheme diverged on %s: interpreted %d, compiled %d",
				name, a.Counter(name), b.Counter(name))
		}
	}
	if MaxLatency(a) != MaxLatency(b) {
		t.Fatalf("compiled scheme diverged on max latency: %v vs %v", MaxLatency(a), MaxLatency(b))
	}
}
