package sim

import (
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/route"
	"recycle/internal/telemetry"
	"recycle/internal/topo"
)

func prScheme(t *testing.T, g *graph.Graph, v core.Variant) *PRScheme {
	t.Helper()
	sys, err := (embedding.Auto{Seed: 1}).Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(g, sys, route.Build(g, route.HopCount), core.Config{Variant: v})
	if err != nil {
		t.Fatal(err)
	}
	return &PRScheme{Protocol: p}
}

func TestConfigValidation(t *testing.T) {
	g := graph.Ring(4)
	if _, err := New(Config{Scheme: prScheme(t, g, core.Full), Horizon: time.Second}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := New(Config{Graph: g, Horizon: time.Second}); err == nil {
		t.Fatal("nil scheme accepted")
	}
	if _, err := New(Config{Graph: g, Scheme: prScheme(t, g, core.Full)}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := New(Config{Graph: g, Scheme: prScheme(t, g, core.Full), Horizon: time.Second,
		Flows: []Flow{{Src: 0, Dst: 1}}}); err == nil {
		t.Fatal("zero-interval flow accepted")
	}
}

func TestFailureFreeDeliveryAndLatency(t *testing.T) {
	g := graph.Ring(4) // unit weights → min 10 µs propagation per hop
	s, err := New(Config{
		Graph:   g,
		Scheme:  prScheme(t, g, core.Full),
		Horizon: time.Second,
		Flows:   []Flow{{Src: 0, Dst: 2, Interval: 10 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Run()
	if st.Counter(MetricGenerated) == 0 {
		t.Fatal("no packets generated")
	}
	if DeliveryRate(st) != 1 {
		t.Fatalf("delivery rate = %v; want 1 without failures", DeliveryRate(st))
	}
	// Two hops of ≥10 µs plus two ≈0.8 µs serialisations each way.
	if MeanLatency(st) < 20*time.Microsecond {
		t.Fatalf("mean latency = %v; want ≥ 20 µs", MeanLatency(st))
	}
	if st.Counter(MetricHops) != 2*st.Counter(MetricDelivered) {
		t.Fatalf("hops = %d; want 2 per packet", st.Counter(MetricHops))
	}
}

func TestDeterministicRuns(t *testing.T) {
	g := graph.Ring(6)
	run := func() *telemetry.Snapshot {
		s, err := New(Config{
			Graph:   g,
			Scheme:  prScheme(t, g, core.Full),
			Horizon: 500 * time.Millisecond,
			Flows: []Flow{
				{Src: 0, Dst: 3, Interval: 3 * time.Millisecond},
				{Src: 2, Dst: 5, Interval: 5 * time.Millisecond},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		s.FailLinkAt(0, 100*time.Millisecond)
		return s.Run()
	}
	a, b := run(), run()
	if a.Counter(MetricGenerated) != b.Counter(MetricGenerated) || a.Counter(MetricDelivered) != b.Counter(MetricDelivered) || a.Counter(MetricLatencyNs) != b.Counter(MetricLatencyNs) {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

// TestPRLossWindowIsDetectionOnly: PR drops exactly the packets emitted
// into the dead link during the detection delay, then recovers instantly.
func TestPRLossWindowIsDetectionOnly(t *testing.T) {
	tp := topo.Abilene(topo.UnitWeights)
	g := tp.Graph
	res, err := RunLossWindow(Config{
		Graph:          g,
		Scheme:         prScheme(t, g, core.Full),
		Horizon:        2 * time.Second,
		DetectionDelay: 50 * time.Millisecond,
	}, g.NodeByName("Seattle"), g.NodeByName("LosAngeles"), 1000, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 pps × 50 ms ≈ 50 packets blackholed (±few for boundary/in-flight).
	if res.Blackhole < 40 || res.Blackhole > 60 {
		t.Fatalf("blackholed = %d; want ≈50 (detection window only)", res.Blackhole)
	}
	if res.NoRoute != 0 || res.TTL != 0 {
		t.Fatalf("PR dropped outside the detection window: %+v", res)
	}
	if res.Delivered+res.Blackhole < res.Generated-2 {
		t.Fatalf("unaccounted packets: %+v", res)
	}
}

// TestReconvLossWindowLargerThanPR reproduces the paper's motivation: the
// reconverging IGP loses far more packets than PR for the same outage.
func TestReconvLossWindowLargerThanPR(t *testing.T) {
	tp := topo.Abilene(topo.UnitWeights)
	g := tp.Graph
	src, dst := g.NodeByName("Seattle"), g.NodeByName("LosAngeles")

	prRes, err := RunLossWindow(Config{
		Graph: g, Scheme: prScheme(t, g, core.Full), Horizon: 2 * time.Second,
	}, src, dst, 2000, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rcRes, err := RunLossWindow(Config{
		Graph: g, Scheme: &ReconvScheme{}, Horizon: 2 * time.Second,
	}, src, dst, 2000, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	prLost := prRes.Generated - prRes.Delivered
	rcLost := rcRes.Generated - rcRes.Delivered
	if rcLost <= prLost {
		t.Fatalf("reconvergence lost %d ≤ PR lost %d; paper's motivation not reproduced", rcLost, prLost)
	}
	// Reconvergence eventually recovers too.
	if rcRes.Delivered == 0 {
		t.Fatal("reconvergence never delivered")
	}
}

// TestFCPSchemeRecovers: FCP loses only the detection window, like PR.
func TestFCPSchemeRecovers(t *testing.T) {
	tp := topo.Abilene(topo.UnitWeights)
	g := tp.Graph
	res, err := RunLossWindow(Config{
		Graph: g, Scheme: &FCPScheme{}, Horizon: 2 * time.Second,
	}, g.NodeByName("Seattle"), g.NodeByName("LosAngeles"), 1000, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.NoRoute != 0 || res.TTL != 0 {
		t.Fatalf("FCP dropped outside detection: %+v", res)
	}
	if res.Blackhole > 60 {
		t.Fatalf("FCP blackholed %d; want ≈50", res.Blackhole)
	}
}

// TestLinkRepair: traffic switches back after the link recovers and
// detection propagates.
func TestLinkRepair(t *testing.T) {
	g := graph.Ring(4)
	s, err := New(Config{
		Graph:          g,
		Scheme:         prScheme(t, g, core.Full),
		Horizon:        time.Second,
		DetectionDelay: 10 * time.Millisecond,
		Flows:          []Flow{{Src: 0, Dst: 1, Interval: 5 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.FailLinkAt(0, 200*time.Millisecond)
	s.RepairLinkAt(0, 400*time.Millisecond)
	st := s.Run()
	// Roughly (10ms detection + in-flight) / 5ms ≈ 2-4 blackholes; all the
	// rest delivered.
	if st.Counter(MetricDropBlackhole) > 5 {
		t.Fatalf("blackholed = %d; want a handful", st.Counter(MetricDropBlackhole))
	}
	if DeliveryRate(st) < 0.97 {
		t.Fatalf("delivery rate = %v; want ≈1 with recovery", DeliveryRate(st))
	}
}

// TestSerialisationBackpressure: a slow link forces queueing latency.
func TestSerialisationBackpressure(t *testing.T) {
	g := graph.Ring(3)
	s, err := New(Config{
		Graph:        g,
		Scheme:       prScheme(t, g, core.Full),
		Horizon:      100 * time.Millisecond,
		BandwidthBps: 1e6, // 1 Mb/s: 8192 bits ≈ 8.2 ms per packet
		Flows:        []Flow{{Src: 0, Dst: 1, Interval: time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Run()
	if st.Counter(MetricDelivered) == 0 {
		t.Fatal("nothing delivered")
	}
	// Queue builds: mean latency must exceed one serialisation time.
	if MeanLatency(st) < 8*time.Millisecond {
		t.Fatalf("mean latency = %v; want ≥ 8 ms under backpressure", MeanLatency(st))
	}
	if MaxLatency(st) <= MeanLatency(st) {
		t.Fatal("max latency should exceed mean under growing queue")
	}
}

// TestTTLDropsOnLoop: the Basic variant's Figure 1(c) loop must surface as
// TTL drops, not hang the simulator.
func TestTTLDropsOnLoop(t *testing.T) {
	tp := topo.PaperExample()
	g := tp.Graph
	tbl := route.Build(g, route.HopCount)
	p, err := core.New(g, tp.Embedding, tbl, core.Config{Variant: core.Basic})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Graph:          g,
		Scheme:         &PRScheme{Protocol: p},
		Horizon:        200 * time.Millisecond,
		DetectionDelay: time.Millisecond,
		Flows:          []Flow{{Src: g.NodeByName("A"), Dst: g.NodeByName("F"), Interval: 10 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.FailLinkAt(g.FindLink(g.NodeByName("D"), g.NodeByName("E")), 20*time.Millisecond)
	s.FailLinkAt(g.FindLink(g.NodeByName("B"), g.NodeByName("C")), 20*time.Millisecond)
	st := s.Run()
	if st.Counter(MetricDropTTL) == 0 {
		t.Fatal("expected TTL drops from the basic-variant loop")
	}
}

func TestStatsHelpers(t *testing.T) {
	st := &telemetry.Snapshot{Counters: map[string]uint64{}}
	if DeliveryRate(st) != 1 || MeanLatency(st) != 0 || Dropped(st) != 0 {
		t.Fatal("zero-value delta helpers wrong")
	}
	st.SetCounter(MetricGenerated, 4)
	st.SetCounter(MetricDelivered, 2)
	st.SetCounter(MetricDropTTL, 2)
	st.SetCounter(MetricLatencyNs, uint64(10*time.Millisecond))
	if DeliveryRate(st) != 0.5 || Dropped(st) != 2 || MeanLatency(st) != 5*time.Millisecond {
		t.Fatalf("delta helpers wrong: %+v", st)
	}
}
