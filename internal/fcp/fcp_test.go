package fcp

import (
	"testing"

	"recycle/internal/graph"
	"recycle/internal/topo"
)

func TestWalkNoFailures(t *testing.T) {
	g := graph.Ring(6)
	r := New(g)
	res := r.Walk(0, 3, nil)
	if !res.Delivered || res.Cost != 3 || res.Stretch != 1 {
		t.Fatalf("result = %+v; want delivered cost 3 stretch 1", res)
	}
	if res.Recomputations != 1 {
		t.Fatalf("recomputations = %d; want 1 (initial only)", res.Recomputations)
	}
	if res.CarriedFailures != 0 {
		t.Fatalf("carried = %d; want 0", res.CarriedFailures)
	}
}

func TestWalkSelf(t *testing.T) {
	g := graph.Ring(4)
	res := New(g).Walk(2, 2, nil)
	if !res.Delivered || res.Cost != 0 || len(res.Path) != 1 {
		t.Fatalf("self walk = %+v", res)
	}
}

func TestWalkSingleFailure(t *testing.T) {
	g := graph.Ring(6)
	r := New(g)
	// Fail link 0 (0-1); packet 0→1 must go the long way: cost 5, stretch 5.
	res := r.Walk(0, 1, graph.NewFailureSet(0))
	if !res.Delivered {
		t.Fatal("not delivered")
	}
	if res.Cost != 5 || res.Stretch != 5 {
		t.Fatalf("cost %v stretch %v; want 5, 5", res.Cost, res.Stretch)
	}
	if res.CarriedFailures != 1 {
		t.Fatalf("carried = %d; want 1", res.CarriedFailures)
	}
	if res.Recomputations != 2 {
		t.Fatalf("recomputations = %d; want 2", res.Recomputations)
	}
}

// TestDeliveryEqualsConnectivity: FCP's guarantee — delivery exactly when a
// path exists.
func TestDeliveryEqualsConnectivity(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := graph.RandomTwoConnected(10, 16, seed)
		r := New(g)
		scenarios, err := graph.SampleFailureScenarios(g, 3, 8, seed)
		if err != nil {
			t.Fatal(err)
		}
		// Also mix in disconnecting scenarios.
		scenarios = append(scenarios, graph.FailNode(g, 0))
		for _, fs := range scenarios {
			reach := graph.ReachableUnder(g, 1, fs)
			for src := 0; src < g.NumNodes(); src++ {
				for dst := 0; dst < g.NumNodes(); dst++ {
					if src == dst {
						continue
					}
					res := r.Walk(graph.NodeID(src), graph.NodeID(dst), fs)
					connected := reach[src] == reach[dst] && pairConnected(g, graph.NodeID(src), graph.NodeID(dst), fs)
					if res.Delivered != connected {
						t.Fatalf("seed %d failures %v %d→%d: delivered=%v connected=%v",
							seed, fs, src, dst, res.Delivered, connected)
					}
					if res.Delivered && res.Stretch < 1-1e-9 {
						t.Fatalf("stretch %v < 1", res.Stretch)
					}
				}
			}
		}
	}
}

func pairConnected(g *graph.Graph, a, b graph.NodeID, fs *graph.FailureSet) bool {
	return graph.ReachableUnder(g, a, fs)[b]
}

// TestFCPPathOptimalGivenKnowledge: once FCP has encountered all failures
// on its route, its remaining path is optimal for the surviving graph; with
// failures adjacent to the source the whole path is optimal.
func TestFCPPathOptimalAfterAdjacentFailure(t *testing.T) {
	tp := topo.Abilene(topo.UnitWeights)
	g := tp.Graph
	r := New(g)
	src := g.NodeByName("Seattle")
	dst := g.NodeByName("LosAngeles")
	// Fail Seattle-Sunnyvale: Seattle discovers it immediately, so its
	// path equals the surviving shortest path.
	l := g.FindLink(src, g.NodeByName("Sunnyvale"))
	fs := graph.NewFailureSet(l)
	res := r.Walk(src, dst, fs)
	if !res.Delivered {
		t.Fatal("not delivered")
	}
	want := graph.ShortestPathTree(g, dst, fs).Dist[src]
	if res.Cost != want {
		t.Fatalf("cost %v; want optimal surviving cost %v", res.Cost, want)
	}
}

// TestFCPStretchTypicallyBelowPR is the qualitative Figure 2 relationship;
// asserted in eval tests, here just sanity: FCP cost never exceeds walking
// every link twice.
func TestFCPCostBounded(t *testing.T) {
	g := graph.RandomTwoConnected(12, 20, 4)
	r := New(g)
	total := 0.0
	for _, l := range g.Links() {
		total += 2 * l.Weight
	}
	scenarios, err := graph.SampleFailureScenarios(g, 4, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range scenarios {
		for src := 0; src < g.NumNodes(); src++ {
			for dst := 0; dst < g.NumNodes(); dst++ {
				if src == dst {
					continue
				}
				if res := r.Walk(graph.NodeID(src), graph.NodeID(dst), fs); res.Cost > total {
					t.Fatalf("cost %v exceeds 2×total weight %v", res.Cost, total)
				}
			}
		}
	}
}

func TestHeaderBits(t *testing.T) {
	g := graph.Ring(6) // 6 links → 3 bits per link id
	if b := HeaderBits(g, 0); b != 8 {
		t.Fatalf("empty header = %d bits; want 8", b)
	}
	if b := HeaderBits(g, 2); b != 8+2*3 {
		t.Fatalf("2 failures = %d bits; want 14", b)
	}
	big := graph.Complete(20) // 190 links → 8 bits
	if b := HeaderBits(big, 3); b != 8+3*8 {
		t.Fatalf("3 failures on K20 = %d bits; want 32", b)
	}
}
