// Package fcp implements the Failure-Carrying Packets baseline
// (Lakshminarayanan et al., SIGCOMM 2007 — the paper's reference [8]) that
// Figure 2 compares PR against.
//
// Under FCP each packet carries the set of failed links its path has
// encountered. A router forwards along the shortest path to the destination
// computed over the topology minus the carried failures; when its chosen
// egress turns out to be down, it adds that link to the carried set,
// recomputes, and tries again. FCP reaches any destination that remains
// connected, at the price of unbounded header state (the failure list) and
// an on-demand shortest-path computation at every failure encounter — the
// trade-off PR is designed to avoid (§6).
package fcp

import (
	"recycle/internal/graph"
)

// Result describes one FCP packet walk.
type Result struct {
	// Delivered reports whether the packet reached the destination.
	Delivered bool
	// Path is the node sequence visited.
	Path []graph.NodeID
	// Cost is the weight sum of traversed links.
	Cost float64
	// Stretch is Cost / failure-free shortest-path cost (0 if undefined).
	Stretch float64
	// Recomputations counts shortest-path recomputations triggered at
	// failure encounters — the per-packet processing overhead FCP pays.
	Recomputations int
	// CarriedFailures is the number of failed links in the header when the
	// walk ended — the header overhead FCP pays.
	CarriedFailures int
}

// Router simulates FCP forwarding over a fixed topology. It is stateless
// across packets (the paper's per-flow state optimisation is deliberately
// not modelled; it only trades memory for computation).
type Router struct {
	g *graph.Graph
	// spCost[d][n] is the failure-free shortest-path cost n→d, used for
	// stretch accounting.
	baseline []*graph.SPTree
}

// New builds an FCP router for g.
func New(g *graph.Graph) *Router {
	r := &Router{g: g, baseline: make([]*graph.SPTree, g.NumNodes())}
	for d := 0; d < g.NumNodes(); d++ {
		r.baseline[d] = graph.ShortestPathTree(g, graph.NodeID(d), nil)
	}
	return r
}

// Graph returns the router's topology.
func (r *Router) Graph() *graph.Graph { return r.g }

// Walk simulates one FCP packet from src to dst under the global failure
// set. The packet starts with an empty carried-failure list and learns
// failures only by encountering them, exactly as in the FCP design.
func (r *Router) Walk(src, dst graph.NodeID, failures *graph.FailureSet) Result {
	res := Result{Path: []graph.NodeID{src}}
	if src == dst {
		res.Delivered = true
		return res
	}

	carried := graph.NewFailureSet()
	node := src
	// Tree cache: recomputing only when the carried set changes keeps the
	// simulation honest (routers recompute per failure encounter, not per
	// hop; FCP's own optimisation).
	tree := graph.ShortestPathTree(r.g, dst, carried)
	res.Recomputations++

	// 2·E·V bounds any loop-free progression of carried-set states; FCP
	// cannot revisit a (node, carried-set) state because the set only
	// grows and routing between growths is loop-free.
	maxSteps := 2*r.g.NumNodes()*r.g.NumLinks() + 16
	for steps := 0; steps < maxSteps; steps++ {
		if node == dst {
			res.Delivered = true
			res.CarriedFailures = carried.Len()
			base := r.baseline[dst].Dist[src]
			if base > 0 {
				res.Stretch = res.Cost / base
			}
			return res
		}
		next := tree.NextLink[node]
		if next == graph.NoLink {
			// Destination unreachable given carried failures: FCP drops
			// (or would flood-notify; either way the packet dies).
			res.CarriedFailures = carried.Len()
			return res
		}
		if failures.Down(next) {
			// Failure encountered: record it in the header and recompute.
			carried.Add(next)
			tree = graph.ShortestPathTree(r.g, dst, carried)
			res.Recomputations++
			continue
		}
		res.Cost += r.g.Weight(next)
		node = r.g.Link(next).Other(node)
		res.Path = append(res.Path, node)
	}
	res.CarriedFailures = carried.Len()
	return res
}

// HeaderBits estimates the FCP header overhead in bits for a packet whose
// carried set holds n failures: each failure names a link, costing
// ⌈log2(links)⌉ bits, plus a 8-bit count prefix. The SIGCOMM paper's
// measured averages are hundreds of bits; this model reproduces the paper's
// qualitative point that FCP "employs more bits than are currently
// available" in IP headers (§6).
func HeaderBits(g *graph.Graph, carried int) int {
	if carried == 0 {
		return 8
	}
	linkBits := 1
	for 1<<linkBits < g.NumLinks() {
		linkBits++
	}
	return 8 + carried*linkBits
}
