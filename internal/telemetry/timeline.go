package telemetry

import "time"

// Epoch is one interval of a Timeline: the half-open window
// [Start, End) between two link-state transitions, its label (what
// changed at Start), and the metric deltas accumulated within it.
type Epoch struct {
	Index int           `json:"index"`
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	Label string        `json:"label"`
	Delta *Snapshot     `json:"delta"`
}

// Timeline folds a Registry's counters into per-epoch deltas keyed to
// failure-scenario events. Create one at run start (it takes the base
// snapshot, so runs sharing a registry don't bleed into each other),
// Roll at every link-state transition instant, Finish at the horizon:
//
//	tl := telemetry.NewTimeline(reg)
//	...
//	tl.Roll(at, "link 5 down")   // closes the running epoch at `at`
//	tl.Annotate("link 7 down")   // same-instant event: one boundary
//	...
//	epochs := tl.Finish(horizon)
//
// Same-instant events must share one boundary (Annotate, not Roll) to
// match the failure.Oracle's epoch folding — then epoch i of the
// timeline is exactly epoch i of the oracle, and a violation's epoch
// index addresses the delta window it happened in. Sum proves the
// exposition lossless: the merged deltas equal the aggregate exactly.
type Timeline struct {
	reg    *Registry
	start  time.Duration
	label  string
	prev   *Snapshot
	epochs []Epoch
	done   bool
}

// NewTimeline opens a timeline over r: epoch 0 starts at 0, labelled
// "start", with the registry's current values as the base — only deltas
// accumulated after this instant are attributed.
func NewTimeline(r *Registry) *Timeline {
	return &Timeline{reg: r, label: "start", prev: r.Snapshot()}
}

// Roll closes the running epoch at instant `at` and opens the next one,
// labelled with what changed. Calls with at equal to the running
// epoch's start (a same-instant event) fold into an annotation instead
// of producing an empty epoch — mirroring the oracle's event folding.
func (t *Timeline) Roll(at time.Duration, label string) {
	if t.done {
		return
	}
	if at <= t.start {
		t.Annotate(label)
		return
	}
	cur := t.reg.Snapshot()
	t.epochs = append(t.epochs, Epoch{
		Index: len(t.epochs),
		Start: t.start,
		End:   at,
		Label: t.label,
		Delta: cur.Sub(t.prev),
	})
	t.prev = cur
	t.start = at
	t.label = label
}

// Annotate appends to the running epoch's label — for events that share
// an instant with the one that opened it.
func (t *Timeline) Annotate(label string) {
	if t.done || label == "" {
		return
	}
	if t.label == "" || t.label == "start" {
		t.label = label
		return
	}
	t.label += "; " + label
}

// Finish closes the running epoch at the horizon and returns all
// epochs. Further Roll/Annotate calls are ignored; Finish is
// idempotent.
func (t *Timeline) Finish(at time.Duration) []Epoch {
	if t.done {
		return t.epochs
	}
	if at < t.start {
		at = t.start
	}
	cur := t.reg.Snapshot()
	t.epochs = append(t.epochs, Epoch{
		Index: len(t.epochs),
		Start: t.start,
		End:   at,
		Label: t.label,
		Delta: cur.Sub(t.prev),
	})
	t.prev = cur
	t.done = true
	return t.epochs
}

// Epochs returns the epochs closed so far.
func (t *Timeline) Epochs() []Epoch { return t.epochs }

// Sum merges every closed epoch's delta — by construction exactly the
// registry's aggregate accumulated since NewTimeline, which is the
// exposition-is-lossless invariant the eval writers assert.
func (t *Timeline) Sum() *Snapshot {
	s := NewSnapshot()
	for _, e := range t.epochs {
		s.Merge(e.Delta)
	}
	return s
}
