package telemetry

import (
	"encoding/json"
	"io"
)

// Chrome trace-event export: a SpanSnapshot (and optionally the epoch
// timeline) rendered as the JSON object format chrome://tracing and
// Perfetto open directly. Spans become complete ("X") events on pid 1 —
// worker child spans on their own tid rows so the fan-out is visible as
// parallel tracks — and timeline epochs become "X" events on pid 2,
// whose clock is the scenario clock, not the tracer's monotonic one.

// chromeEvent is one trace event; ts/dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object-format envelope.
type chromeTrace struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	Metadata    map[string]string `json:"metadata,omitempty"`
}

// span/epoch process IDs in the emitted trace.
const (
	chromePidSpans  = 1
	chromePidEpochs = 2
)

// WriteChromeTrace renders spans (and epochs, which may be nil) as
// Chrome trace-event JSON. Spans carrying an AttrWorker attribute land
// on tid 2+worker; every other span shares tid 1, nesting by time
// containment as chrome://tracing renders it.
func WriteChromeTrace(w io.Writer, s *SpanSnapshot, epochs []Epoch) error {
	tr := chromeTrace{
		TraceEvents: []chromeEvent{},
		Metadata:    map[string]string{"source": "recycle telemetry tracer"},
	}
	if s != nil {
		for _, r := range s.Spans {
			ev := chromeEvent{
				Name: r.Name,
				Cat:  "span",
				Ph:   "X",
				Ts:   float64(r.Start) / 1e3,
				Dur:  float64(r.Dur) / 1e3,
				Pid:  chromePidSpans,
				Tid:  1,
				Args: map[string]any{"id": r.ID, "seq": r.Seq},
			}
			if r.Parent != 0 {
				ev.Args["parent"] = r.Parent
			}
			for _, a := range r.Attrs {
				ev.Args[a.Key.String()] = a.Val
				if a.Key == AttrWorker {
					ev.Tid = 2 + int(a.Val)
				}
			}
			tr.TraceEvents = append(tr.TraceEvents, ev)
		}
	}
	for _, e := range epochs {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: e.Label,
			Cat:  "epoch",
			Ph:   "X",
			Ts:   float64(e.Start) / 1e3,
			Dur:  float64(e.End-e.Start) / 1e3,
			Pid:  chromePidEpochs,
			Tid:  1,
			Args: map[string]any{"epoch": e.Index},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
