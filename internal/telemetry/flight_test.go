package telemetry

import (
	"strings"
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/rotation"
)

func finishFlight(r *Recorder, f *Flight, verdict string, recycled bool) {
	ev := core.EventRoute
	hdr := core.Header{}
	if recycled {
		ev = core.EventCycle
		hdr = core.Header{PR: true, DD: 2}
	}
	f.Record(Hop{Node: 1, Egress: 2, Event: ev, Header: hdr})
	r.Finish(f, verdict, time.Millisecond)
}

func TestRecorderSamplingAndMatch(t *testing.T) {
	r := NewRecorder(RecorderConfig{SampleEvery: 3, Match: []Pair{{Src: 7, Dst: 9}}})
	armed := 0
	for i := int64(0); i < 9; i++ {
		if f := r.Begin(i, 0, 1, 0); f != nil {
			armed++
		}
	}
	if armed != 3 {
		t.Fatalf("SampleEvery=3 armed %d of 9, want 3", armed)
	}
	// A matched pair arms regardless of the sampling phase.
	if r.Begin(100, 7, 9, 0) == nil {
		t.Fatal("matched pair not armed")
	}
	if r.Begin(101, 9, 7, 0) != nil {
		t.Fatal("reverse of matched pair armed (pairs are directed)")
	}
	// SampleEvery=0 disables sampling entirely.
	r2 := NewRecorder(RecorderConfig{})
	if r2.Begin(0, 0, 1, 0) != nil {
		t.Fatal("unarmed recorder returned a flight")
	}
	if r2.Seen() != 1 {
		t.Fatalf("Seen() = %d, want 1", r2.Seen())
	}
}

func TestRecorderNilTolerance(t *testing.T) {
	r := NewRecorder(RecorderConfig{})
	f := r.Begin(0, 0, 1, 0) // unarmed → nil
	f.Record(Hop{})          // must not panic
	r.Finish(f, "delivered", 0)
	if got := len(r.Flights()); got != 0 {
		t.Fatalf("nil flight was retained: %d", got)
	}
}

func TestRecorderInterestingFilter(t *testing.T) {
	r := NewRecorder(RecorderConfig{SampleEvery: 1})
	finishFlight(r, r.Begin(0, 0, 1, 0), "delivered", false) // boring: dropped
	finishFlight(r, r.Begin(1, 0, 1, 0), "delivered", true)  // recycled: kept
	finishFlight(r, r.Begin(2, 0, 1, 0), "ttl", false)       // lost: kept
	if r.Kept() != 2 || r.Skipped() != 1 {
		t.Fatalf("kept/skipped = %d/%d, want 2/1", r.Kept(), r.Skipped())
	}
	all := NewRecorder(RecorderConfig{SampleEvery: 1, KeepAll: true})
	finishFlight(all, all.Begin(0, 0, 1, 0), "delivered", false)
	if all.Kept() != 1 {
		t.Fatalf("KeepAll dropped a boring flight")
	}
}

func TestRecorderRingWraparound(t *testing.T) {
	const capacity = 4
	r := NewRecorder(RecorderConfig{SampleEvery: 1, Capacity: capacity, KeepAll: true})
	for i := int64(0); i < 10; i++ {
		f := r.Begin(i, 0, 1, time.Duration(i))
		r.Finish(f, "delivered", time.Duration(i))
	}
	got := r.Flights()
	if len(got) != capacity {
		t.Fatalf("ring holds %d flights, want %d", len(got), capacity)
	}
	// Oldest first: packets 6,7,8,9 survive.
	for i, f := range got {
		if want := int64(6 + i); f.PacketID != want {
			t.Fatalf("flight %d is packet %d, want %d", i, f.PacketID, want)
		}
	}
	if r.Kept() != 10 {
		t.Fatalf("Kept() = %d, want 10", r.Kept())
	}
}

func TestFlightMaxHopsTruncation(t *testing.T) {
	r := NewRecorder(RecorderConfig{SampleEvery: 1, MaxHops: 3, KeepAll: true})
	f := r.Begin(0, 0, 1, 0)
	for i := 0; i < 10; i++ {
		f.Record(Hop{Node: 0, Event: core.EventCycle})
	}
	r.Finish(f, "ttl", time.Second)
	kept := r.Flights()[0]
	if len(kept.Hops) != 3 || kept.Truncated != 7 {
		t.Fatalf("hops/truncated = %d/%d, want 3/7", len(kept.Hops), kept.Truncated)
	}
	if !strings.Contains(kept.Explain(), "7 further hops") {
		t.Fatalf("Explain() missing truncation note:\n%s", kept.Explain())
	}
}

func TestFlightClassifiersAndExplain(t *testing.T) {
	f := &Flight{PacketID: 5, Src: 2, Dst: 8, Verdict: "delivered"}
	f.Record(Hop{At: 0, Node: 2, Egress: 4, Event: core.EventRoute})
	f.Record(Hop{At: time.Millisecond, Node: 3, Egress: 6, Event: core.EventDetect, Header: core.Header{PR: true, DD: 3}})
	f.Record(Hop{At: 2 * time.Millisecond, Node: 4, Egress: 8, Event: core.EventCycle, Header: core.Header{PR: true, DD: 3}})
	f.Record(Hop{At: 3 * time.Millisecond, Node: 8, Egress: rotation.NoDart, Event: core.EventDeliver, Header: core.Header{PR: true, DD: 3}})

	if !f.Delivered() || !f.Recycled() {
		t.Fatalf("delivered/recycled = %v/%v, want true/true", f.Delivered(), f.Recycled())
	}
	if n := f.RecycleHops(); n != 2 {
		t.Fatalf("RecycleHops() = %d, want 2 (detect+cycle)", n)
	}
	out := f.Explain()
	for _, want := range []string{"flight #5", "2 → 8", "recycled, 2 hops", "detect", "cycle", "PR dd=3", "egress -", "verdict: delivered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain() missing %q:\n%s", want, out)
		}
	}

	boring := &Flight{Verdict: "delivered"}
	boring.Record(Hop{Event: core.EventRoute})
	if boring.Recycled() {
		t.Fatal("pure shortest-path flight classified as recycled")
	}
}
