package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing: causally-linked timed regions over the control plane.
//
// A Tracer hands out Spans — (name, parent, monotonic start, duration,
// a few typed attributes) — and collects ended spans into a bounded
// ring. The hot path is allocation-free: Start returns a Span by value,
// SetAttr writes into a fixed inline array drawn from a small interned
// key set, and End claims a ring slot under a short mutex (control-plane
// spans fire per phase or per worker range, never per packet, so a lock
// is cheap and keeps the ring race-clean).
//
// Causality is by ID, never by ring position: IDs are assigned at Start
// from an atomic sequence, so a child records its parent's ID before the
// parent has ended, and ring wraparound can evict a finished span's
// record without ever invalidating the linkage of spans still alive.
//
// A Tracer is a Collector: registered on a Registry it contributes a
// SpanSnapshot to every Snapshot, and because SpanSnapshot participates
// in the Sub/Merge algebra, Timeline epochs carry exactly the spans that
// ended inside them — span trees and epoch deltas tell one story.

// SpanID identifies a span within its Tracer; 0 means "no parent".
type SpanID uint64

// AttrKey names a span attribute. Keys are a closed interned set so
// attaching one stores two words, never a string.
type AttrKey uint8

// The interned attribute key set.
const (
	attrNone   AttrKey = iota
	AttrWorker         // fan-out worker index
	AttrLo             // range start (inclusive)
	AttrHi             // range end (exclusive)
	AttrCount          // generic cardinality: edits, columns, pairs, restarts
	AttrEpoch          // timeline epoch index
	AttrNodes          // graph node count
	AttrDest           // destination node
	AttrSeed           // RNG seed
	AttrLink           // link ID (scenario events, swaps)
	numAttrKeys
)

var attrKeyNames = [numAttrKeys]string{
	attrNone: "none", AttrWorker: "worker", AttrLo: "lo", AttrHi: "hi",
	AttrCount: "count", AttrEpoch: "epoch", AttrNodes: "nodes",
	AttrDest: "dest", AttrSeed: "seed", AttrLink: "link",
}

// String returns the key's interned name.
func (k AttrKey) String() string {
	if k < numAttrKeys {
		return attrKeyNames[k]
	}
	return "unknown"
}

// MaxSpanAttrs is the inline attribute capacity of a span; SetAttr
// beyond it is dropped (attrs are labels, not storage).
const MaxSpanAttrs = 4

// SpanAttr is one typed attribute: an interned key and an int64 value.
type SpanAttr struct {
	Key AttrKey `json:"key"`
	Val int64   `json:"val"`
}

// SpanRecord is one ended span as it appears in a SpanSnapshot.
type SpanRecord struct {
	// Seq is the publication sequence (ascending End order, 1-based) —
	// the identity the snapshot algebra dedups and deltas by.
	Seq uint64 `json:"seq"`
	// ID and Parent are Start-order identities; Parent 0 is a root.
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Start is monotonic time since the Tracer's creation; Dur the
	// span's length.
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	Attrs []SpanAttr    `json:"attrs,omitempty"`
}

// End returns the span's monotonic end instant.
func (r SpanRecord) End() time.Duration { return r.Start + r.Dur }

// Attr returns the value of key k (0, false when absent).
func (r SpanRecord) Attr(k AttrKey) (int64, bool) {
	for _, a := range r.Attrs {
		if a.Key == k {
			return a.Val, true
		}
	}
	return 0, false
}

// spanSlot is one ring entry; attrs are inline so publication never
// allocates. seq 0 marks an empty slot (publication seqs are 1-based).
type spanSlot struct {
	seq        uint64
	id, parent uint64
	name       string
	start, dur time.Duration
	attrs      [MaxSpanAttrs]SpanAttr
	nattrs     uint8
}

// Tracer produces spans into a bounded ring. The zero value is not
// usable; a nil *Tracer is — every method no-ops, so instrumented code
// needs no "tracing enabled?" branches.
type Tracer struct {
	start time.Time
	ids   atomic.Uint64 // span IDs, assigned at Start

	mu      sync.Mutex
	ring    []spanSlot
	seq     uint64 // next publication seq - 1 (published count)
	dropped uint64 // finished spans evicted by wraparound
}

// DefaultSpanRing is the ring capacity NewTracer uses for capacity <= 0.
const DefaultSpanRing = 4096

// NewTracer returns a tracer with a ring of at least `capacity` ended
// spans (rounded up to a power of two; <= 0 selects DefaultSpanRing).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanRing
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Tracer{start: time.Now(), ring: make([]spanSlot, size)}
}

// Span is a live timed region. It is a value — keep it on the stack,
// call End exactly once. The zero Span (and any span from a nil Tracer)
// is inert: SetAttr and End no-op.
type Span struct {
	t          *Tracer
	id, parent uint64
	name       string
	start      time.Duration
	attrs      [MaxSpanAttrs]SpanAttr
	nattrs     uint8
}

// Start opens a span. parent 0 makes a root; pass parent.ID() to nest.
// Safe on a nil Tracer (returns an inert span).
func (t *Tracer) Start(name string, parent SpanID) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		t:      t,
		id:     t.ids.Add(1),
		parent: uint64(parent),
		name:   name,
		start:  time.Since(t.start),
	}
}

// ID returns the span's identity for parenting children (0 when inert).
func (s *Span) ID() SpanID { return SpanID(s.id) }

// SetAttr attaches a typed attribute; beyond MaxSpanAttrs it is dropped.
func (s *Span) SetAttr(k AttrKey, v int64) {
	if s.t == nil || s.nattrs >= MaxSpanAttrs {
		return
	}
	s.attrs[s.nattrs] = SpanAttr{Key: k, Val: v}
	s.nattrs++
}

// End closes the span and publishes it into the ring, evicting the
// oldest ended span when full. Live (unended) spans are never in the
// ring, so eviction cannot orphan them: when they End later they publish
// with their original ID and children keep linking to it.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	t := s.t
	dur := time.Since(t.start) - s.start
	t.mu.Lock()
	t.seq++
	i := t.seq & uint64(len(t.ring)-1)
	if t.ring[i].seq != 0 {
		t.dropped++
	}
	t.ring[i] = spanSlot{
		seq: t.seq, id: s.id, parent: s.parent, name: s.name,
		start: s.start, dur: dur, attrs: s.attrs, nattrs: s.nattrs,
	}
	t.mu.Unlock()
	s.t = nil // double-End is a no-op, not a duplicate record
}

// Epoch returns the tracer's creation instant — the zero point of every
// span's Start.
func (t *Tracer) Epoch() time.Time { return t.start }

// RangeObserver adapts the tracer to par.ForObserved: the returned
// observer opens one child span of parent per worker range, tagged with
// the worker index and bounds, and ends it when the range completes. A
// nil tracer returns nil — the fan-out then runs unobserved at zero
// cost. (The signature matches par.RangeObserver structurally so this
// package needs no par import.)
func (t *Tracer) RangeObserver(name string, parent SpanID) func(worker, lo, hi int) func() {
	if t == nil {
		return nil
	}
	return func(worker, lo, hi int) func() {
		sp := t.Start(name, parent)
		sp.SetAttr(AttrWorker, int64(worker))
		sp.SetAttr(AttrLo, int64(lo))
		sp.SetAttr(AttrHi, int64(hi))
		return func() { sp.End() }
	}
}

// SpanSnapshot is the tracer's point-in-time reading: the ended spans
// still in the ring, ascending by Seq, plus the eviction count. It
// participates in the Snapshot Sub/Merge algebra keyed by Seq.
type SpanSnapshot struct {
	Spans   []SpanRecord `json:"spans,omitempty"`
	Dropped uint64       `json:"dropped,omitempty"`
	// MaxSeq is the highest publication seq ever assigned — the Sub
	// watermark (spans in the ring all have Seq <= MaxSeq).
	MaxSeq uint64 `json:"max_seq,omitempty"`
}

// SpanSnapshot reads the ring (nil-tracer safe, returns nil).
func (t *Tracer) SpanSnapshot() *SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := &SpanSnapshot{Dropped: t.dropped, MaxSeq: t.seq}
	for i := range t.ring {
		sl := &t.ring[i]
		if sl.seq == 0 {
			continue
		}
		r := SpanRecord{
			Seq: sl.seq, ID: SpanID(sl.id), Parent: SpanID(sl.parent),
			Name: sl.name, Start: sl.start, Dur: sl.dur,
		}
		if sl.nattrs > 0 {
			r.Attrs = append([]SpanAttr(nil), sl.attrs[:sl.nattrs]...)
		}
		out.Spans = append(out.Spans, r)
	}
	t.mu.Unlock()
	sort.Slice(out.Spans, func(i, j int) bool { return out.Spans[i].Seq < out.Spans[j].Seq })
	return out
}

// Collect implements Collector: a tracer registered on a Registry
// contributes its SpanSnapshot to every Snapshot.
func (t *Tracer) Collect(s *Snapshot) {
	if t == nil {
		return
	}
	s.Spans = t.SpanSnapshot()
}

// Sub returns the spans published after prev's watermark — the epoch
// delta. A nil prev (or receiver) behaves as empty.
func (s *SpanSnapshot) Sub(prev *SpanSnapshot) *SpanSnapshot {
	if s == nil {
		return nil
	}
	var mark, pdropped uint64
	if prev != nil {
		mark, pdropped = prev.MaxSeq, prev.Dropped
	}
	d := &SpanSnapshot{Dropped: s.Dropped - pdropped, MaxSeq: s.MaxSeq}
	for _, r := range s.Spans {
		if r.Seq > mark {
			d.Spans = append(d.Spans, r)
		}
	}
	return d
}

// Merge unions o into s by Seq — duplicates collapse, order of merging
// is immaterial (the result is always ascending by Seq) — and returns
// the merged snapshot. The inverse of Sub: merging every epoch delta
// reproduces the aggregate exactly when the ring never wrapped within
// an epoch.
func (s *SpanSnapshot) Merge(o *SpanSnapshot) *SpanSnapshot {
	if s == nil {
		if o == nil {
			return nil
		}
		s = &SpanSnapshot{}
	}
	if o == nil {
		return s
	}
	seen := make(map[uint64]bool, len(s.Spans)+len(o.Spans))
	merged := make([]SpanRecord, 0, len(s.Spans)+len(o.Spans))
	for _, r := range s.Spans {
		if !seen[r.Seq] {
			seen[r.Seq] = true
			merged = append(merged, r)
		}
	}
	for _, r := range o.Spans {
		if !seen[r.Seq] {
			seen[r.Seq] = true
			merged = append(merged, r)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Seq < merged[j].Seq })
	out := &SpanSnapshot{Spans: merged, Dropped: s.Dropped + o.Dropped, MaxSeq: s.MaxSeq}
	if o.MaxSeq > out.MaxSeq {
		out.MaxSeq = o.MaxSeq
	}
	return out
}

// TotalDur sums every span's duration — the scalar the timeline sum
// check compares epoch-by-epoch against the aggregate.
func (s *SpanSnapshot) TotalDur() time.Duration {
	if s == nil {
		return 0
	}
	var d time.Duration
	for _, r := range s.Spans {
		d += r.Dur
	}
	return d
}

// ByName returns the spans with the given name, in Seq order.
func (s *SpanSnapshot) ByName(name string) []SpanRecord {
	if s == nil {
		return nil
	}
	var out []SpanRecord
	for _, r := range s.Spans {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// Children returns the spans whose Parent is id, in Seq order.
func (s *SpanSnapshot) Children(id SpanID) []SpanRecord {
	if s == nil {
		return nil
	}
	var out []SpanRecord
	for _, r := range s.Spans {
		if r.Parent == id && id != 0 {
			out = append(out, r)
		}
	}
	return out
}
