package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestTimelineEpochsAndSumExactness(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts")
	h := r.Histogram("lat", []int64{10, 100})

	c.Add(5) // pre-timeline traffic: must not be attributed
	tl := NewTimeline(r)
	base := r.Snapshot()

	c.Add(3)
	h.Observe(7)
	tl.Roll(time.Second, "link 0 down")
	c.Add(9)
	h.Observe(50)
	tl.Roll(2*time.Second, "link 0 up")
	c.Add(1)
	epochs := tl.Finish(4 * time.Second)

	if len(epochs) != 3 {
		t.Fatalf("epochs = %d, want 3", len(epochs))
	}
	wants := []struct {
		start, end time.Duration
		label      string
		pkts       uint64
	}{
		{0, time.Second, "start", 3},
		{time.Second, 2 * time.Second, "link 0 down", 9},
		{2 * time.Second, 4 * time.Second, "link 0 up", 1},
	}
	for i, w := range wants {
		e := epochs[i]
		if e.Index != i || e.Start != w.start || e.End != w.end || e.Label != w.label {
			t.Fatalf("epoch %d = {%d %v %v %q}, want {%d %v %v %q}",
				i, e.Index, e.Start, e.End, e.Label, i, w.start, w.end, w.label)
		}
		if got := e.Delta.Counter("pkts"); got != w.pkts {
			t.Fatalf("epoch %d pkts delta = %d, want %d", i, got, w.pkts)
		}
	}

	// The lossless-exposition invariant: summed deltas == aggregate since
	// NewTimeline, exactly — counters and histogram count/sum/buckets.
	sum := tl.Sum()
	agg := r.Snapshot().Sub(base)
	if sum.Counter("pkts") != agg.Counter("pkts") {
		t.Fatalf("sum pkts %d != aggregate %d", sum.Counter("pkts"), agg.Counter("pkts"))
	}
	sh, ah := sum.Histograms["lat"], agg.Histograms["lat"]
	if sh.Count != ah.Count || sh.Sum != ah.Sum {
		t.Fatalf("sum histogram %d/%d != aggregate %d/%d", sh.Count, sh.Sum, ah.Count, ah.Sum)
	}
	for i := range ah.Counts {
		if sh.Counts[i] != ah.Counts[i] {
			t.Fatalf("bucket %d: sum %d != aggregate %d", i, sh.Counts[i], ah.Counts[i])
		}
	}
	// The pre-timeline Add(5) stayed out.
	if sum.Counter("pkts") != 13 {
		t.Fatalf("sum pkts = %d, want 13 (pre-timeline traffic leaked in)", sum.Counter("pkts"))
	}
}

func TestTimelineSameInstantFoldsToAnnotation(t *testing.T) {
	r := NewRegistry()
	tl := NewTimeline(r)
	tl.Roll(time.Second, "link 0 down")
	tl.Roll(time.Second, "link 1 down") // same instant: no empty epoch
	tl.Annotate("")                     // empty labels ignored
	epochs := tl.Finish(2 * time.Second)
	if len(epochs) != 2 {
		t.Fatalf("epochs = %d, want 2 (same-instant Roll must fold)", len(epochs))
	}
	if epochs[1].Label != "link 0 down; link 1 down" {
		t.Fatalf("folded label = %q", epochs[1].Label)
	}
}

func TestTimelineFinishIdempotentAndDone(t *testing.T) {
	r := NewRegistry()
	tl := NewTimeline(r)
	first := tl.Finish(time.Second)
	tl.Roll(2*time.Second, "late")   // ignored after Finish
	tl.Annotate("late note")         // ignored
	second := tl.Finish(time.Second) // idempotent
	if len(first) != 1 || len(second) != 1 {
		t.Fatalf("epochs = %d/%d, want 1/1", len(first), len(second))
	}
	// Finish at an instant before the running epoch's start clamps.
	tl2 := NewTimeline(r)
	tl2.Roll(3*time.Second, "x")
	if e := tl2.Finish(time.Second); e[1].End != 3*time.Second {
		t.Fatalf("clamped end = %v, want 3s", e[1].End)
	}
}

func TestHTTPHandlerServesSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("served").Add(11)
	r.Gauge("depth").Set(-4)
	r.Histogram("lat", []int64{5}).Observe(3)

	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("response not a snapshot: %v", err)
	}
	if s.Counter("served") != 11 || s.Gauge("depth") != -4 {
		t.Fatalf("served snapshot = %d/%d, want 11/-4", s.Counter("served"), s.Gauge("depth"))
	}
	if h := s.Histograms["lat"]; h.Count != 1 || h.Sum != 3 {
		t.Fatalf("served histogram = %d/%d, want 1/3", h.Count, h.Sum)
	}
}

// TestTimelineRollOutOfOrder pins Roll's behaviour for instants at or
// before the running epoch's start: they fold into an annotation on the
// running epoch instead of producing an empty or negative-width epoch,
// and the sum-equals-aggregate invariant survives.
func TestTimelineRollOutOfOrder(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	base := r.Snapshot()
	tl := NewTimeline(r)

	c.Add(1)
	tl.Roll(5, "a")
	c.Add(2)
	tl.Roll(3, "late") // at < start: must fold, not roll backwards
	c.Add(4)
	epochs := tl.Finish(10)

	if len(epochs) != 2 {
		t.Fatalf("got %d epochs; want 2 (the out-of-order Roll must not open one)", len(epochs))
	}
	for _, e := range epochs {
		if e.End < e.Start {
			t.Fatalf("epoch %d runs backwards: [%v, %v)", e.Index, e.Start, e.End)
		}
	}
	if epochs[1].Label != "a; late" {
		t.Fatalf("late event not annotated onto the running epoch: label %q", epochs[1].Label)
	}
	if got := epochs[1].Delta.Counter("n"); got != 6 {
		t.Fatalf("running epoch delta = %d; want 6 (2 before + 4 after the folded event)", got)
	}
	agg := r.Snapshot().Sub(base)
	if sum := tl.Sum(); sum.Counter("n") != agg.Counter("n") {
		t.Fatalf("summed deltas %d ≠ aggregate %d", sum.Counter("n"), agg.Counter("n"))
	}
}
