package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"

	"recycle/internal/par"
)

func TestSpanNilTracerAndZeroSpanAreInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", 0)
	sp.SetAttr(AttrCount, 1)
	sp.End()
	if sp.ID() != 0 {
		t.Fatalf("nil-tracer span has ID %d", sp.ID())
	}
	if snap := tr.SpanSnapshot(); snap != nil {
		t.Fatalf("nil tracer snapshot = %+v", snap)
	}
	if obs := tr.RangeObserver("x", 0); obs != nil {
		t.Fatal("nil tracer returned a non-nil observer")
	}

	var zero Span
	zero.SetAttr(AttrCount, 1)
	zero.End() // must not panic
}

func TestSpanDoubleEndPublishesOnce(t *testing.T) {
	tr := NewTracer(16)
	sp := tr.Start("once", 0)
	sp.End()
	sp.End()
	snap := tr.SpanSnapshot()
	if len(snap.Spans) != 1 || snap.MaxSeq != 1 {
		t.Fatalf("double End published %d spans (MaxSeq %d), want 1", len(snap.Spans), snap.MaxSeq)
	}
}

// TestConcurrentRangeChildrenParentCorrectly drives a real par fan-out
// through RangeObserver under -race: every worker span must parent to
// the root, carry its worker identity, and the recorded ranges must
// tile [0, n) exactly. Free-floating child spans started inside the
// worker bodies must link to the root as well.
func TestConcurrentRangeChildrenParentCorrectly(t *testing.T) {
	const n, workers = 1024, 8
	tr := NewTracer(4096)
	root := tr.Start("root", 0)

	var mu sync.Mutex
	covered := make([]bool, n)
	par.ForObserved(n, workers, tr.RangeObserver("range", root.ID()), func(w, lo, hi int) {
		item := tr.Start("item", root.ID())
		item.SetAttr(AttrLo, int64(lo))
		item.End()
		mu.Lock()
		for i := lo; i < hi; i++ {
			covered[i] = true
		}
		mu.Unlock()
	})
	root.End()

	for i, c := range covered {
		if !c {
			t.Fatalf("index %d never visited", i)
		}
	}
	snap := tr.SpanSnapshot()
	roots := snap.ByName("root")
	if len(roots) != 1 {
		t.Fatalf("got %d root spans", len(roots))
	}
	ranges := snap.ByName("range")
	if len(ranges) == 0 {
		t.Fatal("no range spans recorded")
	}
	tiled := make([]bool, n)
	for _, r := range ranges {
		if r.Parent != roots[0].ID {
			t.Fatalf("range span %d parents to %d, want root %d", r.ID, r.Parent, roots[0].ID)
		}
		if _, ok := r.Attr(AttrWorker); !ok {
			t.Fatalf("range span %d has no worker attribute", r.ID)
		}
		lo, _ := r.Attr(AttrLo)
		hi, _ := r.Attr(AttrHi)
		for i := lo; i < hi; i++ {
			if tiled[i] {
				t.Fatalf("index %d covered by two range spans", i)
			}
			tiled[i] = true
		}
	}
	for i, c := range tiled {
		if !c {
			t.Fatalf("index %d not covered by any range span", i)
		}
	}
	for _, r := range snap.ByName("item") {
		if r.Parent != roots[0].ID {
			t.Fatalf("item span parents to %d, want %d", r.Parent, roots[0].ID)
		}
	}
	// Everything ended inside the root's window.
	for _, r := range snap.Spans {
		if r.Seq == roots[0].Seq {
			continue
		}
		if r.Start < roots[0].Start || r.End() > roots[0].End() {
			t.Fatalf("span %s [%v,%v) outside root [%v,%v)", r.Name, r.Start, r.End(), roots[0].Start, roots[0].End())
		}
	}
}

// TestWraparoundNeverOrphansLiveParent floods a tiny ring with
// short-lived children while their parent is still open. Eviction may
// discard any number of finished children, but the parent — live, so
// never in the ring — must publish on End with its original identity,
// and every surviving child must still link to it.
func TestWraparoundNeverOrphansLiveParent(t *testing.T) {
	tr := NewTracer(4) // ring of 4
	parent := tr.Start("parent", 0)
	const kids = 100
	for i := 0; i < kids; i++ {
		c := tr.Start("kid", parent.ID())
		c.End()
	}
	parent.End()

	snap := tr.SpanSnapshot()
	if snap.MaxSeq != kids+1 {
		t.Fatalf("MaxSeq %d, want %d", snap.MaxSeq, kids+1)
	}
	if want := uint64(kids + 1 - 4); snap.Dropped != want {
		t.Fatalf("Dropped %d, want %d", snap.Dropped, want)
	}
	parents := snap.ByName("parent")
	if len(parents) != 1 {
		t.Fatalf("parent span evicted or duplicated: %d records", len(parents))
	}
	if parents[0].ID != parent.ID() {
		t.Fatalf("parent published as ID %d, want %d", parents[0].ID, parent.ID())
	}
	for _, k := range snap.ByName("kid") {
		if k.Parent != parent.ID() {
			t.Fatalf("kid %d orphaned: parent %d, want %d", k.ID, k.Parent, parent.ID())
		}
	}
}

// TestSpanSnapshotMergeOrderInvariant splits a run into three epoch
// deltas via Sub and checks Merge reassembles the identical aggregate
// regardless of merge order, including with duplicated inputs.
func TestSpanSnapshotMergeOrderInvariant(t *testing.T) {
	tr := NewTracer(64)
	end := func(name string) {
		sp := tr.Start(name, 0)
		sp.End()
	}
	var cuts []*SpanSnapshot
	base := tr.SpanSnapshot()
	for i, burst := range []int{3, 5, 2} {
		for j := 0; j < burst; j++ {
			end("s")
		}
		_ = i
		cuts = append(cuts, tr.SpanSnapshot())
	}
	d1 := cuts[0].Sub(base)
	d2 := cuts[1].Sub(cuts[0])
	d3 := cuts[2].Sub(cuts[1])
	if len(d1.Spans) != 3 || len(d2.Spans) != 5 || len(d3.Spans) != 2 {
		t.Fatalf("delta sizes %d/%d/%d, want 3/5/2", len(d1.Spans), len(d2.Spans), len(d3.Spans))
	}
	want := cuts[2].Sub(base).Spans

	orders := [][]*SpanSnapshot{
		{d1, d2, d3}, {d3, d2, d1}, {d2, d1, d3},
		{d1, d1, d2, d3, d3}, // duplicates collapse by Seq
	}
	for _, ord := range orders {
		var m *SpanSnapshot
		for _, d := range ord {
			m = m.Merge(d)
		}
		if !reflect.DeepEqual(m.Spans, want) {
			t.Fatalf("merge order %v changed the aggregate: %d spans, want %d", ord, len(m.Spans), len(want))
		}
	}
}

// TestTimelineCarriesSpanDeltas pins the acceptance sum check: with a
// tracer registered as a collector, each Timeline epoch carries exactly
// the spans that ended inside it, and merging every epoch delta
// reproduces the aggregate snapshot — same records, same TotalDur.
func TestTimelineCarriesSpanDeltas(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(256)
	reg.RegisterCollector(tr)
	c := reg.Counter("work")

	tl := NewTimeline(reg)
	base := reg.Snapshot()
	for e := 0; e < 3; e++ {
		for j := 0; j <= e; j++ {
			sp := tr.Start("phase", 0)
			sp.SetAttr(AttrEpoch, int64(e))
			c.Add(1)
			sp.End()
		}
		if e < 2 {
			tl.Roll(time.Duration(e+1)*time.Millisecond, "tick")
		}
	}
	epochs := tl.Finish(10 * time.Millisecond)
	if len(epochs) != 3 {
		t.Fatalf("got %d epochs, want 3", len(epochs))
	}
	for e, ep := range epochs {
		if got := len(ep.Delta.Spans.Spans); got != e+1 {
			t.Fatalf("epoch %d carries %d spans, want %d", e, got, e+1)
		}
		for _, r := range ep.Delta.Spans.Spans {
			if v, _ := r.Attr(AttrEpoch); v != int64(e) {
				t.Fatalf("epoch %d carries a span tagged epoch %d", e, v)
			}
		}
	}

	agg := reg.Snapshot().Sub(base)
	merged := NewSnapshot()
	for _, ep := range epochs {
		merged.Merge(ep.Delta)
	}
	if !reflect.DeepEqual(merged.Spans.Spans, agg.Spans.Spans) {
		t.Fatalf("merged epoch spans != aggregate (%d vs %d records)",
			len(merged.Spans.Spans), len(agg.Spans.Spans))
	}
	if merged.Spans.TotalDur() != agg.Spans.TotalDur() {
		t.Fatalf("merged TotalDur %v != aggregate %v", merged.Spans.TotalDur(), agg.Spans.TotalDur())
	}
	if merged.Counters["work"] != 6 {
		t.Fatalf("merged counter %d, want 6", merged.Counters["work"])
	}
}

// TestWriteChromeTraceShape renders a small span tree plus epochs and
// checks the emitted JSON against the trace-event contract: complete
// events, µs clock, worker spans on their own tid, epochs on pid 2.
func TestWriteChromeTraceShape(t *testing.T) {
	tr := NewTracer(64)
	root := tr.Start("compile", 0)
	w := tr.Start("fill", root.ID())
	w.SetAttr(AttrWorker, 3)
	w.End()
	root.End()
	epochs := []Epoch{{Index: 0, Start: 0, End: 2 * time.Millisecond, Label: "start"}}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.SpanSnapshot(), epochs); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(out.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %s has phase %q, want X", ev.Name, ev.Ph)
		}
		byName[ev.Name] = i
	}
	comp := out.TraceEvents[byName["compile"]]
	fill := out.TraceEvents[byName["fill"]]
	ep := out.TraceEvents[byName["start"]]
	if comp.Pid != 1 || comp.Tid != 1 || comp.Cat != "span" {
		t.Fatalf("root span on pid %d tid %d cat %q", comp.Pid, comp.Tid, comp.Cat)
	}
	if fill.Tid != 2+3 {
		t.Fatalf("worker span on tid %d, want %d", fill.Tid, 2+3)
	}
	if fill.Args["parent"] == nil {
		t.Fatal("worker span lost its parent arg")
	}
	if ep.Pid != 2 || ep.Cat != "epoch" || ep.Dur != 2000 {
		t.Fatalf("epoch event pid %d cat %q dur %v", ep.Pid, ep.Cat, ep.Dur)
	}
	if fill.Ts < comp.Ts || fill.Ts+fill.Dur > comp.Ts+comp.Dur+0.001 {
		t.Fatalf("child [%v,%v) not nested in parent [%v,%v)", fill.Ts, fill.Ts+fill.Dur, comp.Ts, comp.Ts+comp.Dur)
	}
}
