package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"testing"
)

// TestServeReportsListenErrors: an occupied address must surface as an
// error from Serve itself, not a phantom endpoint that silently serves
// nothing (the pre-fix behaviour discarded ListenAndServe's error in a
// goroutine).
func TestServeReportsListenErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	if _, err := Serve(ln.Addr().String(), NewRegistry()); err == nil {
		t.Fatal("Serve on an occupied address returned no error")
	}
	if _, err := Serve("127.0.0.1:-1", NewRegistry()); err == nil {
		t.Fatal("Serve on an invalid address returned no error")
	}
}

// TestServeServesSnapshots: a successful Serve is live by the time it
// returns (the listen is synchronous), and /metrics yields a JSON
// snapshot with the registry's counters.
func TestServeServesSnapshots(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("soak.test").Add(7)

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter("soak.test"); got != 7 {
		t.Fatalf("served snapshot soak.test = %d; want 7", got)
	}
}
