// Package telemetry is the process-wide observability layer: a
// zero-allocation hot-path metrics core (sharded cache-padded counters,
// gauges and fixed-bucket histograms registered in one Registry with a
// consistent Snapshot), a per-packet flight recorder that captures a
// packet's full cycle walk for post-mortem explanation, and an epoch
// timeline that folds counters into per-epoch deltas keyed to
// failure-scenario events.
//
// The engine workers, the egress transmit queues, the delta recompiler
// and the simulator's loss referee all record into the same Registry, so
// one Snapshot is the coherent state of the whole pipeline — the single
// metrics surface; per-subsystem stats structs that once each told a
// disconnected part of the story have been retired in its favour.
//
// # Hot-path discipline
//
// Nothing on a forwarding hot path may allocate or contend. Counters are
// banks of cache-line-padded cells: a worker takes a CounterHandle once
// (its own cell) and increments it with a single uncontended atomic add.
// For per-decision event counting even an atomic per packet is too much;
// a worker keeps a plain local Tally and flushes it through a
// CounterBank once per batch — one atomic add per metric per 256
// decisions. Histograms follow the same pattern with per-shard bucket
// rows. The instrumentation-overhead budget is pinned by benchmark
// tests: 0 allocs/op, and the instrumented decide path within 5% of the
// bare one.
//
// # Snapshot consistency
//
// Snapshot reads every cell with atomic loads, so each individual metric
// is an exact point-in-time sum and never torn. Cross-metric consistency
// is exact when writers are quiescent (an engine after Close, the
// single-threaded simulator at an epoch boundary) — which is when the
// timeline and the reports read it.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// shardCount is the number of padded cells per counter/histogram. A
// power of two so handle assignment is a mask; 8 matches the engine's
// shard cap.
const shardCount = 8

// cell is one cache-line-isolated counter word: 8 bytes of value, 56 of
// padding, so neighbouring cells never false-share.
type cell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. Add/Inc on the
// Counter itself serialise on cell 0 (fine for control-plane paths);
// hot paths take a Handle — a private cell — once, then increment it
// without contention.
type Counter struct {
	name  string
	next  atomic.Uint32
	cells [shardCount]cell
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n on the shared cell.
func (c *Counter) Add(n uint64) { c.cells[0].v.Add(n) }

// Inc increments the counter by one on the shared cell.
func (c *Counter) Inc() { c.cells[0].v.Add(1) }

// Value sums all cells: the counter's current total.
func (c *Counter) Value() uint64 {
	var n uint64
	for i := range c.cells {
		n += c.cells[i].v.Load()
	}
	return n
}

// Handle returns a private cell of the counter (round-robin over the
// shard set). A handle's Add is one uncontended atomic on its own cache
// line; each concurrent writer should hold its own handle.
func (c *Counter) Handle() CounterHandle {
	i := c.next.Add(1) - 1
	return CounterHandle{c: &c.cells[i&(shardCount-1)]}
}

// CounterHandle is one writer's view of a Counter. The zero value is
// invalid; obtain handles from Counter.Handle.
type CounterHandle struct{ c *cell }

// Add increments the handle's cell by n.
func (h CounterHandle) Add(n uint64) { h.c.v.Add(n) }

// Inc increments the handle's cell by one.
func (h CounterHandle) Inc() { h.c.v.Add(1) }

// Gauge is an instantaneous level (queue depth, current epoch). Unlike a
// Counter it can move both ways; it is a single atomic — gauges are
// updated at batch granularity or slower, never per packet.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-watermark update (maximum latency, peak backlog).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// TallySize is the slot count of a Tally — sized so a core.Event (< 8)
// indexes it with a mask instead of a bounds check.
const TallySize = 8

// Tally is a plain local accumulator for hot loops: a worker increments
// slots with ordinary (non-atomic) adds — one machine instruction per
// decision — and flushes through a CounterBank once per batch. The zero
// value is ready to use.
type Tally [TallySize]uint64

// CounterBank binds up to TallySize counters to tally slots, with a
// private handle per slot. One bank per writer: build it where the
// writer starts (NewCounterBank round-robins fresh cells each call).
type CounterBank struct {
	handles [TallySize]CounterHandle
	n       int
}

// NewCounterBank resolves names (get-or-create) in r and returns a bank
// whose slot i flushes into names[i]. It panics when more than TallySize
// names are given — bank layouts are static, so this is a programming
// error, not a runtime condition.
func NewCounterBank(r *Registry, names ...string) *CounterBank {
	if len(names) > TallySize {
		panic(fmt.Sprintf("telemetry: counter bank of %d names exceeds %d slots", len(names), TallySize))
	}
	b := &CounterBank{n: len(names)}
	for i, name := range names {
		b.handles[i] = r.Counter(name).Handle()
	}
	return b
}

// Flush adds each non-zero tally slot to its counter and zeroes the
// tally — at most one atomic add per bound metric.
func (b *CounterBank) Flush(t *Tally) {
	for i := 0; i < b.n; i++ {
		if t[i] != 0 {
			b.handles[i].Add(t[i])
			t[i] = 0
		}
	}
}

// Collector contributes derived or externally-owned values to a
// Snapshot at read time — the adapter that lets subsystems with private
// accounting (egress queues, the recompiler and its repairer pool)
// publish into the registry without moving their hot paths onto
// telemetry primitives.
type Collector interface {
	Collect(s *Snapshot)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(s *Snapshot)

// Collect implements Collector.
func (f CollectorFunc) Collect(s *Snapshot) { f(s) }

// Registry is the process-wide metric namespace: counters, gauges and
// histograms are created on first use by name, collectors are sampled at
// snapshot time. All methods are safe for concurrent use; instrument
// lookups take a lock, so hot paths resolve instruments once, up front.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it with
// the given bounds on first use. Later calls return the existing
// histogram and ignore bounds; callers sharing a name must agree on the
// layout (Bounds exposes it).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(name, bounds)
		r.hists[name] = h
	}
	return h
}

// RegisterCollector adds a snapshot-time collector.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// Snapshot reads every registered instrument and collector into an
// immutable value snapshot.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	s := &Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.Value()
	}
	for _, h := range hists {
		s.Histograms[h.name] = h.snapshot()
	}
	for _, c := range collectors {
		c.Collect(s)
	}
	return s
}

// Snapshot is a point-in-time reading of a Registry: plain maps, safe to
// retain, compare and serialise (the HTTP endpoint emits it as JSON).
// Spans is populated when a Tracer is registered as a Collector and
// participates in Sub/Merge like every other instrument.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      *SpanSnapshot                `json:"spans,omitempty"`
}

// NewSnapshot returns an empty snapshot (used by tests and collectors).
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
}

// Counter returns the named counter value (0 when absent).
func (s *Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the named gauge value (0 when absent).
func (s *Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// SetCounter records a counter value — the emit hook for Collectors.
func (s *Snapshot) SetCounter(name string, v uint64) { s.Counters[name] = v }

// AddCounter accumulates v into the named counter — the emit hook for
// Collectors whose instances may share a registry (several TxQueues
// across an engine rebuild, say): each contributes its total instead of
// overwriting the last writer's.
func (s *Snapshot) AddCounter(name string, v uint64) { s.Counters[name] += v }

// SetGauge records a gauge value — the emit hook for Collectors.
func (s *Snapshot) SetGauge(name string, v int64) { s.Gauges[name] = v }

// Sub returns s minus prev: counter and histogram values become the
// delta accumulated between the two snapshots; gauges are levels, not
// rates, so s's value is kept as-is. Names absent from prev are treated
// as zero. This is the epoch-delta primitive of the Timeline.
func (s *Snapshot) Sub(prev *Snapshot) *Snapshot {
	d := &Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		d.Histograms[name] = h.sub(prev.Histograms[name])
	}
	d.Spans = s.Spans.Sub(prev.Spans)
	return d
}

// Merge adds o's counters and histograms into s (creating names as
// needed) and overwrites gauges with o's values — the inverse of Sub,
// used to prove per-epoch deltas sum back to the aggregate exactly.
func (s *Snapshot) Merge(o *Snapshot) {
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		s.Gauges[name] = v
	}
	for name, h := range o.Histograms {
		s.Histograms[name] = s.Histograms[name].merge(h)
	}
	if o.Spans != nil {
		s.Spans = s.Spans.Merge(o.Spans)
	}
}

// Names returns the sorted union of all metric names in the snapshot.
func (s *Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
