package telemetry

import "testing"

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram("edges", []int64{10, 100, 1000})
	// Bounds are upper-inclusive: v <= bounds[i] lands in bucket i.
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, // negatives clamp to 0
		{0, 0},
		{10, 0},   // exactly on the first edge
		{11, 1},   // just above it
		{100, 1},  // exactly on the second
		{101, 2},  // just above
		{1000, 2}, // last finite edge
		{1001, 3}, // overflow bucket
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.snapshot()
	want := []uint64{3, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", s.Count, len(cases))
	}
	// Sum clamps the negative observation to 0.
	var wantSum uint64
	for _, c := range cases {
		if c.v > 0 {
			wantSum += uint64(c.v)
		}
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestHistogramHandlesLandInSameSnapshot(t *testing.T) {
	h := newHistogram("sharded", []int64{5})
	// More handles than shard rows: round-robin wraps, totals still sum.
	for i := 0; i < 2*shardCount; i++ {
		h.Handle().Observe(int64(i))
	}
	s := h.snapshot()
	if s.Count != 2*shardCount {
		t.Fatalf("count = %d, want %d", s.Count, 2*shardCount)
	}
	if s.Counts[0] != 6 || s.Counts[1] != 2*shardCount-6 {
		t.Fatalf("buckets = %v, want [6 %d]", s.Counts, 2*shardCount-6)
	}
}

func TestHistogramMeanQuantile(t *testing.T) {
	h := newHistogram("q", []int64{1, 2, 4, 8})
	for v := int64(1); v <= 8; v++ {
		h.Observe(v)
	}
	s := h.snapshot()
	if m := s.Mean(); m != 4.5 {
		t.Fatalf("mean = %v, want 4.5", m)
	}
	// Quantile is an upper bound: the first edge below which *more* than
	// a q fraction fell. 4 of 8 observations are ≤ 4, so p49 resolves to
	// edge 4 and p50 (needing >4 observations) moves to the next edge.
	if q := s.Quantile(0.49); q != 4 {
		t.Fatalf("p49 = %d, want the bucket edge 4", q)
	}
	if q := s.Quantile(0.5); q != 8 {
		t.Fatalf("p50 = %d, want the bucket edge 8", q)
	}
	if q := s.Quantile(1.0); q != 8 {
		t.Fatalf("p100 = %d, want 8", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
	if m := (HistogramSnapshot{}).Mean(); m != 0 {
		t.Fatalf("empty mean = %v, want 0", m)
	}
}

func TestHistogramValidation(t *testing.T) {
	for name, bounds := range map[string][]int64{
		"empty":         {},
		"nonincreasing": {5, 5},
		"decreasing":    {5, 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds did not panic", name)
				}
			}()
			newHistogram(name, bounds)
		}()
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(100, 4, 5)
	want := []int64{100, 400, 1600, 6400, 25600}
	for i, w := range want {
		if b[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, b[i], w)
		}
	}
	// A factor close to 1 must still yield strictly increasing bounds.
	b = ExponentialBuckets(1, 1.01, 10)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, b)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("factor <= 1 did not panic")
		}
	}()
	ExponentialBuckets(1, 1, 3)
}

func TestLinearBuckets(t *testing.T) {
	b := LinearBuckets(100, 25, 3)
	want := []int64{100, 125, 150}
	for i, w := range want {
		if b[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, b[i], w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero width did not panic")
		}
	}()
	LinearBuckets(0, 0, 3)
}

// TestQuantileOverflowIsLowerBound pins the overflow-bucket contract:
// observations above the last configured bound land in the overflow
// bucket, and any quantile that resolves there reports the last finite
// bound — a *lower* bound on the true value, the "off the scale"
// sentinel the doc comment promises, never a fabricated larger number.
func TestQuantileOverflowIsLowerBound(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("overflow", []int64{10, 20})
	h.Observe(5)       // bucket ≤10
	h.Observe(1 << 40) // overflow
	h.Observe(1 << 41) // overflow

	s := r.Snapshot().Histograms["overflow"]
	if s.Count != 3 {
		t.Fatalf("count = %d; want 3", s.Count)
	}
	// The median and everything above it live in the overflow bucket.
	for _, q := range []float64{0.5, 0.9, 1.0} {
		if got := s.Quantile(q); got != 20 {
			t.Fatalf("Quantile(%g) = %d; want the last finite bound 20", q, got)
		}
	}
	// Below the overflow mass the usual upper-bound contract holds.
	if got := s.Quantile(0.0); got != 10 {
		t.Fatalf("Quantile(0) = %d; want 10", got)
	}
	// The overflow count itself stays visible for callers that want to
	// detect saturated buckets.
	if s.Counts[len(s.Counts)-1] != 2 {
		t.Fatalf("overflow bucket holds %d; want 2", s.Counts[len(s.Counts)-1])
	}
}
