package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"recycle/internal/core"
	"recycle/internal/graph"
	"recycle/internal/rotation"
)

// Hop is one node's handling of a recorded packet: when it was
// processed, where it arrived from, the decision taken (the core.Event
// classification), which dart it left on, and the PR/DD header state
// *after* the node's processing — together the complete cycle-walk
// transcript the paper's §4 protocol produces.
type Hop struct {
	At      time.Duration
	Node    graph.NodeID
	Ingress rotation.DartID
	Egress  rotation.DartID
	Event   core.Event
	Header  core.Header
}

// Flight is one packet's recorded walk from generation to its terminal
// verdict. Flights are built by a Recorder; a finished flight is
// immutable and safe to retain.
type Flight struct {
	PacketID int64
	Src, Dst graph.NodeID
	Created  time.Duration
	Finished time.Duration
	// Verdict is the terminal fate: "delivered", or a drop reason
	// ("blackhole", "no-route", "ttl").
	Verdict string
	Hops    []Hop
	// Truncated counts hops discarded beyond the recorder's per-flight
	// cap (a looping packet would otherwise record unboundedly).
	Truncated int
}

// Delivered reports whether the flight ended at its destination.
func (f *Flight) Delivered() bool { return f.Verdict == "delivered" }

// Recycled reports whether the packet ever engaged PR: any hop that
// detected a failure, cycle-followed, or carried the PR bit.
func (f *Flight) Recycled() bool {
	for _, h := range f.Hops {
		if h.Header.PR || (h.Event != core.EventRoute && h.Event != core.EventDeliver) {
			return true
		}
	}
	return false
}

// RecycleHops counts the hops spent off the shortest path: detections,
// cycle-following steps and continuations (resume hops route normally
// again and are not counted).
func (f *Flight) RecycleHops() int {
	n := 0
	for _, h := range f.Hops {
		switch h.Event {
		case core.EventDetect, core.EventCycle, core.EventContinue:
			n++
		}
	}
	return n
}

// Explain renders the flight as a human-readable cycle-walk narrative:
// one line per hop with the event taken and the header state stamped,
// closed by the verdict. This is the replay format for auditing an
// oracle violation or showing how a recycled packet got home.
func (f *Flight) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight #%d: %d → %d, created %v", f.PacketID, f.Src, f.Dst, f.Created)
	if f.Recycled() {
		fmt.Fprintf(&b, " (recycled, %d hops off the shortest path)", f.RecycleHops())
	}
	b.WriteByte('\n')
	for i, h := range f.Hops {
		fmt.Fprintf(&b, "  [%2d] %-12v node %-4d %-8s", i, h.At, h.Node, h.Event)
		if h.Egress == rotation.NoDart {
			b.WriteString(" egress -")
		} else {
			fmt.Fprintf(&b, " egress dart %d (link %d)", h.Egress, rotation.LinkOf(h.Egress))
		}
		if h.Header.PR {
			fmt.Fprintf(&b, "  PR dd=%g", h.Header.DD)
		}
		b.WriteByte('\n')
	}
	if f.Truncated > 0 {
		fmt.Fprintf(&b, "  ... %d further hops not recorded (per-flight cap)\n", f.Truncated)
	}
	fmt.Fprintf(&b, "  verdict: %s at %v after %d hops", f.Verdict, f.Finished, len(f.Hops))
	return b.String()
}

// Pair selects packets between a source and a destination for
// match-based arming.
type Pair struct {
	Src, Dst graph.NodeID
}

// RecorderConfig arms and bounds a Recorder.
type RecorderConfig struct {
	// Capacity is the finished-flight ring size (default 64). When full,
	// new flights evict the oldest.
	Capacity int
	// SampleEvery arms every Nth generated packet (1 = every packet);
	// 0 disables sampling, leaving only Match-based arming.
	SampleEvery int64
	// Match additionally arms every packet on these (src, dst) pairs
	// regardless of sampling.
	Match []Pair
	// MaxHops caps recorded hops per flight (default 512) so a looping
	// packet cannot record unboundedly; excess hops are counted in
	// Flight.Truncated.
	MaxHops int
	// KeepAll retains every finished armed flight. By default only
	// *interesting* flights are kept: those that recycled or were lost —
	// the ones worth a post-mortem.
	KeepAll bool
}

// Recorder captures per-packet flights into a bounded ring. It is
// mutex-protected — recording happens on the simulator's refereeing
// path, not the engine's batch hot path — and all methods are safe for
// concurrent use. Begin returns nil for unarmed packets, and Record/
// Finish are nil-tolerant, so callers instrument unconditionally:
//
//	fl := rec.Begin(id, src, dst, now)   // nil when not armed
//	fl.Record(telemetry.Hop{...})        // no-op on nil
//	rec.Finish(fl, "delivered", now)     // no-op on nil
type Recorder struct {
	mu      sync.Mutex
	cfg     RecorderConfig
	match   map[Pair]bool
	seen    int64
	ring    []*Flight
	next    int
	total   int // flights pushed into the ring, ever (wraparound visible)
	skipped int // finished but uninteresting, discarded
}

// NewRecorder builds a recorder; see RecorderConfig for arming rules.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 512
	}
	r := &Recorder{cfg: cfg, match: make(map[Pair]bool, len(cfg.Match))}
	for _, p := range cfg.Match {
		r.match[p] = true
	}
	return r
}

// Begin starts a flight for one generated packet, or returns nil when
// the packet is not armed (neither sampled nor matched).
func (r *Recorder) Begin(id int64, src, dst graph.NodeID, created time.Duration) *Flight {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.seen
	r.seen++
	armed := r.cfg.SampleEvery > 0 && n%r.cfg.SampleEvery == 0
	if !armed && !r.match[Pair{Src: src, Dst: dst}] {
		return nil
	}
	return &Flight{PacketID: id, Src: src, Dst: dst, Created: created}
}

// Record appends one hop to the flight. A nil receiver (unarmed packet)
// is a no-op.
func (f *Flight) Record(h Hop) {
	if f == nil {
		return
	}
	f.Hops = append(f.Hops, h)
}

// Finish seals the flight with its verdict and offers it to the ring.
// Uninteresting flights (delivered without recycling) are discarded
// unless KeepAll is set. A nil flight is a no-op.
func (r *Recorder) Finish(f *Flight, verdict string, at time.Duration) {
	if f == nil {
		return
	}
	f.Verdict = verdict
	f.Finished = at
	if len(f.Hops) > r.cfg.MaxHops {
		f.Truncated = len(f.Hops) - r.cfg.MaxHops
		f.Hops = f.Hops[:r.cfg.MaxHops]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.cfg.KeepAll && f.Delivered() && !f.Recycled() {
		r.skipped++
		return
	}
	if len(r.ring) < r.cfg.Capacity {
		r.ring = append(r.ring, f)
	} else {
		r.ring[r.next] = f
	}
	r.next = (r.next + 1) % r.cfg.Capacity
	r.total++
}

// Flights returns the retained flights, oldest first.
func (r *Recorder) Flights() []*Flight {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Flight, 0, len(r.ring))
	if r.total > len(r.ring) {
		// Ring has wrapped: oldest entry sits at next.
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
		return out
	}
	return append(out, r.ring...)
}

// Seen returns how many packets were offered to Begin.
func (r *Recorder) Seen() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Kept returns how many flights were pushed into the ring, ever —
// exceeding Capacity means the ring has wrapped.
func (r *Recorder) Kept() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Skipped returns how many finished flights were discarded as
// uninteresting (delivered, never recycled) under the default policy.
func (r *Recorder) Skipped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.skipped
}
