package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4), hand-rolled so the
// scrape endpoint needs no client library: counters and gauges as one
// sample each, histograms as the cumulative _bucket/_sum/_count family.
// Metric names are sanitised (dots and hyphens become underscores) and
// families are emitted in sorted order so scrapes diff cleanly.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitises a registry metric name into a valid Prometheus
// metric name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the text exposition format.
// Spans are not a Prometheus concept and are skipped (the span surface
// is the Chrome trace export); the tracer's drop count is exposed as
// a gauge so scrapers can alert on ring overflow.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum uint64
		for i, b := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}

	if s.Spans != nil {
		pn := "telemetry_span_dropped"
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Spans.Dropped); err != nil {
			return err
		}
	}
	return nil
}
