package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterHandlesSumAcrossShards(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	// More handles than shards: round-robin must wrap and keep counting.
	for i := 0; i < 2*shardCount; i++ {
		h := c.Handle()
		h.Add(uint64(i + 1))
	}
	want := uint64(2 * shardCount * (2*shardCount + 1) / 2)
	if got := c.Value(); got != want {
		t.Fatalf("Value() = %d, want %d", got, want)
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != want+5 {
		t.Fatalf("after Inc+Add(4): Value() = %d, want %d", got, want+5)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name returned distinct counters")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name returned distinct gauges")
	}
	h1 := r.Histogram("h", []int64{1, 2})
	h2 := r.Histogram("h", []int64{99}) // bounds ignored after creation
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
	if got := h2.Bounds(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Bounds() = %v, want the creating call's [1 2]", got)
	}
}

func TestGaugeSetMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("peak")
	g.Set(10)
	g.SetMax(5) // lower: no-op
	if g.Value() != 10 {
		t.Fatalf("SetMax(5) lowered gauge to %d", g.Value())
	}
	g.SetMax(25)
	if g.Value() != 25 {
		t.Fatalf("SetMax(25) left gauge at %d", g.Value())
	}
	g.Add(-30)
	if g.Value() != -5 {
		t.Fatalf("Add(-30) = %d, want -5", g.Value())
	}
}

func TestCounterBankFlush(t *testing.T) {
	r := NewRegistry()
	b := NewCounterBank(r, "one", "two", "three")
	var tl Tally
	tl[0] = 7
	tl[2] = 3
	b.Flush(&tl)
	b.Flush(&tl) // second flush of a zeroed tally must be a no-op
	if v := r.Counter("one").Value(); v != 7 {
		t.Fatalf("one = %d, want 7", v)
	}
	if v := r.Counter("two").Value(); v != 0 {
		t.Fatalf("two = %d, want 0", v)
	}
	if v := r.Counter("three").Value(); v != 3 {
		t.Fatalf("three = %d, want 3", v)
	}
	for i, v := range tl {
		if v != 0 {
			t.Fatalf("tally slot %d not zeroed: %d", i, v)
		}
	}
}

func TestCounterBankTooManyNamesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bank of TallySize+1 names did not panic")
		}
	}()
	names := make([]string, TallySize+1)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	NewCounterBank(NewRegistry(), names...)
}

func TestSnapshotSubMergeRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []int64{10, 100})

	c.Add(5)
	g.Set(3)
	h.Observe(7)
	s1 := r.Snapshot()

	c.Add(9)
	g.Set(-2)
	h.Observe(50)
	h.Observe(1000) // overflow bucket
	s2 := r.Snapshot()

	d := s2.Sub(s1)
	if d.Counter("c") != 9 {
		t.Fatalf("delta counter = %d, want 9", d.Counter("c"))
	}
	if d.Gauge("g") != -2 {
		t.Fatalf("delta gauge = %d, want the level -2", d.Gauge("g"))
	}
	hd := d.Histograms["h"]
	if hd.Count != 2 || hd.Sum != 1050 {
		t.Fatalf("delta histogram count/sum = %d/%d, want 2/1050", hd.Count, hd.Sum)
	}
	if hd.Counts[0] != 0 || hd.Counts[1] != 1 || hd.Counts[2] != 1 {
		t.Fatalf("delta buckets = %v, want [0 1 1]", hd.Counts)
	}

	// base + delta must reproduce the aggregate exactly.
	sum := NewSnapshot()
	sum.Merge(s1)
	sum.Merge(d)
	for name, v := range s2.Counters {
		if sum.Counters[name] != v {
			t.Fatalf("merge: counter %s = %d, want %d", name, sum.Counters[name], v)
		}
	}
	hs := sum.Histograms["h"]
	if hs.Count != 3 || hs.Sum != 1057 {
		t.Fatalf("merged histogram count/sum = %d/%d, want 3/1057", hs.Count, hs.Sum)
	}

	if names := s2.Names(); len(names) != 3 || names[0] != "c" || names[1] != "g" || names[2] != "h" {
		t.Fatalf("Names() = %v, want [c g h]", names)
	}
}

func TestCollectorRunsAtSnapshotTime(t *testing.T) {
	r := NewRegistry()
	n := uint64(0)
	r.RegisterCollector(CollectorFunc(func(s *Snapshot) {
		s.SetCounter("ext.count", n)
		s.SetGauge("ext.level", int64(n)*2)
	}))
	n = 41
	s := r.Snapshot()
	if s.Counter("ext.count") != 41 || s.Gauge("ext.level") != 82 {
		t.Fatalf("collector values = %d/%d, want 41/82", s.Counter("ext.count"), s.Gauge("ext.level"))
	}
}

// TestSnapshotConsistencyUnderConcurrentWriters hammers a counter and a
// histogram from many goroutines through private handles while snapshots
// are taken concurrently, then verifies (a) successive snapshots of a
// monotone counter never go backwards, (b) snapshots never exceed the
// true total, and (c) once the writers are quiescent the snapshot is
// exact — counter value, histogram count, sum and bucket sum all agree.
func TestSnapshotConsistencyUnderConcurrentWriters(t *testing.T) {
	const writers = 8
	const perWriter = 10000
	r := NewRegistry()
	c := r.Counter("hot")
	h := r.Histogram("lat", ExponentialBuckets(1, 2, 10))

	stop := make(chan struct{})
	snapDone := make(chan error, 1)
	go func() {
		var last uint64
		for {
			select {
			case <-stop:
				snapDone <- nil
				return
			default:
			}
			v := r.Snapshot().Counter("hot")
			if v < last {
				snapDone <- fmt.Errorf("snapshot went backwards: %d after %d", v, last)
				return
			}
			if v > writers*perWriter {
				snapDone <- fmt.Errorf("snapshot overshot: %d > %d", v, writers*perWriter)
				return
			}
			last = v
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch := c.Handle()
			hh := h.Handle()
			for i := 0; i < perWriter; i++ {
				ch.Inc()
				hh.Observe(int64(i & 1023))
			}
		}()
	}
	wg.Wait()
	close(stop)
	if err := <-snapDone; err != nil {
		t.Fatal(err)
	}

	s := r.Snapshot()
	if got := s.Counter("hot"); got != writers*perWriter {
		t.Fatalf("final counter %d, want %d", got, writers*perWriter)
	}
	hs := s.Histograms["lat"]
	if hs.Count != writers*perWriter {
		t.Fatalf("histogram count %d, want %d", hs.Count, writers*perWriter)
	}
	var bucketSum uint64
	for _, b := range hs.Counts {
		bucketSum += b
	}
	if bucketSum != hs.Count {
		t.Fatalf("quiescent bucket sum %d != count %d", bucketSum, hs.Count)
	}
}
