package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
)

// Handler serves the registry as an expvar-style JSON endpoint: every
// GET takes a fresh Snapshot and writes it, so scraping the URL during
// a run watches the counters move.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Serve exposes the registry on addr (e.g. "localhost:6060") at
// /metrics and / in a background goroutine, returning the server for
// shutdown. The listen happens synchronously so a bad or occupied
// address is an error here, not a phantom endpoint; the returned
// server's Addr carries the bound address (useful with a ":0" addr).
// Errors after the listener is up (including normal shutdown) are
// discarded — once serving, the metrics endpoint is best-effort
// observability, never a reason to fail a run.
func Serve(addr string, r *Registry) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	h := Handler(r)
	mux.Handle("/", h)
	mux.Handle("/metrics", h)
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
