package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler serves the registry snapshot with content negotiation: the
// Prometheus text format for `?format=prom` (or an Accept header naming
// text/plain), indented expvar-style JSON otherwise. Every GET takes a
// fresh Snapshot, so scraping the URL during a run watches the counters
// move; both bodies carry an explicit Content-Type.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		format := req.URL.Query().Get("format")
		if format == "" && strings.Contains(req.Header.Get("Accept"), "text/plain") {
			format = "prom"
		}
		switch format {
		case "prom":
			w.Header().Set("Content-Type", PromContentType)
			if err := WritePrometheus(w, r.Snapshot()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "", "json":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(r.Snapshot()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "unknown format "+format+" (want prom or json)", http.StatusBadRequest)
		}
	})
}

// Serve exposes the registry on addr (e.g. "localhost:6060") at
// /metrics and / in a background goroutine, returning the server for
// shutdown, with the net/http/pprof profiling handlers mounted under
// /debug/pprof/ so a CPU or heap profile of a live soak is one curl
// away. The listen happens synchronously so a bad or occupied address
// is an error here, not a phantom endpoint; the returned server's Addr
// carries the bound address (useful with a ":0" addr). Errors after the
// listener is up (including normal shutdown) are discarded — once
// serving, the metrics endpoint is best-effort observability, never a
// reason to fail a run.
func Serve(addr string, r *Registry) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	h := Handler(r)
	mux.Handle("/", h)
	mux.Handle("/metrics", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
