package telemetry

import "testing"

// TestHotPathZeroAllocs pins the tentpole's core promise: no metric
// write on a hot path allocates. Handle increments, tally flushes,
// histogram observations and gauge updates must all be allocation-free.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Counter("c").Handle()
	g := r.Gauge("g")
	hh := r.Histogram("h", ExponentialBuckets(100, 4, 8)).Handle()
	bank := NewCounterBank(r, "a", "b")
	var tally Tally

	checks := map[string]func(){
		"counter-handle": func() { h.Inc(); h.Add(3) },
		"gauge":          func() { g.Set(7); g.Add(-2); g.SetMax(9) },
		"histogram":      func() { hh.Observe(1234) },
		"tally-flush":    func() { tally[0]++; tally[1] += 5; bank.Flush(&tally) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// BenchmarkTelemetryCounter is the CI-gated cost of one hot-path counter
// increment through a private handle (one uncontended atomic add on the
// writer's own cache line). Gated at 0 allocs/op.
func BenchmarkTelemetryCounter(b *testing.B) {
	r := NewRegistry()
	h := r.Counter("bench").Handle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Inc()
	}
}

// BenchmarkTelemetryTallyFlush is the engine's actual per-decision
// pattern: a non-atomic tally increment, flushed through a bank every
// 256 iterations — the amortised cost CI compares against the raw
// atomic of BenchmarkTelemetryCounter.
func BenchmarkTelemetryTallyFlush(b *testing.B) {
	r := NewRegistry()
	bank := NewCounterBank(r, "a", "b", "c", "d", "e", "f")
	var tally Tally
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tally[i&5]++
		if i&255 == 255 {
			bank.Flush(&tally)
		}
	}
}

// BenchmarkTelemetryHistogram is one sharded histogram observation
// through a private handle: bucket scan plus three atomic adds.
func BenchmarkTelemetryHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench", ExponentialBuckets(100, 4, 8)).Handle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}

// TestSpanHotPathZeroAllocs is the span twin of TestHotPathZeroAllocs:
// opening a span, attaching attributes and publishing it into the ring
// must not allocate — spans are values, attrs are inline, and the ring
// slot is claimed in place.
func TestSpanHotPathZeroAllocs(t *testing.T) {
	tr := NewTracer(64)
	root := tr.Start("root", 0)
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("child", root.ID())
		sp.SetAttr(AttrWorker, 3)
		sp.SetAttr(AttrLo, 0)
		sp.SetAttr(AttrHi, 128)
		sp.End()
	}); allocs != 0 {
		t.Errorf("span start/attr/end: %v allocs/op, want 0", allocs)
	}
	root.End()
}

// BenchmarkSpanStartEnd is the CI-gated cost of one complete span —
// Start, one attribute, End into the ring — the unit every control-plane
// phase and worker range pays. Gated at 0 allocs/op: the two clock reads
// dominate, the ring publication is a short mutexed copy.
func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTracer(DefaultSpanRing)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("bench", 0)
		sp.SetAttr(AttrCount, int64(i))
		sp.End()
	}
}
