package telemetry

import "testing"

// TestHotPathZeroAllocs pins the tentpole's core promise: no metric
// write on a hot path allocates. Handle increments, tally flushes,
// histogram observations and gauge updates must all be allocation-free.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Counter("c").Handle()
	g := r.Gauge("g")
	hh := r.Histogram("h", ExponentialBuckets(100, 4, 8)).Handle()
	bank := NewCounterBank(r, "a", "b")
	var tally Tally

	checks := map[string]func(){
		"counter-handle": func() { h.Inc(); h.Add(3) },
		"gauge":          func() { g.Set(7); g.Add(-2); g.SetMax(9) },
		"histogram":      func() { hh.Observe(1234) },
		"tally-flush":    func() { tally[0]++; tally[1] += 5; bank.Flush(&tally) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// BenchmarkTelemetryCounter is the CI-gated cost of one hot-path counter
// increment through a private handle (one uncontended atomic add on the
// writer's own cache line). Gated at 0 allocs/op.
func BenchmarkTelemetryCounter(b *testing.B) {
	r := NewRegistry()
	h := r.Counter("bench").Handle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Inc()
	}
}

// BenchmarkTelemetryTallyFlush is the engine's actual per-decision
// pattern: a non-atomic tally increment, flushed through a bank every
// 256 iterations — the amortised cost CI compares against the raw
// atomic of BenchmarkTelemetryCounter.
func BenchmarkTelemetryTallyFlush(b *testing.B) {
	r := NewRegistry()
	bank := NewCounterBank(r, "a", "b", "c", "d", "e", "f")
	var tally Tally
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tally[i&5]++
		if i&255 == 255 {
			bank.Flush(&tally)
		}
	}
}

// BenchmarkTelemetryHistogram is one sharded histogram observation
// through a private handle: bucket scan plus three atomic adds.
func BenchmarkTelemetryHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench", ExponentialBuckets(100, 4, 8)).Handle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}
