package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Histogram is a fixed-bucket sharded histogram of non-negative int64
// observations (nanoseconds, hop counts, stretch percent). Bucket i
// holds observations v with v <= bounds[i] (and > bounds[i-1]); one
// implicit overflow bucket catches everything above the last bound.
// Bounds are fixed at creation, so Observe allocates nothing: a bucket
// search over a short sorted slice plus one atomic increment on the
// caller's shard row.
type Histogram struct {
	name   string
	bounds []int64
	stride int // padded row length in uint64 words
	// rows is shardCount rows of [bucket0..bucketK-1, overflow, count,
	// sum, pad...]; stride is a multiple of 8 words so each row starts
	// on its own cache line and writers on different rows never share.
	rows []atomic.Uint64
	next atomic.Uint32 // handle cursor
}

// row slot offsets past the bucket counts.
const (
	slotCount = 0 // + len(bounds) + 1
	slotSum   = 1
	histExtra = 2
)

func newHistogram(name string, bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly increasing", name))
		}
	}
	want := len(bounds) + 1 + histExtra
	stride := (want + 7) &^ 7 // round rows up to whole cache lines
	return &Histogram{
		name:   name,
		bounds: append([]int64(nil), bounds...),
		stride: stride,
		rows:   make([]atomic.Uint64, shardCount*stride),
	}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Bounds returns the bucket upper edges (callers must not mutate).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// bucket returns the index of the bucket v falls in. Bounds are short
// (≤ ~16), so a branch-predictable linear scan beats binary search.
func (h *Histogram) bucket(v int64) int {
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

// Observe records v on the shared shard row. Hot paths use a Handle.
// Negative observations clamp to zero.
func (h *Histogram) Observe(v int64) { h.observe(0, v) }

func (h *Histogram) observe(shard int, v int64) {
	if v < 0 {
		v = 0
	}
	base := shard * h.stride
	h.rows[base+h.bucket(v)].Add(1)
	h.rows[base+len(h.bounds)+1+slotCount].Add(1)
	h.rows[base+len(h.bounds)+1+slotSum].Add(uint64(v))
}

// Handle returns a private shard row of the histogram; each concurrent
// writer should hold its own.
type HistogramHandle struct {
	h     *Histogram
	shard int
}

// Handle assigns the next shard row round-robin. Safe for concurrent
// callers (the cursor is atomic, matching Counter.Handle).
func (h *Histogram) Handle() HistogramHandle {
	s := int(h.next.Add(1)-1) & (shardCount - 1)
	return HistogramHandle{h: h, shard: s}
}

// Observe records v on the handle's row.
func (hh HistogramHandle) Observe(v int64) { hh.h.observe(hh.shard, v) }

// snapshot sums the shard rows.
func (h *Histogram) snapshot() HistogramSnapshot {
	nb := len(h.bounds) + 1
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, nb),
	}
	for shard := 0; shard < shardCount; shard++ {
		base := shard * h.stride
		for i := 0; i < nb; i++ {
			s.Counts[i] += h.rows[base+i].Load()
		}
		s.Count += h.rows[base+nb+slotCount].Load()
		s.Sum += h.rows[base+nb+slotSum].Load()
	}
	return s
}

// HistogramSnapshot is one histogram's point-in-time reading: Counts[i]
// observations fell at or below Bounds[i] (above Bounds[i-1]); the last
// slot is the overflow bucket. Sum is the total of all observed values.
type HistogramSnapshot struct {
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// bucket edge at or below which a q fraction of observations fell —
// except when the quantile lands in the overflow bucket, where the last
// finite bound is returned and is a *lower* bound (the true value
// exceeded every configured bucket edge). Callers sizing buckets should
// treat Quantile == Bounds[len-1] as "off the scale", not as a
// measurement.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen > target || seen == s.Count {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			return s.Bounds[i]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// sub returns the bucket-wise delta s − prev (zero-value prev allowed).
func (s HistogramSnapshot) sub(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		var p uint64
		if i < len(prev.Counts) {
			p = prev.Counts[i]
		}
		d.Counts[i] = s.Counts[i] - p
	}
	return d
}

// merge returns the bucket-wise sum of s and o (zero-value s allowed).
func (s HistogramSnapshot) merge(o HistogramSnapshot) HistogramSnapshot {
	if len(s.Counts) == 0 {
		out := HistogramSnapshot{
			Bounds: o.Bounds,
			Counts: append([]uint64(nil), o.Counts...),
			Count:  s.Count + o.Count,
			Sum:    s.Sum + o.Sum,
		}
		return out
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: append([]uint64(nil), s.Counts...),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range o.Counts {
		if i < len(out.Counts) {
			out.Counts[i] += o.Counts[i]
		}
	}
	return out
}

// ExponentialBuckets returns n bounds starting at first, each factor
// times the previous — the standard latency bucket layout.
func ExponentialBuckets(first int64, factor float64, n int) []int64 {
	if first <= 0 || factor <= 1 || n <= 0 {
		panic("telemetry: ExponentialBuckets needs first > 0, factor > 1, n > 0")
	}
	out := make([]int64, n)
	v := float64(first)
	for i := range out {
		out[i] = int64(v)
		if i > 0 && out[i] <= out[i-1] {
			out[i] = out[i-1] + 1 // guard against rounding collisions
		}
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds first, first+width, ...
func LinearBuckets(first, width int64, n int) []int64 {
	if width <= 0 || n <= 0 {
		panic("telemetry: LinearBuckets needs width > 0, n > 0")
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = first + int64(i)*width
	}
	return out
}
