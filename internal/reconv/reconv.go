// Package reconv models the "full routing protocol reconvergence" baseline
// of the paper's evaluation (§6): after failures, link state floods, every
// router recomputes its tables, and traffic follows the new optimal paths.
//
// Two aspects matter for the reproduction:
//
//   - Path quality (Figure 2): post-convergence paths are shortest paths on
//     the surviving topology, so reconvergence is the stretch-optimal
//     baseline every FRR scheme trades against.
//   - Packet loss (§1 motivation): during the convergence window — failure
//     detection, LSA flooding, SPF runs, FIB updates — packets routed
//     toward the failure are dropped. ConvergenceModel quantifies that
//     window; package sim exercises it with live traffic.
package reconv

import (
	"time"

	"recycle/internal/graph"
)

// Result describes post-convergence routing for one source-destination pair.
type Result struct {
	// Delivered is false when the surviving topology has no path.
	Delivered bool
	// Path is the post-convergence node sequence.
	Path []graph.NodeID
	// Cost is the new shortest-path cost.
	Cost float64
	// Stretch is Cost / failure-free shortest-path cost. Reconvergence
	// achieves the minimum possible stretch of any recovery scheme.
	Stretch float64
}

// Router computes post-convergence routes over a fixed base topology.
type Router struct {
	g        *graph.Graph
	baseline []*graph.SPTree
}

// New builds the reconvergence baseline for g.
func New(g *graph.Graph) *Router {
	r := &Router{g: g, baseline: make([]*graph.SPTree, g.NumNodes())}
	for d := 0; d < g.NumNodes(); d++ {
		r.baseline[d] = graph.ShortestPathTree(g, graph.NodeID(d), nil)
	}
	return r
}

// Graph returns the base topology.
func (r *Router) Graph() *graph.Graph { return r.g }

// Walk returns the post-convergence route from src to dst under failures.
func (r *Router) Walk(src, dst graph.NodeID, failures *graph.FailureSet) Result {
	res := Result{}
	if src == dst {
		res.Delivered = true
		res.Path = []graph.NodeID{src}
		return res
	}
	tree := graph.ShortestPathTree(r.g, dst, failures)
	if !tree.Reachable(src) {
		return res
	}
	res.Delivered = true
	res.Path = tree.Path(src)
	res.Cost = tree.Dist[src]
	if base := r.baseline[dst].Dist[src]; base > 0 {
		res.Stretch = res.Cost / base
	}
	return res
}

// ConvergenceModel parameterises the loss window of a link-state IGP, with
// defaults representative of tuned IS-IS deployments (the paper's "minutes"
// headline refers to untuned BGP-era behaviour; even the tuned model drops
// hundreds of thousands of packets on a loaded OC-192, reproducing §1).
type ConvergenceModel struct {
	// Detection is the local failure-detection delay (e.g. BFD interval).
	Detection time.Duration
	// FloodPerHop is the per-hop LSA propagation+processing delay.
	FloodPerHop time.Duration
	// SPF is the route recomputation time per router.
	SPF time.Duration
	// FIBUpdate is the forwarding-table install time.
	FIBUpdate time.Duration
}

// DefaultConvergence returns a tuned-IGP model: 50 ms detection, 10 ms
// flooding per hop, 100 ms SPF, 200 ms FIB install.
func DefaultConvergence() ConvergenceModel {
	return ConvergenceModel{
		Detection:   50 * time.Millisecond,
		FloodPerHop: 10 * time.Millisecond,
		SPF:         100 * time.Millisecond,
		FIBUpdate:   200 * time.Millisecond,
	}
}

// Window returns the total convergence time for a network whose LSA flood
// must cross floodRadius hops (typically the hop diameter).
func (m ConvergenceModel) Window(floodRadius int) time.Duration {
	return m.Detection + time.Duration(floodRadius)*m.FloodPerHop + m.SPF + m.FIBUpdate
}

// LostPackets returns how many packets a flow of pps packets/second crossing
// the failed element loses during the convergence window.
func (m ConvergenceModel) LostPackets(floodRadius int, pps float64) float64 {
	return pps * m.Window(floodRadius).Seconds()
}
