package reconv

import (
	"testing"
	"time"

	"recycle/internal/graph"
)

func TestWalkOptimalOnSurvivingGraph(t *testing.T) {
	g := graph.Ring(6)
	r := New(g)
	res := r.Walk(0, 1, graph.NewFailureSet(0))
	if !res.Delivered || res.Cost != 5 || res.Stretch != 5 {
		t.Fatalf("result = %+v; want delivered, cost 5, stretch 5", res)
	}
	if len(res.Path) != 6 {
		t.Fatalf("path = %v; want the 6-node way around", res.Path)
	}
}

func TestWalkSelfAndDisconnected(t *testing.T) {
	g := graph.Ring(4)
	r := New(g)
	if res := r.Walk(2, 2, nil); !res.Delivered || res.Cost != 0 {
		t.Fatalf("self walk = %+v", res)
	}
	// Fail both links at node 0.
	if res := r.Walk(0, 2, graph.FailNode(g, 0)); res.Delivered {
		t.Fatal("delivered across a cut")
	}
}

// TestStretchIsMinimal: no recovery scheme can beat reconvergence stretch;
// check against brute-force surviving shortest paths.
func TestStretchIsMinimal(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := graph.RandomTwoConnected(10, 18, seed)
		r := New(g)
		scenarios, err := graph.SampleFailureScenarios(g, 3, 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, fs := range scenarios {
			for src := 0; src < g.NumNodes(); src++ {
				for dst := 0; dst < g.NumNodes(); dst++ {
					if src == dst {
						continue
					}
					res := r.Walk(graph.NodeID(src), graph.NodeID(dst), fs)
					want := graph.ShortestPathTree(g, graph.NodeID(dst), fs).Dist[src]
					if !res.Delivered {
						t.Fatalf("undelivered on connected scenario")
					}
					if res.Cost != want {
						t.Fatalf("cost %v != optimal %v", res.Cost, want)
					}
				}
			}
		}
	}
}

func TestConvergenceWindow(t *testing.T) {
	m := DefaultConvergence()
	// 50 + 5*10 + 100 + 200 = 400 ms.
	if w := m.Window(5); w != 400*time.Millisecond {
		t.Fatalf("window = %v; want 400ms", w)
	}
	if w := m.Window(0); w != 350*time.Millisecond {
		t.Fatalf("zero-radius window = %v; want 350ms", w)
	}
}

// TestOC192MotivationNumbers reproduces the §1 headline: a loaded OC-192
// (~10 Gb/s) with 1 kB packets carries ~1.25M packets/s; an outage of one
// second loses over a quarter million packets even at 20% utilisation.
func TestOC192MotivationNumbers(t *testing.T) {
	const oc192bps = 9.953e9
	const packetBits = 1024 * 8
	pps := oc192bps / packetBits * 0.20 // 20% utilised
	m := ConvergenceModel{Detection: time.Second}
	lost := m.LostPackets(0, pps)
	if lost < 240_000 {
		t.Fatalf("lost = %.0f packets; paper's quarter-million claim not reproduced", lost)
	}
	// With the tuned model the loss is far smaller but still nonzero.
	tuned := DefaultConvergence().LostPackets(3, pps)
	if tuned <= 0 || tuned >= lost {
		t.Fatalf("tuned loss = %.0f; want positive and below untuned", tuned)
	}
}
