package dataplane

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"recycle/internal/core"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/telemetry"
)

// Packet is the engine's unit of work: one forwarding decision to make.
// Submit fills the first four fields; the worker fills the rest.
type Packet struct {
	// Node is the router making the decision.
	Node graph.NodeID
	// Dst is the packet's destination node.
	Dst graph.NodeID
	// Ingress is the dart the packet arrived on (rotation.NoDart at the
	// origin).
	Ingress rotation.DartID
	// Bits is the packet's wire size, used by the egress stage for
	// link-rate pacing (0 = the egress default, 8192 bits).
	Bits int32
	// Hdr is the PR header before the decision; the worker overwrites it
	// with the post-decision header.
	Hdr core.Header

	// Egress is the chosen egress dart (rotation.NoDart when !OK).
	Egress rotation.DartID
	// Event classifies the decision.
	Event core.Event
	// OK is false when the router had no usable egress.
	OK bool
}

// Batch is a slice of packets handed to the engine together. Batching
// amortises ring hand-off and snapshot loads over many decisions. The two
// slices are independent planes of the same batch: Pkts carries abstract
// decisions (DecideBatch), Wire carries raw frames forwarded byte-in-place
// (ForwardWireBatch). Either may be empty.
type Batch struct {
	Pkts []Packet
	Wire []WirePacket
}

// size is the decision count the batch contributes to Engine.Decided.
func (b *Batch) size() uint64 { return uint64(len(b.Pkts) + len(b.Wire)) }

// EngineConfig parameterises NewEngine.
type EngineConfig struct {
	// Shards is the worker count (default: GOMAXPROCS, capped at 8).
	Shards int
	// RingDepth is the per-shard ring capacity in batches, rounded up to
	// a power of two (default 256).
	RingDepth int
	// Egress, when non-nil, is the pipeline's transmit stage: every
	// decided batch is handed to it (with the snapshot it was decided
	// under) before OnDone. See TxQueue for the built-in per-dart
	// serialising implementation.
	Egress Egress
	// OnDone, when non-nil, receives each batch after its packets have
	// been decided and transmitted, on the deciding worker's goroutine.
	// The engine keeps no reference afterwards, so OnDone may recycle
	// the batch.
	OnDone func(*Batch)
	// OnDoneState, when non-nil, is called instead of OnDone with the
	// exact (FIB, LinkState) pair the batch was decided under. Callers
	// that walk packets hop-by-hop across hot-swaps (the soak harness)
	// need the deciding FIB: after a structural swap the engine's
	// current FIB has a different dart space, and mapping egress darts
	// through the wrong one is silently wrong. The arguments are the
	// engine's immutable RCU snapshots — read-only, safe to retain.
	OnDoneState func(*Batch, *FIB, *LinkState)
	// Metrics, when non-nil, publishes the engine's decision telemetry
	// into the registry: engine.decided / engine.batches, a per-event
	// breakdown (engine.event.*), drop and wire counters, and an
	// engine.queue.depth gauge sampled at snapshot time. Each worker
	// keeps a plain local tally flushed once per batch, so the per-
	// decision cost is one non-atomic increment; with Metrics nil the
	// hot path pays a single pointer test per batch.
	Metrics *telemetry.Registry
	// Tracer receives a span tree per SwapFIB/ApplyDelta — barrier wait
	// vs. apply — attributing hot-swap latency. Nil traces nothing; the
	// per-packet decide path is never spanned.
	Tracer *telemetry.Tracer
}

// Engine metric names, per decision event and outcome. The bank slot
// order of the first six matches core.Event values so a worker tallies
// with tally[int(event)&7]++.
const (
	MetricDecided       = "engine.decided"
	MetricBatches       = "engine.batches"
	MetricEventRoute    = "engine.event.route"
	MetricEventDetect   = "engine.event.detect"
	MetricEventCycle    = "engine.event.cycle"
	MetricEventContinue = "engine.event.continue"
	MetricEventResume   = "engine.event.resume"
	MetricDropNoRoute   = "engine.drop.no-route"
	MetricWireForwarded = "engine.wire.forwarded"
	MetricWireDropped   = "engine.wire.dropped"
	MetricQueueDepth    = "engine.queue.depth"
	MetricBatchNs       = "engine.batch_ns"
	MetricFIBMemBytes   = "fib.mem.bytes"
	// MetricSwapBarrierNs / MetricSwapApplyNs split each hot-swap's
	// latency: time spent waiting on the writer mutex (the swap barrier
	// contending with SetLink and other swaps) vs. time rebinding the
	// egress and publishing the new state. One observation per swap,
	// 1µs…262ms exponential buckets.
	MetricSwapBarrierNs = "engine.swap_barrier_ns"
	MetricSwapApplyNs   = "engine.swap_apply_ns"
)

// swapBuckets spans 1µs to ~262ms.
func swapBuckets() []int64 { return telemetry.ExponentialBuckets(1000, 4, 10) }

// shardMetrics is one worker's private instrumentation: a local tally
// (slots 0–4 mirror core.Event, 5 no-route, 6–7 the wire verdicts)
// flushed through a CounterBank once per batch, plus private handles
// for the decided/batch totals.
type shardMetrics struct {
	tally   telemetry.Tally
	bank    *telemetry.CounterBank
	decided telemetry.CounterHandle
	batches telemetry.CounterHandle
	batchNs telemetry.HistogramHandle // decision latency per batch
}

// tallySlot indexes beyond the core.Event range.
const (
	slotNoRoute       = 5 // aliases core.EventDeliver, which the FIB never emits
	slotWireForwarded = 6
	slotWireDropped   = 7
)

func newShardMetrics(r *telemetry.Registry) *shardMetrics {
	return &shardMetrics{
		bank: telemetry.NewCounterBank(r,
			MetricEventRoute, MetricEventDetect, MetricEventCycle,
			MetricEventContinue, MetricEventResume, MetricDropNoRoute,
			MetricWireForwarded, MetricWireDropped),
		decided: r.Counter(MetricDecided).Handle(),
		batches: r.Counter(MetricBatches).Handle(),
		// 100 ns .. ~1.7 ms per-batch decision latency.
		batchNs: r.Histogram(MetricBatchNs, telemetry.ExponentialBuckets(100, 4, 8)).Handle(),
	}
}

// Engine is the sharded forwarding engine, a three-stage pipeline:
// ingest (Submit pushes batches onto per-shard rings), decide (worker
// goroutines drain their ring against the compiled FIB), transmit (the
// configured Egress paces decided packets onto per-dart queues). With no
// Egress configured the pipeline stops at the decision, the shape the
// engine had before transmit existed.
//
// Forwarding state — the FIB plus the interface-state bitset — lives in
// one atomically swapped immutable pair (RCU style): SetLink copies the
// bitset, flips one bit and republishes; SwapFIB/ApplyDelta publish a
// recompiled FIB with the detected failures carried over. Workers load
// the pair once per batch, so they never take a lock, never see a torn
// state, and never mix a FIB with a bitset sized for a different link
// space. A batch in flight across a swap finishes under the pair it
// started with; every batch popped after SwapFIB returns decides on the
// new FIB — that return is the swap barrier, and nothing is dropped.
type Engine struct {
	cur    atomic.Pointer[engineState]
	cfg    EngineConfig
	mu     sync.Mutex // serialises SetLink / SwapFIB writers
	shards []*shard
	next   atomic.Uint64 // round-robin submit cursor
	closed atomic.Bool
	stop   chan struct{} // closed by Close to wake parked workers
	wg     sync.WaitGroup

	// memGauge tracks the resident bytes of the FIB currently forwarded
	// on (fib.mem.bytes), re-published at every swap. Nil when the
	// engine is uninstrumented.
	memGauge *telemetry.Gauge
	// swapBarrierNs/swapApplyNs attribute each hot-swap's latency; nil
	// when the engine is uninstrumented.
	swapBarrierNs *telemetry.Histogram
	swapApplyNs   *telemetry.Histogram
}

// engineState is the RCU unit: a FIB and an interface-state snapshot
// sized for the same link space, always published together.
type engineState struct {
	fib   *FIB
	links *LinkState
}

// shard pairs one ring with one worker. Counters are padded apart so
// per-shard updates do not false-share cache lines.
type shard struct {
	ring    ring
	notify  chan struct{} // wakes a parked worker after a push
	metrics *shardMetrics // nil when the engine is uninstrumented
	decided atomic.Uint64
	_       [56]byte
}

// ring is a bounded queue of batches: multi-producer (Submit serialises
// with a short per-shard lock at batch granularity), single consumer (the
// shard's worker pops lock-free).
type ring struct {
	buf  []*Batch
	mask uint64
	mu   sync.Mutex
	head atomic.Uint64 // consumer position
	tail atomic.Uint64 // producer position
}

// push refuses once closed is set; checking under the ring lock, paired
// with Close's lock-then-sweep of each ring, guarantees no accepted batch
// is ever stranded by the Submit/Close race.
func (r *ring) push(b *Batch, closed *atomic.Bool) bool {
	r.mu.Lock()
	if closed.Load() {
		r.mu.Unlock()
		return false
	}
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		r.mu.Unlock()
		return false
	}
	r.buf[t&r.mask] = b
	r.tail.Store(t + 1)
	r.mu.Unlock()
	return true
}

func (r *ring) pop() *Batch {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil
	}
	b := r.buf[h&r.mask]
	r.buf[h&r.mask] = nil
	r.head.Store(h + 1)
	return b
}

// NewEngine starts the workers and returns a running engine with all
// links up. Callers must Close it to stop the workers.
func NewEngine(fib *FIB, cfg EngineConfig) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
		if cfg.Shards > 8 {
			cfg.Shards = 8
		}
	}
	if cfg.RingDepth <= 0 {
		cfg.RingDepth = 256
	}
	depth := 1
	for depth < cfg.RingDepth {
		depth <<= 1
	}
	e := &Engine{cfg: cfg, shards: make([]*shard, cfg.Shards), stop: make(chan struct{})}
	e.cur.Store(&engineState{fib: fib, links: NewLinkState(fib.NumLinks())})
	for i := range e.shards {
		e.shards[i] = &shard{
			ring:   ring{buf: make([]*Batch, depth), mask: uint64(depth - 1)},
			notify: make(chan struct{}, 1),
		}
		if cfg.Metrics != nil {
			e.shards[i].metrics = newShardMetrics(cfg.Metrics)
		}
		e.wg.Add(1)
		go e.worker(e.shards[i])
	}
	if cfg.Metrics != nil {
		e.memGauge = cfg.Metrics.Gauge(MetricFIBMemBytes)
		e.memGauge.Set(fib.MemBytes())
		e.swapBarrierNs = cfg.Metrics.Histogram(MetricSwapBarrierNs, swapBuckets())
		e.swapApplyNs = cfg.Metrics.Histogram(MetricSwapApplyNs, swapBuckets())
		depthGauge := cfg.Metrics.Gauge(MetricQueueDepth)
		cfg.Metrics.RegisterCollector(telemetry.CollectorFunc(func(*telemetry.Snapshot) {
			var n int64
			for _, sh := range e.shards {
				n += int64(sh.ring.tail.Load() - sh.ring.head.Load())
			}
			depthGauge.Set(n)
		}))
	}
	return e
}

// Shards returns the worker count.
func (e *Engine) Shards() int { return len(e.shards) }

// Snapshot returns the current interface-state snapshot. Callers must
// treat it as immutable.
func (e *Engine) Snapshot() *LinkState { return e.cur.Load().links }

// FIB returns the FIB the engine currently forwards on. It changes only
// through SwapFIB/ApplyDelta.
func (e *Engine) FIB() *FIB { return e.cur.Load().fib }

// SetLink publishes a local failure detection (or repair): copy-on-write
// the current snapshot and swap it in. Concurrent writers serialise on a
// mutex; readers are never blocked.
func (e *Engine) SetLink(l graph.LinkID, down bool) {
	e.mu.Lock()
	cur := e.cur.Load()
	next := cur.links.Clone()
	next.Set(l, down)
	e.cur.Store(&engineState{fib: cur.fib, links: next})
	e.mu.Unlock()
}

// SwapFIB hot-swaps the engine onto a recompiled FIB without dropping a
// packet: workers pick the new state up at their next batch, batches
// already in flight finish consistently under the old pair. linkMap
// carries the currently detected failures into the new FIB's link space
// (old link ID → new, graph.NoLink for removed links); nil means the
// link space is unchanged. When SwapFIB returns, every batch not yet
// being decided — including everything submitted afterwards — is decided
// on the new FIB: that is the swap barrier the churn tests pin.
//
// A configured Egress is keyed by the old FIB's dart space. An Egress
// implementing DartRebinder (TxQueue does) is rebound to the new dart
// space before the new state publishes — pacing clocks of surviving
// links carry over, and batches in flight against the old pair drain
// into the retired dart space. A structural swap (non-nil linkMap, or a
// changed link count) is refused only when the attached Egress cannot
// rebind; rebuild the engine for structural maintenance in that
// configuration.
func (e *Engine) SwapFIB(f *FIB, linkMap []graph.LinkID) error {
	if f == nil {
		return fmt.Errorf("dataplane: nil FIB")
	}
	root := e.cfg.Tracer.Start("engine.swap", 0)
	defer root.End()
	barrier, barrierT0 := e.cfg.Tracer.Start("engine.swap.barrier", root.ID()), time.Now()
	e.mu.Lock()
	barrier.End()
	if e.swapBarrierNs != nil {
		e.swapBarrierNs.Observe(int64(time.Since(barrierT0)))
	}
	defer e.mu.Unlock()
	cur := e.cur.Load()
	if linkMap == nil && f.NumLinks() != cur.fib.NumLinks() {
		return fmt.Errorf("dataplane: link space changed (%d → %d links) but no link map",
			cur.fib.NumLinks(), f.NumLinks())
	}
	if linkMap != nil && len(linkMap) != cur.fib.NumLinks() {
		return fmt.Errorf("dataplane: link map covers %d links; FIB has %d", len(linkMap), cur.fib.NumLinks())
	}
	var rb DartRebinder
	if e.cfg.Egress != nil && (linkMap != nil || f.NumLinks() != cur.fib.NumLinks()) {
		// A non-nil map means the link set changed even if the count did
		// not (add+remove in one delta): the per-dart egress queues'
		// backlog and pacing clocks would throttle the wrong links
		// unless the egress can rebind its dart space.
		var ok bool
		if rb, ok = e.cfg.Egress.(DartRebinder); !ok {
			return fmt.Errorf("dataplane: egress %T is keyed by dart and cannot rebind; rebuild the engine for structural edits", e.cfg.Egress)
		}
	}
	apply, applyT0 := e.cfg.Tracer.Start("engine.swap.apply", root.ID()), time.Now()
	if rb != nil {
		// Rebind before publishing: every batch decided on the new FIB
		// transmits into the new dart space. Batches still in flight on
		// the old pair land in the retired generation (or count a stale-
		// dart drop), never an index panic.
		rb.RebindDarts(2*f.NumLinks(), linkMap)
	}
	links := NewLinkState(f.NumLinks())
	for l := 0; l < cur.fib.NumLinks(); l++ {
		if !cur.links.Down(graph.LinkID(l)) {
			continue
		}
		nl := graph.LinkID(l)
		if linkMap != nil {
			nl = linkMap[l]
		}
		if nl != graph.NoLink {
			links.Set(nl, true)
		}
	}
	e.cur.Store(&engineState{fib: f, links: links})
	if e.memGauge != nil {
		e.memGauge.Set(f.MemBytes())
	}
	apply.End()
	if e.swapApplyNs != nil {
		e.swapApplyNs.Observe(int64(time.Since(applyT0)))
	}
	return nil
}

// ApplyDelta is SwapFIB for a Recompiler delta.
func (e *Engine) ApplyDelta(d *Delta) error {
	if d == nil {
		return fmt.Errorf("dataplane: nil delta")
	}
	var m []graph.LinkID
	if d.Structural {
		m = d.LinkMap
	}
	return e.SwapFIB(d.FIB, m)
}

// Submit hands a batch to a shard (round-robin, falling over to the next
// shard when one ring is full). It returns false when every ring is full
// or the engine is closed — backpressure the caller must handle. After a
// successful Submit the engine owns the batch until OnDone returns it.
func (e *Engine) Submit(b *Batch) bool {
	if e.closed.Load() {
		return false
	}
	start := e.next.Add(1) - 1
	for i := 0; i < len(e.shards); i++ {
		sh := e.shards[(start+uint64(i))%uint64(len(e.shards))]
		if sh.ring.push(b, &e.closed) {
			wake(sh)
			return true
		}
	}
	return false
}

// SubmitTo hands a batch to a specific shard, for callers that partition
// traffic themselves (e.g. by ingress port).
func (e *Engine) SubmitTo(shard int, b *Batch) bool {
	sh := e.shards[shard]
	if !sh.ring.push(b, &e.closed) {
		return false
	}
	wake(sh)
	return true
}

// wake nudges a parked worker; the buffered token makes it lossless
// without ever blocking the producer.
func wake(sh *shard) {
	select {
	case sh.notify <- struct{}{}:
	default:
	}
}

// Close stops accepting batches, waits for the workers to drain and
// exit, then returns the total number of decisions made. A batch whose
// Submit raced with Close and won (push saw closed unset) is decided
// here: taking each ring's lock after the workers exit fences out every
// in-flight push, so the final sweep observes anything they accepted.
func (e *Engine) Close() uint64 {
	if !e.closed.CompareAndSwap(false, true) {
		return e.Decided() // already closed
	}
	close(e.stop)
	e.wg.Wait()
	for _, sh := range e.shards {
		sh.ring.mu.Lock()
		var leftovers []*Batch
		for b := sh.ring.pop(); b != nil; b = sh.ring.pop() {
			leftovers = append(leftovers, b)
		}
		sh.ring.mu.Unlock()
		for _, b := range leftovers {
			// The same instrumented path the worker ran: the sweep's
			// decisions land in the shard's counters (flushed per batch),
			// so a Submit that raced Close and won is fully counted — a
			// snapshot taken after Close never under-reports.
			e.decideBatch(sh, b, e.cur.Load())
		}
	}
	return e.Decided()
}

// decideBatch runs one batch through decide → tally → transmit → done.
// It is the single decision path: workers and Close's leftover sweep
// both come through here, so counters are flushed wherever a batch is
// decided.
func (e *Engine) decideBatch(sh *shard, b *Batch, st *engineState) {
	m := sh.metrics
	if m == nil {
		st.fib.DecideBatch(b.Pkts, st.links)
		st.fib.ForwardWireBatch(b.Wire, st.links)
	} else {
		t0 := time.Now()
		t := &m.tally
		st.fib.DecideBatchTally(b.Pkts, st.links, (*[telemetry.TallySize]uint64)(t))
		st.fib.ForwardWireBatch(b.Wire, st.links)
		for i := range b.Wire {
			if b.Wire[i].Verdict == WireForward {
				t[slotWireForwarded]++
			} else {
				t[slotWireDropped]++
			}
		}
		m.batchNs.Observe(int64(time.Since(t0)))
		m.bank.Flush(t)
		m.decided.Add(b.size())
		m.batches.Inc()
	}
	if e.cfg.Egress != nil {
		e.cfg.Egress.Transmit(b, st.links)
	}
	sh.decided.Add(b.size())
	if e.cfg.OnDoneState != nil {
		e.cfg.OnDoneState(b, st.fib, st.links)
	} else if e.cfg.OnDone != nil {
		e.cfg.OnDone(b)
	}
}

// Decided returns the total decisions made so far across all shards.
func (e *Engine) Decided() uint64 {
	var n uint64
	for _, sh := range e.shards {
		n += sh.decided.Load()
	}
	return n
}

func (e *Engine) worker(sh *shard) {
	defer e.wg.Done()
	idle := 0
	for {
		b := sh.ring.pop()
		if b == nil {
			if e.closed.Load() {
				// Re-check after observing closed: a batch may have been
				// pushed between the failed pop and the flag read. (Close
				// sweeps the ring afterwards, so even a push that lands
				// after this is decided, not stranded.)
				if b = sh.ring.pop(); b == nil {
					return
				}
			} else if idle < 64 {
				// Brief spin keeps latency low across momentary gaps.
				idle++
				runtime.Gosched()
				continue
			} else {
				// Park until the next push (or Close) instead of burning
				// a core on an idle engine.
				select {
				case <-sh.notify:
				case <-e.stop:
				}
				idle = 0
				continue
			}
		}
		idle = 0
		// One load covers the whole batch: its decisions see a single
		// consistent (FIB, interface-state) pair — across a hot-swap a
		// batch is decided wholly on the old or wholly on the new state —
		// and the egress stage paces under the same snapshot.
		e.decideBatch(sh, b, e.cur.Load())
	}
}
