package dataplane_test

import (
	"testing"
	"time"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/graph"
	"recycle/internal/rotation"
	"recycle/internal/route"
)

// TestDeltaRecompileSpeedup pins the headline churn claim: a delta
// recompile of a single-link weight change on ring:64 is at least 5×
// faster than the full rebuild (routing tables + quantiser + protocol +
// FIB from scratch). Both paths are timed over identical alternating
// 1↔2 metric tweaks; each side keeps its best (minimum) per-edit time
// across interleaved batches, which cancels machine noise without
// favouring either path. BenchmarkRecompileDelta/-Full report the same
// numbers for the CI bench job.
func TestDeltaRecompileSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts the timing ratio")
	}
	rec, g := churnBench(t)
	const (
		link    = graph.LinkID(7)
		batches = 9
		edits   = 16 // per batch per path
	)
	weights := [2]float64{2, 1}

	deltaBatch := func() time.Duration {
		start := time.Now()
		for i := 0; i < edits; i++ {
			if _, err := rec.Apply(graph.SetWeight(link, weights[i%2])); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / edits
	}
	fullBatch := func() time.Duration {
		sys := rec.System()
		start := time.Now()
		for i := 0; i < edits; i++ {
			g2, _, err := graph.ApplyEdit(g, graph.SetWeight(link, weights[i%2]))
			if err != nil {
				t.Fatal(err)
			}
			orders := make([][]graph.LinkID, g2.NumNodes())
			for v := 0; v < g2.NumNodes(); v++ {
				orders[v] = sys.LinkOrder(graph.NodeID(v))
			}
			sys2, err := rotation.FromLinkOrders(g2, orders)
			if err != nil {
				t.Fatal(err)
			}
			tbl := route.Build(g2, route.HopCount)
			quant := core.BuildQuantiser(tbl)
			p, err := core.New(g2, sys2, tbl, core.Config{Variant: core.Full})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := dataplane.CompileWith(p, quant); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / edits
	}

	// Warm both paths (scratch growth, children cache, allocator).
	deltaBatch()
	fullBatch()

	bestDelta, bestFull := time.Duration(1<<62), time.Duration(1<<62)
	for b := 0; b < batches; b++ {
		if d := deltaBatch(); d < bestDelta {
			bestDelta = d
		}
		if f := fullBatch(); f < bestFull {
			bestFull = f
		}
	}
	speedup := float64(bestFull) / float64(bestDelta)
	t.Logf("full %v, delta %v per edit — %.1f× speedup", bestFull, bestDelta, speedup)
	if speedup < 5 {
		t.Fatalf("delta recompile only %.2f× faster than full (full %v, delta %v); want ≥5×",
			speedup, bestFull, bestDelta)
	}
}
