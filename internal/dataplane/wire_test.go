package dataplane_test

import (
	"math/rand"
	"net/netip"
	"testing"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/header"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// wireFixture compiles a FIB over a built-in topology with hop-count
// discriminators (the only kind the 3-bit DSCP DD field can carry).
func wireFixture(t testing.TB, name string) (*core.Protocol, *dataplane.FIB, *graph.Graph) {
	t.Helper()
	tp, err := topo.ByNameWeighted(name, topo.DistanceWeights)
	if err != nil {
		t.Fatal(err)
	}
	sys := tp.Embedding
	if sys == nil {
		sys, err = (embedding.Auto{Seed: 1}).Embed(tp.Graph)
		if err != nil {
			t.Fatal(err)
		}
	}
	p := buildProtocol(t, tp.Graph, sys, route.HopCount, core.Full)
	fib, err := dataplane.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, fib, tp.Graph
}

// mkPacket marshals a fresh unmarked IPv4 packet between two plan
// addresses.
func mkPacket(t testing.TB, src, dst graph.NodeID, ttl uint8) []byte {
	t.Helper()
	h := header.IPv4{
		TotalLength: header.HeaderLen,
		ID:          42,
		TTL:         ttl,
		Protocol:    17,
		Src:         dataplane.NodeAddr(src),
		Dst:         dataplane.NodeAddr(dst),
	}
	buf, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestNodeAddrRoundtrip(t *testing.T) {
	for _, n := range []graph.NodeID{0, 1, 255, 256, 65535} {
		if got := dataplane.NodeOfAddr(dataplane.NodeAddr(n)); got != n {
			t.Errorf("NodeOfAddr(NodeAddr(%d)) = %d", n, got)
		}
	}
	if got := dataplane.NodeOfAddr(dataplane.NodeAddr(0).Next()); got != 1 {
		t.Errorf("plan addresses must be dense: got %d", got)
	}
}

// TestForwardWireMatchesWalk drives real packet bytes hop by hop through
// the wire path under a failure and checks every decision — egress dart
// and re-encoded DSCP mark — against the core.Protocol.Walk transcript,
// with the checksum intact at every hop.
func TestForwardWireMatchesWalk(t *testing.T) {
	for _, name := range []string{"paper", "abilene", "geant"} {
		p, fib, g := wireFixture(t, name)
		fails := graph.NewFailureSet(0)
		if !graph.ConnectedUnder(g, fails) {
			t.Fatalf("%s: link 0 is a bridge", name)
		}
		st := dataplane.FromFailureSet(g.NumLinks(), fails)
		src := graph.NodeID(1)
		dst := graph.NodeID(g.NumNodes() - 1)
		want := p.Walk(src, dst, fails)
		if !want.Delivered() {
			t.Fatalf("%s: core walk not delivered: %v", name, want.Outcome)
		}

		buf := mkPacket(t, src, dst, 64)
		node := src
		ingress := rotation.NoDart
		for i, step := range want.Steps {
			if step.Event == core.EventDeliver {
				eg, v := fib.ForwardWire(node, ingress, st, buf)
				if v != dataplane.WireDeliver || eg != rotation.NoDart {
					t.Fatalf("%s step %d: verdict %v, want deliver", name, i, v)
				}
				break
			}
			eg, v := fib.ForwardWire(node, ingress, st, buf)
			if v != dataplane.WireForward {
				t.Fatalf("%s step %d at node %d: verdict %v", name, i, node, v)
			}
			if eg != step.Egress {
				t.Fatalf("%s step %d: egress %d, core walked %d", name, i, eg, step.Egress)
			}
			if header.Checksum(buf[:header.HeaderLen]) != 0 {
				t.Fatalf("%s step %d: checksum broken after rewrite", name, i)
			}
			var h header.IPv4
			if err := h.Unmarshal(buf); err != nil {
				t.Fatalf("%s step %d: rewritten header invalid: %v", name, i, err)
			}
			if h.TTL != 64-uint8(i+1) {
				t.Fatalf("%s step %d: TTL %d, want %d", name, i, h.TTL, 64-i-1)
			}
			wantHdr := step.Header
			if wantHdr.PR || h.DSCP&0b11 == 0b11 {
				mark, err := h.PRMark()
				if err != nil {
					t.Fatalf("%s step %d: mark decode: %v", name, i, err)
				}
				if mark.PR != wantHdr.PR || float64(mark.DD) != wantHdr.DD {
					t.Fatalf("%s step %d: wire mark %+v, core header %+v", name, i, mark, wantHdr)
				}
			}
			node = fib.Head(eg)
			ingress = eg
		}
	}
}

// TestForwardWireChecksumFuzz checks the incremental checksum repair
// against a full recompute over randomised headers and forwarding states.
func TestForwardWireChecksumFuzz(t *testing.T) {
	_, fib, g := wireFixture(t, "geant")
	rng := rand.New(rand.NewSource(7))
	st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(2))
	for i := 0; i < 2000; i++ {
		src := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		h := header.IPv4{
			ECN:         uint8(rng.Intn(4)),
			TotalLength: uint16(header.HeaderLen + rng.Intn(1480)),
			ID:          uint16(rng.Int()),
			Flags:       0b010,
			TTL:         uint8(2 + rng.Intn(250)),
			Protocol:    uint8(rng.Intn(256)),
			Src:         dataplane.NodeAddr(src),
			Dst:         dataplane.NodeAddr(dst),
		}
		if rng.Intn(2) == 0 {
			h.DSCP = uint8(rng.Intn(8))<<2 | 0b11 // pre-marked pool-2 packet
		}
		buf, err := h.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		node := graph.NodeID(rng.Intn(g.NumNodes()))
		_, v := fib.ForwardWire(node, rotation.NoDart, st, buf)
		if v == dataplane.WireForward && header.Checksum(buf[:header.HeaderLen]) != 0 {
			t.Fatalf("iteration %d: incremental checksum diverged from recompute", i)
		}
	}
}

func TestForwardWireVerdicts(t *testing.T) {
	_, fib, g := wireFixture(t, "abilene")
	st := dataplane.FromFailureSet(g.NumLinks(), nil)

	buf := mkPacket(t, 0, 3, 64)
	buf[0] = 0x46 // IHL 6: options unsupported on the fast path
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, buf); v != dataplane.WireDropNotIP {
		t.Errorf("options packet: verdict %v, want not-ip", v)
	}
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, buf[:10]); v != dataplane.WireDropNotIP {
		t.Errorf("short packet: verdict %v, want not-ip", v)
	}
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, nil); v != dataplane.WireDropNotIP {
		t.Errorf("empty packet: verdict %v, want not-ip", v)
	}
	buf = mkPacket(t, 0, 3, 64)
	buf[0] = 0x95 // version 9
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, buf); v != dataplane.WireDropNotIP {
		t.Errorf("version-9 packet: verdict %v, want not-ip", v)
	}

	buf = mkPacket(t, 0, 3, 1)
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, buf); v != dataplane.WireDropTTL {
		t.Errorf("TTL=1: verdict %v, want drop-ttl", v)
	}

	h := header.IPv4{TotalLength: header.HeaderLen, TTL: 64, Protocol: 17,
		Src: dataplane.NodeAddr(0), Dst: dataplane.NodeAddr(graph.NodeID(g.NumNodes()))}
	out, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, out); v != dataplane.WireDropNotOurs {
		t.Errorf("node beyond topology: verdict %v, want not-ours", v)
	}

	// Isolate node 1: every incident link down means no usable egress.
	isolated := dataplane.FromFailureSet(g.NumLinks(), graph.FailNode(g, 1))
	buf = mkPacket(t, 0, 3, 64)
	if _, v := fib.ForwardWire(1, rotation.NoDart, isolated, buf); v != dataplane.WireDropNoRoute {
		t.Errorf("isolated router: verdict %v, want no-route", v)
	}

	if _, v := fib.ForwardWire(3, rotation.NoDart, st, mkPacket(t, 0, 3, 64)); v != dataplane.WireDeliver {
		t.Errorf("at destination: verdict %v, want deliver", v)
	}

	// A host-originated (no ingress) packet carrying a forged PR mark
	// must be refused, not crash the engine.
	h2 := header.IPv4{
		DSCP:        0b100011, // pool 2 with the PR bit set
		TotalLength: header.HeaderLen, TTL: 64, Protocol: 17,
		Src: dataplane.NodeAddr(0), Dst: dataplane.NodeAddr(3),
	}
	forged, err := h2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, forged); v != dataplane.WireDropBadMark {
		t.Errorf("forged PR mark with no ingress: verdict %v, want drop-bad-mark", v)
	}
}

// mkPacket6 marshals a fresh unmarked IPv6 packet between two plan
// addresses.
func mkPacket6(t testing.TB, src, dst graph.NodeID, hops uint8) []byte {
	t.Helper()
	h := header.IPv6{
		HopLimit:   hops,
		NextHeader: 17,
		Src:        dataplane.NodeAddr6(src),
		Dst:        dataplane.NodeAddr6(dst),
	}
	buf, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// flowLabelFixture compiles a weight-sum FIB over geant: quantised ranks
// exceed DSCP's 3 bits there, so Compile must select the flow-label codec.
func flowLabelFixture(t testing.TB) (*core.Protocol, *dataplane.FIB, *graph.Graph) {
	t.Helper()
	tp, err := topo.ByNameWeighted("geant", topo.DistanceWeights)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := (embedding.Auto{Seed: 1}).Embed(tp.Graph)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(tp.Graph, sys, route.Build(tp.Graph, route.WeightSum),
		core.Config{Variant: core.Full, Quantise: true})
	if err != nil {
		t.Fatal(err)
	}
	fib, err := dataplane.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if fib.Codec() != dataplane.CodecFlowLabel {
		t.Fatalf("geant/weight-sum codec = %v, want flow-label (dd bits %d)", fib.Codec(), fib.DDBits())
	}
	return p, fib, tp.Graph
}

// TestForwardWireCodecMismatch: on a flow-label-codec network, an IPv4
// packet whose forced mark exceeds DSCP's 3 DD bits is refused with an
// explicit family-mismatch verdict — the only residual width drop, and
// one that IPv6 traffic on the same network never hits.
func TestForwardWireCodecMismatch(t *testing.T) {
	p, fib, g := flowLabelFixture(t)
	tbl := p.Routes()
	// Find a (node, dst) whose shortest-path egress we can fail, forcing a
	// rank stamp too wide for DSCP.
	for node := 0; node < g.NumNodes(); node++ {
		for dst := 0; dst < g.NumNodes(); dst++ {
			nid, did := graph.NodeID(node), graph.NodeID(dst)
			link := tbl.NextLink(nid, did)
			if link == graph.NoLink {
				continue
			}
			rank, ok := fib.WireDD(nid, did)
			if !ok || rank <= header.MaxDD {
				continue
			}
			fs := graph.NewFailureSet(link)
			if !graph.ConnectedUnder(g, fs) {
				continue
			}
			st := dataplane.FromFailureSet(g.NumLinks(), fs)
			_, v := fib.ForwardWire(nid, rotation.NoDart, st, mkPacket(t, nid, did, 64))
			if v != dataplane.WireDropCodecMismatch {
				t.Fatalf("wide rank %d at %d→%d over IPv4: verdict %v, want codec-mismatch", rank, node, dst, v)
			}
			// The identical scenario over IPv6 forwards: the flow label
			// carries the rank the DSCP field could not.
			eg, v6 := fib.ForwardWire(nid, rotation.NoDart, st, mkPacket6(t, nid, did, 64))
			if v6 != dataplane.WireForward || eg == rotation.NoDart {
				t.Fatalf("same scenario over IPv6: verdict %v, want forward", v6)
			}
			return
		}
	}
	t.Fatal("no wide-rank pair found on geant/weight-sum")
}

// TestForwardWire6MatchesWalk drives real IPv6 bytes hop by hop through
// the wire path on a flow-label-codec network under a failure and checks
// every decision — egress dart and re-encoded flow-label mark — against
// the quantised core.Protocol.Walk transcript.
func TestForwardWire6MatchesWalk(t *testing.T) {
	p, fib, g := flowLabelFixture(t)
	fails := graph.NewFailureSet(0)
	if !graph.ConnectedUnder(g, fails) {
		t.Fatal("link 0 is a bridge")
	}
	st := dataplane.FromFailureSet(g.NumLinks(), fails)
	for dst := 0; dst < g.NumNodes(); dst++ {
		for src := 0; src < g.NumNodes(); src++ {
			if src == dst {
				continue
			}
			s, d := graph.NodeID(src), graph.NodeID(dst)
			want := p.Walk(s, d, fails)
			if !want.Delivered() {
				t.Fatalf("core walk %d→%d not delivered: %v", src, dst, want.Outcome)
			}
			buf := mkPacket6(t, s, d, 255)
			node := s
			ingress := rotation.NoDart
			for i, step := range want.Steps {
				if step.Event == core.EventDeliver {
					if _, v := fib.ForwardWire(node, ingress, st, buf); v != dataplane.WireDeliver {
						t.Fatalf("%d→%d step %d: verdict %v, want deliver", src, dst, i, v)
					}
					break
				}
				eg, v := fib.ForwardWire(node, ingress, st, buf)
				if v != dataplane.WireForward {
					t.Fatalf("%d→%d step %d at node %d: verdict %v", src, dst, i, node, v)
				}
				if eg != step.Egress {
					t.Fatalf("%d→%d step %d: egress %d, core walked %d", src, dst, i, eg, step.Egress)
				}
				var h header.IPv6
				if err := h.Unmarshal(buf); err != nil {
					t.Fatalf("%d→%d step %d: rewritten header invalid: %v", src, dst, i, err)
				}
				if h.HopLimit != 255-uint8(i+1) {
					t.Fatalf("%d→%d step %d: hop limit %d, want %d", src, dst, i, h.HopLimit, 255-i-1)
				}
				wantHdr := step.Header
				if wantHdr.PR || h.FlowLabel&0b11 == 0b11 {
					mark, err := h.PRMark()
					if err != nil {
						t.Fatalf("%d→%d step %d: mark decode: %v", src, dst, i, err)
					}
					// The quantised protocol's Header.DD is the rank the
					// wire carries, so the comparison is exact.
					if mark.PR != wantHdr.PR || float64(mark.DD) != wantHdr.DD {
						t.Fatalf("%d→%d step %d: wire mark %+v, core header %+v", src, dst, i, mark, wantHdr)
					}
				}
				node = fib.Head(eg)
				ingress = eg
			}
		}
	}
}

// TestForwardWire6Verdicts covers the IPv6-specific refusal paths.
func TestForwardWire6Verdicts(t *testing.T) {
	_, fib, g := wireFixture(t, "abilene")
	st := dataplane.FromFailureSet(g.NumLinks(), nil)

	if _, v := fib.ForwardWire(1, rotation.NoDart, st, mkPacket6(t, 0, 3, 64)[:39]); v != dataplane.WireDropNotIP {
		t.Errorf("short IPv6 packet: verdict %v, want not-ip", v)
	}
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, mkPacket6(t, 0, 3, 1)); v != dataplane.WireDropTTL {
		t.Errorf("hop limit 1: verdict %v, want drop-ttl", v)
	}
	if _, v := fib.ForwardWire(3, rotation.NoDart, st, mkPacket6(t, 0, 3, 64)); v != dataplane.WireDeliver {
		t.Errorf("at destination: verdict %v, want deliver", v)
	}
	h := header.IPv6{HopLimit: 64, NextHeader: 17,
		Src: dataplane.NodeAddr6(0), Dst: dataplane.NodeAddr6(graph.NodeID(g.NumNodes()))}
	out, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, out); v != dataplane.WireDropNotOurs {
		t.Errorf("node beyond topology: verdict %v, want not-ours", v)
	}
	alien := header.IPv6{HopLimit: 64, NextHeader: 17,
		Src: dataplane.NodeAddr6(0), Dst: mustParse(t, "2001:db8::1")}
	out, err = alien.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, out); v != dataplane.WireDropNotOurs {
		t.Errorf("off-plan destination: verdict %v, want not-ours", v)
	}

	// A host-originated (no ingress) frame with a forged PR flow label
	// must be refused, not crash the engine.
	forged := header.IPv6{
		FlowLabel: 1<<19 | 0b11, // PR bit set, pool-2 marker
		HopLimit:  64, NextHeader: 17,
		Src: dataplane.NodeAddr6(0), Dst: dataplane.NodeAddr6(3),
	}
	out, err = forged.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, out); v != dataplane.WireDropBadMark {
		t.Errorf("forged PR mark with no ingress: verdict %v, want drop-bad-mark", v)
	}

	// Isolated router: every incident link down.
	isolated := dataplane.FromFailureSet(g.NumLinks(), graph.FailNode(g, 1))
	if _, v := fib.ForwardWire(1, rotation.NoDart, isolated, mkPacket6(t, 0, 3, 64)); v != dataplane.WireDropNoRoute {
		t.Errorf("isolated router: verdict %v, want no-route", v)
	}
}

func mustParse(t *testing.T, s string) netip.Addr {
	t.Helper()
	return netip.MustParseAddr(s)
}

func TestNodeAddr6Roundtrip(t *testing.T) {
	for _, n := range []graph.NodeID{0, 1, 255, 256, 65535} {
		if got := dataplane.NodeOfAddr6(dataplane.NodeAddr6(n)); got != n {
			t.Errorf("NodeOfAddr6(NodeAddr6(%d)) = %d", n, got)
		}
	}
	if dataplane.NodeOfAddr6(mustParse(t, "2001:db8::1")) != graph.NoNode {
		t.Error("off-plan address resolved to a node")
	}
	if dataplane.NodeOfAddr6(dataplane.NodeAddr(3)) != graph.NoNode {
		t.Error("IPv4 plan address resolved through the IPv6 plan")
	}
}

var verdictSink dataplane.WireVerdict

// TestForwardWireZeroAllocs: the wire fast path must not allocate — on the
// IPv4 DSCP path and the IPv6 flow-label path both.
func TestForwardWireZeroAllocs(t *testing.T) {
	_, fib, g := wireFixture(t, "geant")
	st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(0))
	buf := mkPacket(t, 1, graph.NodeID(g.NumNodes()-1), 64)
	tmpl := append([]byte(nil), buf...)
	if allocs := testing.AllocsPerRun(200, func() {
		copy(buf, tmpl)
		_, verdictSink = fib.ForwardWire(1, rotation.NoDart, st, buf)
	}); allocs != 0 {
		t.Errorf("ForwardWire/ipv4 allocates %.1f per op, want 0", allocs)
	}

	_, fib6, g6 := flowLabelFixture(t)
	st6 := dataplane.FromFailureSet(g6.NumLinks(), graph.NewFailureSet(0))
	buf6 := mkPacket6(t, 1, graph.NodeID(g6.NumNodes()-1), 64)
	tmpl6 := append([]byte(nil), buf6...)
	if allocs := testing.AllocsPerRun(200, func() {
		copy(buf6, tmpl6)
		_, verdictSink = fib6.ForwardWire(1, rotation.NoDart, st6, buf6)
	}); allocs != 0 {
		t.Errorf("ForwardWire/ipv6 allocates %.1f per op, want 0", allocs)
	}
}
