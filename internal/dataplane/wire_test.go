package dataplane_test

import (
	"math/rand"
	"testing"

	"recycle/internal/core"
	"recycle/internal/dataplane"
	"recycle/internal/embedding"
	"recycle/internal/graph"
	"recycle/internal/header"
	"recycle/internal/rotation"
	"recycle/internal/route"
	"recycle/internal/topo"
)

// wireFixture compiles a FIB over a built-in topology with hop-count
// discriminators (the only kind the 3-bit DSCP DD field can carry).
func wireFixture(t testing.TB, name string) (*core.Protocol, *dataplane.FIB, *graph.Graph) {
	t.Helper()
	tp, err := topo.ByNameWeighted(name, topo.DistanceWeights)
	if err != nil {
		t.Fatal(err)
	}
	sys := tp.Embedding
	if sys == nil {
		sys, err = (embedding.Auto{Seed: 1}).Embed(tp.Graph)
		if err != nil {
			t.Fatal(err)
		}
	}
	p := buildProtocol(t, tp.Graph, sys, route.HopCount, core.Full)
	fib, err := dataplane.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, fib, tp.Graph
}

// mkPacket marshals a fresh unmarked IPv4 packet between two plan
// addresses.
func mkPacket(t testing.TB, src, dst graph.NodeID, ttl uint8) []byte {
	t.Helper()
	h := header.IPv4{
		TotalLength: header.HeaderLen,
		ID:          42,
		TTL:         ttl,
		Protocol:    17,
		Src:         dataplane.NodeAddr(src),
		Dst:         dataplane.NodeAddr(dst),
	}
	buf, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestNodeAddrRoundtrip(t *testing.T) {
	for _, n := range []graph.NodeID{0, 1, 255, 256, 65535} {
		if got := dataplane.NodeOfAddr(dataplane.NodeAddr(n)); got != n {
			t.Errorf("NodeOfAddr(NodeAddr(%d)) = %d", n, got)
		}
	}
	if got := dataplane.NodeOfAddr(dataplane.NodeAddr(0).Next()); got != 1 {
		t.Errorf("plan addresses must be dense: got %d", got)
	}
}

// TestForwardWireMatchesWalk drives real packet bytes hop by hop through
// the wire path under a failure and checks every decision — egress dart
// and re-encoded DSCP mark — against the core.Protocol.Walk transcript,
// with the checksum intact at every hop.
func TestForwardWireMatchesWalk(t *testing.T) {
	for _, name := range []string{"paper", "abilene", "geant"} {
		p, fib, g := wireFixture(t, name)
		fails := graph.NewFailureSet(0)
		if !graph.ConnectedUnder(g, fails) {
			t.Fatalf("%s: link 0 is a bridge", name)
		}
		st := dataplane.FromFailureSet(g.NumLinks(), fails)
		src := graph.NodeID(1)
		dst := graph.NodeID(g.NumNodes() - 1)
		want := p.Walk(src, dst, fails)
		if !want.Delivered() {
			t.Fatalf("%s: core walk not delivered: %v", name, want.Outcome)
		}

		buf := mkPacket(t, src, dst, 64)
		node := src
		ingress := rotation.NoDart
		for i, step := range want.Steps {
			if step.Event == core.EventDeliver {
				eg, v := fib.ForwardWire(node, ingress, st, buf)
				if v != dataplane.WireDeliver || eg != rotation.NoDart {
					t.Fatalf("%s step %d: verdict %v, want deliver", name, i, v)
				}
				break
			}
			eg, v := fib.ForwardWire(node, ingress, st, buf)
			if v != dataplane.WireForward {
				t.Fatalf("%s step %d at node %d: verdict %v", name, i, node, v)
			}
			if eg != step.Egress {
				t.Fatalf("%s step %d: egress %d, core walked %d", name, i, eg, step.Egress)
			}
			if header.Checksum(buf[:header.HeaderLen]) != 0 {
				t.Fatalf("%s step %d: checksum broken after rewrite", name, i)
			}
			var h header.IPv4
			if err := h.Unmarshal(buf); err != nil {
				t.Fatalf("%s step %d: rewritten header invalid: %v", name, i, err)
			}
			if h.TTL != 64-uint8(i+1) {
				t.Fatalf("%s step %d: TTL %d, want %d", name, i, h.TTL, 64-i-1)
			}
			wantHdr := step.Header
			if wantHdr.PR || h.DSCP&0b11 == 0b11 {
				mark, err := h.PRMark()
				if err != nil {
					t.Fatalf("%s step %d: mark decode: %v", name, i, err)
				}
				if mark.PR != wantHdr.PR || float64(mark.DD) != wantHdr.DD {
					t.Fatalf("%s step %d: wire mark %+v, core header %+v", name, i, mark, wantHdr)
				}
			}
			node = fib.Head(eg)
			ingress = eg
		}
	}
}

// TestForwardWireChecksumFuzz checks the incremental checksum repair
// against a full recompute over randomised headers and forwarding states.
func TestForwardWireChecksumFuzz(t *testing.T) {
	_, fib, g := wireFixture(t, "geant")
	rng := rand.New(rand.NewSource(7))
	st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(2))
	for i := 0; i < 2000; i++ {
		src := graph.NodeID(rng.Intn(g.NumNodes()))
		dst := graph.NodeID(rng.Intn(g.NumNodes()))
		h := header.IPv4{
			ECN:         uint8(rng.Intn(4)),
			TotalLength: uint16(header.HeaderLen + rng.Intn(1480)),
			ID:          uint16(rng.Int()),
			Flags:       0b010,
			TTL:         uint8(2 + rng.Intn(250)),
			Protocol:    uint8(rng.Intn(256)),
			Src:         dataplane.NodeAddr(src),
			Dst:         dataplane.NodeAddr(dst),
		}
		if rng.Intn(2) == 0 {
			h.DSCP = uint8(rng.Intn(8))<<2 | 0b11 // pre-marked pool-2 packet
		}
		buf, err := h.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		node := graph.NodeID(rng.Intn(g.NumNodes()))
		_, v := fib.ForwardWire(node, rotation.NoDart, st, buf)
		if v == dataplane.WireForward && header.Checksum(buf[:header.HeaderLen]) != 0 {
			t.Fatalf("iteration %d: incremental checksum diverged from recompute", i)
		}
	}
}

func TestForwardWireVerdicts(t *testing.T) {
	_, fib, g := wireFixture(t, "abilene")
	st := dataplane.FromFailureSet(g.NumLinks(), nil)

	buf := mkPacket(t, 0, 3, 64)
	buf[0] = 0x46 // IHL 6: options unsupported on the fast path
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, buf); v != dataplane.WireDropNotIPv4 {
		t.Errorf("options packet: verdict %v, want not-ipv4", v)
	}
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, buf[:10]); v != dataplane.WireDropNotIPv4 {
		t.Errorf("short packet: verdict %v, want not-ipv4", v)
	}

	buf = mkPacket(t, 0, 3, 1)
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, buf); v != dataplane.WireDropTTL {
		t.Errorf("TTL=1: verdict %v, want drop-ttl", v)
	}

	h := header.IPv4{TotalLength: header.HeaderLen, TTL: 64, Protocol: 17,
		Src: dataplane.NodeAddr(0), Dst: dataplane.NodeAddr(graph.NodeID(g.NumNodes()))}
	out, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, out); v != dataplane.WireDropNotOurs {
		t.Errorf("node beyond topology: verdict %v, want not-ours", v)
	}

	// Isolate node 1: every incident link down means no usable egress.
	isolated := dataplane.FromFailureSet(g.NumLinks(), graph.FailNode(g, 1))
	buf = mkPacket(t, 0, 3, 64)
	if _, v := fib.ForwardWire(1, rotation.NoDart, isolated, buf); v != dataplane.WireDropNoRoute {
		t.Errorf("isolated router: verdict %v, want no-route", v)
	}

	if _, v := fib.ForwardWire(3, rotation.NoDart, st, mkPacket(t, 0, 3, 64)); v != dataplane.WireDeliver {
		t.Errorf("at destination: verdict %v, want deliver", v)
	}

	// A host-originated (no ingress) packet carrying a forged PR mark
	// must be refused, not crash the engine.
	h2 := header.IPv4{
		DSCP:        0b100011, // pool 2 with the PR bit set
		TotalLength: header.HeaderLen, TTL: 64, Protocol: 17,
		Src: dataplane.NodeAddr(0), Dst: dataplane.NodeAddr(3),
	}
	forged, err := h2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, v := fib.ForwardWire(1, rotation.NoDart, st, forged); v != dataplane.WireDropBadMark {
		t.Errorf("forged PR mark with no ingress: verdict %v, want drop-bad-mark", v)
	}
}

// TestForwardWireDDOverflow: weight-sum discriminators on distance
// weights cannot fit the 3-bit DSCP field, so a failure that forces
// marking must drop explicitly rather than truncate.
func TestForwardWireDDOverflow(t *testing.T) {
	tp, err := topo.ByNameWeighted("geant", topo.DistanceWeights)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := (embedding.Auto{Seed: 1}).Embed(tp.Graph)
	if err != nil {
		t.Fatal(err)
	}
	p := buildProtocol(t, tp.Graph, sys, route.WeightSum, core.Full)
	fib, err := dataplane.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	g := tp.Graph
	tbl := p.Routes()
	// Find a (node, dst) whose shortest-path egress we can fail, forcing a
	// DD stamp that cannot be quantised.
	for node := 0; node < g.NumNodes(); node++ {
		for dst := 0; dst < g.NumNodes(); dst++ {
			nid, did := graph.NodeID(node), graph.NodeID(dst)
			link := tbl.NextLink(nid, did)
			if link == graph.NoLink || tbl.DD(nid, did) <= header.MaxDD {
				continue
			}
			if _, ok := fib.WireDD(nid, did); ok {
				continue
			}
			st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(link))
			_, v := fib.ForwardWire(nid, rotation.NoDart, st, mkPacket(t, nid, did, 64))
			if v != dataplane.WireDropDDOverflow {
				t.Fatalf("unquantisable DD at %d→%d: verdict %v, want dd-overflow", node, dst, v)
			}
			return
		}
	}
	t.Skip("no unquantisable pair found on geant/weight-sum")
}

var verdictSink dataplane.WireVerdict

// TestForwardWireZeroAllocs: the wire fast path must not allocate.
func TestForwardWireZeroAllocs(t *testing.T) {
	_, fib, g := wireFixture(t, "geant")
	st := dataplane.FromFailureSet(g.NumLinks(), graph.NewFailureSet(0))
	buf := mkPacket(t, 1, graph.NodeID(g.NumNodes()-1), 64)
	tmpl := append([]byte(nil), buf...)
	if allocs := testing.AllocsPerRun(200, func() {
		copy(buf, tmpl)
		_, verdictSink = fib.ForwardWire(1, rotation.NoDart, st, buf)
	}); allocs != 0 {
		t.Errorf("ForwardWire allocates %.1f per op, want 0", allocs)
	}
}
