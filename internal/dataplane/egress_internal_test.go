package dataplane

import "testing"

// TestWireFrameBitsClamped is the regression test for the unclamped
// total-length bug: the IP length field is corruption-controlled, so a
// zero claim must not serialise for free and an inflated claim must not
// pace the link as if megabytes left the box. Claims are clamped to
// [8×header-min, 8×len(buf)].
func TestWireFrameBitsClamped(t *testing.T) {
	v4 := func(totalLen int, bufLen int) []byte {
		buf := make([]byte, bufLen)
		buf[0] = 0x45
		buf[2], buf[3] = byte(totalLen>>8), byte(totalLen)
		return buf
	}
	v6 := func(payloadLen int, bufLen int) []byte {
		buf := make([]byte, bufLen)
		buf[0] = 0x60
		buf[4], buf[5] = byte(payloadLen>>8), byte(payloadLen)
		return buf
	}
	cases := []struct {
		name string
		buf  []byte
		want int64
	}{
		{"v4 honest", v4(100, 100), 800},
		{"v4 zero claim", v4(0, 100), 8 * 20},          // free ride pre-fix
		{"v4 runt claim", v4(7, 100), 8 * 20},          // below header min
		{"v4 inflated claim", v4(65535, 100), 8 * 100}, // 524280 bits pre-fix
		{"v6 honest", v6(60, 100), 800},
		{"v6 inflated claim", v6(65535, 100), 8 * 100},
		{"v6 zero payload", v6(0, 100), 8 * 40}, // header-only is its own floor
		{"unparseable", make([]byte, 64), 8 * 64},
		{"short", make([]byte, 10), 8 * 10},
	}
	for _, c := range cases {
		if got := wireFrameBits(c.buf); got != c.want {
			t.Errorf("%s: wireFrameBits = %d; want %d", c.name, got, c.want)
		}
	}
}
