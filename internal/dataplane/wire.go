package dataplane

import (
	"math"
	"net/netip"

	"recycle/internal/core"
	"recycle/internal/graph"
	"recycle/internal/header"
	"recycle/internal/rotation"
)

// The wire path forwards real IPv4 packet bytes: decode the PR mark from
// the DSCP pool-2 field, decide on the compiled FIB, re-encode the mark in
// place and repair the header checksum incrementally (RFC 1624) — no
// parsing structs, no full checksum recomputation, no allocations.
//
// Node addressing follows a fixed plan so destination lookup is pure
// arithmetic: node n owns 10.1.hi.lo where hi.lo is n in big-endian. The
// plan covers 65536 nodes, far beyond any topology here.

// wireAddrPrefix is the /16 the node address plan lives in (10.1.0.0/16).
const wireAddrPrefix = 0x0A01

// NodeAddr returns the IPv4 address assigned to node n by the plan.
func NodeAddr(n graph.NodeID) netip.Addr {
	return netip.AddrFrom4([4]byte{
		byte(wireAddrPrefix >> 8), byte(wireAddrPrefix & 0xFF),
		byte(uint32(n) >> 8), byte(uint32(n)),
	})
}

// NodeOfAddr inverts NodeAddr, returning graph.NoNode for addresses
// outside the plan.
func NodeOfAddr(a netip.Addr) graph.NodeID {
	if !a.Is4() {
		return graph.NoNode
	}
	b := a.As4()
	be := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	if be>>16 != wireAddrPrefix {
		return graph.NoNode
	}
	return graph.NodeID(be & 0xFFFF)
}

// WireVerdict classifies the outcome of one wire-path forwarding step.
type WireVerdict uint8

const (
	// WireForward: the packet was rewritten in place; send it on the
	// returned egress dart.
	WireForward WireVerdict = iota
	// WireDeliver: the destination address is this node; hand the packet
	// to the local stack untouched.
	WireDeliver
	// WireDropTTL: the TTL reached zero.
	WireDropTTL
	// WireDropNoRoute: the FIB had no usable egress (isolated router or
	// unreachable destination).
	WireDropNoRoute
	// WireDropNotIPv4: not a 20-byte-header IPv4 packet.
	WireDropNotIPv4
	// WireDropNotOurs: the destination address is outside the node plan.
	WireDropNotOurs
	// WireDropDDOverflow: the discriminator to stamp does not fit the
	// DSCP pool-2 DD field (paper: larger diameters need weight
	// quantisation or a wider field; we drop rather than truncate).
	WireDropDDOverflow
	// WireDropBadMark: the packet carries a PR mark that is impossible
	// by protocol (a re-cycling packet with no ingress interface) —
	// host-originated or forged marking.
	WireDropBadMark
)

// String names the verdict.
func (v WireVerdict) String() string {
	switch v {
	case WireForward:
		return "forward"
	case WireDeliver:
		return "deliver"
	case WireDropTTL:
		return "drop-ttl"
	case WireDropNoRoute:
		return "drop-no-route"
	case WireDropNotIPv4:
		return "drop-not-ipv4"
	case WireDropNotOurs:
		return "drop-not-ours"
	case WireDropDDOverflow:
		return "drop-dd-overflow"
	case WireDropBadMark:
		return "drop-bad-mark"
	}
	return "drop-unknown"
}

// Dropped reports whether the verdict is any drop.
func (v WireVerdict) Dropped() bool { return v != WireForward && v != WireDeliver }

// ForwardWire performs one PR forwarding step on raw IPv4 packet bytes at
// node, arrived on ingress (rotation.NoDart at the origin host). On
// WireForward the buffer has been rewritten in place — PR mark re-encoded
// into DSCP, TTL decremented, checksum incrementally repaired — and the
// packet should be transmitted on the returned dart.
//
// Unmarked traffic (DSCP outside pool 2) is treated as PR-clear and its
// DSCP is preserved unless a failure forces marking.
func (f *FIB) ForwardWire(node graph.NodeID, ingress rotation.DartID, st *LinkState, buf []byte) (rotation.DartID, WireVerdict) {
	if len(buf) < header.HeaderLen || buf[0] != 0x45 {
		return rotation.NoDart, WireDropNotIPv4
	}
	dstBE := uint32(buf[16])<<24 | uint32(buf[17])<<16 | uint32(buf[18])<<8 | uint32(buf[19])
	if dstBE>>16 != wireAddrPrefix {
		return rotation.NoDart, WireDropNotOurs
	}
	dst := graph.NodeID(dstBE & 0xFFFF)
	if int(dst) >= f.numNodes {
		return rotation.NoDart, WireDropNotOurs
	}
	if dst == node {
		return rotation.NoDart, WireDeliver
	}
	if buf[8] <= 1 {
		return rotation.NoDart, WireDropTTL
	}

	oldTOS := buf[1]
	var hdr core.Header
	mark, err := header.DecodeDSCP(oldTOS >> 2)
	marked := err == nil // DSCP pool 2 (xxxx11); anything else is unmarked traffic
	if marked {
		hdr.PR = mark.PR
		hdr.DD = float64(mark.DD)
	}
	if hdr.PR && ingress == rotation.NoDart {
		// A re-cycling mark on a packet with no ingress interface cannot
		// come from a PR router; refuse it rather than guess.
		return rotation.NoDart, WireDropBadMark
	}

	d := f.Decide(node, dst, ingress, hdr, st)
	if !d.OK {
		return rotation.NoDart, WireDropNoRoute
	}

	newTOS := oldTOS
	if d.Header.PR || marked {
		dd := d.Header.DD
		if !(dd >= 0 && dd <= header.MaxDD) || dd != math.Trunc(dd) {
			return rotation.NoDart, WireDropDDOverflow
		}
		dscp, encErr := header.EncodeDSCP(header.Mark{PR: d.Header.PR, DD: uint8(dd)})
		if encErr != nil {
			return rotation.NoDart, WireDropDDOverflow
		}
		newTOS = dscp<<2 | oldTOS&0b11 // keep ECN bits
	}

	// Rewrite TOS and TTL, then repair the checksum incrementally over the
	// two 16-bit words that changed.
	oldW0 := uint16(buf[0])<<8 | uint16(oldTOS)
	oldW4 := uint16(buf[8])<<8 | uint16(buf[9])
	buf[1] = newTOS
	buf[8]--
	newW0 := uint16(buf[0])<<8 | uint16(buf[1])
	newW4 := uint16(buf[8])<<8 | uint16(buf[9])
	ck := uint16(buf[10])<<8 | uint16(buf[11])
	ck = updateChecksum(ck, oldW0, newW0)
	ck = updateChecksum(ck, oldW4, newW4)
	buf[10], buf[11] = byte(ck>>8), byte(ck)
	return d.Egress, WireForward
}

// updateChecksum folds the change of one 16-bit header word into an RFC
// 1071 checksum per RFC 1624 equation 3: HC' = ~(~HC + ~m + m').
func updateChecksum(ck, old, new uint16) uint16 {
	sum := uint32(^ck) + uint32(^old) + uint32(new)
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
