package dataplane

import (
	"net/netip"

	"recycle/internal/graph"
	"recycle/internal/header"
	"recycle/internal/rotation"
)

// The wire path forwards real packet bytes in both address families:
// decode the PR mark (DSCP pool 2 on IPv4, flow label on IPv6), decide on
// the compiled FIB in rank space, re-encode the mark in place and repair
// the IPv4 checksum incrementally (RFC 1624; IPv6 has none) — no parsing
// structs, no full checksum recomputation, no allocations.
//
// Marks carry the *quantised* discriminator (core.Quantiser ranks), which
// the compiler guarantees fits the codec it selected, so no reachable
// packet is ever dropped for discriminator width: the seed dataplane's
// WireDropDDOverflow loss class is gone. The only residual width drop is a
// genuine family mismatch — an IPv4 packet needing a mark wider than DSCP
// on a network whose codec is the IPv6 flow label.
//
// Node addressing follows fixed plans so destination lookup is pure
// arithmetic: node n owns 10.1.hi.lo in IPv4 and fd00:5052::hi:lo-style
// bytes in IPv6, hi.lo being n in big-endian. The plans cover 65536 nodes,
// far beyond any topology here.

// wireAddrPrefix is the /16 the IPv4 node address plan lives in
// (10.1.0.0/16).
const wireAddrPrefix = 0x0A01

// wireAddr6Prefix is the first 14 bytes of the IPv6 node address plan:
// fd00:5052::/112, a ULA tagged "PR" (0x50 0x52).
var wireAddr6Prefix = [14]byte{0xfd, 0x00, 0x50, 0x52}

// NodeAddr returns the IPv4 address assigned to node n by the plan.
func NodeAddr(n graph.NodeID) netip.Addr {
	return netip.AddrFrom4([4]byte{
		byte(wireAddrPrefix >> 8), byte(wireAddrPrefix & 0xFF),
		byte(uint32(n) >> 8), byte(uint32(n)),
	})
}

// NodeOfAddr inverts NodeAddr, returning graph.NoNode for addresses
// outside the plan.
func NodeOfAddr(a netip.Addr) graph.NodeID {
	if !a.Is4() {
		return graph.NoNode
	}
	b := a.As4()
	be := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	if be>>16 != wireAddrPrefix {
		return graph.NoNode
	}
	return graph.NodeID(be & 0xFFFF)
}

// NodeAddr6 returns the IPv6 address assigned to node n by the plan.
func NodeAddr6(n graph.NodeID) netip.Addr {
	var b [16]byte
	copy(b[:], wireAddr6Prefix[:])
	b[14] = byte(uint32(n) >> 8)
	b[15] = byte(uint32(n))
	return netip.AddrFrom16(b)
}

// NodeOfAddr6 inverts NodeAddr6, returning graph.NoNode for addresses
// outside the plan.
func NodeOfAddr6(a netip.Addr) graph.NodeID {
	if !a.Is6() || a.Is4In6() {
		return graph.NoNode
	}
	b := a.As16()
	if [14]byte(b[:14]) != wireAddr6Prefix {
		return graph.NoNode
	}
	return graph.NodeID(uint32(b[14])<<8 | uint32(b[15]))
}

// WireVerdict classifies the outcome of one wire-path forwarding step.
type WireVerdict uint8

const (
	// WireForward: the packet was rewritten in place; send it on the
	// returned egress dart.
	WireForward WireVerdict = iota
	// WireDeliver: the destination address is this node; hand the packet
	// to the local stack untouched.
	WireDeliver
	// WireDropTTL: the TTL (hop limit) reached zero.
	WireDropTTL
	// WireDropNoRoute: the FIB had no usable egress (isolated router or
	// unreachable destination).
	WireDropNoRoute
	// WireDropNotIP: neither a 20-byte-header IPv4 packet nor a
	// fixed-header IPv6 packet.
	WireDropNotIP
	// WireDropNotOurs: the destination address is outside the node plan.
	WireDropNotOurs
	// WireDropCodecMismatch: the packet's address family cannot carry the
	// quantised discriminator this network needs — an IPv4 packet on a
	// flow-label-codec network whose mark would exceed DSCP's 3 DD bits.
	// Unlike the seed's WireDropDDOverflow this is never hit by traffic in
	// the network's own family: Compile sizes the codec to the topology.
	WireDropCodecMismatch
	// WireDropBadMark: the packet carries a PR mark that is impossible
	// by protocol (a re-cycling packet with no ingress interface) —
	// host-originated or forged marking.
	WireDropBadMark
)

// String names the verdict.
func (v WireVerdict) String() string {
	switch v {
	case WireForward:
		return "forward"
	case WireDeliver:
		return "deliver"
	case WireDropTTL:
		return "drop-ttl"
	case WireDropNoRoute:
		return "drop-no-route"
	case WireDropNotIP:
		return "drop-not-ip"
	case WireDropNotOurs:
		return "drop-not-ours"
	case WireDropCodecMismatch:
		return "drop-codec-mismatch"
	case WireDropBadMark:
		return "drop-bad-mark"
	}
	return "drop-unknown"
}

// Dropped reports whether the verdict is any drop.
func (v WireVerdict) Dropped() bool { return v != WireForward && v != WireDeliver }

// ForwardWire performs one PR forwarding step on raw packet bytes at node,
// arrived on ingress (rotation.NoDart at the origin host), dispatching on
// the IP version nibble. On WireForward the buffer has been rewritten in
// place — PR mark re-encoded, TTL/hop limit decremented, IPv4 checksum
// incrementally repaired — and the packet should be transmitted on the
// returned dart.
//
// Unmarked traffic (DSCP outside pool 2, flow-label low bits ≠ 11) is
// treated as PR-clear and its field is preserved unless a failure forces
// marking.
//
// Both codecs assume the PR domain bleaches the mark field at its edge,
// exactly as diffserv domains re-mark DSCP (RFC 2474 §6 reserves pool 2
// for local use, and RFC 6437 lets a domain rewrite flow labels it
// assigns meaning to): a host-set pseudo-random flow label whose low
// bits happen to be 11 would otherwise be read as a mark — one in four
// labels, one in eight additionally carrying the PR bit and refused as
// forged. Ingress routers (ingress == rotation.NoDart) therefore must
// sit behind the bleaching boundary.
func (f *FIB) ForwardWire(node graph.NodeID, ingress rotation.DartID, st *LinkState, buf []byte) (rotation.DartID, WireVerdict) {
	if len(buf) == 0 {
		return rotation.NoDart, WireDropNotIP
	}
	switch buf[0] >> 4 {
	case 4:
		return f.forwardWire4(node, ingress, st, buf)
	case 6:
		return f.forwardWire6(node, ingress, st, buf)
	}
	return rotation.NoDart, WireDropNotIP
}

// forwardWire4 is the IPv4 half of the wire path: DSCP pool-2 marks,
// RFC 1624 incremental checksum repair.
func (f *FIB) forwardWire4(node graph.NodeID, ingress rotation.DartID, st *LinkState, buf []byte) (rotation.DartID, WireVerdict) {
	if len(buf) < header.HeaderLen || buf[0] != 0x45 {
		return rotation.NoDart, WireDropNotIP
	}
	dstBE := uint32(buf[16])<<24 | uint32(buf[17])<<16 | uint32(buf[18])<<8 | uint32(buf[19])
	if dstBE>>16 != wireAddrPrefix {
		return rotation.NoDart, WireDropNotOurs
	}
	dst := graph.NodeID(dstBE & 0xFFFF)
	if int(dst) >= f.numNodes {
		return rotation.NoDart, WireDropNotOurs
	}
	if dst == node {
		return rotation.NoDart, WireDeliver
	}
	if buf[8] <= 1 {
		return rotation.NoDart, WireDropTTL
	}

	oldTOS := buf[1]
	var pr bool
	var dd uint32
	mark, err := header.DecodeDSCP(oldTOS >> 2)
	marked := err == nil // DSCP pool 2 (xxxx11); anything else is unmarked traffic
	if marked {
		pr = mark.PR
		dd = mark.DD
	}
	if pr && ingress == rotation.NoDart {
		// A re-cycling mark on a packet with no ingress interface cannot
		// come from a PR router; refuse it rather than guess.
		return rotation.NoDart, WireDropBadMark
	}

	egress, _, prOut, ddOut, ok := f.decideWire(node, dst, ingress, pr, dd, st)
	if !ok {
		return rotation.NoDart, WireDropNoRoute
	}

	newTOS := oldTOS
	if prOut || marked {
		if ddOut > header.MaxDD {
			// Only reachable when the compiled codec is the flow label:
			// this IPv4 packet cannot carry the mark the network needs.
			return rotation.NoDart, WireDropCodecMismatch
		}
		dscp, encErr := header.EncodeDSCP(header.Mark{PR: prOut, DD: ddOut})
		if encErr != nil {
			return rotation.NoDart, WireDropCodecMismatch
		}
		newTOS = dscp<<2 | oldTOS&0b11 // keep ECN bits
	}

	// Rewrite TOS and TTL, then repair the checksum incrementally over the
	// two 16-bit words that changed.
	oldW0 := uint16(buf[0])<<8 | uint16(oldTOS)
	oldW4 := uint16(buf[8])<<8 | uint16(buf[9])
	buf[1] = newTOS
	buf[8]--
	newW0 := uint16(buf[0])<<8 | uint16(buf[1])
	newW4 := uint16(buf[8])<<8 | uint16(buf[9])
	ck := uint16(buf[10])<<8 | uint16(buf[11])
	ck = updateChecksum(ck, oldW0, newW0)
	ck = updateChecksum(ck, oldW4, newW4)
	buf[10], buf[11] = byte(ck>>8), byte(ck)
	return egress, WireForward
}

// forwardWire6 is the IPv6 half of the wire path: flow-label marks on the
// fixed 40-byte header. IPv6 has no header checksum, so the rewrite is two
// byte stores and a decrement.
func (f *FIB) forwardWire6(node graph.NodeID, ingress rotation.DartID, st *LinkState, buf []byte) (rotation.DartID, WireVerdict) {
	if len(buf) < header.HeaderLen6 {
		return rotation.NoDart, WireDropNotIP
	}
	if [14]byte(buf[24:38]) != wireAddr6Prefix {
		return rotation.NoDart, WireDropNotOurs
	}
	dst := graph.NodeID(uint32(buf[38])<<8 | uint32(buf[39]))
	if int(dst) >= f.numNodes {
		return rotation.NoDart, WireDropNotOurs
	}
	if dst == node {
		return rotation.NoDart, WireDeliver
	}
	if buf[7] <= 1 {
		return rotation.NoDart, WireDropTTL
	}

	fl := uint32(buf[1]&0x0F)<<16 | uint32(buf[2])<<8 | uint32(buf[3])
	var pr bool
	var dd uint32
	mark, err := header.DecodeFlowLabel(fl)
	marked := err == nil // pool-2 flow label (low bits 11); else unmarked
	if marked {
		pr = mark.PR
		dd = mark.DD
	}
	if pr && ingress == rotation.NoDart {
		return rotation.NoDart, WireDropBadMark
	}

	egress, _, prOut, ddOut, ok := f.decideWire(node, dst, ingress, pr, dd, st)
	if !ok {
		return rotation.NoDart, WireDropNoRoute
	}

	if prOut || marked {
		// Compile guarantees every rank fits the flow label's 17 DD bits,
		// so unlike the IPv4 half this re-encode cannot fail.
		newFL, _ := header.EncodeFlowLabel(header.Mark{PR: prOut, DD: ddOut})
		buf[1] = buf[1]&0xF0 | byte(newFL>>16)
		buf[2] = byte(newFL >> 8)
		buf[3] = byte(newFL)
	}
	buf[7]--
	return egress, WireForward
}

// WirePacket is one raw frame awaiting a wire-path forwarding step — the
// engine's unit of work on the byte-level fast path. Submit fills the
// first three fields; the worker fills the rest.
type WirePacket struct {
	// Node is the router making the decision.
	Node graph.NodeID
	// Ingress is the dart the frame arrived on (rotation.NoDart at the
	// origin host).
	Ingress rotation.DartID
	// Buf is the packet bytes, rewritten in place on WireForward.
	Buf []byte

	// Egress is the chosen egress dart (rotation.NoDart unless the
	// verdict is WireForward).
	Egress rotation.DartID
	// Verdict classifies the outcome.
	Verdict WireVerdict
}

// NewWireFrame marshals a fresh unmarked frame from src to dst in the
// address family of the FIB's codec, with a full TTL budget — the frame
// shape every wire-path driver (simulator schemes, benchmarks, examples)
// should start from.
func (f *FIB) NewWireFrame(src, dst graph.NodeID) ([]byte, error) {
	if f.codec == CodecFlowLabel {
		h := header.IPv6{
			HopLimit:   255,
			NextHeader: 17,
			Src:        NodeAddr6(src),
			Dst:        NodeAddr6(dst),
		}
		return h.Marshal()
	}
	h := header.IPv4{
		TotalLength: header.HeaderLen,
		TTL:         255,
		Protocol:    17,
		Src:         NodeAddr(src),
		Dst:         NodeAddr(dst),
	}
	return h.Marshal()
}

// ForwardWireBatch forwards a whole batch of raw frames in one call,
// writing each packet's Egress and Verdict in place — the wire counterpart
// of DecideBatch, sharing one interface-state snapshot across the batch.
func (f *FIB) ForwardWireBatch(pkts []WirePacket, st *LinkState) {
	for i := range pkts {
		p := &pkts[i]
		p.Egress, p.Verdict = f.ForwardWire(p.Node, p.Ingress, st, p.Buf)
	}
}

// updateChecksum folds the change of one 16-bit header word into an RFC
// 1071 checksum per RFC 1624 equation 3: HC' = ~(~HC + ~m + m').
func updateChecksum(ck, old, new uint16) uint16 {
	sum := uint32(^ck) + uint32(^old) + uint32(new)
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
